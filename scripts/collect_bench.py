#!/usr/bin/env python3
"""Aggregate per-binary bench JSON files into one machine-readable report.

Every bench/ binary accepts `--json=<path>` and writes a small document:
the plain benches emit {"bench": ..., "cases": [{name, params, wall_ms,
bytes_per_sec}]} (see bench/bench_json.h); bench_micro emits the
google-benchmark file-reporter format ({"context": ..., "benchmarks":
[...]}) which this script normalizes into the same case shape.

Usage:
    scripts/collect_bench.py out/*.json -o BENCH_micro.json

The aggregate is a stable, diffable document: benches sorted by name,
cases kept in emission order. stdlib only; no pip deps.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def normalize(path: Path) -> dict:
    """Returns {"bench": name, "cases": [...]} for either input format."""
    with path.open() as f:
        doc = json.load(f)
    if "cases" in doc:
        # bench_json.h format: already in the canonical shape.
        return {"bench": doc.get("bench", path.stem), "cases": doc["cases"]}
    if "benchmarks" in doc:
        # google-benchmark file reporter (bench_micro).
        cases = []
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            real_time_ms = float(b.get("real_time", 0.0))
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit, 1e-6)
            cases.append(
                {
                    "name": b.get("name", ""),
                    "params": "iterations=" + str(b.get("iterations", 0)),
                    "wall_ms": real_time_ms * scale,
                    "bytes_per_sec": float(b.get("bytes_per_second", 0.0)),
                }
            )
        return {"bench": "micro", "cases": cases}
    raise ValueError(f"{path}: unrecognized bench JSON shape")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", type=Path, help="per-binary --json outputs")
    parser.add_argument("-o", "--output", type=Path, required=True)
    args = parser.parse_args(argv)

    benches = []
    for path in args.inputs:
        try:
            benches.append(normalize(path))
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"collect_bench: skipping {path}: {err}", file=sys.stderr)
    if not benches:
        print("collect_bench: no readable inputs", file=sys.stderr)
        return 1
    benches.sort(key=lambda b: b["bench"])

    report = {
        "schema": "lightwave-bench-v1",
        "benches": benches,
        "total_cases": sum(len(b["cases"]) for b in benches),
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"collect_bench: wrote {args.output} "
          f"({len(benches)} benches, {report['total_cases']} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
