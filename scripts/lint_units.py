#!/usr/bin/env python3
"""Unit-suffix lint for the optical layers.

The optics/ocs code mixes decibels, dBm, watts, and nanometers; a silent
unit mix-up there is exactly the class of bug a type system or a naming
convention must catch. The typed wrappers (common::Decibel, DbmPower,
Nanometers) are preferred, but raw `double` identifiers are allowed when
their name carries the unit:

    insertion_loss_db, launch_power_dbm, power_w, wavelength_nm, ...

This lint walks declarations in src/optics and src/ocs and flags raw
double/float identifiers whose stem names a physical quantity
(loss/power/wavelength/...) without a recognised unit suffix.

Exit status: 0 clean, 1 violations found. stdlib only; no pip deps.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINT_DIRS = ("src/optics", "src/ocs")

# Quantity stems that demand a unit suffix when typed as a raw double.
QUANTITY_STEMS = (
    "loss",
    "gain",
    "power",
    "attenuation",
    "penalty",
    "budget",
    "wavelength",
    "lambda",
    "sensitivity",
    "crosstalk",
)

UNIT_SUFFIXES = (
    "_db",
    "_dbm",
    "_w",
    "_mw",
    "_uw",
    "_nm",
    "_um",
    "_ghz",
    "_thz",
    "_db_per_km",
)

# `double insertion_loss_db = ...` declarations; the negative lookahead
# skips function declarations (`double Power() const`), whose return-unit
# conventions are out of scope for this lint.
DECL_RE = re.compile(r"\b(?:double|float)\s+(?:const\s+)?([A-Za-z_][A-Za-z0-9_]*)\s*(?!\()")

# Trailing `// units: <why>` suppresses the lint for that line — for
# genuinely dimensionless quantities (control-loop gains, fractions).
SUPPRESS_RE = re.compile(r"//\s*units:")

# Lines the lint must not read: comments, strings are stripped coarsely.
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def needs_suffix(identifier: str) -> bool:
    name = identifier.lower().rstrip("_")  # members use a trailing underscore
    if any(name.endswith(suffix) for suffix in UNIT_SUFFIXES):
        return False
    # A stem match anywhere in the final word of the identifier: `total_loss`
    # matches, `glossary` must not.
    words = name.split("_")
    return any(word in QUANTITY_STEMS for word in words)


def lint_file(path: Path) -> list[str]:
    violations = []
    in_block_comment = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        if SUPPRESS_RE.search(raw):
            continue
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
            else:
                line = line[:start] + line[end + 2 :]
        line = LINE_COMMENT_RE.sub("", line)
        line = STRING_RE.sub('""', line)
        for match in DECL_RE.finditer(line):
            identifier = match.group(1)
            if needs_suffix(identifier):
                violations.append(
                    f"{path}:{lineno}: raw double '{identifier}' names a physical "
                    f"quantity without a unit suffix ({', '.join(UNIT_SUFFIXES)}); "
                    f"rename it or use a typed unit from common/units.h"
                )
    return violations


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    violations: list[str] = []
    checked = 0
    for lint_dir in LINT_DIRS:
        for path in sorted((repo_root / lint_dir).rglob("*.h")) + sorted(
            (repo_root / lint_dir).rglob("*.cpp")
        ):
            checked += 1
            violations.extend(lint_file(path))
    for violation in violations:
        print(violation)
    if violations:
        print(f"lint_units: {len(violations)} violation(s) in {checked} files", file=sys.stderr)
        return 1
    print(f"lint_units: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
