#!/usr/bin/env python3
"""Gate RS-kernel throughput against the committed bench baseline.

Compares the freshly-aggregated bench report (collect_bench.py output,
schema lightwave-bench-v1) against the committed BENCH_micro.json and fails
when any watched case regresses by more than the tolerance.

CI runners and developer machines differ in absolute speed, so raw wall_ms
comparisons would be pure noise. Instead every watched case is normalized by
the run's own median wall_ms over the watched set ("how expensive is this
case relative to its siblings in the same run"), and the gate compares those
shape ratios: a genuine regression slows one kernel relative to the rest,
while a slow runner slows everything and cancels out. A uniform slowdown of
the whole watched set is invisible by design — the gate protects kernel
shape, not machine speed.

Usage:
    scripts/check_bench_regression.py --baseline BENCH_micro.json \
        --current build/BENCH_micro.json [--tolerance 0.25]

A second, independent mode gates the file-backed journaling overhead from a
SINGLE run (no committed baseline needed — the baseline case rode along in
the same run, so machine speed divides out exactly):

    scripts/check_bench_regression.py --svc BENCH_svc.json [--svc-tolerance 0.15]

reads the `recovery` bench's cases and fails when the group-commit or
periodic sync policy costs more than the tolerance over the same run's
journaling-off case. every_append is printed for reference, never gated:
one fsync per command prices the device, not the journal.

A third mode gates the LLM model outputs in the llm_backends bench. The
ring-backend Table 2 column is a deterministic model output (the ring
backend is byte-identical to the legacy closed form), so the optimal shape
must match the committed baseline exactly and the step times to 1e-9
relative — machine speed plays no role:

    scripts/check_bench_regression.py --llm-baseline BENCH_llm.json \
        --llm-current build/BENCH_llm.json

stdlib only; no pip deps.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

# The RS codec cases the gate watches: the scalar kernels (they must not
# regress when batch code rides alongside) and the batch kernels (the point
# of the exercise). Substring match against case names so google-benchmark
# arg suffixes (BM_RsDecodeMany/0) stay covered.
WATCHED_PREFIXES = (
    "BM_RsEncode",
    "BM_RsDecode",
    "BM_RsEncodeMany",
    "BM_RsDecodeMany",
)


def watched_cases(report: dict) -> dict[str, float]:
    """name -> wall_ms for every watched case in a lightwave-bench-v1 doc."""
    out: dict[str, float] = {}
    for bench in report.get("benches", []):
        for case in bench.get("cases", []):
            name = case.get("name", "")
            if not name.startswith(WATCHED_PREFIXES):
                continue
            wall_ms = float(case.get("wall_ms", 0.0))
            if wall_ms > 0.0:
                out[name] = wall_ms
    return out


def normalized(cases: dict[str, float]) -> dict[str, float]:
    median = statistics.median(cases.values())
    return {name: wall_ms / median for name, wall_ms in cases.items()}


def svc_cases(report: dict) -> dict[str, float]:
    """name -> wall_ms for the recovery bench's file-backed serve cases."""
    out: dict[str, float] = {}
    for bench in report.get("benches", []):
        if bench.get("bench") != "recovery":
            continue
        for case in bench.get("cases", []):
            name = case.get("name", "")
            wall_ms = float(case.get("wall_ms", 0.0))
            if name.startswith("file_journaling_") and wall_ms > 0.0:
                out[name.removeprefix("file_journaling_")] = wall_ms
    return out


def check_svc_overhead(report_path: Path, tolerance: float) -> int:
    cases = svc_cases(json.loads(report_path.read_text()))
    baseline = cases.get("off")
    if baseline is None:
        print("check_bench_regression: no file_journaling_off case in report",
              file=sys.stderr)
        return 1

    failures = []
    print(f"{'policy':<14} {'wall_ms':>9} {'overhead':>9}")
    print(f"{'off':<14} {baseline:>9.2f} {'baseline':>9}")
    for policy in ("group_commit", "periodic"):
        wall_ms = cases.get(policy)
        if wall_ms is None:
            print(f"check_bench_regression: missing file_journaling_{policy}",
                  file=sys.stderr)
            return 1
        overhead = wall_ms / baseline - 1.0
        flag = ""
        if overhead > tolerance:
            failures.append((policy, overhead))
            flag = "  << OVER BUDGET"
        print(f"{policy:<14} {wall_ms:>9.2f} {overhead:>+8.1%}{flag}")
    if "every_append" in cases:
        # Different command count/batch: its wall_ms is not baseline-comparable.
        print(f"{'every_append':<14} {cases['every_append']:>9.2f} {'(report)':>9}")

    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(
            f"check_bench_regression: journaling overhead beyond {tolerance:.0%} "
            f"(worst: {worst[0]} at {worst[1]:+.1%})",
            file=sys.stderr,
        )
        return 1
    print(f"check_bench_regression: sync-policy overhead within {tolerance:.0%}")
    return 0


def llm_ring_cases(report: dict) -> dict[str, dict[str, str]]:
    """name -> parsed params for the llm_backends ring Table 2 column."""
    out: dict[str, dict[str, str]] = {}
    for bench in report.get("benches", []):
        if bench.get("bench") != "llm_backends":
            continue
        for case in bench.get("cases", []):
            name = case.get("name", "")
            if not name.startswith("table2/ring/"):
                continue
            params = dict(
                kv.split("=", 1) for kv in case.get("params", "").split() if "=" in kv
            )
            out[name] = params
    return out


def check_llm_outputs(baseline_path: Path, current_path: Path) -> int:
    baseline = llm_ring_cases(json.loads(baseline_path.read_text()))
    current = llm_ring_cases(json.loads(current_path.read_text()))
    if not baseline:
        print("check_bench_regression: no table2/ring cases in baseline", file=sys.stderr)
        return 1
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"check_bench_regression: llm cases missing from current run: {missing}",
              file=sys.stderr)
        return 1

    failures = []
    print(f"{'case':<20} {'shape':>10} {'step_us':>22}")
    for name in sorted(baseline):
        base, cur = baseline[name], current[name]
        problems = []
        if base.get("shape") != cur.get("shape"):
            problems.append(f"shape {base.get('shape')} -> {cur.get('shape')}")
        for field in ("step_us", "baseline_us"):
            try:
                b, c = float(base[field]), float(cur[field])
            except (KeyError, ValueError):
                problems.append(f"{field} unreadable")
                continue
            if abs(c - b) > abs(b) * 1e-9:
                problems.append(f"{field} {b!r} -> {c!r}")
        flag = ""
        if problems:
            failures.append((name, "; ".join(problems)))
            flag = "  << DRIFT"
        print(f"{name:<20} {cur.get('shape', '?'):>10} {cur.get('step_us', '?'):>22}{flag}")

    if failures:
        for name, what in failures:
            print(f"check_bench_regression: {name}: {what}", file=sys.stderr)
        print(
            "check_bench_regression: ring-backend Table 2 outputs drifted from the "
            "committed baseline (the ring backend must stay byte-identical to the "
            "legacy path; regenerate BENCH_llm.json only for intentional model changes)",
            file=sys.stderr,
        )
        return 1
    print(f"check_bench_regression: {len(baseline)} llm cases match the baseline")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path)
    parser.add_argument("--current", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="max allowed relative slowdown of a case's normalized cost (0.25 = 25%%)",
    )
    parser.add_argument(
        "--svc",
        type=Path,
        help="single-run mode: gate file-backed journaling overhead in this report",
    )
    parser.add_argument(
        "--svc-tolerance",
        type=float,
        default=0.15,
        help="max journaling overhead over the same run's baseline (0.15 = 15%%)",
    )
    parser.add_argument(
        "--llm-baseline",
        type=Path,
        help="committed BENCH_llm.json to pin the ring-backend Table 2 column against",
    )
    parser.add_argument(
        "--llm-current",
        type=Path,
        help="freshly-aggregated BENCH_llm.json to check (requires --llm-baseline)",
    )
    args = parser.parse_args(argv)

    if (args.llm_baseline is None) != (args.llm_current is None):
        parser.error("--llm-baseline and --llm-current must be given together")
    if args.llm_baseline is not None:
        return check_llm_outputs(args.llm_baseline, args.llm_current)
    if args.svc is not None:
        return check_svc_overhead(args.svc, args.svc_tolerance)
    if args.baseline is None or args.current is None:
        parser.error("--baseline and --current are required without --svc")

    baseline = watched_cases(json.loads(args.baseline.read_text()))
    current = watched_cases(json.loads(args.current.read_text()))
    if not baseline or not current:
        print("check_bench_regression: no watched cases found", file=sys.stderr)
        return 1

    shared = sorted(set(baseline) & set(current))
    if len(shared) < 3:
        # A median over one or two cases cannot anchor a shape comparison.
        print(
            f"check_bench_regression: only {len(shared)} shared watched cases; "
            "need >= 3 for a meaningful median",
            file=sys.stderr,
        )
        return 1
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"check_bench_regression: cases missing from current run: {missing}",
              file=sys.stderr)
        return 1

    base_norm = normalized({n: baseline[n] for n in shared})
    cur_norm = normalized({n: current[n] for n in shared})

    failures = []
    print(f"{'case':<28} {'base':>8} {'cur':>8} {'ratio':>7}")
    for name in shared:
        ratio = cur_norm[name] / base_norm[name]
        flag = ""
        if ratio > 1.0 + args.tolerance:
            failures.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"{name:<28} {base_norm[name]:>8.3f} {cur_norm[name]:>8.3f} {ratio:>7.3f}{flag}")

    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(
            f"check_bench_regression: {len(failures)} case(s) beyond "
            f"{args.tolerance:.0%} (worst: {worst[0]} at {worst[1]:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"check_bench_regression: {len(shared)} cases within {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
