#!/usr/bin/env python3
"""Raw-synchronization-primitive lint.

Every mutex and condition variable in the tree must go through the annotated
wrappers in src/common/sync.h (lw::Mutex / lw::MutexLock / lw::CondVar): the
wrappers carry the Clang thread-safety capabilities that make
`-Werror=thread-safety` meaningful and feed the lock-rank deadlock detector.
A raw std primitive anywhere else is invisible to BOTH layers, so this lint
walks src/, tests/, bench/, and examples/ and flags any use of:

    std::mutex, std::recursive_mutex, std::timed_mutex, std::shared_mutex,
    std::lock_guard, std::unique_lock, std::scoped_lock, std::shared_lock,
    std::condition_variable (and _any), plus the <mutex> / <shared_mutex> /
    <condition_variable> includes that carry them.

Allowed exceptions: src/common/sync.h and src/common/sync.cpp (the wrappers
themselves — the detector cannot instrument its own internal lock).
A trailing `// raw-sync: <why>` suppresses the lint for that line.

Exit status: 0 clean, 1 violations found. stdlib only; no pip deps.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINT_DIRS = ("src", "tests", "bench", "examples")

# The wrapper implementation is the one place raw primitives are the point.
ALLOWED_FILES = {
    "src/common/sync.h",
    "src/common/sync.cpp",
}

RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|shared_)?mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b"
)

RAW_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](?:mutex|shared_mutex|condition_variable)[>"]')

# Trailing `// raw-sync: <why>` suppresses the lint for that line.
SUPPRESS_RE = re.compile(r"//\s*raw-sync:")

LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def lint_file(path: Path, rel: str) -> list[str]:
    violations = []
    in_block_comment = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        if SUPPRESS_RE.search(raw):
            continue
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
            else:
                line = line[:start] + line[end + 2 :]
        # Includes are matched before string stripping (the header name is
        # inside quotes/brackets); everything else after.
        if RAW_INCLUDE_RE.search(LINE_COMMENT_RE.sub("", line)):
            violations.append(
                f"{rel}:{lineno}: raw sync include; use common/sync.h "
                f"(lw::Mutex / lw::MutexLock / lw::CondVar) instead"
            )
            continue
        line = LINE_COMMENT_RE.sub("", line)
        line = STRING_RE.sub('""', line)
        match = RAW_PRIMITIVE_RE.search(line)
        if match:
            violations.append(
                f"{rel}:{lineno}: raw '{match.group(0)}'; use the annotated "
                f"wrappers in common/sync.h so the thread-safety analysis and "
                f"the lock-rank detector both see it"
            )
    return violations


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    violations: list[str] = []
    checked = 0
    for lint_dir in LINT_DIRS:
        root = repo_root / lint_dir
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.h")) + sorted(root.rglob("*.cpp")):
            rel = path.relative_to(repo_root).as_posix()
            if rel in ALLOWED_FILES:
                continue
            checked += 1
            violations.extend(lint_file(path, rel))
    for violation in violations:
        print(violation)
    if violations:
        print(f"lint_locks: {len(violations)} violation(s) in {checked} files", file=sys.stderr)
        return 1
    print(f"lint_locks: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
