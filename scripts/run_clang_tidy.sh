#!/usr/bin/env bash
# Runs clang-tidy (config: repo-root .clang-tidy, plus the per-directory
# overrides in tests/.clang-tidy and bench/.clang-tidy) over every .cpp under
# src/, tests/, and bench/, against a compile_commands.json generated into
# build-tidy/. Files are linted in parallel (one clang-tidy process per TU,
# nproc at a time).
#
# Usage: scripts/run_clang_tidy.sh [extra clang-tidy args...]
#
# Exits 0 when the tree is clean OR when clang-tidy is not installed (the
# container bakes in only gcc; CI installs clang-tidy and gets the real gate).
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" > /dev/null 2>&1; then
  echo "run_clang_tidy: '${tidy_bin}' not found; skipping (install clang-tidy" \
       "or set CLANG_TIDY to enable the static-analysis gate)" >&2
  exit 0
fi

build_dir="build-tidy"
cmake -B "${build_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || {
  echo "run_clang_tidy: cmake configure failed" >&2
  exit 1
}

mapfile -t sources < <(find src tests bench -name '*.cpp' | sort)
if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "run_clang_tidy: no sources under src/, tests/, or bench/" >&2
  exit 1
fi

jobs="$(nproc 2> /dev/null || echo 4)"
echo "run_clang_tidy: checking ${#sources[@]} files (${jobs} jobs) with" \
     "$("${tidy_bin}" --version | head -n 1)"

# xargs exits 123 when any invocation fails; each TU lints independently so
# one file's findings never mask another's.
status=0
printf '%s\0' "${sources[@]}" |
  xargs -0 -n 1 -P "${jobs}" "${tidy_bin}" -p "${build_dir}" --quiet "$@" || status=1

if [[ "${status}" -eq 0 ]]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above must be fixed (WarningsAsErrors is on)" >&2
fi
exit "${status}"
