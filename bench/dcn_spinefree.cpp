// §4.2 DCN results (summarizing [47]): the spine-free lightwave DCN delivers
// ~30% CapEx and ~40% power reduction vs a spine-full Clos, and topology
// engineering adds ~30% throughput and ~10% flow-completion-time improvement
// vs a uniform direct mesh under long-lived skewed demand. Includes the
// reconfiguration-plan ablation for a shifting traffic matrix.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "core/tco.h"
#include "core/topology_engineer.h"
#include "sim/dcn_flow.h"
#include "sim/traffic.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "dcn_spinefree");
  bench::WallTimer total_timer;
  std::printf("=== spine-full vs spine-free: CapEx and power ===\n");
  Table tco({"fabric", "relative capex", "relative power"});
  for (const auto& row : core::DcnFabricComparison(64, 25600.0)) {
    tco.AddRow({row.name, Table::Factor(row.relative_cost), Table::Factor(row.relative_power)});
  }
  std::printf("%s", tco.Render().c_str());
  std::printf("paper: 30%% CapEx reduction, 41%% power reduction\n\n");

  // --- throughput and FCT: uniform mesh vs engineered mesh -------------------
  const int blocks = 16;
  const double uplink = 1000.0;
  common::Rng rng(2023);
  const auto demand = sim::DisjointHotspotTraffic(blocks, blocks * 400.0, 6, 0.5, rng);
  const auto uniform = sim::DcnTopology::UniformMesh(blocks, uplink);
  const auto engineered = sim::DcnTopology::EngineeredMesh(blocks, uplink, demand);
  const auto clos = sim::DcnTopology::SpineClos(blocks, uplink);

  std::printf("=== throughput: max concurrent-flow scale under skewed demand ===\n");
  Table throughput({"topology", "alpha", "vs uniform mesh"});
  const double a_uniform = sim::MaxConcurrentFlowScale(uniform, demand);
  for (const auto& [name, topo] :
       {std::pair<const char*, const sim::DcnTopology*>{"spine-full Clos", &clos},
        {"uniform mesh", &uniform},
        {"engineered mesh", &engineered}}) {
    const double a = sim::MaxConcurrentFlowScale(*topo, demand);
    throughput.AddRow({name, Table::Num(a, 3), Table::Factor(a / a_uniform)});
  }
  std::printf("%s", throughput.Render().c_str());
  std::printf("paper: topology+traffic engineering gives ~30%% throughput vs uniform mesh\n\n");

  std::printf("=== flow completion time (event-driven max-min fair simulation) ===\n");
  sim::FlowSimConfig config;
  config.sim_seconds = 1.0;
  config.load = 0.55;
  Table fct({"topology", "flows", "mean FCT ms", "p50 ms", "p99 ms", "mean rate Gb/s"});
  sim::FlowSimResult uniform_result;
  for (const auto& [name, topo] :
       {std::pair<const char*, const sim::DcnTopology*>{"uniform mesh", &uniform},
        {"engineered mesh", &engineered}}) {
    const auto r = sim::SimulateFlows(*topo, demand, config);
    if (topo == &uniform) uniform_result = r;
    fct.AddRow({name, std::to_string(r.completed), Table::Num(r.mean_fct_ms, 2),
                Table::Num(r.p50_fct_ms, 2), Table::Num(r.p99_fct_ms, 2),
                Table::Num(r.mean_throughput_gbps, 1)});
  }
  std::printf("%s", fct.Render().c_str());
  const auto engineered_result = sim::SimulateFlows(engineered, demand, config);
  std::printf("FCT improvement: %.1f%% (paper: ~10%%)\n\n",
              100.0 * (1.0 - engineered_result.mean_fct_ms / uniform_result.mean_fct_ms));

  // --- topology-engineering reconfiguration under demand shift -----------------
  std::printf("=== incremental reconfiguration for shifting demand ===\n");
  core::TopologyEngineer engineer(blocks, /*ocs_count=*/32, /*trunk_gbps=*/uplink / 32.0);
  engineer.Engineer(demand);
  Table reconfig({"shift", "links added", "links removed", "links unchanged"});
  for (int step : {0, 1, 4, 8}) {
    const auto shifted = sim::RotateHotspots(demand, step);
    core::TopologyEngineer fresh(blocks, 32, uplink / 32.0);
    fresh.Engineer(demand);
    const auto plan = fresh.Reengineer(shifted);
    reconfig.AddRow({std::to_string(step), std::to_string(plan.links_added),
                     std::to_string(plan.links_removed),
                     std::to_string(plan.links_unchanged)});
  }
  std::printf("%s", reconfig.Render().c_str());
  std::printf("(unchanged trunks ride through reconfiguration undisturbed — the OCS "
              "guarantee of §2.3)\n");
  json.Add("total", "blocks=" + std::to_string(blocks), total_timer.ms());
  return 0;
}
