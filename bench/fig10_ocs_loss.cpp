// Fig. 10: Palomar OCS optical performance. (a) insertion-loss histogram
// over all 136x136 cross-connections of a sampled switch — typically < 2 dB
// with a tail from splice/connector variation; (b) return loss vs port —
// typically -46 dB, spec < -38 dB.
#include <cstdio>

#include "bench_json.h"
#include "common/histogram.h"
#include "common/parallel.h"
#include "ocs/optical_core.h"

using namespace lightwave;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "fig10_ocs_loss");
  bench::WallTimer total_timer;

  ocs::OpticalCore core{common::Rng(2024)};
  const int ports = core.port_count();

  std::printf("=== Fig. 10a: insertion loss over all %dx%d cross-connections ===\n", ports,
              ports);
  common::SampleSet losses;
  common::Histogram histogram(0.5, 3.5, 30);
  common::SampleSet return_losses;
  // Measure every (north, south) permutation pairing through the core.
  // Alignment state is per-mirror; establishing each pairing once samples
  // the full distribution.
  const bench::WallTimer survey_timer;
  for (int n = 0; n < ports; ++n) {
    // Establishing all 136^2 paths would re-align mirrors 18k times; the
    // per-path loss depends on the two collimator ports plus residual
    // alignment, so measure the established diagonal and synthesize the
    // full matrix from MeasurePath. The row fans out on the parallel
    // runtime (MeasurePath is a const readback), and the samples are
    // accumulated in south-port order below, so the histogram is
    // bit-identical to the sequential sweep.
    const auto row = common::parallel::ParallelMap(
        static_cast<std::uint64_t>(ports),
        [&](std::uint64_t s) { return core.MeasurePath(n, static_cast<int>(s)); });
    for (int s = 0; s < ports; ++s) {
      const auto& metrics = row[static_cast<std::size_t>(s)];
      losses.Add(metrics.insertion_loss.value());
      histogram.Add(metrics.insertion_loss.value());
      if (n == 0) return_losses.Add(metrics.return_loss.value());
    }
    // Re-align this north mirror once against a rotating partner so the
    // alignment-residual component varies realistically across the matrix.
    // Alignment mutates mirror state, so it stays on this thread, between
    // row fan-outs.
    (void)core.EstablishPath(n, (n * 31 + 7) % ports);
  }
  json.Add("fig10a_insertion_loss_survey",
           "ports=" + std::to_string(ports) + " paths=" + std::to_string(ports * ports),
           survey_timer.ms());

  std::printf("%s", histogram.Render(50).c_str());
  std::printf("samples=%zu mean=%.2f dB p50=%.2f p95=%.2f p99=%.2f max=%.2f dB\n",
              losses.count(), losses.mean(), losses.Percentile(50), losses.Percentile(95),
              losses.Percentile(99), losses.max());
  std::printf("fraction under 2 dB: %.1f%% (paper: \"typically less than 2 dB\")\n",
              100.0 * [&] {
                int under = 0;
                for (double x : losses.samples()) under += x < 2.0 ? 1 : 0;
                return static_cast<double>(under) / losses.count();
              }());

  std::printf("\n=== Fig. 10b: return loss by port ===\n");
  common::Histogram rl_hist(-52.0, -38.0, 14);
  common::SampleSet rl;
  json.Time(
      "fig10b_return_loss", "ports=" + std::to_string(ports),
      [&] {
        for (int n = 0; n < ports; ++n) {
          const auto metrics = core.MeasurePath(n, n);
          rl_hist.Add(metrics.return_loss.value());
          rl.Add(metrics.return_loss.value());
        }
      });
  std::printf("%s", rl_hist.Render(50).c_str());
  std::printf("mean=%.1f dB worst=%.1f dB spec=-38 dB (paper: typ -46 dB, spec < -38)\n",
              rl.mean(), rl.max());
  std::printf("ports violating spec: %d\n", [&] {
    int bad = 0;
    for (double x : rl.samples()) bad += x > -38.0 ? 1 : 0;
    return bad;
  }());
  json.Add("total", "ports=" + std::to_string(ports), total_timer.ms());
  return 0;
}
