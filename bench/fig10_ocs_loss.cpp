// Fig. 10: Palomar OCS optical performance. (a) insertion-loss histogram
// over all 136x136 cross-connections of a sampled switch — typically < 2 dB
// with a tail from splice/connector variation; (b) return loss vs port —
// typically -46 dB, spec < -38 dB.
#include <cstdio>

#include "common/histogram.h"
#include "ocs/optical_core.h"

using namespace lightwave;

int main() {
  ocs::OpticalCore core{common::Rng(2024)};
  const int ports = core.port_count();

  std::printf("=== Fig. 10a: insertion loss over all %dx%d cross-connections ===\n", ports,
              ports);
  common::SampleSet losses;
  common::Histogram histogram(0.5, 3.5, 30);
  common::SampleSet return_losses;
  // Measure every (north, south) permutation pairing through the core.
  // Alignment state is per-mirror; establishing each pairing once samples
  // the full distribution.
  for (int n = 0; n < ports; ++n) {
    for (int s = 0; s < ports; ++s) {
      // Establishing all 136^2 paths would re-align mirrors 18k times; the
      // per-path loss depends on the two collimator ports plus residual
      // alignment, so measure the established diagonal and synthesize the
      // full matrix from MeasurePath.
      const auto metrics = core.MeasurePath(n, s);
      losses.Add(metrics.insertion_loss.value());
      histogram.Add(metrics.insertion_loss.value());
      if (n == 0) return_losses.Add(metrics.return_loss.value());
    }
    // Re-align this north mirror once against a rotating partner so the
    // alignment-residual component varies realistically across the matrix.
    (void)core.EstablishPath(n, (n * 31 + 7) % ports);
  }

  std::printf("%s", histogram.Render(50).c_str());
  std::printf("samples=%zu mean=%.2f dB p50=%.2f p95=%.2f p99=%.2f max=%.2f dB\n",
              losses.count(), losses.mean(), losses.Percentile(50), losses.Percentile(95),
              losses.Percentile(99), losses.max());
  std::printf("fraction under 2 dB: %.1f%% (paper: \"typically less than 2 dB\")\n",
              100.0 * [&] {
                int under = 0;
                for (double x : losses.samples()) under += x < 2.0 ? 1 : 0;
                return static_cast<double>(under) / losses.count();
              }());

  std::printf("\n=== Fig. 10b: return loss by port ===\n");
  common::Histogram rl_hist(-52.0, -38.0, 14);
  common::SampleSet rl;
  for (int n = 0; n < ports; ++n) {
    const auto metrics = core.MeasurePath(n, n);
    rl_hist.Add(metrics.return_loss.value());
    rl.Add(metrics.return_loss.value());
  }
  std::printf("%s", rl_hist.Render(50).c_str());
  std::printf("mean=%.1f dB worst=%.1f dB spec=-38 dB (paper: typ -46 dB, spec < -38)\n",
              rl.mean(), rl.max());
  std::printf("ports violating spec: %d\n", [&] {
    int bad = 0;
    for (double x : rl.samples()) bad += x > -38.0 ? 1 : 0;
    return bad;
  }());
  return 0;
}
