// Dynamic availability (§4.2.2/§4.2.3): a month-long training run under
// random cube failures. The reconfigurable fabric swaps in spare cubes
// (milliseconds of OCS switching + link bring-up, restart from checkpoint);
// the static fabric waits out every hardware repair. Also the §4.2.3
// deployment timeline: usable capacity during pod build-out.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "core/tco.h"
#include "sim/training_run.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "training_availability");
  bench::WallTimer total_timer;
  std::printf("=== month-long training run: goodput under cube failures ===\n");
  Table goodput({"slice", "cube MTBF h", "fabric", "failures", "swaps", "stall h",
                 "rollback steps", "goodput"});
  for (const auto& shape : {tpu::SliceShape{2, 2, 2}, tpu::SliceShape{2, 2, 4},
                            tpu::SliceShape{2, 4, 4}}) {
    for (double mtbf : {4000.0, 1000.0}) {
      for (bool reconfigurable : {true, false}) {
        sim::TrainingRunConfig config;
        config.shape = shape;
        config.cube_mtbf_hours = mtbf;
        config.reconfigurable = reconfigurable;
        const auto result = sim::SimulateTrainingRun(config);
        goodput.AddRow({shape.ToString(), Table::Num(mtbf, 0),
                        reconfigurable ? "reconfigurable" : "static",
                        std::to_string(result.failures), std::to_string(result.cube_swaps),
                        Table::Num(result.stall_hours, 1),
                        std::to_string(result.steps_lost_to_rollback),
                        Table::Percent(result.goodput, 1)});
      }
    }
  }
  std::printf("%s", goodput.Render().c_str());
  std::printf("(cube swap costs milliseconds of switching + checkpoint reload; the static\n"
              "fabric eats the full hardware MTTR per failure — §4.2.2)\n\n");

  std::printf("=== checkpoint-interval ablation (1024-chip slice, MTBF 1000 h) ===\n");
  Table ckpt({"checkpoint every N steps", "rollback steps", "goodput"});
  for (int interval : {5, 20, 50, 200, 1000}) {
    sim::TrainingRunConfig config;
    config.shape = tpu::SliceShape{2, 2, 4};
    config.cube_mtbf_hours = 1000.0;
    config.checkpoint_interval_steps = interval;
    const auto result = sim::SimulateTrainingRun(config);
    ckpt.AddRow({std::to_string(interval), std::to_string(result.steps_lost_to_rollback),
                 Table::Percent(result.goodput, 2)});
  }
  std::printf("%s\n", ckpt.Render().c_str());

  std::printf("=== §4.2.3: deployment timeline (8 racks/week, 2-week fabric check) ===\n");
  const auto timeline = core::SimulateDeployment(64, 8, 2);
  std::printf("week:        ");
  for (std::size_t w = 0; w < timeline.lightwave_usable_fraction.size(); ++w) {
    std::printf("%5zu", w + 1);
  }
  std::printf("\nlightwave %%: ");
  for (double f : timeline.lightwave_usable_fraction) std::printf("%5.0f", f * 100);
  std::printf("\nstatic %%:    ");
  for (double f : timeline.static_usable_fraction) std::printf("%5.0f", f * 100);
  std::printf("\ncapacity-weeks during build-out: lightwave %.1f vs static %.1f (%.1fx)\n",
              timeline.lightwave_capacity_weeks, timeline.static_capacity_weeks,
              timeline.lightwave_capacity_weeks /
                  std::max(0.1, timeline.static_capacity_weeks));
  std::printf("(the TPU v3 pod \"could not be verified until all 1024 chips and cables\n"
              "were installed\"; modular lightwave deployment banks capacity every week)\n");
  json.Add("total", "", total_timer.ms());
  return 0;
}
