// Fleet-service throughput: what durability and sharding cost, and what
// sharding buys.
//
// Part 1 (single shard, overhead gate): the same multi-tenant stream is
// driven through group-commit batches twice — journaling + snapshots on
// (production) vs off (pure in-memory apply). The journaling overhead must
// stay under 15%: a batched WAL append is one CRC32C + memcpy per command
// into an append-only device, far cheaper than the fabric allocation it
// protects.
//
// Part 2 (shard x tenant sweep, scale gate): S pipelined shards (journal
// thread + apply thread each) run disjoint tenant partitions concurrently.
// The ISSUE's acceptance bar: some (shards, tenants) point must clear
// 100k commands/s with journaling ON.
//
// Every case reports real commands/s (in params) and bytes/s (journal bytes
// actually appended, or encoded command bytes when journaling is off) —
// BENCH_svc.json no longer carries the placeholder bytes_per_sec: 0.0.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "fleet/shard.h"
#include "journal/storage.h"
#include "svc/fleet_service.h"
#include "svc/request_stream.h"
#include "tpu/superpod.h"

using namespace lightwave;

namespace {

constexpr std::uint64_t kStreamSeed = 77;
constexpr std::uint64_t kPodSeed = 5;
constexpr int kPodCubes = 16;  // shard partition: 16-cube pod, 6 OCSes/dim pair
constexpr int kOcsPerDim = 2;
constexpr std::size_t kBatch = 32;
constexpr int kRepeats = 3;
constexpr std::uint64_t kSingleCommands = 20000;
constexpr std::uint64_t kSweepCommands = 48000;
constexpr double kZipf = 0.5;
// Snapshots serialize the full fabric state; at the default cadence (64) they
// dwarf the WAL appends this bench is measuring. 4096 keeps recovery bounded
// while letting the journaling cost show through.
constexpr std::uint64_t kSnapshotInterval = 4096;

svc::RequestStreamConfig StreamConfig(std::uint32_t tenants) {
  svc::RequestStreamConfig config;
  config.tenant_count = tenants;
  config.zipf_skew = kZipf;
  return config;
}

struct RunResult {
  double seconds = -1.0;
  std::uint64_t bytes = 0;
};

/// Single-shard batched serve on the calling thread.
RunResult RunSingle(bool journaling) {
  RunResult result;
  tpu::Superpod pod(kPodSeed, kPodCubes, kOcsPerDim);
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  svc::FleetServiceOptions options;
  options.journaling = journaling;
  options.queue_capacity = kBatch;
  options.snapshot_interval = kSnapshotInterval;
  svc::FleetService service(pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, options);
  if (!service.Recover().ok()) return result;
  const svc::RequestStream stream(kStreamSeed, kSingleCommands, StreamConfig(8));

  const bench::WallTimer timer;
  for (std::uint64_t i = 0; i < kSingleCommands; ++i) {
    if (!service.Submit(stream.Command(i)).ok()) return result;
    if (service.queue_depth() == kBatch) service.ProcessBatch(kBatch);
  }
  while (service.queue_depth() > 0) {
    if (service.ProcessBatch(kBatch) == 0) break;
  }
  const double seconds = timer.ms() / 1e3;
  if (service.stats().processed != kSingleCommands) return result;

  result.seconds = seconds;
  if (journaling) {
    result.bytes = service.wal().appended_bytes();
  } else {
    for (std::uint64_t i = 0; i < kSingleCommands; ++i) {
      result.bytes += stream.Command(i).Encode().size();
    }
  }
  return result;
}

/// One shard of the sweep: pod + storages + pipelined shard over a tenant
/// partition.
struct SweepShard {
  std::unique_ptr<tpu::Superpod> pod;
  journal::MemStorage wal;
  journal::MemStorage snapshot;
  std::unique_ptr<fleet::Shard> shard;
};

/// S pipelined shards drain pre-offered tenant partitions concurrently
/// (tenant t lives on shard t mod S — disjoint per-tenant command spaces).
RunResult RunSweep(std::uint32_t shards, std::uint32_t tenants) {
  RunResult result;
  const svc::RequestStream stream(kStreamSeed, kSweepCommands, StreamConfig(tenants));

  std::vector<SweepShard> fleet(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    fleet[s].pod = std::make_unique<tpu::Superpod>(kPodSeed + s, kPodCubes, kOcsPerDim);
    fleet::ShardOptions options;
    options.batch_size = kBatch;
    options.pipeline_depth = 8;
    options.service.snapshot_interval = kSnapshotInterval;
    options.admission.default_quota = fleet::TenantQuota{1e18, 1e18, 1.0};
    options.admission.per_tenant_queue_capacity = kSweepCommands;
    fleet[s].shard = std::make_unique<fleet::Shard>(
        s, *fleet[s].pod, core::AllocationPolicy::kReconfigurable, fleet[s].wal,
        fleet[s].snapshot, options);
    if (!fleet[s].shard->Recover().ok()) return result;
  }
  // Pre-offer the whole trace so the timed region measures the pipelines,
  // not the offer loop.
  for (std::uint64_t i = 0; i < kSweepCommands; ++i) {
    const svc::SliceCommand cmd = stream.Command(i);
    if (!fleet[cmd.tenant_id % shards].shard->Offer(cmd).ok()) return result;
  }

  const bench::WallTimer timer;
  for (auto& s : fleet) s.shard->Start();
  for (auto& s : fleet) s.shard->Drain();
  const double seconds = timer.ms() / 1e3;
  for (auto& s : fleet) s.shard->Stop();

  std::uint64_t processed = 0;
  for (auto& s : fleet) {
    processed += s.shard->service().stats().processed;
    result.bytes += s.shard->service().wal().appended_bytes();
  }
  if (processed != kSweepCommands) return result;
  result.seconds = seconds;
  return result;
}

std::string Params(const std::string& base, std::uint64_t commands, double seconds) {
  char rate[64];
  std::snprintf(rate, sizeof(rate), " commands_per_sec=%.0f",
                static_cast<double>(commands) / seconds);
  return base + " commands=" + std::to_string(commands) +
         " batch=" + std::to_string(kBatch) + rate;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "svc_throughput");

  // --- Part 1: single-shard journaling overhead ----------------------------
  RunResult off;
  RunResult on;
  off.seconds = on.seconds = 1e30;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const RunResult off_run = RunSingle(/*journaling=*/false);
    const RunResult on_run = RunSingle(/*journaling=*/true);
    if (off_run.seconds < 0.0 || on_run.seconds < 0.0) {
      std::printf("single-shard serve failed\n");
      return 1;
    }
    if (off_run.seconds < off.seconds) off = off_run;
    if (on_run.seconds < on.seconds) on = on_run;
  }
  const double off_rps = kSingleCommands / off.seconds;
  const double on_rps = kSingleCommands / on.seconds;
  const double overhead_pct = (on.seconds / off.seconds - 1.0) * 100.0;

  std::printf("single shard (%d cubes), %llu-command stream, best of %d\n", kPodCubes,
              static_cast<unsigned long long>(kSingleCommands), kRepeats);
  std::printf("  journaling off : %10.0f commands/s  (%7.2f ms)\n", off_rps,
              off.seconds * 1e3);
  std::printf("  journaling on  : %10.0f commands/s  (%7.2f ms)\n", on_rps,
              on.seconds * 1e3);
  std::printf("  overhead       : %+10.2f %%  (budget: < 15%%)\n", overhead_pct);

  json.Add("journaling_off", Params("tenants=8", kSingleCommands, off.seconds),
           off.seconds * 1e3, off.bytes / off.seconds);
  json.Add("journaling_on", Params("tenants=8", kSingleCommands, on.seconds),
           on.seconds * 1e3, on.bytes / on.seconds);

  // --- Part 2: shard x tenant sweep (journaling on, pipelined) -------------
  double best_rps = 0.0;
  std::printf("shard x tenant sweep, %llu commands, journaling on, best of %d\n",
              static_cast<unsigned long long>(kSweepCommands), kRepeats);
  for (const auto& [shards, tenants] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{{1, 4}, {2, 8}, {4, 16}}) {
    RunResult best;
    best.seconds = 1e30;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      const RunResult run = RunSweep(shards, tenants);
      if (run.seconds < 0.0) {
        std::printf("sweep point shards=%u tenants=%u failed\n", shards, tenants);
        return 1;
      }
      if (run.seconds < best.seconds) best = run;
    }
    const double rps = kSweepCommands / best.seconds;
    best_rps = std::max(best_rps, rps);
    std::printf("  shards=%u tenants=%-2u : %10.0f commands/s  (%7.2f ms)\n", shards,
                tenants, rps, best.seconds * 1e3);
    json.Add("sweep_shards" + std::to_string(shards) + "_tenants" + std::to_string(tenants),
             Params("shards=" + std::to_string(shards) +
                        " tenants=" + std::to_string(tenants) + " zipf=0.5 journaling=on",
                    kSweepCommands, best.seconds),
             best.seconds * 1e3, best.bytes / best.seconds);
  }
  std::printf("  best           : %10.0f commands/s  (gate: >= 100000)\n", best_rps);

  const bool overhead_ok = overhead_pct < 15.0;
  const bool scale_ok = best_rps >= 100000.0;
  if (!overhead_ok) std::printf("FAIL: journaling overhead over budget\n");
  if (!scale_ok) std::printf("FAIL: sweep under 100k commands/s\n");
  return overhead_ok && scale_ok ? 0 : 1;
}
