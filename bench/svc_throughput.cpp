// Measures what durability costs the fleet-service front-end: the same
// seeded slice-request stream is served twice — once with the write-ahead
// journal and periodic snapshots on (the production configuration) and once
// with journaling off (pure in-memory apply) — and the journaling overhead
// must stay under 15%, the acceptance bar from the durability design: the
// WAL append is a CRC32C + memcpy into an append-only device, far cheaper
// than the fabric allocation it protects.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_json.h"
#include "journal/storage.h"
#include "svc/fleet_service.h"
#include "svc/request_stream.h"
#include "tpu/superpod.h"

using namespace lightwave;

namespace {

constexpr std::uint64_t kCommands = 6000;
constexpr int kRepeats = 5;
constexpr std::uint64_t kStreamSeed = 77;
constexpr std::uint64_t kPodSeed = 5;

/// One full serve of the stream; returns wall seconds.
double RunOnce(bool journaling) {
  tpu::Superpod pod(kPodSeed);
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  svc::FleetServiceOptions options;
  options.journaling = journaling;
  svc::FleetService service(pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, options);
  if (!service.Recover().ok()) return -1.0;
  const svc::RequestStream stream(kStreamSeed, kCommands);
  const bench::WallTimer timer;
  const auto served = service.Serve(stream);
  const double seconds = timer.ms() / 1e3;
  if (served.crashed || served.processed != kCommands) return -1.0;
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "svc_throughput");

  double off_s = 1e30;
  double on_s = 1e30;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const double off = RunOnce(/*journaling=*/false);
    const double on = RunOnce(/*journaling=*/true);
    if (off < 0.0 || on < 0.0) {
      std::printf("serve failed\n");
      return 1;
    }
    off_s = std::min(off_s, off);
    on_s = std::min(on_s, on);
  }

  const double off_rps = kCommands / off_s;
  const double on_rps = kCommands / on_s;
  const double overhead_pct = (on_s / off_s - 1.0) * 100.0;

  std::printf("fleet service, %llu-command stream, best of %d runs\n",
              static_cast<unsigned long long>(kCommands), kRepeats);
  std::printf("  journaling off : %10.0f requests/s  (%7.2f ms)\n", off_rps, off_s * 1e3);
  std::printf("  journaling on  : %10.0f requests/s  (%7.2f ms)\n", on_rps, on_s * 1e3);
  std::printf("  overhead       : %+10.2f %%  (budget: < 15%%)\n", overhead_pct);

  const std::string params = "commands=" + std::to_string(kCommands) +
                             " repeats=" + std::to_string(kRepeats);
  json.Add("journaling_off", params, off_s * 1e3);
  json.Add("journaling_on", params, on_s * 1e3);
  return overhead_pct < 15.0 ? 0 : 1;
}
