// §4.2.4: scheduling-efficiency benefits of reconfigurability. The 64-chip
// elemental cube + non-blocking lightwave fabric lets the scheduler compose
// slices from ANY idle healthy cubes; the TPU v3-style baseline needs
// contiguous blocks. Also the §4.2.2 repair ablation: cube swap under
// failures keeps jobs alive on the reconfigurable fabric only.
#include <cstdio>

#include "common/table.h"
#include "core/scheduler.h"
#include "tpu/superpod.h"

using namespace lightwave;
using common::Table;

namespace {

void RunComparison(const char* title, const core::WorkloadConfig& config) {
  std::printf("--- %s ---\n", title);
  Table table({"policy", "submitted", "accepted", "acceptance", "utilization", "repaired",
               "lost to failure"});
  for (auto policy :
       {core::AllocationPolicy::kReconfigurable, core::AllocationPolicy::kContiguous}) {
    tpu::Superpod pod(99);
    const auto result = core::SimulateWorkload(pod, policy, config);
    table.AddRow({core::ToString(policy), std::to_string(result.submitted),
                  std::to_string(result.accepted), Table::Percent(result.acceptance_rate, 1),
                  Table::Percent(result.utilization, 1), std::to_string(result.repaired),
                  std::to_string(result.lost_to_failure)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main() {
  std::printf("=== scheduling efficiency: reconfigurable vs contiguous allocation ===\n");

  core::WorkloadConfig moderate;
  moderate.sim_hours = 3000.0;
  moderate.arrival_rate_per_hour = 1.4;
  moderate.mean_duration_hours = 8.0;
  RunComparison("moderate load (~80% offered)", moderate);

  core::WorkloadConfig heavy = moderate;
  heavy.arrival_rate_per_hour = 2.5;
  RunComparison("heavy load (oversubscribed)", heavy);

  core::WorkloadConfig large_jobs = moderate;
  large_jobs.size_menu_cubes = {4, 8, 8, 16, 16, 32};
  large_jobs.arrival_rate_per_hour = 0.6;
  RunComparison("large-slice mix (the 4x-larger-slices regime of TPU v4)", large_jobs);

  core::WorkloadConfig with_failures = moderate;
  with_failures.cube_mtbf_hours = 1500.0;
  with_failures.cube_repair_hours = 24.0;
  RunComparison("moderate load with cube failures (MTBF 1500 h/cube)", with_failures);

  // Production behaviour: jobs queue instead of being rejected; the metric
  // becomes wait time.
  std::printf("\n--- queued jobs (production mode): wait-time comparison ---\n");
  Table queued({"policy", "submitted", "ran", "from queue", "mean wait h", "max wait h",
                "utilization"});
  core::WorkloadConfig queue_config = heavy;
  queue_config.queue_jobs = true;
  for (auto policy :
       {core::AllocationPolicy::kReconfigurable, core::AllocationPolicy::kContiguous}) {
    tpu::Superpod pod(99);
    const auto r = core::SimulateWorkload(pod, policy, queue_config);
    queued.AddRow({core::ToString(policy), std::to_string(r.submitted),
                   std::to_string(r.accepted), std::to_string(r.started_from_queue),
                   Table::Num(r.mean_wait_hours, 1), Table::Num(r.max_wait_hours, 1),
                   Table::Percent(r.utilization, 1)});
  }
  std::printf("%s", queued.Render().c_str());

  std::printf("\npaper: TPU v4 fleet runs at > 98%% utilization despite 4x larger slices;\n"
              "the reconfigurable policy's acceptance/utilization advantage and its\n"
              "failure repairs (cube swap, impossible for the static fabric) are the\n"
              "mechanisms behind that fleet-level result.\n");
  return 0;
}
