// §4.2.4: scheduling-efficiency benefits of reconfigurability. The 64-chip
// elemental cube + non-blocking lightwave fabric lets the scheduler compose
// slices from ANY idle healthy cubes; the TPU v3-style baseline needs
// contiguous blocks. Also the §4.2.2 repair ablation: cube swap under
// failures keeps jobs alive on the reconfigurable fabric only.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "tpu/superpod.h"

using namespace lightwave;
using common::Table;

namespace {

constexpr core::AllocationPolicy kPolicies[] = {core::AllocationPolicy::kReconfigurable,
                                                core::AllocationPolicy::kContiguous};

struct SweepPoint {
  const char* title;
  core::WorkloadConfig config;
};

void PrintComparison(const char* title, const core::WorkloadResult* results) {
  std::printf("--- %s ---\n", title);
  Table table({"policy", "submitted", "accepted", "acceptance", "utilization", "repaired",
               "lost to failure"});
  for (int p = 0; p < 2; ++p) {
    const auto& result = results[p];
    table.AddRow({core::ToString(kPolicies[p]), std::to_string(result.submitted),
                  std::to_string(result.accepted), Table::Percent(result.acceptance_rate, 1),
                  Table::Percent(result.utilization, 1), std::to_string(result.repaired),
                  std::to_string(result.lost_to_failure)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "sched_efficiency");
  bench::WallTimer total_timer;
  std::printf("=== scheduling efficiency: reconfigurable vs contiguous allocation ===\n");

  core::WorkloadConfig moderate;
  moderate.sim_hours = 3000.0;
  moderate.arrival_rate_per_hour = 1.4;
  moderate.mean_duration_hours = 8.0;

  core::WorkloadConfig heavy = moderate;
  heavy.arrival_rate_per_hour = 2.5;

  core::WorkloadConfig large_jobs = moderate;
  large_jobs.size_menu_cubes = {4, 8, 8, 16, 16, 32};
  large_jobs.arrival_rate_per_hour = 0.6;

  core::WorkloadConfig with_failures = moderate;
  with_failures.cube_mtbf_hours = 1500.0;
  with_failures.cube_repair_hours = 24.0;

  // Production behaviour: jobs queue instead of being rejected; the metric
  // becomes wait time.
  core::WorkloadConfig queue_config = heavy;
  queue_config.queue_jobs = true;

  const SweepPoint sweep[] = {
      {"moderate load (~80% offered)", moderate},
      {"heavy load (oversubscribed)", heavy},
      {"large-slice mix (the 4x-larger-slices regime of TPU v4)", large_jobs},
      {"moderate load with cube failures (MTBF 1500 h/cube)", with_failures},
      {"queued jobs (production mode)", queue_config},
  };
  constexpr int kPoints = static_cast<int>(sizeof(sweep) / sizeof(sweep[0]));

  // Each (workload, policy) combo simulates its own Superpod(99), so the
  // whole sweep fans out on the parallel runtime; results are rendered in
  // sweep order below, making the output identical to the sequential run.
  const bench::WallTimer sweep_timer;
  const auto results = common::parallel::ParallelMap(
      static_cast<std::uint64_t>(kPoints) * 2, [&](std::uint64_t combo) {
        const auto& point = sweep[combo / 2];
        tpu::Superpod pod(99);
        return core::SimulateWorkload(pod, kPolicies[combo % 2], point.config);
      });
  json.Add("workload_sweep",
           "points=" + std::to_string(kPoints) +
               " policies=2 sim_hours=" + std::to_string(moderate.sim_hours),
           sweep_timer.ms());

  for (int i = 0; i + 1 < kPoints; ++i) {
    PrintComparison(sweep[i].title, &results[static_cast<std::size_t>(i) * 2]);
  }

  std::printf("\n--- queued jobs (production mode): wait-time comparison ---\n");
  Table queued({"policy", "submitted", "ran", "from queue", "mean wait h", "max wait h",
                "utilization"});
  for (int p = 0; p < 2; ++p) {
    const auto& r = results[static_cast<std::size_t>(kPoints - 1) * 2 + p];
    queued.AddRow({core::ToString(kPolicies[p]), std::to_string(r.submitted),
                   std::to_string(r.accepted), std::to_string(r.started_from_queue),
                   Table::Num(r.mean_wait_hours, 1), Table::Num(r.max_wait_hours, 1),
                   Table::Percent(r.utilization, 1)});
  }
  std::printf("%s", queued.Render().c_str());

  std::printf("\npaper: TPU v4 fleet runs at > 98%% utilization despite 4x larger slices;\n"
              "the reconfigurable policy's acceptance/utilization advantage and its\n"
              "failure repairs (cube swap, impossible for the static fabric) are the\n"
              "mechanisms behind that fleet-level result.\n");
  json.Add("total", "", total_timer.ms());
  return 0;
}
