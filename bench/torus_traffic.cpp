// Traffic-pattern ablation on the slice torus under deterministic routing
// (§4.2.1): collective-style ring traffic uses the fabric perfectly, while
// adversarial permutations concentrate load — the quantitative reason slice
// shape is matched to the workload's communication pattern.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "sim/torus_traffic.h"

using namespace lightwave;
using common::Table;

namespace {

void Analyze(const tpu::SliceShape& shape, double bytes) {
  std::printf("--- slice %s, %.0f MB per flow ---\n", shape.ToString().c_str(), bytes / 1e6);
  Table table({"pattern", "mean hops", "peak link load", "mean link load",
               "completion us", "link efficiency"});
  struct Row {
    const char* name;
    sim::Pattern pattern;
  };
  const std::vector<Row> rows = {
      {"ring shift x (collective)", sim::NeighborShift(shape, tpu::Dim::kX)},
      {"ring shift z (collective)", sim::NeighborShift(shape, tpu::Dim::kZ)},
      {"transpose", sim::Transpose(shape)},
      {"opposite corner", sim::Opposite(shape)},
      {"random permutation", sim::RandomPermutation(shape, 4242)},
  };
  for (const auto& row : rows) {
    const auto a = sim::AnalyzePattern(shape, row.pattern, row.name, bytes);
    table.AddRow({row.name, Table::Num(a.mean_hops_per_flow, 1),
                  std::to_string(a.peak_link_load), Table::Num(a.mean_link_load, 2),
                  Table::Num(a.completion_us, 0), Table::Percent(a.link_efficiency, 0)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "torus_traffic");
  bench::WallTimer total_timer;
  std::printf("=== deterministic torus routing: traffic-pattern sensitivity ===\n");
  Analyze(tpu::SliceShape{2, 2, 2}, 64e6);   // 8x8x8 (512 chips)
  std::printf("\n");
  Analyze(tpu::SliceShape{1, 1, 16}, 64e6);  // 4x4x64 (1024 chips, skinny)
  std::printf("\nring-shift traffic (what the collectives generate) runs at 100%% link\n"
              "efficiency on any shape; adversarial permutations pay peak-link\n"
              "serialization — matching slice shape to the workload's pattern is what\n"
              "keeps the fabric in the efficient regime (§4.2.1).\n");
  json.Add("total", "", total_timer.ms());
  return 0;
}
