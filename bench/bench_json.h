// Machine-readable results for the bench/ binaries. Every bench accepts
// `--json=<path>`; when given, the timed cases recorded through JsonReporter
// are written to `path` as a small JSON document:
//
//   {"bench": "fig10_ocs_loss",
//    "cases": [{"name": "...", "params": "...", "wall_ms": 12.3,
//               "bytes_per_sec": 0.0}, ...]}
//
// Without the flag every call is a no-op and the bench stays a plain stdout
// tool. scripts/collect_bench.py aggregates the per-binary files.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace lightwave::bench {

/// Wall-clock stopwatch started at construction.
class WallTimer {
 public:
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

class JsonReporter {
 public:
  /// Scans argv for `--json=<path>`; all other arguments are ignored, so
  /// the flag composes with anything a bench might grow later.
  JsonReporter(int argc, char** argv, std::string bench) : bench_(std::move(bench)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
    }
  }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;
  ~JsonReporter() { Write(); }

  bool enabled() const { return !path_.empty(); }

  /// Records one finished case. `bytes_per_sec` is 0 when the case has no
  /// natural byte count (most figure replications).
  void Add(std::string name, std::string params, double wall_ms,
           double bytes_per_sec = 0.0) {
    if (!enabled()) return;
    cases_.push_back(Case{std::move(name), std::move(params), wall_ms, bytes_per_sec});
  }

  /// Runs `fn()` under the stopwatch and records it as one case. When
  /// `bytes` is nonzero the case also reports a bytes/sec rate.
  template <typename Fn>
  void Time(std::string name, std::string params, Fn&& fn, double bytes = 0.0) {
    const WallTimer timer;
    fn();
    const double wall_ms = timer.ms();
    const double rate = (bytes > 0.0 && wall_ms > 0.0) ? bytes / (wall_ms / 1000.0) : 0.0;
    Add(std::move(name), std::move(params), wall_ms, rate);
  }

  /// Writes the document now (also called by the destructor). Idempotent.
  void Write() {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path_.c_str());
      path_.clear();
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"cases\": [", Escape(bench_).c_str());
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      const Case& c = cases_[i];
      std::fprintf(f,
                   "%s\n  {\"name\": \"%s\", \"params\": \"%s\", \"wall_ms\": %.6f, "
                   "\"bytes_per_sec\": %.3f}",
                   i == 0 ? "" : ",", Escape(c.name).c_str(), Escape(c.params).c_str(),
                   c.wall_ms, c.bytes_per_sec);
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    path_.clear();
  }

 private:
  struct Case {
    std::string name;
    std::string params;
    double wall_ms = 0.0;
    double bytes_per_sec = 0.0;
  };

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
      if (ch == '"' || ch == '\\') {
        out.push_back('\\');
        out.push_back(ch);
      } else if (ch == '\n') {
        out += "\\n";
      } else {
        out.push_back(ch);
      }
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<Case> cases_;
};

}  // namespace lightwave::bench
