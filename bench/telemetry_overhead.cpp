// Measures the cost the telemetry hooks add to the instrumented control-plane
// reconfiguration path. The same transaction loop runs twice — once against
// the default no-op sink (no hub attached) and once with a live hub recording
// counters, histograms, and trace spans — and the overhead must stay under
// 5%: the acceptance bar for keeping instrumentation always-compiled-in.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "ctrl/controller.h"
#include "ocs/palomar.h"
#include "telemetry/hub.h"

using namespace lightwave;

namespace {

constexpr int kIterations = 2000;
constexpr int kRepeats = 5;

constexpr int kOcsCount = 4;
constexpr int kPairsPerOcs = 12;

// A production-shaped target: every transaction fans out to several OCSes
// and reprograms a handful of cross-connects on each (slice churn does
// this), so the baseline carries realistic encode/decode + MEMS work.
std::map<int, std::map<int, int>> MakeTargets(bool odd) {
  std::map<int, std::map<int, int>> targets;
  for (int ocs = 0; ocs < kOcsCount; ++ocs) {
    std::map<int, int>& ports = targets[ocs];
    for (int i = 0; i < kPairsPerOcs; ++i) {
      // Two disjoint bijections over the same south ports, so flipping
      // between them reprograms every pair each iteration.
      const int south = odd ? 2 * ((i + 1) % kPairsPerOcs) + 1 : 2 * i + 1;
      ports[2 * i] = south;
    }
  }
  return targets;
}

// Management-network loss exercised by both variants: the bus is seeded
// identically in each, so the baseline and instrumented runs see the exact
// same drop pattern and the instrumented retry/backoff path (retry counter,
// backoff histogram) is measured symmetrically.
constexpr double kDropProbability = 0.02;

// One reconfiguration transaction per iteration, alternating between two
// cross-connect maps so every ApplyTopology really reprograms the switches.
double RunLoopSeconds(telemetry::Hub* hub) {
  std::vector<std::unique_ptr<ocs::PalomarSwitch>> switches;
  std::vector<std::unique_ptr<ctrl::OcsAgent>> agents;
  ctrl::MessageBus bus(23);
  bus.SetDropProbability(kDropProbability);
  ctrl::FabricController controller(bus);
  for (int i = 0; i < kOcsCount; ++i) {
    switches.push_back(std::make_unique<ocs::PalomarSwitch>(17 + i, "bench"));
    agents.push_back(std::make_unique<ctrl::OcsAgent>(*switches.back()));
    controller.Register(i, agents.back().get());
  }
  if (hub != nullptr) {
    for (auto& agent : agents) agent->AttachTelemetry(hub);
    bus.AttachTelemetry(hub);
    controller.AttachTelemetry(hub);
  }

  const std::map<int, std::map<int, int>> even = MakeTargets(false);
  const std::map<int, std::map<int, int>> odd = MakeTargets(true);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    const auto& targets = (i % 2 == 0) ? even : odd;
    const auto result = controller.ApplyTopology(targets);
    if (!result.ok) {
      std::printf("unexpected transaction failure: %s\n", result.error.c_str());
      return -1.0;
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "telemetry_overhead");
  // Warm up caches/allocator with a throwaway pass of each variant.
  (void)RunLoopSeconds(nullptr);
  telemetry::Hub warm;
  (void)RunLoopSeconds(&warm);

  // Interleave the two variants and keep the best of each, so slow drift in
  // machine load (frequency scaling, background work) hits both equally
  // instead of biasing whichever phase ran second.
  telemetry::Hub hub;
  double baseline = 1e9;
  double instrumented = 1e9;
  for (int r = 0; r < kRepeats; ++r) {
    const double base_s = RunLoopSeconds(nullptr);
    hub.tracer().Clear();
    const double inst_s = RunLoopSeconds(&hub);
    if (base_s < 0.0 || inst_s < 0.0) return 1;
    baseline = std::min(baseline, base_s);
    instrumented = std::min(instrumented, inst_s);
  }
  if (baseline <= 0.0) return 1;

  const double ns_base = baseline / kIterations * 1e9;
  const double ns_inst = instrumented / kIterations * 1e9;
  const double overhead_pct = (instrumented / baseline - 1.0) * 100.0;

  std::printf("reconfiguration transaction, best of %d x %d iterations\n", kRepeats,
              kIterations);
  std::printf("  no-op sink   : %9.1f ns/txn\n", ns_base);
  std::printf("  live hub     : %9.1f ns/txn\n", ns_inst);
  std::printf("  overhead     : %+9.2f %%  (budget: < 5%%)\n", overhead_pct);
  std::printf("  recorded     : %llu frames, %zu spans\n",
              static_cast<unsigned long long>(
                  hub.metrics().GetCounter("lightwave_ctrl_frames_sent_total").value()),
              hub.tracer().span_count());
  // The transactional-recovery counters ride the same instrumented path and
  // share the same <5% budget: retries + backoff observations fire on every
  // dropped frame, rollbacks/torn must stay zero on a healthy fabric.
  std::printf("  retry path   : %llu retries, %zu backoff observations\n",
              static_cast<unsigned long long>(
                  hub.metrics().GetCounter("lightwave_ctrl_retries_total").value()),
              hub.metrics().GetHistogram("lightwave_ctrl_backoff_delay_us").count());
  const auto rollbacks =
      hub.metrics().GetCounter("lightwave_ctrl_rollbacks_total").value();
  const auto torn =
      hub.metrics().GetCounter("lightwave_ctrl_torn_transactions_total").value();
  std::printf("  recovery     : %llu rollbacks, %llu torn (must be 0 on a healthy bus)\n",
              static_cast<unsigned long long>(rollbacks),
              static_cast<unsigned long long>(torn));
  if (rollbacks != 0 || torn != 0) return 1;
  const std::string params = "iterations=" + std::to_string(kIterations) +
                             " repeats=" + std::to_string(kRepeats) +
                             " drop=" + std::to_string(kDropProbability);
  json.Add("noop_sink", params, baseline * 1e3);
  json.Add("live_hub", params, instrumented * 1e3);
  return overhead_pct < 5.0 ? 0 : 1;
}
