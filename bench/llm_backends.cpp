// Collective-backend ablation for the LLM performance model (ROADMAP item
// 2): re-runs the Table 2 shape sweep and the Fig. 2 multipod scaling sweep
// under each collective backend — the paper's bidirectional ICI ring, a
// double-binary-tree, and SwitchML-style in-network aggregation — and asks
// where the optimal slice shape moves. The ring column reproduces Table 2
// exactly (the backend is byte-identical to the legacy path) and is gated
// by scripts/check_bench_regression.py --llm against the committed
// BENCH_llm.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "sim/collective_backend.h"
#include "sim/llm_model.h"
#include "sim/multipod.h"
#include "tpu/slice.h"

using namespace lightwave;
using common::Table;

namespace {

const std::vector<sim::CollectiveBackendKind> kKinds = {
    sim::CollectiveBackendKind::kRing,
    sim::CollectiveBackendKind::kTree,
    sim::CollectiveBackendKind::kInNetwork,
};

/// In-network pool sized for the DCN: at 102.4 Tb/s uplink and a ~101 us
/// switch round trip the bandwidth-delay product is ~1.3 GB, so the
/// ICI-tuned default pool (128 x 1 KB) would idle the link waiting for
/// round trips. 2048 x 1 MB covers the BDP with headroom.
sim::InNetworkConfig DcnPool() {
  sim::InNetworkConfig config;
  config.pool_slots = 2048;
  config.slot_bytes = 1 << 20;
  return config;
}

std::string FmtUs(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", us);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "llm_backends");

  // --- Table 2 per backend ------------------------------------------------------
  std::printf("=== Table 2 shape sweep per collective backend ===\n");
  Table table2({"backend", "model", "best shape", "step ms", "speedup vs 16x16x16",
                "MP comm ms"});
  const tpu::SliceShape baseline{4, 4, 4};  // 16x16x16 chips
  for (const auto kind : kKinds) {
    sim::LlmCalibration cal;
    cal.collective_backend = sim::MakeCollectiveBackend(kind);
    const sim::LlmPerfModel model(cal);
    for (const auto& spec : {sim::Llm0(), sim::Llm1(), sim::Llm2()}) {
      bench::WallTimer timer;
      const auto ranked = model.RankShapes(spec, 64);
      const auto& best = ranked.front();
      const double baseline_us = model.StepTime(spec, baseline).total_us;
      const double speedup = baseline_us / best.breakdown.total_us;
      table2.AddRow({sim::ToString(kind), spec.name, best.shape.ToString(),
                     Table::Num(best.breakdown.total_us / 1e3, 1), Table::Factor(speedup),
                     Table::Num(best.breakdown.mp_comm_us / 1e3, 1)});
      json.Add("table2/" + std::string(sim::ToString(kind)) + "/" + spec.name,
               "shape=" + best.shape.ToString() +
                   " step_us=" + FmtUs(best.breakdown.total_us) +
                   " baseline_us=" + FmtUs(baseline_us),
               timer.ms());
    }
  }
  std::printf("%s", table2.Render().c_str());
  std::printf("(the optimum is pinned by the compute mismatch penalty, not the\n"
              "collective: all three backends pick the same per-workload shape)\n\n");

  // --- Fig. 2 multipod sweep per backend ----------------------------------------
  std::printf("=== Fig. 2 multipod scaling per DCN backend (LLM1) ===\n");
  Table scaling({"backend", "pods", "DCN all-reduce ms", "exposed ms", "step ms"});
  const sim::MultipodTrainer trainer;
  for (const auto kind : kKinds) {
    for (int pods : {2, 4, 8, 16, 32, 64}) {
      bench::WallTimer timer;
      sim::MultipodConfig config;
      config.pods = pods;
      config.dcn_backend = sim::MakeCollectiveBackend(kind, DcnPool());
      const auto step = trainer.StepTime(sim::Llm1(), config);
      scaling.AddRow({sim::ToString(kind), std::to_string(pods),
                      Table::Num(step.dcn_allreduce_us / 1e3, 1),
                      Table::Num(step.dcn_exposed_us / 1e3, 1),
                      Table::Num(step.total_us / 1e3, 1)});
      json.Add("multipod/" + std::string(sim::ToString(kind)) +
                   "/pods=" + std::to_string(pods),
               "dcn_us=" + FmtUs(step.dcn_allreduce_us) +
                   " exposed_us=" + FmtUs(step.dcn_exposed_us) +
                   " total_us=" + FmtUs(step.total_us),
               timer.ms());
    }
  }
  std::printf("%s", scaling.Render().c_str());
  std::printf("(ring/tree DCN time grows with the pod count; in-network aggregation\n"
              "stays flat — the SwitchML worker-count-independence property at the\n"
              "DCN level. At the default 60%% overlap budget every backend still\n"
              "hides under compute, so step times tie; the pool ablation below\n"
              "shows when they do not)\n\n");

  // --- in-network pool/loss ablation --------------------------------------------
  std::printf("=== in-network ablation: slot pool and packet loss (8 pods) ===\n");
  Table ablation({"pool slots", "slot KB", "drop p", "DCN all-reduce ms"});
  struct PoolPoint {
    int slots;
    double slot_bytes;
    double drop;
  };
  const std::vector<PoolPoint> points = {
      {128, 1024.0, 0.0},      // ICI-tuned default: slot-starved at DCN RTT
      {2048, 1024.0, 0.0},     // more slots, still far below the BDP
      {128, 1 << 20, 0.0},     // bigger packets close most of the gap
      {2048, 1 << 20, 0.0},    // BDP-sized pool: link-bound
      {2048, 1 << 20, 1e-3},   // SwitchML-style loss recovery penalty
      {2048, 1 << 20, 1e-2},
  };
  for (const auto& point : points) {
    bench::WallTimer timer;
    sim::InNetworkConfig pool;
    pool.pool_slots = point.slots;
    pool.slot_bytes = point.slot_bytes;
    pool.drop_probability = point.drop;
    sim::MultipodConfig config;
    config.pods = 8;
    config.dcn_backend =
        sim::MakeCollectiveBackend(sim::CollectiveBackendKind::kInNetwork, pool);
    const auto step = trainer.StepTime(sim::Llm1(), config);
    ablation.AddRow({std::to_string(point.slots), Table::Num(point.slot_bytes / 1024.0, 0),
                     Table::Num(point.drop, 3),
                     Table::Num(step.dcn_allreduce_us / 1e3, 1)});
    json.Add("innetwork_pool/slots=" + std::to_string(point.slots) +
                 "/kb=" + std::to_string(static_cast<int>(point.slot_bytes / 1024.0)) +
                 "/p=" + Table::Num(point.drop, 3),
             "dcn_us=" + FmtUs(step.dcn_allreduce_us), timer.ms());
  }
  std::printf("%s", ablation.Render().c_str());
  std::printf("(the bounded switch pool gates pipeline depth: a pool below the\n"
              "bandwidth-delay product idles the uplink between round trips)\n");
  return 0;
}
