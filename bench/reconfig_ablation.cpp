// §6 future-work ablation: fast reconfiguration. A job alternating a
// data-heavy phase (wants 4x4x256) and a model-heavy phase (wants 16x16x16)
// either runs one compromise shape or reconfigures per phase, paying OCS
// switch time + optical link bring-up. Sweeps the switching technology
// (MEMS ms -> piezo/SiPh us -> ns) and the phase length to locate the
// crossover — "potential use cases for fast lightwave fabrics must balance
// the benefits with the challenge of developing transceivers with fast
// initialization times".
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "ctrl/link_init.h"
#include "sim/phase_reconfig.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "reconfig_ablation");
  bench::WallTimer total_timer;
  const std::vector<sim::TrainingPhase> phases = {
      {.workload = sim::Llm1(), .steps = 4},  // data-heavy -> 4x4x256
      {.workload = sim::Llm2(), .steps = 4},  // model-heavy -> 16x16x16
  };

  std::printf("=== link bring-up time by transceiver initialization profile ===\n");
  const ctrl::LinkInitTiming standard;
  const ctrl::LinkInitTiming fast = ctrl::FastInitTiming();
  std::printf("standard transceiver: %.0f us  |  fast-init transceiver: %.1f us\n\n",
              standard.TotalBringupUs(), fast.TotalBringupUs());

  struct Technology {
    const char* name;
    sim::ReconfigurationCost cost;
  };
  const std::vector<Technology> technologies = {
      {"MEMS (ms) + standard init",
       {.switch_us = 20'000.0, .link_bringup_us = standard.TotalBringupUs()}},
      {"piezo/SiPh (us) + standard init",
       {.switch_us = 100.0, .link_bringup_us = standard.TotalBringupUs()}},
      {"piezo/SiPh (us) + fast init",
       {.switch_us = 100.0, .link_bringup_us = fast.TotalBringupUs()}},
      {"nanosecond switch + fast init",
       {.switch_us = 0.1, .link_bringup_us = fast.TotalBringupUs()}},
  };

  std::printf("=== two-phase job: fixed compromise shape vs per-phase reconfiguration ===\n");
  Table table({"technology", "transition us", "fixed shape", "reconfig speedup",
               "crossover steps/phase"});
  for (const auto& tech : technologies) {
    const auto result = sim::EvaluatePhaseSchedule(phases, 64, tech.cost);
    const int crossover = sim::CrossoverStepsPerPhase(phases, 64, tech.cost);
    table.AddRow({tech.name, Table::Num(tech.cost.TotalUs(), 1),
                  result.fixed_shape.ToString(), Table::Factor(result.speedup),
                  crossover > 0 ? std::to_string(crossover) : "never"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(steps here are multi-second LLM steps, so even MEMS-class switching\n"
              "amortizes; the switching technology matters for fine-grained phases)\n\n");

  // Fine-grained phases (the [63] regime): phases much shorter than an LLM
  // step. Using the measured compromise penalty from the schedule above
  // (fixed shape is ~1.5x slower than per-phase optima), the net speedup for
  // a phase of duration d and transition cost T is (penalty*2d) / (2d + T):
  // each technology has a phase-duration crossover at d = T / (penalty - 1).
  const auto measured = sim::EvaluatePhaseSchedule(phases, 64, technologies[0].cost);
  const double penalty =
      measured.fixed_us / (measured.reconfig_us - measured.reconfig_overhead_us);
  std::printf("=== fine-grained phases: net speedup vs phase duration "
              "(compromise penalty %.2fx) ===\n",
              penalty);
  Table sweep({"phase duration", "MEMS+std", "us-switch+std", "us-switch+fast", "ns+fast"});
  for (double duration_us : {100.0, 1e3, 1e4, 1e5, 1e6}) {
    std::vector<std::string> row;
    if (duration_us < 1e3) {
      row.push_back(Table::Num(duration_us, 0) + " us");
    } else {
      row.push_back(Table::Num(duration_us / 1e3, 0) + " ms");
    }
    for (const auto& tech : technologies) {
      const double speedup =
          penalty * 2.0 * duration_us / (2.0 * duration_us + tech.cost.TotalUs());
      row.push_back(Table::Factor(speedup));
    }
    sweep.AddRow(row);
  }
  std::printf("%s", sweep.Render().c_str());
  std::printf("(millisecond MEMS switching only pays off for phases >> 40 ms; microsecond\n"
              "switches with fast-init transceivers reach down to ~200 us phases; the\n"
              "transceiver initialization time is as decisive as the switch itself -- the\n"
              "codesign requirement of §6)\n");

  std::printf("\n=== crossover phase duration per technology ===\n");
  Table crossover({"technology", "phase duration where reconfig wins"});
  for (const auto& tech : technologies) {
    const double d = tech.cost.TotalUs() / (penalty - 1.0);
    crossover.AddRow({tech.name, d >= 1e3 ? Table::Num(d / 1e3, 1) + " ms"
                                          : Table::Num(d, 1) + " us"});
  }
  std::printf("%s", crossover.Render().c_str());
  json.Add("total", "technologies=" + std::to_string(technologies.size()),
           total_timer.ms());
  return 0;
}
