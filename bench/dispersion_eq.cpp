// §3.3.1: chromatic dispersion across the 80 nm CWDM band "is an issue for
// data rates above 100 Gb/s", mitigated by low-chirp EMLs and adaptive
// (nonlinear) equalizers. This bench quantifies both: the per-lane pulse
// spread and raw eye quality across the CWDM8 grid, and the pre- vs
// post-equalization BER for the worst lanes.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "optics/fiber.h"
#include "optics/wdm.h"
#include "phy/equalizer.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "dispersion_eq");
  bench::WallTimer total_timer;
  const optics::FiberSpan span(2.0, 2, 1);  // campus-scale 2 km span
  const auto grid = optics::WdmGrid::Make(optics::WdmGridKind::kCwdm8);
  const double noise = 0.08;

  std::printf("=== dispersion across the CWDM8 grid (2 km, 200G/lane PAM4 — the §6/802.3dj rate) ===\n");
  Table table({"lane", "nm", "D ps/nm", "EML penalty dB", "DML penalty dB", "pre-EQ BER",
               "post-EQ BER"});
  for (const auto& ch : grid.channels()) {
    const auto eml_penalty =
        span.DispersionPenalty(ch.center, common::GbitPerSec{200.0}, 0.3);
    const auto dml_penalty =
        span.DispersionPenalty(ch.center, common::GbitPerSec{200.0}, 3.0);
    const auto channel =
        phy::ChannelForLane(span, ch.center, common::GbitPerSec{200.0}, 0.3, noise);
    phy::EqualizerExperimentConfig config;
    config.symbols = 100'000;
    const auto result = phy::MeasureEqualizedLink(channel, config);
    table.AddRow({std::to_string(ch.index), Table::Num(ch.center.nm, 0),
                  Table::Num(span.DispersionPsPerNm(ch.center), 2),
                  Table::Num(eml_penalty.value(), 2), Table::Num(dml_penalty.value(), 2),
                  Table::Sci(result.pre_eq_ber), Table::Sci(result.post_eq_ber)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(outer lanes suffer most; EML chirp ~0.3 vs DML ~3 is why the bidi parts\n"
              "moved to externally modulated lasers — Appendix C.1)\n\n");

  std::printf("=== equalizer head-room: spread sweep at 7-tap FFE + 2-tap DFE ===\n");
  Table sweep({"pulse spread (UI)", "pre-EQ BER", "post-EQ BER", "residual ISI"});
  for (double spread : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    const auto result =
        phy::MeasureEqualizedLink(phy::DispersiveChannel(spread, noise));
    sweep.AddRow({Table::Num(spread, 1), Table::Sci(result.pre_eq_ber),
                  Table::Sci(result.post_eq_ber), Table::Sci(result.residual_isi)});
  }
  std::printf("%s", sweep.Render().c_str());
  json.Add("total", "lanes=" + std::to_string(grid.channels().size()), total_timer.ms());
  return 0;
}
