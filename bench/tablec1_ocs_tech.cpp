// Table C.1: cost, scale, performance, and reliability comparison of OCS
// technologies, and the requirements-driven ranking that selects MEMS for
// the DCN and ML use cases (§3.2.1) — plus future-use-case rankings where
// other technologies win (§6).
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "ocs/technology.h"

using namespace lightwave;
using common::Table;

namespace {

std::string SwitchTime(double seconds) {
  if (seconds >= 1.0) return Table::Num(seconds, 0) + " s";
  if (seconds >= 1e-3) return Table::Num(seconds * 1e3, 0) + " ms";
  if (seconds >= 1e-6) return Table::Num(seconds * 1e6, 0) + " us";
  return Table::Num(seconds * 1e9, 0) + " ns";
}

void Rank(const char* title, const ocs::UseCaseRequirements& req) {
  std::printf("--- %s (ports >= %d, switch <= %s, IL <= %.1f dB) ---\n", title, req.min_ports,
              SwitchTime(req.max_switching_time_s).c_str(), req.max_insertion_loss_db);
  Table table({"rank", "technology", "score", "rationale"});
  int rank = 1;
  for (const auto& ts : ocs::RankTechnologies(req, ocs::OcsTechnologies())) {
    table.AddRow({std::to_string(rank++), ts.technology.name, Table::Num(ts.score, 1),
                  ts.rationale});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "tablec1_ocs_tech");
  bench::WallTimer total_timer;
  std::printf("=== Table C.1: OCS technology comparison ===\n");
  Table table({"technology", "cost", "ports", "switching", "IL dB", "drive V", "latching"});
  for (const auto& t : ocs::OcsTechnologies()) {
    table.AddRow({t.name, ocs::ToString(t.cost),
                  std::to_string(t.port_count) + "x" + std::to_string(t.port_count),
                  SwitchTime(t.switching_time_s), Table::Num(t.insertion_loss_db, 1),
                  t.driving_voltage_v > 0 ? Table::Num(t.driving_voltage_v, 0) : "n/a",
                  t.latching ? "yes" : "no"});
  }
  std::printf("%s\n", table.Render().c_str());

  Rank("DCN / ML superpod use case", ocs::UseCaseRequirements{});
  std::printf("(paper: MEMS currently provides the best match — §3.2.1)\n\n");

  ocs::UseCaseRequirements fast;
  fast.min_ports = 16;
  fast.max_switching_time_s = 1e-6;
  fast.max_insertion_loss_db = 6.0;
  Rank("fast-reconfiguration future use case (§6)", fast);
  std::printf("(nanosecond-class switching favors guided-wave/wavelength approaches)\n");
  json.Add("total", "", total_timer.ms());
  return 0;
}
