// §2.1 DCN lifecycle: the spine-free fabric benefits beyond topology
// engineering — incremental expansion ("pay as you grow"), tenant isolation,
// and rapid technology refresh across transceiver generations — exercised on
// real switch objects through the control plane.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "core/dcn_fabric.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "dcn_lifecycle");
  bench::WallTimer total_timer;
  const int max_blocks = 24, ocs_count = 25;
  core::DcnFabric fabric(/*seed=*/11, max_blocks, ocs_count, /*link_gbps=*/400.0);
  common::Rng rng(5);

  std::printf("=== fabric expansion: pay as you grow ===\n");
  Table growth({"stage", "blocks", "trunks added", "removed", "undisturbed"});
  // One long-lived forecast: the only thing changing between stages is the
  // set of installed blocks.
  const auto forecast = sim::GravityTraffic(max_blocks, 9000.0, rng);
  int active = 0;
  for (int stage_blocks : {8, 12, 16, 24}) {
    while (active < stage_blocks) {
      (void)fabric.AddBlock(optics::Cwdm4Duplex());
      ++active;
    }
    const auto stats = fabric.ApplyTopology(forecast);
    if (!stats.ok()) {
      std::printf("apply failed: %s\n", stats.error().message.c_str());
      return 1;
    }
    growth.AddRow({"grow to " + std::to_string(stage_blocks),
                   std::to_string(stage_blocks),
                   std::to_string(stats.value().links_established),
                   std::to_string(stats.value().links_removed),
                   std::to_string(stats.value().links_undisturbed)});
  }
  std::printf("%s", growth.Render().c_str());
  std::printf("(each augment re-engineers around live trunks; removals stay small "
              "relative to the installed base)\n\n");

  std::printf("=== fabric isolation: carving a tenant ===\n");
  auto tenant = fabric.CreateTenant({20, 21, 22, 23});
  (void)fabric.ApplyTopology(forecast);
  std::printf("tenant %llu over blocks 20-23: isolation holds = %s\n",
              static_cast<unsigned long long>(tenant.value()),
              fabric.IsolationHolds() ? "yes" : "NO");
  int cross = 0, internal = 0;
  for (int a = 0; a < max_blocks; ++a) {
    for (int b = a + 1; b < max_blocks; ++b) {
      const bool a_in = a >= 20, b_in = b >= 20;
      if (a_in != b_in) cross += fabric.TrunksBetween(a, b);
      if (a_in && b_in) internal += fabric.TrunksBetween(a, b);
    }
  }
  std::printf("tenant-internal trunks: %d, pool<->tenant trunks: %d\n\n", internal, cross);

  std::printf("=== rapid technology refresh ===\n");
  Table refresh({"joining generation", "admitted", "reason"});
  core::DcnFabric young(/*seed=*/12, 8, 8, 400.0);
  const auto roadmap = optics::DcnRoadmap();
  (void)young.AddBlock(roadmap[2]);  // fabric starts at 200G-FR4
  for (const auto& gen : roadmap) {
    const auto result = young.AddBlock(gen);
    refresh.AddRow({gen.name, result.ok() ? "yes" : "no",
                    result.ok() ? "shares a lane rate + grid with active blocks"
                                : result.error().message});
  }
  std::printf("%s", refresh.Render().c_str());
  std::printf("(backward compatibility across an order of magnitude of data rates — §6 —\n"
              "with hard rejection of parts that cannot inter-operate)\n");
  json.Add("total", "blocks=" + std::to_string(max_blocks), total_timer.ms());
  return 0;
}
