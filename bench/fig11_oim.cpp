// Fig. 11: receiver sensitivity with multi-path interference and the OIM
// notch filter, for 50 Gb/s PAM4 per wavelength (one lane of a 200G CWDM4
// link). (a) analytic ("simulated") BER vs received power for several MPI
// levels, with and without OIM; (b) the Monte-Carlo ("measured")
// counterpart. Headline: > 1 dB sensitivity improvement at -32 dB MPI and
// the KP4 threshold.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/math.h"
#include "common/table.h"
#include "phy/ber_model.h"
#include "phy/monte_carlo.h"

using namespace lightwave;
using common::DbmPower;
using common::Decibel;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "fig11_oim");
  bench::WallTimer total_timer;
  // The 50G PAM4 lane of the first-generation 200G bidi link: sensitivity
  // -11 dBm at the KP4 threshold.
  const phy::BerModel model(optics::Modulation::kPam4, DbmPower{-11.0});
  const phy::OimFilter oim;
  const std::vector<double> mpi_levels = {-38.0, -35.0, -32.0, -29.0, -26.0};
  const auto powers = common::Linspace(-14.0, -6.0, 9);

  std::printf("=== Fig. 11a: simulated BER vs received power (50G PAM4 lane) ===\n");
  Table table([&] {
    std::vector<std::string> headers = {"Rx dBm"};
    for (double m : mpi_levels) {
      headers.push_back("MPI " + Table::Num(m, 0));
      headers.push_back("+OIM");
    }
    return headers;
  }());
  for (double p : powers) {
    std::vector<std::string> row = {Table::Num(p, 1)};
    for (double m : mpi_levels) {
      row.push_back(Table::Sci(model.PreFecBer(DbmPower{p}, Decibel{m})));
      row.push_back(Table::Sci(model.PreFecBerWithOim(DbmPower{p}, Decibel{m}, oim)));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(KP4 threshold: 2.0e-04)\n\n");

  std::printf("--- sensitivity at the KP4 threshold ---\n");
  Table sens({"MPI dB", "sens w/o OIM", "sens w/ OIM", "OIM gain dB"});
  for (double m : mpi_levels) {
    const auto without = model.SensitivityAt(phy::kKp4BerThreshold, Decibel{m});
    const auto with = model.SensitivityAt(phy::kKp4BerThreshold, oim.Mitigate(Decibel{m}));
    sens.AddRow({Table::Num(m, 0),
                 without.value() >= 1e9 ? "floored" : Table::Num(without.value(), 2),
                 Table::Num(with.value(), 2),
                 without.value() >= 1e9 ? "rescued"
                                        : Table::Num((without - with).value(), 2)});
  }
  std::printf("%s", sens.Render().c_str());
  std::printf("paper: >1 dB improvement at -32 dB MPI | measured: %.2f dB\n\n",
              model.OimGain(Decibel{-32.0}, oim).value());

  std::printf("=== Fig. 11b: Monte-Carlo (\"measured\") BER, MPI = -32 dB ===\n");
  Table mc({"Rx dBm", "MC w/o OIM", "MC w/ OIM", "analytic w/o OIM"});
  json.Time(
      "fig11b_monte_carlo", "symbols=3000000 points=6 mpi_db=-32",
      [&] {
        for (double p : common::Linspace(-13.0, -8.0, 6)) {
          phy::MonteCarloConfig config;
          config.symbols = 3'000'000;
          phy::MonteCarloChannel plain(model, Decibel{-32.0}, config);
          config.oim_enabled = true;
          phy::MonteCarloChannel mitigated(model, Decibel{-32.0}, config);
          mc.AddRow({Table::Num(p, 1), Table::Sci(plain.Run(DbmPower{p}).Ber()),
                     Table::Sci(mitigated.Run(DbmPower{p}).Ber()),
                     Table::Sci(model.PreFecBer(DbmPower{p}, Decibel{-32.0}))});
        }
      });
  std::printf("%s", mc.Render().c_str());
  json.Add("total", "", total_timer.ms());
  return 0;
}
