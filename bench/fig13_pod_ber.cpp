// Fig. 13: per-lane BER (with OIM mitigation and SFEC margin) across the
// production links of a full TPU v4 superpod: ~6144 receiving ports (16 per
// cube face x 6 faces x 64 cubes). Every port must sit below the KP4
// threshold of 2e-4 with about two orders of magnitude of margin.
#include <cstdio>
#include <algorithm>
#include <cmath>

#include "bench_json.h"
#include "common/histogram.h"
#include "core/fabric_manager.h"
#include "fec/concatenated.h"
#include "optics/transceiver.h"
#include "phy/ber_model.h"

using namespace lightwave;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "fig13_pod_ber");
  bench::WallTimer total_timer;
  core::FabricManager manager;
  // A full-pod slice exercises every OCS connection (the 16x16x16 shape).
  auto id = manager.CreateSlice(tpu::SliceShape{4, 4, 4});
  if (!id.ok()) {
    std::printf("failed to install full-pod slice: %s\n", id.error().message.c_str());
    return 1;
  }
  const bench::WallTimer survey_timer;
  const auto reports = manager.SurveyLinkQuality(optics::Cwdm4Bidi());
  json.Add("pod_link_survey", "links=" + std::to_string(reports.size()),
           survey_timer.ms());
  // Each OCS connection is one optical link carrying one bidi receiving
  // port per end; the OCS-side survey covers each link once per direction
  // convention, so total receiving ports = 2x connections = 6144.
  std::printf("=== Fig. 13: production per-port BER survey ===\n");
  std::printf("surveyed OCS connections: %zu (x2 directions = %zu receiving ports)\n",
              reports.size(), 2 * reports.size());

  common::SampleSet log_ber;
  common::Histogram histogram(-10.0, -3.0, 28);  // log10(BER)
  int above_threshold = 0;
  for (const auto& r : reports) {
    const double floored = std::max(r.pre_fec_ber, 1e-12);
    log_ber.Add(std::log10(floored));
    histogram.Add(std::log10(floored));
    above_threshold += r.pre_fec_ber > phy::kKp4BerThreshold ? 1 : 0;
  }
  std::printf("\nlog10(BER) distribution across ports:\n%s", histogram.Render(50).c_str());
  std::printf("median BER: 1e%.2f  p99: 1e%.2f  worst: 1e%.2f\n", log_ber.Percentile(50),
              log_ber.Percentile(99), log_ber.max());
  std::printf("ports above KP4 threshold (2e-4): %d (paper: zero, all in spec)\n",
              above_threshold);
  const double margin_orders = -3.7 - log_ber.Percentile(50);  // log10(2e-4) = -3.7
  std::printf("median margin below threshold: %.1f orders of magnitude "
              "(paper: ~2 orders)\n",
              margin_orders);

  // Post-FEC: with the concatenated code, the residual error rate.
  const fec::ConcatenatedFec fec;
  double worst_post = 0.0;
  for (const auto& r : reports) {
    worst_post = std::max(worst_post, fec.PostFecBer(r.pre_fec_ber, true));
  }
  std::printf("worst-port post-FEC BER (inner SFEC + KP4): %.1e (error-free in practice)\n",
              worst_post);

  // The production repair loop (§4.1.1: spare ports "for link testing and
  // repairs"): qualify every path against a margin bar; out-of-budget links
  // are re-patched onto spare collimator positions.
  std::printf("\n=== spare-port repair loop (qualification bar: 1.0 dB margin) ===\n");
  int below_bar = 0;
  for (const auto& r : reports) below_bar += r.margin_db < 1.0 ? 1 : 0;
  const bench::WallTimer repair_timer;
  const auto summary =
      manager.RepairOutOfBudgetLinks(optics::Cwdm4Bidi(), {}, /*min_margin_db=*/1.0);
  json.Add("repair_loop", "below_bar=" + std::to_string(below_bar), repair_timer.ms());
  std::printf("links below bar before: %d | re-patches attempted: %d | unrepairable: %d | "
              "still out of budget after: %d\n",
              below_bar, summary.repairs_attempted, summary.unrepairable,
              summary.still_out_of_budget);
  json.Add("total", "links=" + std::to_string(reports.size()), total_timer.ms());
  return 0;
}
