// Fig. 15: availability analysis. (a) superpod fabric availability vs
// single-OCS availability for the three transceiver technologies (96 / 48 /
// 24 OCSes); (b) goodput vs slice size for a fixed 97% system-availability
// target, static vs reconfigurable fabric, for server availabilities of
// 99 / 99.5 / 99.9%. A Monte-Carlo failure-injection run cross-checks the
// analytic commitments.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "sim/availability.h"
#include "tpu/wiring.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "fig15_availability");
  bench::WallTimer total_timer;
  std::printf("=== Fig. 15a: fabric availability vs OCS availability ===\n");
  struct Tech {
    const char* name;
    int ocs_count;
  };
  const std::vector<Tech> techs = {{"CWDM4 duplex", 96}, {"CWDM4 bidi", 48},
                                   {"CWDM8 bidi", 24}};
  Table fig15a({"OCS availability", "96 OCS (duplex)", "48 OCS (CWDM4 bidi)",
                "24 OCS (CWDM8 bidi)"});
  for (double a : {0.995, 0.997, 0.999, 0.9995, 0.9999}) {
    std::vector<std::string> row = {Table::Percent(a, 2)};
    for (const auto& t : techs) {
      row.push_back(Table::Percent(sim::FabricAvailability(a, t.ocs_count), 1));
    }
    fig15a.AddRow(row);
  }
  std::printf("%s", fig15a.Render().c_str());
  std::printf("paper @99.9%%: 90%% / 95%% / 98%% | measured: %.0f%% / %.0f%% / %.0f%%\n\n",
              100 * sim::FabricAvailability(0.999, 96),
              100 * sim::FabricAvailability(0.999, 48),
              100 * sim::FabricAvailability(0.999, 24));

  std::printf("=== Fig. 15b: goodput vs slice size (97%% system availability) ===\n");
  const std::vector<double> server_avail = {0.99, 0.995, 0.999};
  const std::vector<int> slice_cubes = {1, 2, 4, 8, 16, 32};
  Table fig15b({"slice TPUs", "recfg 99%", "recfg 99.5%", "recfg 99.9%", "static 99%",
                "static 99.5%", "static 99.9%"});
  for (int m : slice_cubes) {
    std::vector<std::string> row = {std::to_string(m * 64)};
    for (double a : server_avail) {
      row.push_back(Table::Percent(sim::GoodputReconfigurable(a, m), 1));
    }
    for (double a : server_avail) {
      row.push_back(Table::Percent(sim::GoodputStatic(a, m), 1));
    }
    fig15b.AddRow(row);
  }
  std::printf("%s", fig15b.Render().c_str());
  std::printf("paper @1024 TPUs, 99.9%%: static 25%% vs reconfigurable 75%% | measured: "
              "static %.0f%% vs reconfigurable %.0f%%\n",
              100 * sim::GoodputStatic(0.999, 16),
              100 * sim::GoodputReconfigurable(0.999, 16));
  std::printf("paper @2048 TPUs: 50%% for all server availabilities | measured: "
              "%.0f/%.0f/%.0f%%\n\n",
              100 * sim::GoodputReconfigurable(0.99, 32),
              100 * sim::GoodputReconfigurable(0.995, 32),
              100 * sim::GoodputReconfigurable(0.999, 32));

  std::printf("--- Monte-Carlo cross-check (20k trials per point) ---\n");
  Table mc({"slice TPUs", "server avail", "committed slices", "P[satisfied] MC",
            "P[static satisfied] MC"});
  json.Time(
      "fig15_monte_carlo_crosscheck", "trials=20000 points=9",
      [&] {
        for (int m : {8, 16, 32}) {
          for (double a : server_avail) {
            const int committed = sim::CommittedSlicesReconfigurable(a, m);
            const auto result = sim::SimulateAvailability(a, m, committed, 20000, 7 + m);
            mc.AddRow({std::to_string(m * 64), Table::Percent(a, 1),
                       std::to_string(committed),
                       Table::Percent(result.reconfig_success_rate, 1),
                       Table::Percent(result.static_success_rate, 1)});
          }
        }
      });
  std::printf("%s", mc.Render().c_str());
  std::printf("(analytic commitment targets P[satisfied] >= 97%%)\n");
  json.Add("total", "", total_timer.ms());
  return 0;
}
