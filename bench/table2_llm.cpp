// Table 2: optimal slice configuration and relative training-throughput
// speedup for three production-scale LLMs on a 4096-chip TPU v4 superpod,
// compared to the static 16x16x16 baseline (the highest-bisection static
// shape). The reconfigurable fabric sets each workload's best shape; the
// search sweeps every ordered 64-cube factorization.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/table.h"
#include "sim/llm_model.h"
#include "tpu/slice.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "table2_llm");
  bench::WallTimer total_timer;
  const sim::LlmPerfModel model;
  const tpu::SliceShape baseline{4, 4, 4};  // 16x16x16 chips

  std::printf("=== Table 2: optimal slice configuration and speedup ===\n");
  Table table({"model", "params", "optimal config", "paper optimal", "speedup",
               "paper speedup"});
  struct PaperRow {
    sim::LlmSpec spec;
    const char* optimal;
    double speedup;
  };
  const std::vector<PaperRow> rows = {
      {sim::Llm0(), "8x16x32", 1.54},
      {sim::Llm1(), "4x4x256", 3.32},
      {sim::Llm2(), "16x16x16", 1.00},
  };
  for (const auto& row : rows) {
    const auto ranked = model.RankShapes(row.spec, 64);
    const auto& best = ranked.front();
    const double baseline_us = model.StepTime(row.spec, baseline).total_us;
    table.AddRow({row.spec.name, Table::Num(row.spec.params_billion, 0) + "B",
                  best.shape.ToString(), row.optimal,
                  Table::Factor(baseline_us / best.breakdown.total_us),
                  Table::Factor(row.speedup)});
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\n--- full shape landscape for LLM1 (top 8 of %zu shapes) ---\n",
              tpu::EnumerateShapes(64).size());
  Table landscape({"shape (chips)", "step ms", "vs best", "penalty", "MP comm ms",
                   "DP exposed ms"});
  const auto ranked = model.RankShapes(sim::Llm1(), 64);
  const double best_us = ranked.front().breakdown.total_us;
  for (std::size_t i = 0; i < 8 && i < ranked.size(); ++i) {
    const auto& r = ranked[i];
    landscape.AddRow({r.shape.ToString(), Table::Num(r.breakdown.total_us / 1e3, 1),
                      Table::Factor(r.breakdown.total_us / best_us),
                      Table::Factor(r.breakdown.mismatch_penalty),
                      Table::Num(r.breakdown.mp_comm_us / 1e3, 1),
                      Table::Num(r.breakdown.dp_comm_exposed_us / 1e3, 1)});
  }
  // Also show the baseline's position.
  const auto base = model.StepTime(sim::Llm1(), baseline);
  landscape.AddRow({"16x16x16 (static)", Table::Num(base.total_us / 1e3, 1),
                    Table::Factor(base.total_us / best_us), Table::Factor(base.mismatch_penalty),
                    Table::Num(base.mp_comm_us / 1e3, 1),
                    Table::Num(base.dp_comm_exposed_us / 1e3, 1)});
  std::printf("%s", landscape.Render().c_str());
  std::printf("(no one-size-fits-all: LLM0/LLM1 prefer asymmetric slices, LLM2 the "
              "symmetric one — §4.2.1)\n");
  json.Add("total", "", total_timer.ms());
  return 0;
}
