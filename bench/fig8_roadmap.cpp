// Fig. 8: the WDM interconnect roadmap for the datacenter network — 40 Gb/s
// QSFP+ through 800 Gb/s OSFP, a 20x bandwidth growth with continuously
// improving energy efficiency, plus the custom bidi modules for the ML pods.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "optics/transceiver.h"
#include "optics/wdm.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "fig8_roadmap");
  bench::WallTimer total_timer;
  std::printf("=== Fig. 8: WDM interconnect roadmap (DCN) ===\n");
  Table table({"module", "year", "form factor", "grid", "lanes", "modulation",
               "Gb/s", "fibers", "W", "pJ/bit"});
  const auto roadmap = optics::DcnRoadmap();
  for (const auto& t : roadmap) {
    table.AddRow({t.name, std::to_string(t.year), optics::ToString(t.form_factor),
                  optics::WdmGrid::Make(t.grid).Name(), std::to_string(t.LaneCount()),
                  optics::ToString(t.modulation), Table::Num(t.ModuleRateGbps(), 0),
                  std::to_string(t.FiberCount()), Table::Num(t.power_w, 1),
                  Table::Num(t.EnergyPerBitPj(), 1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("bandwidth growth 40G -> 800G: %.0fx (paper: 20x)\n",
              roadmap.back().ModuleRateGbps() / roadmap.front().ModuleRateGbps());
  std::printf("energy efficiency improvement: %.1fx\n\n",
              roadmap.front().EnergyPerBitPj() / roadmap.back().EnergyPerBitPj());

  std::printf("=== Fig. 9: custom bidi modules for ML superpods ===\n");
  Table bidi({"module", "grid", "spacing nm", "spectral nm", "bidi links", "fibers",
              "OIM DSP", "inner SFEC"});
  for (const auto& t : {optics::Cwdm4Duplex(), optics::Cwdm4Bidi(), optics::Cwdm8Bidi()}) {
    const auto grid = optics::WdmGrid::Make(t.grid);
    bidi.AddRow({t.name, grid.Name(), Table::Num(grid.spacing().nm, 0),
                 Table::Num(grid.SpectralWidth().nm, 0),
                 t.bidirectional ? std::to_string(t.wdm_pairs) : "0",
                 std::to_string(t.FiberCount()), t.has_oim_dsp ? "yes" : "no",
                 t.has_inner_sfec ? "yes" : "no"});
  }
  std::printf("%s", bidi.Render().c_str());
  std::printf("CWDM8 packs 8 lanes at 10 nm into the same 80 nm window as CWDM4 "
              "(spectral widths above are equal).\n");

  // Backward compatibility (§3.3.1): each generation inter-operates with
  // its predecessor.
  std::printf("\nbackward compatibility chain: ");
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    std::printf("%s<->%s:%s ", roadmap[i - 1].name.c_str(), roadmap[i].name.c_str(),
                roadmap[i].InteroperatesWith(roadmap[i - 1]) ? "ok" : "FAIL");
  }
  std::printf("\n");
  json.Add("total", "modules=" + std::to_string(roadmap.size()), total_timer.ms());
  return 0;
}
