// Fig. 2 / §2.2.2: scaling out between superpods over the hybrid ICI-DCN
// network. Each pod runs the workload's optimal slice (ICI collectives,
// Fig. 2b); pods form a DCN ring for the cross-pod gradient all-reduce
// (Fig. 2c), which stays on the critical path. The DCN-topology
// co-optimization ablation compares a uniform pod mesh with the engineered
// ring the lightwave DCN can set up.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "sim/multipod.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "fig2_multipod");
  bench::WallTimer total_timer;
  sim::MultipodTrainer trainer;

  std::printf("=== §2.2: ICI vs DCN bandwidth per TPU ===\n");
  {
    sim::MultipodConfig config;
    const auto step = trainer.StepTime(sim::Llm1(), config);
    std::printf("ICI : DCN per-chip bandwidth ratio: %.0fx (paper: 50-100x)\n\n",
                step.ici_to_dcn_ratio);
  }

  std::printf("=== scaling LLM1 across pods (engineered DCN ring) ===\n");
  Table scaling({"pods", "pod shape", "intra-pod ms", "DCN all-reduce ms", "exposed ms",
                 "step ms", "seq/s", "scaling eff."});
  double single_pod_throughput = 0.0;
  for (int pods : {1, 2, 4, 8}) {
    sim::MultipodConfig config;
    config.pods = pods;
    const auto step = trainer.StepTime(sim::Llm1(), config);
    if (pods == 1) single_pod_throughput = step.throughput_seq_per_s;
    scaling.AddRow({std::to_string(pods), step.pod_shape.ToString(),
                    Table::Num(step.intra_pod_us / 1e3, 0),
                    Table::Num(step.dcn_allreduce_us / 1e3, 0),
                    Table::Num(step.dcn_exposed_us / 1e3, 0),
                    Table::Num(step.total_us / 1e3, 0),
                    Table::Num(step.throughput_seq_per_s, 0),
                    Table::Percent(step.throughput_seq_per_s /
                                       (pods * single_pod_throughput),
                                   1)});
  }
  std::printf("%s", scaling.Render().c_str());
  std::printf("(DCN transfers on the critical path cap scaling efficiency — §2.2.2)\n\n");

  std::printf("=== ablation: co-optimized DCN topology vs uniform pod mesh ===\n");
  Table ablation({"pods", "uniform step ms", "engineered step ms", "speedup"});
  for (int pods : {2, 4, 8, 16}) {
    sim::MultipodConfig uniform;
    uniform.pods = pods;
    uniform.dcn_mode = sim::MultipodConfig::DcnMode::kUniformMesh;
    sim::MultipodConfig engineered = uniform;
    engineered.dcn_mode = sim::MultipodConfig::DcnMode::kEngineered;
    const auto u = trainer.StepTime(sim::Llm1(), uniform);
    const auto e = trainer.StepTime(sim::Llm1(), engineered);
    ablation.AddRow({std::to_string(pods), Table::Num(u.total_us / 1e3, 0),
                     Table::Num(e.total_us / 1e3, 0),
                     Table::Factor(u.total_us / e.total_us)});
  }
  std::printf("%s", ablation.Render().c_str());
  std::printf("(reconfiguring the DCN into the collective's ring is the \"cooptimizing job\n"
              "placement and reconfiguration of the DCN level topology\" of §2.2.2)\n");
  json.Add("total", "", total_timer.ms());
  return 0;
}
