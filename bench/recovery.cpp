// Durability and recovery cost over REAL files (bench_recovery).
//
// Part 1 (sync-policy columns): the fleet-service serve loop runs over
// journal::FileStorage in a temp directory under each sync policy, against
// the journaling-off baseline. kGroupCommit (one fsync per batch append)
// and kPeriodic (fsync at most once per interval) must stay under the
// existing 15% overhead gate — the point of group commit is that the fsync
// amortizes over a production batch until the fabric allocation work, not
// the durability, dominates. kEveryAppend at batch=1 is the reference point
// for what group commit buys (every command pays a full fsync); it is
// reported, not gated — its cost is the device's, not the journal's.
// scripts/check_bench_regression.py --svc re-checks the per-policy overhead
// from the aggregated BENCH_svc.json in CI.
//
// Part 2 (parallel recovery): eight file-backed shards are served once and
// their media abandoned; the fleet then recovers via Router::RecoverAll
// serially (1 thread) and in parallel. The two recoveries must be
// byte-identical (thread count is a performance knob, never a semantic
// one), the parallel one must actually be faster, and the per-shard
// recovery-latency histogram (lightwave_journal_recovery_latency_ms) is
// reported for both modes.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "fleet/admission.h"
#include "fleet/router.h"
#include "fleet/shard.h"
#include "journal/file_storage.h"
#include "journal/storage.h"
#include "svc/fleet_service.h"
#include "svc/request_stream.h"
#include "telemetry/hub.h"
#include "tpu/superpod.h"

using namespace lightwave;

namespace {

constexpr std::uint64_t kStreamSeed = 77;
constexpr std::uint64_t kPodSeed = 5;
// 32-cube pods: the per-command allocation work a production shard does is
// what the fsync must amortize against; a toy pod would overstate the
// journaling overhead (fsync cost is the device's, not proportional).
constexpr int kPodCubes = 32;
constexpr int kOcsPerDim = 2;
// The parallel-recovery leg always asks for 8 workers (the fleet has 8
// shards); on fewer cores the pool degrades gracefully and the gate below
// only requires parallel to never LOSE to serial.
constexpr int kParallelThreads = 8;
// Production-shaped group commit: the pipelined shard grows batches toward
// its depth under load; 256 amortizes one fsync across enough allocation
// work that durability stops being the bottleneck.
constexpr std::size_t kBatch = 256;
constexpr int kRepeats = 3;
constexpr std::uint64_t kServeCommands = 20000;
// Every-append pays one fsync per command; a shorter stream keeps the
// report-only case from dominating the bench's wall clock.
constexpr std::uint64_t kEveryAppendCommands = 2000;
constexpr std::uint64_t kSnapshotInterval = 4096;
// Part 2 fleet: per-shard logs long enough that recovery replays real work.
constexpr int kFleetShards = 8;
constexpr std::uint64_t kFleetCommands = 24000;
constexpr std::uint32_t kFleetTenants = 24;

/// mkdtemp-backed scratch directory, removed on destruction. Lives under
/// LW_BENCH_SCRATCH when set (CI points this at tmpfs: shared-runner disk
/// fsync latency varies by an order of magnitude run to run, and the gate
/// measures the journal's overhead, not the device lottery).
struct TempDir {
  std::string dir;
  TempDir() {
    const char* base = std::getenv("LW_BENCH_SCRATCH");
    std::string tmpl_str =
        std::string(base != nullptr ? base : "/tmp") + "/lw_bench_recovery_XXXXXX";
    std::vector<char> tmpl(tmpl_str.begin(), tmpl_str.end());
    tmpl.push_back('\0');
    const char* made = ::mkdtemp(tmpl.data());
    dir = made == nullptr ? "" : made;
  }
  ~TempDir() {
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
  std::string Path(const std::string& name) const { return dir + "/" + name; }
};

svc::RequestStreamConfig StreamConfig(std::uint32_t tenants) {
  svc::RequestStreamConfig config;
  config.tenant_count = tenants;
  config.zipf_skew = 0.5;
  return config;
}

enum class ServeMode { kOff, kGroupCommit, kPeriodic, kEveryAppend };

const char* ToString(ServeMode mode) {
  switch (mode) {
    case ServeMode::kOff: return "off";
    case ServeMode::kGroupCommit: return "group_commit";
    case ServeMode::kPeriodic: return "periodic";
    case ServeMode::kEveryAppend: return "every_append";
  }
  return "unknown";
}

struct ServeResult {
  double seconds = -1.0;
  std::uint64_t bytes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t commands = 0;
};

/// Single-shard batched serve over file-backed storage under one policy.
ServeResult RunServe(const TempDir& tmp, ServeMode mode, int repeat) {
  ServeResult result;
  const std::uint64_t commands =
      mode == ServeMode::kEveryAppend ? kEveryAppendCommands : kServeCommands;
  const std::size_t batch = mode == ServeMode::kEveryAppend ? 1 : kBatch;

  journal::FileStorageOptions file_options;
  switch (mode) {
    case ServeMode::kOff:
    case ServeMode::kGroupCommit:
      file_options.policy = journal::SyncPolicy::kGroupCommit;
      break;
    case ServeMode::kPeriodic:
      file_options.policy = journal::SyncPolicy::kPeriodic;
      file_options.periodic_interval = std::chrono::milliseconds(5);
      break;
    case ServeMode::kEveryAppend:
      file_options.policy = journal::SyncPolicy::kEveryAppend;
      break;
  }
  const std::string stem =
      std::string(ToString(mode)) + "_" + std::to_string(repeat);
  auto wal_storage = journal::FileStorage::Open(tmp.Path(stem + ".wal"), file_options);
  auto snapshot_storage = journal::FileStorage::Open(tmp.Path(stem + ".snap"));
  if (!wal_storage.ok() || !snapshot_storage.ok()) return result;

  tpu::Superpod pod(kPodSeed, kPodCubes, kOcsPerDim);
  svc::FleetServiceOptions options;
  options.journaling = mode != ServeMode::kOff;
  options.queue_capacity = batch;
  options.snapshot_interval = kSnapshotInterval;
  svc::FleetService service(pod, core::AllocationPolicy::kReconfigurable,
                            *wal_storage.value(), *snapshot_storage.value(), options);
  if (!service.Recover().ok()) return result;
  const svc::RequestStream stream(kStreamSeed, commands, StreamConfig(8));

  const bench::WallTimer timer;
  for (std::uint64_t i = 0; i < commands; ++i) {
    if (!service.Submit(stream.Command(i)).ok()) return result;
    if (service.queue_depth() == batch) service.ProcessBatch(batch);
  }
  while (service.queue_depth() > 0) {
    if (service.ProcessBatch(batch) == 0) break;
  }
  const double seconds = timer.ms() / 1e3;
  if (service.stats().processed != commands) return result;

  result.seconds = seconds;
  result.commands = commands;
  result.fsyncs = wal_storage.value()->fsync_count();
  if (options.journaling) {
    result.bytes = service.wal().appended_bytes();
  } else {
    for (std::uint64_t i = 0; i < commands; ++i) {
      result.bytes += stream.Command(i).Encode().size();
    }
  }
  return result;
}

// --- Part 2: fleet recovery ------------------------------------------------

fleet::ShardOptions FleetOptions() {
  fleet::ShardOptions options;
  options.batch_size = kBatch;
  options.service.snapshot_interval = kSnapshotInterval;
  options.admission.default_quota = fleet::TenantQuota{1e18, 1e18, 1.0};
  options.admission.per_tenant_queue_capacity = kFleetCommands;
  return options;
}

std::string WalPath(const TempDir& tmp, int s) {
  return tmp.Path("shard" + std::to_string(s) + ".wal");
}
std::string SnapPath(const TempDir& tmp, int s) {
  return tmp.Path("shard" + std::to_string(s) + ".snap");
}

/// A fleet of file-backed shards over the temp dir (rebuildable over the
/// same files: the recovery benchmark's crash simulation).
struct FileFleet {
  std::vector<std::unique_ptr<tpu::Superpod>> pods;
  std::vector<std::unique_ptr<journal::FileStorage>> stores;
  std::vector<std::unique_ptr<fleet::Shard>> shards;
  fleet::Router router;
  bool ok = true;

  explicit FileFleet(const TempDir& tmp) {
    for (int s = 0; s < kFleetShards; ++s) {
      auto wal = journal::FileStorage::Open(WalPath(tmp, s));
      auto snapshot = journal::FileStorage::Open(SnapPath(tmp, s));
      if (!wal.ok() || !snapshot.ok()) {
        ok = false;
        return;
      }
      pods.push_back(std::make_unique<tpu::Superpod>(
          kPodSeed + static_cast<std::uint64_t>(s), kPodCubes, kOcsPerDim));
      shards.push_back(std::make_unique<fleet::Shard>(
          static_cast<std::uint32_t>(s), *pods.back(),
          core::AllocationPolicy::kReconfigurable, *wal.value(), *snapshot.value(),
          FleetOptions()));
      stores.push_back(std::move(wal.value()));
      stores.push_back(std::move(snapshot.value()));
      router.AddShard(shards.back().get());
    }
  }

  std::vector<std::uint8_t> Digest() const {
    std::vector<std::uint8_t> combined;
    for (const auto& shard : shards) {
      const auto bytes = shard->service().SerializeState();
      combined.insert(combined.end(), bytes.begin(), bytes.end());
    }
    return combined;
  }
};

/// Serves the fleet trace once, leaving durable media behind.
bool BuildFleetMedia(const TempDir& tmp) {
  FileFleet fleet(tmp);
  if (!fleet.ok || !fleet.router.RecoverAll().ok()) return false;
  const svc::RequestStream stream(kStreamSeed + 1, kFleetCommands,
                                  StreamConfig(kFleetTenants));
  for (std::uint64_t i = 0; i < kFleetCommands; ++i) {
    if (!fleet.router.Submit(stream.Command(i)).ok()) return false;
    if (i % 1024 == 1023) fleet.router.PumpAll();
  }
  while (fleet.router.PumpAll() > 0) {
  }
  return true;
}

struct RecoveryRun {
  double seconds = -1.0;
  std::uint64_t records_replayed = 0;
  std::uint64_t wal_bytes = 0;
  double hist_p50_ms = 0.0;
  double hist_p99_ms = 0.0;
  std::vector<std::uint8_t> digest;
};

/// One timed fleet recovery at the given thread count.
RecoveryRun RecoverFleet(const TempDir& tmp, int threads) {
  RecoveryRun run;
  common::parallel::SetThreads(threads);
  FileFleet fleet(tmp);
  if (!fleet.ok) return run;
  telemetry::Hub hub;
  for (auto& shard : fleet.shards) shard->AttachTelemetry(&hub);
  for (const auto& store : fleet.stores) run.wal_bytes += store->size();

  const bench::WallTimer timer;
  auto recovery = fleet.router.RecoverAll();
  const double seconds = timer.ms() / 1e3;
  if (!recovery.ok()) return run;

  run.seconds = seconds;
  run.records_replayed = recovery.value().records_replayed;
  auto& hist = hub.metrics().GetHistogram("lightwave_journal_recovery_latency_ms");
  if (hist.count() > 0) {
    run.hist_p50_ms = hist.Percentile(50.0);
    run.hist_p99_ms = hist.Percentile(99.0);
  }
  run.digest = fleet.Digest();
  return run;
}

std::string PolicyParams(ServeMode mode, const ServeResult& r) {
  char extra[128];
  std::snprintf(extra, sizeof(extra), " fsyncs=%llu commands_per_sec=%.0f",
                static_cast<unsigned long long>(r.fsyncs),
                static_cast<double>(r.commands) / r.seconds);
  return "policy=" + std::string(ToString(mode)) +
         " commands=" + std::to_string(r.commands) +
         " batch=" + std::to_string(mode == ServeMode::kEveryAppend ? 1 : kBatch) +
         extra;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "recovery");
  TempDir tmp;
  if (tmp.dir.empty()) {
    std::printf("mkdtemp failed\n");
    return 1;
  }

  // --- Part 1: per-sync-policy journaling overhead over real files ---------
  const ServeMode modes[] = {ServeMode::kOff, ServeMode::kGroupCommit,
                             ServeMode::kPeriodic, ServeMode::kEveryAppend};
  ServeResult best[4];
  std::printf("file-backed serve, %llu commands, batch %zu, best of %d (%s)\n",
              static_cast<unsigned long long>(kServeCommands), kBatch, kRepeats,
              tmp.dir.c_str());
  for (int m = 0; m < 4; ++m) {
    best[m].seconds = 1e30;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      const ServeResult run = RunServe(tmp, modes[m], repeat);
      if (run.seconds < 0.0) {
        std::printf("serve failed for policy %s\n", ToString(modes[m]));
        return 1;
      }
      if (run.seconds < best[m].seconds) best[m] = run;
    }
  }
  const double off_seconds = best[0].seconds;
  double group_commit_overhead_pct = 0.0;
  double periodic_overhead_pct = 0.0;
  for (int m = 0; m < 4; ++m) {
    const ServeResult& r = best[m];
    const double rps = static_cast<double>(r.commands) / r.seconds;
    // every_append runs a different command count and batch size, so its
    // wall clock is not comparable to the baseline; report its rate only.
    const bool comparable = modes[m] != ServeMode::kEveryAppend;
    const double overhead_pct =
        comparable ? (r.seconds / off_seconds - 1.0) * 100.0 : 0.0;
    if (modes[m] == ServeMode::kGroupCommit) group_commit_overhead_pct = overhead_pct;
    if (modes[m] == ServeMode::kPeriodic) periodic_overhead_pct = overhead_pct;
    std::printf("  %-13s: %10.0f commands/s  (%8.2f ms, %5llu fsyncs)", ToString(modes[m]),
                rps, r.seconds * 1e3, static_cast<unsigned long long>(r.fsyncs));
    if (modes[m] == ServeMode::kOff) {
      std::printf("  [baseline]\n");
    } else if (comparable) {
      std::printf("  overhead %+.2f %%\n", overhead_pct);
    } else {
      std::printf("  [report-only: 1 fsync per command]\n");
    }
    json.Add("file_journaling_" + std::string(ToString(modes[m])),
             PolicyParams(modes[m], r), r.seconds * 1e3, r.bytes / r.seconds);
  }

  // --- Part 2: serial vs parallel fleet recovery ---------------------------
  if (!BuildFleetMedia(tmp)) {
    std::printf("fleet media build failed\n");
    return 1;
  }
  const int original_threads = common::parallel::Threads();
  RecoveryRun serial, parallel;
  serial.seconds = parallel.seconds = 1e30;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    RecoveryRun serial_run = RecoverFleet(tmp, 1);
    RecoveryRun parallel_run = RecoverFleet(tmp, kParallelThreads);
    if (serial_run.seconds < 0.0 || parallel_run.seconds < 0.0) {
      std::printf("fleet recovery failed\n");
      common::parallel::SetThreads(original_threads);
      return 1;
    }
    if (serial_run.digest != parallel_run.digest) {
      std::printf("FAIL: parallel recovery digest differs from serial\n");
      common::parallel::SetThreads(original_threads);
      return 1;
    }
    if (serial_run.seconds < serial.seconds) serial = std::move(serial_run);
    if (parallel_run.seconds < parallel.seconds) parallel = std::move(parallel_run);
  }
  common::parallel::SetThreads(original_threads);
  const double speedup = serial.seconds / parallel.seconds;
  std::printf("fleet recovery, %d file-backed shards, %llu records, best of %d\n",
              kFleetShards, static_cast<unsigned long long>(serial.records_replayed),
              kRepeats);
  std::printf("  serial   (1 thread ): %8.2f ms  (per-shard p50 %.2f ms, p99 %.2f ms)\n",
              serial.seconds * 1e3, serial.hist_p50_ms, serial.hist_p99_ms);
  std::printf("  parallel (%d threads): %8.2f ms  (per-shard p50 %.2f ms, p99 %.2f ms)\n",
              kParallelThreads, parallel.seconds * 1e3, parallel.hist_p50_ms,
              parallel.hist_p99_ms);
  std::printf("  speedup  : %.2fx  (digests byte-identical)\n", speedup);

  char serial_params[160];
  std::snprintf(serial_params, sizeof(serial_params),
                "shards=%d threads=1 records=%llu hist_p50_ms=%.3f hist_p99_ms=%.3f",
                kFleetShards, static_cast<unsigned long long>(serial.records_replayed),
                serial.hist_p50_ms, serial.hist_p99_ms);
  json.Add("recovery_serial", serial_params, serial.seconds * 1e3,
           serial.wal_bytes / serial.seconds);
  char parallel_params[160];
  std::snprintf(parallel_params, sizeof(parallel_params),
                "shards=%d threads=%d records=%llu hist_p50_ms=%.3f hist_p99_ms=%.3f",
                kFleetShards, kParallelThreads,
                static_cast<unsigned long long>(parallel.records_replayed),
                parallel.hist_p50_ms, parallel.hist_p99_ms);
  json.Add("recovery_parallel", parallel_params, parallel.seconds * 1e3,
           parallel.wal_bytes / parallel.seconds);

  // --- Gates ---------------------------------------------------------------
  const bool group_ok = group_commit_overhead_pct < 15.0;
  const bool periodic_ok = periodic_overhead_pct < 15.0;
  // Loose bound: parallel recovery must never LOSE to serial (scheduler
  // noise aside); the printed speedup is the real result.
  const bool parallel_ok = parallel.seconds <= serial.seconds * 1.25;
  if (!group_ok) std::printf("FAIL: group_commit overhead over the 15%% budget\n");
  if (!periodic_ok) std::printf("FAIL: periodic overhead over the 15%% budget\n");
  if (!parallel_ok) std::printf("FAIL: parallel recovery slower than serial\n");
  return group_ok && periodic_ok && parallel_ok ? 0 : 1;
}
