// Table 1: relative cost and power of three fabrics connecting 4096 TPU v4
// chips, normalized to the static direct-connect topology. Also the §4.2.3
// deployment footprint (OCS + fiber count halving with bidirectionality).
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "core/tco.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "table1_tco");
  bench::WallTimer total_timer;
  std::printf("=== Table 1: fabric cost/power for a 4096-TPU superpod ===\n");
  Table table({"fabric", "relative cost", "relative power", "capex $M", "power kW"});
  for (const auto& row : core::SuperpodFabricComparison()) {
    table.AddRow({row.name, Table::Factor(row.relative_cost), Table::Factor(row.relative_power),
                  Table::Num(row.capex_usd / 1e6, 2), Table::Num(row.power_w / 1e3, 1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("paper: DCN 1.24x/1.10x, Lightwave 1.06x/1.01x, Static 1x/1x\n\n");

  std::printf("=== §4.2.3: deployment footprint by transceiver technology ===\n");
  Table footprint({"transceiver", "OCS count", "fiber strands", "OCS capex $M"});
  for (const auto& row : core::SuperpodDeploymentFootprints()) {
    footprint.AddRow({row.transceiver, std::to_string(row.ocs_count),
                      std::to_string(row.fiber_strands),
                      Table::Num(row.ocs_capex_usd / 1e6, 2)});
  }
  std::printf("%s", footprint.Render().c_str());
  std::printf("paper: bidi saves 50%% of OCS and fiber cost (96 -> 48 OCSes); CWDM8 "
              "halves again (-> 24)\n");
  json.Add("total", "", total_timer.ms());
  return 0;
}
