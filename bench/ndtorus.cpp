// §6 future-work ablation: higher-dimensional tori. At a fixed 4096 nodes,
// compares balanced 2D/3D/4D/6D tori on bisection, diameter, mean distance,
// per-node link cost, and all-reduce time — quantifying "a 4D or 6D torus
// ... has a larger bisection bandwidth, lower latency and greater
// scalability compared to a 3D torus", and what it costs in radix.
#include <cstdio>

#include "bench_json.h"
#include "common/table.h"
#include "tpu/ndtorus.h"

using namespace lightwave;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "ndtorus");
  bench::WallTimer total_timer;
  std::printf("=== higher-dimensional tori at 4096 nodes ===\n");
  Table table({"torus", "dims", "bisection links", "diameter", "mean hops", "links/node",
               "all-reduce 1MB us", "all-reduce 4GB ms"});
  for (const auto& row : tpu::CompareTorusDimensionalities(4096, {2, 3, 4, 6}, 1e6)) {
    table.AddRow({row.torus.ToString(), std::to_string(row.torus.dimension_count()),
                  std::to_string(row.bisection_links), std::to_string(row.diameter),
                  Table::Num(row.mean_distance, 1), std::to_string(row.links_per_node),
                  Table::Num(row.allreduce_us, 0),
                  Table::Num(row.torus.AllReduceUs(4e9) / 1e3, 1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\n4D/6D beat 3D on bisection and latency (small-payload all-reduce), at the\n"
              "cost of per-node radix: more OCS ports and transceivers per chip — the\n"
              "codesign trade §6 names.\n\n");

  std::printf("=== scalability: nodes reachable at diameter <= 24 hops ===\n");
  Table scale({"dims", "shape at 4096", "shape at 32768", "diameter at 32768"});
  for (int d : {3, 4, 6}) {
    const auto small = tpu::NdTorus::Balanced(d, 4096);
    const auto big = tpu::NdTorus::Balanced(d, 32768);
    scale.AddRow({std::to_string(d), small.ToString(), big.ToString(),
                  std::to_string(big.Diameter())});
  }
  std::printf("%s", scale.Render().c_str());
  json.Add("total", "nodes=4096", total_timer.ms());
  return 0;
}
