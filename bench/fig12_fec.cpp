// Fig. 12: optical receiver sensitivity improvement from the concatenated
// soft-decision inner FEC (without OIM compensation), under two MPI
// conditions. Headline: at the KP4 outer-code threshold, the inner SFEC
// buys ~1.6 dB of receiver sensitivity.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "common/math.h"
#include "common/rng.h"
#include "common/table.h"
#include "fec/concatenated.h"
#include "phy/ber_model.h"

using namespace lightwave;
using common::DbmPower;
using common::Decibel;
using common::Table;

int main(int argc, char** argv) {
  bench::JsonReporter json(argc, argv, "fig12_fec");
  bench::WallTimer total_timer;
  const phy::BerModel model(optics::Modulation::kPam4, DbmPower{-11.0});
  const fec::ConcatenatedFec fec;

  // With the inner code, the channel may run at a higher raw BER: the
  // decoder output still meets the KP4 input threshold.
  const double plain_threshold = phy::kKp4BerThreshold;
  const double inner_threshold = fec.inner().MaxChannelBer(phy::kKp4BerThreshold);
  std::printf("channel-BER threshold without inner SFEC: %.2e\n", plain_threshold);
  std::printf("channel-BER threshold with inner SFEC:    %.2e\n\n", inner_threshold);

  std::printf("=== Fig. 12: BER vs Rx power, two MPI conditions, +/- inner SFEC ===\n");
  const std::vector<double> mpi_levels = {-36.0, -32.0};
  Table table({"Rx dBm", "BER @MPI-36", "post-inner", "BER @MPI-32", "post-inner"});
  for (double p : common::Linspace(-14.0, -8.0, 13)) {
    std::vector<std::string> row = {Table::Num(p, 1)};
    for (double m : mpi_levels) {
      const double raw = model.PreFecBer(DbmPower{p}, Decibel{m});
      row.push_back(Table::Sci(raw));
      row.push_back(Table::Sci(fec.inner().Transfer(raw)));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\n--- sensitivity at the KP4 threshold (no OIM) ---\n");
  Table sens({"MPI dB", "w/o inner SFEC", "w/ inner SFEC", "improvement dB"});
  for (double m : mpi_levels) {
    const auto without = model.SensitivityAt(plain_threshold, Decibel{m});
    const auto with = model.SensitivityAt(inner_threshold, Decibel{m});
    sens.AddRow({Table::Num(m, 0),
                 without.value() >= 1e9 ? "floored" : Table::Num(without.value(), 2),
                 with.value() >= 1e9 ? "floored" : Table::Num(with.value(), 2),
                 (without.value() >= 1e9 || with.value() >= 1e9)
                     ? "-"
                     : Table::Num((without - with).value(), 2)});
  }
  std::printf("%s", sens.Render().c_str());
  const auto gain = model.SensitivityAt(plain_threshold, Decibel{-32.0}) -
                    model.SensitivityAt(inner_threshold, Decibel{-32.0});
  std::printf("paper: 1.6 dB at -32 dB MPI | measured: %.2f dB\n", gain.value());
  std::printf("inner SFEC latency at 200 Gb/s: %.1f ns (paper: < 20 ns)\n",
              fec.inner().LatencyNs(200.0));

  // Monte-Carlo cross-check of the analytic waterfall: the real RS codec
  // (batch kernels, parallel sweep, fixed seed — byte-identical at any
  // LIGHTWAVE_THREADS) against AnalyzeOuterCode across the KP4 knee. The
  // channel-BER grid straddles the 2e-4..6e-3 waterfall, where a few
  // thousand frames resolve the FER; far below threshold the analytic
  // column is the only practical estimate.
  std::printf("\n--- measured FER (Monte-Carlo, %d frames/point) vs analytic ---\n", 4096);
  const int mc_frames = 4096;
  Table mc({"channel BER", "analytic FER", "measured FER", "measured w/ inner"});
  for (const double ber : {1.5e-3, 2.5e-3, 4e-3, 6e-3}) {
    common::Rng rng(2023);
    bench::WallTimer point_timer;
    const double measured = fec.MeasureFrameErrorRate(ber, false, mc_frames, rng);
    const double measured_inner = fec.MeasureFrameErrorRate(ber, true, mc_frames, rng);
    const double analytic = fec::AnalyzeOuterCode(ber).frame_error_rate;
    mc.AddRow({Table::Sci(ber), Table::Sci(analytic), Table::Sci(measured),
               Table::Sci(measured_inner)});
    json.Add("measured_fer", "ber=" + Table::Sci(ber), point_timer.ms(),
             // Channel symbols pushed through encode+channel+decode per sec.
             2.0 * mc_frames * 544.0 * 10.0 / 8.0 / (point_timer.ms() / 1000.0));
  }
  std::printf("%s", mc.Render().c_str());

  json.Add("total", "", total_timer.ms());
  return 0;
}
