// Hot-path microbenchmarks (google-benchmark): RS(544,514) codec, Palomar
// reconfiguration, slice install, scheduler allocation, wire codec, BER
// evaluation, and the collective/flow simulators.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fec/concatenated.h"
#include "core/scheduler.h"
#include "ctrl/messages.h"
#include "fec/reed_solomon.h"
#include "ocs/palomar.h"
#include "phy/ber_model.h"
#include "core/topology_engineer.h"
#include "ocs/camera.h"
#include "phy/equalizer.h"
#include "sim/collective.h"
#include "sim/traffic.h"
#include "tpu/routing.h"
#include "sim/llm_model.h"
#include "tpu/superpod.h"

using namespace lightwave;

static void BM_RsEncode(benchmark::State& state) {
  const auto rs = fec::ReedSolomon::Kp4();
  common::Rng rng(1);
  std::vector<fec::Gf1024::Element> data(static_cast<std::size_t>(rs.k()));
  for (auto& s : data) s = static_cast<fec::Gf1024::Element>(rng.UniformInt(1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Encode(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * rs.k() * 10 / 8);
}
BENCHMARK(BM_RsEncode);

static void BM_RsEncodeInto(benchmark::State& state) {
  // Scratch-API variant: caller-owned codeword buffer, zero allocations per
  // call (the contrast with BM_RsEncode is the per-call vector).
  const auto rs = fec::ReedSolomon::Kp4();
  common::Rng rng(1);
  std::vector<fec::Gf1024::Element> data(static_cast<std::size_t>(rs.k()));
  for (auto& s : data) s = static_cast<fec::Gf1024::Element>(rng.UniformInt(1024));
  std::vector<fec::Gf1024::Element> codeword(static_cast<std::size_t>(rs.n()));
  for (auto _ : state) {
    rs.EncodeInto(data, codeword);
    benchmark::DoNotOptimize(codeword.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * rs.k() * 10 / 8);
}
BENCHMARK(BM_RsEncodeInto);

static void BM_RsDecode(benchmark::State& state) {
  const auto rs = fec::ReedSolomon::Kp4();
  common::Rng rng(2);
  std::vector<fec::Gf1024::Element> data(static_cast<std::size_t>(rs.k()));
  for (auto& s : data) s = static_cast<fec::Gf1024::Element>(rng.UniformInt(1024));
  auto codeword = rs.Encode(data);
  const int errors = static_cast<int>(state.range(0));
  for (int e = 0; e < errors; ++e) {
    codeword[static_cast<std::size_t>((e * 37 + 5) % rs.n())] ^=
        static_cast<fec::Gf1024::Element>(0x111 + e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(codeword));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * rs.n() * 10 / 8);
}
BENCHMARK(BM_RsDecode)->Arg(0)->Arg(4)->Arg(15);

static void BM_RsDecodeInPlace(benchmark::State& state) {
  // Scratch-API variant: reusable decode workspace, zero allocations per
  // call once the scratch is warm.
  const auto rs = fec::ReedSolomon::Kp4();
  common::Rng rng(2);
  std::vector<fec::Gf1024::Element> data(static_cast<std::size_t>(rs.k()));
  for (auto& s : data) s = static_cast<fec::Gf1024::Element>(rng.UniformInt(1024));
  auto codeword = rs.Encode(data);
  const int errors = static_cast<int>(state.range(0));
  for (int e = 0; e < errors; ++e) {
    codeword[static_cast<std::size_t>((e * 37 + 5) % rs.n())] ^=
        static_cast<fec::Gf1024::Element>(0x111 + e);
  }
  fec::ReedSolomon::Scratch scratch;
  std::vector<fec::Gf1024::Element> word(codeword.size());
  for (auto _ : state) {
    std::copy(codeword.begin(), codeword.end(), word.begin());
    benchmark::DoNotOptimize(rs.DecodeInPlace(word, scratch));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * rs.n() * 10 / 8);
}
BENCHMARK(BM_RsDecodeInPlace)->Arg(0)->Arg(4)->Arg(15);

static void BM_PalomarReconfigure(benchmark::State& state) {
  ocs::PalomarSwitch ocs(3);
  std::map<int, int> even, odd;
  for (int i = 0; i < 128; ++i) {
    even[i] = i;
    odd[i] = (i + 1) % 128;
  }
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ocs.Reconfigure(flip ? even : odd));
    flip = !flip;
  }
}
BENCHMARK(BM_PalomarReconfigure);

static void BM_SliceInstall(benchmark::State& state) {
  tpu::Superpod pod(4);
  std::vector<int> cubes;
  for (int i = 0; i < 16; ++i) cubes.push_back(i);
  auto topology = tpu::SliceTopology::Create(tpu::SliceShape{2, 2, 4}, cubes).value();
  for (auto _ : state) {
    auto id = pod.InstallSlice(topology).value();
    (void)pod.RemoveSlice(id);
  }
}
BENCHMARK(BM_SliceInstall);

static void BM_SchedulerAllocate(benchmark::State& state) {
  tpu::Superpod pod(5);
  core::SliceScheduler scheduler(pod, core::AllocationPolicy::kReconfigurable);
  for (auto _ : state) {
    auto id = scheduler.Allocate(tpu::SliceShape{2, 2, 2}).value();
    (void)scheduler.Release(id);
  }
}
BENCHMARK(BM_SchedulerAllocate);

static void BM_WireReconfigureRoundTrip(benchmark::State& state) {
  ctrl::ReconfigureRequest request;
  request.transaction_id = 42;
  for (int i = 0; i < 128; ++i) request.target[i] = 127 - i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl::DecodeReconfigureRequest(ctrl::Encode(request)));
  }
}
BENCHMARK(BM_WireReconfigureRoundTrip);

static void BM_BerEvaluation(benchmark::State& state) {
  const phy::BerModel model(optics::Modulation::kPam4, common::DbmPower{-9.5});
  double p = -12.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PreFecBer(common::DbmPower{p}, common::Decibel{-32.0}));
    p = p >= -6.0 ? -12.0 : p + 0.01;
  }
}
BENCHMARK(BM_BerEvaluation);

static void BM_TorusAllReduceSim(benchmark::State& state) {
  const tpu::SliceShape shape{4, 4, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::SimulateTorusAllReduce(shape, 256e6));
  }
}
BENCHMARK(BM_TorusAllReduceSim);

static void BM_LlmShapeSearch(benchmark::State& state) {
  const sim::LlmPerfModel model;
  const auto spec = sim::Llm1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.RankShapes(spec, 64));
  }
}
BENCHMARK(BM_LlmShapeSearch);

static void BM_MatchingDecomposition(benchmark::State& state) {
  common::Rng rng(6);
  const auto demand = sim::HotspotTraffic(64, 30000.0, 8, 0.5, rng);
  const auto alloc = core::AllocateTrunks(demand, 128, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DecomposeToMatchings(alloc, 128));
  }
}
BENCHMARK(BM_MatchingDecomposition);

static void BM_TorusRoute(benchmark::State& state) {
  const tpu::TorusRouter router(tpu::SliceShape{4, 4, 4});
  int i = 0;
  for (auto _ : state) {
    const tpu::SliceChipCoord src{i % 16, (i / 16) % 16, (i / 256) % 16};
    const tpu::SliceChipCoord dst{15 - src.x, 15 - src.y, 15 - src.z};
    benchmark::DoNotOptimize(router.ComputeRoute(src, dst));
    ++i;
  }
}
BENCHMARK(BM_TorusRoute);

static void BM_CameraCentroid(benchmark::State& state) {
  common::Rng rng(7);
  const ocs::CameraSpec spec;
  const auto image = ocs::RenderSpot(spec, 3e-4, -2e-4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ocs::ExtractCentroid(spec, image));
  }
}
BENCHMARK(BM_CameraCentroid);

static void BM_EqualizerSymbol(benchmark::State& state) {
  phy::AdaptiveEqualizer eq(7, 2, 2e-3);
  double x = 0.1;
  for (auto _ : state) {
    const double out = eq.Equalize(x);
    eq.Adapt(out > 0 ? 1.0 : -1.0);
    eq.PushDecision(out > 0 ? 1.0 : -1.0);
    benchmark::DoNotOptimize(out);
    x = -x;
  }
}
BENCHMARK(BM_EqualizerSymbol);

static void BM_RsDecodeWithErasures(benchmark::State& state) {
  const auto rs = fec::ReedSolomon::Kp4();
  common::Rng rng(8);
  std::vector<fec::Gf1024::Element> data(static_cast<std::size_t>(rs.k()));
  for (auto& sym : data) sym = static_cast<fec::Gf1024::Element>(rng.UniformInt(1024));
  auto codeword = rs.Encode(data);
  std::vector<int> erasures;
  for (int i = 0; i < 20; ++i) {
    const int pos = (i * 23 + 1) % rs.n();
    erasures.push_back(pos);
    codeword[static_cast<std::size_t>(pos)] ^= 0x155;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.DecodeWithErasures(codeword, erasures));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * rs.n() * 10 / 8);
}
BENCHMARK(BM_RsDecodeWithErasures);

static void BM_RsEncodeMany(benchmark::State& state) {
  // Batch SoA kernel over one full tile of codewords (fec/rs_batch.h);
  // contrast bytes_per_second with BM_RsEncodeInto for the vectorization
  // win. The ISSUE acceptance bar is >= 3x per codeword.
  const auto rs = fec::ReedSolomon::Kp4();
  common::Rng rng(1);
  const int count = fec::batch::kLaneWidth;
  std::vector<fec::Gf1024::Element> data(static_cast<std::size_t>(count * rs.k()));
  for (auto& s : data) s = static_cast<fec::Gf1024::Element>(rng.UniformInt(1024));
  std::vector<fec::Gf1024::Element> words(static_cast<std::size_t>(count * rs.n()));
  fec::ReedSolomon::BatchScratch scratch;
  for (auto _ : state) {
    rs.EncodeMany(data, words, scratch);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * count * rs.k() * 10 / 8);
}
BENCHMARK(BM_RsEncodeMany);

static void BM_RsDecodeMany(benchmark::State& state) {
  // Batch decode of a full tile; Arg = errors per codeword (0 stays on the
  // all-vectorized syndrome sweep, >0 adds the per-lane scalar BM tail).
  const auto rs = fec::ReedSolomon::Kp4();
  common::Rng rng(2);
  const int count = fec::batch::kLaneWidth;
  std::vector<fec::Gf1024::Element> data(static_cast<std::size_t>(rs.k()));
  std::vector<fec::Gf1024::Element> clean(static_cast<std::size_t>(count * rs.n()));
  for (int w = 0; w < count; ++w) {
    for (auto& s : data) s = static_cast<fec::Gf1024::Element>(rng.UniformInt(1024));
    std::span<fec::Gf1024::Element> word(clean.data() + static_cast<std::size_t>(w) * rs.n(),
                                         static_cast<std::size_t>(rs.n()));
    std::copy(data.begin(), data.end(), word.begin());
    rs.EncodeInto(word.first(static_cast<std::size_t>(rs.k())), word);
    const int errors = static_cast<int>(state.range(0));
    for (int e = 0; e < errors; ++e) {
      word[static_cast<std::size_t>((e * 37 + 5 + w) % rs.n())] ^=
          static_cast<fec::Gf1024::Element>(0x111 + e);
    }
  }
  std::vector<fec::Gf1024::Element> words(clean.size());
  std::vector<int> corrected(static_cast<std::size_t>(count));
  fec::ReedSolomon::BatchScratch scratch;
  for (auto _ : state) {
    std::copy(clean.begin(), clean.end(), words.begin());
    rs.DecodeMany(words, corrected, scratch);
    benchmark::DoNotOptimize(corrected.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * count * rs.n() * 10 / 8);
}
BENCHMARK(BM_RsDecodeMany)->Arg(0)->Arg(4)->Arg(15);

static void BM_FerSweep(benchmark::State& state) {
  // The end-to-end Monte-Carlo harness: batch kernels + interleaver +
  // geometric-gap BSC + parallel reduce, 256 frames per call at an
  // operating point (4e-3) with a real scalar-decode tail.
  const fec::ConcatenatedFec fecc;
  for (auto _ : state) {
    common::Rng rng(5);
    benchmark::DoNotOptimize(fecc.MeasureFrameErrorRate(4e-3, false, 256, rng));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 256 * 544 * 10 / 8);
}
BENCHMARK(BM_FerSweep);

// Same --json=<path> contract as the plain bench binaries (see
// bench_json.h): translated into google-benchmark's JSON file reporter so
// scripts/collect_bench.py can aggregate every binary uniformly.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (auto& arg : args) {
    if (arg.rfind("--json=", 0) == 0) {
      const std::string path = arg.substr(7);
      arg = "--benchmark_out=" + path;
      args.push_back("--benchmark_out_format=json");
      break;
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& arg : args) argv2.push_back(arg.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
