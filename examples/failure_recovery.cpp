// Failure recovery (§4.2.2): a host inside a cube dies while a training job
// runs. On the reconfigurable fabric the scheduler swaps the dead cube for a
// healthy spare and reprograms only that slice's cross-connects — bystander
// jobs never blip. A static fabric would lose the job. Also demonstrates
// OCS-level failures: a mirror failure absorbed by the die's spare mirrors,
// and a whole-switch outage with repair.
#include <cstdio>

#include "core/fabric_manager.h"

using namespace lightwave;

int main() {
  core::FabricManagerConfig config;
  config.seed = 42;
  core::FabricManager fabric;

  // Two jobs share the pod.
  auto training = fabric.CreateSlice(tpu::SliceShape{2, 4, 4});   // 2048 chips
  auto bystander = fabric.CreateSlice(tpu::SliceShape{2, 2, 2});  // 512 chips
  if (!training.ok() || !bystander.ok()) {
    std::printf("setup failed\n");
    return 1;
  }
  std::printf("running: training job on 32 cubes, bystander on 8, %zu cubes free\n",
              fabric.pod().FreeHealthyCubes().size());

  // --- cube failure ----------------------------------------------------------
  const int victim = fabric.pod().slices().at(training.value()).topology.cube_ids()[5];
  std::printf("\n[failure] host 3 of cube %d dies mid-step\n", victim);
  auto repaired = fabric.HandleCubeFailure(victim);
  if (!repaired.ok()) {
    std::printf("repair failed: %s\n", repaired.error().message.c_str());
    return 1;
  }
  std::printf("[repair]  scheduler swapped cube %d out; job re-homed as slice %llu\n", victim,
              static_cast<unsigned long long>(repaired.value()));
  std::printf("[check]   training degraded: %s, bystander degraded: %s\n",
              fabric.pod().SliceDegraded(repaired.value()) ? "YES" : "no",
              fabric.pod().SliceDegraded(bystander.value()) ? "YES" : "no");

  // --- MEMS mirror failure -----------------------------------------------------
  // A mirror in OCS 7 fails; manufacturing spares absorb it and the path is
  // re-aligned automatically.
  auto& ocs7 = fabric.pod().ocs(7);
  const int port = ocs7.Connections().front().north;
  std::printf("\n[failure] MEMS mirror behind OCS 7 north port %d fails\n", port);
  const bool survived = ocs7.InjectMirrorFailure(/*north_side=*/true, port);
  std::printf("[repair]  spare mirror mapped in: %s; port usable: %s\n",
              survived ? "yes" : "no", ocs7.PortUsable(true, port) ? "yes" : "no");

  // --- whole-OCS outage --------------------------------------------------------
  std::printf("\n[failure] OCS 12 loses both power supplies\n");
  fabric.pod().FailOcs(12);
  std::printf("[check]   training degraded: %s (multi-cube slices depend on every OCS)\n",
              fabric.pod().SliceDegraded(repaired.value()) ? "YES" : "no");
  fabric.pod().RepairOcs(12);
  std::printf("[repair]  PSUs hot-swapped; connections re-established\n");
  std::printf("[check]   training degraded: %s, bystander degraded: %s\n",
              fabric.pod().SliceDegraded(repaired.value()) ? "YES" : "no",
              fabric.pod().SliceDegraded(bystander.value()) ? "YES" : "no");

  // Chassis-level availability math for context.
  const double chassis_avail = ocs7.chassis().SteadyStateAvailability();
  std::printf("\nsteady-state chassis availability: %.4f%% (paper: > 99.98%%)\n",
              100.0 * chassis_avail);
  return 0;
}
