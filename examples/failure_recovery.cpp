// Failure recovery (§4.2.2): a host inside a cube dies while a training job
// runs. On the reconfigurable fabric the scheduler swaps the dead cube for a
// healthy spare and reprograms only that slice's cross-connects — bystander
// jobs never blip. A static fabric would lose the job. Also demonstrates
// OCS-level failures: a mirror failure absorbed by the die's spare mirrors,
// a whole-switch outage with repair, and a control-plane chaos sweep proving
// the fabric controller's transactional recovery (apply fully or roll back;
// torn state is always reported, never silent).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/fabric_manager.h"
#include "ctrl/fault_injector.h"
#include "telemetry/hub.h"

using namespace lightwave;

int main() {
  core::FabricManagerConfig config;
  config.seed = 42;
  core::FabricManager fabric(config);

  // Two jobs share the pod.
  auto training = fabric.CreateSlice(tpu::SliceShape{2, 4, 4});   // 2048 chips
  auto bystander = fabric.CreateSlice(tpu::SliceShape{2, 2, 2});  // 512 chips
  if (!training.ok() || !bystander.ok()) {
    std::printf("setup failed\n");
    return 1;
  }
  std::printf("running: training job on 32 cubes, bystander on 8, %zu cubes free\n",
              fabric.pod().FreeHealthyCubes().size());

  // --- cube failure ----------------------------------------------------------
  const int victim = fabric.pod().slices().at(training.value()).topology.cube_ids()[5];
  std::printf("\n[failure] host 3 of cube %d dies mid-step\n", victim);
  auto repaired = fabric.HandleCubeFailure(victim);
  if (!repaired.ok()) {
    std::printf("repair failed: %s\n", repaired.error().message.c_str());
    return 1;
  }
  std::printf("[repair]  scheduler swapped cube %d out; job re-homed as slice %llu\n", victim,
              static_cast<unsigned long long>(repaired.value()));
  std::printf("[check]   training degraded: %s, bystander degraded: %s\n",
              fabric.pod().SliceDegraded(repaired.value()) ? "YES" : "no",
              fabric.pod().SliceDegraded(bystander.value()) ? "YES" : "no");

  // --- MEMS mirror failure -----------------------------------------------------
  // A mirror in OCS 7 fails; manufacturing spares absorb it and the path is
  // re-aligned automatically.
  auto& ocs7 = fabric.pod().ocs(7);
  const int port = ocs7.Connections().front().north;
  std::printf("\n[failure] MEMS mirror behind OCS 7 north port %d fails\n", port);
  const bool survived = ocs7.InjectMirrorFailure(/*north_side=*/true, port);
  std::printf("[repair]  spare mirror mapped in: %s; port usable: %s\n",
              survived ? "yes" : "no", ocs7.PortUsable(true, port) ? "yes" : "no");

  // --- whole-OCS outage --------------------------------------------------------
  std::printf("\n[failure] OCS 12 loses both power supplies\n");
  fabric.pod().FailOcs(12);
  std::printf("[check]   training degraded: %s (multi-cube slices depend on every OCS)\n",
              fabric.pod().SliceDegraded(repaired.value()) ? "YES" : "no");
  fabric.pod().RepairOcs(12);
  std::printf("[repair]  PSUs hot-swapped; connections re-established\n");
  std::printf("[check]   training degraded: %s, bystander degraded: %s\n",
              fabric.pod().SliceDegraded(repaired.value()) ? "YES" : "no",
              fabric.pod().SliceDegraded(bystander.value()) ? "YES" : "no");

  // Chassis-level availability math for context.
  const double chassis_avail = ocs7.chassis().SteadyStateAvailability();
  std::printf("\nsteady-state chassis availability: %.4f%% (paper: > 99.98%%)\n",
              100.0 * chassis_avail);

  // --- control-plane chaos sweep ----------------------------------------------
  // Topology transactions driven through the deterministic fault injector:
  // correlated bus brownouts, agent fail-stop/restart (losing the volatile
  // idempotency cache), and mirror deaths under ports of the incoming
  // target. The invariant: every transaction either fully applies or rolls
  // every touched switch back to its snapshot; switches that could not be
  // restored are *listed* as torn, and every switch stays validator-clean.
  std::printf("\n[chaos]   control-plane fault sweep: 3 switches, 4 seeds x 6 txns\n");
  ctrl::FaultProfile profile;
  profile.agent_fail_prob = 0.02;
  profile.agent_restart_prob = 0.5;
  profile.brownout_start_prob = 0.08;
  profile.brownout_drop_prob = 0.8;
  profile.mirror_death_prob = 0.1;
  telemetry::Hub chaos_hub;
  int applied = 0, rolled_back = 0, torn = 0;
  bool violation = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ctrl::MessageBus bus(seed);
    ctrl::FaultInjector injector(seed, profile);
    bus.SetFaultInjector(&injector);
    injector.AttachTelemetry(&chaos_hub);
    ctrl::FabricControllerOptions options;
    options.max_retries = 8;
    ctrl::FabricController controller(bus, options);
    controller.AttachTelemetry(&chaos_hub);
    std::vector<std::unique_ptr<ocs::PalomarSwitch>> switches;
    std::vector<std::unique_ptr<ctrl::OcsAgent>> agents;
    for (int i = 0; i < 3; ++i) {
      switches.push_back(
          std::make_unique<ocs::PalomarSwitch>(seed * 10 + static_cast<std::uint64_t>(i)));
      agents.push_back(std::make_unique<ctrl::OcsAgent>(*switches.back()));
      agents.back()->SetFaultInjector(&injector);
      controller.Register(i, agents.back().get());
    }
    common::Rng traffic = common::Rng::Stream(seed, 7);
    for (int txn = 0; txn < 6; ++txn) {
      std::map<int, std::map<int, int>> targets;
      for (int i = 0; i < 3; ++i) {
        std::map<int, int>& t = targets[i];
        for (int c = 0; c < 4; ++c) {
          const int n = static_cast<int>(traffic.UniformInt(12));
          const int s = static_cast<int>(traffic.UniformInt(12));
          bool south_taken = false;
          for (const auto& [tn, ts] : t) south_taken = south_taken || ts == s;
          if (!t.contains(n) && !south_taken) t[n] = s;
        }
      }
      std::vector<std::map<int, int>> pre;
      for (const auto& sw : switches) pre.push_back(sw->CurrentMapping());
      const auto result = controller.ApplyTopology(targets);
      switch (result.outcome) {
        case ctrl::FabricTxnOutcome::kApplied: ++applied; break;
        case ctrl::FabricTxnOutcome::kRolledBack: ++rolled_back; break;
        case ctrl::FabricTxnOutcome::kTorn: ++torn; break;
      }
      for (int i = 0; i < 3; ++i) {
        const auto& now = switches[static_cast<std::size_t>(i)]->CurrentMapping();
        const bool listed_torn =
            std::find(result.torn.begin(), result.torn.end(), i) != result.torn.end();
        const bool consistent =
            result.ok ? now == targets.at(i)
                      : (listed_torn || now == pre[static_cast<std::size_t>(i)]);
        if (!consistent ||
            !switches[static_cast<std::size_t>(i)]->ValidateInvariants().ok()) {
          std::printf("[chaos]   INVARIANT VIOLATION: seed %llu txn %d ocs %d\n",
                      static_cast<unsigned long long>(seed), txn, i);
          violation = true;
        }
      }
    }
  }
  auto chaos_count = [&chaos_hub](const char* name) {
    return static_cast<unsigned long long>(chaos_hub.metrics().GetCounter(name).value());
  };
  std::printf("[chaos]   outcomes: %d applied, %d rolled back, %d torn (all reported)\n",
              applied, rolled_back, torn);
  std::printf("[chaos]   faults: %llu agent fail-stops, %llu brownouts, %llu mirror deaths\n",
              chaos_count("lightwave_fault_agent_failstops_total"),
              chaos_count("lightwave_fault_brownouts_total"),
              chaos_count("lightwave_fault_mirror_deaths_total"));
  std::printf("[chaos]   recovery: %llu retries, %llu rollbacks, %llu torn transactions\n",
              chaos_count("lightwave_ctrl_retries_total"),
              chaos_count("lightwave_ctrl_rollbacks_total"),
              chaos_count("lightwave_ctrl_torn_transactions_total"));
  if (violation) {
    std::printf("[chaos]   FAILED: torn state escaped the transaction report\n");
    return 1;
  }
  std::printf("[chaos]   every seed ended applied-or-restored; all switches validator-clean\n");
  return 0;
}
