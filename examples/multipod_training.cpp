// Scale-out training across superpods (§2.2.2, Fig. 2): pick the intra-pod
// slice per workload, size the DCN ring, and co-optimize the DCN topology
// with placement — comparing against the uniform pod mesh the topology
// engineer replaces.
#include <cstdio>

#include "sim/multipod.h"

using namespace lightwave;

int main() {
  sim::MultipodTrainer trainer;

  std::printf("=== training LLM1 (70B) across 4 superpods (16384 chips) ===\n");
  sim::MultipodConfig config;
  config.pods = 4;
  const auto step = trainer.StepTime(sim::Llm1(), config);
  std::printf("per-pod slice: %s (each pod holds one replica group)\n",
              step.pod_shape.ToString().c_str());
  std::printf("intra-pod step (ICI collectives): %.0f ms\n", step.intra_pod_us / 1e3);
  std::printf("cross-pod gradient all-reduce over the DCN ring: %.0f ms "
              "(%.0f ms exposed after overlap)\n",
              step.dcn_allreduce_us / 1e3, step.dcn_exposed_us / 1e3);
  std::printf("total step: %.0f ms -> %.0f seq/s\n", step.total_us / 1e3,
              step.throughput_seq_per_s);
  std::printf("ICI : DCN bandwidth per TPU: %.0fx (paper: 50-100x — why collectives are\n"
              "adapted per tier, §2.2.2)\n\n",
              step.ici_to_dcn_ratio);

  std::printf("=== why the DCN topology must be co-optimized ===\n");
  sim::MultipodConfig uniform = config;
  uniform.dcn_mode = sim::MultipodConfig::DcnMode::kUniformMesh;
  const auto u = trainer.StepTime(sim::Llm1(), uniform);
  std::printf("uniform pod mesh:     step %.0f ms (ring rides thin trunks)\n",
              u.total_us / 1e3);
  std::printf("engineered DCN ring:  step %.0f ms  -> %.2fx faster end-to-end\n",
              step.total_us / 1e3, u.total_us / step.total_us);

  std::printf("\n=== pod-count sweep ===\n");
  std::printf("pods  step-ms  seq/s   scaling-efficiency\n");
  double base = 0.0;
  for (int pods : {1, 2, 4, 8, 16}) {
    sim::MultipodConfig c;
    c.pods = pods;
    const auto s = trainer.StepTime(sim::Llm1(), c);
    if (pods == 1) base = s.throughput_seq_per_s;
    std::printf("%4d  %7.0f  %6.0f  %.1f%%\n", pods, s.total_us / 1e3,
                s.throughput_seq_per_s, 100.0 * s.throughput_seq_per_s / (pods * base));
  }
  return 0;
}
