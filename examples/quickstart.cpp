// Quickstart: bring up a TPU v4 superpod behind a lightwave fabric, carve a
// slice, inspect the optical paths the fabric programmed, run a collective
// on the slice torus, and read control-plane telemetry.
#include <cstdio>

#include "core/fabric_manager.h"
#include "optics/transceiver.h"
#include "sim/collective.h"

using namespace lightwave;

int main() {
  // A production-sized pod: 64 electrically-wired 4x4x4 cubes (4096 chips)
  // joined by 48 Palomar OCSes per the Appendix-A wiring plan.
  core::FabricManager fabric;
  std::printf("pod: %d cubes (%d chips), %d OCSes\n", fabric.pod().cube_count(),
              fabric.pod().cube_count() * tpu::kChipsPerCube, fabric.pod().ocs_count());

  // Carve a 512-chip slice shaped 8x16x16 chips (2x4x4 cubes). The scheduler
  // picks idle healthy cubes; the fabric manager programs every OCS without
  // disturbing anything else running in the pod.
  const tpu::SliceShape shape{2, 4, 4};
  auto slice = fabric.CreateSlice(shape);
  if (!slice.ok()) {
    std::printf("slice creation failed: %s\n", slice.error().message.c_str());
    return 1;
  }
  const auto& installed = fabric.pod().slices().at(slice.value());
  std::printf("installed slice %llu: %s chips over %d cubes, %zu OCSes programmed, "
              "%.1f ms switch time\n",
              static_cast<unsigned long long>(slice.value()), shape.ToString().c_str(),
              shape.CubeCount(), installed.connections.size(), installed.install_time_ms);

  // Optical quality of every path the slice uses (link budget + PHY).
  const auto reports = fabric.SurveyLinkQuality(optics::Cwdm4Bidi());
  double worst_ber = 0.0, worst_loss = 0.0;
  for (const auto& r : reports) {
    worst_ber = std::max(worst_ber, r.pre_fec_ber);
    worst_loss = std::max(worst_loss, r.insertion_loss_db);
  }
  std::printf("surveyed %zu optical paths: worst insertion loss %.2f dB, worst pre-FEC "
              "BER %.1e (KP4 threshold 2.0e-4)\n",
              reports.size(), worst_loss, worst_ber);

  // Run a 256 MB all-reduce on the slice torus (event-driven simulation).
  const double us = sim::SimulateTorusAllReduce(shape, 256e6);
  std::printf("256 MB all-reduce on the %s torus: %.2f ms\n", shape.ToString().c_str(),
              us / 1e3);

  // Control-plane telemetry sweep over the wire protocol.
  const auto telemetry = fabric.CollectTelemetry();
  std::uint64_t connects = 0;
  double power = 0.0;
  for (const auto& [id, t] : telemetry.replies) {
    connects += t.connects;
    power += t.power_draw_w;
  }
  std::printf("telemetry: %zu OCSes report %llu cross-connects, %.0f W fabric power\n",
              telemetry.replies.size(), static_cast<unsigned long long>(connects), power);

  // Tear down; the fabric drains cleanly.
  (void)fabric.DestroySlice(slice.value());
  std::printf("slice destroyed; free cubes: %zu\n", fabric.pod().FreeHealthyCubes().size());
  return 0;
}
