// Durable fleet service: a crash-recoverable front-end over the slice
// scheduler. A seeded stream of admit/resize/release commands flows through
// a bounded admission queue; every accepted command is journaled to a
// write-ahead log BEFORE it is applied, and periodic snapshots compact the
// log. Mid-stream the demo "kills the process" at the nastiest crash point
// (mid-apply: journaled, state mutation half done), then recovers a
// successor service from the surviving storage — snapshot + WAL suffix —
// and finishes the stream. The recovered run converges on exactly the state
// an uneventful run would have reached.
#include <cstdio>

#include "ctrl/fault_injector.h"
#include "journal/storage.h"
#include "svc/fleet_service.h"
#include "svc/request_stream.h"
#include "telemetry/hub.h"
#include "tpu/superpod.h"

using namespace lightwave;

namespace {

svc::FleetService MakeService(tpu::Superpod& pod, journal::Storage& wal_storage,
                              journal::Storage& snapshot_storage) {
  svc::FleetServiceOptions options;
  options.queue_capacity = 16;
  options.snapshot_interval = 64;
  return svc::FleetService(pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                           snapshot_storage, options);
}

void PrintJournal(const svc::FleetService& service) {
  const auto& wal = service.wal();
  std::printf(
      "          journal: %llu appends (%llu bytes), %llu compactions reclaimed %llu "
      "bytes, %llu snapshots, log now %llu bytes\n",
      static_cast<unsigned long long>(wal.appended_records()),
      static_cast<unsigned long long>(wal.appended_bytes()),
      static_cast<unsigned long long>(wal.compactions()),
      static_cast<unsigned long long>(wal.reclaimed_bytes()),
      static_cast<unsigned long long>(service.stats().snapshots),
      static_cast<unsigned long long>(wal.storage().size()));
}

}  // namespace

int main() {
  // The durable media. Everything else — pod, scheduler, service — is
  // volatile and dies with the "process".
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  telemetry::Hub hub;

  const svc::RequestStream stream(/*seed=*/2026, /*count=*/400);
  ctrl::FaultInjector injector(/*seed=*/7, ctrl::FaultProfile{});

  std::printf("serving a %llu-command slice-request stream (journaling on)\n",
              static_cast<unsigned long long>(stream.count()));

  // --- first incarnation: serve until the armed crash fires ------------------
  {
    tpu::Superpod pod(/*seed=*/42);
    auto service = MakeService(pod, wal_storage, snapshot_storage);
    service.SetFaultInjector(&injector);
    service.AttachTelemetry(&hub);
    auto recovery = service.Recover();
    if (!recovery.ok()) {
      std::printf("fresh recovery failed: %s\n", recovery.error().message.c_str());
      return 1;
    }
    // Die mid-apply of the 250th command: it is already journaled, and the
    // fabric mutation is half done when the process vanishes.
    injector.ArmCrash(ctrl::CrashPoint::kMidApply, 250);
    auto served = service.Serve(stream);
    std::printf("\n[crash]   process died %s after committing %llu commands "
                "(%llu live jobs at the time)\n",
                ctrl::ToString(ctrl::CrashPoint::kMidApply),
                static_cast<unsigned long long>(service.next_command_id() - 1),
                static_cast<unsigned long long>(service.live_jobs()));
    std::printf("          served %llu commands this incarnation; crashed: %s\n",
                static_cast<unsigned long long>(served.processed),
                served.crashed ? "yes" : "no");
    PrintJournal(service);
    // The pod and service are abandoned here; only the storages survive.
  }

  // --- second incarnation: recover and finish --------------------------------
  tpu::Superpod pod(/*seed=*/42);  // same hardware, rebooted
  auto service = MakeService(pod, wal_storage, snapshot_storage);
  service.SetFaultInjector(&injector);
  service.AttachTelemetry(&hub);
  auto recovery = service.Recover();
  if (!recovery.ok()) {
    std::printf("recovery failed: %s\n", recovery.error().message.c_str());
    return 1;
  }
  const auto& stats = recovery.value();
  std::printf("\n[recover] snapshot%s", stats.snapshot_loaded ? " loaded" : ": none");
  if (stats.snapshot_loaded) {
    std::printf(" (covers through seq %llu)",
                static_cast<unsigned long long>(stats.snapshot_seq));
  }
  std::printf(", replayed %llu of %llu journal records (%llu covered by the snapshot)\n",
              static_cast<unsigned long long>(stats.records_replayed),
              static_cast<unsigned long long>(stats.records_scanned),
              static_cast<unsigned long long>(stats.records_skipped));
  std::printf("          committed frontier restored to command %llu; %llu live jobs\n",
              static_cast<unsigned long long>(service.next_command_id() - 1),
              static_cast<unsigned long long>(service.live_jobs()));

  auto served = service.Serve(stream);
  if (served.crashed) {
    std::printf("unexpected second crash\n");
    return 1;
  }
  std::printf("\n[finish]  resumed from the frontier and served the remaining %llu "
              "commands\n",
              static_cast<unsigned long long>(served.processed));
  const auto& s = service.stats();
  std::printf("          admitted %llu, resized %llu, released %llu, rejected %llu "
              "(capacity/validity), %llu live jobs at end\n",
              static_cast<unsigned long long>(s.admitted),
              static_cast<unsigned long long>(s.resized),
              static_cast<unsigned long long>(s.released),
              static_cast<unsigned long long>(s.rejected_apply),
              static_cast<unsigned long long>(service.live_jobs()));
  PrintJournal(service);

  auto validated = service.scheduler().ValidateInvariants();
  std::printf("\n[check]   scheduler invariants after recovery: %s\n",
              validated.ok() ? "OK" : validated.error().message.c_str());
  std::printf("[check]   recoveries recorded by telemetry: %llu\n",
              static_cast<unsigned long long>(
                  hub.metrics().GetCounter("lightwave_journal_recoveries_total").value()));
  return validated.ok() ? 0 : 1;
}
