// LLM training placement (§4.2.1): for each production workload, search the
// slice-shape space with the performance model, install the winning shape on
// the superpod, and report the speedup over the static 16x16x16 baseline —
// the Table 2 flow as a library user would run it.
#include <cstdio>

#include "common/table.h"
#include "core/fabric_manager.h"
#include "sim/llm_model.h"

using namespace lightwave;
using common::Table;

int main() {
  const sim::LlmPerfModel model;
  const tpu::SliceShape baseline{4, 4, 4};

  for (const auto& spec : {sim::Llm0(), sim::Llm1(), sim::Llm2()}) {
    std::printf("=== %s: %.0fB parameters, global batch %.0f ===\n", spec.name.c_str(),
                spec.params_billion, spec.global_batch);

    // 1) Search every ordered 64-cube shape.
    const auto ranked = model.RankShapes(spec, 64);
    const auto& best = ranked.front();
    const auto base = model.StepTime(spec, baseline);
    std::printf("best shape %s: step %.0f ms (%.1f seq/s); baseline 16x16x16: %.0f ms "
                "-> speedup %.2fx\n",
                best.shape.ToString().c_str(), best.breakdown.total_us / 1e3,
                best.breakdown.throughput_seq_per_s, base.total_us / 1e3,
                base.total_us / best.breakdown.total_us);
    std::printf("step breakdown at optimum: compute %.0f ms (penalty %.2fx), "
                "MP comm %.0f ms, exposed DP comm %.0f ms\n",
                best.breakdown.compute_us / 1e3, best.breakdown.mismatch_penalty,
                best.breakdown.mp_comm_us / 1e3, best.breakdown.dp_comm_exposed_us / 1e3);

    // 2) Install the winner on a fresh pod and verify the fabric accepts it.
    core::FabricManager fabric;
    auto slice = fabric.CreateSlice(best.shape);
    if (!slice.ok()) {
      std::printf("install failed: %s\n", slice.error().message.c_str());
      return 1;
    }
    std::printf("installed on the pod: %zu OCSes programmed, bisection %d optical links\n\n",
                fabric.pod().slices().at(slice.value()).connections.size(),
                fabric.pod().slices().at(slice.value()).topology.BisectionLinks(
                    fabric.pod().plan()));
  }

  std::printf("note: no one-size-fits-all shape — the reconfigurable fabric re-shapes the\n"
              "same 4096 chips per workload, which a static topology cannot (§4.2.1).\n");
  return 0;
}
