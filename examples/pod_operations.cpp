// A day of pod operations: periodic telemetry sweeps over the control
// plane, link-quality surveys feeding the anomaly detector, spare-port
// repair of a degrading path, and traffic-pattern analysis on the running
// slice — the §3.2.2 "deeply integrate the control and monitoring software"
// story as a library user would script it.
#include <cstdio>

#include "core/fabric_manager.h"
#include "ctrl/anomaly.h"
#include "optics/transceiver.h"
#include "sim/torus_traffic.h"

using namespace lightwave;

int main() {
  core::FabricManager fabric;
  auto slice = fabric.CreateSlice(tpu::SliceShape{2, 4, 4});  // 2048 chips
  if (!slice.ok()) return 1;
  std::printf("slice 8x16x16 running on %zu OCS connections\n",
              fabric.pod().slices().at(slice.value()).connections.size());

  // --- shift 1: telemetry sweep over the wire protocol -----------------------
  const auto telemetry = fabric.CollectTelemetry();
  std::uint64_t reconfigs = 0, rejected = 0;
  double switch_ms = 0.0;
  for (const auto& [id, t] : telemetry.replies) {
    reconfigs += t.reconfigurations;
    rejected += t.rejected_commands;
    switch_ms += t.cumulative_switch_ms;
  }
  std::printf("[telemetry] %zu switches: %llu reconfig transactions, %llu rejected "
              "commands, %.0f ms total mirror time\n",
              telemetry.replies.size(), static_cast<unsigned long long>(reconfigs),
              static_cast<unsigned long long>(rejected), switch_ms);

  // --- shift 2: link-quality surveys feed the anomaly detector ----------------
  ctrl::AnomalyDetector detector;
  auto sweep = [&] {
    for (const auto& r : fabric.SurveyLinkQuality(optics::Cwdm4Bidi())) {
      detector.Observe(ctrl::LinkKey{r.ocs_id, r.north}, r.insertion_loss_db,
                       r.pre_fec_ber);
    }
  };
  for (int i = 0; i < 5; ++i) sweep();
  std::printf("[monitor]  tracking %d links; %zu anomalies flagged\n",
              detector.tracked_links(), detector.Flagged().size());

  // --- shift 3: qualification + spare-port repair ------------------------------
  const auto summary =
      fabric.RepairOutOfBudgetLinks(optics::Cwdm4Bidi(), {}, /*min_margin_db=*/1.0);
  std::printf("[repair]   %d re-patches onto spare ports, %d unrepairable, %d still "
              "out of budget\n",
              summary.repairs_attempted, summary.unrepairable,
              summary.still_out_of_budget);

  // --- shift 4: traffic health on the slice torus ------------------------------
  const tpu::SliceShape shape{2, 4, 4};
  for (const auto& [name, pattern] :
       {std::pair<const char*, sim::Pattern>{"ring shift (collective phase)",
                                             sim::NeighborShift(shape, tpu::Dim::kZ)},
        {"random permutation (adversarial)", sim::RandomPermutation(shape, 17)}}) {
    const auto analysis = sim::AnalyzePattern(shape, pattern, name, 64e6);
    std::printf("[traffic]  %-34s peak link load %d, completion %.0f us, link "
                "efficiency %.0f%%\n",
                name, analysis.peak_link_load, analysis.completion_us,
                100.0 * analysis.link_efficiency);
  }

  std::printf("\npod healthy; slice undisturbed throughout (reconfig count unchanged: "
              "%s)\n",
              fabric.pod().SliceDegraded(slice.value()) ? "NO" : "yes");
  return 0;
}
