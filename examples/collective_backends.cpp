// Collective-backend tour: inject each all-reduce algorithm — the paper's
// bidirectional ICI ring, a double-binary-tree, and SwitchML-style
// in-network aggregation — into the LLM performance model and the multipod
// trainer, and watch what moves. The optimum shape stays put (the compute
// mismatch penalty pins it); the communication share and the DCN scaling
// behavior change. Also shows the per-backend telemetry a fleet would
// scrape.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/table.h"
#include "sim/collective_backend.h"
#include "sim/llm_model.h"
#include "sim/multipod.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"

using namespace lightwave;
using common::Table;

int main() {
  const sim::CollectiveBackendKind kinds[] = {
      sim::CollectiveBackendKind::kRing,
      sim::CollectiveBackendKind::kTree,
      sim::CollectiveBackendKind::kInNetwork,
  };

  // 1) The same all-reduce under each algorithm: 64 MB over 32 members.
  std::printf("=== one all-reduce, three algorithms (64 MB, 32 members) ===\n");
  Table costs({"backend", "time us", "bandwidth us", "latency us"});
  const sim::CollectiveLinkProfile link{400.0, 0.5};
  for (const auto kind : kinds) {
    const auto backend = sim::MakeCollectiveBackend(kind);
    const auto cost = backend->AllReduceCost(32, 64e6, link);
    costs.AddRow({backend->name(), Table::Num(cost.time_us, 1),
                  Table::Num(cost.bandwidth_term_us, 1),
                  Table::Num(cost.latency_term_us, 1)});
  }
  std::printf("%s", costs.Render().c_str());
  std::printf("(ring: best bandwidth, linear latency; tree: log latency for 2x\n"
              "bytes; in-network: member-count independent)\n\n");

  // 2) Inject into the LLM model: where does the Table 2 optimum move?
  std::printf("=== LLM1 under each backend ===\n");
  telemetry::Hub hub;
  Table sweep({"backend", "best shape", "step ms", "MP comm ms"});
  const std::vector<std::shared_ptr<sim::CollectiveBackend>> backends = {
      std::make_shared<sim::RingBackend>(),
      std::make_shared<sim::TreeBackend>(),
      std::make_shared<sim::InNetworkBackend>(),
  };
  for (const auto& backend : backends) {
    backend->AttachTelemetry(&hub);
    sim::LlmCalibration cal;
    cal.collective_backend = backend;
    const sim::LlmPerfModel model(cal);
    const auto best = model.RankShapes(sim::Llm1(), 64).front();
    sweep.AddRow({backend->name(), best.shape.ToString(),
                  Table::Num(best.breakdown.total_us / 1e3, 1),
                  Table::Num(best.breakdown.mp_comm_us / 1e3, 1)});
  }
  std::printf("%s", sweep.Render().c_str());
  std::printf("(same optimum every time: the shape is pinned by compute mismatch,\n"
              "not by the collective algorithm — the Table 2 result is robust)\n\n");

  // 3) Cross-pod gradient all-reduce: in-network aggregation at DCN scale
  // needs a pool sized for the bandwidth-delay product.
  std::printf("=== multipod DCN all-reduce, 8 pods ===\n");
  sim::MultipodTrainer trainer;
  sim::InNetworkConfig pool;
  pool.pool_slots = 2048;
  pool.slot_bytes = 1 << 20;
  for (const auto kind : kinds) {
    sim::MultipodConfig config;
    config.pods = 8;
    config.dcn_backend = sim::MakeCollectiveBackend(kind, pool);
    const auto step = trainer.StepTime(sim::Llm1(), config);
    std::printf("  %-9s DCN all-reduce %.1f ms (exposed %.1f ms)\n",
                sim::ToString(kind), step.dcn_allreduce_us / 1e3,
                step.dcn_exposed_us / 1e3);
  }
  std::printf("\n");

  // 4) What the fleet scrapes: per-backend call counts and time
  // distributions from the sweep above.
  std::printf("=== telemetry (Prometheus exposition, collective series) ===\n");
  const std::string page = telemetry::ToPrometheus(hub.metrics());
  for (std::size_t pos = 0; pos < page.size();) {
    const std::size_t eol = page.find('\n', pos);
    const std::string line = page.substr(pos, eol - pos);
    if (line.find("lightwave_sim_collective") != std::string::npos) {
      std::printf("%s\n", line.c_str());
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return 0;
}
