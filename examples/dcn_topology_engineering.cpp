// Spine-free DCN topology engineering (§2.1): size inter-block trunks to a
// forecast traffic matrix, lower them to per-OCS matchings, push the
// cross-connects to Palomar switches over the control plane, measure flow
// performance, then adapt to a demand shift with an incremental
// reconfiguration that leaves stable trunks undisturbed.
#include <cstdio>
#include <map>
#include <memory>

#include "core/topology_engineer.h"
#include "ctrl/controller.h"
#include "ocs/palomar.h"
#include "sim/dcn_flow.h"
#include "sim/traffic.h"

using namespace lightwave;

int main() {
  const int blocks = 16;       // aggregation blocks
  const int ocs_count = 32;    // one duplex port per block per OCS
  const double trunk_gbps = 400.0;

  // Long-lived skewed demand: six service-to-service elephants over a
  // uniform background.
  common::Rng rng(7);
  auto demand = sim::DisjointHotspotTraffic(blocks, blocks * 400.0, 6, 0.5, rng);
  std::printf("forecast demand: %.0f Gb/s total, skew %.1fx\n", demand.Total(),
              demand.SkewRatio());

  // 1) Engineer the topology.
  core::TopologyEngineer engineer(blocks, ocs_count, trunk_gbps);
  engineer.Engineer(demand);
  std::printf("trunk allocation: %d links placed across %d OCS matchings (%d dropped)\n",
              engineer.decomposition().placed_links, ocs_count,
              engineer.decomposition().dropped_links);

  // 2) Drive real switches through the control plane (20% message loss; the
  // controller's retries cover it).
  std::vector<std::unique_ptr<ocs::PalomarSwitch>> switches;
  std::vector<std::unique_ptr<ctrl::OcsAgent>> agents;
  ctrl::MessageBus bus(8);
  bus.SetDropProbability(0.2);
  ctrl::FabricController controller(bus, /*max_retries=*/25);
  for (int i = 0; i < ocs_count; ++i) {
    switches.push_back(std::make_unique<ocs::PalomarSwitch>(100 + i));
    agents.push_back(std::make_unique<ctrl::OcsAgent>(*switches.back()));
    controller.Register(i, agents.back().get());
  }
  auto to_targets = [&](const core::MatchingDecomposition& d) {
    std::map<int, std::map<int, int>> targets;
    for (int i = 0; i < ocs_count; ++i) {
      for (const auto& [a, b] : d.per_ocs[static_cast<std::size_t>(i)]) {
        targets[i][a] = b;  // trunk = the bidirectional pair of
        targets[i][b] = a;  // cross-connects a->b and b->a
      }
    }
    return targets;
  };
  auto result = controller.ApplyTopology(to_targets(engineer.decomposition()));
  std::printf("control plane: applied=%s retries=%d\n", result.ok ? "ok" : "FAILED",
              result.retries_used);

  // 3) Performance vs the uniform mesh.
  const auto uniform = sim::DcnTopology::UniformMesh(blocks, ocs_count * trunk_gbps);
  const auto engineered = engineer.CurrentTopology();
  const double a_u = sim::MaxConcurrentFlowScale(uniform, demand);
  const double a_e = sim::MaxConcurrentFlowScale(engineered, demand);
  std::printf("throughput scale: uniform %.2f vs engineered %.2f (+%.0f%%)\n", a_u, a_e,
              100.0 * (a_e / a_u - 1.0));

  // 4) The hotspots move (service churn); re-engineer incrementally.
  const auto shifted = sim::RotateHotspots(demand, 3);
  const auto plan = engineer.Reengineer(shifted);
  std::printf("demand shift: +%d -%d links, %d trunks undisturbed\n", plan.links_added,
              plan.links_removed, plan.links_unchanged);
  result = controller.ApplyTopology(to_targets(engineer.decomposition()));
  std::printf("control plane: re-applied=%s\n", result.ok ? "ok" : "FAILED");

  // Telemetry: each switch reports how it was exercised.
  std::uint64_t reconfigs = 0;
  for (const auto& [id, t] : controller.CollectTelemetry().replies) {
    reconfigs += t.reconfigurations;
  }
  std::printf("fleet telemetry: %llu reconfiguration transactions executed\n",
              static_cast<unsigned long long>(reconfigs));
  return 0;
}
