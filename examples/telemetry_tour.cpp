// Telemetry tour: attach a telemetry hub to a full fabric stack, drive slice
// churn, a cube-failure repair, and a link-quality survey, run a short
// instrumented training simulation, then print the Prometheus and JSON
// exports. Everything is keyed by the simulation clock and fixed seeds, so
// repeated runs print byte-identical output.
#include <cstdio>

#include "core/fabric_manager.h"
#include "optics/transceiver.h"
#include "sim/training_run.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"

using namespace lightwave;

int main() {
  telemetry::Hub hub;

  // One hub wires through every layer: scheduler, control bus, fabric
  // controller, per-OCS agents, and the Palomar switches themselves.
  core::FabricManagerConfig config;
  config.seed = 42;
  config.control_drop_probability = 0.02;  // management-net loss -> retries
  core::FabricManager fabric(config);
  fabric.AttachTelemetry(&hub);

  // Slice churn: every CreateSlice is a traced reconfiguration transaction
  // fanned out across the OCSes.
  auto slice = fabric.CreateSlice(tpu::SliceShape{2, 2, 2});
  if (!slice.ok()) {
    std::printf("slice creation failed: %s\n", slice.error().message.c_str());
    return 1;
  }
  auto scratch = fabric.CreateSlice(tpu::SliceShape{1, 2, 2});
  if (scratch.ok()) (void)fabric.DestroySlice(scratch.value());

  // Break a cube under the slice; the repair (spare swap + OCS reprogram)
  // lands as a traced span with the failure counter alongside.
  (void)fabric.HandleCubeFailure(0);

  // Pod-wide optical survey: fills the Fig. 13 margin/BER/loss histograms.
  const auto reports = fabric.SurveyLinkQuality(optics::Cwdm4Bidi());
  std::printf("surveyed %zu optical paths\n", reports.size());

  // A control-plane sweep over every OCS agent; this is real wire-protocol
  // traffic, so the bus frame counters light up.
  const auto sweep = fabric.CollectTelemetry();
  std::printf("control-plane sweep reached %zu OCSes (%zu unreachable)\n",
              sweep.replies.size(), sweep.failed.size());

  // A ten-day training run recording step/goodput series into the same hub,
  // timestamped by the simulation clock (hours), never wall-clock.
  sim::TrainingRunConfig run;
  run.shape = tpu::SliceShape{2, 2, 2};
  run.pod_cubes = 16;
  run.cube_mtbf_hours = 300.0;
  run.run_hours = 24.0 * 10.0;
  run.seed = 7;
  run.hub = &hub;
  const auto result = sim::SimulateTrainingRun(run);
  std::printf("training: %llu steps, %d failures, %d cube swaps, goodput %.3f\n",
              static_cast<unsigned long long>(result.steps_completed), result.failures,
              result.cube_swaps, result.goodput);

  std::printf("\n===== Prometheus exposition =====\n%s",
              telemetry::ToPrometheus(hub.metrics()).c_str());
  std::printf("\n===== JSON export =====\n%s\n", telemetry::ToJson(hub).c_str());
  std::printf("\n%zu spans recorded, %zu still open\n", hub.tracer().span_count(),
              hub.tracer().open_count());
  return 0;
}
