# Empty dependencies file for bench_fig2_multipod.
# This may be replaced when dependencies are built.
