file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_multipod.dir/fig2_multipod.cpp.o"
  "CMakeFiles/bench_fig2_multipod.dir/fig2_multipod.cpp.o.d"
  "bench_fig2_multipod"
  "bench_fig2_multipod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_multipod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
