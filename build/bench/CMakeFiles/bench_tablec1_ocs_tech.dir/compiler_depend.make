# Empty compiler generated dependencies file for bench_tablec1_ocs_tech.
# This may be replaced when dependencies are built.
