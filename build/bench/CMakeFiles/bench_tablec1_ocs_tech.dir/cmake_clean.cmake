file(REMOVE_RECURSE
  "CMakeFiles/bench_tablec1_ocs_tech.dir/tablec1_ocs_tech.cpp.o"
  "CMakeFiles/bench_tablec1_ocs_tech.dir/tablec1_ocs_tech.cpp.o.d"
  "bench_tablec1_ocs_tech"
  "bench_tablec1_ocs_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tablec1_ocs_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
