file(REMOVE_RECURSE
  "CMakeFiles/bench_training_availability.dir/training_availability.cpp.o"
  "CMakeFiles/bench_training_availability.dir/training_availability.cpp.o.d"
  "bench_training_availability"
  "bench_training_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
