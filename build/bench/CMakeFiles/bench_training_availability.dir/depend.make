# Empty dependencies file for bench_training_availability.
# This may be replaced when dependencies are built.
