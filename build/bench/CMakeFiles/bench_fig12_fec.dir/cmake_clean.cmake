file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fec.dir/fig12_fec.cpp.o"
  "CMakeFiles/bench_fig12_fec.dir/fig12_fec.cpp.o.d"
  "bench_fig12_fec"
  "bench_fig12_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
