file(REMOVE_RECURSE
  "CMakeFiles/bench_dcn_lifecycle.dir/dcn_lifecycle.cpp.o"
  "CMakeFiles/bench_dcn_lifecycle.dir/dcn_lifecycle.cpp.o.d"
  "bench_dcn_lifecycle"
  "bench_dcn_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dcn_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
