# Empty compiler generated dependencies file for bench_dcn_lifecycle.
# This may be replaced when dependencies are built.
