file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pod_ber.dir/fig13_pod_ber.cpp.o"
  "CMakeFiles/bench_fig13_pod_ber.dir/fig13_pod_ber.cpp.o.d"
  "bench_fig13_pod_ber"
  "bench_fig13_pod_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pod_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
