# Empty dependencies file for bench_fig13_pod_ber.
# This may be replaced when dependencies are built.
