file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_efficiency.dir/sched_efficiency.cpp.o"
  "CMakeFiles/bench_sched_efficiency.dir/sched_efficiency.cpp.o.d"
  "bench_sched_efficiency"
  "bench_sched_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
