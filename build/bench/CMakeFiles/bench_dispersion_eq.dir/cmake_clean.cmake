file(REMOVE_RECURSE
  "CMakeFiles/bench_dispersion_eq.dir/dispersion_eq.cpp.o"
  "CMakeFiles/bench_dispersion_eq.dir/dispersion_eq.cpp.o.d"
  "bench_dispersion_eq"
  "bench_dispersion_eq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dispersion_eq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
