# Empty compiler generated dependencies file for bench_dispersion_eq.
# This may be replaced when dependencies are built.
