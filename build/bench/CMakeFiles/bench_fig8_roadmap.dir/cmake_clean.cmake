file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_roadmap.dir/fig8_roadmap.cpp.o"
  "CMakeFiles/bench_fig8_roadmap.dir/fig8_roadmap.cpp.o.d"
  "bench_fig8_roadmap"
  "bench_fig8_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
