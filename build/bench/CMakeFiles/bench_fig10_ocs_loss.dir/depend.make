# Empty dependencies file for bench_fig10_ocs_loss.
# This may be replaced when dependencies are built.
