file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ocs_loss.dir/fig10_ocs_loss.cpp.o"
  "CMakeFiles/bench_fig10_ocs_loss.dir/fig10_ocs_loss.cpp.o.d"
  "bench_fig10_ocs_loss"
  "bench_fig10_ocs_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ocs_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
