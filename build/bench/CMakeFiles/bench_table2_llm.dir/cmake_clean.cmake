file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_llm.dir/table2_llm.cpp.o"
  "CMakeFiles/bench_table2_llm.dir/table2_llm.cpp.o.d"
  "bench_table2_llm"
  "bench_table2_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
