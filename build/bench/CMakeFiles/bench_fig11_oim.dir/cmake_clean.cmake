file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_oim.dir/fig11_oim.cpp.o"
  "CMakeFiles/bench_fig11_oim.dir/fig11_oim.cpp.o.d"
  "bench_fig11_oim"
  "bench_fig11_oim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_oim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
