# Empty dependencies file for bench_fig11_oim.
# This may be replaced when dependencies are built.
