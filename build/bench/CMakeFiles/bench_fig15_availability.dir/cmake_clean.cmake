file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_availability.dir/fig15_availability.cpp.o"
  "CMakeFiles/bench_fig15_availability.dir/fig15_availability.cpp.o.d"
  "bench_fig15_availability"
  "bench_fig15_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
