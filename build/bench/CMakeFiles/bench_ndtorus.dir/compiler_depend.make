# Empty compiler generated dependencies file for bench_ndtorus.
# This may be replaced when dependencies are built.
