file(REMOVE_RECURSE
  "CMakeFiles/bench_ndtorus.dir/ndtorus.cpp.o"
  "CMakeFiles/bench_ndtorus.dir/ndtorus.cpp.o.d"
  "bench_ndtorus"
  "bench_ndtorus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ndtorus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
