# Empty compiler generated dependencies file for bench_dcn_spinefree.
# This may be replaced when dependencies are built.
