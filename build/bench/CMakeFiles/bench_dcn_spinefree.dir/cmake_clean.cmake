file(REMOVE_RECURSE
  "CMakeFiles/bench_dcn_spinefree.dir/dcn_spinefree.cpp.o"
  "CMakeFiles/bench_dcn_spinefree.dir/dcn_spinefree.cpp.o.d"
  "bench_dcn_spinefree"
  "bench_dcn_spinefree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dcn_spinefree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
