file(REMOVE_RECURSE
  "CMakeFiles/bench_torus_traffic.dir/torus_traffic.cpp.o"
  "CMakeFiles/bench_torus_traffic.dir/torus_traffic.cpp.o.d"
  "bench_torus_traffic"
  "bench_torus_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_torus_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
