# Empty compiler generated dependencies file for bench_torus_traffic.
# This may be replaced when dependencies are built.
