# Empty dependencies file for bench_reconfig_ablation.
# This may be replaced when dependencies are built.
