file(REMOVE_RECURSE
  "CMakeFiles/bench_reconfig_ablation.dir/reconfig_ablation.cpp.o"
  "CMakeFiles/bench_reconfig_ablation.dir/reconfig_ablation.cpp.o.d"
  "bench_reconfig_ablation"
  "bench_reconfig_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfig_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
