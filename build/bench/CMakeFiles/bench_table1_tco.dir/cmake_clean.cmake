file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tco.dir/table1_tco.cpp.o"
  "CMakeFiles/bench_table1_tco.dir/table1_tco.cpp.o.d"
  "bench_table1_tco"
  "bench_table1_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
