# Empty dependencies file for bench_table1_tco.
# This may be replaced when dependencies are built.
