file(REMOVE_RECURSE
  "CMakeFiles/multipod_training.dir/multipod_training.cpp.o"
  "CMakeFiles/multipod_training.dir/multipod_training.cpp.o.d"
  "multipod_training"
  "multipod_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipod_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
