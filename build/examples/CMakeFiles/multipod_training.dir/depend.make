# Empty dependencies file for multipod_training.
# This may be replaced when dependencies are built.
