# Empty dependencies file for dcn_topology_engineering.
# This may be replaced when dependencies are built.
