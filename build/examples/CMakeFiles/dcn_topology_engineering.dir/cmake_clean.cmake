file(REMOVE_RECURSE
  "CMakeFiles/dcn_topology_engineering.dir/dcn_topology_engineering.cpp.o"
  "CMakeFiles/dcn_topology_engineering.dir/dcn_topology_engineering.cpp.o.d"
  "dcn_topology_engineering"
  "dcn_topology_engineering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_topology_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
