file(REMOVE_RECURSE
  "CMakeFiles/llm_training.dir/llm_training.cpp.o"
  "CMakeFiles/llm_training.dir/llm_training.cpp.o.d"
  "llm_training"
  "llm_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
