# Empty dependencies file for llm_training.
# This may be replaced when dependencies are built.
