file(REMOVE_RECURSE
  "CMakeFiles/pod_operations.dir/pod_operations.cpp.o"
  "CMakeFiles/pod_operations.dir/pod_operations.cpp.o.d"
  "pod_operations"
  "pod_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pod_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
