# Empty compiler generated dependencies file for pod_operations.
# This may be replaced when dependencies are built.
