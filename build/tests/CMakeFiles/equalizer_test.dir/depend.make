# Empty dependencies file for equalizer_test.
# This may be replaced when dependencies are built.
