file(REMOVE_RECURSE
  "CMakeFiles/equalizer_test.dir/equalizer_test.cpp.o"
  "CMakeFiles/equalizer_test.dir/equalizer_test.cpp.o.d"
  "equalizer_test"
  "equalizer_test.pdb"
  "equalizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
