# Empty compiler generated dependencies file for ocs_test.
# This may be replaced when dependencies are built.
