# Empty dependencies file for torus_traffic_test.
# This may be replaced when dependencies are built.
