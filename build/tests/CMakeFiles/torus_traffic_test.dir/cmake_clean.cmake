file(REMOVE_RECURSE
  "CMakeFiles/torus_traffic_test.dir/torus_traffic_test.cpp.o"
  "CMakeFiles/torus_traffic_test.dir/torus_traffic_test.cpp.o.d"
  "torus_traffic_test"
  "torus_traffic_test.pdb"
  "torus_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torus_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
