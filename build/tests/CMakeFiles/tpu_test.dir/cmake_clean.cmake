file(REMOVE_RECURSE
  "CMakeFiles/tpu_test.dir/tpu_test.cpp.o"
  "CMakeFiles/tpu_test.dir/tpu_test.cpp.o.d"
  "tpu_test"
  "tpu_test.pdb"
  "tpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
