# Empty compiler generated dependencies file for linkinit_test.
# This may be replaced when dependencies are built.
