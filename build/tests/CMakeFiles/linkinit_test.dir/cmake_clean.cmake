file(REMOVE_RECURSE
  "CMakeFiles/linkinit_test.dir/linkinit_test.cpp.o"
  "CMakeFiles/linkinit_test.dir/linkinit_test.cpp.o.d"
  "linkinit_test"
  "linkinit_test.pdb"
  "linkinit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkinit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
