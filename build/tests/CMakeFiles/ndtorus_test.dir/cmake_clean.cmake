file(REMOVE_RECURSE
  "CMakeFiles/ndtorus_test.dir/ndtorus_test.cpp.o"
  "CMakeFiles/ndtorus_test.dir/ndtorus_test.cpp.o.d"
  "ndtorus_test"
  "ndtorus_test.pdb"
  "ndtorus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndtorus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
