# Empty compiler generated dependencies file for ndtorus_test.
# This may be replaced when dependencies are built.
