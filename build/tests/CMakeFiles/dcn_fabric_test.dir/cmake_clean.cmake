file(REMOVE_RECURSE
  "CMakeFiles/dcn_fabric_test.dir/dcn_fabric_test.cpp.o"
  "CMakeFiles/dcn_fabric_test.dir/dcn_fabric_test.cpp.o.d"
  "dcn_fabric_test"
  "dcn_fabric_test.pdb"
  "dcn_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
