# Empty compiler generated dependencies file for dcn_fabric_test.
# This may be replaced when dependencies are built.
