
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dcn_fabric_test.cpp" "tests/CMakeFiles/dcn_fabric_test.dir/dcn_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/dcn_fabric_test.dir/dcn_fabric_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/lw_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/tpu/CMakeFiles/lw_tpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ocs/CMakeFiles/lw_ocs.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/lw_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/lw_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/lw_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
