# Empty dependencies file for polarization_test.
# This may be replaced when dependencies are built.
