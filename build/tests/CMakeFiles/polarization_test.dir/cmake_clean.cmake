file(REMOVE_RECURSE
  "CMakeFiles/polarization_test.dir/polarization_test.cpp.o"
  "CMakeFiles/polarization_test.dir/polarization_test.cpp.o.d"
  "polarization_test"
  "polarization_test.pdb"
  "polarization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polarization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
