# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/optics_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/fec_test[1]_include.cmake")
include("/root/repo/build/tests/ocs_test[1]_include.cmake")
include("/root/repo/build/tests/tpu_test[1]_include.cmake")
include("/root/repo/build/tests/ctrl_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/ndtorus_test[1]_include.cmake")
include("/root/repo/build/tests/scaleout_test[1]_include.cmake")
include("/root/repo/build/tests/linkinit_test[1]_include.cmake")
include("/root/repo/build/tests/equalizer_test[1]_include.cmake")
include("/root/repo/build/tests/repair_test[1]_include.cmake")
include("/root/repo/build/tests/dcn_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/training_run_test[1]_include.cmake")
include("/root/repo/build/tests/camera_test[1]_include.cmake")
include("/root/repo/build/tests/torus_traffic_test[1]_include.cmake")
include("/root/repo/build/tests/polarization_test[1]_include.cmake")
