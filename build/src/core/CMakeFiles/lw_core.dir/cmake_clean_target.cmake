file(REMOVE_RECURSE
  "liblw_core.a"
)
