# Empty dependencies file for lw_core.
# This may be replaced when dependencies are built.
