
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dcn_fabric.cpp" "src/core/CMakeFiles/lw_core.dir/dcn_fabric.cpp.o" "gcc" "src/core/CMakeFiles/lw_core.dir/dcn_fabric.cpp.o.d"
  "/root/repo/src/core/fabric_manager.cpp" "src/core/CMakeFiles/lw_core.dir/fabric_manager.cpp.o" "gcc" "src/core/CMakeFiles/lw_core.dir/fabric_manager.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/lw_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/lw_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/tco.cpp" "src/core/CMakeFiles/lw_core.dir/tco.cpp.o" "gcc" "src/core/CMakeFiles/lw_core.dir/tco.cpp.o.d"
  "/root/repo/src/core/topology_engineer.cpp" "src/core/CMakeFiles/lw_core.dir/topology_engineer.cpp.o" "gcc" "src/core/CMakeFiles/lw_core.dir/topology_engineer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ocs/CMakeFiles/lw_ocs.dir/DependInfo.cmake"
  "/root/repo/build/src/tpu/CMakeFiles/lw_tpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/lw_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/lw_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/lw_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
