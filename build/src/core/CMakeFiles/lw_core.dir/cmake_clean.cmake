file(REMOVE_RECURSE
  "CMakeFiles/lw_core.dir/dcn_fabric.cpp.o"
  "CMakeFiles/lw_core.dir/dcn_fabric.cpp.o.d"
  "CMakeFiles/lw_core.dir/fabric_manager.cpp.o"
  "CMakeFiles/lw_core.dir/fabric_manager.cpp.o.d"
  "CMakeFiles/lw_core.dir/scheduler.cpp.o"
  "CMakeFiles/lw_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/lw_core.dir/tco.cpp.o"
  "CMakeFiles/lw_core.dir/tco.cpp.o.d"
  "CMakeFiles/lw_core.dir/topology_engineer.cpp.o"
  "CMakeFiles/lw_core.dir/topology_engineer.cpp.o.d"
  "liblw_core.a"
  "liblw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
