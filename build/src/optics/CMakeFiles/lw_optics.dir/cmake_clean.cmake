file(REMOVE_RECURSE
  "CMakeFiles/lw_optics.dir/circulator.cpp.o"
  "CMakeFiles/lw_optics.dir/circulator.cpp.o.d"
  "CMakeFiles/lw_optics.dir/fiber.cpp.o"
  "CMakeFiles/lw_optics.dir/fiber.cpp.o.d"
  "CMakeFiles/lw_optics.dir/link_budget.cpp.o"
  "CMakeFiles/lw_optics.dir/link_budget.cpp.o.d"
  "CMakeFiles/lw_optics.dir/mux.cpp.o"
  "CMakeFiles/lw_optics.dir/mux.cpp.o.d"
  "CMakeFiles/lw_optics.dir/polarization.cpp.o"
  "CMakeFiles/lw_optics.dir/polarization.cpp.o.d"
  "CMakeFiles/lw_optics.dir/transceiver.cpp.o"
  "CMakeFiles/lw_optics.dir/transceiver.cpp.o.d"
  "CMakeFiles/lw_optics.dir/wdm.cpp.o"
  "CMakeFiles/lw_optics.dir/wdm.cpp.o.d"
  "liblw_optics.a"
  "liblw_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
