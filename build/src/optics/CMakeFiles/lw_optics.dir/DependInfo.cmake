
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optics/circulator.cpp" "src/optics/CMakeFiles/lw_optics.dir/circulator.cpp.o" "gcc" "src/optics/CMakeFiles/lw_optics.dir/circulator.cpp.o.d"
  "/root/repo/src/optics/fiber.cpp" "src/optics/CMakeFiles/lw_optics.dir/fiber.cpp.o" "gcc" "src/optics/CMakeFiles/lw_optics.dir/fiber.cpp.o.d"
  "/root/repo/src/optics/link_budget.cpp" "src/optics/CMakeFiles/lw_optics.dir/link_budget.cpp.o" "gcc" "src/optics/CMakeFiles/lw_optics.dir/link_budget.cpp.o.d"
  "/root/repo/src/optics/mux.cpp" "src/optics/CMakeFiles/lw_optics.dir/mux.cpp.o" "gcc" "src/optics/CMakeFiles/lw_optics.dir/mux.cpp.o.d"
  "/root/repo/src/optics/polarization.cpp" "src/optics/CMakeFiles/lw_optics.dir/polarization.cpp.o" "gcc" "src/optics/CMakeFiles/lw_optics.dir/polarization.cpp.o.d"
  "/root/repo/src/optics/transceiver.cpp" "src/optics/CMakeFiles/lw_optics.dir/transceiver.cpp.o" "gcc" "src/optics/CMakeFiles/lw_optics.dir/transceiver.cpp.o.d"
  "/root/repo/src/optics/wdm.cpp" "src/optics/CMakeFiles/lw_optics.dir/wdm.cpp.o" "gcc" "src/optics/CMakeFiles/lw_optics.dir/wdm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
