file(REMOVE_RECURSE
  "liblw_optics.a"
)
