# Empty dependencies file for lw_optics.
# This may be replaced when dependencies are built.
