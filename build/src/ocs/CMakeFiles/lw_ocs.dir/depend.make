# Empty dependencies file for lw_ocs.
# This may be replaced when dependencies are built.
