
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocs/alignment.cpp" "src/ocs/CMakeFiles/lw_ocs.dir/alignment.cpp.o" "gcc" "src/ocs/CMakeFiles/lw_ocs.dir/alignment.cpp.o.d"
  "/root/repo/src/ocs/camera.cpp" "src/ocs/CMakeFiles/lw_ocs.dir/camera.cpp.o" "gcc" "src/ocs/CMakeFiles/lw_ocs.dir/camera.cpp.o.d"
  "/root/repo/src/ocs/chassis.cpp" "src/ocs/CMakeFiles/lw_ocs.dir/chassis.cpp.o" "gcc" "src/ocs/CMakeFiles/lw_ocs.dir/chassis.cpp.o.d"
  "/root/repo/src/ocs/collimator.cpp" "src/ocs/CMakeFiles/lw_ocs.dir/collimator.cpp.o" "gcc" "src/ocs/CMakeFiles/lw_ocs.dir/collimator.cpp.o.d"
  "/root/repo/src/ocs/mems.cpp" "src/ocs/CMakeFiles/lw_ocs.dir/mems.cpp.o" "gcc" "src/ocs/CMakeFiles/lw_ocs.dir/mems.cpp.o.d"
  "/root/repo/src/ocs/optical_core.cpp" "src/ocs/CMakeFiles/lw_ocs.dir/optical_core.cpp.o" "gcc" "src/ocs/CMakeFiles/lw_ocs.dir/optical_core.cpp.o.d"
  "/root/repo/src/ocs/palomar.cpp" "src/ocs/CMakeFiles/lw_ocs.dir/palomar.cpp.o" "gcc" "src/ocs/CMakeFiles/lw_ocs.dir/palomar.cpp.o.d"
  "/root/repo/src/ocs/technology.cpp" "src/ocs/CMakeFiles/lw_ocs.dir/technology.cpp.o" "gcc" "src/ocs/CMakeFiles/lw_ocs.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/lw_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
