file(REMOVE_RECURSE
  "CMakeFiles/lw_ocs.dir/alignment.cpp.o"
  "CMakeFiles/lw_ocs.dir/alignment.cpp.o.d"
  "CMakeFiles/lw_ocs.dir/camera.cpp.o"
  "CMakeFiles/lw_ocs.dir/camera.cpp.o.d"
  "CMakeFiles/lw_ocs.dir/chassis.cpp.o"
  "CMakeFiles/lw_ocs.dir/chassis.cpp.o.d"
  "CMakeFiles/lw_ocs.dir/collimator.cpp.o"
  "CMakeFiles/lw_ocs.dir/collimator.cpp.o.d"
  "CMakeFiles/lw_ocs.dir/mems.cpp.o"
  "CMakeFiles/lw_ocs.dir/mems.cpp.o.d"
  "CMakeFiles/lw_ocs.dir/optical_core.cpp.o"
  "CMakeFiles/lw_ocs.dir/optical_core.cpp.o.d"
  "CMakeFiles/lw_ocs.dir/palomar.cpp.o"
  "CMakeFiles/lw_ocs.dir/palomar.cpp.o.d"
  "CMakeFiles/lw_ocs.dir/technology.cpp.o"
  "CMakeFiles/lw_ocs.dir/technology.cpp.o.d"
  "liblw_ocs.a"
  "liblw_ocs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_ocs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
