file(REMOVE_RECURSE
  "liblw_ocs.a"
)
