file(REMOVE_RECURSE
  "liblw_tpu.a"
)
