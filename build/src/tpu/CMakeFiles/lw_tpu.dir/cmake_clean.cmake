file(REMOVE_RECURSE
  "CMakeFiles/lw_tpu.dir/cube.cpp.o"
  "CMakeFiles/lw_tpu.dir/cube.cpp.o.d"
  "CMakeFiles/lw_tpu.dir/ndtorus.cpp.o"
  "CMakeFiles/lw_tpu.dir/ndtorus.cpp.o.d"
  "CMakeFiles/lw_tpu.dir/routing.cpp.o"
  "CMakeFiles/lw_tpu.dir/routing.cpp.o.d"
  "CMakeFiles/lw_tpu.dir/slice.cpp.o"
  "CMakeFiles/lw_tpu.dir/slice.cpp.o.d"
  "CMakeFiles/lw_tpu.dir/superpod.cpp.o"
  "CMakeFiles/lw_tpu.dir/superpod.cpp.o.d"
  "CMakeFiles/lw_tpu.dir/wiring.cpp.o"
  "CMakeFiles/lw_tpu.dir/wiring.cpp.o.d"
  "liblw_tpu.a"
  "liblw_tpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_tpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
