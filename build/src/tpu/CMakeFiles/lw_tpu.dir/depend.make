# Empty dependencies file for lw_tpu.
# This may be replaced when dependencies are built.
