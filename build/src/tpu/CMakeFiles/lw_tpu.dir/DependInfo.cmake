
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpu/cube.cpp" "src/tpu/CMakeFiles/lw_tpu.dir/cube.cpp.o" "gcc" "src/tpu/CMakeFiles/lw_tpu.dir/cube.cpp.o.d"
  "/root/repo/src/tpu/ndtorus.cpp" "src/tpu/CMakeFiles/lw_tpu.dir/ndtorus.cpp.o" "gcc" "src/tpu/CMakeFiles/lw_tpu.dir/ndtorus.cpp.o.d"
  "/root/repo/src/tpu/routing.cpp" "src/tpu/CMakeFiles/lw_tpu.dir/routing.cpp.o" "gcc" "src/tpu/CMakeFiles/lw_tpu.dir/routing.cpp.o.d"
  "/root/repo/src/tpu/slice.cpp" "src/tpu/CMakeFiles/lw_tpu.dir/slice.cpp.o" "gcc" "src/tpu/CMakeFiles/lw_tpu.dir/slice.cpp.o.d"
  "/root/repo/src/tpu/superpod.cpp" "src/tpu/CMakeFiles/lw_tpu.dir/superpod.cpp.o" "gcc" "src/tpu/CMakeFiles/lw_tpu.dir/superpod.cpp.o.d"
  "/root/repo/src/tpu/wiring.cpp" "src/tpu/CMakeFiles/lw_tpu.dir/wiring.cpp.o" "gcc" "src/tpu/CMakeFiles/lw_tpu.dir/wiring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ocs/CMakeFiles/lw_ocs.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/lw_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
