# Empty compiler generated dependencies file for lw_phy.
# This may be replaced when dependencies are built.
