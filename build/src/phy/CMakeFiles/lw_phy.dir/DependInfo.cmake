
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/ber_model.cpp" "src/phy/CMakeFiles/lw_phy.dir/ber_model.cpp.o" "gcc" "src/phy/CMakeFiles/lw_phy.dir/ber_model.cpp.o.d"
  "/root/repo/src/phy/equalizer.cpp" "src/phy/CMakeFiles/lw_phy.dir/equalizer.cpp.o" "gcc" "src/phy/CMakeFiles/lw_phy.dir/equalizer.cpp.o.d"
  "/root/repo/src/phy/monte_carlo.cpp" "src/phy/CMakeFiles/lw_phy.dir/monte_carlo.cpp.o" "gcc" "src/phy/CMakeFiles/lw_phy.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/phy/oim.cpp" "src/phy/CMakeFiles/lw_phy.dir/oim.cpp.o" "gcc" "src/phy/CMakeFiles/lw_phy.dir/oim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/lw_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
