file(REMOVE_RECURSE
  "liblw_phy.a"
)
