file(REMOVE_RECURSE
  "CMakeFiles/lw_phy.dir/ber_model.cpp.o"
  "CMakeFiles/lw_phy.dir/ber_model.cpp.o.d"
  "CMakeFiles/lw_phy.dir/equalizer.cpp.o"
  "CMakeFiles/lw_phy.dir/equalizer.cpp.o.d"
  "CMakeFiles/lw_phy.dir/monte_carlo.cpp.o"
  "CMakeFiles/lw_phy.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/lw_phy.dir/oim.cpp.o"
  "CMakeFiles/lw_phy.dir/oim.cpp.o.d"
  "liblw_phy.a"
  "liblw_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
