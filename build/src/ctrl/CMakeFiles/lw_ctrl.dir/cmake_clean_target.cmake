file(REMOVE_RECURSE
  "liblw_ctrl.a"
)
