
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/anomaly.cpp" "src/ctrl/CMakeFiles/lw_ctrl.dir/anomaly.cpp.o" "gcc" "src/ctrl/CMakeFiles/lw_ctrl.dir/anomaly.cpp.o.d"
  "/root/repo/src/ctrl/controller.cpp" "src/ctrl/CMakeFiles/lw_ctrl.dir/controller.cpp.o" "gcc" "src/ctrl/CMakeFiles/lw_ctrl.dir/controller.cpp.o.d"
  "/root/repo/src/ctrl/link_init.cpp" "src/ctrl/CMakeFiles/lw_ctrl.dir/link_init.cpp.o" "gcc" "src/ctrl/CMakeFiles/lw_ctrl.dir/link_init.cpp.o.d"
  "/root/repo/src/ctrl/messages.cpp" "src/ctrl/CMakeFiles/lw_ctrl.dir/messages.cpp.o" "gcc" "src/ctrl/CMakeFiles/lw_ctrl.dir/messages.cpp.o.d"
  "/root/repo/src/ctrl/wire.cpp" "src/ctrl/CMakeFiles/lw_ctrl.dir/wire.cpp.o" "gcc" "src/ctrl/CMakeFiles/lw_ctrl.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ocs/CMakeFiles/lw_ocs.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/lw_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
