file(REMOVE_RECURSE
  "CMakeFiles/lw_ctrl.dir/anomaly.cpp.o"
  "CMakeFiles/lw_ctrl.dir/anomaly.cpp.o.d"
  "CMakeFiles/lw_ctrl.dir/controller.cpp.o"
  "CMakeFiles/lw_ctrl.dir/controller.cpp.o.d"
  "CMakeFiles/lw_ctrl.dir/link_init.cpp.o"
  "CMakeFiles/lw_ctrl.dir/link_init.cpp.o.d"
  "CMakeFiles/lw_ctrl.dir/messages.cpp.o"
  "CMakeFiles/lw_ctrl.dir/messages.cpp.o.d"
  "CMakeFiles/lw_ctrl.dir/wire.cpp.o"
  "CMakeFiles/lw_ctrl.dir/wire.cpp.o.d"
  "liblw_ctrl.a"
  "liblw_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
