# Empty compiler generated dependencies file for lw_ctrl.
# This may be replaced when dependencies are built.
