file(REMOVE_RECURSE
  "liblw_sim.a"
)
