# Empty compiler generated dependencies file for lw_sim.
# This may be replaced when dependencies are built.
