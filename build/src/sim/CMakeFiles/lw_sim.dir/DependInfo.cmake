
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/availability.cpp" "src/sim/CMakeFiles/lw_sim.dir/availability.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/availability.cpp.o.d"
  "/root/repo/src/sim/collective.cpp" "src/sim/CMakeFiles/lw_sim.dir/collective.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/collective.cpp.o.d"
  "/root/repo/src/sim/dcn_flow.cpp" "src/sim/CMakeFiles/lw_sim.dir/dcn_flow.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/dcn_flow.cpp.o.d"
  "/root/repo/src/sim/event.cpp" "src/sim/CMakeFiles/lw_sim.dir/event.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/event.cpp.o.d"
  "/root/repo/src/sim/llm_model.cpp" "src/sim/CMakeFiles/lw_sim.dir/llm_model.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/llm_model.cpp.o.d"
  "/root/repo/src/sim/multipod.cpp" "src/sim/CMakeFiles/lw_sim.dir/multipod.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/multipod.cpp.o.d"
  "/root/repo/src/sim/phase_reconfig.cpp" "src/sim/CMakeFiles/lw_sim.dir/phase_reconfig.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/phase_reconfig.cpp.o.d"
  "/root/repo/src/sim/torus_traffic.cpp" "src/sim/CMakeFiles/lw_sim.dir/torus_traffic.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/torus_traffic.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/sim/CMakeFiles/lw_sim.dir/traffic.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/traffic.cpp.o.d"
  "/root/repo/src/sim/training_run.cpp" "src/sim/CMakeFiles/lw_sim.dir/training_run.cpp.o" "gcc" "src/sim/CMakeFiles/lw_sim.dir/training_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tpu/CMakeFiles/lw_tpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ocs/CMakeFiles/lw_ocs.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/lw_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
