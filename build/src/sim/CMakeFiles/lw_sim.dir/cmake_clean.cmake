file(REMOVE_RECURSE
  "CMakeFiles/lw_sim.dir/availability.cpp.o"
  "CMakeFiles/lw_sim.dir/availability.cpp.o.d"
  "CMakeFiles/lw_sim.dir/collective.cpp.o"
  "CMakeFiles/lw_sim.dir/collective.cpp.o.d"
  "CMakeFiles/lw_sim.dir/dcn_flow.cpp.o"
  "CMakeFiles/lw_sim.dir/dcn_flow.cpp.o.d"
  "CMakeFiles/lw_sim.dir/event.cpp.o"
  "CMakeFiles/lw_sim.dir/event.cpp.o.d"
  "CMakeFiles/lw_sim.dir/llm_model.cpp.o"
  "CMakeFiles/lw_sim.dir/llm_model.cpp.o.d"
  "CMakeFiles/lw_sim.dir/multipod.cpp.o"
  "CMakeFiles/lw_sim.dir/multipod.cpp.o.d"
  "CMakeFiles/lw_sim.dir/phase_reconfig.cpp.o"
  "CMakeFiles/lw_sim.dir/phase_reconfig.cpp.o.d"
  "CMakeFiles/lw_sim.dir/torus_traffic.cpp.o"
  "CMakeFiles/lw_sim.dir/torus_traffic.cpp.o.d"
  "CMakeFiles/lw_sim.dir/traffic.cpp.o"
  "CMakeFiles/lw_sim.dir/traffic.cpp.o.d"
  "CMakeFiles/lw_sim.dir/training_run.cpp.o"
  "CMakeFiles/lw_sim.dir/training_run.cpp.o.d"
  "liblw_sim.a"
  "liblw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
