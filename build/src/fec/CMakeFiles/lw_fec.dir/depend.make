# Empty dependencies file for lw_fec.
# This may be replaced when dependencies are built.
