file(REMOVE_RECURSE
  "CMakeFiles/lw_fec.dir/concatenated.cpp.o"
  "CMakeFiles/lw_fec.dir/concatenated.cpp.o.d"
  "CMakeFiles/lw_fec.dir/gf.cpp.o"
  "CMakeFiles/lw_fec.dir/gf.cpp.o.d"
  "CMakeFiles/lw_fec.dir/inner_code.cpp.o"
  "CMakeFiles/lw_fec.dir/inner_code.cpp.o.d"
  "CMakeFiles/lw_fec.dir/interleaver.cpp.o"
  "CMakeFiles/lw_fec.dir/interleaver.cpp.o.d"
  "CMakeFiles/lw_fec.dir/reed_solomon.cpp.o"
  "CMakeFiles/lw_fec.dir/reed_solomon.cpp.o.d"
  "liblw_fec.a"
  "liblw_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
