file(REMOVE_RECURSE
  "liblw_fec.a"
)
