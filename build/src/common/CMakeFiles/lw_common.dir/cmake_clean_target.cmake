file(REMOVE_RECURSE
  "liblw_common.a"
)
