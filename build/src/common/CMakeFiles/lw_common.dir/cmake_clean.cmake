file(REMOVE_RECURSE
  "CMakeFiles/lw_common.dir/histogram.cpp.o"
  "CMakeFiles/lw_common.dir/histogram.cpp.o.d"
  "CMakeFiles/lw_common.dir/math.cpp.o"
  "CMakeFiles/lw_common.dir/math.cpp.o.d"
  "CMakeFiles/lw_common.dir/rng.cpp.o"
  "CMakeFiles/lw_common.dir/rng.cpp.o.d"
  "CMakeFiles/lw_common.dir/table.cpp.o"
  "CMakeFiles/lw_common.dir/table.cpp.o.d"
  "liblw_common.a"
  "liblw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
