# Empty dependencies file for lw_common.
# This may be replaced when dependencies are built.
