// Unit tests for the TPU substrate: cube geometry and health, the
// Appendix-A wiring plan, slice shapes / topology / OCS connection sets /
// bisection math, and the superpod install/remove/failure flows.
#include <gtest/gtest.h>

#include <set>

#include "tpu/cube.h"
#include "tpu/slice.h"
#include "tpu/superpod.h"
#include "tpu/wiring.h"

namespace lightwave::tpu {
namespace {

// --- cube --------------------------------------------------------------------

TEST(CubeTest, Geometry) {
  EXPECT_EQ(kChipsPerCube, 64);
  EXPECT_EQ(kHostsPerCube, 16);
  EXPECT_EQ(kFaceLinks, 16);
  EXPECT_EQ(kOpticalLinksPerCube, 96);
}

TEST(CubeTest, CoordRoundTrip) {
  for (int i = 0; i < kChipsPerCube; ++i) {
    EXPECT_EQ(Cube::IndexOf(Cube::CoordOf(i)), i);
  }
}

TEST(CubeTest, CoordsInRange) {
  for (int i = 0; i < kChipsPerCube; ++i) {
    const auto c = Cube::CoordOf(i);
    EXPECT_GE(c.x, 0);
    EXPECT_LT(c.x, kCubeEdge);
    EXPECT_GE(c.y, 0);
    EXPECT_LT(c.y, kCubeEdge);
    EXPECT_GE(c.z, 0);
    EXPECT_LT(c.z, kCubeEdge);
  }
}

TEST(CubeTest, HostOwnsFourChips) {
  EXPECT_EQ(Cube::HostOf(0), 0);
  EXPECT_EQ(Cube::HostOf(3), 0);
  EXPECT_EQ(Cube::HostOf(4), 1);
  EXPECT_EQ(Cube::HostOf(63), 15);
}

TEST(CubeTest, HostFailureKillsItsChipsAndCube) {
  Cube cube(0);
  EXPECT_TRUE(cube.Healthy());
  cube.SetHostHealth(2, false);
  EXPECT_FALSE(cube.Healthy());
  for (int chip = 8; chip < 12; ++chip) EXPECT_FALSE(cube.chip(chip).healthy);
  EXPECT_TRUE(cube.chip(0).healthy);
  cube.Restore();
  EXPECT_TRUE(cube.Healthy());
}

TEST(CubeTest, SingleChipFailureDegradesCube) {
  Cube cube(1);
  cube.SetChipHealth(17, false);
  EXPECT_FALSE(cube.Healthy());
}

// --- wiring -------------------------------------------------------------------

TEST(Wiring, ProductionPlanCounts) {
  const WiringPlan plan;
  EXPECT_EQ(plan.cube_count(), 64);
  EXPECT_EQ(plan.ocs_count(), 48);
  EXPECT_EQ(plan.OpticalLinksPerCube(), 96);
}

TEST(Wiring, OcsIdsPartitionByDimension) {
  const WiringPlan plan;
  std::set<int> ids;
  for (Dim d : kAllDims) {
    for (int f = 0; f < plan.ocs_per_dim(); ++f) {
      const int id = plan.OcsFor(d, f);
      EXPECT_TRUE(ids.insert(id).second) << "duplicate ocs id " << id;
      EXPECT_EQ(plan.DimOfOcs(id), d);
      EXPECT_EQ(plan.FaceIndexOfOcs(id), f);
    }
  }
  EXPECT_EQ(static_cast<int>(ids.size()), plan.ocs_count());
}

TEST(Wiring, PlusAndMinusFacesShareOcsAndPortIndex) {
  // Appendix A: the +/- connections of a dimension land on the same OCS so
  // rings (including self-loop wraparound) are bijective N->S maps.
  const WiringPlan plan;
  const auto a = plan.AssignmentFor(17, Dim::kY, 5);
  EXPECT_EQ(a.ocs_id, plan.OcsFor(Dim::kY, 5));
  EXPECT_EQ(a.north_port, 17);
  EXPECT_EQ(a.south_port, 17);
}

TEST(Wiring, OcsCountPerTransceiverTechnology) {
  // §4.2.2: 96 / 48 / 24 OCSes for duplex CWDM4 / bidi CWDM4 / bidi CWDM8.
  EXPECT_EQ(OcsCountForTransceiver(false, 4), 96);
  EXPECT_EQ(OcsCountForTransceiver(true, 4), 48);
  EXPECT_EQ(OcsCountForTransceiver(true, 8), 24);
}

// --- slice shapes ----------------------------------------------------------------

TEST(Shapes, ChipDimsAreCubeTimesFour) {
  const SliceShape s{2, 4, 8};
  EXPECT_EQ(s.CubeCount(), 64);
  EXPECT_EQ(s.ChipCount(), 4096);
  EXPECT_EQ(s.ToString(), "8x16x32");
  EXPECT_EQ(s.ToCubeString(), "2x4x8");
}

TEST(Shapes, EnumerateOrderedShapesOf64) {
  const auto shapes = EnumerateShapes(64);
  // Ordered factor triples of 64 = 7 choose... verify count by direct
  // enumeration: sum over divisors a of d(64/a).
  EXPECT_EQ(shapes.size(), 28u);
  for (const auto& s : shapes) EXPECT_EQ(s.CubeCount(), 64);
}

TEST(Shapes, CanonicalShapesUnique) {
  const auto canonical = EnumerateCanonicalShapes(64);
  std::set<std::string> seen;
  for (const auto& s : canonical) {
    EXPECT_LE(s.a, s.b);
    EXPECT_LE(s.b, s.c);
    EXPECT_TRUE(seen.insert(s.ToCubeString()).second);
  }
  // 64 = 2^6: partitions of 6 into <= 3 parts -> 7 canonical shapes.
  EXPECT_EQ(canonical.size(), 7u);
}

TEST(Shapes, FullPodRangeMatchesPaper) {
  // §4.2: slice shapes for a full pod range 4x4x256 .. 16x16x16.
  const auto shapes = EnumerateCanonicalShapes(64);
  bool has_asymmetric = false, has_symmetric = false;
  for (const auto& s : shapes) {
    if (s.ToString() == "4x4x256") has_asymmetric = true;
    if (s.ToString() == "16x16x16") has_symmetric = true;
  }
  EXPECT_TRUE(has_asymmetric);
  EXPECT_TRUE(has_symmetric);
}

// --- slice topology ---------------------------------------------------------------

SliceTopology MakeSlice(SliceShape shape, int first_cube = 0) {
  std::vector<int> ids;
  for (int i = 0; i < shape.CubeCount(); ++i) ids.push_back(first_cube + i);
  auto result = SliceTopology::Create(shape, std::move(ids));
  EXPECT_TRUE(result.ok());
  return result.value();
}

TEST(Slice, CreateValidations) {
  EXPECT_FALSE(SliceTopology::Create(SliceShape{1, 1, 2}, {0}).ok());       // count
  EXPECT_FALSE(SliceTopology::Create(SliceShape{1, 1, 2}, {0, 0}).ok());    // dup
  EXPECT_FALSE(SliceTopology::Create(SliceShape{1, 1, 2}, {0, -1}).ok());   // negative
  EXPECT_TRUE(SliceTopology::Create(SliceShape{1, 1, 2}, {5, 9}).ok());
}

TEST(Slice, SingleCubeSelfLoops) {
  const WiringPlan plan(64, 16);
  const auto slice = MakeSlice(SliceShape{1, 1, 1}, 7);
  const auto conns = slice.OcsConnections(plan);
  // Every OCS of every dimension carries the self-loop 7 -> 7.
  EXPECT_EQ(conns.size(), 48u);
  for (const auto& [ocs, target] : conns) {
    ASSERT_EQ(target.size(), 1u);
    EXPECT_EQ(target.at(7), 7);
  }
}

TEST(Slice, TwoCubeRingAlongZ) {
  const WiringPlan plan(64, 16);
  const auto slice = MakeSlice(SliceShape{1, 1, 2}, 10);
  const auto conns = slice.OcsConnections(plan);
  for (const auto& [ocs, target] : conns) {
    const Dim d = plan.DimOfOcs(ocs);
    if (d == Dim::kZ) {
      // Ring 10 -> 11 -> 10.
      EXPECT_EQ(target.at(10), 11);
      EXPECT_EQ(target.at(11), 10);
    } else {
      // Self-loops in the length-1 dimensions.
      EXPECT_EQ(target.at(10), 10);
      EXPECT_EQ(target.at(11), 11);
    }
  }
}

TEST(Slice, ConnectionsAreBijectivePerOcs) {
  const WiringPlan plan(64, 16);
  const auto slice = MakeSlice(SliceShape{2, 4, 8});
  for (const auto& [ocs, target] : slice.OcsConnections(plan)) {
    std::set<int> souths;
    for (const auto& [n, s] : target) EXPECT_TRUE(souths.insert(s).second);
    EXPECT_EQ(souths.size(), target.size());
    EXPECT_EQ(target.size(), 64u);  // every cube participates in every ring
  }
}

TEST(Slice, BisectionMaximalForSymmetricShape) {
  const WiringPlan plan(64, 16);
  // §4.2.1: 16x16x16 chips (4x4x4 cubes) has the highest bisection
  // bandwidth of all full-pod shapes.
  const int symmetric = MakeSlice(SliceShape{4, 4, 4}).BisectionLinks(plan);
  for (const auto& shape : EnumerateCanonicalShapes(64)) {
    const int links = MakeSlice(shape).BisectionLinks(plan);
    EXPECT_LE(links, symmetric) << shape.ToCubeString();
  }
  EXPECT_EQ(symmetric, 2 * 16 * 16);  // 16 lines x 2 crossings x 16 links
}

TEST(Slice, BisectionOfHighlyAsymmetricShape) {
  const WiringPlan plan(64, 16);
  // 4x4x256 chips = 1x1x64 cubes: one ring, 2 crossings, 16 links.
  EXPECT_EQ(MakeSlice(SliceShape{1, 1, 64}).BisectionLinks(plan), 32);
}

TEST(Slice, CubeDiameter) {
  EXPECT_EQ(MakeSlice(SliceShape{4, 4, 4}).CubeDiameter(), 6);
  EXPECT_EQ(MakeSlice(SliceShape{1, 1, 64}).CubeDiameter(), 32);
}

// --- superpod --------------------------------------------------------------------

TEST(SuperpodTest, InstallAndRemoveSlice) {
  Superpod pod(100, /*cubes=*/8, /*ocs_per_dim=*/2);
  const auto slice = MakeSlice(SliceShape{1, 2, 2}, 0);
  auto id = pod.InstallSlice(slice);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(pod.slices().size(), 1u);
  EXPECT_EQ(pod.FreeHealthyCubes().size(), 4u);
  EXPECT_TRUE(pod.SliceOwningCube(0).has_value());
  ASSERT_TRUE(pod.RemoveSlice(id.value()).ok());
  EXPECT_EQ(pod.slices().size(), 0u);
  EXPECT_EQ(pod.FreeHealthyCubes().size(), 8u);
  // Fabric fully drained.
  for (int i = 0; i < pod.ocs_count(); ++i) {
    EXPECT_EQ(pod.ocs(i).ConnectionCount(), 0);
  }
}

TEST(SuperpodTest, InstallRejectsBusyCube) {
  Superpod pod(101, 8, 2);
  ASSERT_TRUE(pod.InstallSlice(MakeSlice(SliceShape{1, 1, 2}, 0)).ok());
  const auto overlapping = pod.InstallSlice(MakeSlice(SliceShape{1, 1, 2}, 1));
  EXPECT_FALSE(overlapping.ok());
}

TEST(SuperpodTest, InstallRejectsUnhealthyCube) {
  Superpod pod(102, 8, 2);
  pod.cube(3).SetHostHealth(0, false);
  EXPECT_FALSE(pod.InstallSlice(MakeSlice(SliceShape{1, 1, 2}, 2)).ok());
}

TEST(SuperpodTest, SecondSliceDoesNotDisturbFirst) {
  Superpod pod(103, 8, 2);
  auto first = pod.InstallSlice(MakeSlice(SliceShape{1, 1, 2}, 0));
  ASSERT_TRUE(first.ok());
  // Record the exact switch state for slice 1.
  std::map<int, std::map<int, int>> before;
  for (int i = 0; i < pod.ocs_count(); ++i) {
    for (const auto& c : pod.ocs(i).Connections()) before[i][c.north] = c.south;
  }
  auto second = pod.InstallSlice(MakeSlice(SliceShape{1, 2, 2}, 2));
  ASSERT_TRUE(second.ok());
  // Every connection of slice 1 still present and unchanged.
  for (const auto& [ocs, conns] : before) {
    for (const auto& [n, s] : conns) {
      ASSERT_TRUE(pod.ocs(ocs).ConnectionOn(n).has_value());
      EXPECT_EQ(pod.ocs(ocs).ConnectionOn(n)->south, s);
    }
  }
}

TEST(SuperpodTest, SliceDegradedByCubeFailure) {
  Superpod pod(104, 8, 2);
  auto id = pod.InstallSlice(MakeSlice(SliceShape{1, 1, 2}, 0));
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(pod.SliceDegraded(id.value()));
  pod.cube(1).SetHostHealth(5, false);
  EXPECT_TRUE(pod.SliceDegraded(id.value()));
}

TEST(SuperpodTest, MultiCubeSliceDegradedByOcsFailure) {
  Superpod pod(105, 8, 2);
  auto multi = pod.InstallSlice(MakeSlice(SliceShape{1, 1, 2}, 0));
  auto single = pod.InstallSlice(MakeSlice(SliceShape{1, 1, 1}, 4));
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(single.ok());
  pod.FailOcs(0);
  EXPECT_TRUE(pod.SliceDegraded(multi.value()));
  // §4.2.2: a single-cube slice needs no inter-cube reconfiguration, so an
  // OCS failure does not degrade it.
  EXPECT_FALSE(pod.SliceDegraded(single.value()));
  pod.RepairOcs(0);
  EXPECT_FALSE(pod.SliceDegraded(multi.value()));
}

TEST(SuperpodTest, RepairOcsRestoresConnections) {
  Superpod pod(106, 8, 2);
  auto id = pod.InstallSlice(MakeSlice(SliceShape{1, 1, 2}, 0));
  ASSERT_TRUE(id.ok());
  const int conns_before = pod.ocs(0).ConnectionCount();
  pod.FailOcs(0);
  pod.RepairOcs(0);
  EXPECT_EQ(pod.ocs(0).ConnectionCount(), conns_before);
  EXPECT_FALSE(pod.SliceDegraded(id.value()));
}

TEST(SuperpodTest, InstallFailsWhenOcsDown) {
  Superpod pod(107, 8, 2);
  pod.FailOcs(3);
  EXPECT_FALSE(pod.InstallSlice(MakeSlice(SliceShape{1, 1, 2}, 0)).ok());
}

TEST(SuperpodTest, Cwdm8PodVariantUses24Switches) {
  // With CWDM8 bidi optics two face positions share each OCS connection
  // (§4.2.2: only 24 OCSes needed); structurally that is a wiring plan with
  // 8 face positions per dimension.
  Superpod pod(200, kCubesPerPod, /*ocs_per_dim=*/8);
  EXPECT_EQ(pod.ocs_count(), 24);
  std::vector<int> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(i);
  auto slice = SliceTopology::Create(SliceShape{2, 2, 2}, ids);
  ASSERT_TRUE(slice.ok());
  auto installed = pod.InstallSlice(slice.value());
  ASSERT_TRUE(installed.ok());
  for (int i = 0; i < pod.ocs_count(); ++i) {
    EXPECT_EQ(pod.ocs(i).ConnectionCount(), 8);
  }
}

class SuperpodShapeSweep : public ::testing::TestWithParam<SliceShape> {};

TEST_P(SuperpodShapeSweep, FullPodShapeInstalls) {
  Superpod pod(108);  // full 64-cube pod with 48 OCSes
  const auto slice = MakeSlice(GetParam());
  auto id = pod.InstallSlice(slice);
  ASSERT_TRUE(id.ok()) << GetParam().ToCubeString();
  EXPECT_TRUE(pod.FreeHealthyCubes().empty());
  // Every OCS carries exactly one connection per cube (64 norths used).
  for (int i = 0; i < pod.ocs_count(); ++i) {
    EXPECT_EQ(pod.ocs(i).ConnectionCount(), 64);
  }
}

INSTANTIATE_TEST_SUITE_P(FullPodShapes, SuperpodShapeSweep,
                         ::testing::Values(SliceShape{4, 4, 4}, SliceShape{1, 1, 64},
                                           SliceShape{2, 4, 8}, SliceShape{1, 8, 8}),
                         [](const auto& info) {
                           std::string s = info.param.ToCubeString();
                           for (auto& c : s) {
                             if (c == 'x') c = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace lightwave::tpu
