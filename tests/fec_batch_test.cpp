// Batch Reed-Solomon kernel tests (CTest label: fecbatch): bit-exactness of
// EncodeMany/DecodeMany against the scalar kernels under every supported
// dispatch path, ragged tails, aliasing, per-lane failure isolation, and the
// thread-count/dispatch invariance of the parallel Monte-Carlo FER sweep.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "fec/concatenated.h"
#include "fec/gf.h"
#include "fec/reed_solomon.h"
#include "fec/rs_batch.h"

namespace lightwave::fec {
namespace {

using Element = Gf1024::Element;

/// Pins a dispatch path for the test's scope, restoring automatic selection
/// on exit (other tests must not inherit a forced path).
class ScopedDispatch {
 public:
  explicit ScopedDispatch(batch::Dispatch dispatch) { batch::Force(dispatch); }
  ~ScopedDispatch() { batch::ResetDispatch(); }
};

std::vector<batch::Dispatch> SupportedDispatches() {
  std::vector<batch::Dispatch> out;
  for (auto d : {batch::Dispatch::kScalar, batch::Dispatch::kSwar, batch::Dispatch::kAvx2}) {
    if (batch::Supported(d)) out.push_back(d);
  }
  return out;
}

std::vector<Element> RandomData(const ReedSolomon& rs, int count, common::Rng& rng) {
  std::vector<Element> data(static_cast<std::size_t>(count) *
                            static_cast<std::size_t>(rs.k()));
  for (auto& s : data) s = static_cast<Element>(rng.UniformInt(Gf1024::kFieldSize));
  return data;
}

/// Scalar reference: encode each word with EncodeInto.
std::vector<Element> EncodeEachScalar(const ReedSolomon& rs,
                                      const std::vector<Element>& data) {
  const auto count = data.size() / static_cast<std::size_t>(rs.k());
  std::vector<Element> out(count * static_cast<std::size_t>(rs.n()));
  for (std::size_t w = 0; w < count; ++w) {
    std::span<Element> word(out.data() + w * static_cast<std::size_t>(rs.n()),
                            static_cast<std::size_t>(rs.n()));
    std::copy_n(data.data() + w * static_cast<std::size_t>(rs.k()),
                static_cast<std::size_t>(rs.k()), word.data());
    rs.EncodeInto(word.first(static_cast<std::size_t>(rs.k())), word);
  }
  return out;
}

/// Corrupts word `w` of `words` with `errors` random distinct positions.
void CorruptWord(std::span<Element> words, int n, int w, int errors, common::Rng& rng) {
  std::vector<int> positions;
  while (static_cast<int>(positions.size()) < errors) {
    const int pos = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(n)));
    if (std::find(positions.begin(), positions.end(), pos) != positions.end()) continue;
    positions.push_back(pos);
    Element& symbol = words[static_cast<std::size_t>(w) * static_cast<std::size_t>(n) +
                            static_cast<std::size_t>(pos)];
    const auto flip = static_cast<Element>(1 + rng.UniformInt(Gf1024::kFieldSize - 1));
    symbol = static_cast<Element>(symbol ^ flip);
  }
}

TEST(RsBatchDispatch, ScalarAndSwarAlwaysSupported) {
  EXPECT_TRUE(batch::Supported(batch::Dispatch::kScalar));
  EXPECT_TRUE(batch::Supported(batch::Dispatch::kSwar));
  // Whatever is active must report as supported.
  EXPECT_TRUE(batch::Supported(batch::Active()));
}

TEST(RsBatchDispatch, NamesAreStable) {
  EXPECT_STREQ(batch::Name(batch::Dispatch::kScalar), "scalar");
  EXPECT_STREQ(batch::Name(batch::Dispatch::kSwar), "swar");
  EXPECT_STREQ(batch::Name(batch::Dispatch::kAvx2), "avx2");
}

TEST(RsBatchDispatch, ForceOverridesAndResetRestores) {
  const auto before = batch::Active();
  {
    ScopedDispatch forced(batch::Dispatch::kScalar);
    EXPECT_EQ(batch::Active(), batch::Dispatch::kScalar);
  }
  EXPECT_EQ(batch::Active(), before);
}

TEST(RsBatchEncode, MatchesScalarOnFullTilesAndRaggedTail) {
  const auto rs = ReedSolomon::Kp4();
  ReedSolomon::BatchScratch scratch;
  common::Rng rng(20260808);
  // 2 full tiles plus a 5-lane ragged tail.
  const int count = 2 * batch::kLaneWidth + 5;
  const auto data = RandomData(rs, count, rng);
  const auto expected = EncodeEachScalar(rs, data);
  for (auto dispatch : SupportedDispatches()) {
    ScopedDispatch forced(dispatch);
    std::vector<Element> got(expected.size());
    rs.EncodeMany(data, got, scratch);
    EXPECT_EQ(got, expected) << "dispatch=" << batch::Name(dispatch);
  }
}

TEST(RsBatchEncode, InPlaceAliasedDataMatches) {
  const auto rs = ReedSolomon::Kp4();
  ReedSolomon::BatchScratch scratch;
  common::Rng rng(1);
  const int count = batch::kLaneWidth + 3;
  const auto data = RandomData(rs, count, rng);
  const auto expected = EncodeEachScalar(rs, data);
  for (auto dispatch : SupportedDispatches()) {
    ScopedDispatch forced(dispatch);
    // Stage the data prefixes in the codeword buffer, parity slots zeroed.
    std::vector<Element> words(expected.size(), 0);
    for (int w = 0; w < count; ++w) {
      std::copy_n(data.data() + static_cast<std::size_t>(w) * rs.k(),
                  static_cast<std::size_t>(rs.k()),
                  words.data() + static_cast<std::size_t>(w) * rs.n());
    }
    rs.EncodeManyInPlace(words, scratch);
    EXPECT_EQ(words, expected) << "dispatch=" << batch::Name(dispatch);
  }
}

TEST(RsBatchEncode, SmallCodeAndSingleWord) {
  const ReedSolomon rs(20, 14);
  ReedSolomon::BatchScratch scratch;
  common::Rng rng(7);
  for (const int count : {1, batch::kLaneWidth, batch::kLaneWidth + 1}) {
    const auto data = RandomData(rs, count, rng);
    const auto expected = EncodeEachScalar(rs, data);
    for (auto dispatch : SupportedDispatches()) {
      ScopedDispatch forced(dispatch);
      std::vector<Element> got(expected.size());
      rs.EncodeMany(data, got, scratch);
      EXPECT_EQ(got, expected)
          << "dispatch=" << batch::Name(dispatch) << " count=" << count;
    }
  }
}

TEST(RsBatchDecode, MatchesScalarAcrossRandomErrorCounts) {
  const auto rs = ReedSolomon::Kp4();
  ReedSolomon::BatchScratch scratch;
  ReedSolomon::Scratch scalar_scratch;
  common::Rng rng(42);
  const int count = batch::kLaneWidth + 7;  // one full tile + ragged tail
  const auto data = RandomData(rs, count, rng);
  const auto clean = EncodeEachScalar(rs, data);
  auto corrupted = clean;
  // Per-lane error counts sweep clean lanes, correctable lanes, and
  // beyond-t lanes (detection/miscorrection) in one batch.
  for (int w = 0; w < count; ++w) {
    const int errors = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(rs.t() + 4)));
    CorruptWord(corrupted, rs.n(), w, errors, rng);
  }
  // Scalar reference: DecodeInPlace per word, recording results and bytes.
  auto expected_words = corrupted;
  std::vector<int> expected(static_cast<std::size_t>(count));
  for (int w = 0; w < count; ++w) {
    std::span<Element> word(expected_words.data() + static_cast<std::size_t>(w) * rs.n(),
                            static_cast<std::size_t>(rs.n()));
    const auto result = rs.DecodeInPlace(word, scalar_scratch);
    expected[static_cast<std::size_t>(w)] =
        result.ok() ? result.value() : ReedSolomon::kDecodeFailed;
  }
  ASSERT_TRUE(std::any_of(expected.begin(), expected.end(),
                          [](int c) { return c == ReedSolomon::kDecodeFailed; }))
      << "the sweep should include at least one uncorrectable lane";
  ASSERT_TRUE(std::any_of(expected.begin(), expected.end(), [](int c) { return c > 0; }));
  for (auto dispatch : SupportedDispatches()) {
    ScopedDispatch forced(dispatch);
    auto words = corrupted;
    std::vector<int> corrected(static_cast<std::size_t>(count));
    rs.DecodeMany(words, corrected, scratch);
    EXPECT_EQ(corrected, expected) << "dispatch=" << batch::Name(dispatch);
    EXPECT_EQ(words, expected_words) << "dispatch=" << batch::Name(dispatch);
  }
}

TEST(RsBatchDecode, OutOfFieldLaneFailsWithoutPoisoningNeighbors) {
  const auto rs = ReedSolomon::Kp4();
  ReedSolomon::BatchScratch scratch;
  common::Rng rng(3);
  const int count = batch::kLaneWidth;
  const auto data = RandomData(rs, count, rng);
  auto words = EncodeEachScalar(rs, data);
  CorruptWord(words, rs.n(), 2, 4, rng);  // lane 2: correctable
  words[static_cast<std::size_t>(5) * rs.n() + 100] = Gf1024::kFieldSize;  // lane 5: invalid
  for (auto dispatch : SupportedDispatches()) {
    ScopedDispatch forced(dispatch);
    auto batch_words = words;
    std::vector<int> corrected(static_cast<std::size_t>(count));
    rs.DecodeMany(batch_words, corrected, scratch);
    EXPECT_EQ(corrected[5], ReedSolomon::kDecodeFailed);
    EXPECT_EQ(corrected[2], 4);
    for (int w = 0; w < count; ++w) {
      if (w == 2 || w == 5) continue;
      EXPECT_EQ(corrected[static_cast<std::size_t>(w)], 0) << "lane " << w;
    }
    // The invalid lane keeps its received bytes.
    EXPECT_EQ(std::vector<Element>(
                  batch_words.begin() + static_cast<std::ptrdiff_t>(5) * rs.n(),
                  batch_words.begin() + static_cast<std::ptrdiff_t>(6) * rs.n()),
              std::vector<Element>(
                  words.begin() + static_cast<std::ptrdiff_t>(5) * rs.n(),
                  words.begin() + static_cast<std::ptrdiff_t>(6) * rs.n()));
  }
}

TEST(RsBatchDecode, ErasuresMatchScalarPerLane) {
  const auto rs = ReedSolomon::Kp4();
  ReedSolomon::BatchScratch scratch;
  common::Rng rng(9);
  const int count = batch::kLaneWidth + 2;
  const auto data = RandomData(rs, count, rng);
  const auto clean = EncodeEachScalar(rs, data);
  auto corrupted = clean;
  std::vector<std::vector<int>> erasures(static_cast<std::size_t>(count));
  for (int w = 0; w < count; ++w) {
    switch (w % 5) {
      case 0:  // clean word, no erasures
        break;
      case 1: {  // pure erasures beyond t (only decodable as erasures)
        const int f = rs.t() + 5;
        for (int i = 0; i < f; ++i) {
          const int pos = 7 * i + w;
          erasures[static_cast<std::size_t>(w)].push_back(pos);
          corrupted[static_cast<std::size_t>(w) * rs.n() + static_cast<std::size_t>(pos)] ^=
              static_cast<Element>(1 + (i % 1023));
        }
        break;
      }
      case 2:  // errors only, empty erasure list
        CorruptWord(corrupted, rs.n(), w, rs.t(), rng);
        break;
      case 3:  // clean word with an out-of-range erasure entry
        erasures[static_cast<std::size_t>(w)] = {0, rs.n()};
        break;
      default:  // mixed errors + erasures within 2e + f <= 2t
        CorruptWord(corrupted, rs.n(), w, 5, rng);
        erasures[static_cast<std::size_t>(w)] = {1, 2, 3};
        for (int pos : erasures[static_cast<std::size_t>(w)]) {
          corrupted[static_cast<std::size_t>(w) * rs.n() + static_cast<std::size_t>(pos)] ^=
              static_cast<Element>(pos + 1);
        }
        break;
    }
  }
  // Scalar reference.
  auto expected_words = corrupted;
  std::vector<int> expected(static_cast<std::size_t>(count));
  ReedSolomon::Scratch scalar_scratch;
  for (int w = 0; w < count; ++w) {
    const auto& e = erasures[static_cast<std::size_t>(w)];
    std::span<Element> word(expected_words.data() + static_cast<std::size_t>(w) * rs.n(),
                            static_cast<std::size_t>(rs.n()));
    if (e.empty()) {
      const auto result = rs.DecodeInPlace(word, scalar_scratch);
      expected[static_cast<std::size_t>(w)] =
          result.ok() ? result.value() : ReedSolomon::kDecodeFailed;
    } else {
      const std::vector<Element> received(word.begin(), word.end());
      const auto outcome = rs.DecodeWithErasures(received, e);
      if (outcome.ok()) {
        std::copy(outcome.value().codeword.begin(), outcome.value().codeword.end(),
                  word.begin());
        expected[static_cast<std::size_t>(w)] = outcome.value().corrected_symbols;
      } else {
        expected[static_cast<std::size_t>(w)] = ReedSolomon::kDecodeFailed;
      }
    }
  }
  for (auto dispatch : SupportedDispatches()) {
    ScopedDispatch forced(dispatch);
    auto words = corrupted;
    std::vector<int> corrected(static_cast<std::size_t>(count));
    rs.DecodeManyWithErasures(words, erasures, corrected, scratch);
    EXPECT_EQ(corrected, expected) << "dispatch=" << batch::Name(dispatch);
    EXPECT_EQ(words, expected_words) << "dispatch=" << batch::Name(dispatch);
  }
}

TEST(RsBatchDecode, ScratchReuseAcrossBatches) {
  const auto rs = ReedSolomon::Kp4();
  ReedSolomon::BatchScratch scratch;
  common::Rng rng(11);
  for (int round = 0; round < 3; ++round) {
    const int count = batch::kLaneWidth + round;
    const auto data = RandomData(rs, count, rng);
    auto words = EncodeEachScalar(rs, data);
    CorruptWord(words, rs.n(), 0, rs.t(), rng);
    std::vector<int> corrected(static_cast<std::size_t>(count));
    rs.DecodeMany(words, corrected, scratch);
    EXPECT_EQ(corrected[0], rs.t()) << "round " << round;
    for (int w = 1; w < count; ++w) {
      EXPECT_EQ(corrected[static_cast<std::size_t>(w)], 0) << "round " << round;
    }
  }
}

/// The Monte-Carlo sweep must be byte-identical at any thread count: same
/// FER and same caller-RNG state afterwards. (ISSUE acceptance: 1, 2, and 8
/// threads.)
TEST(ParallelFerSweep, ThreadCountInvariance) {
  const ConcatenatedFec fec;
  std::vector<double> fers;
  std::vector<std::uint64_t> rng_after;
  for (const int threads : {1, 2, 8}) {
    common::parallel::SetThreads(threads);
    common::Rng rng(123);
    fers.push_back(fec.MeasureFrameErrorRate(4e-3, false, 70, rng));
    rng_after.push_back(rng.NextU64());
  }
  common::parallel::SetThreads(1);
  EXPECT_EQ(fers[0], fers[1]);
  EXPECT_EQ(fers[0], fers[2]);
  EXPECT_EQ(rng_after[0], rng_after[1]);
  EXPECT_EQ(rng_after[0], rng_after[2]);
  // The operating point sits mid-waterfall, so the sweep must actually see
  // both outcomes for the invariance check to mean anything.
  EXPECT_GT(fers[0], 0.0);
  EXPECT_LT(fers[0], 1.0);
}

TEST(ParallelFerSweep, DispatchInvariance) {
  const ConcatenatedFec fec;
  std::vector<double> fers;
  for (auto dispatch : SupportedDispatches()) {
    ScopedDispatch forced(dispatch);
    common::Rng rng(99);
    fers.push_back(fec.MeasureFrameErrorRate(4e-3, false, 40, rng));
  }
  for (std::size_t i = 1; i < fers.size(); ++i) EXPECT_EQ(fers[i], fers[0]);
}

}  // namespace
}  // namespace lightwave::fec
