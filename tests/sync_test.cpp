// Annotated sync primitives (common/sync.h): MutexLock/CondVar semantics and
// the lock-rank deadlock detector — rank-order enforcement, acquired-before
// cycle detection (an AB/BA inversion trips the FIRST time both orders have
// been observed, no timing-dependent deadlock needed), re-entrant and
// unbalanced misuse, and a TSan-targeted multi-thread stress. Every test
// forces the detector on with ScopedDeadlockDetector so the checks run under
// the NDEBUG sanitizer legs too.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"

// The deliberate-misuse tests lock mutex pairs in BOTH orders on purpose —
// exactly what TSan's own lock-order detector reports (and with stack-slot
// reuse across tests it even pairs mutexes from different tests). Under TSan
// those tests skip: TSan itself provides the equivalent coverage there, and
// every other CI leg (Debug, Release, ASan+UBSan, clang-thread-safety) runs
// them in full.
#if defined(__SANITIZE_THREAD__)
#define LW_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LW_TSAN_ENABLED 1
#endif
#endif
#if defined(LW_TSAN_ENABLED)
#define LW_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "deliberate lock-order inversion; TSan's own detector covers this leg"
#else
#define LW_SKIP_UNDER_TSAN() (void)0
#endif

namespace lightwave {
namespace {

/// Records every failure the handler sees (and never aborts) — the same
/// idiom as check_test.cpp. The detector is written to keep its own
/// bookkeeping consistent under a continuing handler, which these tests
/// verify by unlocking normally after each trip.
struct Recorder {
  std::vector<common::CheckFailure> failures;

  common::ScopedCheckHandler Install() {
    return common::ScopedCheckHandler(
        [this](const common::CheckFailure& f) { failures.push_back(f); });
  }

  std::string MessageOr(const char* fallback) const {
    return failures.empty() ? std::string(fallback) : failures.front().message;
  }
};

TEST(Sync, RankOrderedAcquisitionIsClean) {
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  lw::Mutex outer("sync.outer", lw::rank::kFleetAdmission);
  lw::Mutex inner("sync.inner", lw::rank::kTelemetryRegistry);
  {
    lw::MutexLock a(outer);
    lw::MutexLock b(inner);
  }
  // Repetition must stay clean too: the acquired-before edge is recorded,
  // not re-reported.
  {
    lw::MutexLock a(outer);
    lw::MutexLock b(inner);
  }
  EXPECT_TRUE(recorder.failures.empty()) << recorder.MessageOr("");
}

TEST(Sync, RankViolationTrips) {
  LW_SKIP_UNDER_TSAN();
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  lw::Mutex low("sync.low", lw::rank::kFleetAdmission);
  lw::Mutex high("sync.high", lw::rank::kTelemetryRegistry);
  {
    lw::MutexLock a(high);
    lw::MutexLock b(low);  // descending rank: inward acquisition must ascend
  }
  ASSERT_EQ(recorder.failures.size(), 1u);
  const std::string message = recorder.failures[0].message;
  EXPECT_NE(message.find("lock-rank violation"), std::string::npos) << message;
  EXPECT_NE(message.find("sync.low"), std::string::npos) << message;
  EXPECT_NE(message.find("sync.high"), std::string::npos) << message;
  EXPECT_NE(message.find(std::to_string(lw::rank::kTelemetryRegistry)),
            std::string::npos)
      << message;
}

TEST(Sync, EqualRankTrips) {
  LW_SKIP_UNDER_TSAN();
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  lw::Mutex a("sync.series_a", lw::rank::kTelemetrySeries);
  lw::Mutex b("sync.series_b", lw::rank::kTelemetrySeries);
  {
    lw::MutexLock la(a);
    lw::MutexLock lb(b);  // equal rank: "strictly increasing" forbids this
  }
  ASSERT_EQ(recorder.failures.size(), 1u);
  EXPECT_NE(recorder.failures[0].message.find("strictly increasing"),
            std::string::npos)
      << recorder.failures[0].message;
}

TEST(Sync, UnrankedMutexesSkipTheRankCheck) {
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  // Ranked-under-unranked and unranked-under-ranked are both fine; only
  // ranked-under-ranked is ordered. Distinct pairs per direction — reversing
  // the SAME pair would (correctly) trip the cycle detector instead.
  lw::Mutex ranked_outer("sync.ranked_outer", lw::rank::kTelemetrySeries);
  lw::Mutex unranked_inner("sync.unranked_inner");
  {
    lw::MutexLock a(ranked_outer);
    lw::MutexLock b(unranked_inner);
  }
  lw::Mutex unranked_outer("sync.unranked_outer");
  lw::Mutex ranked_inner("sync.ranked_inner", lw::rank::kTelemetrySeries);
  {
    lw::MutexLock a(unranked_outer);
    lw::MutexLock b(ranked_inner);
  }
  EXPECT_TRUE(recorder.failures.empty()) << recorder.MessageOr("");
}

TEST(Sync, SeededLockOrderInversionTrips) {
  LW_SKIP_UNDER_TSAN();
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  lw::Mutex a("sync.inversion_a");
  lw::Mutex b("sync.inversion_b");

  // Seed the acquired-before graph with a -> b from another thread. The
  // nesting is legal on its own, so the helper must not trip.
  std::thread seeder([&] {
    lw::MutexLock la(a);
    lw::MutexLock lb(b);
  });
  seeder.join();
  ASSERT_TRUE(recorder.failures.empty()) << recorder.MessageOr("");

  // The opposite order on this thread closes the cycle. The seeder is long
  // joined — no timing window, no actual deadlock — yet the detector trips
  // with BOTH lock sets: this thread's held stack and the held stack
  // recorded when the a -> b edge was first observed.
  {
    lw::MutexLock lb(b);
    lw::MutexLock la(a);
  }
  ASSERT_EQ(recorder.failures.size(), 1u);
  const std::string message = recorder.failures[0].message;
  EXPECT_NE(message.find("lock-order inversion"), std::string::npos) << message;
  EXPECT_NE(message.find("this thread holds {'sync.inversion_b'}"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("opposite order was recorded holding "
                         "{'sync.inversion_a'} while acquiring "
                         "'sync.inversion_b'"),
            std::string::npos)
      << message;
}

TEST(Sync, TransitiveInversionTrips) {
  LW_SKIP_UNDER_TSAN();
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  lw::Mutex a("sync.chain_a");
  lw::Mutex b("sync.chain_b");
  lw::Mutex c("sync.chain_c");
  {
    lw::MutexLock la(a);
    lw::MutexLock lb(b);  // a -> b
  }
  {
    lw::MutexLock lb(b);
    lw::MutexLock lc(c);  // b -> c
  }
  ASSERT_TRUE(recorder.failures.empty()) << recorder.MessageOr("");
  {
    lw::MutexLock lc(c);
    lw::MutexLock la(a);  // c -> a closes a THREE-lock cycle
  }
  ASSERT_EQ(recorder.failures.size(), 1u);
  EXPECT_NE(recorder.failures[0].message.find("lock-order inversion"),
            std::string::npos)
      << recorder.failures[0].message;
}

TEST(Sync, ReentrantAcquisitionTrips) {
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  lw::Mutex m("sync.reentrant");
  m.Lock();
  m.Lock();  // skipped physically (would self-deadlock), reported
  ASSERT_EQ(recorder.failures.size(), 1u);
  EXPECT_NE(recorder.failures[0].message.find("re-entrant"), std::string::npos)
      << recorder.failures[0].message;
  // The skipped acquisition keeps the ledger balanced: ONE unlock releases.
  m.Unlock();
  EXPECT_EQ(recorder.failures.size(), 1u);
}

TEST(Sync, UnlockWithoutLockTrips) {
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  lw::Mutex m("sync.unheld");
  m.Unlock();  // skipped physically (UB on std::mutex), reported
  ASSERT_EQ(recorder.failures.size(), 1u);
  EXPECT_NE(recorder.failures[0].message.find("does not hold"),
            std::string::npos)
      << recorder.failures[0].message;
}

TEST(Sync, DetectorDisabledSkipsChecks) {
  LW_SKIP_UNDER_TSAN();
  lw::ScopedDeadlockDetector detector(false);
  Recorder recorder;
  auto guard = recorder.Install();
  lw::Mutex low("sync.off_low", lw::rank::kFleetAdmission);
  lw::Mutex high("sync.off_high", lw::rank::kTelemetryRegistry);
  {
    lw::MutexLock a(high);
    lw::MutexLock b(low);  // would trip with the detector on
  }
  EXPECT_TRUE(recorder.failures.empty()) << recorder.MessageOr("");
}

TEST(Sync, CondVarHandoffDeliversInOrder) {
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  constexpr int kItems = 1000;

  lw::Mutex mu("sync.handoff");
  lw::CondVar cv;
  std::deque<int> queue;
  bool done = false;

  std::vector<int> received;
  std::thread consumer([&] {
    for (;;) {
      lw::MutexLock lock(mu);
      while (queue.empty() && !done) cv.Wait(mu);
      if (queue.empty()) return;  // done and drained
      received.push_back(queue.front());
      queue.pop_front();
    }
  });

  for (int i = 0; i < kItems; ++i) {
    lw::MutexLock lock(mu);
    queue.push_back(i);
    cv.NotifyOne();
  }
  {
    lw::MutexLock lock(mu);
    done = true;
  }
  cv.NotifyAll();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(recorder.failures.empty()) << recorder.MessageOr("");
}

// TSan target: many threads hammering a shared rank-ordered pair plus their
// own unranked mutex. Rank discipline is respected throughout, so the run
// must be silent — any report here (or any TSan/deadlock finding) is a bug
// in the wrappers or the detector itself.
TEST(Sync, RankOrderedStressIsCleanAcrossThreads) {
  lw::ScopedDeadlockDetector detector(true);
  Recorder recorder;
  auto guard = recorder.Install();
  constexpr int kThreads = 8;
  constexpr int kIterations = 500;

  lw::Mutex outer("sync.stress_outer", lw::rank::kShardHandoff);
  lw::Mutex inner("sync.stress_inner", lw::rank::kTelemetrySeries);
  std::uint64_t counter = 0;  // guarded by outer (runtime contract)
  std::atomic<int> inner_only{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      lw::Mutex local("sync.stress_local");
      for (int i = 0; i < kIterations; ++i) {
        {
          lw::MutexLock a(outer);
          lw::MutexLock b(inner);
          ++counter;
        }
        {
          lw::MutexLock b(inner);
          inner_only.fetch_add(1, std::memory_order_relaxed);
        }
        lw::MutexLock l(local);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  {
    lw::MutexLock a(outer);
    EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIterations);
  }
  EXPECT_EQ(inner_only.load(), kThreads * kIterations);
  EXPECT_TRUE(recorder.failures.empty()) << recorder.MessageOr("");
}

}  // namespace
}  // namespace lightwave
