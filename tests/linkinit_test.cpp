// Tests for the optical link bring-up FSM: acquisition pipeline timing, LOS
// hold-off, flap counting, and the fast-init profile for future fabrics.
#include <gtest/gtest.h>

#include "ctrl/link_init.h"

namespace lightwave::ctrl {
namespace {

TEST(LinkInit, StartsInLos) {
  LinkInitFsm fsm;
  EXPECT_EQ(fsm.state(), LinkState::kLossOfSignal);
  EXPECT_FALSE(fsm.IsUp());
}

TEST(LinkInit, WalksAcquisitionPipeline) {
  LinkInitTiming timing;
  LinkInitFsm fsm(timing);
  fsm.OnLightPresent();
  EXPECT_EQ(fsm.state(), LinkState::kSignalDetect);
  fsm.Advance(timing.signal_detect_us);
  EXPECT_EQ(fsm.state(), LinkState::kCdrLock);
  fsm.Advance(timing.cdr_lock_us + timing.equalizer_adapt_us);
  EXPECT_EQ(fsm.state(), LinkState::kFecLock);
  fsm.Advance(timing.fec_lock_us);
  EXPECT_TRUE(fsm.IsUp());
  EXPECT_NEAR(fsm.LastBringupUs(), timing.TotalBringupUs(), 1e-9);
}

TEST(LinkInit, SingleLargeAdvanceAlsoCompletes) {
  LinkInitFsm fsm;
  fsm.OnLightPresent();
  fsm.Advance(1e9);
  EXPECT_TRUE(fsm.IsUp());
}

TEST(LinkInit, NoProgressWithoutLight) {
  LinkInitFsm fsm;
  fsm.Advance(1e9);
  EXPECT_EQ(fsm.state(), LinkState::kLossOfSignal);
}

TEST(LinkInit, ShortGlitchRidesThroughHoldoff) {
  LinkInitTiming timing;
  LinkInitFsm fsm(timing);
  fsm.OnLightPresent();
  fsm.Advance(1e9);
  ASSERT_TRUE(fsm.IsUp());
  // A glitch shorter than the hold-off does not drop the link.
  fsm.OnLightLost();
  fsm.Advance(timing.los_holdoff_us / 2.0);
  fsm.OnLightPresent();
  fsm.Advance(1.0);
  EXPECT_TRUE(fsm.IsUp());
  EXPECT_EQ(fsm.flap_count(), 0u);
}

TEST(LinkInit, SustainedDarknessDropsAndCountsFlap) {
  LinkInitTiming timing;
  LinkInitFsm fsm(timing);
  fsm.OnLightPresent();
  fsm.Advance(1e9);
  ASSERT_TRUE(fsm.IsUp());
  fsm.OnLightLost();
  fsm.Advance(timing.los_holdoff_us * 2.0);
  EXPECT_EQ(fsm.state(), LinkState::kLossOfSignal);
  EXPECT_EQ(fsm.flap_count(), 1u);
  // Re-acquisition runs the full pipeline again.
  fsm.OnLightPresent();
  fsm.Advance(timing.TotalBringupUs());
  EXPECT_TRUE(fsm.IsUp());
}

TEST(LinkInit, ReacquisitionDuringAcquisitionIsNotAFlap) {
  LinkInitTiming timing;
  LinkInitFsm fsm(timing);
  fsm.OnLightPresent();
  fsm.Advance(timing.signal_detect_us + 1.0);  // mid CDR lock
  fsm.OnLightLost();
  fsm.Advance(timing.los_holdoff_us * 2.0);
  EXPECT_EQ(fsm.state(), LinkState::kLossOfSignal);
  EXPECT_EQ(fsm.flap_count(), 0u);  // never reached kUp
}

TEST(LinkInit, GlitchMidAcquisitionRestartsAcquisition) {
  // Regression: acquisition progress used to survive dark intervals shorter
  // than the LOS hold-off, so CDR "progress" earned before a blackout was
  // credited after light returned and LastBringupUs undercounted the true
  // bring-up time. A link still acquiring loses its partial lock the moment
  // light disappears — only an *up* link rides glitches through the
  // hold-off.
  LinkInitTiming timing;
  LinkInitFsm fsm(timing);
  fsm.OnLightPresent();
  fsm.Advance(timing.signal_detect_us + 0.9 * timing.cdr_lock_us);  // mid CDR
  ASSERT_EQ(fsm.state(), LinkState::kCdrLock);
  fsm.OnLightLost();
  // No hold-off credit for acquisition: the partial lock is gone instantly.
  EXPECT_EQ(fsm.state(), LinkState::kLossOfSignal);
  fsm.Advance(timing.los_holdoff_us / 2.0);  // shorter than the hold-off
  fsm.OnLightPresent();
  // Bring-up restarts from scratch: one microsecond short of the full
  // pipeline must not be up (the buggy FSM was already up here).
  fsm.Advance(timing.TotalBringupUs() - 1.0);
  EXPECT_FALSE(fsm.IsUp());
  fsm.Advance(1.0);
  EXPECT_TRUE(fsm.IsUp());
  // And the measured bring-up is re-timed from the new light edge.
  EXPECT_NEAR(fsm.LastBringupUs(), timing.TotalBringupUs(), 1e-9);
  EXPECT_EQ(fsm.flap_count(), 0u);  // never reached kUp before the glitch
}

TEST(LinkInit, FastInitProfileIsMicrosecondClass) {
  const auto fast = FastInitTiming();
  EXPECT_LT(fast.TotalBringupUs(), 10.0);
  // vs the standard profile, which is millisecond class.
  EXPECT_GT(LinkInitTiming{}.TotalBringupUs(), 1000.0);
  LinkInitFsm fsm(fast);
  fsm.OnLightPresent();
  fsm.Advance(fast.TotalBringupUs());
  EXPECT_TRUE(fsm.IsUp());
}

TEST(LinkInit, BringupTimeMeasuredFromLightEdge) {
  LinkInitTiming timing;
  LinkInitFsm fsm(timing);
  fsm.OnLightPresent();
  // Advance in odd-sized chunks; total must still equal the pipeline sum.
  double total = 0.0;
  while (!fsm.IsUp()) {
    fsm.Advance(13.7);
    total += 13.7;
  }
  EXPECT_NEAR(fsm.LastBringupUs(), timing.TotalBringupUs(), 1e-6);
  EXPECT_GE(total, fsm.LastBringupUs());
}

}  // namespace
}  // namespace lightwave::ctrl
