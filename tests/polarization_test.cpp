// Tests for the Appendix-B polarization optics: Jones calculus building
// blocks, the non-reciprocity of the Faraday rotator, and the circulator's
// cyclic connectivity + isolation sensitivity to component error.
#include <gtest/gtest.h>

#include <cmath>

#include "optics/polarization.h"

namespace lightwave::optics {
namespace {

constexpr double kPi = M_PI;

JonesVector SPolarized() { return JonesVector{{1.0, 0.0}, {0.0, 0.0}}; }
JonesVector PPolarized() { return JonesVector{{0.0, 0.0}, {1.0, 0.0}}; }
JonesVector Diagonal() {
  const double r = 1.0 / std::sqrt(2.0);
  return JonesVector{{r, 0.0}, {r, 0.0}};
}

TEST(Jones, PowerConservedByRotation) {
  for (double angle : {0.1, 0.7, 1.3, -0.4}) {
    const auto out = Rotator(angle) * Diagonal();
    EXPECT_NEAR(out.Power(), 1.0, 1e-12) << angle;
  }
}

TEST(Jones, RotatorComposition) {
  const auto once = Rotator(0.5) * (Rotator(0.25) * SPolarized());
  const auto combined = (Rotator(0.5) * Rotator(0.25)) * SPolarized();
  EXPECT_NEAR(std::abs(once.s - combined.s), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(once.p - combined.p), 0.0, 1e-12);
}

TEST(Jones, QuarterTurnSwapsPolarizations) {
  const auto out = Rotator(kPi / 2.0) * SPolarized();
  EXPECT_NEAR(std::norm(out.p), 1.0, 1e-12);
  EXPECT_NEAR(std::norm(out.s), 0.0, 1e-12);
}

TEST(Jones, PolarizersProject) {
  const auto s_arm = PolarizerS() * Diagonal();
  const auto p_arm = PolarizerP() * Diagonal();
  EXPECT_NEAR(s_arm.Power(), 0.5, 1e-12);
  EXPECT_NEAR(p_arm.Power(), 0.5, 1e-12);
  // The two PBS arms together conserve power.
  EXPECT_NEAR(s_arm.Power() + p_arm.Power(), 1.0, 1e-12);
}

TEST(Jones, HalfWavePlateReflectsAboutAxis) {
  // HWP at 22.5 degrees rotates s-polarized light by 45 degrees.
  const auto out = HalfWavePlate(kPi / 8.0) * SPolarized();
  EXPECT_NEAR(std::norm(out.s), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(out.p), 0.5, 1e-12);
  // Applying it twice is the identity (a true half-wave reflection).
  const auto twice = HalfWavePlate(kPi / 8.0) * out;
  EXPECT_NEAR(std::norm(twice.s), 1.0, 1e-12);
}

TEST(Jones, FaradayPlateCombinationIsDirectionSensitive) {
  // The operative non-reciprocity (Fig. B.1): combined with the reciprocal
  // +45-degree plate, the Faraday rotator cancels in the forward direction
  // but adds in the backward direction — identity one way, a 90-degree
  // rotation the other.
  const double theta = kPi / 4.0;
  const auto forward = Rotator(theta) * FaradayForward(theta);
  const auto fwd_out = forward * SPolarized();
  EXPECT_NEAR(std::norm(fwd_out.s), 1.0, 1e-12);
  EXPECT_NEAR(std::norm(fwd_out.p), 0.0, 1e-12);

  const auto backward = FaradayBackward(theta) * Rotator(theta);
  const auto bwd_s = backward * SPolarized();
  const auto bwd_p = backward * PPolarized();
  EXPECT_NEAR(std::norm(bwd_s.p), 1.0, 1e-12);  // s -> p
  EXPECT_NEAR(std::norm(bwd_p.s), 1.0, 1e-12);  // p -> s
}

// --- circulator -----------------------------------------------------------------

TEST(Circulator, IdealForwardPassIsLossless) {
  const PolarizationCirculator ideal;
  EXPECT_NEAR(ideal.Port1To2Power(), 1.0, 1e-12);
}

TEST(Circulator, IdealBackwardPassRoutesAllPolarizations) {
  // Fiber scrambles polarization (Appendix B): port 2 -> 3 must pass any
  // input state.
  const PolarizationCirculator ideal;
  for (const auto& input : {SPolarized(), PPolarized(), Diagonal()}) {
    EXPECT_NEAR(ideal.Port2To3Power(input), input.Power(), 1e-12);
  }
}

TEST(Circulator, IdealIsolationIsPerfect) {
  const PolarizationCirculator ideal;
  EXPECT_NEAR(ideal.Port1To3Leakage(), 0.0, 1e-12);
  EXPECT_LE(ideal.IsolationDb(), -99.0);
}

TEST(Circulator, RotationErrorLeaksQuadratically) {
  // Small-angle physics: leakage = sin^2(error) ~ error^2.
  const double e1 = 0.01, e2 = 0.02;
  const PolarizationCirculator c1(e1), c2(e2);
  EXPECT_NEAR(c1.Port1To3Leakage(), e1 * e1, 1e-6);
  EXPECT_NEAR(c2.Port1To3Leakage() / c1.Port1To3Leakage(), 4.0, 0.01);
}

TEST(Circulator, ProductionIsolationNeedsTightRotators) {
  // The -50 dB isolation of the integrated part (circulator.h) corresponds
  // to ~0.18 degrees of rotator error; 1 degree only reaches ~-35 dB —
  // why the telecom baseline had to be re-engineered (§3.3.1).
  const PolarizationCirculator tight(0.0032);  // ~0.18 deg
  const PolarizationCirculator loose(0.0175);  // ~1 deg
  EXPECT_LT(tight.IsolationDb(), -49.0);
  EXPECT_GT(loose.IsolationDb(), -36.0);
  EXPECT_LT(loose.IsolationDb(), -34.0);
}

TEST(Circulator, ErrorAlsoCostsForwardPower) {
  const PolarizationCirculator imperfect(0.05);
  const double through = imperfect.Port1To2Power();
  EXPECT_LT(through, 1.0);
  // Power conservation: what does not reach port 2 leaks to port 3.
  EXPECT_NEAR(through + imperfect.Port1To3Leakage(), 1.0, 1e-12);
}

}  // namespace
}  // namespace lightwave::optics
