// Control-plane chaos sweeps: drive transactional ApplyTopology through the
// deterministic FaultInjector (agent fail-stop/restart, correlated bus
// brownouts, mirror death mid-reconfigure) and assert the transaction
// invariant on every seed:
//   - ok        -> every switch holds the full target;
//   - rolled_back -> every switch holds its pre-transaction mapping;
//   - torn      -> the unrestorable switches are *listed*; everything else
//                  holds its pre-transaction mapping;
// and PalomarSwitch::ValidateInvariants() passes after every transaction —
// no torn state ever escapes undetected.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "ctrl/controller.h"
#include "ctrl/fault_injector.h"
#include "ocs/palomar.h"
#include "telemetry/hub.h"

namespace lightwave::ctrl {
namespace {

constexpr int kSwitches = 3;
constexpr int kPorts = 16;
constexpr int kTxnsPerSeed = 8;
constexpr std::uint64_t kSeeds = 5;

std::map<int, int> RandomPartialBijection(common::Rng& rng) {
  std::map<int, int> target;
  std::set<int> souths;
  const int conns = 1 + static_cast<int>(rng.UniformInt(kPorts / 2));
  for (int i = 0; i < conns; ++i) {
    const int n = static_cast<int>(rng.UniformInt(kPorts));
    const int s = static_cast<int>(rng.UniformInt(kPorts));
    if (!target.contains(n) && !souths.contains(s)) {
      target[n] = s;
      souths.insert(s);
    }
  }
  return target;
}

struct SweepTally {
  int applied = 0;
  int rolled_back = 0;
  int torn = 0;
  std::vector<FabricTxnOutcome> outcomes;
  std::vector<int> retries;
  std::vector<double> backoffs;
  std::vector<std::map<int, int>> final_mappings;
  std::uint64_t fail_stops = 0;
  std::uint64_t restarts = 0;
  std::uint64_t brownouts = 0;
  std::uint64_t mirror_deaths = 0;

  bool operator==(const SweepTally&) const = default;
};

/// One chaos run: kSwitches switches, kTxnsPerSeed random partial-bijection
/// transactions, everything seeded. Asserts the transaction invariant after
/// every ApplyTopology.
SweepTally RunChaosSweep(const FaultProfile& profile, std::uint64_t seed) {
  SweepTally tally;
  MessageBus bus(seed);
  FaultInjector injector(seed ^ 0xC4A05ull, profile);
  bus.SetFaultInjector(&injector);
  FabricControllerOptions options;
  options.max_retries = 8;
  FabricController controller(bus, options);
  std::vector<std::unique_ptr<ocs::PalomarSwitch>> switches;
  std::vector<std::unique_ptr<OcsAgent>> agents;
  for (int i = 0; i < kSwitches; ++i) {
    switches.push_back(std::make_unique<ocs::PalomarSwitch>(seed * 100 + static_cast<std::uint64_t>(i)));
    agents.push_back(std::make_unique<OcsAgent>(*switches.back()));
    agents.back()->SetFaultInjector(&injector);
    controller.Register(i, agents.back().get());
  }
  common::Rng traffic = common::Rng::Stream(seed, 7);

  for (int txn = 0; txn < kTxnsPerSeed; ++txn) {
    std::map<int, std::map<int, int>> targets;
    for (int i = 0; i < kSwitches; ++i) targets[i] = RandomPartialBijection(traffic);
    std::vector<std::map<int, int>> pre;
    pre.reserve(switches.size());
    for (const auto& sw : switches) pre.push_back(sw->CurrentMapping());

    const auto result = controller.ApplyTopology(targets);
    tally.outcomes.push_back(result.outcome);
    tally.retries.push_back(result.retries_used);
    tally.backoffs.push_back(result.backoff_us);
    switch (result.outcome) {
      case FabricTxnOutcome::kApplied: ++tally.applied; break;
      case FabricTxnOutcome::kRolledBack: ++tally.rolled_back; break;
      case FabricTxnOutcome::kTorn: ++tally.torn; break;
    }
    EXPECT_EQ(result.ok, result.outcome == FabricTxnOutcome::kApplied);

    // --- the chaos invariant -------------------------------------------------
    for (int i = 0; i < kSwitches; ++i) {
      const auto& now = switches[static_cast<std::size_t>(i)]->CurrentMapping();
      EXPECT_TRUE(switches[static_cast<std::size_t>(i)]->ValidateInvariants().ok())
          << "seed " << seed << " txn " << txn << " ocs " << i;
      if (result.ok) {
        EXPECT_EQ(now, targets.at(i))
            << "seed " << seed << " txn " << txn << " ocs " << i
            << ": applied transaction left a partial target";
      } else if (result.outcome == FabricTxnOutcome::kRolledBack) {
        EXPECT_EQ(now, pre[static_cast<std::size_t>(i)])
            << "seed " << seed << " txn " << txn << " ocs " << i
            << ": rolled-back transaction left residue";
      } else if (std::find(result.torn.begin(), result.torn.end(), i) ==
                 result.torn.end()) {
        EXPECT_EQ(now, pre[static_cast<std::size_t>(i)])
            << "seed " << seed << " txn " << txn << " ocs " << i
            << ": torn state escaped the torn list";
      }
    }
  }

  for (const auto& sw : switches) tally.final_mappings.push_back(sw->CurrentMapping());
  tally.fail_stops = injector.fail_stops();
  tally.restarts = injector.restarts();
  tally.brownouts = injector.brownouts();
  tally.mirror_deaths = injector.mirror_deaths();
  return tally;
}

FaultProfile BrownoutProfile() {
  FaultProfile p;
  p.brownout_start_prob = 0.15;
  p.brownout_end_prob = 0.3;
  p.brownout_drop_prob = 0.85;
  return p;
}

FaultProfile AgentChurnProfile() {
  FaultProfile p;
  p.agent_fail_prob = 0.05;
  p.agent_restart_prob = 0.5;
  return p;
}

FaultProfile MirrorDeathProfile() {
  FaultProfile p;
  p.mirror_death_prob = 0.25;
  return p;
}

FaultProfile CombinedProfile() {
  FaultProfile p;
  p.agent_fail_prob = 0.02;
  p.agent_restart_prob = 0.5;
  p.brownout_start_prob = 0.08;
  p.brownout_end_prob = 0.3;
  p.brownout_drop_prob = 0.8;
  p.mirror_death_prob = 0.1;
  return p;
}

TEST(Chaos, BrownoutSweepHoldsInvariant) {
  SweepTally total;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto tally = RunChaosSweep(BrownoutProfile(), seed);
    total.applied += tally.applied;
    total.brownouts += tally.brownouts;
  }
  // Brownouts actually happened, and the fabric still made forward progress
  // through them (retries ride out the windows).
  EXPECT_GT(total.brownouts, 0u);
  EXPECT_GT(total.applied, 0);
}

TEST(Chaos, AgentChurnSweepHoldsInvariant) {
  SweepTally total;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto tally = RunChaosSweep(AgentChurnProfile(), seed);
    total.applied += tally.applied;
    total.fail_stops += tally.fail_stops;
    total.restarts += tally.restarts;
  }
  EXPECT_GT(total.fail_stops, 0u);
  EXPECT_GT(total.restarts, 0u);
  EXPECT_GT(total.applied, 0);
}

TEST(Chaos, MirrorDeathSweepHoldsInvariant) {
  SweepTally total;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto tally = RunChaosSweep(MirrorDeathProfile(), seed);
    total.applied += tally.applied;
    total.mirror_deaths += tally.mirror_deaths;
  }
  EXPECT_GT(total.mirror_deaths, 0u);
  EXPECT_GT(total.applied, 0);
}

TEST(Chaos, CombinedSweepHoldsInvariant) {
  int applied = 0, finished = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto tally = RunChaosSweep(CombinedProfile(), seed);
    applied += tally.applied;
    finished += static_cast<int>(tally.outcomes.size());
  }
  EXPECT_EQ(finished, static_cast<int>(kSeeds) * kTxnsPerSeed);
  EXPECT_GT(applied, 0);
}

TEST(Chaos, SweepIsDeterministic) {
  // The whole chaos run — faults, loss, retries, backoff, final switch
  // state — replays bit-for-bit from the seed.
  const auto first = RunChaosSweep(CombinedProfile(), 3);
  const auto second = RunChaosSweep(CombinedProfile(), 3);
  EXPECT_EQ(first, second);
  // And a different seed genuinely explores a different trajectory.
  const auto other = RunChaosSweep(CombinedProfile(), 4);
  EXPECT_NE(first.backoffs, other.backoffs);
}

TEST(Chaos, BreakerOpensUnderPermanentAgentDeath) {
  FaultProfile dead;
  dead.agent_fail_prob = 1.0;  // dies on first contact, never restarts
  MessageBus bus(99);
  FaultInjector injector(7, dead);
  bus.SetFaultInjector(&injector);
  ocs::PalomarSwitch sw(123);
  OcsAgent agent(sw);
  agent.SetFaultInjector(&injector);
  FabricControllerOptions options;
  options.max_retries = 2;
  options.breaker_threshold = 2;
  options.breaker_cooldown = 3;
  FabricController controller(bus, options);
  controller.Register(0, &agent);
  const std::map<int, std::map<int, int>> target = {{0, {{0, 1}}}};
  EXPECT_FALSE(controller.ApplyTopology(target).ok);
  EXPECT_FALSE(controller.ApplyTopology(target).ok);
  EXPECT_EQ(controller.breaker_state(0), BreakerState::kOpen);
  // Open breaker: the transaction fails fast instead of burning retries.
  const auto fast = controller.ApplyTopology(target);
  EXPECT_FALSE(fast.ok);
  EXPECT_EQ(fast.retries_used, 0);
  EXPECT_GE(injector.fail_stops(), 1u);
  EXPECT_TRUE(sw.CurrentMapping().empty());
  EXPECT_TRUE(sw.ValidateInvariants().ok());
}

TEST(Chaos, FaultStreamsAreIndependent) {
  // Enabling one fault class must not perturb another's decision sequence:
  // the injector draws each class from its own counter-based stream.
  FaultProfile base = BrownoutProfile();
  FaultProfile with_mirror = base;
  with_mirror.mirror_death_prob = 1.0;
  FaultInjector plain(42, base);
  FaultInjector noisy(42, with_mirror);
  ocs::PalomarSwitch scratch(5);
  for (int i = 0; i < 500; ++i) {
    if (i % 17 == 0) {
      noisy.BeforeReconfigure(scratch, {{i % kPorts, (i + 1) % kPorts}});
    }
    EXPECT_EQ(plain.OnFrame(), noisy.OnFrame()) << i;
  }
  EXPECT_GT(noisy.mirror_deaths(), 0u);
}

}  // namespace
}  // namespace lightwave::ctrl
