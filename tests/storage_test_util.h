// Shared tmpdir scaffolding for the file-backed durability tests
// (journal_test, svc_test, fleet_test): a per-test temporary directory for
// FileStorage devices, removed recursively on destruction.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>

namespace lightwave::testutil {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/lw_storage_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    dir_ = dir == nullptr ? "" : dir;
  }
  ~TempDir() {
    if (!dir_.empty()) {
      std::error_code ec;  // best-effort; never throw from a test teardown
      std::filesystem::remove_all(dir_, ec);
    }
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  bool ok() const { return !dir_.empty(); }
  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

}  // namespace lightwave::testutil
