// Tests for the scale-out machinery: multipod hybrid ICI-DCN training
// (§2.2.2) and the phase-reconfiguration study (§6).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/multipod.h"
#include "sim/phase_reconfig.h"

namespace lightwave::sim {
namespace {

// --- multipod ------------------------------------------------------------------

TEST(Multipod, SinglePodHasNoDcnComponent) {
  MultipodTrainer trainer;
  MultipodConfig config;
  config.pods = 1;
  const auto step = trainer.StepTime(Llm1(), config);
  EXPECT_EQ(step.dcn_allreduce_us, 0.0);
  EXPECT_EQ(step.dcn_exposed_us, 0.0);
  EXPECT_GT(step.intra_pod_us, 0.0);
  EXPECT_DOUBLE_EQ(step.total_us, step.intra_pod_us);
}

TEST(Multipod, IciToDcnBandwidthRatioInPaperRange) {
  // §2.2: "the scale-up ICI within a superpod provides 50-100x more
  // bandwidth than the DCN".
  MultipodTrainer trainer;
  MultipodConfig config;
  const auto step = trainer.StepTime(Llm1(), config);
  EXPECT_GE(step.ici_to_dcn_ratio, 50.0);
  EXPECT_LE(step.ici_to_dcn_ratio, 150.0);
}

TEST(Multipod, EngineeredDcnBeatsUniformMesh) {
  MultipodTrainer trainer;
  MultipodConfig engineered;
  engineered.pods = 8;
  MultipodConfig uniform = engineered;
  uniform.dcn_mode = MultipodConfig::DcnMode::kUniformMesh;
  const auto e = trainer.StepTime(Llm1(), engineered);
  const auto u = trainer.StepTime(Llm1(), uniform);
  // The engineered ring concentrates uplink bandwidth on the two
  // neighbours: (pods-1)/2 more per-hop bandwidth.
  EXPECT_LT(e.dcn_allreduce_us, u.dcn_allreduce_us);
  EXPECT_LE(e.total_us, u.total_us);
}

TEST(Multipod, RingBandwidthFormulas) {
  MultipodConfig config;
  config.pods = 8;
  config.dcn_gbps_per_pod = 8000.0;
  config.dcn_mode = MultipodConfig::DcnMode::kUniformMesh;
  EXPECT_NEAR(MultipodTrainer::PodRingBandwidthGbps(config), 8000.0 / 7.0, 1e-9);
  config.dcn_mode = MultipodConfig::DcnMode::kEngineered;
  EXPECT_NEAR(MultipodTrainer::PodRingBandwidthGbps(config), 4000.0, 1e-9);
  config.pods = 2;
  EXPECT_NEAR(MultipodTrainer::PodRingBandwidthGbps(config), 8000.0, 1e-9);
}

TEST(Multipod, MorePodsShrinkIntraPodTimeButAddDcn) {
  MultipodTrainer trainer;
  MultipodConfig one;
  one.pods = 1;
  MultipodConfig four;
  four.pods = 4;
  const auto s1 = trainer.StepTime(Llm1(), one);
  const auto s4 = trainer.StepTime(Llm1(), four);
  // Each pod processes 1/4 of the batch: intra-pod time shrinks.
  EXPECT_LT(s4.intra_pod_us, s1.intra_pod_us);
  // The cross-pod gradient all-reduce is on the critical path (§2.2.2).
  EXPECT_GT(s4.dcn_allreduce_us, 0.0);
  // Net: scaling out helps wall-clock per step here.
  EXPECT_LT(s4.total_us, s1.total_us);
}

TEST(Multipod, ThroughputConsistent) {
  MultipodTrainer trainer;
  MultipodConfig config;
  config.pods = 4;
  const auto step = trainer.StepTime(Llm0(), config);
  EXPECT_NEAR(step.throughput_seq_per_s, Llm0().global_batch / (step.total_us * 1e-6),
              1e-6);
}

TEST(Multipod, RingBandwidthContractsRejectBadConfigs) {
  // multipod.cpp's contracts route through the pluggable handler instead of
  // assert(); a recording handler observes them without aborting. The
  // engineered mode keeps the continued execution well-defined after the
  // handler returns.
  std::vector<common::CheckFailure> failures;
  common::ScopedCheckHandler scoped(
      [&](const common::CheckFailure& f) { failures.push_back(f); });
  MultipodConfig config;
  config.dcn_mode = MultipodConfig::DcnMode::kEngineered;
  config.pods = 1;  // a ring needs at least two pods
  MultipodTrainer::PodRingBandwidthGbps(config);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].kind, common::CheckKind::kCheck);

  failures.clear();
  config.pods = 4;
  config.dcn_gbps_per_pod = -1.0;  // non-positive uplink rate
  MultipodTrainer::PodRingBandwidthGbps(config);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].kind, common::CheckKind::kCheck);
}

// --- phase reconfiguration -----------------------------------------------------

std::vector<TrainingPhase> TwoPhaseJob(int steps) {
  // A data-heavy phase and a model-heavy phase with different optima.
  return {
      TrainingPhase{.workload = Llm1(), .steps = steps},   // wants 4x4x256
      TrainingPhase{.workload = Llm2(), .steps = steps},   // wants 16x16x16
  };
}

TEST(PhaseReconfig, PerPhaseShapesAreTheWorkloadOptima) {
  const auto result =
      EvaluatePhaseSchedule(TwoPhaseJob(10), 64, ReconfigurationCost{});
  ASSERT_EQ(result.per_phase_shapes.size(), 2u);
  EXPECT_EQ(result.per_phase_shapes[0].ToString(), "4x4x256");
  EXPECT_EQ(result.per_phase_shapes[1].ToString(), "16x16x16");
}

TEST(PhaseReconfig, ReconfigurationWinsForLongPhases) {
  // MEMS-class switching (~22 ms total) amortizes over multi-second steps
  // immediately.
  const auto result =
      EvaluatePhaseSchedule(TwoPhaseJob(10), 64, ReconfigurationCost{});
  EXPECT_GT(result.speedup, 1.2);
  EXPECT_GT(result.reconfig_overhead_us, 0.0);
}

TEST(PhaseReconfig, HugeSwitchCostFavorsFixedShape) {
  ReconfigurationCost glacial;
  glacial.switch_us = 1e12;  // pathological
  const auto result = EvaluatePhaseSchedule(TwoPhaseJob(1), 64, glacial);
  EXPECT_LT(result.speedup, 1.0);
}

TEST(PhaseReconfig, IdenticalPhasesNeverReconfigure) {
  std::vector<TrainingPhase> same = {
      TrainingPhase{.workload = Llm2(), .steps = 5},
      TrainingPhase{.workload = Llm2(), .steps = 5},
  };
  const auto result = EvaluatePhaseSchedule(same, 64, ReconfigurationCost{});
  EXPECT_EQ(result.reconfig_overhead_us, 0.0);
  EXPECT_NEAR(result.speedup, 1.0, 1e-9);
}

TEST(PhaseReconfig, FixedShapeIsBestCompromise) {
  const auto result =
      EvaluatePhaseSchedule(TwoPhaseJob(5), 64, ReconfigurationCost{});
  // The compromise must be at least as good as either phase's optimum run
  // for the whole job; sanity: it is one of the enumerated shapes and its
  // time is finite and above the reconfig strategy's compute-only time.
  EXPECT_GT(result.fixed_us, 0.0);
  EXPECT_GE(result.fixed_us, result.reconfig_us - result.reconfig_overhead_us);
}

TEST(PhaseReconfig, CrossoverShrinksWithFasterSwitching) {
  ReconfigurationCost mems;        // ~22 ms
  ReconfigurationCost microsec;    // future piezo/SiPh-class
  microsec.switch_us = 100.0;
  microsec.link_bringup_us = 10.0;
  const auto phases = TwoPhaseJob(1);
  const int slow = CrossoverStepsPerPhase(phases, 64, mems);
  const int fast = CrossoverStepsPerPhase(phases, 64, microsec);
  ASSERT_GT(slow, 0);
  ASSERT_GT(fast, 0);
  EXPECT_LE(fast, slow);
}

TEST(PhaseReconfig, CrossoverNeverWhenShapesAgree) {
  std::vector<TrainingPhase> same = {
      TrainingPhase{.workload = Llm0(), .steps = 1},
      TrainingPhase{.workload = Llm0(), .steps = 1},
  };
  EXPECT_EQ(CrossoverStepsPerPhase(same, 64, ReconfigurationCost{}), -1);
}

}  // namespace
}  // namespace lightwave::sim
