// Contracts library (common/check.h): macro semantics, streamed messages,
// source locations, handler plumbing, ensure/fatal accounting, validation
// mode, and the telemetry sink.
#include "common/check.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/result.h"
#include "telemetry/check_sink.h"
#include "telemetry/hub.h"

namespace lightwave {
namespace {

/// Records every failure the handler sees (and never aborts).
struct Recorder {
  std::vector<common::CheckFailure> failures;

  common::ScopedCheckHandler Install() {
    return common::ScopedCheckHandler(
        [this](const common::CheckFailure& f) { failures.push_back(f); });
  }
};

TEST(Check, PassingContractsAreSilent) {
  Recorder recorder;
  auto guard = recorder.Install();
  LW_CHECK(1 + 1 == 2) << "never evaluated";
  LW_CHECK_OK(common::Status::Ok());
  LW_DCHECK(true);
  EXPECT_TRUE(LW_ENSURE(true));
  EXPECT_TRUE(recorder.failures.empty());
}

TEST(Check, FailureCarriesConditionLocationAndMessage) {
  Recorder recorder;
  auto guard = recorder.Install();
  const int port = 212;
  LW_CHECK(port < 136) << "port " << port << " out of range";
  ASSERT_EQ(recorder.failures.size(), 1u);
  const auto& f = recorder.failures[0];
  EXPECT_EQ(f.kind, common::CheckKind::kCheck);
  EXPECT_STREQ(f.condition, "port < 136");
  EXPECT_NE(std::string(f.where.file).find("check_test.cpp"), std::string::npos);
  EXPECT_GT(f.where.line, 0);
  EXPECT_EQ(f.message, "port 212 out of range");
  const std::string formatted = common::FormatCheckFailure(f);
  EXPECT_NE(formatted.find("LW_check failed"), std::string::npos);
  EXPECT_NE(formatted.find("port 212"), std::string::npos);
}

TEST(Check, CheckOkStreamsTheError) {
  Recorder recorder;
  auto guard = recorder.Install();
  LW_CHECK_OK(common::Status(common::NotFound("no connection on north 7")))
      << "while disconnecting";
  ASSERT_EQ(recorder.failures.size(), 1u);
  EXPECT_NE(recorder.failures[0].message.find("not-found"), std::string::npos);
  EXPECT_NE(recorder.failures[0].message.find("no connection on north 7"),
            std::string::npos);
  EXPECT_NE(recorder.failures[0].message.find("while disconnecting"), std::string::npos);
}

TEST(Check, CheckOkWorksOnResults) {
  Recorder recorder;
  auto guard = recorder.Install();
  LW_CHECK_OK(common::Result<int>(7));
  EXPECT_TRUE(recorder.failures.empty());
  LW_CHECK_OK(common::Result<int>(common::Internal("boom")));
  ASSERT_EQ(recorder.failures.size(), 1u);
  EXPECT_NE(recorder.failures[0].message.find("boom"), std::string::npos);
}

TEST(Check, DcheckFollowsBuildType) {
  Recorder recorder;
  auto guard = recorder.Install();
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return false;
  };
  LW_DCHECK(touch()) << "debug-only";
  if (common::kDchecksEnabled) {
    EXPECT_EQ(evaluations, 1);
    ASSERT_EQ(recorder.failures.size(), 1u);
    EXPECT_EQ(recorder.failures[0].kind, common::CheckKind::kDcheck);
  } else {
    // Stripped: the condition must not even be evaluated.
    EXPECT_EQ(evaluations, 0);
    EXPECT_TRUE(recorder.failures.empty());
  }
}

TEST(Check, EnsureReturnsConditionAndNeverAborts) {
  Recorder recorder;
  auto guard = recorder.Install();
  const auto before = common::GetCheckStats();
  EXPECT_TRUE(LW_ENSURE(2 > 1));
  EXPECT_FALSE(LW_ENSURE(1 > 2));
  EXPECT_FALSE(LW_ENSURE(1 > 2));
  ASSERT_EQ(recorder.failures.size(), 2u);
  EXPECT_EQ(recorder.failures[0].kind, common::CheckKind::kEnsure);
  const auto after = common::GetCheckStats();
  EXPECT_EQ(after.ensure_failures - before.ensure_failures, 2u);
  EXPECT_EQ(after.fatal_failures, before.fatal_failures);
}

TEST(Check, UnreachableFires) {
  Recorder recorder;
  auto guard = recorder.Install();
  const auto before = common::GetCheckStats();
  LW_UNREACHABLE() << "impossible enum value " << 42;
  ASSERT_EQ(recorder.failures.size(), 1u);
  EXPECT_EQ(recorder.failures[0].kind, common::CheckKind::kUnreachable);
  EXPECT_EQ(recorder.failures[0].message, "impossible enum value 42");
  EXPECT_EQ(common::GetCheckStats().fatal_failures - before.fatal_failures, 1u);
}

TEST(Check, ScopedHandlerRestoresThePrevious) {
  Recorder outer;
  auto outer_guard = outer.Install();
  {
    Recorder inner;
    auto inner_guard = inner.Install();
    LW_CHECK(false) << "seen by inner";
    EXPECT_EQ(inner.failures.size(), 1u);
  }
  LW_CHECK(false) << "seen by outer";
  ASSERT_EQ(outer.failures.size(), 1u);
  EXPECT_EQ(outer.failures[0].message, "seen by outer");
}

TEST(Check, ValidationModeToggles) {
  common::SetValidationEnabled(false);
  EXPECT_FALSE(common::ValidationEnabled());
  {
    common::ScopedValidation validation(true);
    EXPECT_TRUE(common::ValidationEnabled());
  }
  EXPECT_FALSE(common::ValidationEnabled());
}

TEST(Check, TelemetrySinkCountsByKind) {
  telemetry::Hub hub;
  {
    telemetry::CheckTelemetrySink sink(&hub);
    (void)LW_ENSURE(false);
    (void)LW_ENSURE(false);
    LW_CHECK(false) << "counted, not fatal under the sink";
  }
  auto& ensure_counter = hub.metrics().GetCounter("lightwave_check_failures_total",
                                                  {{"kind", "ensure"}});
  auto& check_counter = hub.metrics().GetCounter("lightwave_check_failures_total",
                                                 {{"kind", "check"}});
  EXPECT_EQ(ensure_counter.value(), 2u);
  EXPECT_EQ(check_counter.value(), 1u);
  // Sink uninstalled: a fresh recorder sees subsequent failures.
  Recorder recorder;
  auto guard = recorder.Install();
  (void)LW_ENSURE(false);
  EXPECT_EQ(recorder.failures.size(), 1u);
  EXPECT_EQ(ensure_counter.value(), 2u);
}

TEST(CheckDeath, DefaultHandlerAbortsOnFatalContracts) {
  EXPECT_DEATH({ LW_CHECK(false) << "fatal by default"; }, "LW_check failed");
}

TEST(CheckDeath, DefaultHandlerToleratesEnsure) {
  // kEnsure only logs; the process must stay alive and report cleanly.
  EXPECT_FALSE(LW_ENSURE(false));
  SUCCEED();
}

}  // namespace
}  // namespace lightwave
