// Cross-module integration tests: full pod lifecycle through the
// FabricManager, optical quality of scheduled slices end-to-end (OCS path ->
// link budget -> PHY -> FEC), failure-recovery flows, and the DCN
// topology-engineering pipeline from demand to per-OCS matchings applied to
// real switches.
#include <gtest/gtest.h>

#include <map>

#include "core/fabric_manager.h"
#include "core/topology_engineer.h"
#include "ctrl/controller.h"
#include "fec/concatenated.h"
#include "ocs/palomar.h"
#include "optics/link_budget.h"
#include "phy/ber_model.h"
#include "sim/availability.h"
#include "sim/collective.h"
#include "sim/llm_model.h"

namespace lightwave {
namespace {

using core::AllocationPolicy;
using core::FabricManager;
using core::FabricManagerConfig;
using tpu::SliceShape;

TEST(Integration, FullPodLifecycle) {
  FabricManager manager;  // production-size: 64 cubes, 48 OCSes
  // Install three differently-shaped slices: 16 + 16 + 32 cubes = full pod.
  auto a = manager.CreateSlice(SliceShape{2, 2, 4});
  auto b = manager.CreateSlice(SliceShape{1, 4, 4});
  auto c = manager.CreateSlice(SliceShape{2, 4, 4});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(manager.pod().FreeHealthyCubes().empty());
  // Full pod is rejected now.
  EXPECT_FALSE(manager.CreateSlice(SliceShape{4, 4, 4}).ok());
  // Tear down two, then the full pod still doesn't fit (32 cubes busy)...
  ASSERT_TRUE(manager.DestroySlice(a.value()).ok());
  ASSERT_TRUE(manager.DestroySlice(b.value()).ok());
  EXPECT_FALSE(manager.CreateSlice(SliceShape{4, 4, 4}).ok());
  // ...until the last one goes.
  ASSERT_TRUE(manager.DestroySlice(c.value()).ok());
  auto full = manager.CreateSlice(SliceShape{4, 4, 4});
  EXPECT_TRUE(full.ok());
}

TEST(Integration, ScheduledSliceClosesOpticalLinkBudget) {
  // End-to-end: schedule a slice, survey every programmed OCS path, push
  // each through the bidi link budget + PHY + concatenated FEC, and require
  // production-grade quality (Fig. 13: all ports below threshold with
  // margin).
  FabricManager manager;
  ASSERT_TRUE(manager.CreateSlice(SliceShape{4, 4, 4}).ok());
  const auto reports = manager.SurveyLinkQuality(optics::Cwdm4Bidi());
  EXPECT_EQ(reports.size(), 48u * 64u);
  const fec::ConcatenatedFec fec;
  const double channel_limit = fec.ChannelBerThreshold(/*inner_enabled=*/true);
  int below_kp4 = 0;
  for (const auto& r : reports) {
    EXPECT_LT(r.pre_fec_ber, channel_limit);
    below_kp4 += r.pre_fec_ber < phy::kKp4BerThreshold ? 1 : 0;
    // Post-FEC: error-free for practical purposes.
    EXPECT_LT(fec.PostFecBer(r.pre_fec_ber, true), 1e-15);
  }
  // The overwhelming majority of ports sit below the bare KP4 threshold.
  EXPECT_GT(below_kp4, static_cast<int>(reports.size() * 99 / 100));
}

TEST(Integration, CubeFailureRepairPreservesOtherSlices) {
  FabricManagerConfig config;
  config.seed = 3;
  FabricManager manager(config);
  auto victim_slice = manager.CreateSlice(SliceShape{2, 2, 2});
  auto bystander = manager.CreateSlice(SliceShape{2, 2, 2});
  ASSERT_TRUE(victim_slice.ok());
  ASSERT_TRUE(bystander.ok());

  // Snapshot the bystander's switch state.
  const auto before = manager.pod().slices().at(bystander.value()).connections;

  const int dead_cube =
      manager.pod().slices().at(victim_slice.value()).topology.cube_ids()[3];
  auto repaired = manager.HandleCubeFailure(dead_cube);
  ASSERT_TRUE(repaired.ok());

  // Bystander untouched: same connections still installed on the switches.
  for (const auto& [ocs_id, conns] : before) {
    for (const auto& [n, s] : conns) {
      ASSERT_TRUE(manager.pod().ocs(ocs_id).ConnectionOn(n).has_value());
      EXPECT_EQ(manager.pod().ocs(ocs_id).ConnectionOn(n)->south, s);
    }
  }
  EXPECT_FALSE(manager.pod().SliceDegraded(bystander.value()));
  EXPECT_FALSE(manager.pod().SliceDegraded(repaired.value()));
}

TEST(Integration, LlmPlacementPicksShapeAndInstalls) {
  // The production flow of §4.2.1: rank shapes for the workload, install
  // the winner, run a collective on it.
  FabricManager manager;
  const sim::LlmPerfModel model;
  const auto ranked = model.RankShapes(sim::Llm1(), 64);
  const auto best = ranked.front().shape;
  EXPECT_EQ(best.ToString(), "4x4x256");
  auto id = manager.CreateSlice(best);
  ASSERT_TRUE(id.ok());
  // The slice's all-reduce completes in bounded time (event-driven sim).
  const double time_us = sim::SimulateTorusAllReduce(best, 256e6);
  EXPECT_GT(time_us, 0.0);
  const auto analytic = sim::TorusAllReduce(best, 256e6);
  EXPECT_NEAR(time_us, analytic.time_us, analytic.time_us * 0.02);
}

TEST(Integration, TopologyEngineeringDrivesRealSwitches) {
  // DCN pipeline: demand -> trunks -> per-OCS matchings -> ReconfigureRequest
  // messages -> Palomar switches, via the retrying controller.
  const int blocks = 16, ocs_count = 8;
  common::Rng rng(5);
  const auto demand = sim::HotspotTraffic(blocks, 6000.0, 4, 0.5, rng);
  core::TopologyEngineer engineer(blocks, ocs_count, 400.0);
  engineer.Engineer(demand);

  std::vector<std::unique_ptr<ocs::PalomarSwitch>> switches;
  std::vector<std::unique_ptr<ctrl::OcsAgent>> agents;
  ctrl::MessageBus bus(6);
  bus.SetDropProbability(0.2);
  ctrl::FabricController controller(bus, /*max_retries=*/20);
  for (int i = 0; i < ocs_count; ++i) {
    switches.push_back(std::make_unique<ocs::PalomarSwitch>(1000 + i));
    agents.push_back(std::make_unique<ctrl::OcsAgent>(*switches.back()));
    controller.Register(i, agents.back().get());
  }

  // Each matched pair (a, b) becomes the bidirectional pair of
  // cross-connects a->b and b->a on that OCS.
  std::map<int, std::map<int, int>> targets;
  const auto& decomposition = engineer.decomposition();
  for (int i = 0; i < ocs_count; ++i) {
    for (const auto& [a, b] : decomposition.per_ocs[static_cast<std::size_t>(i)]) {
      targets[i][a] = b;
      targets[i][b] = a;
    }
  }
  const auto result = controller.ApplyTopology(targets);
  ASSERT_TRUE(result.ok) << result.error;
  int installed = 0;
  for (const auto& sw : switches) installed += sw->ConnectionCount();
  EXPECT_EQ(installed, 2 * decomposition.placed_links);
}

TEST(Integration, AvailabilityPipelineConsistency) {
  // The Fig. 15 analytic pipeline agrees with direct pod simulation: fail
  // hosts at the modeled rate, measure composable slices.
  const double server_availability = 0.995;
  const int slice_cubes = 8;
  const int committed =
      sim::CommittedSlicesReconfigurable(server_availability, slice_cubes);
  EXPECT_GT(committed, 0);
  const auto mc =
      sim::SimulateAvailability(server_availability, slice_cubes, committed, 5000, 11);
  EXPECT_GE(mc.reconfig_success_rate, 0.96);
  EXPECT_GE(mc.reconfig_success_rate, mc.static_success_rate);
}

TEST(Integration, SchedulerKeepsFabricConsistentUnderChurn) {
  // Long mixed workload with failures; afterwards every remaining slice's
  // connections are exactly present and bijective on every switch.
  tpu::Superpod pod(12);
  core::WorkloadConfig config;
  config.sim_hours = 300.0;
  config.arrival_rate_per_hour = 6.0;
  config.mean_duration_hours = 6.0;
  config.cube_mtbf_hours = 2000.0;
  const auto result =
      core::SimulateWorkload(pod, AllocationPolicy::kReconfigurable, config);
  EXPECT_GT(result.submitted, 0u);

  // Consistency audit.
  for (const auto& [id, slice] : pod.slices()) {
    for (const auto& [ocs_id, conns] : slice.connections) {
      for (const auto& [n, s] : conns) {
        ASSERT_TRUE(pod.ocs(ocs_id).ConnectionOn(n).has_value())
            << "slice " << id << " missing connection on ocs " << ocs_id;
        EXPECT_EQ(pod.ocs(ocs_id).ConnectionOn(n)->south, s);
      }
    }
  }
  // No orphan connections: every installed connection belongs to a slice.
  int slice_conns = 0;
  for (const auto& [id, slice] : pod.slices()) {
    for (const auto& [ocs_id, conns] : slice.connections) {
      slice_conns += static_cast<int>(conns.size());
    }
  }
  int switch_conns = 0;
  for (int i = 0; i < pod.ocs_count(); ++i) switch_conns += pod.ocs(i).ConnectionCount();
  EXPECT_EQ(slice_conns, switch_conns);
}

}  // namespace
}  // namespace lightwave
