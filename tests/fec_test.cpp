// Unit and property tests for the FEC stack: GF(2^10) arithmetic, the
// RS(544,514) KP4 codec (encode/decode round-trips, correction up to t=15,
// failure beyond), the inner soft-decision code model, and the concatenated
// pipeline thresholds (Fig. 12).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "common/rng.h"
#include "fec/concatenated.h"
#include "fec/gf.h"
#include "fec/inner_code.h"
#include "fec/interleaver.h"
#include "fec/reed_solomon.h"

namespace lightwave::fec {
namespace {

using Element = Gf1024::Element;

// --- gf ----------------------------------------------------------------------

TEST(Gf, MulByZeroAndOne) {
  const auto& gf = Gf1024::Instance();
  EXPECT_EQ(gf.Mul(0, 123), 0);
  EXPECT_EQ(gf.Mul(123, 0), 0);
  EXPECT_EQ(gf.Mul(1, 123), 123);
}

TEST(Gf, AddIsXor) {
  const auto& gf = Gf1024::Instance();
  EXPECT_EQ(gf.Add(0b1010, 0b0110), 0b1100);
  EXPECT_EQ(gf.Add(55, 55), 0);
}

TEST(Gf, MulCommutativeAssociative) {
  const auto& gf = Gf1024::Instance();
  common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Element>(rng.UniformInt(1024));
    const auto b = static_cast<Element>(rng.UniformInt(1024));
    const auto c = static_cast<Element>(rng.UniformInt(1024));
    EXPECT_EQ(gf.Mul(a, b), gf.Mul(b, a));
    EXPECT_EQ(gf.Mul(gf.Mul(a, b), c), gf.Mul(a, gf.Mul(b, c)));
  }
}

TEST(Gf, Distributive) {
  const auto& gf = Gf1024::Instance();
  common::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Element>(rng.UniformInt(1024));
    const auto b = static_cast<Element>(rng.UniformInt(1024));
    const auto c = static_cast<Element>(rng.UniformInt(1024));
    EXPECT_EQ(gf.Mul(a, gf.Add(b, c)), gf.Add(gf.Mul(a, b), gf.Mul(a, c)));
  }
}

TEST(Gf, InverseProperty) {
  const auto& gf = Gf1024::Instance();
  for (Element a = 1; a < Gf1024::kFieldSize; ++a) {
    EXPECT_EQ(gf.Mul(a, gf.Inv(a)), 1) << "a=" << a;
  }
}

TEST(Gf, DivMatchesMulByInverse) {
  const auto& gf = Gf1024::Instance();
  common::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<Element>(rng.UniformInt(1024));
    const auto b = static_cast<Element>(1 + rng.UniformInt(1023));
    EXPECT_EQ(gf.Div(a, b), gf.Mul(a, gf.Inv(b)));
  }
}

TEST(Gf, AlphaGeneratesWholeGroup) {
  const auto& gf = Gf1024::Instance();
  std::vector<bool> seen(Gf1024::kFieldSize, false);
  for (int e = 0; e < Gf1024::kGroupOrder; ++e) {
    const Element x = gf.AlphaPow(e);
    EXPECT_FALSE(seen[x]) << "alpha^" << e << " repeats";
    seen[x] = true;
  }
  EXPECT_FALSE(seen[0]);  // zero is not a power of alpha
}

TEST(Gf, PowAndLogConsistent) {
  const auto& gf = Gf1024::Instance();
  const Element a = gf.AlphaPow(17);
  EXPECT_EQ(gf.Log(a), 17);
  EXPECT_EQ(gf.Pow(a, 3), gf.AlphaPow(51));
  EXPECT_EQ(gf.Pow(a, 0), 1);
}

TEST(Gf, AlphaPowHandlesNegative) {
  const auto& gf = Gf1024::Instance();
  EXPECT_EQ(gf.Mul(gf.AlphaPow(-5), gf.AlphaPow(5)), 1);
}

// --- reed-solomon ---------------------------------------------------------------

std::vector<Element> RandomData(common::Rng& rng, int k) {
  std::vector<Element> data(static_cast<std::size_t>(k));
  for (auto& s : data) s = static_cast<Element>(rng.UniformInt(Gf1024::kFieldSize));
  return data;
}

TEST(ReedSolomonTest, Kp4Parameters) {
  const auto rs = ReedSolomon::Kp4();
  EXPECT_EQ(rs.n(), 544);
  EXPECT_EQ(rs.k(), 514);
  EXPECT_EQ(rs.t(), 15);
}

TEST(ReedSolomonTest, EncodeIsSystematicCodeword) {
  common::Rng rng(11);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  const auto codeword = rs.Encode(data);
  ASSERT_EQ(static_cast<int>(codeword.size()), rs.n());
  for (int i = 0; i < rs.k(); ++i) {
    EXPECT_EQ(codeword[static_cast<std::size_t>(i)], data[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(rs.IsCodeword(codeword));
}

TEST(ReedSolomonTest, CleanDecodeIsNoOp) {
  common::Rng rng(13);
  const auto rs = ReedSolomon::Kp4();
  const auto codeword = rs.Encode(RandomData(rng, rs.k()));
  const auto outcome = rs.Decode(codeword);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().corrected_symbols, 0);
  EXPECT_EQ(outcome.value().codeword, codeword);
}

class RsErrorSweep : public ::testing::TestWithParam<int> {};

TEST_P(RsErrorSweep, CorrectsUpToTErrors) {
  const int errors = GetParam();
  common::Rng rng(100 + static_cast<std::uint64_t>(errors));
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  auto corrupted = rs.Encode(data);
  const auto original = corrupted;
  // Corrupt `errors` distinct positions.
  std::vector<int> positions;
  while (static_cast<int>(positions.size()) < errors) {
    const int pos = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(rs.n())));
    if (std::find(positions.begin(), positions.end(), pos) == positions.end()) {
      positions.push_back(pos);
      corrupted[static_cast<std::size_t>(pos)] ^=
          static_cast<Element>(1 + rng.UniformInt(1023));
    }
  }
  const auto outcome = rs.Decode(corrupted);
  ASSERT_TRUE(outcome.ok()) << "errors=" << errors;
  EXPECT_EQ(outcome.value().corrected_symbols, errors);
  EXPECT_EQ(outcome.value().codeword, original);
}

INSTANTIATE_TEST_SUITE_P(ErrorCounts, RsErrorSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 12, 14, 15));

TEST(ReedSolomonTest, DetectsBeyondT) {
  common::Rng rng(17);
  const auto rs = ReedSolomon::Kp4();
  // With t+5 random errors the bounded-distance decoder overwhelmingly
  // detects the overload (miscorrection probability is tiny for RS over a
  // 1024-ary alphabet); verify on several trials that decode never returns
  // a wrong "success" silently.
  int detected = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const auto data = RandomData(rng, rs.k());
    auto corrupted = rs.Encode(data);
    for (int e = 0; e < rs.t() + 5; ++e) {
      const int pos = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(rs.n())));
      corrupted[static_cast<std::size_t>(pos)] ^=
          static_cast<Element>(1 + rng.UniformInt(1023));
    }
    const auto outcome = rs.Decode(corrupted);
    if (!outcome.ok()) {
      ++detected;
    } else {
      // If it "succeeded", it must be a valid codeword (possibly a
      // miscorrection to a different codeword, which bounded-distance
      // decoding permits).
      EXPECT_TRUE(rs.IsCodeword(outcome.value().codeword));
    }
  }
  EXPECT_GE(detected, trials - 1);
}

TEST(ReedSolomonTest, SmallCodeRoundTrip) {
  // A short RS(20,14), t=3 exercises non-KP4 parameters.
  common::Rng rng(19);
  const ReedSolomon rs(20, 14);
  EXPECT_EQ(rs.t(), 3);
  const auto data = RandomData(rng, rs.k());
  auto codeword = rs.Encode(data);
  codeword[3] ^= 0x155;
  codeword[17] ^= 0x2A;
  codeword[9] ^= 0x001;
  const auto outcome = rs.Decode(codeword);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().corrected_symbols, 3);
  for (int i = 0; i < rs.k(); ++i) {
    EXPECT_EQ(outcome.value().codeword[static_cast<std::size_t>(i)],
              data[static_cast<std::size_t>(i)]);
  }
}

TEST(ReedSolomonTest, RejectsWrongLength) {
  const auto rs = ReedSolomon::Kp4();
  EXPECT_FALSE(rs.Decode(std::vector<Element>(100)).ok());
}

TEST(ReedSolomonTest, BurstErrorWithinT) {
  common::Rng rng(23);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  auto corrupted = rs.Encode(data);
  for (int i = 100; i < 115; ++i) corrupted[static_cast<std::size_t>(i)] ^= 0x3FF;
  const auto outcome = rs.Decode(corrupted);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().corrected_symbols, 15);
}

TEST(ReedSolomonTest, ParityOnlyCorruption) {
  common::Rng rng(29);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  auto corrupted = rs.Encode(data);
  corrupted[540] ^= 0x111;  // parity region
  const auto outcome = rs.Decode(corrupted);
  ASSERT_TRUE(outcome.ok());
  for (int i = 0; i < rs.k(); ++i) {
    EXPECT_EQ(outcome.value().codeword[static_cast<std::size_t>(i)],
              data[static_cast<std::size_t>(i)]);
  }
}

// --- erasure decoding -----------------------------------------------------------

TEST(ReedSolomonErasures, PureErasuresUpTo2t) {
  common::Rng rng(41);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  auto corrupted = rs.Encode(data);
  const auto original = corrupted;
  std::vector<int> erasures;
  for (int i = 0; i < 2 * rs.t(); ++i) {
    const int pos = (i * 31 + 3) % rs.n();
    erasures.push_back(pos);
    corrupted[static_cast<std::size_t>(pos)] ^= static_cast<Element>(0x2AA);
  }
  const auto outcome = rs.DecodeWithErasures(corrupted, erasures);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().codeword, original);
  EXPECT_EQ(outcome.value().corrected_symbols, 2 * rs.t());
}

TEST(ReedSolomonErasures, ErasedPositionsThatWereActuallyFineStillDecode) {
  // Flagging healthy symbols as erasures must not corrupt them.
  common::Rng rng(43);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  const auto codeword = rs.Encode(data);
  auto corrupted = codeword;
  corrupted[100] ^= 0x111;
  const auto outcome = rs.DecodeWithErasures(corrupted, {100, 200, 300});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().codeword, codeword);
}

class ErasureMixSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ErasureMixSweep, CorrectsErrorsPlusErasuresWithinBudget) {
  const auto [errors, erasure_count] = GetParam();
  ASSERT_LE(2 * errors + erasure_count, 30);  // 2e + f <= 2t
  common::Rng rng(200 + static_cast<std::uint64_t>(errors * 37 + erasure_count));
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  auto corrupted = rs.Encode(data);
  const auto original = corrupted;
  std::vector<int> positions;
  while (static_cast<int>(positions.size()) < errors + erasure_count) {
    const int pos = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(rs.n())));
    if (std::find(positions.begin(), positions.end(), pos) == positions.end()) {
      positions.push_back(pos);
      corrupted[static_cast<std::size_t>(pos)] ^=
          static_cast<Element>(1 + rng.UniformInt(1023));
    }
  }
  const std::vector<int> erasures(positions.begin(), positions.begin() + erasure_count);
  const auto outcome = rs.DecodeWithErasures(corrupted, erasures);
  ASSERT_TRUE(outcome.ok()) << "e=" << errors << " f=" << erasure_count;
  EXPECT_EQ(outcome.value().codeword, original);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ErasureMixSweep,
    ::testing::Values(std::pair{0, 1}, std::pair{0, 30}, std::pair{1, 28}, std::pair{5, 20},
                      std::pair{10, 10}, std::pair{14, 2}, std::pair{15, 0}, std::pair{7, 16}));

TEST(ReedSolomonErasures, BeyondBudgetDetected) {
  common::Rng rng(47);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  auto corrupted = rs.Encode(data);
  // 10 erasures + 12 errors: 2*12 + 10 = 34 > 30.
  std::vector<int> positions;
  while (static_cast<int>(positions.size()) < 22) {
    const int pos = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(rs.n())));
    if (std::find(positions.begin(), positions.end(), pos) == positions.end()) {
      positions.push_back(pos);
      corrupted[static_cast<std::size_t>(pos)] ^=
          static_cast<Element>(1 + rng.UniformInt(1023));
    }
  }
  const std::vector<int> erasures(positions.begin(), positions.begin() + 10);
  const auto outcome = rs.DecodeWithErasures(corrupted, erasures);
  // Either detected as uncorrectable, or (rare bounded-distance behaviour)
  // miscorrected to some valid codeword.
  if (outcome.ok()) {
    EXPECT_TRUE(rs.IsCodeword(outcome.value().codeword));
  } else {
    SUCCEED();
  }
}

TEST(ReedSolomonErasures, RejectsBadArguments) {
  const auto rs = ReedSolomon::Kp4();
  std::vector<Element> word(static_cast<std::size_t>(rs.n()), 0);
  EXPECT_FALSE(rs.DecodeWithErasures(word, std::vector<int>(31, 0)).ok());
  EXPECT_FALSE(rs.DecodeWithErasures(word, {rs.n()}).ok());
  EXPECT_FALSE(rs.DecodeWithErasures(word, {-1}).ok());
}

TEST(ReedSolomonErasures, EmptyErasureListMatchesPlainDecode) {
  common::Rng rng(53);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  auto corrupted = rs.Encode(data);
  corrupted[7] ^= 0x3C;
  const auto plain = rs.Decode(corrupted);
  const auto with = rs.DecodeWithErasures(corrupted, {});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(plain.value().codeword, with.value().codeword);
}

// --- scratch / span APIs ---------------------------------------------------------

TEST(ReedSolomonScratch, EncodeIntoMatchesEncode) {
  common::Rng rng(61);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  const auto reference = rs.Encode(data);
  std::vector<Element> codeword(static_cast<std::size_t>(rs.n()), 0xFFF);
  rs.EncodeInto(data, codeword);
  EXPECT_EQ(codeword, reference);
}

TEST(ReedSolomonScratch, EncodeIntoAllowsAliasedDataPrefix) {
  common::Rng rng(62);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  const auto reference = rs.Encode(data);
  // Data already sitting in the codeword buffer's systematic prefix.
  std::vector<Element> codeword(static_cast<std::size_t>(rs.n()), 0);
  std::copy(data.begin(), data.end(), codeword.begin());
  rs.EncodeInto(std::span<const Element>(codeword.data(), data.size()), codeword);
  EXPECT_EQ(codeword, reference);
}

TEST(ReedSolomonScratch, DecodeInPlaceMatchesDecode) {
  common::Rng rng(63);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  const auto original = rs.Encode(data);
  auto corrupted = original;
  for (int e = 0; e < 9; ++e) {
    corrupted[static_cast<std::size_t>(e * 53 + 2)] ^= static_cast<Element>(0x2A + e);
  }
  const auto reference = rs.Decode(corrupted);
  ASSERT_TRUE(reference.ok());

  ReedSolomon::Scratch scratch;
  auto word = corrupted;
  const auto corrected = rs.DecodeInPlace(word, scratch);
  ASSERT_TRUE(corrected.ok());
  EXPECT_EQ(corrected.value(), reference.value().corrected_symbols);
  EXPECT_EQ(word, original);
}

TEST(ReedSolomonScratch, ScratchReuseAcrossWords) {
  common::Rng rng(64);
  const auto rs = ReedSolomon::Kp4();
  ReedSolomon::Scratch scratch;
  // A clean word, a corrupted word, then an uncorrectable one, all through
  // the same scratch: no state may leak between calls.
  const auto original = rs.Encode(RandomData(rng, rs.k()));
  auto word = original;
  ASSERT_TRUE(rs.DecodeInPlace(word, scratch).ok());
  EXPECT_EQ(word, original);

  auto corrupted = original;
  for (int e = 0; e < rs.t(); ++e) {
    corrupted[static_cast<std::size_t>(e * 31 + 1)] ^= static_cast<Element>(1 + e);
  }
  const auto fixed = rs.DecodeInPlace(corrupted, scratch);
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed.value(), rs.t());
  EXPECT_EQ(corrupted, original);

  auto hopeless = original;
  for (int e = 0; e < rs.t() + 8; ++e) {
    hopeless[static_cast<std::size_t>(e * 17 + 3)] ^= static_cast<Element>(0x101 + e);
  }
  EXPECT_FALSE(rs.DecodeInPlace(hopeless, scratch).ok());

  // And the scratch still works after a failure.
  auto again = original;
  again[5] ^= 0x1F;
  ASSERT_TRUE(rs.DecodeInPlace(again, scratch).ok());
  EXPECT_EQ(again, original);
}

TEST(ReedSolomonScratch, RejectsOutOfFieldSymbols) {
  common::Rng rng(65);
  const auto rs = ReedSolomon::Kp4();
  const auto data = RandomData(rng, rs.k());
  auto word = rs.Encode(data);
  word[10] = 0x400;  // 1024: outside GF(2^10)
  ReedSolomon::Scratch scratch;
  EXPECT_FALSE(rs.DecodeInPlace(word, scratch).ok());
  EXPECT_FALSE(rs.Decode(word).ok());
  EXPECT_FALSE(rs.DecodeWithErasures(word, {10}).ok());
}

// --- inner code -----------------------------------------------------------------

TEST(InnerCodeTest, QuadraticRegime) {
  const InnerCode inner;
  const double p = 1e-4;
  EXPECT_NEAR(inner.Transfer(p), inner.spec().coefficient * p * p, 1e-12);
}

TEST(InnerCodeTest, NeverWorsensChannel) {
  const InnerCode inner;
  for (double p : {1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.3}) {
    EXPECT_LE(inner.Transfer(p), p);
  }
}

TEST(InnerCodeTest, TransferMonotone) {
  const InnerCode inner;
  double prev = 0.0;
  for (double p = 1e-5; p < 0.3; p *= 2.0) {
    const double out = inner.Transfer(p);
    EXPECT_GE(out, prev);
    prev = out;
  }
}

TEST(InnerCodeTest, MaxChannelBerInvertsTransfer) {
  const InnerCode inner;
  const double target = 2e-4;
  const double max_in = inner.MaxChannelBer(target);
  EXPECT_NEAR(inner.Transfer(max_in), target, target * 0.01);
  EXPECT_GT(max_in, target);  // the inner code buys real channel margin
}

TEST(InnerCodeTest, LatencyBudget) {
  const InnerCode inner;
  // §3.3.2: < 20 ns at 200 Gb/s.
  EXPECT_LT(inner.LatencyNs(200.0), 20.0);
  EXPECT_GT(inner.LatencyNs(100.0), inner.LatencyNs(200.0));
}

// --- interleaver ---------------------------------------------------------------

TEST(Interleaver, RoundTripIdentity) {
  common::Rng rng(61);
  const BlockInterleaver il(4, 544);
  std::vector<Element> input(il.BlockSymbols());
  for (auto& s : input) s = static_cast<Element>(rng.UniformInt(1024));
  EXPECT_EQ(il.Deinterleave(il.Interleave(input)), input);
}

TEST(Interleaver, SpanRoundTripMatchesVectorApi) {
  common::Rng rng(62);
  const BlockInterleaver il(16, 544);
  std::vector<Element> input(il.BlockSymbols());
  for (auto& s : input) s = static_cast<Element>(rng.UniformInt(1024));
  // The span calls are allocation-free and must agree with the vector API.
  std::vector<Element> tx(il.BlockSymbols());
  std::vector<Element> back(il.BlockSymbols());
  il.InterleaveInto(input, tx);
  EXPECT_EQ(tx, il.Interleave(input));
  il.DeinterleaveInto(tx, back);
  EXPECT_EQ(back, input);
}

TEST(Interleaver, LaneWidthDepthInterleaveIsSoaTileLayout) {
  // depth == batch::kLaneWidth makes the column-major output exactly the
  // structure-of-arrays tile the batch RS kernels consume: symbol i of lane
  // l lands at tx[i * kLaneWidth + l].
  const int depth = batch::kLaneWidth;
  const int width = 5;
  const BlockInterleaver il(depth, width);
  std::vector<Element> input(il.BlockSymbols());
  for (std::size_t s = 0; s < input.size(); ++s) input[s] = static_cast<Element>(s);
  std::vector<Element> tx(il.BlockSymbols());
  il.InterleaveInto(input, tx);
  for (int i = 0; i < width; ++i) {
    for (int l = 0; l < depth; ++l) {
      EXPECT_EQ(tx[static_cast<std::size_t>(i * depth + l)],
                input[static_cast<std::size_t>(l * width + i)]);
    }
  }
}

TEST(Interleaver, SpreadsBurstAcrossRows) {
  const BlockInterleaver il(4, 544);
  EXPECT_EQ(il.WorstPerRowHits(40), 10);
  EXPECT_EQ(il.WorstPerRowHits(4), 1);
  EXPECT_EQ(il.WorstPerRowHits(5), 2);
  EXPECT_EQ(il.WorstPerRowHits(0), 0);
}

TEST(Interleaver, BurstBeyondTDecodesWhenInterleaved) {
  // A 48-symbol channel burst destroys a single KP4 frame (48 > t = 15) but
  // interleaved across 4 frames each sees only 12 errors — all decode.
  common::Rng rng(67);
  const auto rs = ReedSolomon::Kp4();
  const BlockInterleaver il(4, rs.n());

  std::vector<std::vector<Element>> frames;
  std::vector<Element> stream;
  for (int f = 0; f < 4; ++f) {
    const auto data = RandomData(rng, rs.k());
    frames.push_back(rs.Encode(data));
    stream.insert(stream.end(), frames.back().begin(), frames.back().end());
  }

  auto tx = il.Interleave(stream);
  for (int i = 500; i < 548; ++i) tx[static_cast<std::size_t>(i)] ^= 0x155;  // the burst
  const auto rx = il.Deinterleave(tx);

  for (int f = 0; f < 4; ++f) {
    std::vector<Element> frame(rx.begin() + f * rs.n(), rx.begin() + (f + 1) * rs.n());
    const auto outcome = rs.Decode(frame);
    ASSERT_TRUE(outcome.ok()) << "frame " << f;
    EXPECT_EQ(outcome.value().codeword, frames[static_cast<std::size_t>(f)]);
    EXPECT_LE(outcome.value().corrected_symbols, 12);
  }

  // Control: the same burst without interleaving kills one frame.
  auto raw = stream;
  for (int i = 500; i < 548; ++i) raw[static_cast<std::size_t>(i)] ^= 0x155;
  std::vector<Element> frame0(raw.begin(), raw.begin() + rs.n());
  EXPECT_FALSE(rs.Decode(frame0).ok());
}

// --- concatenated ---------------------------------------------------------------

TEST(Concatenated, OuterCodeStatsSane) {
  const auto stats = AnalyzeOuterCode(2e-4);
  EXPECT_GT(stats.symbol_error_rate, 2e-4);
  EXPECT_LT(stats.symbol_error_rate, 2.2e-3);
  EXPECT_LT(stats.frame_error_rate, 1e-12);
  EXPECT_LT(stats.post_fec_ber, 1e-13);
}

TEST(Concatenated, OuterFailsAtHighInputBer) {
  const auto stats = AnalyzeOuterCode(2e-2);
  EXPECT_GT(stats.frame_error_rate, 0.1);
}

TEST(Concatenated, ZeroInputBer) {
  const auto stats = AnalyzeOuterCode(0.0);
  EXPECT_EQ(stats.frame_error_rate, 0.0);
  EXPECT_EQ(stats.post_fec_ber, 0.0);
}

TEST(Concatenated, Kp4ThresholdNearPublished) {
  const ConcatenatedFec fec;
  const double threshold = fec.ChannelBerThreshold(/*inner_enabled=*/false);
  // The KP4 threshold quoted throughout the paper is 2e-4.
  EXPECT_GT(threshold, 1e-4);
  EXPECT_LT(threshold, 5e-4);
}

TEST(Concatenated, InnerCodeExtendsThreshold) {
  const ConcatenatedFec fec;
  const double without = fec.ChannelBerThreshold(false);
  const double with = fec.ChannelBerThreshold(true);
  EXPECT_GT(with, 4.0 * without);  // several times more channel-BER headroom
}

TEST(Concatenated, PostFecBerMonotoneInChannelBer) {
  const ConcatenatedFec fec;
  double prev = 0.0;
  for (double p = 1e-5; p < 1e-2; p *= 3.0) {
    const double out = fec.PostFecBer(p, true);
    EXPECT_GE(out, prev);
    prev = out;
  }
}

TEST(Concatenated, MonteCarloFrameErrorsMatchRegime) {
  const ConcatenatedFec fec;
  common::Rng rng(31);
  // Far below threshold: no frame errors in a small sample.
  EXPECT_EQ(fec.MeasureFrameErrorRate(1e-4, false, 30, rng), 0.0);
  // Far above threshold: nearly every frame fails.
  EXPECT_GT(fec.MeasureFrameErrorRate(3e-2, false, 30, rng), 0.9);
}

TEST(Concatenated, InnerCodeRescuesModerateChannel) {
  const ConcatenatedFec fec;
  common::Rng rng(37);
  // 4e-3 channel BER: bare KP4 loses almost every frame (analytic FER
  // ~0.98); the inner code brings the outer input down to ~2e-3 where
  // failures are still rare. 4e-3 sits far enough up the waterfall that a
  // 64-frame sample cannot straddle the bounds.
  EXPECT_GT(fec.MeasureFrameErrorRate(4e-3, false, 64, rng), 0.8);
  EXPECT_LT(fec.MeasureFrameErrorRate(4e-3, true, 64, rng), 0.2);
}

}  // namespace
}  // namespace lightwave::fec
