// Unit tests for the core control plane: the slice scheduler (both
// policies, repair, workload simulation), the DCN topology engineer (trunk
// allocation, matching decomposition, incremental reconfiguration), the TCO
// models, and the FabricManager facade.
#include <gtest/gtest.h>

#include <set>

#include "core/fabric_manager.h"
#include "core/scheduler.h"
#include "core/tco.h"
#include "core/topology_engineer.h"
#include "optics/transceiver.h"
#include "phy/ber_model.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"

namespace lightwave::core {
namespace {

using tpu::SliceShape;

// --- scheduler -------------------------------------------------------------------

TEST(Scheduler, ReconfigurablePlacesNonContiguous) {
  tpu::Superpod pod(1, 8, 2);
  SliceScheduler scheduler(pod, AllocationPolicy::kReconfigurable);
  // Occupy cubes 0..3 then free 1 and 3 -> fragmented free set {1,3,4..7}.
  auto a = scheduler.Allocate(SliceShape{1, 1, 2});
  auto b = scheduler.Allocate(SliceShape{1, 1, 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(scheduler.Release(a.value()).ok());
  // 6 free cubes, fragmented; a 6-cube slice must still fit.
  auto c = scheduler.Allocate(SliceShape{1, 2, 3});
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(scheduler.BusyCubes(), 8);
}

TEST(Scheduler, ContiguousRequiresAlignedBox) {
  tpu::Superpod pod(2);  // 64 cubes = 4x4x4 grid
  SliceScheduler scheduler(pod, AllocationPolicy::kContiguous);
  // 2x2x2 fits.
  EXPECT_TRUE(scheduler.Allocate(SliceShape{2, 2, 2}).ok());
  // 1x1x64 cannot fit in a 4x4x4 grid.
  EXPECT_FALSE(scheduler.Allocate(SliceShape{1, 1, 64}).ok());
}

TEST(Scheduler, ContiguousSuffersFragmentation) {
  tpu::Superpod pod_contig(3, 8, 2);
  tpu::Superpod pod_reconf(3, 8, 2);
  SliceScheduler contiguous(pod_contig, AllocationPolicy::kContiguous);
  SliceScheduler reconfigurable(pod_reconf, AllocationPolicy::kReconfigurable);
  // 8 cubes on a 2x2x2 grid. Occupy two diagonal cubes via 1-cube slices,
  // then ask for a 1x1x2 pair... the contiguous policy needs an adjacent
  // aligned pair; fragmentation created by single-cube jobs blocks larger
  // requests earlier than the reconfigurable policy.
  // Fill all 8 with singles, free a diagonal pair (0 and 7: never adjacent).
  std::vector<tpu::SliceId> singles;
  for (int i = 0; i < 8; ++i) {
    auto id = contiguous.Allocate(SliceShape{1, 1, 1});
    ASSERT_TRUE(id.ok());
    singles.push_back(id.value());
  }
  ASSERT_TRUE(contiguous.Release(singles[0]).ok());
  ASSERT_TRUE(contiguous.Release(singles[7]).ok());
  EXPECT_FALSE(contiguous.Allocate(SliceShape{1, 1, 2}).ok());

  // The reconfigurable fabric composes the same fragmented pair happily.
  std::vector<tpu::SliceId> singles2;
  for (int i = 0; i < 8; ++i) {
    auto id = reconfigurable.Allocate(SliceShape{1, 1, 1});
    ASSERT_TRUE(id.ok());
    singles2.push_back(id.value());
  }
  ASSERT_TRUE(reconfigurable.Release(singles2[0]).ok());
  ASSERT_TRUE(reconfigurable.Release(singles2[7]).ok());
  EXPECT_TRUE(reconfigurable.Allocate(SliceShape{1, 1, 2}).ok());
}

TEST(Scheduler, RepairSwapsDeadCube) {
  tpu::Superpod pod(4, 8, 2);
  SliceScheduler scheduler(pod, AllocationPolicy::kReconfigurable);
  auto id = scheduler.Allocate(SliceShape{1, 2, 2});
  ASSERT_TRUE(id.ok());
  const auto& cubes = pod.slices().at(id.value()).topology.cube_ids();
  const int victim = cubes[1];
  pod.cube(victim).SetHostHealth(0, false);
  auto repaired = scheduler.RepairSlice(id.value());
  ASSERT_TRUE(repaired.ok());
  // New slice has the same shape, excludes the victim, uses a spare.
  const auto& new_slice = pod.slices().at(repaired.value());
  EXPECT_EQ(new_slice.topology.shape(), (SliceShape{1, 2, 2}));
  for (int c : new_slice.topology.cube_ids()) EXPECT_NE(c, victim);
  EXPECT_EQ(scheduler.stats().repairs, 1u);
}

TEST(Scheduler, RepairFailsWithoutSpares) {
  tpu::Superpod pod(5, 8, 2);
  SliceScheduler scheduler(pod, AllocationPolicy::kReconfigurable);
  auto id = scheduler.Allocate(SliceShape{2, 2, 2});  // uses all 8 cubes
  ASSERT_TRUE(id.ok());
  pod.cube(0).SetHostHealth(0, false);
  EXPECT_FALSE(scheduler.RepairSlice(id.value()).ok());
}

TEST(Scheduler, StaticPolicyCannotRepair) {
  tpu::Superpod pod(6, 8, 2);
  SliceScheduler scheduler(pod, AllocationPolicy::kContiguous);
  auto id = scheduler.Allocate(SliceShape{1, 1, 2});
  ASSERT_TRUE(id.ok());
  pod.cube(pod.slices().at(id.value()).topology.cube_ids()[0]).SetHostHealth(0, false);
  EXPECT_FALSE(scheduler.RepairSlice(id.value()).ok());
}

TEST(Scheduler, WorkloadSimReconfigurableBeatsContiguous) {
  // The §4.2.4 ablation: same workload, higher acceptance and utilization
  // for the reconfigurable policy.
  WorkloadConfig config;
  config.sim_hours = 1500.0;
  config.arrival_rate_per_hour = 1.4;  // ~80% offered cube load
  config.mean_duration_hours = 8.0;
  tpu::Superpod pod_a(7);
  tpu::Superpod pod_b(7);
  const auto reconf = SimulateWorkload(pod_a, AllocationPolicy::kReconfigurable, config);
  const auto contig = SimulateWorkload(pod_b, AllocationPolicy::kContiguous, config);
  EXPECT_GT(reconf.acceptance_rate, contig.acceptance_rate);
  EXPECT_GT(reconf.utilization, contig.utilization);
  EXPECT_GT(reconf.submitted, 100u);
}

TEST(Scheduler, QueuedWorkloadRunsEverythingEventually) {
  WorkloadConfig config;
  config.sim_hours = 800.0;
  config.arrival_rate_per_hour = 1.2;
  config.mean_duration_hours = 8.0;
  config.queue_jobs = true;
  tpu::Superpod pod(21);
  const auto result = SimulateWorkload(pod, AllocationPolicy::kReconfigurable, config);
  // With queueing, essentially every submitted job runs (a small tail may
  // still be queued or running at the horizon).
  EXPECT_GE(result.accepted + result.left_in_queue + 8, result.submitted);
  EXPECT_GT(result.started_from_queue, 0u);
  EXPECT_GT(result.mean_wait_hours, 0.0);
  EXPECT_GE(result.max_wait_hours, result.mean_wait_hours);
}

TEST(Scheduler, QueuedReconfigurableWaitsLessThanContiguous) {
  WorkloadConfig config;
  config.sim_hours = 1500.0;
  config.arrival_rate_per_hour = 1.4;
  config.mean_duration_hours = 8.0;
  config.queue_jobs = true;
  tpu::Superpod pod_a(22);
  tpu::Superpod pod_b(22);
  const auto reconf = SimulateWorkload(pod_a, AllocationPolicy::kReconfigurable, config);
  const auto contig = SimulateWorkload(pod_b, AllocationPolicy::kContiguous, config);
  EXPECT_LT(reconf.mean_wait_hours, contig.mean_wait_hours);
  EXPECT_GE(reconf.utilization, contig.utilization);
}

TEST(Scheduler, WorkloadSimExportsAdmissionView) {
  // The admission-control view — jobs submitted/queued/lost, backlog depth,
  // lost-capacity fraction, acceptance rate — must land on an attached hub
  // so the Prometheus exporter can serve it.
  WorkloadConfig config;
  config.sim_hours = 400.0;
  config.arrival_rate_per_hour = 1.6;  // overloaded: backlog and losses exist
  config.mean_duration_hours = 8.0;
  config.queue_jobs = true;
  config.cube_mtbf_hours = 2000.0;
  telemetry::Hub hub;
  config.hub = &hub;
  tpu::Superpod pod(23);
  const auto result = SimulateWorkload(pod, AllocationPolicy::kReconfigurable, config);

  const telemetry::LabelSet labels{{"policy", "reconfigurable"}};
  auto& metrics = hub.metrics();
  EXPECT_EQ(metrics.GetCounter("lightwave_core_jobs_submitted_total", labels).value(),
            result.submitted);
  EXPECT_GT(metrics.GetCounter("lightwave_core_jobs_queued_total", labels).value(), 0u);
  EXPECT_EQ(metrics.GetCounter("lightwave_core_jobs_lost_total", labels).value(),
            result.lost_to_failure);
  EXPECT_EQ(metrics.GetGauge("lightwave_core_backlog_depth", labels).value(),
            static_cast<double>(result.left_in_queue));
  EXPECT_NEAR(metrics.GetGauge("lightwave_core_acceptance_rate", labels).value(),
              result.acceptance_rate, 1e-12);
  const double lost_capacity =
      metrics.GetGauge("lightwave_core_lost_capacity_fraction", labels).value();
  EXPECT_GE(lost_capacity, 0.0);
  EXPECT_LT(lost_capacity, 1.0);
  // And the whole view survives the exporter's text rendering.
  const std::string page = telemetry::ToPrometheus(metrics);
  EXPECT_NE(page.find("lightwave_core_jobs_submitted_total"), std::string::npos);
  EXPECT_NE(page.find("lightwave_core_lost_capacity_fraction"), std::string::npos);
}

TEST(Scheduler, WorkloadSimRepairsUnderFailures) {
  WorkloadConfig config;
  config.sim_hours = 300.0;
  config.arrival_rate_per_hour = 3.0;
  config.cube_mtbf_hours = 3000.0;
  tpu::Superpod pod(8);
  const auto result = SimulateWorkload(pod, AllocationPolicy::kReconfigurable, config);
  EXPECT_GT(result.repaired + result.lost_to_failure, 0u);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0);
}

// --- topology engineer ---------------------------------------------------------------

TEST(TopoEngineer, AllocationRespectsBudgetAndFloor) {
  common::Rng rng(9);
  const int n = 12, ports = 16;
  const auto demand = sim::HotspotTraffic(n, 4000.0, 4, 0.6, rng);
  const auto alloc = AllocateTrunks(demand, ports, 0.25);
  for (int a = 0; a < n; ++a) {
    EXPECT_LE(alloc.DegreeOf(a), ports);
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_GE(alloc.LinksBetween(a, b), 1);  // floor keeps pairs connected
      EXPECT_EQ(alloc.LinksBetween(a, b), alloc.LinksBetween(b, a));
    }
  }
}

TEST(TopoEngineer, AllocationFollowsDemand) {
  common::Rng rng(10);
  const int n = 8;
  sim::TrafficMatrix demand(n);
  demand.set(0, 1, 500.0);
  demand.set(1, 0, 500.0);
  demand.set(2, 3, 50.0);
  const auto alloc = AllocateTrunks(demand, 12, 0.2);
  // Demand-bearing pairs absorb the spare port budget; zero-demand pairs
  // stay at the uniform floor.
  EXPECT_GE(alloc.LinksBetween(0, 1), alloc.LinksBetween(2, 3));
  EXPECT_GT(alloc.LinksBetween(0, 1), 3);
  EXPECT_GT(alloc.LinksBetween(0, 1), alloc.LinksBetween(4, 5));
  EXPECT_EQ(alloc.LinksBetween(4, 5), 1);  // floor only
}

TEST(TopoEngineer, DecompositionIsValidMatchingSet) {
  common::Rng rng(11);
  const int n = 12, ocs = 16;
  const auto demand = sim::GravityTraffic(n, 3000.0, rng);
  const auto alloc = AllocateTrunks(demand, ocs, 0.2);
  const auto decomposition = DecomposeToMatchings(alloc, ocs);
  EXPECT_EQ(static_cast<int>(decomposition.per_ocs.size()), ocs);
  int total = 0;
  for (const auto& matching : decomposition.per_ocs) {
    std::set<int> used;
    for (const auto& [a, b] : matching) {
      EXPECT_LT(a, b);
      EXPECT_TRUE(used.insert(a).second) << "block reused on one OCS";
      EXPECT_TRUE(used.insert(b).second) << "block reused on one OCS";
    }
    total += static_cast<int>(matching.size());
  }
  EXPECT_EQ(total, decomposition.placed_links);
  EXPECT_EQ(decomposition.placed_links + decomposition.dropped_links, alloc.TotalLinks());
  // Near-regular allocations should decompose almost completely.
  EXPECT_LE(decomposition.dropped_links, alloc.TotalLinks() / 20);
}

TEST(TopoEngineer, ReconfigurationKeepsStableTrunks) {
  common::Rng rng(12);
  const int n = 10, ocs = 12;
  TopologyEngineer engineer(n, ocs, 400.0);
  const auto demand = sim::HotspotTraffic(n, 2000.0, 3, 0.5, rng);
  engineer.Engineer(demand);
  // Identical forecast -> no changes at all.
  const auto plan_same = engineer.Reengineer(demand);
  EXPECT_EQ(plan_same.links_added, 0);
  EXPECT_EQ(plan_same.links_removed, 0);
  EXPECT_GT(plan_same.links_unchanged, 0);
  // A mild shift keeps most of the floor/mesh intact.
  const auto shifted = sim::RotateHotspots(demand, 1);
  const auto plan_shift = engineer.Reengineer(shifted);
  EXPECT_GT(plan_shift.links_unchanged, plan_shift.links_added / 2);
}

TEST(TopoEngineer, CurrentTopologyReflectsAllocation) {
  common::Rng rng(13);
  const int n = 8, ocs = 10;
  TopologyEngineer engineer(n, ocs, 400.0);
  const auto demand = sim::HotspotTraffic(n, 1500.0, 2, 0.6, rng);
  engineer.Engineer(demand);
  const auto topo = engineer.CurrentTopology();
  EXPECT_EQ(topo.kind(), sim::DcnKind::kDirectMesh);
  // Heavier-demand pairs get more capacity.
  double hot_cap = 0.0, cold_cap = 1e18;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double cap = topo.TrunkCapacity(a, b);
      const double d = demand.at(a, b) + demand.at(b, a);
      if (d > 100.0) hot_cap = std::max(hot_cap, cap);
      if (d < 50.0) cold_cap = std::min(cold_cap, cap);
    }
  }
  EXPECT_GT(hot_cap, cold_cap);
}

// --- tco -----------------------------------------------------------------------

TEST(Tco, Table1Shape) {
  const auto rows = SuperpodFabricComparison();
  ASSERT_EQ(rows.size(), 3u);
  const auto& dcn = rows[0];
  const auto& lightwave = rows[1];
  const auto& fabric_static = rows[2];
  EXPECT_EQ(fabric_static.relative_cost, 1.0);
  EXPECT_EQ(fabric_static.relative_power, 1.0);
  // Table 1: lightwave ~1.06x / ~1.01x; DCN ~1.24x / ~1.10x. Shape: static
  // < lightwave < DCN on both axes, with lightwave close to static.
  EXPECT_GT(lightwave.relative_cost, 1.0);
  EXPECT_LT(lightwave.relative_cost, 1.15);
  EXPECT_GT(dcn.relative_cost, lightwave.relative_cost);
  EXPECT_GT(lightwave.relative_power, 0.99);
  EXPECT_LT(lightwave.relative_power, 1.06);
  EXPECT_GT(dcn.relative_power, lightwave.relative_power);
}

TEST(Tco, DeploymentFootprintsHalve) {
  const auto rows = SuperpodDeploymentFootprints();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].ocs_count, 96);
  EXPECT_EQ(rows[1].ocs_count, 48);
  EXPECT_EQ(rows[2].ocs_count, 24);
  // §4.2.3: bidi saves 50% of OCS and fiber cost.
  EXPECT_NEAR(rows[1].ocs_capex_usd / rows[0].ocs_capex_usd, 0.5, 1e-9);
  EXPECT_EQ(rows[1].fiber_strands * 2, rows[0].fiber_strands);
}

TEST(Tco, SpineFreeSavesCapexAndPower) {
  const auto rows = DcnFabricComparison(64, 25600.0);
  ASSERT_EQ(rows.size(), 2u);
  const auto& spine_free = rows[1];
  // §4.2: ~30% CapEx and ~40% power reduction.
  EXPECT_LT(spine_free.relative_cost, 0.78);
  EXPECT_GT(spine_free.relative_cost, 0.6);
  EXPECT_LT(spine_free.relative_power, 0.66);
  EXPECT_GT(spine_free.relative_power, 0.5);
}

// --- fabric manager --------------------------------------------------------------------

TEST(FabricManagerTest, CreateAndDestroySlice) {
  FabricManagerConfig config;
  config.cubes = 8;
  config.ocs_per_dim = 2;
  FabricManager manager(config);
  auto id = manager.CreateSlice(SliceShape{1, 2, 2});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(manager.pod().slices().size(), 1u);
  ASSERT_TRUE(manager.DestroySlice(id.value()).ok());
  EXPECT_TRUE(manager.pod().slices().empty());
}

TEST(FabricManagerTest, HandleCubeFailureSwaps) {
  FabricManagerConfig config;
  config.cubes = 8;
  config.ocs_per_dim = 2;
  FabricManager manager(config);
  auto id = manager.CreateSlice(SliceShape{1, 1, 4});
  ASSERT_TRUE(id.ok());
  const int victim = manager.pod().slices().at(id.value()).topology.cube_ids()[0];
  auto repaired = manager.HandleCubeFailure(victim);
  ASSERT_TRUE(repaired.ok());
  EXPECT_NE(repaired.value(), id.value());
  EXPECT_FALSE(manager.pod().SliceDegraded(repaired.value()));
}

TEST(FabricManagerTest, SurveyCoversAllConnections) {
  FabricManagerConfig config;
  config.cubes = 8;
  config.ocs_per_dim = 2;
  FabricManager manager(config);
  ASSERT_TRUE(manager.CreateSlice(SliceShape{2, 2, 2}).ok());
  const auto reports = manager.SurveyLinkQuality(optics::Cwdm4Bidi());
  // 6 OCSes x 8 connections each.
  EXPECT_EQ(reports.size(), 48u);
  for (const auto& r : reports) {
    EXPECT_LT(r.pre_fec_ber, phy::kKp4BerThreshold)
        << "link ocs=" << r.ocs_id << " n=" << r.north;
    EXPECT_GT(r.insertion_loss_db, 0.0);
  }
}

TEST(FabricManagerTest, TelemetrySweepOverControlPlane) {
  FabricManagerConfig config;
  config.cubes = 8;
  config.ocs_per_dim = 2;
  config.control_drop_probability = 0.3;  // retries must cover this
  FabricManager manager(config);
  ASSERT_TRUE(manager.CreateSlice(SliceShape{1, 1, 2}).ok());
  const auto telemetry = manager.CollectTelemetry();
  EXPECT_EQ(telemetry.replies.size(), 6u);
  EXPECT_TRUE(telemetry.failed.empty());
  std::uint64_t total_connects = 0;
  for (const auto& [id, t] : telemetry.replies) total_connects += t.connects;
  EXPECT_GT(total_connects, 0u);
}

}  // namespace
}  // namespace lightwave::core
