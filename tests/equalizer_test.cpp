// Tests for the adaptive equalizer: channel construction from the fiber
// model, LMS convergence, and the §3.3.1 claim that equalization recovers
// dispersion-impaired lanes.
#include <gtest/gtest.h>

#include "phy/equalizer.h"

namespace lightwave::phy {
namespace {

TEST(EqualizerChannel, CleanChannelIsIdentityLike) {
  const auto channel = DispersiveChannel(0.0, 0.05);
  ASSERT_GE(channel.taps.size(), 1u);
  EXPECT_NEAR(channel.taps[0], 1.0, 1e-9);
  for (std::size_t i = 1; i < channel.taps.size(); ++i) {
    EXPECT_NEAR(channel.taps[i], 0.0, 1e-9);
  }
}

TEST(EqualizerChannel, EnergyNormalized) {
  for (double spread : {0.0, 0.2, 0.4, 0.6}) {
    const auto channel = DispersiveChannel(spread, 0.0);
    double energy = 0.0;
    for (double t : channel.taps) energy += t * t;
    EXPECT_NEAR(energy, 1.0, 1e-9) << spread;
  }
}

TEST(EqualizerChannel, FiberLaneMapping) {
  // Outer CWDM lane at 100G over a long span spreads more than the center
  // lane.
  const optics::FiberSpan span(2.0, 0, 0);
  const auto outer = ChannelForLane(span, common::Nanometers{1271.0},
                                    common::GbitPerSec{100.0}, 0.3, 0.05);
  const auto center = ChannelForLane(span, common::Nanometers{1311.0},
                                     common::GbitPerSec{100.0}, 0.3, 0.05);
  EXPECT_LT(outer.taps[0], center.taps[0]);  // more energy off the cursor
}

TEST(Equalizer, CleanChannelPassesThrough) {
  const auto result = MeasureEqualizedLink(DispersiveChannel(0.0, 0.12));
  EXPECT_LT(result.post_eq_ber, 2e-3);
  // Equalization never makes the clean channel dramatically worse.
  EXPECT_LT(result.post_eq_ber, result.pre_eq_ber * 3 + 2e-3);
}

TEST(Equalizer, RecoversDispersedEye) {
  // Heavy ISI closes the PAM4 eye; the FFE+DFE reopens it (§3.3.1:
  // dispersion "can be mitigated ... along with the use of nonlinear
  // equalizers").
  const auto result = MeasureEqualizedLink(DispersiveChannel(0.35, 0.08));
  EXPECT_GT(result.pre_eq_ber, 1e-2);   // unusable raw
  EXPECT_LT(result.post_eq_ber, 1e-3);  // recovered
  EXPECT_LT(result.post_eq_ber, result.pre_eq_ber / 10.0);
}

TEST(Equalizer, ResidualIsiSuppressed) {
  const auto channel = DispersiveChannel(0.3, 0.05);
  const auto result = MeasureEqualizedLink(channel);
  // Channel off-cursor energy before equalization.
  double off = 0.0;
  for (std::size_t i = 1; i < channel.taps.size(); ++i) off += channel.taps[i] * channel.taps[i];
  const double channel_isi = off / (channel.taps[0] * channel.taps[0]);
  EXPECT_LT(result.residual_isi, channel_isi);
}

TEST(Equalizer, Deterministic) {
  const auto a = MeasureEqualizedLink(DispersiveChannel(0.3, 0.08));
  const auto b = MeasureEqualizedLink(DispersiveChannel(0.3, 0.08));
  EXPECT_DOUBLE_EQ(a.post_eq_ber, b.post_eq_ber);
}

TEST(Equalizer, MoreTapsHelpHeavyIsi) {
  const auto channel = DispersiveChannel(0.45, 0.06);
  EqualizerExperimentConfig small;
  small.ffe_taps = 3;
  small.dfe_taps = 0;
  EqualizerExperimentConfig large;
  large.ffe_taps = 9;
  large.dfe_taps = 3;
  const auto few = MeasureEqualizedLink(channel, small);
  const auto many = MeasureEqualizedLink(channel, large);
  EXPECT_LE(many.post_eq_ber, few.post_eq_ber);
}

class EqualizerSpreadSweep : public ::testing::TestWithParam<double> {};

TEST_P(EqualizerSpreadSweep, PostEqBerBelowPreEq) {
  const auto result = MeasureEqualizedLink(DispersiveChannel(GetParam(), 0.08));
  EXPECT_LE(result.post_eq_ber, result.pre_eq_ber + 1e-4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Spreads, EqualizerSpreadSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5));

}  // namespace
}  // namespace lightwave::phy
