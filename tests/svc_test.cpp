// Fleet-service crash-recovery tests (CTest label `recovery`). The
// centerpiece is the crash matrix: a 200-command seeded trace, crashed at
// EVERY command boundary under each of the three crash points, recovered,
// and checked three ways — the recovered state is byte-identical to the
// pre-crash committed state, no journaled command applies twice, and no
// accepted-and-journaled command is lost. The matrix also runs under the
// deterministic parallel runtime at 1/2/8 threads with identical results.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "journal/faulty_storage.h"
#include "journal/file_storage.h"
#include "storage_test_util.h"
#include "core/scheduler.h"
#include "ctrl/controller.h"
#include "ctrl/fault_injector.h"
#include "ctrl/wire.h"
#include "journal/storage.h"
#include "svc/fleet_service.h"
#include "svc/request_stream.h"
#include "telemetry/hub.h"
#include "tpu/superpod.h"

namespace lightwave {
namespace {

using ctrl::CrashPoint;

constexpr std::uint64_t kPodSeed = 91;
constexpr std::uint64_t kStreamSeed = 2026;
constexpr std::uint64_t kCommands = 200;
// Small pod (8 cubes, 6 OCSes) so the 600-trial matrix stays fast; the
// stream's size menu keeps capacity pressure (and thus apply rejections) in
// the trace.
constexpr int kPodCubes = 8;
constexpr int kOcsPerDim = 2;

svc::FleetServiceOptions MatrixOptions() {
  svc::FleetServiceOptions options;
  options.queue_capacity = 8;
  options.snapshot_interval = 16;  // several snapshot/compaction cycles per run
  return options;
}

std::unique_ptr<tpu::Superpod> FreshPod() {
  return std::make_unique<tpu::Superpod>(kPodSeed, kPodCubes, kOcsPerDim);
}

const svc::RequestStream& Stream() {
  static const svc::RequestStream stream(kStreamSeed, kCommands);
  return stream;
}

/// Oracle digests: state bytes after committing exactly k commands, for
/// every k in [0, kCommands], from one uneventful serial run.
const std::vector<std::vector<std::uint8_t>>& OracleDigests() {
  static const auto digests = [] {
    std::vector<std::vector<std::uint8_t>> out;
    auto pod = FreshPod();
    journal::MemStorage wal_storage;
    journal::MemStorage snapshot_storage;
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, MatrixOptions());
    EXPECT_TRUE(service.Recover().ok());
    out.push_back(service.SerializeState());
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      EXPECT_TRUE(service.Submit(Stream().Command(i)).ok());
      EXPECT_TRUE(service.ProcessOne());
      out.push_back(service.SerializeState());
    }
    return out;
  }();
  return digests;
}

struct TrialResult {
  bool crashed = false;
  std::uint64_t committed_after_crash = 0;
  std::vector<std::uint8_t> recovered_digest;
  std::vector<std::uint8_t> final_digest;
  bool recovery_ok = false;
  bool invariants_ok = false;
};

/// One matrix cell: crash the k-th visit of `point`, recover a successor
/// process over the same durable media, resume, finish the stream.
TrialResult RunCrashTrial(CrashPoint point, std::uint64_t k) {
  TrialResult result;
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  ctrl::FaultInjector injector(7, ctrl::FaultProfile{});

  {
    auto pod = FreshPod();
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, MatrixOptions());
    service.SetFaultInjector(&injector);
    if (!service.Recover().ok()) return result;
    injector.ArmCrash(point, k);
    auto served = service.Serve(Stream());
    result.crashed = served.crashed;
    // The pod and service die here; only the two storages survive.
  }

  auto pod = FreshPod();
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                            wal_storage, snapshot_storage, MatrixOptions());
  service.SetFaultInjector(&injector);
  auto recovery = service.Recover();
  result.recovery_ok = recovery.ok();
  if (!recovery.ok()) return result;
  result.committed_after_crash = service.next_command_id() - 1;
  result.recovered_digest = service.SerializeState();

  auto served = service.Serve(Stream());
  if (served.crashed) return result;
  result.final_digest = service.SerializeState();

  result.invariants_ok = service.scheduler().ValidateInvariants().ok();
  for (int i = 0; result.invariants_ok && i < pod->ocs_count(); ++i) {
    result.invariants_ok = pod->ocs(i).ValidateInvariants().ok();
  }
  return result;
}

void CheckTrial(CrashPoint point, std::uint64_t k, const TrialResult& result) {
  SCOPED_TRACE("crash point " + std::string(ctrl::ToString(point)) + " at command " +
               std::to_string(k));
  ASSERT_TRUE(result.crashed);
  ASSERT_TRUE(result.recovery_ok);
  // Durability contract: a pre-append crash may lose only command k (never
  // acknowledged as committed); at or after the append, command k is
  // journaled and MUST survive.
  const std::uint64_t expected_committed = point == CrashPoint::kPreAppend ? k - 1 : k;
  EXPECT_EQ(result.committed_after_crash, expected_committed);
  // Byte-identical to the committed pre-crash state: nothing applied twice
  // (the oracle applied each command exactly once — a double apply would
  // shift the scheduler's request counters and slice ids), nothing lost.
  EXPECT_EQ(result.recovered_digest, OracleDigests()[expected_committed]);
  // Resuming the stream from the frontier converges on the uneventful run.
  EXPECT_EQ(result.final_digest, OracleDigests()[kCommands]);
  EXPECT_TRUE(result.invariants_ok);
}

TEST(CrashMatrix, EveryBoundaryEveryCrashPoint) {
  OracleDigests();  // build serially before fanning out
  for (CrashPoint point : {CrashPoint::kPreAppend, CrashPoint::kPostAppendPreApply,
                           CrashPoint::kMidApply}) {
    // Trials are independent processes-in-miniature; run them through the
    // deterministic parallel runtime (trial k uses only value-captured
    // state).
    auto results = common::parallel::ParallelMap(
        kCommands, [&](std::uint64_t i) { return RunCrashTrial(point, i + 1); });
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      CheckTrial(point, i + 1, results[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(CrashMatrix, DeterministicAcrossThreadCounts) {
  OracleDigests();
  const int original = common::parallel::Threads();
  std::vector<std::vector<std::uint8_t>> digests;
  for (int threads : {1, 2, 8}) {
    common::parallel::SetThreads(threads);
    auto results = common::parallel::ParallelMap(8, [&](std::uint64_t i) {
      // A spread of boundaries across all three crash points.
      const CrashPoint point = static_cast<CrashPoint>(i % 3);
      return RunCrashTrial(point, 11 + 23 * i);
    });
    std::vector<std::uint8_t> combined;
    for (const auto& r : results) {
      EXPECT_TRUE(r.recovery_ok);
      combined.insert(combined.end(), r.recovered_digest.begin(),
                      r.recovered_digest.end());
      combined.insert(combined.end(), r.final_digest.begin(), r.final_digest.end());
    }
    digests.push_back(std::move(combined));
  }
  common::parallel::SetThreads(original);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

// ---------------------------------------------------------------------------
// File-backed durability: the same crash matrix over real files, plus the
// power-cut cases only FaultyStorage can model (torn final append, lost
// sync window).

/// One FILE-BACKED matrix cell: the same protocol as RunCrashTrial, but the
/// two storages are real files that outlive the crashed "process" (whose
/// fds close with it) and are REOPENED by the successor — the recovery path
/// production would take.
TrialResult RunFileCrashTrial(CrashPoint point, std::uint64_t k,
                              const std::string& wal_path,
                              const std::string& snap_path) {
  TrialResult result;
  ctrl::FaultInjector injector(7, ctrl::FaultProfile{});
  const journal::FileStorageOptions file_options;  // kGroupCommit default

  {
    auto wal_storage = journal::FileStorage::Open(wal_path, file_options);
    auto snapshot_storage = journal::FileStorage::Open(snap_path, file_options);
    if (!wal_storage.ok() || !snapshot_storage.ok()) return result;
    auto pod = FreshPod();
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              *wal_storage.value(), *snapshot_storage.value(),
                              MatrixOptions());
    service.SetFaultInjector(&injector);
    if (!service.Recover().ok()) return result;
    injector.ArmCrash(point, k);
    result.crashed = service.Serve(Stream()).crashed;
    // Process death: fds close, files stay.
  }

  auto wal_storage = journal::FileStorage::Open(wal_path, file_options);
  auto snapshot_storage = journal::FileStorage::Open(snap_path, file_options);
  if (!wal_storage.ok() || !snapshot_storage.ok()) return result;
  auto pod = FreshPod();
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                            *wal_storage.value(), *snapshot_storage.value(),
                            MatrixOptions());
  service.SetFaultInjector(&injector);
  auto recovery = service.Recover();
  result.recovery_ok = recovery.ok();
  if (!recovery.ok()) return result;
  result.committed_after_crash = service.next_command_id() - 1;
  result.recovered_digest = service.SerializeState();

  auto served = service.Serve(Stream());
  if (served.crashed) return result;
  result.final_digest = service.SerializeState();
  result.invariants_ok = service.scheduler().ValidateInvariants().ok();
  for (int i = 0; result.invariants_ok && i < pod->ocs_count(); ++i) {
    result.invariants_ok = pod->ocs(i).ValidateInvariants().ok();
  }
  return result;
}

TEST(CrashMatrixFile, EveryBoundaryEveryCrashPointOnRealFiles) {
  OracleDigests();  // build serially before fanning out
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  for (CrashPoint point : {CrashPoint::kPreAppend, CrashPoint::kPostAppendPreApply,
                           CrashPoint::kMidApply}) {
    auto results =
        common::parallel::ParallelMap(kCommands, [&](std::uint64_t i) {
          const std::string stem = "p" + std::to_string(static_cast<int>(point)) +
                                   "_" + std::to_string(i);
          return RunFileCrashTrial(point, i + 1, tmp.Path(stem + ".wal"),
                                   tmp.Path(stem + ".snap"));
        });
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      CheckTrial(point, i + 1, results[static_cast<std::size_t>(i)]);
    }
  }
}

/// Copies `image` over the file at `path` (the restore step of the tear
/// sweep: every tear offset starts from the same captured device image).
void RestoreImage(const std::string& path, const std::vector<std::uint8_t>& image) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
}

std::vector<std::uint8_t> CaptureImage(const journal::FileStorage& storage) {
  std::vector<std::uint8_t> image(storage.size());
  if (!image.empty()) storage.ReadAt(0, image.size(), image.data());
  return image;
}

TEST(CrashMatrixFile, TearingTheFinalAppendAtEveryByte) {
  // A power cut can stop the final append at ANY byte. For representative
  // command boundaries (first command, right after a snapshot/compaction
  // cycle, mid-run, last command — none a multiple of the snapshot interval,
  // so the final append is a plain record), tear at every byte k of that
  // append and require: recovery yields exactly the previous boundary,
  // byte-identical to the oracle; a partial tear is diagnosed as a clean
  // TRUNCATION (never corruption); resubmission converges on the oracle.
  OracleDigests();
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  for (const std::uint64_t boundary : {1ull, 17ull, 50ull, 157ull, 200ull}) {
    SCOPED_TRACE("boundary " + std::to_string(boundary));
    // Run the first boundary-1 commands once; capture both device images.
    std::vector<std::uint8_t> wal_image;
    std::vector<std::uint8_t> snap_image;
    const std::string stem = "b" + std::to_string(boundary);
    {
      auto wal_storage = journal::FileStorage::Open(tmp.Path(stem + "_prefix.wal"));
      auto snapshot_storage = journal::FileStorage::Open(tmp.Path(stem + "_prefix.snap"));
      ASSERT_TRUE(wal_storage.ok() && snapshot_storage.ok());
      auto pod = FreshPod();
      svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                                *wal_storage.value(), *snapshot_storage.value(),
                                MatrixOptions());
      ASSERT_TRUE(service.Recover().ok());
      for (std::uint64_t i = 0; i + 1 < boundary; ++i) {
        ASSERT_TRUE(service.Submit(Stream().Command(i)).ok());
        ASSERT_TRUE(service.ProcessOne());
      }
      wal_image = CaptureImage(*wal_storage.value());
      snap_image = CaptureImage(*snapshot_storage.value());
    }
    // Discover the final append's frame size by running command `boundary`
    // once through a FaultyStorage observer.
    std::uint64_t frame = 0;
    {
      RestoreImage(tmp.Path("probe.wal"), wal_image);
      RestoreImage(tmp.Path("probe.snap"), snap_image);
      auto wal_storage = journal::FileStorage::Open(tmp.Path("probe.wal"));
      auto snapshot_storage = journal::FileStorage::Open(tmp.Path("probe.snap"));
      ASSERT_TRUE(wal_storage.ok() && snapshot_storage.ok());
      journal::FaultyStorage faulty(*wal_storage.value(),
                                    journal::FaultyStorage::SyncMode::kNever);
      auto pod = FreshPod();
      svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, faulty,
                                *snapshot_storage.value(), MatrixOptions());
      ASSERT_TRUE(service.Recover().ok());
      ASSERT_TRUE(service.Submit(Stream().Command(boundary - 1)).ok());
      ASSERT_TRUE(service.ProcessOne());
      frame = faulty.final_append_bytes();
    }
    ASSERT_GT(frame, 0u);
    for (std::uint64_t keep = 0; keep <= frame; ++keep) {
      SCOPED_TRACE("keep " + std::to_string(keep) + " of " + std::to_string(frame));
      const std::string wal_path = tmp.Path("tear.wal");
      const std::string snap_path = tmp.Path("tear.snap");
      RestoreImage(wal_path, wal_image);
      RestoreImage(snap_path, snap_image);
      {
        auto wal_storage = journal::FileStorage::Open(wal_path);
        auto snapshot_storage = journal::FileStorage::Open(snap_path);
        ASSERT_TRUE(wal_storage.ok() && snapshot_storage.ok());
        journal::FaultyStorage faulty(*wal_storage.value(),
                                      journal::FaultyStorage::SyncMode::kNever);
        auto pod = FreshPod();
        svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                                  faulty, *snapshot_storage.value(), MatrixOptions());
        ASSERT_TRUE(service.Recover().ok());
        ASSERT_TRUE(service.Submit(Stream().Command(boundary - 1)).ok());
        ASSERT_TRUE(service.ProcessOne());
        faulty.CrashTearingFinalAppend(keep);
      }
      // The successor process.
      auto wal_storage = journal::FileStorage::Open(wal_path);
      auto snapshot_storage = journal::FileStorage::Open(snap_path);
      ASSERT_TRUE(wal_storage.ok() && snapshot_storage.ok());
      auto pod = FreshPod();
      svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                                *wal_storage.value(), *snapshot_storage.value(),
                                MatrixOptions());
      auto recovery = service.Recover();
      ASSERT_TRUE(recovery.ok());
      const std::uint64_t expected = keep == frame ? boundary : boundary - 1;
      EXPECT_EQ(service.next_command_id() - 1, expected);
      EXPECT_EQ(service.SerializeState(), OracleDigests()[expected]);
      // Tail diagnosis: a tear strictly inside the append is a TRUNCATION
      // (the expected crash artifact); at either boundary the log is clean.
      if (keep == 0 || keep == frame) {
        EXPECT_TRUE(recovery.value().wal_clean);
        EXPECT_EQ(recovery.value().tail_truncations, 0u);
      } else {
        EXPECT_EQ(recovery.value().tail_truncations, 1u);
        EXPECT_GT(recovery.value().torn_bytes_discarded, 0u);
      }
      EXPECT_EQ(recovery.value().tail_corruptions, 0u)
          << "a torn append must never read as corruption";
      // Resubmission converges (spot-checked: the full-stream resume is the
      // expensive half of the trial).
      if (keep == 0 || keep == frame || keep == frame / 2) {
        auto served = service.Serve(Stream());
        ASSERT_FALSE(served.crashed);
        EXPECT_EQ(service.SerializeState(), OracleDigests()[kCommands]);
      }
    }
  }
}

TEST(FleetServiceFile, PeriodicPolicyLosesOnlyTheOpenSyncWindow) {
  // kPeriodic with a never-elapsing interval: appends are never fsynced, so
  // a power cut takes back EVERYTHING since the last durable event — which
  // is the snapshot/compaction cycle (snapshots replace atomically and
  // compaction truncates durably, under every policy). Commands past the
  // last snapshot vanish; the snapshot itself must survive.
  OracleDigests();
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  journal::FileStorageOptions periodic;
  periodic.policy = journal::SyncPolicy::kPeriodic;
  periodic.periodic_interval = std::chrono::milliseconds(3600 * 1000);
  constexpr std::uint64_t kRun = 40;          // snapshots at 16 and 32
  constexpr std::uint64_t kLastSnapshot = 32;  // MatrixOptions interval = 16
  {
    auto wal_storage = journal::FileStorage::Open(tmp.Path("window.wal"), periodic);
    auto snapshot_storage = journal::FileStorage::Open(tmp.Path("window.snap"));
    ASSERT_TRUE(wal_storage.ok() && snapshot_storage.ok());
    journal::FaultyStorage faulty(*wal_storage.value(),
                                  journal::FaultyStorage::SyncMode::kNever);
    auto pod = FreshPod();
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, faulty,
                              *snapshot_storage.value(), MatrixOptions());
    ASSERT_TRUE(service.Recover().ok());
    for (std::uint64_t i = 0; i < kRun; ++i) {
      ASSERT_TRUE(service.Submit(Stream().Command(i)).ok());
      ASSERT_TRUE(service.ProcessOne());
    }
    // The appends after the last compaction were never fsynced under
    // kPeriodic (only the compactions' durable truncates were).
    EXPECT_LT(wal_storage.value()->fsync_count(), 5u);
    faulty.Crash();
  }
  auto wal_storage = journal::FileStorage::Open(tmp.Path("window.wal"), periodic);
  auto snapshot_storage = journal::FileStorage::Open(tmp.Path("window.snap"));
  ASSERT_TRUE(wal_storage.ok() && snapshot_storage.ok());
  auto pod = FreshPod();
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                            *wal_storage.value(), *snapshot_storage.value(),
                            MatrixOptions());
  auto recovery = service.Recover();
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery.value().snapshot_loaded) << "the snapshot survived the cut";
  EXPECT_EQ(service.next_command_id() - 1, kLastSnapshot);
  EXPECT_EQ(service.SerializeState(), OracleDigests()[kLastSnapshot]);
  // The window loss is a CLEAN truncation story: the log rolls back to a
  // record boundary, so nothing reads as torn, let alone corrupt.
  EXPECT_TRUE(recovery.value().wal_clean);
  EXPECT_EQ(recovery.value().tail_corruptions, 0u);
  // Resubmitting the stream replays the lost window and converges.
  auto served = service.Serve(Stream());
  ASSERT_FALSE(served.crashed);
  EXPECT_EQ(service.SerializeState(), OracleDigests()[kCommands]);
}

TEST(FleetService, ServesStreamAndSnapshotsCompactTheLog) {
  auto pod = FreshPod();
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  telemetry::Hub hub;
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  service.AttachTelemetry(&hub);
  ASSERT_TRUE(service.Recover().ok());
  auto served = service.Serve(Stream());
  EXPECT_FALSE(served.crashed);
  EXPECT_EQ(served.processed, kCommands);
  EXPECT_EQ(service.next_command_id(), kCommands + 1);
  EXPECT_EQ(service.applied_seq(), kCommands);
  const auto& stats = service.stats();
  EXPECT_EQ(stats.processed, kCommands);
  EXPECT_GT(stats.admitted, 0u);
  EXPECT_GT(stats.released, 0u);
  EXPECT_GT(stats.rejected_apply, 0u);
  EXPECT_GT(stats.snapshots, 0u);
  // Compaction after each snapshot keeps the log to the post-snapshot
  // suffix.
  EXPECT_LT(journal::Wal::Scan(wal_storage).records.size(), kCommands);
  EXPECT_GT(service.wal().reclaimed_bytes(), 0u);
  // The ISSUE's service metrics are visible on the hub.
  auto& metrics = hub.metrics();
  EXPECT_EQ(metrics.GetCounter("lightwave_svc_queued_total").value(), kCommands);
  EXPECT_EQ(metrics.GetCounter("lightwave_svc_admitted_total").value(), stats.admitted);
  EXPECT_EQ(metrics.GetCounter("lightwave_svc_rejected_total", {{"reason", "apply"}})
                .value(),
            stats.rejected_apply);
  EXPECT_EQ(metrics.GetCounter("lightwave_journal_appends_total").value(), kCommands);
  EXPECT_GT(metrics.GetCounter("lightwave_journal_bytes_total").value(), 0u);
  EXPECT_EQ(metrics.GetGauge("lightwave_svc_queue_depth").value(), 0.0);
}

TEST(FleetService, BackpressureRejectsWhenQueueFull) {
  auto pod = FreshPod();
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  svc::FleetServiceOptions options;
  options.queue_capacity = 2;
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, options);
  ASSERT_TRUE(service.Recover().ok());
  EXPECT_TRUE(service.Submit(Stream().Command(0)).ok());
  EXPECT_TRUE(service.Submit(Stream().Command(1)).ok());
  auto full = service.Submit(Stream().Command(2));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, common::Error::Code::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_backpressure, 1u);
  // Draining one slot re-opens admission.
  EXPECT_TRUE(service.ProcessOne());
  EXPECT_TRUE(service.Submit(Stream().Command(2)).ok());
}

TEST(FleetService, DuplicateAndGapSubmissions) {
  auto pod = FreshPod();
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.Submit(Stream().Command(0)).ok());
  ASSERT_TRUE(service.ProcessOne());
  // Resubmitting a committed command is acknowledged, not re-applied.
  EXPECT_TRUE(service.Submit(Stream().Command(0)).ok());
  EXPECT_EQ(service.stats().duplicate_acks, 1u);
  EXPECT_EQ(service.applied_seq(), 1u);
  // Skipping ahead is a client bug, reported as such.
  auto gap = service.Submit(Stream().Command(5));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.error().code, common::Error::Code::kInvalidArgument);
}

TEST(FleetService, ControllerStateRidesTheSnapshot) {
  // Build a controller with non-trivial health state (a tripped breaker),
  // bind it to the service, crash, and check the successor's controller
  // recovered the same breaker/counter state through the snapshot.
  auto make_world = [](ctrl::MessageBus& bus, std::vector<ocs::PalomarSwitch*> switches,
                       std::vector<std::unique_ptr<ctrl::OcsAgent>>& agents) {
    auto controller = std::make_unique<ctrl::FabricController>(bus, 1);
    for (std::size_t i = 0; i < switches.size(); ++i) {
      agents.push_back(std::make_unique<ctrl::OcsAgent>(*switches[i]));
      controller->Register(static_cast<int>(i), agents.back().get());
    }
    return controller;
  };

  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  std::vector<std::uint8_t> exported_before;
  {
    auto pod = FreshPod();
    ctrl::MessageBus bus(3);
    std::vector<std::unique_ptr<ctrl::OcsAgent>> agents;
    auto controller = make_world(bus, {&pod->ocs(0), &pod->ocs(1)}, agents);
    // Trip agent 1's breaker by partitioning the bus mid-run.
    bus.PartitionAfter(0);
    for (int i = 0; i < 4; ++i) {
      (void)controller->ApplyTopology({{1, {{0, 100}}}});
    }
    bus.HealPartition();
    ASSERT_NE(controller->breaker_state(1), ctrl::BreakerState::kClosed);

    svc::FleetServiceOptions options = MatrixOptions();
    options.snapshot_interval = 1;  // snapshot every command
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, options);
    service.BindController(controller.get());
    ASSERT_TRUE(service.Recover().ok());
    ASSERT_TRUE(service.Submit(Stream().Command(0)).ok());
    ASSERT_TRUE(service.ProcessOne());
    ctrl::WireWriter writer;
    controller->ExportState(writer);
    exported_before = writer.Take();
  }

  auto pod = FreshPod();
  ctrl::MessageBus bus(3);
  std::vector<std::unique_ptr<ctrl::OcsAgent>> agents;
  auto controller = make_world(bus, {&pod->ocs(0), &pod->ocs(1)}, agents);
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  service.BindController(controller.get());
  auto recovery = service.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery.value().snapshot_loaded);
  EXPECT_NE(controller->breaker_state(1), ctrl::BreakerState::kClosed);
  ctrl::WireWriter writer;
  controller->ExportState(writer);
  EXPECT_EQ(writer.buffer(), exported_before);
}

TEST(FleetService, CrashPointVisitAccounting) {
  auto pod = FreshPod();
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  ctrl::FaultInjector injector(7, ctrl::FaultProfile{});
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  service.SetFaultInjector(&injector);
  ASSERT_TRUE(service.Recover().ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.Submit(Stream().Command(i)).ok());
    ASSERT_TRUE(service.ProcessOne());
  }
  // Every processed command visits each crash point exactly once — the
  // matrix's "crash at command k" arithmetic depends on it.
  EXPECT_EQ(injector.crash_point_visits(CrashPoint::kPreAppend), 10u);
  EXPECT_EQ(injector.crash_point_visits(CrashPoint::kPostAppendPreApply), 10u);
  EXPECT_EQ(injector.crash_point_visits(CrashPoint::kMidApply), 10u);
  EXPECT_EQ(injector.crashes_fired(), 0u);
}

}  // namespace
}  // namespace lightwave
