// Fleet-service crash-recovery tests (CTest label `recovery`). The
// centerpiece is the crash matrix: a 200-command seeded trace, crashed at
// EVERY command boundary under each of the three crash points, recovered,
// and checked three ways — the recovered state is byte-identical to the
// pre-crash committed state, no journaled command applies twice, and no
// accepted-and-journaled command is lost. The matrix also runs under the
// deterministic parallel runtime at 1/2/8 threads with identical results.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "core/scheduler.h"
#include "ctrl/controller.h"
#include "ctrl/fault_injector.h"
#include "ctrl/wire.h"
#include "journal/storage.h"
#include "svc/fleet_service.h"
#include "svc/request_stream.h"
#include "telemetry/hub.h"
#include "tpu/superpod.h"

namespace lightwave {
namespace {

using ctrl::CrashPoint;

constexpr std::uint64_t kPodSeed = 91;
constexpr std::uint64_t kStreamSeed = 2026;
constexpr std::uint64_t kCommands = 200;
// Small pod (8 cubes, 6 OCSes) so the 600-trial matrix stays fast; the
// stream's size menu keeps capacity pressure (and thus apply rejections) in
// the trace.
constexpr int kPodCubes = 8;
constexpr int kOcsPerDim = 2;

svc::FleetServiceOptions MatrixOptions() {
  svc::FleetServiceOptions options;
  options.queue_capacity = 8;
  options.snapshot_interval = 16;  // several snapshot/compaction cycles per run
  return options;
}

std::unique_ptr<tpu::Superpod> FreshPod() {
  return std::make_unique<tpu::Superpod>(kPodSeed, kPodCubes, kOcsPerDim);
}

const svc::RequestStream& Stream() {
  static const svc::RequestStream stream(kStreamSeed, kCommands);
  return stream;
}

/// Oracle digests: state bytes after committing exactly k commands, for
/// every k in [0, kCommands], from one uneventful serial run.
const std::vector<std::vector<std::uint8_t>>& OracleDigests() {
  static const auto digests = [] {
    std::vector<std::vector<std::uint8_t>> out;
    auto pod = FreshPod();
    journal::MemStorage wal_storage;
    journal::MemStorage snapshot_storage;
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, MatrixOptions());
    EXPECT_TRUE(service.Recover().ok());
    out.push_back(service.SerializeState());
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      EXPECT_TRUE(service.Submit(Stream().Command(i)).ok());
      EXPECT_TRUE(service.ProcessOne());
      out.push_back(service.SerializeState());
    }
    return out;
  }();
  return digests;
}

struct TrialResult {
  bool crashed = false;
  std::uint64_t committed_after_crash = 0;
  std::vector<std::uint8_t> recovered_digest;
  std::vector<std::uint8_t> final_digest;
  bool recovery_ok = false;
  bool invariants_ok = false;
};

/// One matrix cell: crash the k-th visit of `point`, recover a successor
/// process over the same durable media, resume, finish the stream.
TrialResult RunCrashTrial(CrashPoint point, std::uint64_t k) {
  TrialResult result;
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  ctrl::FaultInjector injector(7, ctrl::FaultProfile{});

  {
    auto pod = FreshPod();
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, MatrixOptions());
    service.SetFaultInjector(&injector);
    if (!service.Recover().ok()) return result;
    injector.ArmCrash(point, k);
    auto served = service.Serve(Stream());
    result.crashed = served.crashed;
    // The pod and service die here; only the two storages survive.
  }

  auto pod = FreshPod();
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                            wal_storage, snapshot_storage, MatrixOptions());
  service.SetFaultInjector(&injector);
  auto recovery = service.Recover();
  result.recovery_ok = recovery.ok();
  if (!recovery.ok()) return result;
  result.committed_after_crash = service.next_command_id() - 1;
  result.recovered_digest = service.SerializeState();

  auto served = service.Serve(Stream());
  if (served.crashed) return result;
  result.final_digest = service.SerializeState();

  result.invariants_ok = service.scheduler().ValidateInvariants().ok();
  for (int i = 0; result.invariants_ok && i < pod->ocs_count(); ++i) {
    result.invariants_ok = pod->ocs(i).ValidateInvariants().ok();
  }
  return result;
}

void CheckTrial(CrashPoint point, std::uint64_t k, const TrialResult& result) {
  SCOPED_TRACE("crash point " + std::string(ctrl::ToString(point)) + " at command " +
               std::to_string(k));
  ASSERT_TRUE(result.crashed);
  ASSERT_TRUE(result.recovery_ok);
  // Durability contract: a pre-append crash may lose only command k (never
  // acknowledged as committed); at or after the append, command k is
  // journaled and MUST survive.
  const std::uint64_t expected_committed = point == CrashPoint::kPreAppend ? k - 1 : k;
  EXPECT_EQ(result.committed_after_crash, expected_committed);
  // Byte-identical to the committed pre-crash state: nothing applied twice
  // (the oracle applied each command exactly once — a double apply would
  // shift the scheduler's request counters and slice ids), nothing lost.
  EXPECT_EQ(result.recovered_digest, OracleDigests()[expected_committed]);
  // Resuming the stream from the frontier converges on the uneventful run.
  EXPECT_EQ(result.final_digest, OracleDigests()[kCommands]);
  EXPECT_TRUE(result.invariants_ok);
}

TEST(CrashMatrix, EveryBoundaryEveryCrashPoint) {
  OracleDigests();  // build serially before fanning out
  for (CrashPoint point : {CrashPoint::kPreAppend, CrashPoint::kPostAppendPreApply,
                           CrashPoint::kMidApply}) {
    // Trials are independent processes-in-miniature; run them through the
    // deterministic parallel runtime (trial k uses only value-captured
    // state).
    auto results = common::parallel::ParallelMap(
        kCommands, [&](std::uint64_t i) { return RunCrashTrial(point, i + 1); });
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      CheckTrial(point, i + 1, results[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(CrashMatrix, DeterministicAcrossThreadCounts) {
  OracleDigests();
  const int original = common::parallel::Threads();
  std::vector<std::vector<std::uint8_t>> digests;
  for (int threads : {1, 2, 8}) {
    common::parallel::SetThreads(threads);
    auto results = common::parallel::ParallelMap(8, [&](std::uint64_t i) {
      // A spread of boundaries across all three crash points.
      const CrashPoint point = static_cast<CrashPoint>(i % 3);
      return RunCrashTrial(point, 11 + 23 * i);
    });
    std::vector<std::uint8_t> combined;
    for (const auto& r : results) {
      EXPECT_TRUE(r.recovery_ok);
      combined.insert(combined.end(), r.recovered_digest.begin(),
                      r.recovered_digest.end());
      combined.insert(combined.end(), r.final_digest.begin(), r.final_digest.end());
    }
    digests.push_back(std::move(combined));
  }
  common::parallel::SetThreads(original);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(FleetService, ServesStreamAndSnapshotsCompactTheLog) {
  auto pod = FreshPod();
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  telemetry::Hub hub;
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  service.AttachTelemetry(&hub);
  ASSERT_TRUE(service.Recover().ok());
  auto served = service.Serve(Stream());
  EXPECT_FALSE(served.crashed);
  EXPECT_EQ(served.processed, kCommands);
  EXPECT_EQ(service.next_command_id(), kCommands + 1);
  EXPECT_EQ(service.applied_seq(), kCommands);
  const auto& stats = service.stats();
  EXPECT_EQ(stats.processed, kCommands);
  EXPECT_GT(stats.admitted, 0u);
  EXPECT_GT(stats.released, 0u);
  EXPECT_GT(stats.rejected_apply, 0u);
  EXPECT_GT(stats.snapshots, 0u);
  // Compaction after each snapshot keeps the log to the post-snapshot
  // suffix.
  EXPECT_LT(journal::Wal::Scan(wal_storage).records.size(), kCommands);
  EXPECT_GT(service.wal().reclaimed_bytes(), 0u);
  // The ISSUE's service metrics are visible on the hub.
  auto& metrics = hub.metrics();
  EXPECT_EQ(metrics.GetCounter("lightwave_svc_queued_total").value(), kCommands);
  EXPECT_EQ(metrics.GetCounter("lightwave_svc_admitted_total").value(), stats.admitted);
  EXPECT_EQ(metrics.GetCounter("lightwave_svc_rejected_total", {{"reason", "apply"}})
                .value(),
            stats.rejected_apply);
  EXPECT_EQ(metrics.GetCounter("lightwave_journal_appends_total").value(), kCommands);
  EXPECT_GT(metrics.GetCounter("lightwave_journal_bytes_total").value(), 0u);
  EXPECT_EQ(metrics.GetGauge("lightwave_svc_queue_depth").value(), 0.0);
}

TEST(FleetService, BackpressureRejectsWhenQueueFull) {
  auto pod = FreshPod();
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  svc::FleetServiceOptions options;
  options.queue_capacity = 2;
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, options);
  ASSERT_TRUE(service.Recover().ok());
  EXPECT_TRUE(service.Submit(Stream().Command(0)).ok());
  EXPECT_TRUE(service.Submit(Stream().Command(1)).ok());
  auto full = service.Submit(Stream().Command(2));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, common::Error::Code::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_backpressure, 1u);
  // Draining one slot re-opens admission.
  EXPECT_TRUE(service.ProcessOne());
  EXPECT_TRUE(service.Submit(Stream().Command(2)).ok());
}

TEST(FleetService, DuplicateAndGapSubmissions) {
  auto pod = FreshPod();
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.Submit(Stream().Command(0)).ok());
  ASSERT_TRUE(service.ProcessOne());
  // Resubmitting a committed command is acknowledged, not re-applied.
  EXPECT_TRUE(service.Submit(Stream().Command(0)).ok());
  EXPECT_EQ(service.stats().duplicate_acks, 1u);
  EXPECT_EQ(service.applied_seq(), 1u);
  // Skipping ahead is a client bug, reported as such.
  auto gap = service.Submit(Stream().Command(5));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.error().code, common::Error::Code::kInvalidArgument);
}

TEST(FleetService, ControllerStateRidesTheSnapshot) {
  // Build a controller with non-trivial health state (a tripped breaker),
  // bind it to the service, crash, and check the successor's controller
  // recovered the same breaker/counter state through the snapshot.
  auto make_world = [](ctrl::MessageBus& bus, std::vector<ocs::PalomarSwitch*> switches,
                       std::vector<std::unique_ptr<ctrl::OcsAgent>>& agents) {
    auto controller = std::make_unique<ctrl::FabricController>(bus, 1);
    for (std::size_t i = 0; i < switches.size(); ++i) {
      agents.push_back(std::make_unique<ctrl::OcsAgent>(*switches[i]));
      controller->Register(static_cast<int>(i), agents.back().get());
    }
    return controller;
  };

  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  std::vector<std::uint8_t> exported_before;
  {
    auto pod = FreshPod();
    ctrl::MessageBus bus(3);
    std::vector<std::unique_ptr<ctrl::OcsAgent>> agents;
    auto controller = make_world(bus, {&pod->ocs(0), &pod->ocs(1)}, agents);
    // Trip agent 1's breaker by partitioning the bus mid-run.
    bus.PartitionAfter(0);
    for (int i = 0; i < 4; ++i) {
      (void)controller->ApplyTopology({{1, {{0, 100}}}});
    }
    bus.HealPartition();
    ASSERT_NE(controller->breaker_state(1), ctrl::BreakerState::kClosed);

    svc::FleetServiceOptions options = MatrixOptions();
    options.snapshot_interval = 1;  // snapshot every command
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, options);
    service.BindController(controller.get());
    ASSERT_TRUE(service.Recover().ok());
    ASSERT_TRUE(service.Submit(Stream().Command(0)).ok());
    ASSERT_TRUE(service.ProcessOne());
    ctrl::WireWriter writer;
    controller->ExportState(writer);
    exported_before = writer.Take();
  }

  auto pod = FreshPod();
  ctrl::MessageBus bus(3);
  std::vector<std::unique_ptr<ctrl::OcsAgent>> agents;
  auto controller = make_world(bus, {&pod->ocs(0), &pod->ocs(1)}, agents);
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  service.BindController(controller.get());
  auto recovery = service.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery.value().snapshot_loaded);
  EXPECT_NE(controller->breaker_state(1), ctrl::BreakerState::kClosed);
  ctrl::WireWriter writer;
  controller->ExportState(writer);
  EXPECT_EQ(writer.buffer(), exported_before);
}

TEST(FleetService, CrashPointVisitAccounting) {
  auto pod = FreshPod();
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  ctrl::FaultInjector injector(7, ctrl::FaultProfile{});
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  service.SetFaultInjector(&injector);
  ASSERT_TRUE(service.Recover().ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.Submit(Stream().Command(i)).ok());
    ASSERT_TRUE(service.ProcessOne());
  }
  // Every processed command visits each crash point exactly once — the
  // matrix's "crash at command k" arithmetic depends on it.
  EXPECT_EQ(injector.crash_point_visits(CrashPoint::kPreAppend), 10u);
  EXPECT_EQ(injector.crash_point_visits(CrashPoint::kPostAppendPreApply), 10u);
  EXPECT_EQ(injector.crash_point_visits(CrashPoint::kMidApply), 10u);
  EXPECT_EQ(injector.crashes_fired(), 0u);
}

}  // namespace
}  // namespace lightwave
