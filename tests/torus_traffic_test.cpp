// Tests for the torus traffic-pattern analysis.
#include <gtest/gtest.h>

#include "sim/torus_traffic.h"
#include <set>
#include <tuple>

namespace lightwave::sim {
namespace {

const tpu::SliceShape kShape{2, 2, 2};  // 8x8x8 chips

TEST(TorusTraffic, NeighborShiftIsPerfectlyBalanced) {
  const auto pattern = NeighborShift(kShape, tpu::Dim::kX);
  const auto analysis = AnalyzePattern(kShape, pattern, "shift", 1e6);
  EXPECT_EQ(analysis.peak_link_load, 1);
  EXPECT_NEAR(analysis.mean_link_load, 1.0, 1e-12);
  EXPECT_NEAR(analysis.mean_hops_per_flow, 1.0, 1e-12);
  EXPECT_NEAR(analysis.link_efficiency, 1.0, 1e-9);
}

TEST(TorusTraffic, PatternsCoverEveryChipOnce) {
  for (const auto& pattern :
       {NeighborShift(kShape, tpu::Dim::kZ), Transpose(kShape), Opposite(kShape),
        RandomPermutation(kShape, 9)}) {
    EXPECT_EQ(pattern.size(), 512u);
    // Destinations of a permutation pattern are unique.
    std::set<std::tuple<int, int, int>> dsts;
    for (const auto& [src, dst] : pattern) {
      dsts.insert({dst.x, dst.y, dst.z});
    }
    if (&pattern != nullptr) {
      // NeighborShift/Opposite/RandomPermutation are permutations; Transpose
      // on an asymmetric shape may collide, so only check the size bound.
      EXPECT_LE(dsts.size(), 512u);
    }
  }
}

TEST(TorusTraffic, OppositeCornerIsWorstDistance) {
  const auto shift = AnalyzePattern(kShape, NeighborShift(kShape, tpu::Dim::kX), "s", 1e6);
  const auto opposite = AnalyzePattern(kShape, Opposite(kShape), "o", 1e6);
  EXPECT_GT(opposite.mean_hops_per_flow, shift.mean_hops_per_flow);
  // 8x8x8 torus: opposite corner = 4+4+4 = 12 hops for every flow.
  EXPECT_NEAR(opposite.mean_hops_per_flow, 12.0, 1e-12);
}

TEST(TorusTraffic, RandomPermutationConcentratesLoad) {
  const auto shift = AnalyzePattern(kShape, NeighborShift(kShape, tpu::Dim::kX), "s", 1e6);
  const auto random = AnalyzePattern(kShape, RandomPermutation(kShape, 11), "r", 1e6);
  EXPECT_GT(random.peak_link_load, shift.peak_link_load);
  EXPECT_GT(random.completion_us, shift.completion_us);
  EXPECT_LT(random.link_efficiency, 1.0);
}

TEST(TorusTraffic, CompletionScalesWithBytes) {
  const auto pattern = Opposite(kShape);
  const auto small = AnalyzePattern(kShape, pattern, "x", 1e6);
  const auto large = AnalyzePattern(kShape, pattern, "x", 4e6);
  EXPECT_NEAR(large.completion_us, 4.0 * small.completion_us, 1e-6);
}

TEST(TorusTraffic, AsymmetricSliceShapesChangeBalance) {
  // On 4x4x256 chips, Z-opposite traffic travels 128 hops in z.
  const tpu::SliceShape skinny{1, 1, 64};
  const auto analysis = AnalyzePattern(skinny, Opposite(skinny), "opp", 1e6);
  EXPECT_NEAR(analysis.mean_hops_per_flow, 2.0 + 2.0 + 128.0, 1e-9);
}

}  // namespace
}  // namespace lightwave::sim
