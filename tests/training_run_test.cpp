// Tests for the event-driven training-run simulation (dynamic availability,
// §4.2.2) and the §4.2.3 deployment-timeline model.
#include <gtest/gtest.h>

#include "core/tco.h"
#include "sim/training_run.h"

namespace lightwave::sim {
namespace {

TrainingRunConfig BaseConfig() {
  TrainingRunConfig config;
  config.shape = tpu::SliceShape{2, 2, 4};  // 16 cubes of 64
  config.run_hours = 24.0 * 60.0;
  config.cube_mtbf_hours = 2000.0;
  return config;
}

TEST(TrainingRun, NoFailuresMeansFullGoodput) {
  auto config = BaseConfig();
  config.cube_mtbf_hours = 1e12;  // effectively never
  const auto result = SimulateTrainingRun(config);
  EXPECT_EQ(result.failures, 0);
  EXPECT_NEAR(result.goodput, 1.0, 1e-6);
  EXPECT_GT(result.steps_completed, 0u);
}

TEST(TrainingRun, ReconfigurableBeatsStatic) {
  auto config = BaseConfig();
  config.reconfigurable = true;
  const auto reconf = SimulateTrainingRun(config);
  config.reconfigurable = false;
  const auto fixed = SimulateTrainingRun(config);
  EXPECT_GT(reconf.failures, 0);
  EXPECT_GT(reconf.goodput, fixed.goodput);
  EXPECT_GT(reconf.cube_swaps, 0);
  EXPECT_EQ(fixed.cube_swaps, 0);
  // The static fabric stalls for full hardware MTTRs.
  EXPECT_GT(fixed.stall_hours, reconf.stall_hours);
}

TEST(TrainingRun, Deterministic) {
  const auto a = SimulateTrainingRun(BaseConfig());
  const auto b = SimulateTrainingRun(BaseConfig());
  EXPECT_EQ(a.steps_completed, b.steps_completed);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
}

TEST(TrainingRun, HigherFailureRateLowersGoodput) {
  auto reliable = BaseConfig();
  reliable.cube_mtbf_hours = 20'000.0;
  auto flaky = BaseConfig();
  flaky.cube_mtbf_hours = 500.0;
  EXPECT_GT(SimulateTrainingRun(reliable).goodput, SimulateTrainingRun(flaky).goodput);
}

TEST(TrainingRun, FrequentCheckpointsReduceRollback) {
  auto sparse = BaseConfig();
  sparse.checkpoint_interval_steps = 500;
  auto dense = BaseConfig();
  dense.checkpoint_interval_steps = 10;
  const auto sparse_result = SimulateTrainingRun(sparse);
  const auto dense_result = SimulateTrainingRun(dense);
  EXPECT_LE(dense_result.steps_lost_to_rollback, sparse_result.steps_lost_to_rollback);
}

TEST(TrainingRun, FullPodSliceHasNoSpares) {
  auto config = BaseConfig();
  config.shape = tpu::SliceShape{4, 4, 4};  // all 64 cubes
  config.reconfigurable = true;
  const auto result = SimulateTrainingRun(config);
  // Every repair must wait for hardware (stalls comparable to static).
  EXPECT_GT(result.failures, 0);
  EXPECT_GT(result.stall_hours, 0.0);
}

TEST(TrainingRun, GoodputWithinBounds) {
  for (auto reconfigurable : {true, false}) {
    auto config = BaseConfig();
    config.reconfigurable = reconfigurable;
    const auto result = SimulateTrainingRun(config);
    EXPECT_GE(result.goodput, 0.0);
    EXPECT_LE(result.goodput, 1.0);
  }
}

}  // namespace
}  // namespace lightwave::sim

namespace lightwave::core {
namespace {

TEST(Deployment, LightwaveRampsIncrementally) {
  const auto timeline = SimulateDeployment(64, 8, 2);
  ASSERT_EQ(timeline.lightwave_usable_fraction.size(), 10u);  // 8 build + 2 verify
  // Monotone ramp reaching 100% at build completion.
  EXPECT_NEAR(timeline.lightwave_usable_fraction[0], 8.0 / 64.0, 1e-12);
  EXPECT_NEAR(timeline.lightwave_usable_fraction[7], 1.0, 1e-12);
  for (std::size_t w = 1; w < timeline.lightwave_usable_fraction.size(); ++w) {
    EXPECT_GE(timeline.lightwave_usable_fraction[w],
              timeline.lightwave_usable_fraction[w - 1]);
  }
}

TEST(Deployment, StaticWaitsForFullVerification) {
  const auto timeline = SimulateDeployment(64, 8, 2);
  for (std::size_t w = 0; w + 1 < timeline.static_usable_fraction.size(); ++w) {
    EXPECT_EQ(timeline.static_usable_fraction[w], 0.0) << w;
  }
  EXPECT_EQ(timeline.static_usable_fraction.back(), 1.0);
  // Lightwave delivers several times the capacity-weeks during build-out.
  EXPECT_GT(timeline.lightwave_capacity_weeks, 3.0 * timeline.static_capacity_weeks);
}

}  // namespace
}  // namespace lightwave::core
