// Unit tests for the PHY layer: BER model anchoring and monotonicity, MPI
// floors, OIM gains, and Monte-Carlo / analytic agreement (Fig. 11a vs 11b).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "optics/transceiver.h"
#include "phy/ber_model.h"
#include "phy/monte_carlo.h"
#include "phy/oim.h"

namespace lightwave::phy {
namespace {

using common::DbmPower;
using common::Decibel;
using optics::Modulation;

constexpr Decibel kNoMpi{-400.0};

BerModel Pam4Model() { return BerModel(Modulation::kPam4, DbmPower{-9.5}); }

// --- ber model ---------------------------------------------------------------

TEST(BerModel, AnchoredAtSensitivity) {
  const BerModel model = Pam4Model();
  EXPECT_NEAR(model.PreFecBer(DbmPower{-9.5}, kNoMpi), kKp4BerThreshold,
              kKp4BerThreshold * 0.02);
}

TEST(BerModel, NrzAnchor) {
  const BerModel model(Modulation::kNrz, DbmPower{-14.0});
  EXPECT_NEAR(model.PreFecBer(DbmPower{-14.0}, kNoMpi), kKp4BerThreshold,
              kKp4BerThreshold * 0.02);
}

TEST(BerModel, BerDecreasesWithPower) {
  const BerModel model = Pam4Model();
  double prev = 1.0;
  for (double p = -12.0; p <= -6.0; p += 1.0) {
    const double ber = model.PreFecBer(DbmPower{p}, kNoMpi);
    EXPECT_LT(ber, prev);
    prev = ber;
  }
}

TEST(BerModel, BerIncreasesWithMpi) {
  const BerModel model = Pam4Model();
  const DbmPower rx{-8.0};
  EXPECT_LT(model.PreFecBer(rx, Decibel{-38.0}), model.PreFecBer(rx, Decibel{-32.0}));
  EXPECT_LT(model.PreFecBer(rx, Decibel{-32.0}), model.PreFecBer(rx, Decibel{-26.0}));
}

TEST(BerModel, HighMpiCausesErrorFloor) {
  const BerModel model = Pam4Model();
  // At -24 dB MPI the beat noise scales with signal power: more power no
  // longer reaches the KP4 threshold (the flattening curves of Fig. 11a).
  const double floor_ber = model.PreFecBer(DbmPower{10.0}, Decibel{-24.0});
  EXPECT_GT(floor_ber, kKp4BerThreshold);
  EXPECT_EQ(model.SensitivityAt(kKp4BerThreshold, Decibel{-24.0}).value(), 1e9);
}

TEST(BerModel, SensitivityDegradesWithMpi) {
  const BerModel model = Pam4Model();
  const double clean = model.SensitivityAt(kKp4BerThreshold, kNoMpi).value();
  const double mpi_38 = model.SensitivityAt(kKp4BerThreshold, Decibel{-38.0}).value();
  const double mpi_32 = model.SensitivityAt(kKp4BerThreshold, Decibel{-32.0}).value();
  EXPECT_LT(clean, mpi_38);
  EXPECT_LT(mpi_38, mpi_32);
}

TEST(BerModel, OimGainExceeds1dbAtMinus32) {
  // The headline Fig. 11 number: >1 dB sensitivity improvement from OIM at
  // -32 dB MPI and the KP4 threshold.
  const BerModel model = Pam4Model();
  const OimFilter oim;
  EXPECT_GT(model.OimGain(Decibel{-32.0}, oim).value(), 1.0);
}

TEST(BerModel, OimRecoversFlooredLink) {
  const BerModel model = Pam4Model();
  const OimFilter oim;
  // -24 dB floors without OIM but closes with it.
  EXPECT_EQ(model.SensitivityAt(kKp4BerThreshold, Decibel{-24.0}).value(), 1e9);
  EXPECT_LT(model.SensitivityAt(kKp4BerThreshold, oim.Mitigate(Decibel{-24.0})).value(),
            0.0);
}

TEST(BerModel, RequiredQValues) {
  EXPECT_NEAR(RequiredQ(Modulation::kNrz, 2e-4), 3.54, 0.02);
  EXPECT_NEAR(RequiredQ(Modulation::kPam4, 2e-4), 3.46, 0.02);
}

// --- oim ---------------------------------------------------------------------

TEST(Oim, SuppressionAppliedWhenLocked) {
  const OimFilter oim;
  EXPECT_NEAR(oim.Mitigate(Decibel{-32.0}).value(), -44.0, 1e-9);
}

TEST(Oim, ReducedSuppressionOutOfTrackingRange) {
  OimConfig config;
  config.tracking_range_ghz = 10.0;
  const OimFilter oim(config);
  const double in_range = oim.Mitigate(Decibel{-32.0}, 5.0).value();
  const double out_of_range = oim.Mitigate(Decibel{-32.0}, 25.0).value();
  EXPECT_LT(in_range, out_of_range);
  EXPECT_NEAR(out_of_range, -33.0, 1e-9);
}

// --- oim tracker -----------------------------------------------------------------

TEST(OimTracker, ConvergesOnStaticOffset) {
  OimTracker tracker;
  for (int i = 0; i < 30; ++i) tracker.Step(8.0);
  EXPECT_NEAR(tracker.notch_center_ghz(), 8.0, 1e-3);
  EXPECT_NEAR(tracker.SuppressionFor(8.0).value(),
              tracker.config().locked_suppression.value(), 1e-3);
}

TEST(OimTracker, TracksSlowDrift) {
  OimTracker tracker;
  double offset = 0.0;
  for (int i = 0; i < 200; ++i) tracker.Step(offset);
  double worst_supp = 100.0;
  for (int i = 0; i < 500; ++i) {
    offset += 0.05;  // 0.05 GHz per update: well inside the slew limit
    tracker.Step(offset);
    worst_supp = std::min(worst_supp, tracker.SuppressionFor(offset).value());
  }
  EXPECT_GT(worst_supp, 11.5);  // essentially full suppression throughout
}

TEST(OimTracker, FastDriftDefeatsSlewLimit) {
  OimTracker tracker;
  double offset = 0.0;
  double worst_supp = 100.0;
  for (int i = 0; i < 100; ++i) {
    offset += 2.0;  // 2 GHz per update >> 0.5 GHz slew limit
    tracker.Step(offset);
    worst_supp = std::min(worst_supp, tracker.SuppressionFor(offset).value());
  }
  EXPECT_LT(worst_supp, 3.0);  // the notch falls behind; suppression collapses
}

TEST(OimTracker, SuppressionRollsOffLorentzian) {
  OimTracker tracker;
  for (int i = 0; i < 30; ++i) tracker.Step(0.0);
  const double full = tracker.SuppressionFor(0.0).value();
  const double at_edge = tracker.SuppressionFor(1.0).value();  // half width
  EXPECT_NEAR(at_edge, full / 2.0, 1e-6);
  EXPECT_LT(tracker.SuppressionFor(5.0).value(), full / 10.0);
}

TEST(OimTracker, MitigateAppliesCurrentSuppression) {
  OimTracker tracker;
  for (int i = 0; i < 30; ++i) tracker.Step(3.0);
  const auto mitigated = tracker.Mitigate(Decibel{-32.0}, 3.0);
  EXPECT_NEAR(mitigated.value(), -32.0 - tracker.config().locked_suppression.value(),
              1e-3);
}

TEST(OimTracker, NoisyEstimatesStillConverge) {
  OimTracker tracker;
  common::Rng rng(71);
  for (int i = 0; i < 200; ++i) {
    tracker.Step(6.0, rng.Gaussian(0.0, tracker.config().measurement_noise_ghz));
  }
  EXPECT_NEAR(tracker.notch_center_ghz(), 6.0, 0.2);
}

// --- monte carlo -----------------------------------------------------------------

TEST(MonteCarlo, MatchesAnalyticCleanChannel) {
  const BerModel model = Pam4Model();
  MonteCarloConfig config;
  config.symbols = 4'000'000;
  MonteCarloChannel channel(model, kNoMpi, config);
  const DbmPower rx{-9.0};
  const double simulated = channel.Run(rx).Ber();
  const double analytic = model.PreFecBer(rx, kNoMpi);
  EXPECT_GT(simulated, analytic * 0.6);
  EXPECT_LT(simulated, analytic * 1.6);
}

TEST(MonteCarlo, MatchesAnalyticWithMpi) {
  const BerModel model = Pam4Model();
  MonteCarloConfig config;
  config.symbols = 4'000'000;
  MonteCarloChannel channel(model, Decibel{-30.0}, config);
  const DbmPower rx{-8.0};
  const double simulated = channel.Run(rx).Ber();
  const double analytic = model.PreFecBer(rx, Decibel{-30.0});
  EXPECT_GT(simulated, analytic * 0.5);
  EXPECT_LT(simulated, analytic * 2.0);
}

TEST(MonteCarlo, OimImprovesMeasuredBer) {
  const BerModel model = Pam4Model();
  MonteCarloConfig config;
  config.symbols = 2'000'000;
  MonteCarloChannel without(model, Decibel{-28.0}, config);
  config.oim_enabled = true;
  MonteCarloChannel with(model, Decibel{-28.0}, config);
  const DbmPower rx{-8.5};
  EXPECT_LT(with.Run(rx).Ber(), without.Run(rx).Ber());
}

TEST(MonteCarlo, DeterministicForSeed) {
  const BerModel model = Pam4Model();
  MonteCarloConfig config;
  config.symbols = 200'000;
  MonteCarloChannel a(model, Decibel{-30.0}, config);
  MonteCarloChannel b(model, Decibel{-30.0}, config);
  EXPECT_EQ(a.Run(DbmPower{-9.0}).bit_errors, b.Run(DbmPower{-9.0}).bit_errors);
}

TEST(MonteCarlo, BitsCounted) {
  const BerModel model = Pam4Model();
  MonteCarloConfig config;
  config.symbols = 1000;
  MonteCarloChannel channel(model, kNoMpi, config);
  EXPECT_EQ(channel.Run(DbmPower{0.0}).bits, 2000u);  // PAM4: 2 bits/symbol
}

class MonteCarloPowerSweep : public ::testing::TestWithParam<double> {};

TEST_P(MonteCarloPowerSweep, BerWithinBandOfAnalytic) {
  const BerModel model = Pam4Model();
  MonteCarloConfig config;
  config.symbols = 3'000'000;
  MonteCarloChannel channel(model, Decibel{-32.0}, config);
  const DbmPower rx{GetParam()};
  const double simulated = channel.Run(rx).Ber();
  const double analytic = model.PreFecBer(rx, Decibel{-32.0});
  if (analytic > 1e-5) {  // enough statistics at 3M symbols
    EXPECT_GT(simulated, analytic * 0.5) << "rx=" << rx.value();
    EXPECT_LT(simulated, analytic * 2.0) << "rx=" << rx.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, MonteCarloPowerSweep,
                         ::testing::Values(-10.0, -9.0, -8.0, -7.0));

}  // namespace
}  // namespace lightwave::phy
