// Unit tests for the simulation module: event queue, collective costs and
// the event-driven validation, the LLM performance model (Table 2 optima),
// availability math (Fig. 15), traffic matrices, and the DCN flow simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/availability.h"
#include "sim/collective.h"
#include "sim/dcn_flow.h"
#include "sim/event.h"
#include "sim/llm_model.h"
#include "sim/traffic.h"

namespace lightwave::sim {
namespace {

// --- event queue -----------------------------------------------------------------

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.At(2.0, [&] { fired.push_back(2); });
  q.At(1.0, [&] { fired.push_back(1); });
  q.At(3.0, [&] { fired.push_back(3); });
  q.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.At(1.0, [&] { fired.push_back(0); });
  q.At(1.0, [&] { fired.push_back(1); });
  q.At(1.0, [&] { fired.push_back(2); });
  q.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, HandlersScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.After(1.0, chain);
  };
  q.After(0.0, chain);
  q.Run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueueTest, RunUntilStopsEarly) {
  EventQueue q;
  int fired = 0;
  q.At(1.0, [&] { ++fired; });
  q.At(10.0, [&] { ++fired; });
  q.Run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, EqualTimestampsInterleavedWithHandlersStayFifo) {
  EventQueue q;
  std::vector<int> fired;
  // A handler that schedules more work at the *same* timestamp must still
  // run after everything already queued there (sequence numbers, not
  // insertion luck, break the tie).
  q.At(1.0, [&] {
    fired.push_back(0);
    q.At(1.0, [&] { fired.push_back(3); });
  });
  q.At(1.0, [&] { fired.push_back(1); });
  q.At(1.0, [&] { fired.push_back(2); });
  q.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueueTest, RunUntilIncludesEventExactlyAtBound) {
  EventQueue q;
  std::vector<double> fired;
  q.At(1.0, [&] { fired.push_back(1.0); });
  q.At(5.0, [&] { fired.push_back(5.0); });
  q.At(5.5, [&] { fired.push_back(5.5); });
  EXPECT_EQ(q.Run(5.0), 2u);  // the event *at* the bound fires
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenNothingFires) {
  EventQueue q;
  EXPECT_EQ(q.Run(3.0), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);  // clock lands on the bound even when idle
}

TEST(EventQueueTest, StepOnEmptyQueueReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Step());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, AfterZeroFiresAtCurrentTime) {
  EventQueue q;
  double seen = -1.0;
  q.At(2.0, [&] {
    q.After(0.0, [&] { seen = q.now(); });
  });
  q.Run();
  EXPECT_DOUBLE_EQ(seen, 2.0);  // zero delay fires at now, not before/after
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

// --- collectives -----------------------------------------------------------------

TEST(Collective, RingAllReduceClosedForm) {
  // 1 GB over 8 nodes at 400 Gb/s per direction (800 Gb/s ring rate).
  const auto cost = RingAllReduce(1e9, 8, 400.0, 1.0);
  // 2 * (7/8) GB at 100 GB/s = 17.5 ms.
  EXPECT_NEAR(cost.bandwidth_term_us, 17500.0, 1.0);
  EXPECT_NEAR(cost.latency_term_us, 14.0, 1e-9);
}

TEST(Collective, SingleMemberIsFree) {
  EXPECT_EQ(RingAllReduce(1e9, 1, 400.0, 1.0).time_us, 0.0);
}

TEST(Collective, ReduceScatterIsHalfAllReduceBandwidth) {
  const auto ar = RingAllReduce(1e9, 8, 400.0, 0.0);
  const auto rs = RingReduceScatter(1e9, 8, 400.0, 0.0);
  EXPECT_NEAR(ar.bandwidth_term_us, 2.0 * rs.bandwidth_term_us, 1e-6);
}

TEST(Collective, RingsOfShapeStructure) {
  const auto rings = RingsOf(tpu::SliceShape{2, 1, 8});
  ASSERT_EQ(rings.size(), 3u);
  EXPECT_EQ(rings[0].length_chips, 8);
  EXPECT_EQ(rings[0].optical_hops, 2);
  EXPECT_EQ(rings[0].electrical_hops, 6);
  // Single-cube dimension still wraps optically once.
  EXPECT_EQ(rings[1].length_chips, 4);
  EXPECT_EQ(rings[1].optical_hops, 1);
  EXPECT_EQ(rings[2].length_chips, 32);
  EXPECT_EQ(rings[2].optical_hops, 8);
}

TEST(Collective, TorusAllReduceMatchesEventSim) {
  const tpu::SliceShape shape{2, 2, 4};
  const double bytes = 64e6;
  const auto analytic = TorusAllReduce(shape, bytes);
  const double simulated = SimulateTorusAllReduce(shape, bytes);
  EXPECT_NEAR(simulated, analytic.time_us, analytic.time_us * 0.01);
}

TEST(Collective, BiggerSliceSameDataNotSlowerPerByte) {
  // All-reduce bandwidth term approaches 2*bytes/B regardless of n; latency
  // grows. Sanity: 4x4x4 vs 2x2x2 cube slices within 2x.
  const auto small = TorusAllReduce(tpu::SliceShape{2, 2, 2}, 1e9);
  const auto large = TorusAllReduce(tpu::SliceShape{4, 4, 4}, 1e9);
  EXPECT_LT(large.bandwidth_term_us, small.bandwidth_term_us * 1.5);
}

TEST(Collective, TwoMemberRingClosedForm) {
  // n=2 degenerates to one exchange each way: 2*(1/2)*bytes at ring rate
  // plus two hop latencies.
  const auto cost = RingAllReduce(1e9, 2, 400.0, 1.0);
  EXPECT_DOUBLE_EQ(cost.bandwidth_term_us, 1.0 / (2.0 * 400.0 / 8.0 / 1e6));
  EXPECT_DOUBLE_EQ(cost.latency_term_us, 2.0);
  EXPECT_DOUBLE_EQ(cost.time_us, cost.bandwidth_term_us + cost.latency_term_us);
}

TEST(Collective, ZeroBytesIsLatencyOnly) {
  const auto ar = RingAllReduce(0.0, 8, 400.0, 1.0);
  EXPECT_DOUBLE_EQ(ar.bandwidth_term_us, 0.0);
  EXPECT_DOUBLE_EQ(ar.time_us, ar.latency_term_us);
  EXPECT_DOUBLE_EQ(ar.latency_term_us, 14.0);
  const auto rs = RingReduceScatter(0.0, 8, 400.0, 1.0);
  EXPECT_DOUBLE_EQ(rs.bandwidth_term_us, 0.0);
  EXPECT_DOUBLE_EQ(rs.latency_term_us, 7.0);
}

TEST(Collective, SingleCubeRingsWrapOpticallyOnce) {
  // A 1x1x1 slice still closes each 4-chip dimension through the OCS: one
  // optical wrap hop, three electrical hops per ring.
  const auto rings = RingsOf(tpu::SliceShape{1, 1, 1});
  ASSERT_EQ(rings.size(), 3u);
  for (const auto& ring : rings) {
    EXPECT_EQ(ring.length_chips, 4);
    EXPECT_EQ(ring.optical_hops, 1);
    EXPECT_EQ(ring.electrical_hops, 3);
  }
}

TEST(Collective, TorusAllReduceMatchesEventSimAcrossShapes) {
  // The analytic form and the event-driven validator must agree to the
  // pinned tolerance over a spread of shapes, including degenerate ones.
  for (const auto& shape :
       {tpu::SliceShape{1, 1, 1}, tpu::SliceShape{1, 1, 64}, tpu::SliceShape{2, 1, 8},
        tpu::SliceShape{4, 4, 4}, tpu::SliceShape{2, 4, 8}}) {
    const double bytes = 64e6;
    const auto analytic = TorusAllReduce(shape, bytes);
    const double simulated = SimulateTorusAllReduce(shape, bytes);
    EXPECT_NEAR(simulated, analytic.time_us, analytic.time_us * 0.01)
        << shape.ToString();
  }
}

TEST(Collective, ContractsRejectBadArguments) {
  // collective.cpp's contracts fire through the pluggable handler instead
  // of assert(); a recording handler observes them without aborting.
  std::vector<common::CheckFailure> failures;
  common::ScopedCheckHandler scoped(
      [&](const common::CheckFailure& f) { failures.push_back(f); });
  RingAllReduce(1e6, 0, 400.0, 1.0);  // n < 1
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].kind, common::CheckKind::kCheck);
  failures.clear();
  RingAllReduce(1e6, 8, -400.0, 1.0);  // non-positive link rate
  ASSERT_EQ(failures.size(), 1u);
  failures.clear();
  RingReduceScatter(-1.0, 8, 400.0, 1.0);  // negative payload
  ASSERT_EQ(failures.size(), 1u);
}

// --- llm model -------------------------------------------------------------------

TEST(LlmModel, SpecsDeriveHidden) {
  const auto spec = Llm1();
  EXPECT_NEAR(12.0 * spec.layers * spec.hidden * spec.hidden, 70e9, 70e9 * 1e-9);
}

TEST(LlmModel, Table2OptimalShapes) {
  // The headline Table 2 result: the best shape matches the published
  // optimum for each workload.
  const LlmPerfModel model;
  EXPECT_EQ(model.RankShapes(Llm0(), 64).front().shape.ToString(), "8x16x32");
  EXPECT_EQ(model.RankShapes(Llm1(), 64).front().shape.ToString(), "4x4x256");
  EXPECT_EQ(model.RankShapes(Llm2(), 64).front().shape.ToString(), "16x16x16");
}

TEST(LlmModel, Table2SpeedupMagnitudes) {
  const LlmPerfModel model;
  const tpu::SliceShape baseline{4, 4, 4};  // 16x16x16 chips
  auto speedup = [&](const LlmSpec& spec, const tpu::SliceShape& best) {
    return model.StepTime(spec, baseline).total_us / model.StepTime(spec, best).total_us;
  };
  // Paper: 1.54x / 3.32x / 1.0x. The shape (ordering, rough factors) must
  // hold; exact values are calibration-dependent (EXPERIMENTS.md).
  const double s0 = speedup(Llm0(), tpu::SliceShape{2, 4, 8});
  const double s1 = speedup(Llm1(), tpu::SliceShape{1, 1, 64});
  const double s2 = speedup(Llm2(), tpu::SliceShape{4, 4, 4});
  EXPECT_GT(s0, 1.2);
  EXPECT_LT(s0, 2.2);
  EXPECT_GT(s1, 2.2);
  EXPECT_LT(s1, 4.5);
  EXPECT_DOUBLE_EQ(s2, 1.0);
  EXPECT_GT(s1, s0);  // LLM1 gains more than LLM0 (more skewed parallelism)
}

TEST(LlmModel, ThroughputConsistentWithStepTime) {
  const LlmPerfModel model;
  const auto b = model.StepTime(Llm0(), tpu::SliceShape{2, 4, 8});
  EXPECT_NEAR(b.throughput_seq_per_s, Llm0().global_batch / (b.total_us * 1e-6), 1e-6);
}

TEST(LlmModel, MismatchPenaltyAtMatchedShapeIsOne) {
  const LlmPerfModel model;
  EXPECT_DOUBLE_EQ(model.StepTime(Llm2(), tpu::SliceShape{4, 4, 4}).mismatch_penalty, 1.0);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm0(), tpu::SliceShape{2, 4, 8}).mismatch_penalty, 1.0);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm1(), tpu::SliceShape{1, 1, 64}).mismatch_penalty, 1.0);
}

TEST(LlmModel, MismatchPenaltyGrowsWithDistance) {
  const LlmPerfModel model;
  // For LLM2 the penalty grows as the shape departs the 16x16x16 optimum.
  const double near = model.StepTime(Llm2(), tpu::SliceShape{2, 4, 8}).mismatch_penalty;
  const double far = model.StepTime(Llm2(), tpu::SliceShape{1, 1, 64}).mismatch_penalty;
  EXPECT_GT(near, 1.0);
  EXPECT_GT(far, near);
}

TEST(LlmModel, RankShapesCoversAllOrderedShapes) {
  const LlmPerfModel model;
  EXPECT_EQ(model.RankShapes(Llm0(), 64).size(), tpu::EnumerateShapes(64).size());
}

// --- availability ----------------------------------------------------------------

TEST(Availability, FabricAvailabilityMatchesFig15a) {
  // 99.9% per OCS: 96 -> ~90%, 48 -> ~95%, 24 -> ~98% (§4.2.2).
  EXPECT_NEAR(FabricAvailability(0.999, 96), 0.908, 0.005);
  EXPECT_NEAR(FabricAvailability(0.999, 48), 0.953, 0.005);
  EXPECT_NEAR(FabricAvailability(0.999, 24), 0.976, 0.005);
}

TEST(Availability, FabricAvailabilityMonotone) {
  EXPECT_GT(FabricAvailability(0.9999, 48), FabricAvailability(0.999, 48));
  EXPECT_GT(FabricAvailability(0.999, 24), FabricAvailability(0.999, 48));
}

TEST(Availability, Fig15bHeadlineNumbers) {
  // At 99.9% server availability and 1024-TPU slices (16 cubes): the
  // reconfigurable fabric commits 3 slices (75% goodput), the static fabric
  // only 1 (25%).
  EXPECT_NEAR(GoodputReconfigurable(0.999, 16), 0.75, 1e-9);
  EXPECT_NEAR(GoodputStatic(0.999, 16), 0.25, 1e-9);
}

TEST(Availability, Fig15bConvergenceAt1024) {
  // 99.5% and 99.9% server availability converge to 75% goodput at 1024;
  // 99% supports only two slices (50%).
  EXPECT_NEAR(GoodputReconfigurable(0.995, 16), 0.75, 1e-9);
  EXPECT_NEAR(GoodputReconfigurable(0.99, 16), 0.50, 1e-9);
}

TEST(Availability, Fig15bHalfPodSlice) {
  // 2048-TPU slices: one slice regardless of server availability.
  for (double a : {0.99, 0.995, 0.999}) {
    EXPECT_NEAR(GoodputReconfigurable(a, 32), 0.5, 1e-9) << a;
  }
}

TEST(Availability, SingleCubeSlicesDegradeGracefully) {
  const double g999 = GoodputReconfigurable(0.999, 1);
  const double g99 = GoodputReconfigurable(0.99, 1);
  EXPECT_GT(g999, g99);
  EXPECT_GT(g999, 0.85);
  EXPECT_GT(g99, 0.5);
}

TEST(Availability, StaticNeverBeatsReconfigurable) {
  for (double a : {0.99, 0.995, 0.999}) {
    for (int m : {1, 2, 4, 8, 16, 32}) {
      EXPECT_LE(GoodputStatic(a, m), GoodputReconfigurable(a, m))
          << "a=" << a << " m=" << m;
    }
  }
}

TEST(Availability, SingleCubeSlicesEquivalentAcrossFabrics) {
  // §4.2.2: for one-cube slices no reconfiguration is used, so goodput
  // matches between static and reconfigurable fabrics.
  for (double a : {0.99, 0.995, 0.999}) {
    EXPECT_DOUBLE_EQ(GoodputStatic(a, 1), GoodputReconfigurable(a, 1)) << a;
  }
}

TEST(Availability, MonteCarloAgreesWithAnalytic) {
  const double server = 0.999;
  const int m = 16;
  const int committed = CommittedSlicesReconfigurable(server, m);
  const auto mc = SimulateAvailability(server, m, committed, 20000, 99);
  // The analytic commitment promises >= 97%; MC should agree.
  EXPECT_GE(mc.reconfig_success_rate, 0.97 - 0.01);
  // One more slice would violate the target.
  const auto over = SimulateAvailability(server, m, committed + 1, 20000, 99);
  EXPECT_LT(over.reconfig_success_rate, 0.97);
}

TEST(Availability, MonteCarloStaticWorse) {
  const auto mc = SimulateAvailability(0.999, 16, 2, 20000, 101);
  EXPECT_GT(mc.reconfig_success_rate, mc.static_success_rate);
}

// --- traffic --------------------------------------------------------------------

TEST(Traffic, UniformTotals) {
  const auto m = UniformTraffic(8, 560.0);
  EXPECT_NEAR(m.Total(), 560.0, 1e-9);
  EXPECT_NEAR(m.at(0, 1), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.at(3, 3), 0.0);
  EXPECT_NEAR(m.SkewRatio(), 1.0, 1e-9);
}

TEST(Traffic, GravityConservesTotal) {
  common::Rng rng(5);
  const auto m = GravityTraffic(10, 1000.0, rng);
  EXPECT_NEAR(m.Total(), 1000.0, 1e-6);
  EXPECT_GT(m.SkewRatio(), 1.0);
}

TEST(Traffic, HotspotSkew) {
  common::Rng rng(6);
  const auto m = HotspotTraffic(16, 1000.0, 4, 0.6, rng);
  EXPECT_NEAR(m.Total(), 1000.0, 1e-6);
  EXPECT_GT(m.SkewRatio(), 5.0);
}

TEST(Traffic, RotationPreservesTotal) {
  common::Rng rng(7);
  const auto m = HotspotTraffic(12, 500.0, 3, 0.5, rng);
  const auto rotated = RotateHotspots(m, 4);
  EXPECT_NEAR(rotated.Total(), m.Total(), 1e-6);
  EXPECT_GT(rotated.SkewRatio(), 3.0);
}

TEST(Traffic, ScaledMatrix) {
  const auto m = UniformTraffic(4, 120.0).Scaled(0.5);
  EXPECT_NEAR(m.Total(), 60.0, 1e-9);
}

// --- dcn topologies & flows ---------------------------------------------------------

TEST(Dcn, ClosThroughputIsHoseBound) {
  const auto topo = DcnTopology::SpineClos(8, 1000.0);
  const auto demand = UniformTraffic(8, 8 * 700.0);  // per-block 700 in+out
  const double alpha = MaxConcurrentFlowScale(topo, demand);
  EXPECT_NEAR(alpha, 1000.0 / 700.0, 1e-9);
}

TEST(Dcn, UniformMeshCarriesUniformTrafficLikeClos) {
  const auto clos = DcnTopology::SpineClos(8, 1000.0);
  const auto mesh = DcnTopology::UniformMesh(8, 1000.0);
  const auto demand = UniformTraffic(8, 8 * 500.0);
  EXPECT_NEAR(MaxConcurrentFlowScale(mesh, demand), MaxConcurrentFlowScale(clos, demand),
              0.05 * MaxConcurrentFlowScale(clos, demand));
}

TEST(Dcn, EngineeredMeshBeatsUniformOnSkewedTraffic) {
  // The §4.2 claim: topology engineering buys ~30% throughput under skewed,
  // long-lived demand.
  common::Rng rng(11);
  const int n = 16;
  const auto demand = DisjointHotspotTraffic(n, n * 400.0, 6, 0.5, rng);
  const auto uniform = DcnTopology::UniformMesh(n, 1000.0);
  const auto engineered = DcnTopology::EngineeredMesh(n, 1000.0, demand);
  const double a_uniform = MaxConcurrentFlowScale(uniform, demand);
  const double a_engineered = MaxConcurrentFlowScale(engineered, demand);
  EXPECT_GT(a_engineered, 1.2 * a_uniform);
}

TEST(Dcn, EngineeredMeshRespectsPortBudget) {
  common::Rng rng(12);
  const int n = 12;
  const auto demand = HotspotTraffic(n, n * 400.0, 4, 0.5, rng);
  const auto topo = DcnTopology::EngineeredMesh(n, 1000.0, demand);
  for (int a = 0; a < n; ++a) {
    double row = 0.0;
    for (int b = 0; b < n; ++b) {
      if (a != b) row += topo.TrunkCapacity(a, b);
    }
    EXPECT_LE(row, 1000.0 * 1.01) << "block " << a;
  }
}

TEST(Dcn, TrunksSymmetric) {
  common::Rng rng(13);
  const auto demand = GravityTraffic(8, 1000.0, rng);
  const auto topo = DcnTopology::EngineeredMesh(8, 800.0, demand);
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      EXPECT_DOUBLE_EQ(topo.TrunkCapacity(a, b), topo.TrunkCapacity(b, a));
    }
  }
}

/// Reference construction for the proportional-fit regression test: the
/// identical EngineeredMesh pipeline with the fit frozen at a fixed blind
/// iteration count (the historical behavior before the convergence-driven
/// termination). Returns the dense trunk matrix.
std::vector<double> ReferenceEngineeredTrunks(int blocks, double uplink_gbps,
                                              const TrafficMatrix& forecast,
                                              double uniform_floor_fraction,
                                              int fit_iterations) {
  const double floor_per_trunk = uplink_gbps * uniform_floor_fraction / (blocks - 1);
  std::vector<double> alloc(static_cast<std::size_t>(blocks) * blocks, 0.0);
  for (int a = 0; a < blocks; ++a) {
    const double row = forecast.RowSum(a);
    const double budget = uplink_gbps * (1.0 - uniform_floor_fraction);
    for (int b = 0; b < blocks; ++b) {
      if (a == b) continue;
      const double share = row > 0.0 ? forecast.at(a, b) / row : 1.0 / (blocks - 1);
      alloc[static_cast<std::size_t>(a) * blocks + b] = floor_per_trunk + budget * share;
    }
  }
  std::vector<double> trunk(static_cast<std::size_t>(blocks) * blocks, 0.0);
  for (int a = 0; a < blocks; ++a) {
    for (int b = a + 1; b < blocks; ++b) {
      const double sym = std::max(alloc[static_cast<std::size_t>(a) * blocks + b],
                                  alloc[static_cast<std::size_t>(b) * blocks + a]);
      trunk[static_cast<std::size_t>(a) * blocks + b] = sym;
      trunk[static_cast<std::size_t>(b) * blocks + a] = sym;
    }
  }
  auto row_sum = [&](int a) {
    double row = 0.0;
    for (int b = 0; b < blocks; ++b) row += trunk[static_cast<std::size_t>(a) * blocks + b];
    return row;
  };
  for (int iter = 0; iter < fit_iterations; ++iter) {
    std::vector<double> factor(static_cast<std::size_t>(blocks), 1.0);
    for (int a = 0; a < blocks; ++a) {
      const double row = row_sum(a);
      if (row > 0.0) factor[static_cast<std::size_t>(a)] = std::sqrt(uplink_gbps / row);
    }
    for (int a = 0; a < blocks; ++a) {
      for (int b = 0; b < blocks; ++b) {
        trunk[static_cast<std::size_t>(a) * blocks + b] *=
            factor[static_cast<std::size_t>(a)] * factor[static_cast<std::size_t>(b)];
      }
    }
  }
  std::vector<double> clamp(static_cast<std::size_t>(blocks), 1.0);
  for (int a = 0; a < blocks; ++a) {
    const double row = row_sum(a);
    if (row > uplink_gbps) clamp[static_cast<std::size_t>(a)] = uplink_gbps / row;
  }
  for (int a = 0; a < blocks; ++a) {
    for (int b = 0; b < blocks; ++b) {
      trunk[static_cast<std::size_t>(a) * blocks + b] *=
          std::min(clamp[static_cast<std::size_t>(a)], clamp[static_cast<std::size_t>(b)]);
    }
  }
  return trunk;
}

TEST(Dcn, EngineeredMeshFitConvergesAndMatchesReference) {
  // Regression for the convergence-driven proportional fit: where the old
  // fixed-25-iteration loop had already converged, the new termination rule
  // must land on the same trunks (no behavior change on healthy inputs) —
  // and it must actually CONVERGE: every block's row sum ends within
  // tolerance of the full port budget, not merely close.
  const double uplink = 1000.0;
  for (const std::uint64_t seed : {13ull, 29ull, 47ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    common::Rng rng(seed);
    const int n = 12;
    const auto demand = HotspotTraffic(n, n * 400.0, 4, 0.5, rng);
    const auto topo = DcnTopology::EngineeredMesh(n, uplink, demand);
    const auto reference = ReferenceEngineeredTrunks(n, uplink, demand, 0.2, 25);
    // Pin against the historical output: the termination change may only
    // refine the tail of the fit (sub-1e-3 of a trunk), never redesign the
    // topology. (On slow-mixing inputs 25 iterations stopped ~1e-5 short of
    // the fixed point — that residual is the bug being fixed, so exact
    // equality is deliberately NOT required.)
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a == b) continue;
        EXPECT_NEAR(topo.TrunkCapacity(a, b),
                    reference[static_cast<std::size_t>(a) * n + b], 1e-3 * uplink)
            << "trunk " << a << "->" << b;
      }
    }
    // And it must end MORE converged than the blind loop, never less: the
    // worst row-sum deviation from the port budget shrinks (or ties).
    auto worst_residual = [&](auto&& trunk_at) {
      double worst = 0.0;
      for (int a = 0; a < n; ++a) {
        double row = 0.0;
        for (int b = 0; b < n; ++b) {
          if (a != b) row += trunk_at(a, b);
        }
        worst = std::max(worst, std::abs(row - uplink) / uplink);
        // The clamp still binds: no block oversubscribes its ports.
        EXPECT_LE(row, uplink * (1.0 + 1e-6)) << "block " << a << " oversubscribes";
      }
      return worst;
    };
    const double new_residual =
        worst_residual([&](int a, int b) { return topo.TrunkCapacity(a, b); });
    const double old_residual = worst_residual([&](int a, int b) {
      return reference[static_cast<std::size_t>(a) * n + b];
    });
    EXPECT_LE(new_residual, old_residual + 1e-12);
    // Converged outright: every block ends within a hair of full budget use.
    EXPECT_LT(new_residual, 1e-6);
  }
}

TEST(Dcn, FlowSimCompletesFlows) {
  const auto topo = DcnTopology::UniformMesh(8, 1000.0);
  const auto demand = UniformTraffic(8, 1000.0);
  FlowSimConfig config;
  config.sim_seconds = 0.5;
  config.load = 0.4;
  const auto result = SimulateFlows(topo, demand, config);
  EXPECT_GT(result.completed, 100u);
  EXPECT_GT(result.mean_fct_ms, 0.0);
  EXPECT_GE(result.p99_fct_ms, result.p50_fct_ms);
  EXPECT_GT(result.mean_throughput_gbps, 0.0);
}

TEST(Dcn, FlowSimDeterministic) {
  const auto topo = DcnTopology::UniformMesh(6, 800.0);
  const auto demand = UniformTraffic(6, 600.0);
  FlowSimConfig config;
  config.sim_seconds = 0.3;
  const auto a = SimulateFlows(topo, demand, config);
  const auto b = SimulateFlows(topo, demand, config);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_fct_ms, b.mean_fct_ms);
}

TEST(Dcn, HigherLoadSlowsFlows) {
  const auto topo = DcnTopology::UniformMesh(8, 1000.0);
  const auto demand = UniformTraffic(8, 1000.0);
  FlowSimConfig light, heavy;
  light.sim_seconds = heavy.sim_seconds = 0.5;
  light.load = 0.2;
  heavy.load = 0.85;
  const auto l = SimulateFlows(topo, demand, light);
  const auto h = SimulateFlows(topo, demand, heavy);
  EXPECT_GT(h.mean_fct_ms, l.mean_fct_ms);
}

TEST(Dcn, EngineeredMeshImprovesFctOnSkewedTraffic) {
  common::Rng rng(17);
  const int n = 12;
  const auto demand = DisjointHotspotTraffic(n, n * 300.0, 4, 0.5, rng);
  const auto uniform = DcnTopology::UniformMesh(n, 1000.0);
  const auto engineered = DcnTopology::EngineeredMesh(n, 1000.0, demand);
  FlowSimConfig config;
  config.sim_seconds = 0.5;
  config.load = 0.5;
  const auto u = SimulateFlows(uniform, demand, config);
  const auto e = SimulateFlows(engineered, demand, config);
  EXPECT_LT(e.mean_fct_ms, u.mean_fct_ms);
}

}  // namespace
}  // namespace lightwave::sim
