// Fuzz and randomized-property tests: the wire codec must never crash or
// mis-decode on corrupted frames; the Palomar switch must hold its
// invariants under arbitrary command sequences; the RS decoder must agree
// with brute-force nearest-codeword decoding on a tiny code.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "ctrl/controller.h"
#include "ctrl/messages.h"
#include "ctrl/wire.h"
#include "fec/reed_solomon.h"
#include "journal/snapshot.h"
#include "journal/storage.h"
#include "journal/wal.h"
#include "ocs/palomar.h"
#include "svc/command.h"
#include "tpu/slice.h"

namespace lightwave {
namespace {

// --- wire-format fuzzing ------------------------------------------------------

TEST(Fuzz, RandomBytesNeverDecode) {
  common::Rng rng(1);
  int decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.UniformInt(64) + 1);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    // None of these may crash; decoding junk should essentially never
    // succeed (the CRC gate).
    if (ctrl::UnframeMessage(junk).has_value()) ++decoded;
    (void)ctrl::PeekType(junk);
    (void)ctrl::DecodeReconfigureRequest(junk);
    (void)ctrl::DecodeTelemetryReply(junk);
    (void)ctrl::DecodePortSurveyReply(junk);
  }
  EXPECT_EQ(decoded, 0);
}

TEST(Fuzz, SingleBitFlipsAlwaysCaught) {
  // Flip every bit of a real frame one at a time: the CRC (or version/tag
  // checks) must reject every mutation — or, if it decodes, it must not
  // equal a different valid message silently claiming the same transaction.
  ctrl::ReconfigureRequest request;
  request.transaction_id = 99;
  for (int i = 0; i < 16; ++i) request.target[i] = 15 - i;
  const auto frame = ctrl::Encode(request);
  int accepted = 0;
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = frame;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      if (auto decoded = ctrl::DecodeReconfigureRequest(mutated)) ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Fuzz, TruncationsNeverCrash) {
  ctrl::PortSurveyReply reply;
  reply.nonce = 7;
  for (int i = 0; i < 32; ++i) {
    reply.entries.push_back(ctrl::PortSurveyEntry{i, 127 - i, 1.5, -45.0});
  }
  const auto frame = ctrl::Encode(reply);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    std::vector<std::uint8_t> prefix(frame.begin(), frame.begin() + static_cast<long>(len));
    EXPECT_FALSE(ctrl::DecodePortSurveyReply(prefix).has_value()) << len;
  }
}

TEST(Fuzz, TruncatedRepliesNeverDecodeOrCrash) {
  // Every proper prefix of a valid ReconfigureReply / TelemetryReply frame
  // must fail to decode cleanly — the controller's retry loop depends on
  // truncated replies looking exactly like loss, never like a wrong decode.
  ctrl::ReconfigureReply reconf;
  reconf.transaction_id = 42;
  reconf.ok = false;
  reconf.error = "mirror chain dead under port 7";
  reconf.established = 2;
  reconf.duration_ms = 11.0;
  const auto reconf_frame = ctrl::Encode(reconf);
  for (std::size_t len = 0; len < reconf_frame.size(); ++len) {
    std::vector<std::uint8_t> prefix(reconf_frame.begin(),
                                     reconf_frame.begin() + static_cast<long>(len));
    EXPECT_FALSE(ctrl::DecodeReconfigureReply(prefix).has_value()) << len;
  }

  ctrl::TelemetryReply telemetry;
  telemetry.nonce = 17;
  telemetry.connects = 12;
  telemetry.power_draw_w = 104.5;
  telemetry.chassis_operational = true;
  const auto telemetry_frame = ctrl::Encode(telemetry);
  for (std::size_t len = 0; len < telemetry_frame.size(); ++len) {
    std::vector<std::uint8_t> prefix(telemetry_frame.begin(),
                                     telemetry_frame.begin() + static_cast<long>(len));
    EXPECT_FALSE(ctrl::DecodeTelemetryReply(prefix).has_value()) << len;
  }
}

TEST(Fuzz, TransactionIdZeroCorpusExecutesOnFreshAgents) {
  // Regression corpus for the idempotency-cache sentinel bug: a fresh agent
  // must execute transaction id 0 (and then answer retries from the cache),
  // for arbitrary valid targets.
  common::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    ocs::PalomarSwitch ocs(9000 + static_cast<std::uint64_t>(trial));
    ctrl::OcsAgent agent(ocs);
    ctrl::ReconfigureRequest request;
    request.transaction_id = 0;
    std::set<int> souths;
    const int conns = 1 + static_cast<int>(rng.UniformInt(16));
    for (int i = 0; i < conns; ++i) {
      const int n = static_cast<int>(rng.UniformInt(ocs::kPalomarUsablePorts));
      const int s = static_cast<int>(rng.UniformInt(ocs::kPalomarUsablePorts));
      if (!request.target.contains(n) && !souths.contains(s)) {
        request.target[n] = s;
        souths.insert(s);
      }
    }
    const auto reply = ctrl::DecodeReconfigureReply(agent.Handle(ctrl::Encode(request)));
    ASSERT_TRUE(reply.has_value()) << trial;
    EXPECT_TRUE(reply->ok) << trial << ": " << reply->error;
    EXPECT_EQ(ocs.telemetry().reconfigurations, 1u) << trial;
    const auto retry = ctrl::DecodeReconfigureReply(agent.Handle(ctrl::Encode(request)));
    ASSERT_TRUE(retry.has_value()) << trial;
    EXPECT_EQ(ocs.telemetry().reconfigurations, 1u) << trial;
  }
}

TEST(Fuzz, RandomMessagesRoundTripExactly) {
  common::Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    ctrl::ReconfigureRequest request;
    request.transaction_id = rng.NextU64();
    const int conns = static_cast<int>(rng.UniformInt(128));
    std::set<int> souths;
    for (int i = 0; i < conns; ++i) {
      const int n = static_cast<int>(rng.UniformInt(128));
      const int s = static_cast<int>(rng.UniformInt(128));
      request.target[n] = s;
    }
    const auto decoded = ctrl::DecodeReconfigureRequest(ctrl::Encode(request));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->transaction_id, request.transaction_id);
    EXPECT_EQ(decoded->target, request.target);
  }
}

TEST(Fuzz, MalformedFramesFireTheContractHandler) {
  // Every unframe rejection path is an LW_ENSURE contract: the decode must
  // fail AND the failure handler must fire, so corrupt frames surface in
  // counters instead of vanishing silently. One crafted frame per rejection
  // category, each asserted to report exactly once.
  std::vector<lightwave::common::CheckFailure> failures;
  common::ScopedCheckHandler guard(
      [&failures](const common::CheckFailure& f) { failures.push_back(f); });
  const auto fired_once = [&failures] {
    const std::size_t n = failures.size();
    failures.clear();
    return n == 1;
  };

  const auto good = ctrl::FrameMessage({0xAA, 0xBB, 0xCC});
  ASSERT_TRUE(ctrl::UnframeMessage(good).has_value());
  EXPECT_TRUE(failures.empty()) << "a valid frame must not trip any contract";

  // Header truncation: too short to even hold [version][length].
  EXPECT_FALSE(ctrl::UnframeMessage({0x01, 0x02, 0x03}).has_value());
  EXPECT_TRUE(fired_once());

  // Version below kMinSupportedVersion.
  const auto stale = ctrl::FrameMessage({0xAA}, ctrl::kMinSupportedVersion - 1);
  EXPECT_FALSE(ctrl::UnframeMessage(stale).has_value());
  EXPECT_TRUE(fired_once());

  // Length field promising more payload than the frame carries.
  auto overlong = good;
  overlong[2] = 0xFF;  // length byte 0 (little-endian u32 at offset 2)
  EXPECT_FALSE(ctrl::UnframeMessage(overlong).has_value());
  EXPECT_TRUE(fired_once());

  // Hostile length near UINT32_MAX: must reject via the (size_t-widened)
  // bounds check, not wrap around and read out of bounds.
  auto hostile = good;
  hostile[2] = hostile[3] = hostile[4] = hostile[5] = 0xFF;
  EXPECT_FALSE(ctrl::UnframeMessage(hostile).has_value());
  EXPECT_TRUE(fired_once());

  // Payload corruption caught by the CRC gate.
  auto corrupt = good;
  corrupt[6] ^= 0x01;
  EXPECT_FALSE(ctrl::UnframeMessage(corrupt).has_value());
  EXPECT_TRUE(fired_once());

  // Truncated CRC trailer (fails the bounds check before the CRC compare).
  auto clipped = good;
  clipped.pop_back();
  EXPECT_FALSE(ctrl::UnframeMessage(clipped).has_value());
  EXPECT_TRUE(fired_once());

  // All the rejections above were kEnsure: non-fatal by design.
  EXPECT_EQ(lightwave::common::GetCheckStats().fatal_failures, 0u);
}

TEST(Fuzz, RandomJunkOnlyTripsEnsureContracts) {
  // The randomized sweep from RandomBytesNeverDecode, repeated with a
  // recording handler: junk input may fire LW_ENSURE freely but must never
  // reach a fatal contract (LW_CHECK/LW_UNREACHABLE) inside the codec.
  std::size_t ensure_count = 0;
  common::ScopedCheckHandler guard([&ensure_count](const common::CheckFailure& f) {
    ASSERT_EQ(f.kind, lightwave::common::CheckKind::kEnsure)
        << "junk input reached a fatal contract: "
        << lightwave::common::FormatCheckFailure(f);
    ++ensure_count;
  });
  common::Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> junk(rng.UniformInt(64) + 1);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    EXPECT_FALSE(ctrl::UnframeMessage(junk).has_value());
  }
  // Every trial rejects through exactly one LW_ENSURE gate.
  EXPECT_EQ(ensure_count, 500u);
}

// --- journal record framing fuzzing -------------------------------------------------

journal::MemStorage JournalWith(int records, std::uint64_t seed) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  common::Rng rng(seed);
  for (int i = 0; i < records; ++i) {
    std::vector<std::uint8_t> payload(rng.UniformInt(48) + 1);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    LW_CHECK(wal.Append(payload).ok());
  }
  return storage;
}

TEST(Fuzz, JournalScanNeverCrashesOnRandomBytes) {
  // Byte soup fed straight to the scanner: every outcome must be a clean
  // diagnosis (zero or more valid records plus a tail error), never UB.
  // Junk essentially never passes the CRC32C gate.
  common::Rng rng(21);
  int accepted_records = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    journal::MemStorage storage;
    std::vector<std::uint8_t> junk(rng.UniformInt(96));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    storage.Append(junk.data(), junk.size());
    const auto scan = journal::Wal::Scan(storage);
    accepted_records += static_cast<int>(scan.records.size());
    EXPECT_LE(scan.valid_bytes, junk.size());
    if (!junk.empty()) {
      EXPECT_FALSE(scan.tail.ok());
    }
    // Opening (and repairing) a WAL over the junk must also be safe, and
    // must leave only the bytes the scan vouched for.
    journal::Wal wal(storage);
    EXPECT_EQ(storage.size(), scan.valid_bytes);
    EXPECT_TRUE(wal.Append({0x5A}).ok());
  }
  EXPECT_EQ(accepted_records, 0);
}

TEST(Fuzz, JournalBitFlipsNeverYieldPhantomRecords) {
  // Flip every bit of a small real log: the scan must never report MORE
  // records than survive up to the flipped byte, and re-scanning must stay
  // in-bounds. (A flip in record k's frame invalidates k and everything
  // after; flips in the payload tail of the file can only shorten the log.)
  const journal::MemStorage pristine = JournalWith(6, 31);
  const auto baseline = journal::Wal::Scan(pristine);
  ASSERT_EQ(baseline.records.size(), 6u);
  ASSERT_TRUE(baseline.tail.ok());
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      journal::MemStorage mutated = pristine;
      mutated.bytes()[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto scan = journal::Wal::Scan(mutated);
      EXPECT_FALSE(scan.tail.ok()) << "flip at byte " << byte << " bit " << bit;
      EXPECT_LT(scan.records.size(), 6u) << "flip at byte " << byte << " bit " << bit;
      EXPECT_LE(scan.valid_bytes, mutated.size());
      for (const auto& record : scan.records) {
        // Surviving records are the untouched prefix, byte-for-byte.
        EXPECT_EQ(record.payload, baseline.records[record.seq - 1].payload);
      }
    }
  }
}

TEST(Fuzz, JournalLyingLengthFieldsAreContained) {
  // Craft frames whose length field lies — shorter than the body, longer
  // than the storage, near UINT32_MAX. The scanner must stop at the frame
  // boundary with a clean error, never read past the storage.
  journal::MemStorage storage = JournalWith(2, 41);
  const std::uint64_t good_size = storage.size();
  for (std::uint32_t lie :
       {0u, 1u, 7u, 0x000000FFu, 0x00FFFFFFu, 0xFFFFFFFFu,
        static_cast<std::uint32_t>(journal::Wal::kMaxRecordBytes + 1)}) {
    journal::MemStorage mutated = storage;
    for (int i = 0; i < 4; ++i) {
      mutated.bytes()[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(lie >> (8 * i));
    }
    const auto scan = journal::Wal::Scan(mutated);
    EXPECT_TRUE(scan.records.empty()) << "lie " << lie;
    EXPECT_FALSE(scan.tail.ok()) << "lie " << lie;
    EXPECT_EQ(scan.valid_bytes, 0u) << "lie " << lie;
    (void)good_size;
  }
}

TEST(Fuzz, SnapshotReaderNeverCrashesOnRandomBytes) {
  common::Rng rng(23);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    journal::MemStorage storage;
    std::vector<std::uint8_t> junk(rng.UniformInt(96));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    storage.Append(junk.data(), junk.size());
    const auto snapshot = journal::SnapshotReader::Read(storage);
    if (snapshot.ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Fuzz, SliceCommandDecodeNeverCrashesOnRandomBytes) {
  // Commands come out of CRC-verified WAL records, so junk reaching Decode
  // means the journal itself was corrupted — but decode must still fail
  // closed (Result error, no UB) on arbitrary bytes and on every
  // truncation of a real command.
  common::Rng rng(25);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.UniformInt(32));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    (void)svc::SliceCommand::Decode(junk);
  }
  // A command exercising every wire field (multi-tenant id spaces and the
  // 2PC kinds included) must roundtrip exactly and reject every truncation.
  svc::SliceCommand cmd;
  cmd.command_id = 712;
  cmd.tenant_id = 0xFFFFFFFFu;  // the router's control tenant is a legal value
  cmd.kind = svc::CommandKind::kPrepare;
  cmd.job_id = 9;
  cmd.txn_id = (std::uint64_t{1} << 40) + 3;
  cmd.shape = tpu::SliceShape{4, 2, 1};
  const auto encoded = cmd.Encode();
  const auto decoded = svc::SliceCommand::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().command_id, cmd.command_id);
  EXPECT_EQ(decoded.value().tenant_id, cmd.tenant_id);
  EXPECT_EQ(decoded.value().kind, cmd.kind);
  EXPECT_EQ(decoded.value().job_id, cmd.job_id);
  EXPECT_EQ(decoded.value().txn_id, cmd.txn_id);
  EXPECT_EQ(decoded.value().shape.a, cmd.shape.a);
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    std::vector<std::uint8_t> prefix(encoded.begin(),
                                     encoded.begin() + static_cast<long>(len));
    EXPECT_FALSE(svc::SliceCommand::Decode(prefix).ok()) << len;
  }
  // A kind byte past the 2PC range must fail closed. The kind sits right
  // after the two leading varints: command_id=712 encodes in 2 bytes,
  // tenant_id=0xFFFFFFFF in 5, so the kind is byte 7.
  auto tampered = encoded;
  ASSERT_EQ(tampered[7], static_cast<std::uint8_t>(svc::CommandKind::kPrepare));
  tampered[7] = 200;
  EXPECT_FALSE(svc::SliceCommand::Decode(tampered).ok());
}

// --- palomar random-operation stress ----------------------------------------------

TEST(Fuzz, PalomarInvariantsUnderRandomOps) {
  common::Rng rng(5);
  ocs::PalomarSwitch ocs(777);
  // Shadow model of expected state.
  std::map<int, int> model;

  for (int op = 0; op < 4000; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(4));
    if (kind == 0) {
      const int n = static_cast<int>(rng.UniformInt(ocs::kPalomarUsablePorts));
      const int s = static_cast<int>(rng.UniformInt(ocs::kPalomarUsablePorts));
      const bool n_free = !model.contains(n);
      bool s_free = true;
      for (const auto& [mn, ms] : model) s_free = s_free && ms != s;
      const auto result = ocs.Connect(n, s);
      EXPECT_EQ(result.ok(), n_free && s_free) << "op " << op;
      if (result.ok()) model[n] = s;
    } else if (kind == 1) {
      const int n = static_cast<int>(rng.UniformInt(ocs::kPalomarUsablePorts));
      const auto result = ocs.Disconnect(n);
      EXPECT_EQ(result.ok(), model.contains(n)) << "op " << op;
      model.erase(n);
    } else if (kind == 2 && op % 97 == 0) {
      // Occasional full reconfiguration to a random partial permutation.
      std::map<int, int> target;
      std::set<int> souths;
      const int size = static_cast<int>(rng.UniformInt(64));
      for (int i = 0; i < size; ++i) {
        const int n = static_cast<int>(rng.UniformInt(ocs::kPalomarUsablePorts));
        const int s = static_cast<int>(rng.UniformInt(ocs::kPalomarUsablePorts));
        if (!target.contains(n) && !souths.contains(s)) {
          target[n] = s;
          souths.insert(s);
        }
      }
      ASSERT_TRUE(ocs.Reconfigure(target).ok());
      model = target;
    } else if (kind == 3) {
      // Read-only probes never change state.
      const int n = static_cast<int>(rng.UniformInt(ocs::kPalomarUsablePorts));
      const auto conn = ocs.ConnectionOn(n);
      EXPECT_EQ(conn.has_value(), model.contains(n));
      if (conn.has_value()) {
        EXPECT_EQ(conn->south, model.at(n));
      }
    }
    if (op % 500 == 0) {
      // Full-state audit: bijectivity + agreement with the shadow model.
      const auto conns = ocs.Connections();
      EXPECT_EQ(conns.size(), model.size());
      std::set<int> seen_south;
      for (const auto& c : conns) {
        EXPECT_TRUE(seen_south.insert(c.south).second) << "south reused";
        ASSERT_TRUE(model.contains(c.north));
        EXPECT_EQ(model.at(c.north), c.south);
      }
    }
  }
}

// --- RS brute-force cross-check -----------------------------------------------------

TEST(Fuzz, SmallRsMatchesBruteForceNearestCodeword) {
  // RS(6,2) over GF(1024), t = 2: small enough to enumerate all 1024^2
  // codewords? That is 1M encodes per received word — too many. Instead
  // verify the decoder against the coding-theory promise directly: every
  // pattern of <= t random errors decodes to the original, over many trials
  // and all error weights.
  const fec::ReedSolomon rs(6, 2);
  EXPECT_EQ(rs.t(), 2);
  common::Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<fec::Gf1024::Element> data = {
        static_cast<fec::Gf1024::Element>(rng.UniformInt(1024)),
        static_cast<fec::Gf1024::Element>(rng.UniformInt(1024))};
    auto codeword = rs.Encode(data);
    const auto original = codeword;
    const int weight = static_cast<int>(rng.UniformInt(3));  // 0..2 errors
    std::set<int> positions;
    while (static_cast<int>(positions.size()) < weight) {
      positions.insert(static_cast<int>(rng.UniformInt(6)));
    }
    for (int pos : positions) {
      codeword[static_cast<std::size_t>(pos)] ^=
          static_cast<fec::Gf1024::Element>(1 + rng.UniformInt(1023));
    }
    const auto outcome = rs.Decode(codeword);
    ASSERT_TRUE(outcome.ok()) << "trial " << trial << " weight " << weight;
    EXPECT_EQ(outcome.value().codeword, original);
    EXPECT_EQ(outcome.value().corrected_symbols, weight);
  }
}

TEST(Fuzz, RsDecodeNeverCrashesOnRandomWords) {
  const auto rs = fec::ReedSolomon::Kp4();
  common::Rng rng(9);
  int successes = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<fec::Gf1024::Element> word(static_cast<std::size_t>(rs.n()));
    for (auto& s : word) s = static_cast<fec::Gf1024::Element>(rng.UniformInt(1024));
    const auto outcome = rs.Decode(word);
    if (outcome.ok()) {
      // A random word decoding means it happened to be within t of a
      // codeword; astronomically unlikely.
      ++successes;
    }
  }
  EXPECT_EQ(successes, 0);
}

}  // namespace
}  // namespace lightwave
