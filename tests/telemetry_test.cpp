// Unit tests for the telemetry subsystem: counter/gauge/histogram
// semantics, labeled series identity, ring-buffered sim-clock time series,
// nested trace-span parentage, exporter formats, the malformed-frame vs
// transport-loss distinction, and byte-exact deterministic export of a
// fixed-seed reconfiguration + training scenario.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fabric_manager.h"
#include "ctrl/controller.h"
#include "sim/event.h"
#include "sim/training_run.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace lightwave::telemetry {
namespace {

// --- metric primitives -----------------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("requests_total");
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same series.
  EXPECT_EQ(&registry.GetCounter("requests_total"), &c);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("busy_cubes");
  g.Set(12.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
  g.Add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Metrics, HistogramPercentilesAndSum) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.GetHistogram("loss_db");
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 100.0);
}

TEST(Metrics, EmptyHistogramIsSafe) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.GetHistogram("never_observed");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  // The exporters must survive querying it too.
  EXPECT_NE(ToPrometheus(registry).find("never_observed_count 0"), std::string::npos);
}

TEST(Metrics, LabeledSeriesAreDistinctAndOrderInsensitive) {
  MetricsRegistry registry;
  Counter& ab = registry.GetCounter("x_total", {{"a", "1"}, {"b", "2"}});
  Counter& ba = registry.GetCounter("x_total", {{"b", "2"}, {"a", "1"}});
  Counter& other = registry.GetCounter("x_total", {{"a", "1"}, {"b", "3"}});
  Counter& bare = registry.GetCounter("x_total");
  EXPECT_EQ(&ab, &ba);  // labels normalize to sorted order
  EXPECT_NE(&ab, &other);
  EXPECT_NE(&ab, &bare);
  ab.Inc();
  EXPECT_EQ(ba.value(), 1u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Metrics, TimeSeriesRingEvictsOldest) {
  MetricsRegistry registry;
  TimeSeries& series = registry.GetTimeSeries("goodput", {}, /*capacity=*/4);
  for (int i = 0; i < 6; ++i) series.Record(i, 10.0 * i);
  EXPECT_EQ(series.recorded(), 6u);
  const auto samples = series.Samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples.front().t, 2.0);  // 0 and 1 evicted
  EXPECT_DOUBLE_EQ(samples.back().t, 5.0);
  EXPECT_DOUBLE_EQ(samples.back().value, 50.0);
}

TEST(Metrics, TimeSeriesUsesSimClockTimestamps) {
  Hub hub;
  sim::EventQueue queue;
  hub.SetClock([&queue] { return queue.now(); });
  TimeSeries& series = hub.metrics().GetTimeSeries("events");
  queue.At(1.5, [&] { series.Record(hub.Now(), 1.0); });
  queue.At(4.0, [&] { series.Record(hub.Now(), 2.0); });
  queue.Run();
  const auto samples = series.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].t, 1.5);
  EXPECT_DOUBLE_EQ(samples[1].t, 4.0);
}

// --- spans -----------------------------------------------------------------------

TEST(Trace, NestedSpansRecordParentage) {
  Hub hub;
  {
    TraceSpan root(&hub, "apply_topology");
    {
      TraceSpan child_a(&hub, "reconfigure_ocs");
      child_a.Annotate("ocs", "0");
    }
    {
      TraceSpan child_b(&hub, "reconfigure_ocs");
      TraceSpan grandchild(&hub, "mems_settle");
      (void)grandchild;
    }
  }
  const auto spans = hub.tracer().spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "apply_topology");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[2].parent_id, spans[0].id);
  EXPECT_EQ(spans[3].parent_id, spans[2].id);  // grandchild under child_b
  ASSERT_EQ(spans[1].attributes.size(), 1u);
  EXPECT_EQ(spans[1].attributes[0].first, "ocs");
  EXPECT_EQ(hub.tracer().open_count(), 0u);
}

TEST(Trace, ExplicitTimesAndOutOfOrderEnd) {
  Tracer tracer;
  const auto a = tracer.Begin("a", 1.0);
  const auto b = tracer.Begin("b", 2.0);
  tracer.End(a, 5.0);  // parent ends before child: tolerated
  tracer.End(b, 3.0);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].start, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 5.0);
  EXPECT_FALSE(spans[0].open);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(tracer.open_count(), 0u);
}

TEST(Trace, NullHubSpanIsNoOp) {
  TraceSpan span(nullptr, "nothing");
  span.Annotate("k", "v");  // must not crash
  EXPECT_EQ(span.id(), 0u);
}

// --- exporters -------------------------------------------------------------------

TEST(Export, PrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("lw_frames_total", {{"bus", "mgmt"}}).Inc(7);
  registry.GetGauge("lw_busy").Set(2.5);
  registry.GetHistogram("lw_latency_ms").Observe(4.0);
  const std::string text = ToPrometheus(registry);
  EXPECT_NE(text.find("# TYPE lw_frames_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("lw_frames_total{bus=\"mgmt\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lw_busy gauge\n"), std::string::npos);
  EXPECT_NE(text.find("lw_busy 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lw_latency_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("lw_latency_ms{quantile=\"0.5\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lw_latency_ms_count 1\n"), std::string::npos);
}

TEST(Export, JsonContainsAllSections) {
  Hub hub;
  hub.metrics().GetCounter("c").Inc();
  hub.metrics().GetTimeSeries("ts").Record(1.0, 2.0);
  {
    TraceSpan span(&hub, "root");
    (void)span;
  }
  const std::string json = ToJson(hub);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* section :
       {"\"counters\":", "\"gauges\":", "\"histograms\":", "\"timeseries\":", "\"spans\":"}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
  EXPECT_NE(json.find("\"samples\":[[1,2]]"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
}

// --- control-plane integration ---------------------------------------------------

TEST(CtrlIntegration, MalformedFramesDistinguishableFromTransportLoss) {
  ocs::PalomarSwitch sw(99);
  ctrl::OcsAgent agent(sw);
  Hub hub;
  agent.AttachTelemetry(&hub);

  // Garbage frame: the agent drops it as malformed.
  EXPECT_TRUE(agent.Handle({0xde, 0xad, 0xbe, 0xef}).empty());
  EXPECT_EQ(agent.malformed_frames(), 1u);

  // Pure transport loss: the agent never sees the frame, so the malformed
  // count must not move while the bus drop counter does.
  ctrl::MessageBus bus(7);
  bus.AttachTelemetry(&hub);
  bus.SetDropProbability(1.0);
  EXPECT_TRUE(bus.RoundTrip(agent, {0x01, 0x02}).empty());
  EXPECT_EQ(agent.malformed_frames(), 1u);
  EXPECT_EQ(bus.frames_dropped(), 1u);

  EXPECT_EQ(
      hub.metrics().GetCounter("lightwave_ctrl_agent_malformed_frames_total").value(), 1u);
  EXPECT_EQ(hub.metrics().GetCounter("lightwave_ctrl_frames_dropped_total").value(), 1u);
}

TEST(CtrlIntegration, TransactionSpansAndRetryMetrics) {
  ocs::PalomarSwitch sw(3);
  ctrl::OcsAgent agent(sw);
  ctrl::MessageBus bus(11);
  bus.SetDropProbability(0.4);  // force some retries, deterministically seeded
  ctrl::FabricController controller(bus, /*max_retries=*/20);
  controller.Register(0, &agent);

  Hub hub;
  bus.AttachTelemetry(&hub);
  controller.AttachTelemetry(&hub);
  agent.AttachTelemetry(&hub);

  auto result = controller.ApplyTopology({{0, {{0, 1}, {2, 3}}}});
  ASSERT_TRUE(result.ok) << result.error;

  const auto spans = hub.tracer().spans();
  ASSERT_GE(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "apply_topology");
  EXPECT_EQ(spans[1].name, "reconfigure_ocs");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  auto& metrics = hub.metrics();
  EXPECT_EQ(metrics.GetCounter("lightwave_ctrl_transactions_total").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("lightwave_ctrl_retries_total").value(),
            static_cast<std::uint64_t>(result.retries_used));
  EXPECT_EQ(metrics.GetHistogram("lightwave_ctrl_transaction_duration_ms").count(), 1u);
  EXPECT_GT(metrics.GetCounter("lightwave_ctrl_frames_sent_total").value(), 0u);
}

// --- determinism -----------------------------------------------------------------

// One fixed-seed "day in the life" scenario: slice churn, a cube failure
// repair, a control-plane reconfig under loss, a link-quality survey, and a
// short training-run simulation, all recording into the hub.
void RunScenario(Hub& hub) {
  core::FabricManagerConfig config;
  config.seed = 42;
  config.control_drop_probability = 0.02;
  core::FabricManager fabric(config);
  fabric.AttachTelemetry(&hub);

  auto slice = fabric.CreateSlice(tpu::SliceShape{2, 2, 2});
  ASSERT_TRUE(slice.ok());
  auto second = fabric.CreateSlice(tpu::SliceShape{1, 2, 2});
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(fabric.DestroySlice(second.value()).ok());
  auto repaired = fabric.HandleCubeFailure(0);
  ASSERT_TRUE(repaired.ok());
  (void)fabric.SurveyLinkQuality(optics::Cwdm4Bidi());
  (void)fabric.CollectTelemetry();  // wire-protocol traffic over the lossy bus

  sim::TrainingRunConfig run;
  run.shape = tpu::SliceShape{2, 2, 2};
  run.pod_cubes = 16;
  run.cube_mtbf_hours = 300.0;
  run.run_hours = 24.0 * 10.0;
  run.seed = 7;
  run.hub = &hub;
  (void)sim::SimulateTrainingRun(run);
}

TEST(Determinism, FixedSeedRunExportsByteExact) {
  Hub first;
  RunScenario(first);
  Hub second;
  RunScenario(second);

  const std::string prom_a = ToPrometheus(first.metrics());
  const std::string prom_b = ToPrometheus(second.metrics());
  EXPECT_FALSE(prom_a.empty());
  EXPECT_EQ(prom_a, prom_b);

  const std::string json_a = ToJson(first);
  const std::string json_b = ToJson(second);
  EXPECT_EQ(json_a, json_b);

  // The scenario exercised every instrumented layer.
  for (const char* needle :
       {"lightwave_ctrl_frames_sent_total", "lightwave_ocs_reconfigurations_total",
        "lightwave_core_slice_requests_total", "lightwave_fabric_link_margin_db",
        "lightwave_training_goodput"}) {
    EXPECT_NE(prom_a.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(json_a.find("\"spans\":[{"), std::string::npos);
  EXPECT_GT(first.metrics().GetCounter("lightwave_ctrl_frames_sent_total").value(), 0u);
}

}  // namespace
}  // namespace lightwave::telemetry
