// Tests for the deterministic parallel runtime (common/parallel.h): the
// partition is exact and machine-independent, results are byte-identical
// across thread counts (the determinism contract DESIGN.md documents),
// exceptions propagate deterministically, nesting degrades to inline serial
// execution, and the pool + telemetry sink survive a multi-threaded stress
// run (exercised under TSan in CI).
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "phy/ber_model.h"
#include "phy/monte_carlo.h"
#include "sim/availability.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"
#include "telemetry/parallel_sink.h"

namespace lightwave::common::parallel {
namespace {

/// Restores the configured worker count when a test that calls SetThreads
/// finishes (other tests inherit the process-wide pool).
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(Threads()) {}
  ~ThreadCountGuard() { SetThreads(saved_); }

 private:
  int saved_;
};

TEST(ParallelPartition, ChunkBoundsPartitionExactly) {
  for (std::uint64_t n : {0ull, 1ull, 7ull, 64ull, 1000ull, 4097ull}) {
    for (std::uint64_t chunk_size : {0ull, 1ull, 3ull, 64ull, 5000ull}) {
      const std::uint64_t chunks = NumChunks(n, chunk_size);
      std::uint64_t covered = 0;
      std::uint64_t prev_end = 0;
      for (std::uint64_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = ChunkBounds(n, chunk_size, c);
        {
          EXPECT_EQ(begin, prev_end) << "n=" << n << " cs=" << chunk_size << " c=" << c;
        }
        EXPECT_LT(begin, end);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " cs=" << chunk_size;
      if (n > 0) {
        EXPECT_EQ(prev_end, n);
      }
    }
  }
}

TEST(ParallelPartition, AutoModeIsBoundedAndMachineIndependent) {
  EXPECT_EQ(NumChunks(10, 0), 10u);  // small n: one item per chunk
  EXPECT_EQ(NumChunks(1u << 20, 0), kDefaultMaxChunks);
  // The partition must not depend on the configured thread count.
  ThreadCountGuard guard;
  SetThreads(1);
  const std::uint64_t serial = NumChunks(1u << 20, 0);
  SetThreads(8);
  EXPECT_EQ(NumChunks(1u << 20, 0), serial);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 8}) {
    SetThreads(threads);
    constexpr std::uint64_t kN = 10'000;
    std::vector<std::atomic<int>> visits(kN);
    for (auto& v : visits) v.store(0);
    ParallelFor(kN, 37, [&](std::uint64_t begin, std::uint64_t end, std::uint64_t) {
      for (std::uint64_t i = begin; i < end; ++i) {
        visits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelMap, OutputOrderMatchesIndexOrder) {
  ThreadCountGuard guard;
  SetThreads(4);
  const auto out = ParallelMap(1000, [](std::uint64_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelReduce, FoldsPartialsInChunkOrder) {
  ThreadCountGuard guard;
  SetThreads(4);
  // Build the chunk-index sequence via a non-commutative combine (string
  // append): equality with the serial sequence proves ordered folding.
  auto run = [] {
    return ParallelReduce<std::string>(
        1000, 64, std::string{},
        [](std::uint64_t, std::uint64_t, std::uint64_t chunk) {
          return std::to_string(chunk) + ",";
        },
        [](std::string acc, std::string part) { return acc + part; });
  };
  const std::string parallel4 = run();
  SetThreads(1);
  EXPECT_EQ(run(), parallel4);
  EXPECT_EQ(parallel4.substr(0, 8), "0,1,2,3,");
}

TEST(ParallelRng, StreamsAreDeterministicAndDistinct) {
  common::Rng a = common::Rng::Stream(42, 0);
  common::Rng a2 = common::Rng::Stream(42, 0);
  common::Rng b = common::Rng::Stream(42, 1);
  const std::uint64_t a_draw = a.NextU64();
  EXPECT_EQ(a_draw, a2.NextU64());
  EXPECT_NE(a_draw, b.NextU64());
  EXPECT_NE(common::Rng::Stream(43, 0).NextU64(), common::Rng::Stream(42, 0).NextU64());
}

TEST(ParallelDeterminism, MonteCarloIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const phy::BerModel model(optics::Modulation::kPam4, common::DbmPower{-11.0});
  phy::MonteCarloConfig config;
  config.symbols = 300'000;
  config.symbols_per_chunk = 1u << 14;
  std::uint64_t reference_errors = 0;
  for (int threads : {1, 2, 8}) {
    SetThreads(threads);
    phy::MonteCarloChannel channel(model, common::Decibel{-32.0}, config);
    const auto result = channel.Run(common::DbmPower{-10.0});
    if (threads == 1) {
      reference_errors = result.bit_errors;
      EXPECT_GT(result.bit_errors, 0u);  // the point must not be error-free
    } else {
      EXPECT_EQ(result.bit_errors, reference_errors) << "threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, AvailabilityIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  sim::MonteCarloAvailability reference;
  std::string reference_export;
  for (int threads : {1, 2, 8}) {
    SetThreads(threads);
    telemetry::Hub hub;
    const auto result =
        sim::SimulateAvailability(0.995, 8, 6, 6000, /*seed=*/777, {}, &hub);
    const std::string exported = telemetry::ToPrometheus(hub.metrics());
    if (threads == 1) {
      reference = result;
      reference_export = exported;
    } else {
      EXPECT_EQ(result.mean_healthy_cubes, reference.mean_healthy_cubes);
      EXPECT_EQ(result.reconfig_success_rate, reference.reconfig_success_rate);
      EXPECT_EQ(result.static_success_rate, reference.static_success_rate);
      // Telemetry is replayed in trial order, so even the export text is
      // byte-identical.
      EXPECT_EQ(exported, reference_export) << "threads=" << threads;
    }
  }
}

TEST(ParallelExceptions, LowestChunkExceptionPropagates) {
  ThreadCountGuard guard;
  SetThreads(4);
  try {
    ParallelFor(1000, 10, [](std::uint64_t, std::uint64_t, std::uint64_t chunk) {
      if (chunk == 7 || chunk == 3 || chunk == 90) {
        throw std::runtime_error("chunk " + std::to_string(chunk));
      }
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 3");
  }
  // The pool must stay usable after a throwing region.
  std::atomic<std::uint64_t> sum{0};
  ParallelFor(100, 10, [&](std::uint64_t begin, std::uint64_t end, std::uint64_t) {
    for (std::uint64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelNesting, InnerRegionRunsInlineWithSameResults) {
  ThreadCountGuard guard;
  SetThreads(4);
  // Each outer index computes an inner reduction; nesting must neither
  // deadlock nor change values vs the fully serial run.
  auto run = [] {
    return ParallelMap(16, [](std::uint64_t i) {
      return ParallelReduce<std::uint64_t>(
          100, 10, 0,
          [&](std::uint64_t begin, std::uint64_t end, std::uint64_t) {
            std::uint64_t s = 0;
            for (std::uint64_t j = begin; j < end; ++j) s += i * j;
            return s;
          },
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
    });
  };
  const auto nested = run();
  SetThreads(1);
  EXPECT_EQ(run(), nested);
  EXPECT_EQ(nested[2], 2u * 4950u);
}

TEST(ParallelEdgeCases, EmptyAndSingleItemRanges) {
  int calls = 0;
  ParallelFor(0, 0, [&](std::uint64_t, std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  const auto one = ParallelMap(1, [](std::uint64_t i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41u);
}

// Stress case for TSan: many concurrent regions back-to-back with the
// telemetry sink installed, so the pool's queue, the observer hooks, and
// the per-worker accounting are all exercised under contention.
TEST(ParallelStress, RepeatedRegionsWithTelemetrySink) {
  ThreadCountGuard guard;
  SetThreads(8);
  telemetry::Hub hub;
  telemetry::ParallelTelemetrySink sink(&hub);
  std::uint64_t expected_tasks = 0;
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t n = 256 + static_cast<std::uint64_t>(round);
    const std::uint64_t chunks = NumChunks(n, 16);
    expected_tasks += chunks;
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
    ParallelFor(n, 16, [&](std::uint64_t begin, std::uint64_t end, std::uint64_t chunk) {
      common::Rng rng = common::Rng::Stream(9, chunk);
      for (std::uint64_t i = begin; i < end; ++i) {
        out[static_cast<std::size_t>(i)] = rng.NextU64() | 1u;
      }
    });
    // Disjoint chunk ranges must each have been written.
    for (std::uint64_t v : out) EXPECT_NE(v, 0u);
  }
  EXPECT_EQ(
      hub.metrics().GetCounter("lightwave_parallel_tasks_total").value(),
      expected_tasks);
  EXPECT_EQ(
      hub.metrics().GetCounter("lightwave_parallel_regions_total").value(), 50u);
}

}  // namespace
}  // namespace lightwave::common::parallel
