// Unit tests for the optics substrate: WDM grids, circulators, transceiver
// generations and interoperability, fiber spans, and the link-budget engine
// with its MPI aggregation.
#include <gtest/gtest.h>

#include "optics/circulator.h"
#include "optics/fiber.h"
#include "optics/link_budget.h"
#include "optics/mux.h"
#include "optics/transceiver.h"
#include "optics/wdm.h"

namespace lightwave::optics {
namespace {

using common::DbmPower;
using common::Decibel;

// --- wdm ---------------------------------------------------------------------

TEST(Wdm, Cwdm4Grid) {
  const WdmGrid grid = WdmGrid::Make(WdmGridKind::kCwdm4);
  EXPECT_EQ(grid.lane_count(), 4);
  EXPECT_DOUBLE_EQ(grid.spacing().nm, 20.0);
  EXPECT_DOUBLE_EQ(grid.channel(0).center.nm, 1271.0);
  EXPECT_DOUBLE_EQ(grid.channel(3).center.nm, 1331.0);
  EXPECT_EQ(grid.Name(), "CWDM4");
}

TEST(Wdm, Cwdm8PacksEightLanesInSameSpectralWidth) {
  const WdmGrid g4 = WdmGrid::Make(WdmGridKind::kCwdm4);
  const WdmGrid g8 = WdmGrid::Make(WdmGridKind::kCwdm8);
  EXPECT_EQ(g8.lane_count(), 8);
  EXPECT_DOUBLE_EQ(g8.spacing().nm, 10.0);
  // The paper's point (§3.3.1): 8 lanes at 10 nm spacing stay within the
  // same 80 nm spectral range as 4 lanes at 20 nm.
  EXPECT_EQ(g8.SpectralWidth().nm, g4.SpectralWidth().nm);
}

TEST(Wdm, Cwdm8CoversCwdm4Channels) {
  const WdmGrid g4 = WdmGrid::Make(WdmGridKind::kCwdm4);
  const WdmGrid g8 = WdmGrid::Make(WdmGridKind::kCwdm8);
  // Every CWDM4 channel center falls inside a CWDM8 passband.
  EXPECT_TRUE(g8.Overlaps(g4));
}

TEST(Wdm, ChannelIndicesAscending) {
  const WdmGrid g8 = WdmGrid::Make(WdmGridKind::kCwdm8);
  for (int i = 1; i < g8.lane_count(); ++i) {
    EXPECT_GT(g8.channel(i).center.nm, g8.channel(i - 1).center.nm);
  }
}

// --- circulator --------------------------------------------------------------

TEST(CirculatorTest, InsertionLossApplied) {
  const Circulator c(IntegratedCirculator());
  const DbmPower tx{2.0};
  EXPECT_NEAR(c.TxThrough(tx).value(), 2.0 - 0.7, 1e-12);
  EXPECT_NEAR(c.RxThrough(DbmPower{-5.0}).value(), -5.7, 1e-12);
}

TEST(CirculatorTest, LeakageIsIsolationBelowTx) {
  const CirculatorSpec spec = IntegratedCirculator();
  const Circulator c(spec);
  const DbmPower tx{0.0};
  EXPECT_NEAR(c.LeakageAtRx(tx).value(),
              spec.isolation.value() - spec.insertion_loss_rx.value(), 1e-12);
}

TEST(CirculatorTest, ReengineeredPartsBeatTelecomBaseline) {
  // §3.3.1: the telecom baseline had to be re-engineered for lower return
  // loss and crosstalk at 1300 nm.
  const auto telecom = TelecomBaselineCirculator();
  const auto datacom = DatacomCirculator();
  const auto integrated = IntegratedCirculator();
  EXPECT_LT(datacom.isolation.value(), telecom.isolation.value());
  EXPECT_LT(integrated.isolation.value(), telecom.isolation.value());
  EXPECT_LT(integrated.insertion_loss_tx.value(), telecom.insertion_loss_tx.value());
  EXPECT_TRUE(integrated.integrated);
  EXPECT_FALSE(telecom.integrated);
}

// --- transceivers --------------------------------------------------------------

TEST(Transceiver, RoadmapGrows20x) {
  const auto roadmap = DcnRoadmap();
  ASSERT_GE(roadmap.size(), 5u);
  EXPECT_NEAR(roadmap.back().ModuleRateGbps() / roadmap.front().ModuleRateGbps(), 20.0,
              1e-9);
}

TEST(Transceiver, RoadmapEnergyPerBitImproves) {
  const auto roadmap = DcnRoadmap();
  EXPECT_LT(roadmap.back().EnergyPerBitPj(), roadmap.front().EnergyPerBitPj());
}

TEST(Transceiver, RoadmapYearsAscend) {
  const auto roadmap = DcnRoadmap();
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    EXPECT_GT(roadmap[i].year, roadmap[i - 1].year);
  }
}

TEST(Transceiver, BidiHalvesFiberCount) {
  const auto duplex = Cwdm4Duplex();
  const auto bidi = Cwdm4Bidi();
  EXPECT_EQ(duplex.FiberCount(), 4);
  EXPECT_EQ(bidi.FiberCount(), 2);
  EXPECT_EQ(Cwdm8Bidi().FiberCount(), 1);
}

TEST(Transceiver, ModuleRates) {
  EXPECT_DOUBLE_EQ(Cwdm4Bidi().ModuleRateGbps(), 800.0);
  EXPECT_DOUBLE_EQ(Cwdm8Bidi().ModuleRateGbps(), 800.0);
  EXPECT_DOUBLE_EQ(Cwdm4Duplex().ModuleRateGbps(), 800.0);
}

TEST(Transceiver, BackwardCompatAcrossGenerations) {
  const auto roadmap = DcnRoadmap();
  // §3.3.1: each generation inter-operates with the previous via legacy
  // lane rates.
  for (std::size_t i = 1; i < roadmap.size(); ++i) {
    EXPECT_TRUE(roadmap[i].InteroperatesWith(roadmap[i - 1]))
        << roadmap[i].name << " vs " << roadmap[i - 1].name;
  }
}

TEST(Transceiver, FirstAndLastGenerationStillInteroperate) {
  // §6: interoperability maintained across an order of magnitude (40G vs
  // 400G+) — both can run 10G? No: via chained legacy rates the 800G part
  // still talks 25G, which the 100G part supports.
  const auto roadmap = DcnRoadmap();
  EXPECT_TRUE(roadmap[1].InteroperatesWith(roadmap.back()));
}

TEST(Transceiver, BidiAndDuplexDoNotInteroperate) {
  EXPECT_FALSE(Cwdm4Bidi().InteroperatesWith(Cwdm4Duplex()));
}

TEST(Transceiver, MlPartsCarryDspBlocks) {
  EXPECT_TRUE(Cwdm4Bidi().has_oim_dsp);
  EXPECT_TRUE(Cwdm4Bidi().has_inner_sfec);
  EXPECT_TRUE(Cwdm8Bidi().has_oim_dsp);
  EXPECT_FALSE(Cwdm4Duplex().has_oim_dsp);
}

// --- mux/demux ------------------------------------------------------------------

TEST(Mux, LaneLossGrowsAlongCascade) {
  const ThinFilmMux mux(WdmGrid::Make(WdmGridKind::kCwdm4), Cwdm4MuxSpec());
  for (int lane = 1; lane < 4; ++lane) {
    EXPECT_GT(mux.LaneLoss(lane).value(), mux.LaneLoss(lane - 1).value());
  }
  EXPECT_DOUBLE_EQ(mux.WorstLaneLoss().value(), mux.LaneLoss(3).value());
}

TEST(Mux, Cwdm4StaysLowLoss) {
  // §3.3.1: low-loss thin-film mux/demux keeps the budget workable; the
  // full mux+demux pair on the worst lane stays near 1.5 dB.
  const ThinFilmMux mux(WdmGrid::Make(WdmGridKind::kCwdm4), Cwdm4MuxSpec());
  EXPECT_LT(MuxDemuxPairLoss(mux, 3).value(), 1.6);
}

TEST(Mux, Cwdm8TradesLossForDensity) {
  const ThinFilmMux mux4(WdmGrid::Make(WdmGridKind::kCwdm4), Cwdm4MuxSpec());
  const ThinFilmMux mux8(WdmGrid::Make(WdmGridKind::kCwdm8), Cwdm8MuxSpec());
  // Deeper cascade + sharper filters: worse worst-lane loss and crosstalk.
  EXPECT_GT(mux8.WorstLaneLoss().value(), mux4.WorstLaneLoss().value());
  EXPECT_GT(mux8.CrosstalkAt(4).value(), mux4.CrosstalkAt(1).value());
}

TEST(Mux, CrosstalkDominatedByAdjacentChannels) {
  const ThinFilmMux mux(WdmGrid::Make(WdmGridKind::kCwdm8), Cwdm8MuxSpec());
  // Middle lane has two adjacent neighbours, edge lane one.
  EXPECT_GT(mux.CrosstalkAt(4).value(), mux.CrosstalkAt(0).value());
  // Aggregate crosstalk sits within ~4 dB of a single adjacent leak.
  EXPECT_LT(mux.CrosstalkAt(4).value(), Cwdm8MuxSpec().adjacent_isolation.value() + 4.0);
}

// --- fiber -------------------------------------------------------------------

TEST(Fiber, InsertionLossComposition) {
  const FiberSpan span(1.0, 2, 2);
  // 0.32 dB/km + 2 x 0.25 connectors + 2 x 0.05 splices.
  EXPECT_NEAR(span.InsertionLoss().value(), 0.32 + 0.5 + 0.1, 1e-9);
}

TEST(Fiber, ReflectionPointsOnePerConnector) {
  const FiberSpan span(0.5, 3, 1);
  EXPECT_EQ(span.ReflectionPoints().size(), 3u);
  for (const auto& rl : span.ReflectionPoints()) EXPECT_LT(rl.value(), -40.0);
}

TEST(Fiber, DispersionZeroAtZeroDispersionWavelength) {
  const FiberSpan span(2.0, 0, 0);
  EXPECT_NEAR(span.DispersionPsPerNm(kZeroDispersionWavelength), 0.0, 1e-9);
}

TEST(Fiber, DispersionGrowsAwayFromZero) {
  const FiberSpan span(2.0, 0, 0);
  const double d_1271 = std::abs(span.DispersionPsPerNm(common::Nanometers{1271.0}));
  const double d_1291 = std::abs(span.DispersionPsPerNm(common::Nanometers{1291.0}));
  EXPECT_GT(d_1271, d_1291);
}

TEST(Fiber, DispersionPenaltyWorseForOuterLanesAndHigherRates) {
  const FiberSpan span(2.0, 0, 0);
  const auto outer_100g = span.DispersionPenalty(common::Nanometers{1271.0},
                                                 common::GbitPerSec{100.0}, 0.3);
  const auto inner_100g = span.DispersionPenalty(common::Nanometers{1311.0},
                                                 common::GbitPerSec{100.0}, 0.3);
  const auto outer_25g = span.DispersionPenalty(common::Nanometers{1271.0},
                                                common::GbitPerSec{25.0}, 0.3);
  EXPECT_GT(outer_100g.value(), inner_100g.value());
  EXPECT_GT(outer_100g.value(), outer_25g.value());
}

TEST(Fiber, ChirpWorsensDispersionPenalty) {
  const FiberSpan span(2.0, 0, 0);
  const auto eml = span.DispersionPenalty(common::Nanometers{1271.0},
                                          common::GbitPerSec{100.0}, 0.3);
  const auto dml = span.DispersionPenalty(common::Nanometers{1271.0},
                                          common::GbitPerSec{100.0}, 3.0);
  EXPECT_GT(dml.value(), eml.value());
}

// --- link budget ----------------------------------------------------------------

TEST(LinkBudgetTest, ReceivedPowerAccountsForAllLosses) {
  const auto spec = Cwdm4Bidi();
  LinkBudget budget(spec);
  budget.WithCirculator(IntegratedCirculator());
  budget.AddOcsHop(Decibel{2.0}, Decibel{-46.0});
  const auto analysis = budget.Analyze();
  // tx - (2 x 0.7 circulator) - 2.0 OCS.
  EXPECT_NEAR(analysis.rx_power.value(), spec.tx_power_per_lane.value() - 1.4 - 2.0, 1e-9);
}

TEST(LinkBudgetTest, DuplexLinkHasOnlyDoubleReflectionMpi) {
  auto spec = Cwdm4Duplex();
  LinkBudget budget(spec);
  budget.AddOcsHop(Decibel{2.0}, Decibel{-46.0});
  const auto analysis = budget.Analyze();
  // Double reflections only: ~2 x 46 dB down, far below bidi levels.
  EXPECT_LT(analysis.mpi.value(), -80.0);
}

TEST(LinkBudgetTest, BidiLinkMpiDominatedBySingleReflections) {
  LinkBudget budget(Cwdm4Bidi());
  budget.WithCirculator(IntegratedCirculator());
  budget.AddOcsHop(Decibel{2.0}, Decibel{-46.0});
  const auto analysis = budget.Analyze();
  // Reflections of the local Tx land near -(RL) with small path-loss
  // adjustments; aggregate should sit in the -35..-45 dB region.
  EXPECT_GT(analysis.mpi.value(), -46.0);
  EXPECT_LT(analysis.mpi.value(), -30.0);
}

TEST(LinkBudgetTest, WorseReturnLossRaisesMpi) {
  LinkBudget good(Cwdm4Bidi());
  good.AddOcsHop(Decibel{2.0}, Decibel{-46.0});
  LinkBudget bad(Cwdm4Bidi());
  bad.AddOcsHop(Decibel{2.0}, Decibel{-38.0});
  EXPECT_GT(bad.Analyze().mpi.value(), good.Analyze().mpi.value());
}

TEST(LinkBudgetTest, SuperpodLinkHasPositiveMargin) {
  // A nominal Palomar path must close the link with margin (Fig. 13 shows
  // two orders of magnitude of BER margin in production).
  const auto budget = MakeSuperpodLink(Cwdm4Bidi(), Decibel{2.0}, Decibel{-46.0});
  const auto analysis = budget.Analyze();
  EXPECT_GT(analysis.WorstLane().raw_margin.value(), 3.0);
}

TEST(LinkBudgetTest, LaneCountMatchesGrid) {
  const auto budget = MakeSuperpodLink(Cwdm8Bidi(), Decibel{2.0}, Decibel{-46.0});
  EXPECT_EQ(budget.Analyze().lanes.size(), 8u);
}

TEST(LinkBudgetTest, WorstLaneIsOutermost) {
  const auto budget = MakeSuperpodLink(Cwdm4Bidi(), Decibel{2.0}, Decibel{-46.0});
  const auto analysis = budget.Analyze();
  // 1271 nm sits farthest from the 1310 nm zero-dispersion point.
  EXPECT_DOUBLE_EQ(analysis.WorstLane().wavelength.nm, 1271.0);
}

class OcsLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(OcsLossSweep, MarginDecreasesWithOcsLoss) {
  const double loss = GetParam();
  const auto a = MakeSuperpodLink(Cwdm4Bidi(), Decibel{loss}, Decibel{-46.0});
  const auto b = MakeSuperpodLink(Cwdm4Bidi(), Decibel{loss + 0.5}, Decibel{-46.0});
  EXPECT_GT(a.Analyze().WorstLane().raw_margin.value(),
            b.Analyze().WorstLane().raw_margin.value());
}

INSTANTIATE_TEST_SUITE_P(Losses, OcsLossSweep, ::testing::Values(1.0, 1.5, 2.0, 2.5, 3.0));

}  // namespace
}  // namespace lightwave::optics
