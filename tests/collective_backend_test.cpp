// Tests for the pluggable collective-backend subsystem (CTest label
// `collective`): per-backend analytic-vs-event-driven cross-validation,
// byte-identity of the ring backend with the legacy closed-form path
// (pinned against pre-backend values), in-network slot-exhaustion and
// loss-penalty behavior, RankShapes determinism across backends, telemetry
// exporter visibility, and the contract negative tests.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "sim/collective_backend.h"
#include "sim/event.h"
#include "sim/llm_model.h"
#include "sim/multipod.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"
#include "tpu/slice.h"

namespace lightwave::sim {
namespace {

using common::CheckFailure;
using common::CheckKind;
using common::ScopedCheckHandler;

const CollectiveLinkProfile kLink{400.0, 1.0};

std::vector<const CollectiveBackend*> AllBackends() {
  static const RingBackend* const ring = new RingBackend;
  static const TreeBackend* const tree = new TreeBackend;
  static const InNetworkBackend* const inn = new InNetworkBackend;
  return {ring, tree, inn};
}

// --- analytic vs event-driven ----------------------------------------------------

TEST(CollectiveBackend, AnalyticMatchesEventSimulationPerBackend) {
  for (const auto* backend : AllBackends()) {
    for (const int n : {2, 5, 8, 17, 64, 256}) {
      for (const double bytes : {4096.0, 64e6}) {
        EventQueue queue;
        const double analytic = backend->AllReduceCost(n, bytes, kLink).time_us;
        const double simulated = backend->SimulateAllReduce(queue, n, bytes, kLink);
        EXPECT_NEAR(simulated, analytic, analytic * 1e-9)
            << backend->name() << " n=" << n << " bytes=" << bytes;
      }
    }
  }
}

TEST(CollectiveBackend, SimulationStartsAtQueueNow) {
  // The validator reports time relative to entry, even on a queue whose
  // clock has already advanced.
  TreeBackend tree;
  EventQueue queue;
  queue.At(25.0, [] {});
  queue.Run();
  ASSERT_DOUBLE_EQ(queue.now(), 25.0);
  const double cost = tree.AllReduceCost(8, 1e6, kLink).time_us;
  EXPECT_NEAR(tree.SimulateAllReduce(queue, 8, 1e6, kLink), cost, cost * 1e-9);
}

TEST(CollectiveBackend, InNetworkSimMatchesClosedFormInBothRegimes) {
  // Slot-bound (tiny pool, long round trip) and link-bound (deep pool)
  // exercise the two branches of the closed form against the genuine
  // sliding-window event simulation.
  for (const int slots : {1, 2, 7, 128, 4096}) {
    for (const double hop : {0.3, 20.0}) {
      InNetworkConfig config;
      config.pool_slots = slots;
      InNetworkBackend backend(config);
      const CollectiveLinkProfile link{400.0, hop};
      EventQueue queue;
      const double analytic = backend.AllReduceCost(16, 3e6, link).time_us;
      const double simulated = backend.SimulateAllReduce(queue, 16, 3e6, link);
      EXPECT_NEAR(simulated, analytic, analytic * 1e-9)
          << "slots=" << slots << " hop=" << hop;
    }
  }
}

// --- cost-model structure --------------------------------------------------------

TEST(CollectiveBackend, SingleMemberAndZeroBytesAreFree) {
  for (const auto* backend : AllBackends()) {
    EXPECT_DOUBLE_EQ(backend->AllReduceCost(1, 1e9, kLink).time_us, 0.0)
        << backend->name();
    EventQueue queue;
    EXPECT_DOUBLE_EQ(backend->SimulateAllReduce(queue, 1, 1e9, kLink), 0.0)
        << backend->name();
  }
  // Zero bytes: latency-only for ring/tree, free for in-network (no
  // packets to aggregate).
  EXPECT_DOUBLE_EQ(RingBackend{}.AllReduceCost(8, 0.0, kLink).bandwidth_term_us, 0.0);
  EXPECT_DOUBLE_EQ(TreeBackend{}.AllReduceCost(8, 0.0, kLink).bandwidth_term_us, 0.0);
  EXPECT_GT(TreeBackend{}.AllReduceCost(8, 0.0, kLink).latency_term_us, 0.0);
  EXPECT_DOUBLE_EQ(InNetworkBackend{}.AllReduceCost(8, 0.0, kLink).time_us, 0.0);
}

TEST(CollectiveBackend, TreeLatencyLogarithmicRingLatencyLinear) {
  RingBackend ring;
  TreeBackend tree;
  const auto ring_cost = ring.AllReduceCost(256, 1e6, kLink);
  const auto tree_cost = tree.AllReduceCost(256, 1e6, kLink);
  EXPECT_DOUBLE_EQ(ring_cost.latency_term_us, 2.0 * 255 * kLink.hop_latency_us);
  EXPECT_DOUBLE_EQ(tree_cost.latency_term_us, 2.0 * 8 * kLink.hop_latency_us);
  // Tree pays ~2x the ring's bandwidth term for that latency win.
  EXPECT_NEAR(tree_cost.bandwidth_term_us / ring_cost.bandwidth_term_us,
              2.0 * 2.0 * 256 / (2.0 * 255), 1e-9);
}

TEST(CollectiveBackend, InNetworkTimeIndependentOfWorkerCount) {
  InNetworkBackend backend;
  const double t4 = backend.AllReduceCost(4, 64e6, kLink).time_us;
  for (const int n : {2, 16, 400, 4096}) {
    EXPECT_DOUBLE_EQ(backend.AllReduceCost(n, 64e6, kLink).time_us, t4) << n;
  }
  // ...while the ring scales with member count.
  RingBackend ring;
  EXPECT_GT(ring.AllReduceCost(4096, 64e6, kLink).time_us,
            ring.AllReduceCost(4, 64e6, kLink).time_us);
}

TEST(CollectiveBackend, InNetworkSlotExhaustionGatesPipelineDepth) {
  // Fewer pool slots can only slow the pipeline; once the pool covers the
  // bandwidth-delay product, adding slots changes nothing.
  double previous = 0.0;
  std::vector<double> times;
  for (const int slots : {1, 2, 8, 32, 4096}) {
    InNetworkConfig config;
    config.pool_slots = slots;
    times.push_back(InNetworkBackend(config).AllReduceCost(8, 64e6, kLink).time_us);
    if (previous > 0.0) EXPECT_LE(times.back(), previous) << "slots=" << slots;
    previous = times.back();
  }
  // Strictly faster while slot-bound; a starved pool is order-of-magnitude slow.
  EXPECT_GT(times.front(), 10.0 * times.back());
  // Deep-pool time is the line-rate bound: serialization plus one round trip.
  InNetworkConfig config;
  config.pool_slots = 1 << 20;
  InNetworkBackend deep(config);
  const auto cost = deep.AllReduceCost(8, 64e6, kLink);
  const double packets = std::ceil(64e6 / config.slot_bytes);
  EXPECT_DOUBLE_EQ(cost.bandwidth_term_us,
                   packets * (config.slot_bytes / 1e9) / (kLink.link_gbps / 8.0 / 1e6));
  EXPECT_DOUBLE_EQ(cost.latency_term_us,
                   2.0 * kLink.hop_latency_us + config.switch_latency_us);
}

TEST(CollectiveBackend, InNetworkLossPenaltyMonotone) {
  double previous = -1.0;
  for (const double p : {0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.5}) {
    InNetworkConfig config;
    config.drop_probability = p;
    const double t = InNetworkBackend(config).AllReduceCost(8, 64e6, kLink).time_us;
    EXPECT_GT(t, previous) << "p=" << p;
    previous = t;
  }
  // The retransmission factor is the SwitchML expected-tries model: a slot
  // round trip survives both directions with probability (1-p)^2.
  InNetworkConfig lossy;
  lossy.drop_probability = 0.1;
  const double clean = InNetworkBackend{}.AllReduceCost(8, 64e6, kLink).bandwidth_term_us;
  EXPECT_NEAR(InNetworkBackend(lossy).AllReduceCost(8, 64e6, kLink).bandwidth_term_us,
              clean / (0.9 * 0.9), clean * 1e-9);
}

// --- ring-backend byte-identity with the legacy path -----------------------------

TEST(CollectiveBackend, RingBackendMatchesLegacyClosedFormExactly) {
  RingBackend ring;
  for (const int n : {1, 2, 8, 33, 256}) {
    for (const double bytes : {0.0, 4096.0, 1e9}) {
      const auto legacy = RingAllReduce(bytes, n, kLink.link_gbps, kLink.hop_latency_us);
      const auto cost = ring.AllReduceCost(n, bytes, kLink);
      EXPECT_DOUBLE_EQ(cost.time_us, legacy.time_us);
      EXPECT_DOUBLE_EQ(cost.bandwidth_term_us, legacy.bandwidth_term_us);
      EXPECT_DOUBLE_EQ(cost.latency_term_us, legacy.latency_term_us);
    }
  }
}

TEST(CollectiveBackend, InjectedRingBackendByteIdenticalToDefaultModel) {
  const LlmPerfModel implicit_model;  // null backend -> default ring
  LlmCalibration cal;
  cal.collective_backend = MakeCollectiveBackend(CollectiveBackendKind::kRing);
  const LlmPerfModel explicit_model(cal);
  for (const auto& spec : {Llm0(), Llm1(), Llm2()}) {
    const auto a = implicit_model.RankShapes(spec, 64);
    const auto b = explicit_model.RankShapes(spec, 64);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].shape, b[i].shape) << spec.name << " rank " << i;
      EXPECT_DOUBLE_EQ(a[i].breakdown.total_us, b[i].breakdown.total_us);
      EXPECT_DOUBLE_EQ(a[i].breakdown.mp_comm_us, b[i].breakdown.mp_comm_us);
      EXPECT_DOUBLE_EQ(a[i].breakdown.dp_comm_exposed_us,
                       b[i].breakdown.dp_comm_exposed_us);
    }
  }
}

TEST(CollectiveBackend, DefaultModelPinnedToPreBackendValues) {
  // Exact doubles captured from the model BEFORE the backend subsystem
  // existed: the default (ring) path must stay byte-identical.
  const LlmPerfModel model;
  EXPECT_DOUBLE_EQ(model.StepTime(Llm0(), tpu::SliceShape{2, 4, 8}).total_us,
                   997466.03755080141);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm0(), tpu::SliceShape{4, 4, 4}).total_us,
                   1665238.5419536615);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm1(), tpu::SliceShape{1, 1, 64}).total_us,
                   3464298.6281535099);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm1(), tpu::SliceShape{4, 4, 4}).total_us,
                   12043809.883364245);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm1(), tpu::SliceShape{2, 2, 16}).total_us,
                   6477974.3378473511);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm2(), tpu::SliceShape{4, 4, 4}).total_us,
                   2352709.8422987117);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm2(), tpu::SliceShape{1, 1, 64}).total_us,
                   5686266.1974482322);
  EXPECT_DOUBLE_EQ(model.StepTime(Llm0(), tpu::SliceShape{2, 4, 8}).mp_comm_us,
                   215502.40118716491);
  EXPECT_EQ(model.RankShapes(Llm0(), 64).front().shape.ToString(), "8x16x32");
  EXPECT_EQ(model.RankShapes(Llm1(), 64)[1].shape.ToString(), "4x8x128");
}

TEST(CollectiveBackend, MultipodPinnedToPreBackendValues) {
  const MultipodTrainer trainer;
  MultipodConfig config;
  config.pods = 4;
  const auto step = trainer.StepTime(Llm1(), config);
  EXPECT_EQ(step.pod_shape.ToString(), "4x4x256");
  EXPECT_DOUBLE_EQ(step.total_us, 972948.59558284667);
  EXPECT_DOUBLE_EQ(step.dcn_allreduce_us, 33112.5);
  EXPECT_DOUBLE_EQ(step.dcn_exposed_us, 0.0);
  config.pods = 8;
  EXPECT_DOUBLE_EQ(trainer.StepTime(Llm1(), config).total_us, 516057.2310150562);
  config.pods = 8;
  config.dcn_backend = MakeCollectiveBackend(CollectiveBackendKind::kRing);
  EXPECT_DOUBLE_EQ(trainer.StepTime(Llm1(), config).total_us, 516057.2310150562);
}

// --- RankShapes determinism across backends --------------------------------------

TEST(CollectiveBackend, RankShapesDeterministicPerBackend) {
  for (const auto kind : {CollectiveBackendKind::kRing, CollectiveBackendKind::kTree,
                          CollectiveBackendKind::kInNetwork}) {
    LlmCalibration cal;
    cal.collective_backend = MakeCollectiveBackend(kind);
    const LlmPerfModel model(cal);
    const auto first = model.RankShapes(Llm1(), 64);
    const auto second = model.RankShapes(Llm1(), 64);
    ASSERT_EQ(first.size(), tpu::EnumerateShapes(64).size()) << ToString(kind);
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].shape, second[i].shape) << ToString(kind) << " rank " << i;
      EXPECT_DOUBLE_EQ(first[i].breakdown.total_us, second[i].breakdown.total_us);
    }
  }
}

TEST(CollectiveBackend, BackendsChangeCommCostButKeepThroughputPositive) {
  for (const auto& spec : {Llm0(), Llm1(), Llm2()}) {
    for (const auto kind : {CollectiveBackendKind::kTree,
                            CollectiveBackendKind::kInNetwork}) {
      LlmCalibration cal;
      cal.collective_backend = MakeCollectiveBackend(kind);
      const auto best = LlmPerfModel(cal).RankShapes(spec, 64).front();
      EXPECT_GT(best.breakdown.total_us, 0.0);
      EXPECT_GT(best.breakdown.throughput_seq_per_s, 0.0);
    }
  }
}

// --- telemetry -------------------------------------------------------------------

TEST(CollectiveBackend, TelemetryVisibleThroughExporters) {
  telemetry::Hub hub;
  auto backend = std::make_shared<TreeBackend>();
  backend->AttachTelemetry(&hub);
  LlmCalibration cal;
  cal.collective_backend = backend;
  const LlmPerfModel model(cal);
  model.StepTime(Llm1(), tpu::SliceShape{2, 2, 16});

  const auto& calls = hub.metrics().GetCounter("lightwave_sim_collectives_total",
                                               {{"backend", "tree"}});
  EXPECT_GE(calls.value(), 2u);  // the MP and DP all-reduces at least
  const auto& hist =
      hub.metrics().GetHistogram("lightwave_sim_collective_us", {{"backend", "tree"}});
  EXPECT_EQ(hist.count(), calls.value());
  EXPECT_GT(hist.Percentile(50.0), 0.0);

  const std::string prom = telemetry::ToPrometheus(hub.metrics());
  EXPECT_NE(prom.find("lightwave_sim_collectives_total{backend=\"tree\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("lightwave_sim_collective_us"), std::string::npos);
  const std::string json = telemetry::ToJson(hub.metrics());
  EXPECT_NE(json.find("lightwave_sim_collective_us"), std::string::npos);

  // Detaching stops recording without disturbing the exported series.
  const auto recorded = calls.value();
  backend->AttachTelemetry(nullptr);
  backend->AllReduceCost(8, 1e6, kLink);
  EXPECT_EQ(calls.value(), recorded);
}

TEST(CollectiveBackend, PerBackendSeriesAreDistinct) {
  telemetry::Hub hub;
  RingBackend ring;
  InNetworkBackend inn;
  ring.AttachTelemetry(&hub);
  inn.AttachTelemetry(&hub);
  ring.AllReduceCost(8, 1e6, kLink);
  ring.AllReduceCost(8, 1e6, kLink);
  inn.AllReduceCost(8, 1e6, kLink);
  EXPECT_EQ(hub.metrics()
                .GetCounter("lightwave_sim_collectives_total", {{"backend", "ring"}})
                .value(),
            2u);
  EXPECT_EQ(hub.metrics()
                .GetCounter("lightwave_sim_collectives_total", {{"backend", "innetwork"}})
                .value(),
            1u);
}

// --- contracts -------------------------------------------------------------------

class RecordingHandler {
 public:
  RecordingHandler()
      : scoped_([this](const CheckFailure& failure) { failures_.push_back(failure); }) {}

  std::size_t CountOf(CheckKind kind) const {
    std::size_t n = 0;
    for (const auto& f : failures_) {
      if (f.kind == kind) ++n;
    }
    return n;
  }

 private:
  std::vector<CheckFailure> failures_;
  ScopedCheckHandler scoped_;
};

TEST(CollectiveBackendContracts, RejectsNonPositiveMembership) {
  for (const auto* backend : AllBackends()) {
    RecordingHandler handler;
    backend->AllReduceCost(0, 1e6, kLink);
    EXPECT_GE(handler.CountOf(CheckKind::kCheck), 1u) << backend->name();
  }
}

TEST(CollectiveBackendContracts, RejectsNonPositiveLinkRate) {
  for (const auto* backend : AllBackends()) {
    RecordingHandler handler;
    backend->AllReduceCost(8, 1e6, CollectiveLinkProfile{-400.0, 1.0});
    EXPECT_GE(handler.CountOf(CheckKind::kCheck), 1u) << backend->name();
  }
}

TEST(CollectiveBackendContracts, InNetworkConfigValidated) {
  {
    RecordingHandler handler;
    InNetworkConfig config;
    config.pool_slots = 0;
    InNetworkBackend backend(config);
    EXPECT_EQ(handler.CountOf(CheckKind::kCheck), 1u);
  }
  {
    RecordingHandler handler;
    InNetworkConfig config;
    config.drop_probability = 1.0;  // certain loss never converges
    InNetworkBackend backend(config);
    EXPECT_EQ(handler.CountOf(CheckKind::kCheck), 1u);
  }
  {
    RecordingHandler handler;
    InNetworkConfig config;
    config.slot_bytes = 0.0;
    InNetworkBackend backend(config);
    EXPECT_EQ(handler.CountOf(CheckKind::kCheck), 1u);
  }
}

}  // namespace
}  // namespace lightwave::sim
