// Multi-threaded stress for the telemetry plane, meant to run under TSan
// (cmake -DLIGHTWAVE_TSAN=ON): 8 threads hammer counters, gauges,
// histograms, time series, and tracer spans through one shared registry
// while a reader thread snapshots everything, then totals are checked
// exactly. Any unsynchronized access in MetricsRegistry or Tracer shows up
// as a TSan report; the count assertions catch lost updates.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "telemetry/check_sink.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"

namespace lightwave::telemetry {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 2000;

TEST(TelemetryRace, CountersAndHistogramsUnderContention) {
  MetricsRegistry registry;
  // One shared series plus one per-thread series, resolved concurrently so
  // the registry's lookup-or-create path is contended too.
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      auto& shared = registry.GetCounter("race_shared_total");
      auto& mine = registry.GetCounter("race_per_thread_total",
                                       {{"thread", std::to_string(t)}});
      auto& gauge = registry.GetGauge("race_gauge");
      auto& hist = registry.GetHistogram("race_hist");
      auto& series = registry.GetTimeSeries("race_series", {}, 256);
      for (int i = 0; i < kIterations; ++i) {
        shared.Inc();
        mine.Inc();
        gauge.Add(1.0);
        hist.Observe(static_cast<double>(i));
        series.Record(static_cast<double>(i), static_cast<double>(t));
      }
    });
  }
  // Concurrent reader: snapshots and exports must be safe mid-write.
  std::thread reader([&registry, &go] {
    while (!go.load(std::memory_order_acquire)) {}
    for (int i = 0; i < 50; ++i) {
      (void)registry.Counters();
      (void)registry.Histograms();
      (void)registry.TimeSeriesAll();
      (void)ToPrometheus(registry);
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  reader.join();

  EXPECT_EQ(registry.GetCounter("race_shared_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("race_per_thread_total",
                                  {{"thread", std::to_string(t)}})
                  .value(),
              static_cast<std::uint64_t>(kIterations));
  }
  EXPECT_DOUBLE_EQ(registry.GetGauge("race_gauge").value(),
                   static_cast<double>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetHistogram("race_hist").count(),
            static_cast<std::size_t>(kThreads) * kIterations);
  auto& series = registry.GetTimeSeries("race_series");
  EXPECT_EQ(series.recorded(), static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(series.Samples().size(), series.capacity());
}

TEST(TelemetryRace, TracerSpansUnderContention) {
  Tracer tracer;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kIterations / 4; ++i) {
        const auto id = tracer.Begin("span-" + std::to_string(t), i);
        tracer.Annotate(id, "thread", std::to_string(t));
        tracer.End(id, i + 1.0);
      }
    });
  }
  std::thread reader([&tracer, &go] {
    while (!go.load(std::memory_order_acquire)) {}
    for (int i = 0; i < 50; ++i) {
      (void)tracer.span_count();
      (void)tracer.spans();
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  reader.join();

  EXPECT_EQ(tracer.span_count(),
            static_cast<std::size_t>(kThreads) * (kIterations / 4));
  EXPECT_EQ(tracer.open_count(), 0u);
  for (const auto& span : tracer.spans()) {
    EXPECT_FALSE(span.open);
    ASSERT_EQ(span.attributes.size(), 1u);
  }
}

TEST(TelemetryRace, HubCheckSinkUnderContention) {
  // Contract violations reported from many threads must count exactly.
  Hub hub;
  CheckTelemetrySink sink(&hub);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 500; ++i) (void)LW_ENSURE(i < 0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hub.metrics()
                .GetCounter("lightwave_check_failures_total", {{"kind", "ensure"}})
                .value(),
            static_cast<std::uint64_t>(kThreads) * 500);
}

}  // namespace
}  // namespace lightwave::telemetry
