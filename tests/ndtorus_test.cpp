// Tests for the N-dimensional torus analysis (§6): balanced factorization,
// metric correctness, and the paper's claim that 4D/6D tori beat 3D on
// bisection bandwidth and latency at the same node count.
#include <gtest/gtest.h>

#include "tpu/ndtorus.h"

namespace lightwave::tpu {
namespace {

TEST(NdTorus, NodeCountAndString) {
  NdTorus t({4, 8, 2});
  EXPECT_EQ(t.NodeCount(), 64);
  EXPECT_EQ(t.ToString(), "8x4x2");  // sorted descending
  EXPECT_EQ(t.dimension_count(), 3);
}

TEST(NdTorus, BalancedFactorizations) {
  EXPECT_EQ(NdTorus::Balanced(3, 4096).ToString(), "16x16x16");
  EXPECT_EQ(NdTorus::Balanced(4, 4096).ToString(), "8x8x8x8");
  EXPECT_EQ(NdTorus::Balanced(6, 4096).ToString(), "4x4x4x4x4x4");
  EXPECT_EQ(NdTorus::Balanced(2, 4096).ToString(), "64x64");
  EXPECT_EQ(NdTorus::Balanced(1, 100).ToString(), "100");
}

TEST(NdTorus, BalancedPreservesNodeCount) {
  for (int d : {1, 2, 3, 4, 6}) {
    EXPECT_EQ(NdTorus::Balanced(d, 4096).NodeCount(), 4096) << d;
  }
  // Non-power-of-two node counts factor too.
  EXPECT_EQ(NdTorus::Balanced(3, 1728).NodeCount(), 1728);
  EXPECT_EQ(NdTorus::Balanced(3, 1728).ToString(), "12x12x12");
}

TEST(NdTorus, LinksPerNode) {
  EXPECT_EQ(NdTorus({16, 16, 16}).LinksPerNode(), 6);   // the 3D torus radix
  EXPECT_EQ(NdTorus({8, 8, 8, 8}).LinksPerNode(), 8);
  EXPECT_EQ(NdTorus({2, 2}).LinksPerNode(), 2);         // length-2 rings collapse
}

TEST(NdTorus, BisectionDiameterMeanFor3d) {
  NdTorus t({16, 16, 16});
  EXPECT_EQ(t.BisectionLinks(), 2 * 256);
  EXPECT_EQ(t.Diameter(), 24);
  EXPECT_NEAR(t.MeanDistance(), 12.0, 1e-9);
}

TEST(NdTorus, HigherDimensionalityImprovesBisectionAndLatency) {
  // §6: "a 4D or 6D torus ... has a larger bisection bandwidth, lower
  // latency and greater scalability compared to a 3D torus."
  const auto rows = CompareTorusDimensionalities(4096, {3, 4, 6}, 64e6);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_GT(rows[1].bisection_links, rows[0].bisection_links);  // 4D > 3D
  EXPECT_GT(rows[2].bisection_links, rows[1].bisection_links);  // 6D > 4D
  EXPECT_LT(rows[1].diameter, rows[0].diameter);
  EXPECT_LT(rows[2].diameter, rows[1].diameter);
  EXPECT_LT(rows[1].mean_distance, rows[0].mean_distance);
  // The cost: more links (ports) per node.
  EXPECT_GT(rows[2].links_per_node, rows[0].links_per_node);
}

TEST(NdTorus, AllReduceFasterInHigherDims) {
  // Latency term shrinks with shorter rings; bandwidth term is shape
  // independent to first order, so higher dims win on small payloads.
  NdTorus t3 = NdTorus::Balanced(3, 4096);
  NdTorus t6 = NdTorus::Balanced(6, 4096);
  EXPECT_LT(t6.AllReduceUs(1e6), t3.AllReduceUs(1e6));
}

TEST(NdTorus, AllReduceBandwidthTermDominatesLargePayloads) {
  NdTorus t3 = NdTorus::Balanced(3, 4096);
  NdTorus t6 = NdTorus::Balanced(6, 4096);
  const double big = 4e9;
  // Within 10% of each other at 4 GB: bandwidth-bound regime.
  EXPECT_NEAR(t6.AllReduceUs(big) / t3.AllReduceUs(big), 1.0, 0.1);
}

TEST(NdTorus, DegenerateDimensionsContributeNothing) {
  NdTorus flat({64, 1, 1});
  NdTorus line({64});
  EXPECT_EQ(flat.Diameter(), line.Diameter());
  EXPECT_NEAR(flat.AllReduceUs(1e6), line.AllReduceUs(1e6), 1e-9);
}

}  // namespace
}  // namespace lightwave::tpu
