// Unit tests for the OCS module: MEMS yield/sparing, collimators, the
// closed-loop alignment controller, the optical core, the chassis FRU and
// availability model, the Palomar switch state machine (bijectivity,
// non-blocking reconfiguration, undisturbed connections, failure injection),
// and the Table C.1 technology ranking.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "ocs/alignment.h"
#include "ocs/chassis.h"
#include "ocs/collimator.h"
#include "ocs/mems.h"
#include "ocs/optical_core.h"
#include "ocs/palomar.h"
#include "ocs/technology.h"

namespace lightwave::ocs {
namespace {

// --- mems --------------------------------------------------------------------

TEST(Mems, FabricationYieldsUsableDie) {
  common::Rng rng(1);
  MemsArray array(rng);
  EXPECT_GE(array.FunctionalCount(), kUsedMirrors);
  EXPECT_GE(array.SparesRemaining(), 0);
}

TEST(Mems, LogicalMappingIsInjective) {
  common::Rng rng(2);
  MemsArray array(rng);
  std::set<int> physical;
  for (int i = 0; i < kUsedMirrors; ++i) physical.insert(array.PhysicalMirror(i));
  EXPECT_EQ(physical.size(), static_cast<std::size_t>(kUsedMirrors));
}

TEST(Mems, ActuateSetsTargetWithOpenLoopError) {
  common::Rng rng(3);
  MemsArray array(rng);
  array.Actuate(rng, 7, 0.01, -0.02);
  const auto& m = array.mirror(array.PhysicalMirror(7));
  EXPECT_DOUBLE_EQ(m.target_x, 0.01);
  EXPECT_DOUBLE_EQ(m.target_y, -0.02);
  EXPECT_GT(array.PointingError(7), 0.0);
  EXPECT_LT(array.PointingError(7), 10.0 * MemsArray::kOpenLoopErrorStd);
}

TEST(Mems, FailedMirrorRemapsToSpare) {
  common::Rng rng(4);
  MemsArray array(rng);
  const int spares_before = array.SparesRemaining();
  ASSERT_GT(spares_before, 0);
  const int physical = array.PhysicalMirror(0);
  EXPECT_TRUE(array.FailMirror(rng, physical));
  EXPECT_NE(array.PhysicalMirror(0), physical);
  EXPECT_EQ(array.SparesRemaining(), spares_before - 1);
}

TEST(Mems, ExhaustedSparesReported) {
  common::Rng rng(5);
  MemsArray array(rng);
  // Burn every spare by repeatedly failing logical mirror 0's chain.
  while (array.SparesRemaining() > 0) {
    ASSERT_TRUE(array.FailMirror(rng, array.PhysicalMirror(0)));
  }
  EXPECT_FALSE(array.FailMirror(rng, array.PhysicalMirror(0)));
}

// --- collimator --------------------------------------------------------------

TEST(Collimator, PortStatisticsMatchSpec) {
  common::Rng rng(6);
  CollimatorArray array(rng, 136);
  double worst_rl = -100.0;
  for (int i = 0; i < array.port_count(); ++i) {
    const auto& p = array.port(i);
    EXPECT_GT(p.coupling_loss.value(), 0.0);
    EXPECT_LT(p.return_loss.value(), -38.0);  // the Fig. 10b spec line
    worst_rl = std::max(worst_rl, p.return_loss.value());
  }
  EXPECT_LT(worst_rl, -38.0);
}

// --- alignment ------------------------------------------------------------------

TEST(Alignment, ConvergesFromOpenLoopError) {
  common::Rng rng(7);
  MemsArray array(rng);
  array.Actuate(rng, 3, 0.005, 0.005);
  const double before = array.PointingError(3);
  AlignmentController controller;
  const auto result = controller.Align(rng, array, 3);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(array.PointingError(3), before);
  EXPECT_LT(array.PointingError(3), 1e-4);
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.elapsed_ms, 0.0);
}

TEST(Alignment, MillisecondClassSwitchTime) {
  // Table C.1: MEMS switching is millisecond class; the alignment loop is
  // what dominates it.
  common::Rng rng(8);
  MemsArray array(rng);
  array.Actuate(rng, 0, 0.01, 0.0);
  AlignmentController controller;
  const auto result = controller.Align(rng, array, 0);
  EXPECT_GT(result.elapsed_ms, 0.1);
  EXPECT_LT(result.elapsed_ms, 50.0);
}

TEST(Alignment, MisalignmentLossQuadratic) {
  const double small = MisalignmentLoss(1e-4).value();
  const double large = MisalignmentLoss(2e-4).value();
  EXPECT_NEAR(large / small, 4.0, 0.01);
  EXPECT_EQ(MisalignmentLoss(0.0).value(), 0.0);
}

// --- optical core -----------------------------------------------------------------

TEST(OpticalCore, EstablishPathProducesSpecLoss) {
  OpticalCore core(common::Rng(9));
  const auto metrics = core.EstablishPath(5, 77);
  ASSERT_TRUE(metrics.has_value());
  // Typically < 2 dB, always < 3 dB (the design target of §3.2.1).
  EXPECT_GT(metrics->insertion_loss.value(), 0.5);
  EXPECT_LT(metrics->insertion_loss.value(), 3.5);
  EXPECT_LT(metrics->return_loss.value(), -38.0);
  EXPECT_GT(metrics->alignment_time_ms, 0.0);
}

TEST(OpticalCore, TypicalLossUnder2Db) {
  OpticalCore core(common::Rng(10));
  int under_2db = 0;
  const int samples = 100;
  for (int i = 0; i < samples; ++i) {
    const int n = i % core.port_count();
    const int s = (i * 7 + 3) % core.port_count();
    const auto metrics = core.EstablishPath(n, s);
    ASSERT_TRUE(metrics.has_value());
    under_2db += metrics->insertion_loss.value() < 2.0 ? 1 : 0;
  }
  EXPECT_GT(under_2db, 70);  // "insertion losses are typically less than 2dB"
}

TEST(OpticalCore, MeasurePathStableAfterEstablish) {
  OpticalCore core(common::Rng(11));
  const auto established = core.EstablishPath(1, 2);
  ASSERT_TRUE(established.has_value());
  const auto measured = core.MeasurePath(1, 2);
  EXPECT_NEAR(measured.insertion_loss.value(), established->insertion_loss.value(), 1e-9);
}

// --- chassis ---------------------------------------------------------------------

TEST(Chassis, SteadyStateAvailabilityMeetsSpec) {
  const Chassis chassis;
  // §4.1.1: > 99.98% field availability.
  EXPECT_GT(chassis.SteadyStateAvailability(), 0.9998);
  EXPECT_LT(chassis.SteadyStateAvailability(), 1.0);
}

TEST(Chassis, RedundantPsuSurvivesOneFailure) {
  Chassis chassis;
  EXPECT_TRUE(chassis.FailUnit(FruKind::kPowerSupply, 0));
  EXPECT_TRUE(chassis.Operational());
  EXPECT_FALSE(chassis.FailUnit(FruKind::kPowerSupply, 1));
  EXPECT_FALSE(chassis.Operational());
}

TEST(Chassis, FanRedundancyThreeOfFour) {
  Chassis chassis;
  EXPECT_TRUE(chassis.FailUnit(FruKind::kFanModule, 2));
  EXPECT_FALSE(chassis.FailUnit(FruKind::kFanModule, 3));
}

TEST(Chassis, HvDriverFailureTakesChassisDown) {
  Chassis chassis;
  EXPECT_FALSE(chassis.FailUnit(FruKind::kHvDriverBoard, 5));
  // Hot-swap repair restores operation but disturbs mirror state.
  EXPECT_TRUE(chassis.RepairUnit(FruKind::kHvDriverBoard, 5));
  EXPECT_TRUE(chassis.Operational());
}

TEST(Chassis, PsuSwapDoesNotDisturbMirrors) {
  Chassis chassis;
  chassis.FailUnit(FruKind::kPowerSupply, 0);
  EXPECT_FALSE(chassis.RepairUnit(FruKind::kPowerSupply, 0));
}

TEST(Chassis, PowerBudgetNear108W) {
  const Chassis chassis;
  // §4.1.1: maximum power of the entire system is 108 W.
  EXPECT_LE(chassis.PowerDrawWatts(), 108.0);
  EXPECT_GT(chassis.PowerDrawWatts(), 90.0);
}

// --- palomar ---------------------------------------------------------------------

TEST(Palomar, ConnectDisconnectRoundTrip) {
  PalomarSwitch ocs(12);
  const auto conn = ocs.Connect(3, 100);
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn.value().north, 3);
  EXPECT_EQ(conn.value().south, 100);
  EXPECT_TRUE(ocs.ConnectionOn(3).has_value());
  EXPECT_TRUE(ocs.Disconnect(3).ok());
  EXPECT_FALSE(ocs.ConnectionOn(3).has_value());
}

TEST(Palomar, RejectsDoubleConnect) {
  PalomarSwitch ocs(13);
  ASSERT_TRUE(ocs.Connect(1, 2).ok());
  EXPECT_FALSE(ocs.Connect(1, 3).ok());  // north busy
  EXPECT_FALSE(ocs.Connect(4, 2).ok());  // south busy
  EXPECT_EQ(ocs.telemetry().rejected_commands, 2u);
}

TEST(Palomar, RejectsOutOfRange) {
  PalomarSwitch ocs(14);
  EXPECT_FALSE(ocs.Connect(-1, 5).ok());
  EXPECT_FALSE(ocs.Connect(0, kPalomarPortCount).ok());
  EXPECT_FALSE(ocs.Disconnect(7).ok());
}

TEST(Palomar, FullPermutationIsNonBlocking) {
  PalomarSwitch ocs(15);
  // Any-to-any: connect the full reversal permutation over the usable ports.
  for (int n = 0; n < kPalomarUsablePorts; ++n) {
    ASSERT_TRUE(ocs.Connect(n, kPalomarUsablePorts - 1 - n).ok()) << n;
  }
  EXPECT_EQ(ocs.ConnectionCount(), kPalomarUsablePorts);
}

TEST(Palomar, SparePortPoolStartsFull) {
  PalomarSwitch ocs(40);
  EXPECT_EQ(ocs.SparePortsRemaining(true), kPalomarSparePorts);
  EXPECT_EQ(ocs.SparePortsRemaining(false), kPalomarSparePorts);
  EXPECT_EQ(ocs.PhysicalPort(true, 17), 17);  // identity until remapped
}

TEST(Palomar, RemapToSpareMovesActiveConnection) {
  PalomarSwitch ocs(41);
  ASSERT_TRUE(ocs.Connect(5, 50).ok());
  ASSERT_TRUE(ocs.RemapToSpare(true, 5).ok());
  EXPECT_GE(ocs.PhysicalPort(true, 5), kPalomarUsablePorts);
  EXPECT_EQ(ocs.SparePortsRemaining(true), kPalomarSparePorts - 1);
  // The logical connection survived the re-patch.
  ASSERT_TRUE(ocs.ConnectionOn(5).has_value());
  EXPECT_EQ(ocs.ConnectionOn(5)->south, 50);
  EXPECT_TRUE(ocs.PortUsable(true, 5));
}

TEST(Palomar, RemapRescuesDeadPort) {
  PalomarSwitch ocs(42);
  ASSERT_TRUE(ocs.Connect(9, 90).ok());
  // Exhaust the mirror spares behind logical north port 9.
  bool usable = true;
  for (int i = 0; i < 60 && usable; ++i) usable = ocs.InjectMirrorFailure(true, 9);
  ASSERT_FALSE(ocs.PortUsable(true, 9));
  EXPECT_FALSE(ocs.Connect(9, 91).ok());
  // A spare physical port brings the logical port back.
  ASSERT_TRUE(ocs.RemapToSpare(true, 9).ok());
  EXPECT_TRUE(ocs.PortUsable(true, 9));
  EXPECT_TRUE(ocs.Connect(9, 90).ok());
}

TEST(Palomar, RemapPoolExhausts) {
  PalomarSwitch ocs(43);
  for (int i = 0; i < kPalomarSparePorts; ++i) {
    ASSERT_TRUE(ocs.RemapToSpare(false, i).ok()) << i;
  }
  EXPECT_EQ(ocs.SparePortsRemaining(false), 0);
  EXPECT_FALSE(ocs.RemapToSpare(false, 20).ok());
  // The remapped ports remain usable, the retired positions do not come back.
  for (int i = 0; i < kPalomarSparePorts; ++i) EXPECT_TRUE(ocs.PortUsable(false, i));
}

TEST(Palomar, RemapRejectsOutOfRange) {
  PalomarSwitch ocs(44);
  EXPECT_FALSE(ocs.RemapToSpare(true, -1).ok());
  EXPECT_FALSE(ocs.RemapToSpare(true, kPalomarUsablePorts).ok());
}

TEST(Palomar, ReconfigurePreservesIntersection) {
  PalomarSwitch ocs(16);
  ASSERT_TRUE(ocs.Connect(0, 10).ok());
  ASSERT_TRUE(ocs.Connect(1, 11).ok());
  ASSERT_TRUE(ocs.Connect(2, 12).ok());
  // New target keeps 0->10, moves 1 to 13, drops 2, adds 3->14.
  const std::map<int, int> target = {{0, 10}, {1, 13}, {3, 14}};
  const auto report = ocs.Reconfigure(target);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().undisturbed.size(), 1u);
  EXPECT_EQ(report.value().undisturbed[0].north, 0);
  EXPECT_EQ(report.value().removed.size(), 2u);
  EXPECT_EQ(report.value().established.size(), 2u);
  EXPECT_EQ(ocs.ConnectionCount(), 3);
  EXPECT_EQ(ocs.ConnectionOn(1)->south, 13);
  EXPECT_FALSE(ocs.ConnectionOn(2).has_value());
}

TEST(Palomar, ReconfigureRejectsNonBijective) {
  PalomarSwitch ocs(17);
  ASSERT_TRUE(ocs.Connect(0, 5).ok());
  // Two norths to one south.
  const auto report = ocs.Reconfigure({{1, 9}, {2, 9}});
  EXPECT_FALSE(report.ok());
  // Prior state untouched.
  EXPECT_EQ(ocs.ConnectionCount(), 1);
  EXPECT_EQ(ocs.ConnectionOn(0)->south, 5);
}

TEST(Palomar, ReconfigureDurationMillisecondClass) {
  PalomarSwitch ocs(18);
  std::map<int, int> target;
  for (int i = 0; i < 64; ++i) target[i] = i + 64;
  const auto report = ocs.Reconfigure(target);
  ASSERT_TRUE(report.ok());
  // Mirrors actuate in parallel: duration is per-path alignment + command
  // overhead, NOT proportional to 64 connections.
  EXPECT_LT(report.value().duration_ms, 60.0);
  EXPECT_GT(report.value().duration_ms, 1.0);
}

TEST(Palomar, SelfLoopSupportsWraparound) {
  // A 1-cube torus dimension wraps by connecting a cube's +face to its own
  // -face: north i -> south i.
  PalomarSwitch ocs(19);
  EXPECT_TRUE(ocs.Connect(42, 42).ok());
}

TEST(Palomar, MirrorFailureWithSparesKeepsPortAlive) {
  PalomarSwitch ocs(20);
  ASSERT_TRUE(ocs.Connect(7, 70).ok());
  const bool survived = ocs.InjectMirrorFailure(/*north_side=*/true, 7);
  EXPECT_TRUE(survived);
  EXPECT_TRUE(ocs.PortUsable(true, 7));
  // The connection was re-established through the spare mirror.
  ASSERT_TRUE(ocs.ConnectionOn(7).has_value());
  EXPECT_EQ(ocs.ConnectionOn(7)->south, 70);
}

TEST(Palomar, PortDiesWhenSparesExhausted) {
  PalomarSwitch ocs(21);
  ASSERT_TRUE(ocs.Connect(9, 90).ok());
  bool usable = true;
  for (int i = 0; i < 60 && usable; ++i) {
    usable = ocs.InjectMirrorFailure(true, 9);
  }
  EXPECT_FALSE(usable);
  EXPECT_FALSE(ocs.PortUsable(true, 9));
  EXPECT_FALSE(ocs.ConnectionOn(9).has_value());
  EXPECT_FALSE(ocs.Connect(9, 91).ok());
}

TEST(Palomar, SurveyReportsAllConnections) {
  PalomarSwitch ocs(22);
  ASSERT_TRUE(ocs.Connect(0, 1).ok());
  ASSERT_TRUE(ocs.Connect(2, 3).ok());
  const auto survey = ocs.SurveyConnections();
  EXPECT_EQ(survey.size(), 2u);
  for (const auto& conn : survey) {
    EXPECT_GT(conn.insertion_loss.value(), 0.0);
    EXPECT_LT(conn.return_loss.value(), -38.0);
  }
}

TEST(Palomar, TelemetryCountsCommands) {
  PalomarSwitch ocs(23);
  (void)ocs.Connect(0, 1);
  (void)ocs.Connect(0, 2);  // rejected
  (void)ocs.Disconnect(0);
  (void)ocs.Reconfigure({{5, 6}});
  const auto& t = ocs.telemetry();
  EXPECT_EQ(t.connects, 2u);  // initial connect + reconfigure-established
  EXPECT_EQ(t.disconnects, 1u);
  EXPECT_EQ(t.rejected_commands, 1u);
  EXPECT_EQ(t.reconfigurations, 1u);
}

class PalomarPermutationSweep : public ::testing::TestWithParam<int> {};

TEST_P(PalomarPermutationSweep, ReconfigureToShiftedPermutationIsExact) {
  const int shift = GetParam();
  PalomarSwitch ocs(24);
  std::map<int, int> identity;
  for (int i = 0; i < kPalomarUsablePorts; ++i) identity[i] = i;
  ASSERT_TRUE(ocs.Reconfigure(identity).ok());

  std::map<int, int> shifted;
  for (int i = 0; i < kPalomarUsablePorts; ++i) {
    shifted[i] = (i + shift) % kPalomarUsablePorts;
  }
  const auto report = ocs.Reconfigure(shifted);
  ASSERT_TRUE(report.ok());
  // Connections with i == (i+shift) mod P stay undisturbed (all for shift 0).
  const std::size_t expected_undisturbed = shift == 0 ? kPalomarUsablePorts : 0;
  EXPECT_EQ(report.value().undisturbed.size(), expected_undisturbed);
  // Verify the final mapping is exactly the shifted permutation.
  for (int i = 0; i < kPalomarUsablePorts; ++i) {
    ASSERT_TRUE(ocs.ConnectionOn(i).has_value());
    EXPECT_EQ(ocs.ConnectionOn(i)->south, (i + shift) % kPalomarUsablePorts);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, PalomarPermutationSweep, ::testing::Values(0, 1, 7, 64));

// --- technology ------------------------------------------------------------------

TEST(Technology, TableHasFiveRows) {
  EXPECT_EQ(OcsTechnologies().size(), 5u);
}

TEST(Technology, MemsWinsForDatacenterRequirements) {
  // §3.2.1: MEMS provides the best match for the DCN/ML requirements.
  const auto ranked = RankTechnologies(UseCaseRequirements{}, OcsTechnologies());
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().technology.name, "MEMS");
  EXPECT_GT(ranked.front().score, 0.0);
}

TEST(Technology, GuidedWaveFailsRadixRequirement) {
  const auto ranked = RankTechnologies(UseCaseRequirements{}, OcsTechnologies());
  for (const auto& ts : ranked) {
    if (ts.technology.name == "GuidedWave") {
      EXPECT_LT(ts.score, 0.0);
      EXPECT_NE(ts.rationale.find("radix"), std::string::npos);
    }
  }
}

TEST(Technology, RoboticFailsFastReconfigurationUseCase) {
  UseCaseRequirements req;
  req.max_switching_time_s = 0.1;
  const auto ranked = RankTechnologies(req, OcsTechnologies());
  for (const auto& ts : ranked) {
    if (ts.technology.name == "Robotic") {
      EXPECT_LT(ts.score, 0.0);
    }
  }
}

}  // namespace
}  // namespace lightwave::ocs
