// Unit tests for the common substrate: dB units, RNG, histograms, math
// helpers, result types, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/histogram.h"
#include "common/math.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"

namespace lightwave::common {
namespace {

using namespace lightwave::common::literals;

// --- units -------------------------------------------------------------------

TEST(Units, DecibelLinearRoundTrip) {
  EXPECT_NEAR(Decibel{3.0103}.linear(), 2.0, 1e-4);
  EXPECT_NEAR(Decibel::FromLinear(10.0).value(), 10.0, 1e-12);
  EXPECT_NEAR(Decibel::FromLinear(0.5).value(), -3.0103, 1e-4);
}

TEST(Units, DecibelArithmetic) {
  const Decibel a{3.0}, b{1.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 4.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
  EXPECT_DOUBLE_EQ((-a).value(), -3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 6.0);
}

TEST(Units, PowerGainArithmetic) {
  const DbmPower p{0.0};  // 1 mW
  EXPECT_NEAR(p.milliwatts(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ((p - Decibel{3.0}).value(), -3.0);
  EXPECT_DOUBLE_EQ((p + Decibel{10.0}).value(), 10.0);
  // Difference of two powers is a ratio in dB.
  EXPECT_DOUBLE_EQ((DbmPower{2.0} - DbmPower{-1.0}).value(), 3.0);
}

TEST(Units, PowerMilliwattsRoundTrip) {
  EXPECT_NEAR(DbmPower::FromMilliwatts(2.0).value(), 3.0103, 1e-4);
  EXPECT_NEAR(DbmPower{-30.0}.milliwatts(), 1e-3, 1e-9);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((3.5_dB).value(), 3.5);
  EXPECT_DOUBLE_EQ((2_dBm).value(), 2.0);
}

TEST(Units, SumInterferersDominatedByStrongest) {
  const Decibel terms[] = {Decibel{-30.0}, Decibel{-60.0}};
  const Decibel sum = SumInterferers(terms, 2);
  EXPECT_GT(sum.value(), -30.0);
  EXPECT_LT(sum.value(), -29.9);
}

TEST(Units, SumInterferersEqualPowersAdd3Db) {
  const Decibel terms[] = {Decibel{-40.0}, Decibel{-40.0}};
  EXPECT_NEAR(SumInterferers(terms, 2).value(), -36.99, 0.01);
}

TEST(Units, SumInterferersEmptyIsFloor) {
  EXPECT_LT(SumInterferers(nullptr, 0).value(), -300.0);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.rbegin(), 5u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianWithParams) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child and a continued parent should not track each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.NextU64() == child.NextU64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

// --- histogram / samples --------------------------------------------------------

TEST(SampleSet, BasicStats) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(SampleSet, PercentileNearestRank) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
}

TEST(SampleSet, PercentileBoundaries) {
  // p = 0 is the minimum, p = 100 the maximum; out-of-range p clamps.
  SampleSet s;
  for (double x : {7.0, 3.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 9.0);
  EXPECT_DOUBLE_EQ(s.Percentile(-5.0), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(250.0), 9.0);
}

TEST(SampleSet, PercentileSingleSample) {
  SampleSet s;
  s.Add(42.0);
  for (double p : {0.0, 1.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(s.Percentile(p), 42.0) << "p=" << p;
  }
}

TEST(SampleSet, PercentileEmptySetIsZero) {
  // Never-observed telemetry histograms query percentiles at export time;
  // an empty set answers 0.0 instead of asserting.
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 0.0);
}

TEST(SampleSet, PercentileUnsortedInput) {
  SampleSet s;
  for (double x : {5.0, 1.0, 4.0, 2.0, 3.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Histogram, BinningAndCenters) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.99);
  h.Add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 0.5);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-0.1);
  h.Add(1.0);  // hi edge is exclusive
  h.Add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.Add(0.5);
  h.Add(1.5);
  const std::string art = h.Render(20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("10"), std::string::npos);
}

// --- math --------------------------------------------------------------------

TEST(MathTest, QFunctionKnownValues) {
  EXPECT_NEAR(QFunction(0.0), 0.5, 1e-12);
  EXPECT_NEAR(QFunction(1.0), 0.158655, 1e-6);
  EXPECT_NEAR(QFunction(3.0), 1.349898e-3, 1e-8);
  EXPECT_NEAR(QFunction(6.0), 9.8659e-10, 1e-13);
}

TEST(MathTest, QInverseRoundTrip) {
  for (double p : {0.4, 0.1, 1e-2, 1e-4, 2e-4, 1e-6, 1e-9}) {
    EXPECT_NEAR(QFunction(QInverse(p)), p, p * 1e-6) << "p=" << p;
  }
}

TEST(MathTest, QInverseMonotone) {
  EXPECT_GT(QInverse(1e-6), QInverse(1e-4));
  EXPECT_GT(QInverse(1e-4), QInverse(1e-2));
}

TEST(MathTest, Linspace) {
  const auto v = Linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(MathTest, BinomialCoefficient) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 5), 0.0);
  EXPECT_NEAR(BinomialCoefficient(64, 32), 1.83262414e18, 1e12);
}

TEST(MathTest, AtLeastKofNBoundaries) {
  EXPECT_DOUBLE_EQ(AtLeastKofN(10, 0, 0.5), 1.0);
  EXPECT_NEAR(AtLeastKofN(10, 10, 0.9), std::pow(0.9, 10), 1e-12);
  EXPECT_NEAR(AtLeastKofN(1, 1, 0.37), 0.37, 1e-12);
}

TEST(MathTest, AtLeastKofNMonotoneInP) {
  EXPECT_LT(AtLeastKofN(20, 15, 0.7), AtLeastKofN(20, 15, 0.8));
  EXPECT_LT(AtLeastKofN(20, 15, 0.8), AtLeastKofN(20, 15, 0.9));
}

class AtLeastKofNSweep : public ::testing::TestWithParam<int> {};

TEST_P(AtLeastKofNSweep, DecreasesInK) {
  const int n = 30;
  const int k = GetParam();
  EXPECT_GE(AtLeastKofN(n, k, 0.85), AtLeastKofN(n, k + 1, 0.85));
}

INSTANTIATE_TEST_SUITE_P(Ks, AtLeastKofNSweep, ::testing::Values(0, 5, 10, 20, 25, 29));

// --- result ------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::kInvalidArgument);
  EXPECT_EQ(r.error().message, "bad");
}

TEST(ResultTest, StatusDefaultsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status failed = NotFound("missing");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, Error::Code::kNotFound);
}

TEST(ResultTest, ErrorCodeNames) {
  EXPECT_STREQ(ToString(Error::Code::kUnavailable), "unavailable");
  EXPECT_STREQ(ToString(Error::Code::kResourceExhausted), "resource-exhausted");
}

// --- table -------------------------------------------------------------------

TEST(TableTest, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  const std::string s = t.Render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Factor(1.239, 2), "1.24x");
  EXPECT_EQ(Table::Percent(0.975, 1), "97.5%");
  EXPECT_EQ(Table::Sci(2e-4, 1), "2.0e-04");
}

}  // namespace
}  // namespace lightwave::common
