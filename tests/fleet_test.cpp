// Sharded fleet tests (CTest label `recovery`): the per-shard batch-boundary
// crash matrix (group commit + multi-tenant streams, byte-identical
// recovery), quota/fairness isolation, duplicate and gap handling across
// batch and shard boundaries, circuit-breaker-driven re-hashing, cross-shard
// two-phase commit with in-doubt resolution, exporter visibility of the
// fleet metrics, and a pipelined (two-thread) shard stress run that must be
// clean under TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "journal/file_storage.h"
#include "storage_test_util.h"
#include "core/scheduler.h"
#include "ctrl/controller.h"
#include "ctrl/fault_injector.h"
#include "fleet/admission.h"
#include "fleet/router.h"
#include "fleet/shard.h"
#include "journal/storage.h"
#include "svc/fleet_service.h"
#include "svc/request_stream.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"
#include "tpu/superpod.h"

namespace lightwave {
namespace {

using ctrl::CrashPoint;

constexpr std::uint64_t kPodSeed = 91;
constexpr std::uint64_t kStreamSeed = 4242;
constexpr std::uint64_t kCommands = 200;
constexpr std::size_t kBatch = 8;  // kCommands must divide evenly
constexpr std::uint32_t kTenants = 5;
constexpr int kPodCubes = 8;
constexpr int kOcsPerDim = 2;

svc::FleetServiceOptions MatrixOptions() {
  svc::FleetServiceOptions options;
  options.queue_capacity = kBatch;
  options.snapshot_interval = 16;  // several snapshot/compaction cycles per run
  return options;
}

std::unique_ptr<tpu::Superpod> FreshPod() {
  return std::make_unique<tpu::Superpod>(kPodSeed, kPodCubes, kOcsPerDim);
}

/// Multi-tenant skewed trace: 5 tenants, Zipf 0.9, per-tenant dense ids.
const svc::RequestStream& Stream() {
  static const svc::RequestStream stream(kStreamSeed, kCommands, [] {
    svc::RequestStreamConfig config;
    config.tenant_count = kTenants;
    config.zipf_skew = 0.9;
    return config;
  }());
  return stream;
}

/// Drives the whole stream through group-commit batches of kBatch. Blind
/// resubmission from index 0 every time: duplicates below a tenant's
/// frontier ack without enqueueing, so the batch partition is identical on
/// the first run and on every post-crash resume.
void DriveBatched(svc::FleetService& service) {
  for (std::uint64_t i = 0; i < Stream().count() && !service.crashed(); ++i) {
    ASSERT_TRUE(service.Submit(Stream().Command(i)).ok());
    if (service.queue_depth() == kBatch) service.ProcessBatch(kBatch);
  }
  while (!service.crashed() && service.queue_depth() > 0) {
    if (service.ProcessBatch(kBatch) == 0) break;
  }
}

std::uint64_t CommittedCount(const svc::FleetService& service) {
  std::uint64_t total = 0;
  for (std::uint32_t tenant : service.tenants()) {
    total += service.next_command_id(tenant) - 1;
  }
  return total;
}

/// Oracle digests: state bytes after each committed batch boundary, from
/// one uneventful batched run. Key = total committed commands.
const std::map<std::uint64_t, std::vector<std::uint8_t>>& OracleDigests() {
  static const auto digests = [] {
    std::map<std::uint64_t, std::vector<std::uint8_t>> out;
    auto pod = FreshPod();
    journal::MemStorage wal_storage;
    journal::MemStorage snapshot_storage;
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, MatrixOptions());
    EXPECT_TRUE(service.Recover().ok());
    out[0] = service.SerializeState();
    for (std::uint64_t i = 0; i < Stream().count(); ++i) {
      EXPECT_TRUE(service.Submit(Stream().Command(i)).ok());
      if (service.queue_depth() == kBatch) {
        EXPECT_EQ(service.ProcessBatch(kBatch), kBatch);
        out[CommittedCount(service)] = service.SerializeState();
      }
    }
    EXPECT_EQ(out.rbegin()->first, kCommands);
    return out;
  }();
  return digests;
}

struct TrialResult {
  bool crashed = false;
  bool recovery_ok = false;
  std::uint64_t committed_after_crash = 0;
  std::vector<std::uint8_t> recovered_digest;
  std::vector<std::uint8_t> final_digest;
  bool invariants_ok = false;
};

/// One matrix cell: crash at the k-th visit of `point`, recover a successor
/// over the same durable media, resume, finish the stream.
TrialResult RunCrashTrial(CrashPoint point, std::uint64_t k) {
  TrialResult result;
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  ctrl::FaultInjector injector(7, ctrl::FaultProfile{});

  {
    auto pod = FreshPod();
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, MatrixOptions());
    service.SetFaultInjector(&injector);
    if (!service.Recover().ok()) return result;
    injector.ArmCrash(point, k);
    DriveBatched(service);
    result.crashed = service.crashed();
    // The pod and service die here; only the two storages survive.
  }

  auto pod = FreshPod();
  svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable, wal_storage,
                            snapshot_storage, MatrixOptions());
  service.SetFaultInjector(&injector);
  auto recovery = service.Recover();
  result.recovery_ok = recovery.ok();
  if (!recovery.ok()) return result;
  result.committed_after_crash = CommittedCount(service);
  result.recovered_digest = service.SerializeState();

  DriveBatched(service);
  if (service.crashed()) return result;
  result.final_digest = service.SerializeState();
  result.invariants_ok = service.scheduler().ValidateInvariants().ok();
  return result;
}

void CheckTrial(CrashPoint point, std::uint64_t k, std::uint64_t expected_committed,
                const TrialResult& result) {
  SCOPED_TRACE("crash point " + std::string(ctrl::ToString(point)) + " visit " +
               std::to_string(k));
  ASSERT_TRUE(result.crashed);
  ASSERT_TRUE(result.recovery_ok);
  // Group-commit durability: a batch is journaled atomically, so a crash
  // before the append loses the whole (unacknowledged) batch and a crash
  // after it loses nothing — even mid-apply, where the remaining commands
  // of the batch recover from the journal.
  EXPECT_EQ(result.committed_after_crash, expected_committed);
  EXPECT_EQ(result.recovered_digest, OracleDigests().at(expected_committed));
  EXPECT_EQ(result.final_digest, OracleDigests().at(kCommands));
  EXPECT_TRUE(result.invariants_ok);
}

TEST(FleetCrashMatrix, BatchBoundariesRecoverByteIdentical) {
  OracleDigests();  // build serially before fanning out
  const std::uint64_t batches = kCommands / kBatch;
  // kPreAppend / kPostAppendPreApply fire once per batch.
  for (CrashPoint point : {CrashPoint::kPreAppend, CrashPoint::kPostAppendPreApply}) {
    auto results = common::parallel::ParallelMap(
        batches, [&](std::uint64_t i) { return RunCrashTrial(point, i + 1); });
    for (std::uint64_t v = 1; v <= batches; ++v) {
      const std::uint64_t expected =
          point == CrashPoint::kPreAppend ? (v - 1) * kBatch : v * kBatch;
      CheckTrial(point, v, expected, results[static_cast<std::size_t>(v - 1)]);
    }
  }
  // kMidApply fires once per applied command; the containing batch is
  // already durable, so recovery completes it.
  auto results = common::parallel::ParallelMap(kCommands, [&](std::uint64_t i) {
    return RunCrashTrial(CrashPoint::kMidApply, i + 1);
  });
  for (std::uint64_t j = 1; j <= kCommands; ++j) {
    const std::uint64_t expected = ((j + kBatch - 1) / kBatch) * kBatch;
    CheckTrial(CrashPoint::kMidApply, j, expected,
               results[static_cast<std::size_t>(j - 1)]);
  }
}

// ---------------------------------------------------------------------------
// Shard harness: one pod + two storages + a Shard, rebuildable over the same
// media (crash simulation).

struct ShardHarness {
  std::unique_ptr<tpu::Superpod> pod;
  journal::MemStorage wal;
  journal::MemStorage snapshot;
  std::unique_ptr<fleet::Shard> shard;

  explicit ShardHarness(std::uint32_t id, fleet::ShardOptions options = {},
                        std::uint64_t pod_seed = kPodSeed) {
    pod = std::make_unique<tpu::Superpod>(pod_seed, kPodCubes, kOcsPerDim);
    shard = std::make_unique<fleet::Shard>(id, *pod, core::AllocationPolicy::kReconfigurable,
                                           wal, snapshot, options);
  }

  /// Simulated crash: the shard and pod die; the storages survive.
  void Reincarnate(std::uint32_t id, fleet::ShardOptions options = {},
                   std::uint64_t pod_seed = kPodSeed) {
    shard.reset();
    pod = std::make_unique<tpu::Superpod>(pod_seed, kPodCubes, kOcsPerDim);
    shard = std::make_unique<fleet::Shard>(id, *pod, core::AllocationPolicy::kReconfigurable,
                                           wal, snapshot, options);
  }
};

svc::SliceCommand Admit(std::uint32_t tenant, std::uint64_t id, int cubes = 1) {
  svc::SliceCommand cmd;
  cmd.command_id = id;
  cmd.tenant_id = tenant;
  cmd.kind = svc::CommandKind::kAdmit;
  cmd.job_id = id;
  cmd.shape = cubes == 8 ? tpu::SliceShape{2, 2, 2}
              : cubes == 2 ? tpu::SliceShape{1, 1, 2}
                           : tpu::SliceShape{1, 1, 1};
  return cmd;
}

svc::SliceCommand Release(std::uint32_t tenant, std::uint64_t id, std::uint64_t job) {
  svc::SliceCommand cmd;
  cmd.command_id = id;
  cmd.tenant_id = tenant;
  cmd.kind = svc::CommandKind::kRelease;
  cmd.job_id = job;
  return cmd;
}

TEST(FleetAdmission, QuotaExhaustionMidBatchRetriesCleanly) {
  fleet::ShardOptions options;
  options.batch_size = kBatch;
  options.admission.default_quota = fleet::TenantQuota{5.0, 5.0, 1.0};
  ShardHarness h(0, options);
  ASSERT_TRUE(h.shard->Recover().ok());

  // Ten commands against a burst of five: the bucket dries up mid-batch.
  std::uint64_t accepted = 0;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    auto offered = h.shard->Offer(Admit(7, id));
    if (id <= 5) {
      EXPECT_TRUE(offered.ok());
      ++accepted;
    } else {
      ASSERT_FALSE(offered.ok());
      EXPECT_EQ(offered.error().code, common::Error::Code::kResourceExhausted);
    }
  }
  EXPECT_EQ(h.shard->admission().stats().rejected_quota, 5u);
  EXPECT_EQ(h.shard->PumpAll(), accepted);
  EXPECT_EQ(h.shard->service().next_command_id(7), 6u);

  // The client retries the REJECTED ids after a refill — same ids, so the
  // dense per-tenant sequence heals with no gap and nothing applies twice.
  h.shard->Tick(1.0);
  for (std::uint64_t id = 6; id <= 10; ++id) {
    EXPECT_TRUE(h.shard->Offer(Admit(7, id)).ok());
  }
  h.shard->PumpAll();
  EXPECT_EQ(h.shard->service().next_command_id(7), 11u);
  EXPECT_EQ(h.shard->service().stats().processed, 10u);
  EXPECT_EQ(h.shard->service().stats().duplicate_acks, 0u);
}

TEST(FleetAdmission, MisbehavingTenantCannotStarveCompliantTenant) {
  constexpr std::uint64_t kQuotaRate = 20;
  constexpr int kRounds = 50;
  fleet::ShardOptions options;
  options.batch_size = 16;
  options.admission.default_quota =
      fleet::TenantQuota{static_cast<double>(kQuotaRate), static_cast<double>(kQuotaRate), 1.0};
  options.admission.per_tenant_queue_capacity = 64;
  ShardHarness h(0, options);
  ASSERT_TRUE(h.shard->Recover().ok());

  // Tenant 1 floods at 10x its quota; tenant 2 stays exactly at quota.
  std::uint64_t next_id[2] = {1, 1};
  std::uint64_t rejects[2] = {0, 0};
  for (int round = 0; round < kRounds; ++round) {
    h.shard->Tick(1.0);
    for (std::uint64_t k = 0; k < 10 * kQuotaRate; ++k) {
      if (h.shard->Offer(Admit(1, next_id[0])).ok()) {
        ++next_id[0];
      } else {
        ++rejects[0];  // rejected command keeps its id for the retry
      }
    }
    for (std::uint64_t k = 0; k < kQuotaRate; ++k) {
      if (h.shard->Offer(Admit(2, next_id[1])).ok()) {
        ++next_id[1];
      } else {
        ++rejects[1];
      }
    }
    h.shard->PumpAll();
  }
  // The fairness contract of the ISSUE: the flood hurts only the flooder.
  EXPECT_EQ(rejects[1], 0u);
  EXPECT_GT(rejects[0], 0u);
  EXPECT_EQ(h.shard->service().next_command_id(2), kQuotaRate * kRounds + 1);
  // The flooder still gets its full quota-bounded share, nothing more.
  EXPECT_LE(next_id[0] - 1, kQuotaRate * (kRounds + 1));
  EXPECT_GE(next_id[0] - 1, kQuotaRate * kRounds);
}

TEST(FleetService, DuplicateStraddlingBatchBoundaryAppliesOnce) {
  auto run = [](bool with_duplicates) {
    auto pod = FreshPod();
    journal::MemStorage wal_storage;
    journal::MemStorage snapshot_storage;
    svc::FleetServiceOptions options;
    options.queue_capacity = 16;
    svc::FleetService service(*pod, core::AllocationPolicy::kReconfigurable,
                              wal_storage, snapshot_storage, options);
    EXPECT_TRUE(service.Recover().ok());
    for (std::uint64_t id = 1; id <= 4; ++id) {
      EXPECT_TRUE(service.Submit(Admit(3, id)).ok());
    }
    EXPECT_EQ(service.ProcessBatch(4), 4u);
    if (with_duplicates) {
      // A client that never saw batch 1's acks resubmits its tail along
      // with new work: ids 3 and 4 straddle the committed batch boundary.
      EXPECT_TRUE(service.Submit(Admit(3, 3)).ok());
      EXPECT_TRUE(service.Submit(Admit(3, 4)).ok());
    }
    EXPECT_TRUE(service.Submit(Admit(3, 5)).ok());
    EXPECT_TRUE(service.Submit(Release(3, 6, 2)).ok());
    EXPECT_EQ(service.ProcessBatch(4), 2u);  // only the two new commands ran
    if (with_duplicates) {
      EXPECT_EQ(service.stats().duplicate_acks, 2u);
    }
    EXPECT_EQ(service.stats().processed, 6u);
    EXPECT_EQ(service.next_command_id(3), 7u);
    EXPECT_EQ(service.wal().batch_appends(), 2u);
    return service.SerializeState();
  };
  // Byte-identity: the duplicate-laden run converges on the clean run.
  EXPECT_EQ(run(true), run(false));
}

// ---------------------------------------------------------------------------
// Router: hashing, health, relocation, 2PC.

TEST(FleetRouter, ConsistentHashingIsStableAndCompleteOverTenants) {
  ShardHarness a(0), b(1), c(2);
  fleet::Router router;
  router.AddShard(a.shard.get());
  router.AddShard(b.shard.get());
  router.AddShard(c.shard.get());
  std::map<std::uint32_t, int> load;
  for (std::uint32_t tenant = 0; tenant < 300; ++tenant) {
    auto first = router.ShardFor(tenant);
    ASSERT_TRUE(first.ok());
    auto second = router.ShardFor(tenant);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value(), second.value());  // stable
    ++load[first.value()];
  }
  // Every shard owns a non-trivial arc (virtual nodes smooth the ring).
  for (std::uint32_t id : {0u, 1u, 2u}) EXPECT_GT(load[id], 30) << "shard " << id;
  // Marking one shard unhealthy relocates ONLY its tenants.
  std::map<std::uint32_t, std::uint32_t> before;
  for (std::uint32_t tenant = 0; tenant < 300; ++tenant) {
    before[tenant] = router.ShardFor(tenant).value();
  }
  router.SetShardHealth(1, false);
  for (std::uint32_t tenant = 0; tenant < 300; ++tenant) {
    auto after = router.ShardFor(tenant);
    ASSERT_TRUE(after.ok());
    EXPECT_NE(after.value(), 1u);
    if (before[tenant] != 1) {
      EXPECT_EQ(after.value(), before[tenant]);
    }
  }
}

TEST(FleetRouter, TenantGapDetectedAfterRelocation) {
  ShardHarness a(0), b(1);
  fleet::Router router;
  router.AddShard(a.shard.get());
  router.AddShard(b.shard.get());
  ASSERT_TRUE(router.RecoverAll().ok());

  // A tenant homed on shard 0 while both shards are healthy.
  std::uint32_t tenant = 0;
  while (router.ShardFor(tenant).value() != 0) ++tenant;

  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(router.Submit(Admit(tenant, id)).ok());
  }
  router.PumpAll();
  EXPECT_EQ(a.shard->service().next_command_id(tenant), 6u);

  // Shard 0 goes unhealthy; the tenant re-hashes to shard 1, whose view of
  // the tenant starts at command 1 — the tenant's id-6 resume surfaces as a
  // GAP on the new shard (its history did not move), not as silent loss.
  router.SetShardHealth(0, false);
  ASSERT_EQ(router.ShardFor(tenant).value(), 1u);
  ASSERT_TRUE(router.Submit(Admit(tenant, 6)).ok());
  router.PumpAll();
  EXPECT_EQ(b.shard->stats().pipeline_gaps, 1u);
  EXPECT_EQ(b.shard->service().next_command_id(tenant), 1u);
  EXPECT_GT(router.stats().rerouted, 0u);

  // The tenant restarts its dense sequence against the new shard.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(router.Submit(Admit(tenant, id)).ok());
  }
  router.PumpAll();
  EXPECT_EQ(b.shard->service().next_command_id(tenant), 4u);
}

TEST(FleetRouter, BreakerTripRehashesTenants) {
  ShardHarness a(0), b(1);
  fleet::Router router;
  router.AddShard(a.shard.get());
  router.AddShard(b.shard.get());

  // Shard 0's fabric controller (PR 4): a partitioned control bus trips the
  // circuit breaker on its OCS.
  ctrl::MessageBus bus(3);
  ctrl::FabricController controller(bus, 1);
  ctrl::OcsAgent agent(a.pod->ocs(0));
  controller.Register(0, &agent);

  router.SyncBreaker(0, controller, 0);
  EXPECT_TRUE(router.ShardHealthy(0));

  std::uint32_t tenant = 0;
  while (router.ShardFor(tenant).value() != 0) ++tenant;

  bus.PartitionAfter(0);
  for (int i = 0; i < 4; ++i) (void)controller.ApplyTopology({{0, {{0, 100}}}});
  ASSERT_EQ(controller.breaker_state(0), ctrl::BreakerState::kOpen);

  // The router reads the breaker and routes around the dark shard.
  router.SyncBreaker(0, controller, 0);
  EXPECT_FALSE(router.ShardHealthy(0));
  EXPECT_EQ(router.ShardFor(tenant).value(), 1u);
}

TEST(FleetRouter, CrossShardAdmitCommitsEverywhereOrNowhere) {
  ShardHarness a(0), b(1);
  fleet::Router router;
  router.AddShard(a.shard.get());
  router.AddShard(b.shard.get());
  ASSERT_TRUE(router.RecoverAll().ok());

  // Commit path: both shards can place a cube -> unanimous yes.
  auto committed = router.CrossShardAdmit(500, tpu::SliceShape{1, 1, 1}, {0, 1});
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(a.shard->service().live_jobs(), 1u);
  EXPECT_EQ(b.shard->service().live_jobs(), 1u);
  EXPECT_EQ(a.shard->service().txn_decision(committed.value()),
            svc::TxnDecision::kCommitted);

  // Abort path: fill shard 1's remaining 7 cubes, so it votes no; shard 0's
  // yes-reservation must be rolled back, not leaked.
  for (std::uint64_t id = 1; id <= 7; ++id) {
    ASSERT_TRUE(b.shard->Offer(Admit(9, id)).ok());
  }
  b.shard->PumpAll();
  ASSERT_EQ(b.shard->service().live_jobs(), 8u);
  auto aborted = router.CrossShardAdmit(501, tpu::SliceShape{1, 1, 1}, {0, 1});
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.error().code, common::Error::Code::kResourceExhausted);
  EXPECT_EQ(router.stats().txns_aborted, 1u);
  EXPECT_EQ(a.shard->service().live_jobs(), 1u);
  EXPECT_EQ(b.shard->service().live_jobs(), 8u);

  // Free one cube on shard 1 and retry: succeeds only if the aborted
  // reservation on shard 0 was actually released.
  ASSERT_TRUE(b.shard->Offer(Release(9, 8, 1)).ok());
  b.shard->PumpAll();
  auto retried = router.CrossShardAdmit(502, tpu::SliceShape{1, 1, 1}, {0, 1});
  ASSERT_TRUE(retried.ok()) << retried.error().message;
  EXPECT_GT(retried.value(), committed.value());
  EXPECT_EQ(a.shard->service().live_jobs(), 2u);
  EXPECT_EQ(b.shard->service().live_jobs(), 8u);
}

TEST(FleetRouter, InDoubtTxnsResolveByPresumedAbortUnlessCommitRecorded) {
  fleet::ShardOptions options;
  ShardHarness a(0, options), b(1, options);
  constexpr std::uint64_t kTxnAbort = 9;
  constexpr std::uint64_t kTxnCommit = 10;
  {
    fleet::Router router;
    router.AddShard(a.shard.get());
    router.AddShard(b.shard.get());
    ASSERT_TRUE(router.RecoverAll().ok());
    // Hand-roll a coordinator crash: txn 9 prepared on both shards but
    // never decided; txn 10 prepared on both and committed on shard 0 only.
    auto control = [](std::uint64_t id, svc::CommandKind kind, std::uint64_t job,
                      std::uint64_t txn) {
      svc::SliceCommand cmd;
      cmd.command_id = id;
      cmd.tenant_id = fleet::kControlTenant;
      cmd.kind = kind;
      cmd.job_id = job;
      cmd.txn_id = txn;
      cmd.shape = tpu::SliceShape{1, 1, 2};
      return cmd;
    };
    ASSERT_TRUE(a.shard->SubmitControl(control(1, svc::CommandKind::kPrepare, 70, kTxnAbort)).ok());
    ASSERT_TRUE(b.shard->SubmitControl(control(1, svc::CommandKind::kPrepare, 70, kTxnAbort)).ok());
    ASSERT_TRUE(a.shard->SubmitControl(control(2, svc::CommandKind::kPrepare, 71, kTxnCommit)).ok());
    ASSERT_TRUE(b.shard->SubmitControl(control(2, svc::CommandKind::kPrepare, 71, kTxnCommit)).ok());
    ASSERT_TRUE(a.shard->SubmitControl(control(3, svc::CommandKind::kCommitTxn, 71, kTxnCommit)).ok());
    ASSERT_EQ(a.shard->service().InDoubtTxns().size(), 1u);
    ASSERT_EQ(b.shard->service().InDoubtTxns().size(), 2u);
    // Coordinator and shards crash here; the storages survive.
  }
  a.Reincarnate(0);
  b.Reincarnate(1);
  fleet::Router router;
  router.AddShard(a.shard.get());
  router.AddShard(b.shard.get());
  auto recovered = router.RecoverAll();
  ASSERT_TRUE(recovered.ok()) << recovered.error().message;

  // Txn 9 had no commit evidence anywhere -> presumed abort, reservations
  // released on both shards. Txn 10 was committed on shard 0 -> shard 1's
  // in-doubt branch completes the commit.
  EXPECT_EQ(router.stats().resolved_abort, 1u);
  EXPECT_EQ(router.stats().resolved_commit, 1u);
  EXPECT_TRUE(a.shard->service().InDoubtTxns().empty());
  EXPECT_TRUE(b.shard->service().InDoubtTxns().empty());
  EXPECT_EQ(a.shard->service().txn_decision(kTxnAbort), svc::TxnDecision::kAborted);
  EXPECT_EQ(b.shard->service().txn_decision(kTxnAbort), svc::TxnDecision::kAborted);
  EXPECT_EQ(b.shard->service().txn_decision(kTxnCommit), svc::TxnDecision::kCommitted);
  EXPECT_EQ(a.shard->service().live_jobs(), 1u);
  EXPECT_EQ(b.shard->service().live_jobs(), 1u);

  // The router's txn mint resumed above everything it recovered.
  auto next = router.CrossShardAdmit(600, tpu::SliceShape{1, 1, 1}, {0, 1});
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next.value(), kTxnCommit);
}

TEST(FleetTelemetry, FleetSeriesVisibleToExporters) {
  telemetry::Hub hub;
  fleet::ShardOptions options;
  options.batch_size = 4;
  options.admission.default_quota = fleet::TenantQuota{4.0, 4.0, 1.0};
  ShardHarness h(0, options);
  h.shard->AttachTelemetry(&hub);
  ASSERT_TRUE(h.shard->Recover().ok());

  std::uint64_t accepted = 0;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    if (h.shard->Offer(Admit(2, id)).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 4u);
  h.shard->PumpAll();

  auto& metrics = hub.metrics();
  EXPECT_EQ(metrics.GetCounter("lightwave_fleet_admitted_total", {{"shard", "0"}}).value(),
            accepted);
  EXPECT_EQ(metrics
                .GetCounter("lightwave_fleet_rejected_total",
                            {{"reason", "quota"}, {"shard", "0"}})
                .value(),
            4u);
  EXPECT_EQ(metrics.GetGauge("lightwave_fleet_shard_queue_depth", {{"shard", "0"}}).value(),
            0.0);
  EXPECT_EQ(metrics.GetHistogram("lightwave_fleet_batch_commands", {{"shard", "0"}}).count(),
            1u);

  const std::string prom = telemetry::ToPrometheus(metrics);
  EXPECT_NE(prom.find("lightwave_fleet_admitted_total"), std::string::npos);
  EXPECT_NE(prom.find("lightwave_fleet_rejected_total"), std::string::npos);
  EXPECT_NE(prom.find("reason=\"quota\""), std::string::npos);
  EXPECT_NE(prom.find("lightwave_fleet_batch_commands"), std::string::npos);
  EXPECT_NE(prom.find("lightwave_fleet_shard_queue_depth"), std::string::npos);
}

// ---------------------------------------------------------------------------
// File-backed fleet recovery: Router::RecoverAll over real files, identical
// at every thread count, with the tail diagnoses summed across shards.

constexpr int kFleetShards = 8;
constexpr std::uint64_t kFleetCommands = 400;

fleet::ShardOptions FileFleetOptions() {
  fleet::ShardOptions options;
  options.batch_size = kBatch;
  options.service.snapshot_interval = 16;
  options.admission.default_quota = fleet::TenantQuota{1e9, 1e9, 1.0};
  options.admission.per_tenant_queue_capacity = kFleetCommands;
  return options;
}

/// A fleet of file-backed shards over one TempDir, rebuildable over the same
/// files (the fleet-wide crash simulation).
struct FileFleet {
  std::vector<std::unique_ptr<tpu::Superpod>> pods;
  std::vector<std::unique_ptr<journal::FileStorage>> stores;
  std::vector<std::unique_ptr<fleet::Shard>> shards;
  fleet::Router router;

  FileFleet(const testutil::TempDir& tmp, int shard_count,
            fleet::ShardOptions options) {
    for (int s = 0; s < shard_count; ++s) {
      auto wal = journal::FileStorage::Open(WalPath(tmp, s));
      auto snapshot = journal::FileStorage::Open(SnapPath(tmp, s));
      EXPECT_TRUE(wal.ok() && snapshot.ok());
      if (!wal.ok() || !snapshot.ok()) return;
      pods.push_back(std::make_unique<tpu::Superpod>(
          kPodSeed + static_cast<std::uint64_t>(s), kPodCubes, kOcsPerDim));
      shards.push_back(std::make_unique<fleet::Shard>(
          static_cast<std::uint32_t>(s), *pods.back(),
          core::AllocationPolicy::kReconfigurable, *wal.value(), *snapshot.value(),
          options));
      stores.push_back(std::move(wal.value()));
      stores.push_back(std::move(snapshot.value()));
      router.AddShard(shards.back().get());
    }
  }

  static std::string WalPath(const testutil::TempDir& tmp, int s) {
    return tmp.Path("shard" + std::to_string(s) + ".wal");
  }
  static std::string SnapPath(const testutil::TempDir& tmp, int s) {
    return tmp.Path("shard" + std::to_string(s) + ".snap");
  }

  std::vector<std::uint8_t> Digest() const {
    std::vector<std::uint8_t> combined;
    for (const auto& shard : shards) {
      const auto bytes = shard->service().SerializeState();
      combined.insert(combined.end(), bytes.begin(), bytes.end());
    }
    return combined;
  }
};

/// The multi-shard trace: enough tenants that every shard owns a few arcs.
const svc::RequestStream& FleetFileStream() {
  static const svc::RequestStream stream(kStreamSeed + 1, kFleetCommands, [] {
    svc::RequestStreamConfig config;
    config.tenant_count = 24;
    config.zipf_skew = 0.7;
    return config;
  }());
  return stream;
}

TEST(FleetRouter, FileBackedRecoverAllDeterministicAcrossThreadCounts) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  // One fleet lifetime builds the durable media, then dies.
  {
    FileFleet fleet(tmp, kFleetShards, FileFleetOptions());
    ASSERT_TRUE(fleet.router.RecoverAll().ok());
    for (std::uint64_t i = 0; i < kFleetCommands; ++i) {
      ASSERT_TRUE(fleet.router.Submit(FleetFileStream().Command(i)).ok());
      if (i % 64 == 63) fleet.router.PumpAll();
    }
    while (fleet.router.PumpAll() > 0) {
    }
  }
  // Recover the fleet at 1, 2, and 8 threads: byte-identical state and
  // identical aggregate stats every time (thread count is a performance
  // knob, never a semantic one).
  const int original = common::parallel::Threads();
  std::vector<std::vector<std::uint8_t>> digests;
  std::vector<std::uint64_t> replayed;
  for (int threads : {1, 2, 8}) {
    common::parallel::SetThreads(threads);
    FileFleet fleet(tmp, kFleetShards, FileFleetOptions());
    auto recovery = fleet.router.RecoverAll();
    ASSERT_TRUE(recovery.ok()) << "threads=" << threads;
    EXPECT_TRUE(recovery.value().wal_clean);
    EXPECT_EQ(recovery.value().tail_truncations, 0u);
    EXPECT_EQ(recovery.value().tail_corruptions, 0u);
    digests.push_back(fleet.Digest());
    replayed.push_back(recovery.value().records_replayed);
  }
  common::parallel::SetThreads(original);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
  EXPECT_EQ(replayed[0], replayed[1]);
  EXPECT_EQ(replayed[0], replayed[2]);
}

TEST(FleetRouter, RecoverAllSumsTailDiagnosesAcrossShards) {
  // Two shards of damage, two diagnoses: shard 0's wal gets a flipped bit
  // inside a durable record (CORRUPTION — the alarm), shard 1's wal is cut
  // mid-record (TRUNCATION — the expected crash artifact). The fleet
  // aggregate must report exactly one of each, and recovery still succeeds
  // with the healthy prefixes.
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  fleet::ShardOptions options = FileFleetOptions();
  options.service.snapshot_interval = 1u << 30;  // keep every record in the wal
  {
    FileFleet fleet(tmp, 2, options);
    ASSERT_TRUE(fleet.router.RecoverAll().ok());
    for (std::uint64_t id = 1; id <= 10; ++id) {
      for (std::uint32_t shard = 0; shard < 2; ++shard) {
        ASSERT_TRUE(fleet.shards[shard]->Offer(Admit(40 + shard, id)).ok());
      }
      fleet.router.PumpAll();
    }
  }
  {
    // Flip one payload bit in shard 0's second record.
    std::fstream f(FileFleet::WalPath(tmp, 0),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    ASSERT_GT(static_cast<std::int64_t>(f.tellg()), 60);
    f.seekp(60);
    char byte;
    f.seekg(60);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(60);
    f.write(&byte, 1);
  }
  {
    // Cut shard 1's wal three bytes short (every record frame is larger, so
    // the cut is always strictly inside the final record).
    const std::string path = FileFleet::WalPath(tmp, 1);
    const auto size = std::filesystem::file_size(path);
    ASSERT_GT(size, 3u);
    std::filesystem::resize_file(path, size - 3);
  }
  FileFleet fleet(tmp, 2, options);
  auto recovery = fleet.router.RecoverAll();
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery.value().wal_clean);
  EXPECT_EQ(recovery.value().tail_corruptions, 1u);
  EXPECT_EQ(recovery.value().tail_truncations, 1u);
  EXPECT_FALSE(recovery.value().tail_note.empty());
}

TEST(FleetPipeline, PipelinedShardAppliesExactlyOnceAndRecoversByteIdentical) {
  constexpr std::uint64_t kPipelineCommands = 4000;
  svc::RequestStreamConfig config;
  config.tenant_count = 8;
  config.zipf_skew = 0.7;
  svc::RequestStream stream(77, kPipelineCommands, config);

  fleet::ShardOptions options;
  options.batch_size = 32;
  options.pipeline_depth = 4;
  options.service.snapshot_interval = 256;
  options.admission.default_quota = fleet::TenantQuota{1e9, 1e9, 1.0};
  options.admission.per_tenant_queue_capacity = kPipelineCommands;
  ShardHarness h(0, options);
  ASSERT_TRUE(h.shard->Recover().ok());

  // Journal thread + apply thread run while this thread offers: the
  // three-thread interleaving is what the TSan CI leg checks.
  h.shard->Start();
  for (std::uint64_t i = 0; i < kPipelineCommands; ++i) {
    ASSERT_TRUE(h.shard->Offer(stream.Command(i)).ok());
  }
  h.shard->Drain();
  h.shard->Stop();

  const auto& stats = h.shard->service().stats();
  EXPECT_EQ(stats.processed, kPipelineCommands);  // exactly once, none lost
  EXPECT_EQ(h.shard->stats().pipeline_duplicates, 0u);
  EXPECT_EQ(h.shard->stats().pipeline_gaps, 0u);
  EXPECT_EQ(h.shard->service().applied_seq(), kPipelineCommands);
  EXPECT_GT(stats.snapshots, 0u);
  // Group commit actually grouped (far fewer appends than commands).
  EXPECT_LT(h.shard->stats().batches, kPipelineCommands / 2);
  EXPECT_TRUE(h.shard->service().scheduler().ValidateInvariants().ok());

  // A successor recovers byte-identically from the pipelined run's media.
  const auto final_digest = h.shard->service().SerializeState();
  auto pod = FreshPod();
  svc::FleetService successor(*pod, core::AllocationPolicy::kReconfigurable, h.wal,
                              h.snapshot, options.service);
  ASSERT_TRUE(successor.Recover().ok());
  EXPECT_EQ(successor.SerializeState(), final_digest);
}

}  // namespace
}  // namespace lightwave
