// Tests for the spine-free DCN fabric layer: expansion ("pay as you grow"),
// tenant isolation, technology refresh (transceiver interop gating), and
// topology application through real switches.
#include <gtest/gtest.h>

#include <set>

#include "core/dcn_fabric.h"

namespace lightwave::core {
namespace {

sim::TrafficMatrix Uniform(int blocks, double total) {
  return sim::UniformTraffic(blocks, total);
}

DcnFabric MakeFabric(int max_blocks = 16, int ocs_count = 8) {
  return DcnFabric(/*seed=*/77, max_blocks, ocs_count, /*link_gbps=*/400.0);
}

// --- expansion -----------------------------------------------------------------

TEST(DcnFabricTest, AddBlocksAssignsIds) {
  auto fabric = MakeFabric();
  for (int i = 0; i < 4; ++i) {
    auto id = fabric.AddBlock(optics::Cwdm4Duplex());
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.value(), i);
  }
  EXPECT_EQ(fabric.ActiveBlocks().size(), 4u);
}

TEST(DcnFabricTest, FabricFillsUp) {
  auto fabric = MakeFabric(4, 4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  EXPECT_FALSE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
}

TEST(DcnFabricTest, RemoveBlockFreesSlot) {
  auto fabric = MakeFabric(4, 4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  ASSERT_TRUE(fabric.RemoveBlock(2).ok());
  EXPECT_FALSE(fabric.RemoveBlock(2).ok());  // already gone
  auto readd = fabric.AddBlock(optics::Cwdm4Duplex());
  ASSERT_TRUE(readd.ok());
  EXPECT_EQ(readd.value(), 2);
}

TEST(DcnFabricTest, ExpansionPreservesExistingTrunks) {
  // "Pay as you grow": adding blocks and re-engineering leaves a healthy
  // majority of the existing mesh undisturbed.
  auto fabric = MakeFabric(16, 8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  auto first = fabric.ApplyTopology(Uniform(16, 8000.0));
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.value().links_established, 0);
  EXPECT_EQ(first.value().links_removed, 0);

  for (int i = 0; i < 4; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  auto second = fabric.ApplyTopology(Uniform(16, 8000.0));
  ASSERT_TRUE(second.ok());
  // Expansion adds new trunks; some existing ones ride through untouched.
  EXPECT_GT(second.value().links_established, 0);
  EXPECT_GT(second.value().links_undisturbed, 0);
}

// --- technology refresh ------------------------------------------------------------

TEST(DcnFabricTest, CompatibleGenerationsCoexist) {
  auto fabric = MakeFabric();
  const auto roadmap = optics::DcnRoadmap();
  // 200G and 400G generations share the 50G lane rate.
  ASSERT_TRUE(fabric.AddBlock(roadmap[2]).ok());  // 200G-FR4
  EXPECT_TRUE(fabric.AddBlock(roadmap[3]).ok());  // 400G-FR4
  EXPECT_TRUE(fabric.AddBlock(roadmap[4]).ok());  // 800G-OSFP
}

TEST(DcnFabricTest, IncompatibleGenerationRejected) {
  auto fabric = MakeFabric();
  const auto roadmap = optics::DcnRoadmap();
  ASSERT_TRUE(fabric.AddBlock(roadmap[0]).ok());  // 40G QSFP+ (10G lanes only)
  // 200G-FR4 supports 25/50G lanes, not 10G: no common rate.
  const auto rejected = fabric.AddBlock(roadmap[2]);
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error().message.find("inter-operate"), std::string::npos);
}

TEST(DcnFabricTest, BidiPartRejectedInDuplexFabric) {
  auto fabric = MakeFabric();
  ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  EXPECT_FALSE(fabric.AddBlock(optics::Cwdm4Bidi()).ok());
}

// --- topology ------------------------------------------------------------------

TEST(DcnFabricTest, ApplyTopologyInstallsSymmetricTrunks) {
  // 8 OCSes >= blocks-1 so the uniform floor reaches every pair.
  auto fabric = MakeFabric(8, 8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  auto stats = fabric.ApplyTopology(Uniform(8, 4000.0));
  ASSERT_TRUE(stats.ok());
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_EQ(fabric.TrunksBetween(a, b), fabric.TrunksBetween(b, a));
      EXPECT_GE(fabric.TrunksBetween(a, b), 1);  // uniform demand -> floor everywhere
    }
  }
}

TEST(DcnFabricTest, TopologyFollowsDemand) {
  auto fabric = MakeFabric(8, 8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  sim::TrafficMatrix demand(8);
  demand.set(0, 1, 2000.0);
  demand.set(1, 0, 2000.0);
  // Block 5 spreads small demand over three peers, so no single pair of its
  // absorbs the whole port budget.
  demand.set(5, 6, 10.0);
  demand.set(5, 7, 10.0);
  demand.set(5, 4, 10.0);
  ASSERT_TRUE(fabric.ApplyTopology(demand).ok());
  EXPECT_GT(fabric.TrunksBetween(0, 1), fabric.TrunksBetween(5, 6));
  const auto topo = fabric.CurrentTopology();
  EXPECT_GT(topo.TrunkCapacity(0, 1), topo.TrunkCapacity(5, 6));
}

TEST(DcnFabricTest, ReapplySameForecastIsAllUndisturbed) {
  auto fabric = MakeFabric(8, 6);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  ASSERT_TRUE(fabric.ApplyTopology(Uniform(8, 4000.0)).ok());
  auto again = fabric.ApplyTopology(Uniform(8, 4000.0));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().links_established, 0);
  EXPECT_EQ(again.value().links_removed, 0);
  EXPECT_GT(again.value().links_undisturbed, 0);
}

// --- isolation -----------------------------------------------------------------

TEST(DcnFabricTest, TenantTrunksStayInside) {
  auto fabric = MakeFabric(12, 8);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  auto tenant = fabric.CreateTenant({8, 9, 10, 11});
  ASSERT_TRUE(tenant.ok());
  ASSERT_TRUE(fabric.ApplyTopology(Uniform(12, 6000.0)).ok());
  EXPECT_TRUE(fabric.IsolationHolds());
  // No trunk between pool and tenant blocks.
  for (int pool = 0; pool < 8; ++pool) {
    for (int iso = 8; iso < 12; ++iso) {
      EXPECT_EQ(fabric.TrunksBetween(pool, iso), 0) << pool << "-" << iso;
    }
  }
  // But the tenant is internally connected.
  int tenant_trunks = 0;
  for (int a = 8; a < 12; ++a) {
    for (int b = a + 1; b < 12; ++b) tenant_trunks += fabric.TrunksBetween(a, b);
  }
  EXPECT_GT(tenant_trunks, 0);
}

TEST(DcnFabricTest, TenantValidations) {
  auto fabric = MakeFabric(8, 4);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  EXPECT_FALSE(fabric.CreateTenant({0}).ok());        // too small
  EXPECT_FALSE(fabric.CreateTenant({0, 7}).ok());     // 7 inactive
  auto t = fabric.CreateTenant({0, 1});
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(fabric.CreateTenant({1, 2}).ok());     // 1 already owned
  EXPECT_EQ(fabric.TenantOf(0), t.value());
  EXPECT_EQ(fabric.TenantOf(2), kSharedPool);
}

TEST(DcnFabricTest, DissolveTenantRejoinsPool) {
  auto fabric = MakeFabric(8, 6);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  auto tenant = fabric.CreateTenant({4, 5, 6, 7});
  ASSERT_TRUE(tenant.ok());
  ASSERT_TRUE(fabric.ApplyTopology(Uniform(8, 4000.0)).ok());
  EXPECT_EQ(fabric.TrunksBetween(0, 4), 0);
  ASSERT_TRUE(fabric.DissolveTenant(tenant.value()).ok());
  ASSERT_TRUE(fabric.ApplyTopology(Uniform(8, 4000.0)).ok());
  // Rejoined: cross trunks appear again (uniform floor).
  EXPECT_GT(fabric.TrunksBetween(0, 4), 0);
  EXPECT_FALSE(fabric.DissolveTenant(tenant.value()).ok());  // gone
}

TEST(DcnFabricTest, IsolationSurvivesReconfiguration) {
  auto fabric = MakeFabric(12, 8);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  ASSERT_TRUE(fabric.CreateTenant({0, 1, 2}).ok());
  common::Rng rng(3);
  for (int round = 0; round < 3; ++round) {
    const auto demand = sim::GravityTraffic(12, 5000.0, rng);
    ASSERT_TRUE(fabric.ApplyTopology(demand).ok());
    EXPECT_TRUE(fabric.IsolationHolds()) << "round " << round;
  }
}

}  // namespace
}  // namespace lightwave::core
