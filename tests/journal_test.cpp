// Durability-layer tests (CTest label `recovery`): WAL framing and torn-tail
// tolerance at every truncation offset, compaction keeping sequence numbers
// monotone, snapshot round-trip and corruption rejection, and replay's
// exactly-once suffix semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "journal/faulty_storage.h"
#include "journal/file_storage.h"
#include "journal/replay.h"
#include "journal/snapshot.h"
#include "journal/storage.h"
#include "journal/wal.h"
#include "storage_test_util.h"
#include "telemetry/hub.h"

namespace lightwave {
namespace {

std::vector<std::uint8_t> Payload(int i) {
  std::vector<std::uint8_t> bytes;
  for (int j = 0; j <= i % 7; ++j) bytes.push_back(static_cast<std::uint8_t>(i + j));
  return bytes;
}

journal::MemStorage LogWith(int records) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  for (int i = 0; i < records; ++i) {
    auto seq = wal.Append(Payload(i));
    EXPECT_TRUE(seq.ok());
    EXPECT_EQ(seq.value(), static_cast<std::uint64_t>(i + 1));
  }
  return storage;
}

TEST(Wal, AppendScanRoundTrip) {
  journal::MemStorage storage = LogWith(10);
  const auto scan = journal::Wal::Scan(storage);
  ASSERT_TRUE(scan.tail.ok()) << scan.tail.error().message;
  ASSERT_EQ(scan.records.size(), 10u);
  EXPECT_EQ(scan.valid_bytes, storage.size());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].seq,
              static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].payload, Payload(i));
  }
}

TEST(Wal, AppendBatchFramesBytesIdenticallyToSingleAppends) {
  // Group commit is a pure amortization: N records through one AppendBatch
  // must leave EXACTLY the bytes N single Appends leave, so Scan, torn-tail
  // repair, and replay cannot tell the two apart.
  journal::MemStorage single = LogWith(10);
  journal::MemStorage batched;
  journal::Wal wal(batched);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 10; ++i) payloads.push_back(Payload(i));
  auto first = wal.AppendBatch(payloads);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1u);
  EXPECT_EQ(batched.bytes(), single.bytes());
  EXPECT_EQ(wal.next_seq(), 11u);
  EXPECT_EQ(wal.appended_records(), 10u);
  EXPECT_EQ(wal.batch_appends(), 1u);
  // A second batch continues the dense sequence.
  auto second = wal.AppendBatch({Payload(10), Payload(11)});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 11u);
  const auto scan = journal::Wal::Scan(batched);
  ASSERT_TRUE(scan.tail.ok());
  EXPECT_EQ(scan.records.size(), 12u);
}

TEST(Wal, AppendBatchRejectsWholeBatchOnOversizedPayload) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(Payload(0));
  payloads.emplace_back(journal::Wal::kMaxRecordBytes, 0xAB);  // body > limit
  auto appended = wal.AppendBatch(payloads);
  ASSERT_FALSE(appended.ok());
  // Nothing landed, no sequence number burned: the batch is all-or-nothing.
  EXPECT_EQ(storage.size(), 0u);
  EXPECT_EQ(wal.next_seq(), 1u);
  EXPECT_FALSE(wal.AppendBatch({}).ok());
}

TEST(Wal, TornBatchTailRepairsLikeTornAppends) {
  // Tear a batched log mid-way through its last record; the constructor must
  // truncate back to the last whole record, exactly as with single appends.
  journal::MemStorage storage;
  {
    journal::Wal wal(storage);
    ASSERT_TRUE(wal.AppendBatch({Payload(0), Payload(1), Payload(2)}).ok());
  }
  storage.bytes().resize(storage.bytes().size() - 3);
  journal::Wal reopened(storage);
  EXPECT_GT(reopened.tail_truncated_bytes(), 0u);
  EXPECT_EQ(reopened.recovery_scan().records.size(), 2u);
  EXPECT_EQ(reopened.next_seq(), 3u);
}

TEST(Wal, EveryTruncationOffsetScansCleanly) {
  // Chop the log at EVERY byte length. The scan must never crash, must keep
  // every record before the cut, and must report a torn tail unless the cut
  // lands exactly on a record boundary.
  const journal::MemStorage full = LogWith(8);
  const auto boundaries = [&] {
    std::vector<std::uint64_t> offs{0};
    const auto scan = journal::Wal::Scan(full);
    std::uint64_t off = 0;
    for (const auto& rec : scan.records) {
      off += 8 + 8 + rec.payload.size();  // header + seq + payload
      offs.push_back(off);
    }
    return offs;
  }();
  for (std::uint64_t cut = 0; cut <= full.size(); ++cut) {
    journal::MemStorage torn;
    torn.bytes().assign(full.bytes().begin(),
                        full.bytes().begin() + static_cast<long>(cut));
    const auto scan = journal::Wal::Scan(torn);
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) != boundaries.end();
    EXPECT_EQ(scan.tail.ok(), at_boundary) << "cut at " << cut;
    EXPECT_LE(scan.valid_bytes, cut);
    // Recovery through the constructor must leave an appendable log.
    journal::Wal wal(torn);
    EXPECT_EQ(torn.size(), wal.recovery_scan().valid_bytes);
    EXPECT_EQ(wal.tail_truncated_bytes(), cut - wal.recovery_scan().valid_bytes);
    auto appended = wal.Append({0xAB});
    ASSERT_TRUE(appended.ok());
    EXPECT_EQ(appended.value(), wal.recovery_scan().records.size() + 1);
    EXPECT_TRUE(journal::Wal::Scan(torn).tail.ok());
  }
}

TEST(Wal, EveryBitFlipIsCaught) {
  // Flip every bit of a small log: the scan must stop at (or before) the
  // damaged record and keep all records in front of it intact.
  const journal::MemStorage full = LogWith(4);
  const auto clean = journal::Wal::Scan(full);
  for (std::size_t byte = 0; byte < full.bytes().size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      journal::MemStorage corrupt;
      corrupt.bytes() = full.bytes();
      corrupt.bytes()[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto scan = journal::Wal::Scan(corrupt);
      EXPECT_FALSE(scan.tail.ok()) << "flip at byte " << byte << " bit " << bit;
      ASSERT_LT(scan.records.size(), clean.records.size());
      for (std::size_t i = 0; i < scan.records.size(); ++i) {
        EXPECT_EQ(scan.records[i].seq, clean.records[i].seq);
        EXPECT_EQ(scan.records[i].payload, clean.records[i].payload);
      }
    }
  }
}

TEST(Wal, ImplausibleLengthStopsScan) {
  journal::MemStorage storage = LogWith(1);
  // A length field far beyond kMaxRecordBytes: the scanner must refuse to
  // allocate or read it.
  std::vector<std::uint8_t> bogus(16, 0xFF);
  storage.Append(bogus.data(), bogus.size());
  const auto scan = journal::Wal::Scan(storage);
  EXPECT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_NE(scan.tail.error().message.find("implausible"), std::string::npos);
}

TEST(Wal, SequenceDiscontinuityStopsScan) {
  // Build records 1..3 and 1..2 in separate logs, then splice log B's
  // records after log A's: the seq jump (3 -> 1) must end the scan.
  journal::MemStorage a = LogWith(3);
  const journal::MemStorage b = LogWith(2);
  a.bytes().insert(a.bytes().end(), b.bytes().begin(), b.bytes().end());
  const auto scan = journal::Wal::Scan(a);
  EXPECT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_NE(scan.tail.error().message.find("discontinuity"), std::string::npos);
}

TEST(Wal, OversizedAppendRejected) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  std::vector<std::uint8_t> huge(journal::Wal::kMaxRecordBytes, 1);
  auto appended = wal.Append(huge);  // + 8 seq bytes pushes it over the limit
  EXPECT_FALSE(appended.ok());
  EXPECT_EQ(storage.size(), 0u);
  EXPECT_TRUE(wal.Append(std::vector<std::uint8_t>(100, 2)).ok());
}

TEST(Wal, FullCompactionKeepsSequenceCounterMonotone) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  ASSERT_TRUE(wal.Compact(10).ok());
  EXPECT_EQ(storage.size(), 0u);
  // Exactly-once keying depends on this: post-compaction appends must NOT
  // reuse sequence numbers the snapshot already covers.
  auto appended = wal.Append({0x01});
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended.value(), 11u);
  EXPECT_GT(wal.reclaimed_bytes(), 0u);
}

TEST(Wal, PartialCompactionKeepsSuffix) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  ASSERT_TRUE(wal.Compact(6).ok());
  const auto scan = journal::Wal::Scan(storage);
  ASSERT_TRUE(scan.tail.ok());
  ASSERT_EQ(scan.records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].seq,
              static_cast<std::uint64_t>(7 + i));
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].payload, Payload(6 + i));
  }
  EXPECT_EQ(wal.Append({0x02}).value(), 11u);
}

TEST(Wal, SetNextSeqNeverRewinds) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  wal.SetNextSeq(100);
  EXPECT_EQ(wal.next_seq(), 100u);
  wal.SetNextSeq(5);
  EXPECT_EQ(wal.next_seq(), 100u);
  EXPECT_EQ(wal.Append({0x03}).value(), 100u);
}

TEST(Snapshot, RoundTrip) {
  journal::MemStorage storage;
  const std::vector<std::uint8_t> state{1, 2, 3, 4, 5};
  ASSERT_TRUE(journal::SnapshotWriter::Write(storage, 42, state).ok());
  auto read = journal::SnapshotReader::Read(storage);
  ASSERT_TRUE(read.ok()) << read.error().message;
  EXPECT_EQ(read.value().last_included_seq, 42u);
  EXPECT_EQ(read.value().state, state);
  // A rewrite replaces, never appends.
  ASSERT_TRUE(journal::SnapshotWriter::Write(storage, 43, {9}).ok());
  auto reread = journal::SnapshotReader::Read(storage);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().last_included_seq, 43u);
  EXPECT_EQ(reread.value().state, std::vector<std::uint8_t>{9});
}

TEST(Snapshot, EmptyStorageIsNotFound) {
  journal::MemStorage storage;
  auto read = journal::SnapshotReader::Read(storage);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, common::Error::Code::kNotFound);
}

TEST(Snapshot, EveryBitFlipAndTruncationRejected) {
  journal::MemStorage clean;
  ASSERT_TRUE(journal::SnapshotWriter::Write(clean, 7, {10, 20, 30}).ok());
  for (std::size_t byte = 0; byte < clean.bytes().size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      journal::MemStorage corrupt;
      corrupt.bytes() = clean.bytes();
      corrupt.bytes()[byte] ^= static_cast<std::uint8_t>(1u << bit);
      auto read = journal::SnapshotReader::Read(corrupt);
      ASSERT_FALSE(read.ok()) << "flip at byte " << byte << " bit " << bit;
      EXPECT_EQ(read.error().code, common::Error::Code::kInternal);
    }
  }
  for (std::size_t cut = 1; cut < clean.bytes().size(); ++cut) {
    journal::MemStorage truncated;
    truncated.bytes().assign(clean.bytes().begin(),
                             clean.bytes().begin() + static_cast<long>(cut));
    EXPECT_FALSE(journal::SnapshotReader::Read(truncated).ok()) << cut;
  }
}

TEST(Replay, SkipsRecordsTheSnapshotCovers) {
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  {
    journal::Wal wal(wal_storage);
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  }
  ASSERT_TRUE(journal::SnapshotWriter::Write(snapshot_storage, 5, {0xAA}).ok());

  journal::Wal wal(wal_storage);
  std::vector<std::uint8_t> snapshot_state;
  std::vector<std::uint64_t> applied;
  auto recovery = journal::Replay(
      snapshot_storage, wal,
      [&](const journal::Snapshot& snap) {
        snapshot_state = snap.state;
        return common::Status::Ok();
      },
      [&](const journal::WalRecord& record) {
        applied.push_back(record.seq);
        return common::Status::Ok();
      });
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery.value().snapshot_loaded);
  EXPECT_EQ(recovery.value().snapshot_seq, 5u);
  EXPECT_EQ(recovery.value().records_skipped, 5u);
  EXPECT_EQ(recovery.value().records_replayed, 3u);
  EXPECT_TRUE(recovery.value().wal_clean);
  EXPECT_EQ(snapshot_state, std::vector<std::uint8_t>{0xAA});
  EXPECT_EQ(applied, (std::vector<std::uint64_t>{6, 7, 8}));
}

TEST(Replay, FastForwardsSeqPastCompactedLog) {
  // Snapshot at seq 20, log fully compacted: the next append must be 21.
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  ASSERT_TRUE(journal::SnapshotWriter::Write(snapshot_storage, 20, {1}).ok());
  journal::Wal wal(wal_storage);
  auto recovery = journal::Replay(
      snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
      [](const journal::WalRecord&) { return common::Status::Ok(); });
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(wal.next_seq(), 21u);
  EXPECT_EQ(wal.Append({0x04}).value(), 21u);
}

TEST(Replay, ReportsTornTailAndRecordsMetrics) {
  journal::MemStorage wal_storage = LogWith(5);
  journal::MemStorage snapshot_storage;
  wal_storage.bytes().resize(wal_storage.bytes().size() - 3);  // torn mid-record
  journal::Wal wal(wal_storage);
  telemetry::Hub hub;
  std::uint64_t replayed = 0;
  auto recovery = journal::Replay(
      snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
      [&](const journal::WalRecord&) {
        ++replayed;
        return common::Status::Ok();
      },
      &hub);
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery.value().snapshot_loaded);
  EXPECT_FALSE(recovery.value().wal_clean);
  EXPECT_GT(recovery.value().torn_bytes_discarded, 0u);
  EXPECT_EQ(recovery.value().records_replayed, 4u);
  EXPECT_EQ(replayed, 4u);
  EXPECT_EQ(hub.metrics().GetCounter("lightwave_journal_recoveries_total").value(), 1u);
  EXPECT_EQ(hub.metrics().GetHistogram("lightwave_journal_recovery_latency_ms").count(),
            1u);
}

TEST(Replay, CorruptSnapshotIsAHardError) {
  journal::MemStorage wal_storage = LogWith(2);
  journal::MemStorage snapshot_storage;
  ASSERT_TRUE(journal::SnapshotWriter::Write(snapshot_storage, 1, {5}).ok());
  snapshot_storage.bytes()[6] ^= 0x40;
  journal::Wal wal(wal_storage);
  auto recovery = journal::Replay(
      snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
      [](const journal::WalRecord&) { return common::Status::Ok(); });
  ASSERT_FALSE(recovery.ok());
  EXPECT_EQ(recovery.error().code, common::Error::Code::kInternal);
}

// ---------------------------------------------------------------------------
// Storage contract (the PR 9 bugfixes): Truncate may not grow, ReadAt may
// not read out of range — enforced, not silently tolerated.

/// Installs a recording handler so a tripped contract does not abort; the
/// guarded implementations must then still stay memory-safe.
class CheckRecorder {
 public:
  CheckRecorder()
      : scoped_([this](const common::CheckFailure& failure) {
          ++failures_;
          last_ = common::FormatCheckFailure(failure);
        }) {}
  int failures() const { return failures_; }
  const std::string& last() const { return last_; }

 private:
  int failures_ = 0;
  std::string last_;
  common::ScopedCheckHandler scoped_;
};

TEST(StorageContract, TruncateGrowTripsCheckAndDoesNotGrow) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  journal::MemStorage mem;
  auto file = journal::FileStorage::Open(tmp.Path("grow.log"));
  ASSERT_TRUE(file.ok());
  const std::uint8_t bytes[4] = {1, 2, 3, 4};
  for (journal::Storage* storage :
       std::initializer_list<journal::Storage*>{&mem, file.value().get()}) {
    storage->Append(bytes, sizeof(bytes));
    CheckRecorder recorder;
    storage->Truncate(10);  // growing is not supported
    EXPECT_EQ(recorder.failures(), 1) << recorder.last();
    EXPECT_EQ(storage->size(), 4u);  // and the device did not grow
    storage->Truncate(1);  // shrinking still works
    EXPECT_EQ(storage->size(), 1u);
  }
}

TEST(StorageContract, ReadAtOutOfRangeTripsDcheckAndStaysInBounds) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  journal::MemStorage mem;
  auto file = journal::FileStorage::Open(tmp.Path("oob.log"));
  ASSERT_TRUE(file.ok());
  const std::uint8_t bytes[4] = {1, 2, 3, 4};
  for (journal::Storage* storage :
       std::initializer_list<journal::Storage*>{&mem, file.value().get()}) {
    storage->Append(bytes, sizeof(bytes));
    CheckRecorder recorder;
    std::uint8_t out[16] = {0xAA, 0xAA, 0xAA, 0xAA};
    storage->ReadAt(2, 8, out);  // overruns size() == 4
    if (common::kDchecksEnabled) {
      EXPECT_EQ(recorder.failures(), 1) << recorder.last();
    }
    // Whether or not the dcheck fired (NDEBUG), no out-of-range byte may
    // have been copied: the guarded read leaves the buffer untouched.
    EXPECT_EQ(out[0], 0xAA);
    // Offset past the end entirely, and an offset+n overflow candidate.
    storage->ReadAt(100, 1, out);
    EXPECT_EQ(out[0], 0xAA);
  }
}

// ---------------------------------------------------------------------------
// FileStorage: the Storage contract over a real fd.

TEST(FileStorage, AppendReadAndReopenPersistence) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.Path("wal.log");
  {
    auto storage = journal::FileStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    journal::Wal wal(*storage.value());
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  }
  // A fresh process: reopen and recover.
  auto reopened = journal::FileStorage::Open(path);
  ASSERT_TRUE(reopened.ok());
  journal::Wal wal(*reopened.value());
  ASSERT_TRUE(wal.recovery_scan().tail.ok());
  ASSERT_EQ(wal.recovery_scan().records.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(wal.recovery_scan().records[static_cast<std::size_t>(i)].payload,
              Payload(i));
  }
  EXPECT_EQ(wal.next_seq(), 9u);
}

TEST(FileStorage, SyncPolicyGovernsTheDurableFrontier) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};

  // kEveryAppend: durable the moment Append returns.
  journal::FileStorageOptions every;
  every.policy = journal::SyncPolicy::kEveryAppend;
  auto ea = journal::FileStorage::Open(tmp.Path("every.log"), every);
  ASSERT_TRUE(ea.ok());
  ea.value()->Append(bytes, sizeof(bytes));
  EXPECT_EQ(ea.value()->durable_size(), 8u);
  EXPECT_GE(ea.value()->fsync_count(), 1u);

  // kGroupCommit: written != durable until the explicit Sync (the Wal's
  // append boundary), which costs exactly one fsync.
  journal::FileStorageOptions group;
  group.policy = journal::SyncPolicy::kGroupCommit;
  auto gc = journal::FileStorage::Open(tmp.Path("group.log"), group);
  ASSERT_TRUE(gc.ok());
  gc.value()->Append(bytes, sizeof(bytes));
  gc.value()->Append(bytes, sizeof(bytes));
  EXPECT_EQ(gc.value()->size(), 16u);
  EXPECT_EQ(gc.value()->durable_size(), 0u);
  EXPECT_EQ(gc.value()->fsync_count(), 0u);
  gc.value()->Sync();
  EXPECT_EQ(gc.value()->durable_size(), 16u);
  EXPECT_EQ(gc.value()->fsync_count(), 1u);

  // kPeriodic with a far-future interval: Sync declines until forced.
  journal::FileStorageOptions periodic;
  periodic.policy = journal::SyncPolicy::kPeriodic;
  periodic.periodic_interval = std::chrono::milliseconds(3600 * 1000);
  auto pd = journal::FileStorage::Open(tmp.Path("periodic.log"), periodic);
  ASSERT_TRUE(pd.ok());
  pd.value()->Append(bytes, sizeof(bytes));
  pd.value()->Sync();
  EXPECT_EQ(pd.value()->durable_size(), 0u) << "interval not elapsed; Sync must decline";
  pd.value()->SyncNow();
  EXPECT_EQ(pd.value()->durable_size(), 8u);
}

TEST(FileStorage, TruncateIsDurableUnderEveryPolicy) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  journal::FileStorageOptions options;
  options.policy = journal::SyncPolicy::kGroupCommit;
  auto storage = journal::FileStorage::Open(tmp.Path("trunc.log"), options);
  ASSERT_TRUE(storage.ok());
  const std::uint8_t bytes[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  storage.value()->Append(bytes, sizeof(bytes));
  storage.value()->Truncate(3);
  EXPECT_EQ(storage.value()->size(), 3u);
  // Torn-tail repair must survive the next crash: the truncation itself is
  // synced even though the append never was.
  EXPECT_EQ(storage.value()->durable_size(), 3u);
}

TEST(FileStorage, ReplaceContentsIsAtomicAndOpenDiscardsStaleTmp) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.Path("replace.log");
  {
    auto storage = journal::FileStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    const std::uint8_t old_bytes[4] = {1, 1, 1, 1};
    storage.value()->Append(old_bytes, sizeof(old_bytes));
    const std::uint8_t new_bytes[6] = {2, 2, 2, 2, 2, 2};
    storage.value()->ReplaceContents(new_bytes, sizeof(new_bytes));
    EXPECT_EQ(storage.value()->size(), 6u);
    EXPECT_EQ(storage.value()->durable_size(), 6u);
    std::uint8_t out[6] = {};
    storage.value()->ReadAt(0, 6, out);
    EXPECT_EQ(out[0], 2);
  }
  // A crashed rewrite leaves a stale tmp beside the log; Open must discard
  // it (the old log wins) instead of ever confusing it for the data.
  {
    std::ofstream stale(journal::ReplaceTmpPath(path), std::ios::binary);
    stale << "garbage from a dead compaction";
  }
  auto reopened = journal::FileStorage::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->size(), 6u);
  EXPECT_FALSE(std::filesystem::exists(journal::ReplaceTmpPath(path)));
}

TEST(FileStorage, EveryTruncationOffsetScansCleanly) {
  // The MemStorage torn-tail sweep, re-run against real files: for every
  // prefix length of a valid log, recovery must yield exactly the records
  // whose frames fit the prefix, with no crash and no misparse.
  journal::MemStorage oracle = LogWith(6);
  const auto full = journal::Wal::Scan(oracle);
  ASSERT_TRUE(full.tail.ok());
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  std::vector<std::uint64_t> boundaries;  // frame-end offsets
  {
    std::uint64_t off = 0;
    for (const auto& record : full.records) {
      off += 16 + record.payload.size();
      boundaries.push_back(off);
    }
  }
  const std::string path = tmp.Path("sweep.log");
  for (std::uint64_t cut = 0; cut <= oracle.size(); ++cut) {
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(oracle.bytes().data()),
              static_cast<std::streamsize>(cut));
    }
    auto storage = journal::FileStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    journal::Wal wal(*storage.value());
    const std::size_t expect =
        static_cast<std::size_t>(std::count_if(boundaries.begin(), boundaries.end(),
                                               [&](std::uint64_t b) { return b <= cut; }));
    ASSERT_EQ(wal.recovery_scan().records.size(), expect) << "cut=" << cut;
    // Repair truncated to the last boundary, durably.
    EXPECT_EQ(storage.value()->size(), expect == 0 ? 0 : boundaries[expect - 1]);
    EXPECT_EQ(storage.value()->durable_size(), storage.value()->size());
  }
}

// ---------------------------------------------------------------------------
// FaultyStorage: crash realism — lost sync windows and torn final appends.

TEST(FaultyStorage, CrashDropsTheUnsyncedTail) {
  journal::MemStorage base = LogWith(3);
  const std::uint64_t durable = base.size();
  journal::FaultyStorage faulty(base, journal::FaultyStorage::SyncMode::kNever);
  journal::Wal wal(faulty);
  ASSERT_TRUE(wal.Append(Payload(3)).ok());
  ASSERT_TRUE(wal.Append(Payload(4)).ok());
  EXPECT_EQ(faulty.durable_size(), durable) << "kNever must ignore the Wal's syncs";
  faulty.Crash();
  journal::Wal recovered(base);
  ASSERT_TRUE(recovered.recovery_scan().tail.ok());
  EXPECT_EQ(recovered.recovery_scan().records.size(), 3u);
  EXPECT_EQ(recovered.next_seq(), 4u);
}

TEST(FaultyStorage, SyncModesAdvanceTheFrontierAsDocumented) {
  journal::MemStorage base_on_append;
  journal::FaultyStorage on_append(base_on_append,
                                   journal::FaultyStorage::SyncMode::kOnAppend);
  const std::uint8_t bytes[4] = {7, 7, 7, 7};
  on_append.Append(bytes, sizeof(bytes));
  EXPECT_EQ(on_append.durable_size(), 4u);

  journal::MemStorage base_on_sync;
  journal::FaultyStorage on_sync(base_on_sync, journal::FaultyStorage::SyncMode::kOnSync);
  on_sync.Append(bytes, sizeof(bytes));
  EXPECT_EQ(on_sync.durable_size(), 0u);
  on_sync.Sync();
  EXPECT_EQ(on_sync.durable_size(), 4u);
}

TEST(FaultyStorage, TearAtEveryByteOfTheFinalAppend) {
  // The satellite sweep, against BOTH storage kinds: a crash k bytes into
  // the final append must recover all prior records for every k, classify
  // the tail as a truncation (never corruption), and recover everything
  // when k covers the whole frame.
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  for (const bool file_backed : {false, true}) {
    // Probe one run to learn the final frame size.
    std::uint64_t final_frame = 0;
    {
      journal::MemStorage probe;
      journal::FaultyStorage faulty(probe, journal::FaultyStorage::SyncMode::kNever);
      journal::Wal wal(faulty);
      for (int i = 0; i < 5; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
      final_frame = faulty.final_append_bytes();
    }
    ASSERT_GT(final_frame, 0u);
    for (std::uint64_t k = 0; k <= final_frame; ++k) {
      journal::MemStorage mem;
      std::unique_ptr<journal::FileStorage> file;
      journal::Storage* base = &mem;
      if (file_backed) {
        auto opened = journal::FileStorage::Open(
            tmp.Path("tear_" + std::to_string(k) + ".log"));
        ASSERT_TRUE(opened.ok());
        file = std::move(opened.value());
        base = file.get();
      }
      journal::FaultyStorage faulty(*base, journal::FaultyStorage::SyncMode::kNever);
      {
        journal::Wal wal(faulty);
        for (int i = 0; i < 5; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
      }
      faulty.CrashTearingFinalAppend(k);
      journal::Wal recovered(*base);
      const auto& scan = recovered.recovery_scan();
      if (k == final_frame) {
        EXPECT_TRUE(scan.tail.ok()) << "k=" << k;
        EXPECT_EQ(scan.records.size(), 5u);
      } else {
        EXPECT_EQ(scan.records.size(), 4u) << "k=" << k;
        if (k == 0) {
          EXPECT_TRUE(scan.tail.ok()) << "k=0 ends at a boundary";
        } else {
          EXPECT_EQ(scan.tail_kind, journal::WalTailKind::kTruncated)
              << "k=" << k << ": a torn append is a truncation, not corruption";
        }
      }
      EXPECT_EQ(recovered.next_seq(), scan.records.size() + 1);
    }
  }
}

TEST(FaultyStorage, SyncedBytesNeverTearAway) {
  // Under kOnSync the Wal's per-append sync makes each record durable; a
  // tear request clamped to the frontier must not lose any of them.
  journal::MemStorage base;
  journal::FaultyStorage faulty(base, journal::FaultyStorage::SyncMode::kOnSync);
  {
    journal::Wal wal(faulty);
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  }
  faulty.CrashTearingFinalAppend(0);  // would drop the final append...
  journal::Wal recovered(base);
  // ...but it was synced, so nothing tears.
  EXPECT_EQ(recovered.recovery_scan().records.size(), 4u);
}

// ---------------------------------------------------------------------------
// Tail-kind classification: clean EOF mid-sync-window vs genuine corruption.

TEST(Wal, TailKindSplitsTruncationFromCorruption) {
  // Truncation: cut mid-record.
  journal::MemStorage torn = LogWith(4);
  torn.bytes().resize(torn.bytes().size() - 3);
  auto scan = journal::Wal::Scan(torn);
  ASSERT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.tail_kind, journal::WalTailKind::kTruncated);

  // Truncation: zero-filled tail (filesystem extended the file with zero
  // pages on crash).
  journal::MemStorage zeros = LogWith(4);
  const std::size_t valid = zeros.bytes().size();
  zeros.bytes().resize(valid + 32, 0);
  scan = journal::Wal::Scan(zeros);
  ASSERT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.tail_kind, journal::WalTailKind::kTruncated);
  EXPECT_EQ(scan.valid_bytes, valid);
  EXPECT_EQ(scan.records.size(), 4u);

  // Corruption: a bit flip inside a complete record (CRC mismatch).
  journal::MemStorage flipped = LogWith(4);
  flipped.bytes()[20] ^= 0x10;
  scan = journal::Wal::Scan(flipped);
  ASSERT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.tail_kind, journal::WalTailKind::kCorrupt);

  // Corruption: implausible length with the full header present.
  journal::MemStorage lying = LogWith(1);
  lying.bytes()[0] = 0xFF;
  lying.bytes()[1] = 0xFF;
  lying.bytes()[2] = 0xFF;
  lying.bytes()[3] = 0xFF;
  scan = journal::Wal::Scan(lying);
  ASSERT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.tail_kind, journal::WalTailKind::kCorrupt);
}

TEST(Wal, ZeroedHeaderInsideDurablePrefixIsCorruption) {
  // A device zeroing header bytes that were already durable (MemStorage:
  // durable_size == size) must raise the corruption alarm — the bytes
  // after the zeroed header are nonzero, so this is not the filesystem
  // zero-extension artifact.
  journal::MemStorage damaged = LogWith(4);
  for (std::size_t i = 0; i < 8; ++i) damaged.bytes()[i] = 0;
  const auto scan = journal::Wal::Scan(damaged);
  ASSERT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.tail_kind, journal::WalTailKind::kCorrupt);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_TRUE(scan.records.empty());
}

TEST(Wal, ZeroedHeaderAboveDurableFrontierIsTruncation) {
  // Above the durable frontier nothing was ever promised: a zeroed header
  // there is the expected crash artifact even when stray nonzero bytes
  // follow it (a torn page mix), so it must NOT count as corruption.
  journal::MemStorage mem;
  {
    journal::Wal wal(mem);
    for (int i = 0; i < 2; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  }
  journal::FaultyStorage faulty(mem);  // frontier pinned at the current size
  for (int i = 0; i < 8; ++i) mem.bytes().push_back(0);
  mem.bytes().push_back(0xAB);
  mem.bytes().push_back(0xCD);
  const auto scan = journal::Wal::Scan(faulty);
  ASSERT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.tail_kind, journal::WalTailKind::kTruncated);
  EXPECT_EQ(scan.valid_bytes, faulty.durable_size());
  EXPECT_EQ(scan.records.size(), 2u);
}

TEST(Replay, SplitsTailCountersByKindAndRecordsMetrics) {
  // Truncated tail -> tail_truncations, not corruptions.
  {
    journal::MemStorage wal_storage = LogWith(5);
    journal::MemStorage snapshot_storage;
    wal_storage.bytes().resize(wal_storage.bytes().size() - 3);
    journal::Wal wal(wal_storage);
    telemetry::Hub hub;
    auto recovery = journal::Replay(
        snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
        [](const journal::WalRecord&) { return common::Status::Ok(); }, &hub);
    ASSERT_TRUE(recovery.ok());
    EXPECT_EQ(recovery.value().tail_truncations, 1u);
    EXPECT_EQ(recovery.value().tail_corruptions, 0u);
    EXPECT_EQ(hub.metrics().GetCounter("lightwave_journal_tail_truncated_total").value(),
              1u);
    EXPECT_EQ(hub.metrics().GetCounter("lightwave_journal_tail_corrupt_total").value(),
              0u);
  }
  // Corrupt tail (bit flip) -> tail_corruptions.
  {
    journal::MemStorage wal_storage = LogWith(5);
    journal::MemStorage snapshot_storage;
    wal_storage.bytes()[20] ^= 0x10;
    journal::Wal wal(wal_storage);
    telemetry::Hub hub;
    auto recovery = journal::Replay(
        snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
        [](const journal::WalRecord&) { return common::Status::Ok(); }, &hub);
    ASSERT_TRUE(recovery.ok());
    EXPECT_EQ(recovery.value().tail_truncations, 0u);
    EXPECT_EQ(recovery.value().tail_corruptions, 1u);
    EXPECT_EQ(hub.metrics().GetCounter("lightwave_journal_tail_corrupt_total").value(),
              1u);
  }
  // A clean log counts in neither bucket.
  {
    journal::MemStorage wal_storage = LogWith(5);
    journal::MemStorage snapshot_storage;
    journal::Wal wal(wal_storage);
    auto recovery = journal::Replay(
        snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
        [](const journal::WalRecord&) { return common::Status::Ok(); });
    ASSERT_TRUE(recovery.ok());
    EXPECT_EQ(recovery.value().tail_truncations, 0u);
    EXPECT_EQ(recovery.value().tail_corruptions, 0u);
  }
}

// ---------------------------------------------------------------------------
// Compaction: atomic installs and the background path.

TEST(Wal, PartialCompactionSurvivesReopenOnFiles) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.Path("compact.log");
  {
    auto storage = journal::FileStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    journal::Wal wal(*storage.value());
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
    ASSERT_TRUE(wal.Compact(4).ok());
    EXPECT_EQ(wal.next_seq(), 9u);
  }
  auto reopened = journal::FileStorage::Open(path);
  ASSERT_TRUE(reopened.ok());
  journal::Wal wal(*reopened.value());
  const auto& scan = wal.recovery_scan();
  ASSERT_TRUE(scan.tail.ok());
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records.front().seq, 5u);
  EXPECT_EQ(scan.records.back().seq, 8u);
  EXPECT_FALSE(std::filesystem::exists(journal::ReplaceTmpPath(path)));
}

TEST(Wal, BackgroundCompactionDropsThePrefixOffTheServePath) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  wal.StartBackgroundCompaction();
  EXPECT_TRUE(wal.background_compaction());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  ASSERT_TRUE(wal.Compact(6).ok());  // returns immediately; the worker rewrites
  wal.WaitForCompaction();
  auto scan = journal::Wal::Scan(storage);
  ASSERT_TRUE(scan.tail.ok());
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records.front().seq, 7u);
  EXPECT_GE(wal.compactions(), 1u);
  EXPECT_GT(wal.reclaimed_bytes(), 0u);
  // Appends continue seamlessly after the install.
  ASSERT_TRUE(wal.Append(Payload(10)).ok());
  scan = journal::Wal::Scan(storage);
  ASSERT_TRUE(scan.tail.ok());
  EXPECT_EQ(scan.records.back().seq, 11u);
  wal.StopBackgroundCompaction();
}

TEST(Wal, BackgroundCompactionRacesAppendsSafely) {
  // Appends keep flowing while the worker scans and installs; every record
  // above the last floor must survive, in sequence, at every interleaving
  // the scheduler produces (TSan covers the data-race side on CI).
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  auto storage = journal::FileStorage::Open(tmp.Path("race.log"));
  ASSERT_TRUE(storage.ok());
  journal::Wal wal(*storage.value());
  wal.StartBackgroundCompaction();
  std::uint64_t floor = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<std::uint8_t>> batch;
    for (int i = 0; i < 8; ++i) batch.push_back(Payload(round * 8 + i));
    ASSERT_TRUE(wal.AppendBatch(batch).ok());
    floor = wal.next_seq() - 5;  // keep a small suffix live
    ASSERT_TRUE(wal.Compact(floor).ok());
  }
  wal.WaitForCompaction();
  const auto scan = journal::Wal::Scan(wal.storage());
  ASSERT_TRUE(scan.tail.ok());
  ASSERT_FALSE(scan.records.empty());
  EXPECT_GT(scan.records.front().seq, 0u);
  EXPECT_LE(scan.records.front().seq, floor + 1);
  EXPECT_EQ(scan.records.back().seq, wal.next_seq() - 1);
  for (std::size_t i = 1; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, scan.records[i - 1].seq + 1);
  }
  wal.StopBackgroundCompaction();
}

TEST(Wal, AttachTelemetryWhileBackgroundCompactorRuns) {
  // Attaching (and detaching) telemetry mid-flight must synchronize with
  // the worker's counter updates — TSan on CI checks the data-race side.
  journal::MemStorage storage;
  journal::Wal wal(storage);
  wal.StartBackgroundCompaction();
  telemetry::Hub hub;
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(wal.Append(Payload(round)).ok());
    ASSERT_TRUE(wal.Compact(wal.next_seq() - 2).ok());
    wal.AttachTelemetry(round % 2 == 0 ? &hub : nullptr);
  }
  wal.AttachTelemetry(&hub);
  ASSERT_TRUE(wal.Append(Payload(10)).ok());
  ASSERT_TRUE(wal.Compact(wal.next_seq() - 1).ok());
  wal.WaitForCompaction();
  wal.StopBackgroundCompaction();
  EXPECT_GT(hub.metrics().GetCounter("lightwave_journal_appends_total").value(), 0u);
  EXPECT_GT(hub.metrics().GetCounter("lightwave_journal_compactions_total").value(), 0u);
}

TEST(Wal, CrashMidBackgroundCompactionOldLogWins) {
  // Model the crash window between "worker wrote the tmp file" and "worker
  // renamed it": the tmp exists, the log is untouched. Reopen must recover
  // the FULL uncompacted log and discard the tmp.
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.Path("midcompact.log");
  {
    auto storage = journal::FileStorage::Open(path);
    ASSERT_TRUE(storage.ok());
    journal::Wal wal(*storage.value());
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  }
  {
    // The dead compactor's tmp: a plausible-looking but never-renamed file.
    std::ofstream stale(journal::ReplaceTmpPath(path), std::ios::binary);
    stale << "compacted bytes that never got installed";
  }
  auto reopened = journal::FileStorage::Open(path);
  ASSERT_TRUE(reopened.ok());
  journal::Wal wal(*reopened.value());
  ASSERT_TRUE(wal.recovery_scan().tail.ok());
  EXPECT_EQ(wal.recovery_scan().records.size(), 6u) << "the old log wins until the rename";
  EXPECT_FALSE(std::filesystem::exists(journal::ReplaceTmpPath(path)));
}

TEST(Snapshot, WriteIsAtomicOverFiles) {
  testutil::TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.Path("snap");
  auto storage = journal::FileStorage::Open(path);
  ASSERT_TRUE(storage.ok());
  const std::vector<std::uint8_t> state_a = {1, 2, 3};
  const std::vector<std::uint8_t> state_b = {4, 5, 6, 7};
  ASSERT_TRUE(journal::SnapshotWriter::Write(*storage.value(), 10, state_a).ok());
  ASSERT_TRUE(journal::SnapshotWriter::Write(*storage.value(), 20, state_b).ok());
  auto snapshot = journal::SnapshotReader::Read(*storage.value());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().last_included_seq, 20u);
  EXPECT_EQ(snapshot.value().state, state_b);
  EXPECT_EQ(storage.value()->durable_size(), storage.value()->size());
  // Reopen: the rename committed.
  auto reopened = journal::FileStorage::Open(path);
  ASSERT_TRUE(reopened.ok());
  auto again = journal::SnapshotReader::Read(*reopened.value());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().last_included_seq, 20u);
}

TEST(Crc32c, MatchesKnownVector) {
  // RFC 3720 test vector: CRC32C over 32 zero bytes.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(journal::Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // And the classic "123456789" check value.
  const std::string digits = "123456789";
  EXPECT_EQ(journal::Crc32c(reinterpret_cast<const std::uint8_t*>(digits.data()),
                            digits.size()),
            0xE3069283u);
}

}  // namespace
}  // namespace lightwave
