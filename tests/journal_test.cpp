// Durability-layer tests (CTest label `recovery`): WAL framing and torn-tail
// tolerance at every truncation offset, compaction keeping sequence numbers
// monotone, snapshot round-trip and corruption rejection, and replay's
// exactly-once suffix semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "journal/replay.h"
#include "journal/snapshot.h"
#include "journal/storage.h"
#include "journal/wal.h"
#include "telemetry/hub.h"

namespace lightwave {
namespace {

std::vector<std::uint8_t> Payload(int i) {
  std::vector<std::uint8_t> bytes;
  for (int j = 0; j <= i % 7; ++j) bytes.push_back(static_cast<std::uint8_t>(i + j));
  return bytes;
}

journal::MemStorage LogWith(int records) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  for (int i = 0; i < records; ++i) {
    auto seq = wal.Append(Payload(i));
    EXPECT_TRUE(seq.ok());
    EXPECT_EQ(seq.value(), static_cast<std::uint64_t>(i + 1));
  }
  return storage;
}

TEST(Wal, AppendScanRoundTrip) {
  journal::MemStorage storage = LogWith(10);
  const auto scan = journal::Wal::Scan(storage);
  ASSERT_TRUE(scan.tail.ok()) << scan.tail.error().message;
  ASSERT_EQ(scan.records.size(), 10u);
  EXPECT_EQ(scan.valid_bytes, storage.size());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].seq,
              static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].payload, Payload(i));
  }
}

TEST(Wal, AppendBatchFramesBytesIdenticallyToSingleAppends) {
  // Group commit is a pure amortization: N records through one AppendBatch
  // must leave EXACTLY the bytes N single Appends leave, so Scan, torn-tail
  // repair, and replay cannot tell the two apart.
  journal::MemStorage single = LogWith(10);
  journal::MemStorage batched;
  journal::Wal wal(batched);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 10; ++i) payloads.push_back(Payload(i));
  auto first = wal.AppendBatch(payloads);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1u);
  EXPECT_EQ(batched.bytes(), single.bytes());
  EXPECT_EQ(wal.next_seq(), 11u);
  EXPECT_EQ(wal.appended_records(), 10u);
  EXPECT_EQ(wal.batch_appends(), 1u);
  // A second batch continues the dense sequence.
  auto second = wal.AppendBatch({Payload(10), Payload(11)});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 11u);
  const auto scan = journal::Wal::Scan(batched);
  ASSERT_TRUE(scan.tail.ok());
  EXPECT_EQ(scan.records.size(), 12u);
}

TEST(Wal, AppendBatchRejectsWholeBatchOnOversizedPayload) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(Payload(0));
  payloads.emplace_back(journal::Wal::kMaxRecordBytes, 0xAB);  // body > limit
  auto appended = wal.AppendBatch(payloads);
  ASSERT_FALSE(appended.ok());
  // Nothing landed, no sequence number burned: the batch is all-or-nothing.
  EXPECT_EQ(storage.size(), 0u);
  EXPECT_EQ(wal.next_seq(), 1u);
  EXPECT_FALSE(wal.AppendBatch({}).ok());
}

TEST(Wal, TornBatchTailRepairsLikeTornAppends) {
  // Tear a batched log mid-way through its last record; the constructor must
  // truncate back to the last whole record, exactly as with single appends.
  journal::MemStorage storage;
  {
    journal::Wal wal(storage);
    ASSERT_TRUE(wal.AppendBatch({Payload(0), Payload(1), Payload(2)}).ok());
  }
  storage.bytes().resize(storage.bytes().size() - 3);
  journal::Wal reopened(storage);
  EXPECT_GT(reopened.tail_truncated_bytes(), 0u);
  EXPECT_EQ(reopened.recovery_scan().records.size(), 2u);
  EXPECT_EQ(reopened.next_seq(), 3u);
}

TEST(Wal, EveryTruncationOffsetScansCleanly) {
  // Chop the log at EVERY byte length. The scan must never crash, must keep
  // every record before the cut, and must report a torn tail unless the cut
  // lands exactly on a record boundary.
  const journal::MemStorage full = LogWith(8);
  const auto boundaries = [&] {
    std::vector<std::uint64_t> offs{0};
    const auto scan = journal::Wal::Scan(full);
    std::uint64_t off = 0;
    for (const auto& rec : scan.records) {
      off += 8 + 8 + rec.payload.size();  // header + seq + payload
      offs.push_back(off);
    }
    return offs;
  }();
  for (std::uint64_t cut = 0; cut <= full.size(); ++cut) {
    journal::MemStorage torn;
    torn.bytes().assign(full.bytes().begin(),
                        full.bytes().begin() + static_cast<long>(cut));
    const auto scan = journal::Wal::Scan(torn);
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) != boundaries.end();
    EXPECT_EQ(scan.tail.ok(), at_boundary) << "cut at " << cut;
    EXPECT_LE(scan.valid_bytes, cut);
    // Recovery through the constructor must leave an appendable log.
    journal::Wal wal(torn);
    EXPECT_EQ(torn.size(), wal.recovery_scan().valid_bytes);
    EXPECT_EQ(wal.tail_truncated_bytes(), cut - wal.recovery_scan().valid_bytes);
    auto appended = wal.Append({0xAB});
    ASSERT_TRUE(appended.ok());
    EXPECT_EQ(appended.value(), wal.recovery_scan().records.size() + 1);
    EXPECT_TRUE(journal::Wal::Scan(torn).tail.ok());
  }
}

TEST(Wal, EveryBitFlipIsCaught) {
  // Flip every bit of a small log: the scan must stop at (or before) the
  // damaged record and keep all records in front of it intact.
  const journal::MemStorage full = LogWith(4);
  const auto clean = journal::Wal::Scan(full);
  for (std::size_t byte = 0; byte < full.bytes().size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      journal::MemStorage corrupt;
      corrupt.bytes() = full.bytes();
      corrupt.bytes()[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto scan = journal::Wal::Scan(corrupt);
      EXPECT_FALSE(scan.tail.ok()) << "flip at byte " << byte << " bit " << bit;
      ASSERT_LT(scan.records.size(), clean.records.size());
      for (std::size_t i = 0; i < scan.records.size(); ++i) {
        EXPECT_EQ(scan.records[i].seq, clean.records[i].seq);
        EXPECT_EQ(scan.records[i].payload, clean.records[i].payload);
      }
    }
  }
}

TEST(Wal, ImplausibleLengthStopsScan) {
  journal::MemStorage storage = LogWith(1);
  // A length field far beyond kMaxRecordBytes: the scanner must refuse to
  // allocate or read it.
  std::vector<std::uint8_t> bogus(16, 0xFF);
  storage.Append(bogus.data(), bogus.size());
  const auto scan = journal::Wal::Scan(storage);
  EXPECT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_NE(scan.tail.error().message.find("implausible"), std::string::npos);
}

TEST(Wal, SequenceDiscontinuityStopsScan) {
  // Build records 1..3 and 1..2 in separate logs, then splice log B's
  // records after log A's: the seq jump (3 -> 1) must end the scan.
  journal::MemStorage a = LogWith(3);
  const journal::MemStorage b = LogWith(2);
  a.bytes().insert(a.bytes().end(), b.bytes().begin(), b.bytes().end());
  const auto scan = journal::Wal::Scan(a);
  EXPECT_FALSE(scan.tail.ok());
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_NE(scan.tail.error().message.find("discontinuity"), std::string::npos);
}

TEST(Wal, OversizedAppendRejected) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  std::vector<std::uint8_t> huge(journal::Wal::kMaxRecordBytes, 1);
  auto appended = wal.Append(huge);  // + 8 seq bytes pushes it over the limit
  EXPECT_FALSE(appended.ok());
  EXPECT_EQ(storage.size(), 0u);
  EXPECT_TRUE(wal.Append(std::vector<std::uint8_t>(100, 2)).ok());
}

TEST(Wal, FullCompactionKeepsSequenceCounterMonotone) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  ASSERT_TRUE(wal.Compact(10).ok());
  EXPECT_EQ(storage.size(), 0u);
  // Exactly-once keying depends on this: post-compaction appends must NOT
  // reuse sequence numbers the snapshot already covers.
  auto appended = wal.Append({0x01});
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended.value(), 11u);
  EXPECT_GT(wal.reclaimed_bytes(), 0u);
}

TEST(Wal, PartialCompactionKeepsSuffix) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  ASSERT_TRUE(wal.Compact(6).ok());
  const auto scan = journal::Wal::Scan(storage);
  ASSERT_TRUE(scan.tail.ok());
  ASSERT_EQ(scan.records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].seq,
              static_cast<std::uint64_t>(7 + i));
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].payload, Payload(6 + i));
  }
  EXPECT_EQ(wal.Append({0x02}).value(), 11u);
}

TEST(Wal, SetNextSeqNeverRewinds) {
  journal::MemStorage storage;
  journal::Wal wal(storage);
  wal.SetNextSeq(100);
  EXPECT_EQ(wal.next_seq(), 100u);
  wal.SetNextSeq(5);
  EXPECT_EQ(wal.next_seq(), 100u);
  EXPECT_EQ(wal.Append({0x03}).value(), 100u);
}

TEST(Snapshot, RoundTrip) {
  journal::MemStorage storage;
  const std::vector<std::uint8_t> state{1, 2, 3, 4, 5};
  ASSERT_TRUE(journal::SnapshotWriter::Write(storage, 42, state).ok());
  auto read = journal::SnapshotReader::Read(storage);
  ASSERT_TRUE(read.ok()) << read.error().message;
  EXPECT_EQ(read.value().last_included_seq, 42u);
  EXPECT_EQ(read.value().state, state);
  // A rewrite replaces, never appends.
  ASSERT_TRUE(journal::SnapshotWriter::Write(storage, 43, {9}).ok());
  auto reread = journal::SnapshotReader::Read(storage);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().last_included_seq, 43u);
  EXPECT_EQ(reread.value().state, std::vector<std::uint8_t>{9});
}

TEST(Snapshot, EmptyStorageIsNotFound) {
  journal::MemStorage storage;
  auto read = journal::SnapshotReader::Read(storage);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, common::Error::Code::kNotFound);
}

TEST(Snapshot, EveryBitFlipAndTruncationRejected) {
  journal::MemStorage clean;
  ASSERT_TRUE(journal::SnapshotWriter::Write(clean, 7, {10, 20, 30}).ok());
  for (std::size_t byte = 0; byte < clean.bytes().size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      journal::MemStorage corrupt;
      corrupt.bytes() = clean.bytes();
      corrupt.bytes()[byte] ^= static_cast<std::uint8_t>(1u << bit);
      auto read = journal::SnapshotReader::Read(corrupt);
      ASSERT_FALSE(read.ok()) << "flip at byte " << byte << " bit " << bit;
      EXPECT_EQ(read.error().code, common::Error::Code::kInternal);
    }
  }
  for (std::size_t cut = 1; cut < clean.bytes().size(); ++cut) {
    journal::MemStorage truncated;
    truncated.bytes().assign(clean.bytes().begin(),
                             clean.bytes().begin() + static_cast<long>(cut));
    EXPECT_FALSE(journal::SnapshotReader::Read(truncated).ok()) << cut;
  }
}

TEST(Replay, SkipsRecordsTheSnapshotCovers) {
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  {
    journal::Wal wal(wal_storage);
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(wal.Append(Payload(i)).ok());
  }
  ASSERT_TRUE(journal::SnapshotWriter::Write(snapshot_storage, 5, {0xAA}).ok());

  journal::Wal wal(wal_storage);
  std::vector<std::uint8_t> snapshot_state;
  std::vector<std::uint64_t> applied;
  auto recovery = journal::Replay(
      snapshot_storage, wal,
      [&](const journal::Snapshot& snap) {
        snapshot_state = snap.state;
        return common::Status::Ok();
      },
      [&](const journal::WalRecord& record) {
        applied.push_back(record.seq);
        return common::Status::Ok();
      });
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_TRUE(recovery.value().snapshot_loaded);
  EXPECT_EQ(recovery.value().snapshot_seq, 5u);
  EXPECT_EQ(recovery.value().records_skipped, 5u);
  EXPECT_EQ(recovery.value().records_replayed, 3u);
  EXPECT_TRUE(recovery.value().wal_clean);
  EXPECT_EQ(snapshot_state, std::vector<std::uint8_t>{0xAA});
  EXPECT_EQ(applied, (std::vector<std::uint64_t>{6, 7, 8}));
}

TEST(Replay, FastForwardsSeqPastCompactedLog) {
  // Snapshot at seq 20, log fully compacted: the next append must be 21.
  journal::MemStorage wal_storage;
  journal::MemStorage snapshot_storage;
  ASSERT_TRUE(journal::SnapshotWriter::Write(snapshot_storage, 20, {1}).ok());
  journal::Wal wal(wal_storage);
  auto recovery = journal::Replay(
      snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
      [](const journal::WalRecord&) { return common::Status::Ok(); });
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(wal.next_seq(), 21u);
  EXPECT_EQ(wal.Append({0x04}).value(), 21u);
}

TEST(Replay, ReportsTornTailAndRecordsMetrics) {
  journal::MemStorage wal_storage = LogWith(5);
  journal::MemStorage snapshot_storage;
  wal_storage.bytes().resize(wal_storage.bytes().size() - 3);  // torn mid-record
  journal::Wal wal(wal_storage);
  telemetry::Hub hub;
  std::uint64_t replayed = 0;
  auto recovery = journal::Replay(
      snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
      [&](const journal::WalRecord&) {
        ++replayed;
        return common::Status::Ok();
      },
      &hub);
  ASSERT_TRUE(recovery.ok());
  EXPECT_FALSE(recovery.value().snapshot_loaded);
  EXPECT_FALSE(recovery.value().wal_clean);
  EXPECT_GT(recovery.value().torn_bytes_discarded, 0u);
  EXPECT_EQ(recovery.value().records_replayed, 4u);
  EXPECT_EQ(replayed, 4u);
  EXPECT_EQ(hub.metrics().GetCounter("lightwave_journal_recoveries_total").value(), 1u);
  EXPECT_EQ(hub.metrics().GetHistogram("lightwave_journal_recovery_latency_ms").count(),
            1u);
}

TEST(Replay, CorruptSnapshotIsAHardError) {
  journal::MemStorage wal_storage = LogWith(2);
  journal::MemStorage snapshot_storage;
  ASSERT_TRUE(journal::SnapshotWriter::Write(snapshot_storage, 1, {5}).ok());
  snapshot_storage.bytes()[6] ^= 0x40;
  journal::Wal wal(wal_storage);
  auto recovery = journal::Replay(
      snapshot_storage, wal, [](const journal::Snapshot&) { return common::Status::Ok(); },
      [](const journal::WalRecord&) { return common::Status::Ok(); });
  ASSERT_FALSE(recovery.ok());
  EXPECT_EQ(recovery.error().code, common::Error::Code::kInternal);
}

TEST(Crc32c, MatchesKnownVector) {
  // RFC 3720 test vector: CRC32C over 32 zero bytes.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(journal::Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // And the classic "123456789" check value.
  const std::string digits = "123456789";
  EXPECT_EQ(journal::Crc32c(reinterpret_cast<const std::uint8_t*>(digits.data()),
                            digits.size()),
            0xE3069283u);
}

}  // namespace
}  // namespace lightwave
