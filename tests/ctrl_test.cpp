// Unit tests for the control plane: wire primitives, frame envelope + CRC,
// message round-trips, agent semantics (idempotent transactions), and the
// fabric controller's retry behaviour over a lossy bus.
#include <gtest/gtest.h>

#include "ctrl/controller.h"
#include "ctrl/messages.h"
#include "ctrl/wire.h"
#include "ocs/palomar.h"

namespace lightwave::ctrl {
namespace {

// --- wire primitives -----------------------------------------------------------

TEST(Wire, FixedWidthRoundTrip) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(3.14159);
  const auto buffer = w.buffer();
  WireReader r(buffer);
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU16().value(), 0x1234);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Wire, VarintRoundTrip) {
  WireWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, 0xFFFFFFFFFFFFFFFFull};
  for (auto v : values) w.PutVarint(v);
  const auto buffer = w.buffer();
  WireReader r(buffer);
  for (auto v : values) EXPECT_EQ(r.GetVarint().value(), v);
}

TEST(Wire, VarintCompactness) {
  WireWriter w;
  w.PutVarint(5);
  EXPECT_EQ(w.buffer().size(), 1u);
}

TEST(Wire, StringRoundTrip) {
  WireWriter w;
  w.PutString("hello fabric");
  w.PutString("");
  const auto buffer = w.buffer();
  WireReader r(buffer);
  EXPECT_EQ(r.GetString().value(), "hello fabric");
  EXPECT_EQ(r.GetString().value(), "");
}

TEST(Wire, TruncatedReadsFail) {
  WireWriter w;
  w.PutU16(7);
  const auto buffer = w.buffer();
  WireReader r(buffer);
  EXPECT_TRUE(r.GetU8().has_value());
  EXPECT_FALSE(r.GetU32().has_value());
}

TEST(Wire, Crc32KnownVector) {
  // CRC32 of "123456789" is the classic check value 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data, sizeof(data)), 0xCBF43926u);
}

// --- framing --------------------------------------------------------------------

TEST(Frame, RoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto frame = FrameMessage(payload);
  const auto opened = UnframeMessage(frame);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->version, kProtocolVersion);
  EXPECT_EQ(opened->payload, payload);
}

TEST(Frame, CorruptionDetected) {
  const std::vector<std::uint8_t> payload = {10, 20, 30};
  auto frame = FrameMessage(payload);
  frame[7] ^= 0x01;  // flip a payload bit
  EXPECT_FALSE(UnframeMessage(frame).has_value());
}

TEST(Frame, TruncationDetected) {
  auto frame = FrameMessage({1, 2, 3});
  frame.pop_back();
  EXPECT_FALSE(UnframeMessage(frame).has_value());
}

TEST(Frame, OldVersionRejected) {
  const auto frame = FrameMessage({1}, /*version=*/1);
  EXPECT_FALSE(UnframeMessage(frame).has_value());
}

TEST(Frame, SupportedOlderVersionAccepted) {
  const auto frame = FrameMessage({1}, kMinSupportedVersion);
  EXPECT_TRUE(UnframeMessage(frame).has_value());
}

// --- messages -------------------------------------------------------------------

TEST(Messages, ReconfigureRequestRoundTrip) {
  ReconfigureRequest msg;
  msg.transaction_id = 77;
  msg.target = {{0, 5}, {1, 6}, {127, 0}};
  const auto decoded = DecodeReconfigureRequest(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->transaction_id, 77u);
  EXPECT_EQ(decoded->target, msg.target);
}

TEST(Messages, ReconfigureReplyRoundTrip) {
  ReconfigureReply msg;
  msg.transaction_id = 9;
  msg.ok = false;
  msg.error = "port dead";
  msg.established = 3;
  msg.removed = 1;
  msg.undisturbed = 40;
  msg.duration_ms = 12.5;
  const auto decoded = DecodeReconfigureReply(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->error, "port dead");
  EXPECT_EQ(decoded->undisturbed, 40u);
  EXPECT_DOUBLE_EQ(decoded->duration_ms, 12.5);
}

TEST(Messages, TelemetryRoundTrip) {
  TelemetryReply msg;
  msg.nonce = 4;
  msg.connects = 100;
  msg.power_draw_w = 104.5;
  msg.chassis_operational = true;
  const auto decoded = DecodeTelemetryReply(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->connects, 100u);
  EXPECT_TRUE(decoded->chassis_operational);
}

TEST(Messages, PortSurveyRoundTrip) {
  PortSurveyReply msg;
  msg.nonce = 8;
  msg.entries = {{.north = 1, .south = 2, .insertion_loss_db = 1.8, .return_loss_db = -45.0}};
  const auto decoded = DecodePortSurveyReply(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->entries.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded->entries[0].insertion_loss_db, 1.8);
}

TEST(Messages, PeekTypeAndCrossDecodeRejected) {
  const auto frame = Encode(TelemetryRequest{.nonce = 1});
  EXPECT_EQ(PeekType(frame).value(), MessageType::kTelemetryRequest);
  EXPECT_FALSE(DecodeReconfigureRequest(frame).has_value());
}

// --- agent ----------------------------------------------------------------------

TEST(Agent, ExecutesReconfigure) {
  ocs::PalomarSwitch ocs(50);
  OcsAgent agent(ocs);
  const ReconfigureRequest request{.transaction_id = 1, .target = {{0, 1}, {2, 3}}};
  const auto reply_frame = agent.Handle(Encode(request));
  const auto reply = DecodeReconfigureReply(reply_frame);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->established, 2u);
  EXPECT_EQ(ocs.ConnectionCount(), 2);
}

TEST(Agent, RetriedTransactionIsIdempotent) {
  ocs::PalomarSwitch ocs(51);
  OcsAgent agent(ocs);
  const ReconfigureRequest request{.transaction_id = 5, .target = {{0, 1}}};
  const auto first = DecodeReconfigureReply(agent.Handle(Encode(request)));
  const auto second = DecodeReconfigureReply(agent.Handle(Encode(request)));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->established, first->established);
  // Only one reconfiguration actually ran.
  EXPECT_EQ(ocs.telemetry().reconfigurations, 1u);
}

TEST(Agent, ReportsRejectedReconfigure) {
  ocs::PalomarSwitch ocs(52);
  OcsAgent agent(ocs);
  const ReconfigureRequest request{.transaction_id = 2, .target = {{0, 1}, {3, 1}}};
  const auto reply = DecodeReconfigureReply(agent.Handle(Encode(request)));
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->ok);
  EXPECT_FALSE(reply->error.empty());
}

TEST(Agent, DropsMalformedFrame) {
  ocs::PalomarSwitch ocs(53);
  OcsAgent agent(ocs);
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4};
  EXPECT_TRUE(agent.Handle(garbage).empty());
}

TEST(Agent, AnswersTelemetryAndSurvey) {
  ocs::PalomarSwitch ocs(54);
  (void)ocs.Connect(0, 1);
  OcsAgent agent(ocs);
  const auto telemetry =
      DecodeTelemetryReply(agent.Handle(Encode(TelemetryRequest{.nonce = 3})));
  ASSERT_TRUE(telemetry.has_value());
  EXPECT_EQ(telemetry->nonce, 3u);
  EXPECT_EQ(telemetry->connects, 1u);
  EXPECT_TRUE(telemetry->chassis_operational);
  EXPECT_GT(telemetry->power_draw_w, 50.0);

  const auto survey =
      DecodePortSurveyReply(agent.Handle(Encode(PortSurveyRequest{.nonce = 4})));
  ASSERT_TRUE(survey.has_value());
  EXPECT_EQ(survey->entries.size(), 1u);
}

// --- bus + controller --------------------------------------------------------------

TEST(Bus, LosslessByDefault) {
  ocs::PalomarSwitch ocs(55);
  OcsAgent agent(ocs);
  MessageBus bus(1);
  const auto reply = bus.RoundTrip(agent, Encode(TelemetryRequest{.nonce = 1}));
  EXPECT_FALSE(reply.empty());
  EXPECT_EQ(bus.frames_dropped(), 0u);
}

TEST(Bus, DropsAtConfiguredRate) {
  ocs::PalomarSwitch ocs(56);
  OcsAgent agent(ocs);
  MessageBus bus(2);
  bus.SetDropProbability(0.5);
  int lost = 0;
  for (int i = 0; i < 200; ++i) {
    if (bus.RoundTrip(agent, Encode(TelemetryRequest{.nonce = 1})).empty()) ++lost;
  }
  EXPECT_GT(lost, 100);  // two chances to drop per round trip
  EXPECT_LT(lost, 190);
}

TEST(Bus, CorruptionCaughtByCrc) {
  ocs::PalomarSwitch ocs(57);
  OcsAgent agent(ocs);
  MessageBus bus(3);
  bus.SetCorruptProbability(1.0);
  // Every frame is mangled; the CRC (or type check) rejects it and the
  // round trip yields nothing — but never a wrong decode.
  const auto reply = bus.RoundTrip(agent, Encode(TelemetryRequest{.nonce = 9}));
  EXPECT_TRUE(reply.empty());
  EXPECT_EQ(ocs.telemetry().reconfigurations, 0u);
}

TEST(Controller, AppliesTopologyAcrossAgents) {
  ocs::PalomarSwitch ocs_a(58), ocs_b(59);
  OcsAgent agent_a(ocs_a), agent_b(ocs_b);
  MessageBus bus(4);
  FabricController controller(bus);
  controller.Register(0, &agent_a);
  controller.Register(1, &agent_b);
  const std::map<int, std::map<int, int>> targets = {{0, {{0, 1}}}, {1, {{2, 3}, {4, 5}}}};
  const auto result = controller.ApplyTopology(targets);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(ocs_a.ConnectionCount(), 1);
  EXPECT_EQ(ocs_b.ConnectionCount(), 2);
  EXPECT_EQ(result.replies.at(1).established, 2u);
}

TEST(Controller, RetriesThroughLossyBus) {
  ocs::PalomarSwitch ocs(60);
  OcsAgent agent(ocs);
  MessageBus bus(5);
  bus.SetDropProbability(0.4);
  FabricController controller(bus, /*max_retries=*/20);
  controller.Register(0, &agent);
  const auto result = controller.ApplyTopology({{0, {{0, 1}}}});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(ocs.ConnectionCount(), 1);
  // The reconfiguration executed exactly once despite retries.
  EXPECT_EQ(ocs.telemetry().reconfigurations, 1u);
}

TEST(Controller, SurfacesAgentRejection) {
  ocs::PalomarSwitch ocs(61);
  OcsAgent agent(ocs);
  MessageBus bus(6);
  FabricController controller(bus);
  controller.Register(0, &agent);
  const auto result = controller.ApplyTopology({{0, {{0, 1}, {2, 1}}}});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("ocs 0"), std::string::npos);
}

TEST(Controller, FailsOnUnregisteredOcs) {
  MessageBus bus(7);
  FabricController controller(bus);
  const auto result = controller.ApplyTopology({{9, {{0, 1}}}});
  EXPECT_FALSE(result.ok);
}

TEST(Controller, CollectsTelemetryFromAll) {
  ocs::PalomarSwitch ocs_a(62), ocs_b(63);
  (void)ocs_a.Connect(0, 1);
  OcsAgent agent_a(ocs_a), agent_b(ocs_b);
  MessageBus bus(8);
  FabricController controller(bus);
  controller.Register(0, &agent_a);
  controller.Register(1, &agent_b);
  const auto telemetry = controller.CollectTelemetry();
  ASSERT_EQ(telemetry.size(), 2u);
  EXPECT_EQ(telemetry.at(0).connects, 1u);
  EXPECT_EQ(telemetry.at(1).connects, 0u);
}

}  // namespace
}  // namespace lightwave::ctrl
