// Unit tests for the control plane: wire primitives, frame envelope + CRC,
// message round-trips, agent semantics (idempotent transactions), and the
// fabric controller's transactional apply/rollback, backoff, and
// circuit-breaker behaviour over a lossy bus.
#include <gtest/gtest.h>

#include "ctrl/controller.h"
#include "ctrl/messages.h"
#include "ctrl/wire.h"
#include "ocs/palomar.h"
#include "telemetry/hub.h"

namespace lightwave::ctrl {
namespace {

// --- wire primitives -----------------------------------------------------------

TEST(Wire, FixedWidthRoundTrip) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(3.14159);
  const auto buffer = w.buffer();
  WireReader r(buffer);
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU16().value(), 0x1234);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Wire, VarintRoundTrip) {
  WireWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, 0xFFFFFFFFFFFFFFFFull};
  for (auto v : values) w.PutVarint(v);
  const auto buffer = w.buffer();
  WireReader r(buffer);
  for (auto v : values) EXPECT_EQ(r.GetVarint().value(), v);
}

TEST(Wire, VarintCompactness) {
  WireWriter w;
  w.PutVarint(5);
  EXPECT_EQ(w.buffer().size(), 1u);
}

TEST(Wire, StringRoundTrip) {
  WireWriter w;
  w.PutString("hello fabric");
  w.PutString("");
  const auto buffer = w.buffer();
  WireReader r(buffer);
  EXPECT_EQ(r.GetString().value(), "hello fabric");
  EXPECT_EQ(r.GetString().value(), "");
}

TEST(Wire, TruncatedReadsFail) {
  WireWriter w;
  w.PutU16(7);
  const auto buffer = w.buffer();
  WireReader r(buffer);
  EXPECT_TRUE(r.GetU8().has_value());
  EXPECT_FALSE(r.GetU32().has_value());
}

TEST(Wire, Crc32KnownVector) {
  // CRC32 of "123456789" is the classic check value 0xCBF43926.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data, sizeof(data)), 0xCBF43926u);
}

// --- framing --------------------------------------------------------------------

TEST(Frame, RoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto frame = FrameMessage(payload);
  const auto opened = UnframeMessage(frame);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->version, kProtocolVersion);
  EXPECT_EQ(opened->payload, payload);
}

TEST(Frame, CorruptionDetected) {
  const std::vector<std::uint8_t> payload = {10, 20, 30};
  auto frame = FrameMessage(payload);
  frame[7] ^= 0x01;  // flip a payload bit
  EXPECT_FALSE(UnframeMessage(frame).has_value());
}

TEST(Frame, TruncationDetected) {
  auto frame = FrameMessage({1, 2, 3});
  frame.pop_back();
  EXPECT_FALSE(UnframeMessage(frame).has_value());
}

TEST(Frame, OldVersionRejected) {
  const auto frame = FrameMessage({1}, /*version=*/1);
  EXPECT_FALSE(UnframeMessage(frame).has_value());
}

TEST(Frame, SupportedOlderVersionAccepted) {
  const auto frame = FrameMessage({1}, kMinSupportedVersion);
  EXPECT_TRUE(UnframeMessage(frame).has_value());
}

// --- messages -------------------------------------------------------------------

TEST(Messages, ReconfigureRequestRoundTrip) {
  ReconfigureRequest msg;
  msg.transaction_id = 77;
  msg.target = {{0, 5}, {1, 6}, {127, 0}};
  const auto decoded = DecodeReconfigureRequest(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->transaction_id, 77u);
  EXPECT_EQ(decoded->target, msg.target);
}

TEST(Messages, ReconfigureReplyRoundTrip) {
  ReconfigureReply msg;
  msg.transaction_id = 9;
  msg.ok = false;
  msg.error = "port dead";
  msg.established = 3;
  msg.removed = 1;
  msg.undisturbed = 40;
  msg.duration_ms = 12.5;
  const auto decoded = DecodeReconfigureReply(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->error, "port dead");
  EXPECT_EQ(decoded->undisturbed, 40u);
  EXPECT_DOUBLE_EQ(decoded->duration_ms, 12.5);
}

TEST(Messages, TelemetryRoundTrip) {
  TelemetryReply msg;
  msg.nonce = 4;
  msg.connects = 100;
  msg.power_draw_w = 104.5;
  msg.chassis_operational = true;
  const auto decoded = DecodeTelemetryReply(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->connects, 100u);
  EXPECT_TRUE(decoded->chassis_operational);
}

TEST(Messages, PortSurveyRoundTrip) {
  PortSurveyReply msg;
  msg.nonce = 8;
  msg.entries = {{.north = 1, .south = 2, .insertion_loss_db = 1.8, .return_loss_db = -45.0}};
  const auto decoded = DecodePortSurveyReply(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->entries.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded->entries[0].insertion_loss_db, 1.8);
}

TEST(Messages, PeekTypeAndCrossDecodeRejected) {
  const auto frame = Encode(TelemetryRequest{.nonce = 1});
  EXPECT_EQ(PeekType(frame).value(), MessageType::kTelemetryRequest);
  EXPECT_FALSE(DecodeReconfigureRequest(frame).has_value());
}

// --- agent ----------------------------------------------------------------------

TEST(Agent, ExecutesReconfigure) {
  ocs::PalomarSwitch ocs(50);
  OcsAgent agent(ocs);
  const ReconfigureRequest request{.transaction_id = 1, .target = {{0, 1}, {2, 3}}};
  const auto reply_frame = agent.Handle(Encode(request));
  const auto reply = DecodeReconfigureReply(reply_frame);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->established, 2u);
  EXPECT_EQ(ocs.ConnectionCount(), 2);
}

TEST(Agent, RetriedTransactionIsIdempotent) {
  ocs::PalomarSwitch ocs(51);
  OcsAgent agent(ocs);
  const ReconfigureRequest request{.transaction_id = 5, .target = {{0, 1}}};
  const auto first = DecodeReconfigureReply(agent.Handle(Encode(request)));
  const auto second = DecodeReconfigureReply(agent.Handle(Encode(request)));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->established, first->established);
  // Only one reconfiguration actually ran.
  EXPECT_EQ(ocs.telemetry().reconfigurations, 1u);
}

TEST(Agent, TransactionIdZeroExecutes) {
  // Regression: a zero-initialised cache key used to swallow the first
  // request when its transaction id was 0, answering from the
  // default-constructed last reply (ok=false, empty error) without ever
  // executing the reconfigure.
  ocs::PalomarSwitch ocs(64);
  OcsAgent agent(ocs);
  const ReconfigureRequest request{.transaction_id = 0, .target = {{0, 1}}};
  const auto reply = DecodeReconfigureReply(agent.Handle(Encode(request)));
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->ok) << reply->error;
  EXPECT_EQ(reply->established, 1u);
  EXPECT_EQ(ocs.telemetry().reconfigurations, 1u);
  // Retrying txn 0 is idempotent like any other transaction.
  const auto retry = DecodeReconfigureReply(agent.Handle(Encode(request)));
  ASSERT_TRUE(retry.has_value());
  EXPECT_TRUE(retry->ok);
  EXPECT_EQ(ocs.telemetry().reconfigurations, 1u);
}

TEST(Agent, RestartLosesCacheButReplayIsSafe) {
  ocs::PalomarSwitch ocs(65);
  OcsAgent agent(ocs);
  const ReconfigureRequest request{.transaction_id = 5, .target = {{0, 1}}};
  ASSERT_TRUE(DecodeReconfigureReply(agent.Handle(Encode(request)))->ok);
  EXPECT_EQ(ocs.telemetry().reconfigurations, 1u);
  agent.SimulateRestart();
  // The idempotency cache is volatile state; after a restart the retry
  // re-executes — harmlessly, because the switch already matches the target
  // and leaves every connection undisturbed.
  const auto replay = DecodeReconfigureReply(agent.Handle(Encode(request)));
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->ok);
  EXPECT_EQ(replay->undisturbed, 1u);
  EXPECT_EQ(ocs.telemetry().reconfigurations, 2u);
  EXPECT_EQ(ocs.CurrentMapping(), (std::map<int, int>{{0, 1}}));
}

TEST(Agent, ReportsRejectedReconfigure) {
  ocs::PalomarSwitch ocs(52);
  OcsAgent agent(ocs);
  const ReconfigureRequest request{.transaction_id = 2, .target = {{0, 1}, {3, 1}}};
  const auto reply = DecodeReconfigureReply(agent.Handle(Encode(request)));
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->ok);
  EXPECT_FALSE(reply->error.empty());
}

TEST(Agent, DropsMalformedFrame) {
  ocs::PalomarSwitch ocs(53);
  OcsAgent agent(ocs);
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4};
  EXPECT_TRUE(agent.Handle(garbage).empty());
}

TEST(Agent, AnswersTelemetryAndSurvey) {
  ocs::PalomarSwitch ocs(54);
  (void)ocs.Connect(0, 1);
  OcsAgent agent(ocs);
  const auto telemetry =
      DecodeTelemetryReply(agent.Handle(Encode(TelemetryRequest{.nonce = 3})));
  ASSERT_TRUE(telemetry.has_value());
  EXPECT_EQ(telemetry->nonce, 3u);
  EXPECT_EQ(telemetry->connects, 1u);
  EXPECT_TRUE(telemetry->chassis_operational);
  EXPECT_GT(telemetry->power_draw_w, 50.0);

  const auto survey =
      DecodePortSurveyReply(agent.Handle(Encode(PortSurveyRequest{.nonce = 4})));
  ASSERT_TRUE(survey.has_value());
  EXPECT_EQ(survey->entries.size(), 1u);
}

// --- bus + controller --------------------------------------------------------------

TEST(Bus, LosslessByDefault) {
  ocs::PalomarSwitch ocs(55);
  OcsAgent agent(ocs);
  MessageBus bus(1);
  const auto reply = bus.RoundTrip(agent, Encode(TelemetryRequest{.nonce = 1}));
  EXPECT_FALSE(reply.empty());
  EXPECT_EQ(bus.frames_dropped(), 0u);
}

TEST(Bus, DropsAtConfiguredRate) {
  ocs::PalomarSwitch ocs(56);
  OcsAgent agent(ocs);
  MessageBus bus(2);
  bus.SetDropProbability(0.5);
  int lost = 0;
  for (int i = 0; i < 200; ++i) {
    if (bus.RoundTrip(agent, Encode(TelemetryRequest{.nonce = 1})).empty()) ++lost;
  }
  EXPECT_GT(lost, 100);  // two chances to drop per round trip
  EXPECT_LT(lost, 190);
}

TEST(Bus, CorruptionCaughtByCrc) {
  ocs::PalomarSwitch ocs(57);
  OcsAgent agent(ocs);
  MessageBus bus(3);
  bus.SetCorruptProbability(1.0);
  // Every frame is mangled; the CRC (or type check) rejects it and the
  // round trip yields nothing — but never a wrong decode.
  const auto reply = bus.RoundTrip(agent, Encode(TelemetryRequest{.nonce = 9}));
  EXPECT_TRUE(reply.empty());
  EXPECT_EQ(ocs.telemetry().reconfigurations, 0u);
}

TEST(Controller, AppliesTopologyAcrossAgents) {
  ocs::PalomarSwitch ocs_a(58), ocs_b(59);
  OcsAgent agent_a(ocs_a), agent_b(ocs_b);
  MessageBus bus(4);
  FabricController controller(bus);
  controller.Register(0, &agent_a);
  controller.Register(1, &agent_b);
  const std::map<int, std::map<int, int>> targets = {{0, {{0, 1}}}, {1, {{2, 3}, {4, 5}}}};
  const auto result = controller.ApplyTopology(targets);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(ocs_a.ConnectionCount(), 1);
  EXPECT_EQ(ocs_b.ConnectionCount(), 2);
  EXPECT_EQ(result.replies.at(1).established, 2u);
}

TEST(Controller, RetriesThroughLossyBus) {
  ocs::PalomarSwitch ocs(60);
  OcsAgent agent(ocs);
  MessageBus bus(5);
  bus.SetDropProbability(0.4);
  FabricController controller(bus, /*max_retries=*/20);
  controller.Register(0, &agent);
  const auto result = controller.ApplyTopology({{0, {{0, 1}}}});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(ocs.ConnectionCount(), 1);
  // The reconfiguration executed exactly once despite retries.
  EXPECT_EQ(ocs.telemetry().reconfigurations, 1u);
}

TEST(Controller, SurfacesAgentRejection) {
  ocs::PalomarSwitch ocs(61);
  OcsAgent agent(ocs);
  MessageBus bus(6);
  FabricController controller(bus);
  controller.Register(0, &agent);
  const auto result = controller.ApplyTopology({{0, {{0, 1}, {2, 1}}}});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("ocs 0"), std::string::npos);
}

TEST(Controller, FailsOnUnregisteredOcs) {
  MessageBus bus(7);
  FabricController controller(bus);
  const auto result = controller.ApplyTopology({{9, {{0, 1}}}});
  EXPECT_FALSE(result.ok);
}

TEST(Controller, RollsBackOnPartialFailure) {
  ocs::PalomarSwitch ocs_a(70), ocs_b(71);
  OcsAgent agent_a(ocs_a), agent_b(ocs_b);
  MessageBus bus(9);
  FabricController controller(bus);
  telemetry::Hub hub;
  controller.AttachTelemetry(&hub);
  controller.Register(0, &agent_a);
  controller.Register(1, &agent_b);
  // Seed ocs 0 with a pre-existing mapping — what the rollback must restore.
  ASSERT_TRUE(controller.ApplyTopology({{0, {{5, 6}}}}).ok);
  // ocs 1's target is non-bijective, so its agent rejects after ocs 0 has
  // already been reconfigured.
  const auto result =
      controller.ApplyTopology({{0, {{0, 1}}}, {1, {{0, 1}, {2, 1}}}});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.outcome, FabricTxnOutcome::kRolledBack);
  EXPECT_EQ(result.rolled_back, (std::vector<int>{0, 1}));
  EXPECT_TRUE(result.torn.empty());
  EXPECT_EQ(ocs_a.CurrentMapping(), (std::map<int, int>{{5, 6}}));
  EXPECT_TRUE(ocs_b.CurrentMapping().empty());
  EXPECT_TRUE(ocs_a.ValidateInvariants().ok());
  EXPECT_TRUE(ocs_b.ValidateInvariants().ok());
  EXPECT_EQ(hub.metrics().GetCounter("lightwave_ctrl_rollbacks_total").value(), 1u);
  EXPECT_EQ(hub.metrics().GetCounter("lightwave_ctrl_torn_transactions_total").value(),
            0u);
}

TEST(Controller, ReportsTornStateWhenRollbackPartitioned) {
  ocs::PalomarSwitch ocs_a(72), ocs_b(73);
  OcsAgent agent_a(ocs_a), agent_b(ocs_b);
  MessageBus bus(10);
  FabricControllerOptions options;
  options.max_retries = 2;
  FabricController controller(bus, options);
  telemetry::Hub hub;
  controller.AttachTelemetry(&hub);
  controller.Register(0, &agent_a);
  controller.Register(1, &agent_b);
  // Frame budget: snapshot 0 (2 frames), snapshot 1 (2), apply 0 (2),
  // apply 1 rejection (2), rollback of ocs 1 (2) — then the management
  // network partitions away, so the rollback of ocs 0 can never land.
  bus.PartitionAfter(10);
  const auto result =
      controller.ApplyTopology({{0, {{2, 3}}}, {1, {{0, 1}, {4, 1}}}});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.outcome, FabricTxnOutcome::kTorn);
  EXPECT_EQ(result.torn, (std::vector<int>{0}));
  EXPECT_EQ(result.rolled_back, (std::vector<int>{1}));
  EXPECT_GT(result.retries_used, 0);
  // The torn switch is left at the target (the partition ate the restore),
  // but it is *reported*, still bijective, and validator-clean.
  EXPECT_EQ(ocs_a.CurrentMapping(), (std::map<int, int>{{2, 3}}));
  EXPECT_TRUE(ocs_b.CurrentMapping().empty());
  EXPECT_TRUE(ocs_a.ValidateInvariants().ok());
  EXPECT_TRUE(ocs_b.ValidateInvariants().ok());
  EXPECT_EQ(hub.metrics().GetCounter("lightwave_ctrl_torn_transactions_total").value(),
            1u);
}

TEST(Controller, BackoffIsDeterministicGivenSeed) {
  const auto run = [](std::uint64_t backoff_seed) {
    ocs::PalomarSwitch ocs(74);
    OcsAgent agent(ocs);
    MessageBus bus(11);
    bus.SetDropProbability(0.4);
    FabricControllerOptions options;
    options.max_retries = 30;
    options.backoff_seed = backoff_seed;
    FabricController controller(bus, options);
    controller.Register(0, &agent);
    return controller.ApplyTopology({{0, {{0, 1}, {2, 3}}}});
  };
  const auto first = run(1);
  const auto second = run(1);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_GT(first.retries_used, 0);
  EXPECT_GT(first.backoff_us, 0.0);
  // Same seeds -> bit-identical retry count and backoff schedule.
  EXPECT_EQ(first.retries_used, second.retries_used);
  EXPECT_DOUBLE_EQ(first.backoff_us, second.backoff_us);
  // A different backoff seed keeps the loss pattern (bus seed unchanged)
  // but draws different jitter.
  const auto reseeded = run(2);
  EXPECT_EQ(reseeded.retries_used, first.retries_used);
  EXPECT_NE(reseeded.backoff_us, first.backoff_us);
}

TEST(Controller, CollectTelemetryReportsUnreachableAgents) {
  // Regression: exhausted agents used to vanish from the sweep with no
  // trace; now they land in `failed` and bump a counter.
  ocs::PalomarSwitch ocs_a(75), ocs_b(76);
  OcsAgent agent_a(ocs_a), agent_b(ocs_b);
  MessageBus bus(12);
  bus.SetDropProbability(1.0);
  FabricController controller(bus);
  telemetry::Hub hub;
  controller.AttachTelemetry(&hub);
  controller.Register(0, &agent_a);
  controller.Register(1, &agent_b);
  const auto sweep = controller.CollectTelemetry();
  EXPECT_TRUE(sweep.replies.empty());
  ASSERT_EQ(sweep.failed.size(), 2u);
  EXPECT_FALSE(sweep.failed.at(0).empty());
  EXPECT_FALSE(sweep.failed.at(1).empty());
  EXPECT_EQ(
      hub.metrics().GetCounter("lightwave_ctrl_telemetry_failures_total").value(), 2u);
}

TEST(Controller, BreakerOpensHalfOpensAndCloses) {
  ocs::PalomarSwitch ocs(77);
  OcsAgent agent(ocs);
  MessageBus bus(13);
  bus.SetDropProbability(1.0);
  FabricControllerOptions options;
  options.max_retries = 1;
  options.breaker_threshold = 3;
  options.breaker_cooldown = 2;
  FabricController controller(bus, options);
  telemetry::Hub hub;
  controller.AttachTelemetry(&hub);
  controller.Register(0, &agent);
  const std::map<int, std::map<int, int>> target = {{0, {{0, 1}}}};
  for (int i = 0; i < 3; ++i) {
    const auto result = controller.ApplyTopology(target);
    EXPECT_FALSE(result.ok);
    EXPECT_GT(result.retries_used, 0);
  }
  EXPECT_EQ(controller.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(hub.metrics().GetCounter("lightwave_ctrl_breaker_trips_total").value(), 1u);
  EXPECT_EQ(hub.metrics().GetGauge("lightwave_ctrl_agent_unhealthy").value(), 1.0);
  // Open: transactions fail fast without burning the retry budget.
  auto fast = controller.ApplyTopology(target);
  EXPECT_FALSE(fast.ok);
  EXPECT_EQ(fast.retries_used, 0);
  EXPECT_NE(fast.error.find("circuit breaker open"), std::string::npos);
  EXPECT_EQ(controller.breaker_state(0), BreakerState::kOpen);
  fast = controller.ApplyTopology(target);
  EXPECT_FALSE(fast.ok);
  EXPECT_EQ(controller.breaker_state(0), BreakerState::kHalfOpen);
  // A failed half-open probe re-opens immediately (no three-strike grace).
  const auto probe_fail = controller.ApplyTopology(target);
  EXPECT_FALSE(probe_fail.ok);
  EXPECT_GT(probe_fail.retries_used, 0);
  EXPECT_EQ(controller.breaker_state(0), BreakerState::kOpen);
  // Heal the bus; after the cooldown the next probe succeeds and closes.
  bus.SetDropProbability(0.0);
  (void)controller.ApplyTopology(target);  // cooldown 2 -> 1, fails fast
  (void)controller.ApplyTopology(target);  // cooldown 1 -> 0, half-open
  const auto recovered = controller.ApplyTopology(target);
  EXPECT_TRUE(recovered.ok) << recovered.error;
  EXPECT_EQ(controller.breaker_state(0), BreakerState::kClosed);
  EXPECT_EQ(hub.metrics().GetGauge("lightwave_ctrl_agent_unhealthy").value(), 0.0);
}

TEST(Controller, CollectsTelemetryFromAll) {
  ocs::PalomarSwitch ocs_a(62), ocs_b(63);
  (void)ocs_a.Connect(0, 1);
  OcsAgent agent_a(ocs_a), agent_b(ocs_b);
  MessageBus bus(8);
  FabricController controller(bus);
  controller.Register(0, &agent_a);
  controller.Register(1, &agent_b);
  const auto telemetry = controller.CollectTelemetry();
  ASSERT_EQ(telemetry.replies.size(), 2u);
  EXPECT_TRUE(telemetry.failed.empty());
  EXPECT_EQ(telemetry.replies.at(0).connects, 1u);
  EXPECT_EQ(telemetry.replies.at(1).connects, 0u);
}

}  // namespace
}  // namespace lightwave::ctrl
