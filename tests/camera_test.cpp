// Tests for the camera monitor path: spot rendering, centroid extraction
// accuracy, calibration round-trip, failure on lost spots, and closed-loop
// alignment driven by the real image pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "ocs/alignment.h"
#include "ocs/camera.h"
#include "ocs/mems.h"

namespace lightwave::ocs {
namespace {

TEST(Camera, RenderedSpotCarriesEnergy) {
  common::Rng rng(1);
  const CameraSpec spec;
  const auto image = RenderSpot(spec, 0.0, 0.0, rng);
  EXPECT_EQ(image.width(), spec.roi_pixels);
  // Spot energy ~ 2*pi*sigma^2*peak plus background.
  const double expected_background = spec.background * spec.roi_pixels * spec.roi_pixels;
  EXPECT_GT(image.Sum(), expected_background * 1.5);
}

TEST(Camera, CentroidAccurateOnCenteredSpot) {
  common::Rng rng(2);
  const CameraSpec spec;
  const auto image = RenderSpot(spec, 0.0, 0.0, rng);
  const auto centroid = ExtractCentroid(spec, image);
  ASSERT_TRUE(centroid.has_value());
  EXPECT_NEAR(centroid->x_pixels, 0.0, 0.15);
  EXPECT_NEAR(centroid->y_pixels, 0.0, 0.15);
}

TEST(Camera, MeasurementRoundTripAccuracy) {
  common::Rng rng(3);
  const CameraSpec spec;
  // Errors well inside the ROI: measured angle within ~3% + centroid noise.
  for (double error : {1e-4, 5e-4, -8e-4, 1.5e-3}) {
    double mx = 0.0, my = 0.0;
    ASSERT_TRUE(MeasurePointingError(spec, error, -error / 2.0, rng, &mx, &my)) << error;
    EXPECT_NEAR(mx, error, std::abs(error) * 0.1 + 3e-5) << error;
    EXPECT_NEAR(my, -error / 2.0, std::abs(error) * 0.1 + 3e-5) << error;
  }
}

TEST(Camera, CentroidPrecisionSubMicroradian) {
  // Repeated measurements of the same small error: the rms spread is the
  // centroid noise, far below the open-loop actuation error.
  common::Rng rng(4);
  const CameraSpec spec;
  double sum = 0.0, sum_sq = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    double mx = 0.0, my = 0.0;
    ASSERT_TRUE(MeasurePointingError(spec, 2e-4, 0.0, rng, &mx, &my));
    sum += mx;
    sum_sq += mx * mx;
  }
  const double mean = sum / trials;
  const double std = std::sqrt(std::max(0.0, sum_sq / trials - mean * mean));
  EXPECT_LT(std, 2e-5);  // comfortably below kOpenLoopErrorStd = 2e-3
}

TEST(Camera, SpotOutsideRoiNotFound) {
  common::Rng rng(5);
  const CameraSpec spec;  // 16 px ROI: +-8 px ~ +-2e-3 rad
  double mx = 0.0, my = 0.0;
  EXPECT_FALSE(MeasurePointingError(spec, 0.02, 0.0, rng, &mx, &my));
}

TEST(Camera, DimSpotNotFound) {
  common::Rng rng(6);
  CameraSpec spec;
  spec.peak_signal = 1.0;  // laser effectively off
  const auto image = RenderSpot(spec, 0.0, 0.0, rng);
  EXPECT_FALSE(ExtractCentroid(spec, image).has_value());
}

TEST(Camera, ClosedLoopAlignmentThroughImagePipeline) {
  // Full loop with the real image processing: converges to the same regime
  // as the abstract fast path.
  common::Rng rng(7);
  MemsArray array(rng);
  array.Actuate(rng, 11, 0.004, -0.003);
  AlignmentConfig config;
  config.use_camera = true;
  const AlignmentController controller(config);
  const auto result = controller.Align(rng, array, 11);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(array.PointingError(11), 1e-4);
}

TEST(Camera, AcquisitionFallbackRecoversFarSpot) {
  // Open-loop error far outside the tracking ROI: the wide-field
  // acquisition fallback still walks the mirror in.
  common::Rng rng(8);
  MemsArray array(rng);
  auto& m = array.mirror(array.PhysicalMirror(3));
  array.Actuate(rng, 3, 0.0, 0.0);
  m.actual_x = 0.03;  // ~15x the ROI half-width
  m.actual_y = -0.02;
  AlignmentConfig config;
  config.use_camera = true;
  const AlignmentController controller(config);
  const auto result = controller.Align(rng, array, 3);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(array.PointingError(3), 1e-4);
}

TEST(Camera, FastPathNoiseMatchesCameraPipeline) {
  // The abstract fast path's calibrated noise should land final residuals in
  // the same decade as the camera pipeline.
  common::Rng rng_cam(9), rng_fast(9);
  MemsArray a(rng_cam), b(rng_fast);
  a.Actuate(rng_cam, 0, 0.002, 0.001);
  b.Actuate(rng_fast, 0, 0.002, 0.001);
  AlignmentConfig with_camera;
  with_camera.use_camera = true;
  AlignmentConfig fast;
  fast.use_camera = false;
  (void)AlignmentController(with_camera).Align(rng_cam, a, 0);
  (void)AlignmentController(fast).Align(rng_fast, b, 0);
  EXPECT_LT(a.PointingError(0), 1e-4);
  EXPECT_LT(b.PointingError(0), 1e-4);
}

}  // namespace
}  // namespace lightwave::ocs
