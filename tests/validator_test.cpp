// Negative tests for the structural validators: each one seeds a specific
// corruption through a test-only hook (or a deliberately one-sided
// operation) and asserts the validator reports it — a validator that cannot
// catch seeded corruption is dead code. The positive direction (healthy
// state validates clean, boundaries stay silent) is asserted alongside.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "core/dcn_fabric.h"
#include "core/scheduler.h"
#include "fec/gf.h"
#include "ocs/palomar.h"
#include "sim/event.h"
#include "tpu/superpod.h"

namespace lightwave {
namespace {

/// Records contract failures without aborting, with validation mode forced
/// on so the transaction-boundary gates actually run.
class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest()
      : validation_(true), guard_([this](const common::CheckFailure& f) {
          failures_.push_back(common::FormatCheckFailure(f));
        }) {}

  bool Reported(const std::string& needle) const {
    for (const auto& f : failures_) {
      if (f.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  common::ScopedValidation validation_;
  std::vector<std::string> failures_;
  common::ScopedCheckHandler guard_;
};

// --- Palomar bijectivity + dead-mirror consistency ---------------------------

TEST_F(ValidatorTest, PalomarHealthyStateValidatesClean) {
  ocs::PalomarSwitch ocs(42);
  ASSERT_TRUE(ocs.Connect(0, 5).ok());
  ASSERT_TRUE(ocs.Connect(1, 4).ok());
  ASSERT_TRUE(ocs.Reconfigure({{0, 5}, {2, 3}}).ok());
  EXPECT_TRUE(ocs.ValidateInvariants().ok());
  EXPECT_TRUE(failures_.empty());
}

TEST_F(ValidatorTest, PalomarDetectsCorruptedMapping) {
  ocs::PalomarSwitch ocs(42);
  ASSERT_TRUE(ocs.Connect(0, 5).ok());
  // Redirect the established N->S entry without touching S->N: the maps
  // stay the same size but are no longer inverse.
  ocs.TestOnlyCorruptMapping(0, 9);
  const auto status = ocs.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("inverse"), std::string::npos);
  // The next transaction boundary fires the failure handler.
  (void)ocs.Disconnect(0);
  EXPECT_TRUE(Reported("after Disconnect"));
}

TEST_F(ValidatorTest, PalomarDetectsConnectionRidingDeadMirror) {
  ocs::PalomarSwitch ocs(42);
  ASSERT_TRUE(ocs.Connect(3, 8).ok());
  ocs.TestOnlyKillPortUnderConnection(/*north_side=*/true, /*logical_port=*/3);
  const auto status = ocs.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("dead mirror"), std::string::npos);
}

// --- EventQueue timestamp monotonicity ---------------------------------------

TEST_F(ValidatorTest, EventQueueRejectsSchedulingIntoThePast) {
  sim::EventQueue queue;
  queue.At(5.0, [] {});
  queue.Run();
  ASSERT_DOUBLE_EQ(queue.now(), 5.0);
  queue.At(1.0, [] {});  // out-of-order event
  EXPECT_TRUE(Reported("event scheduled in the past"));
  queue.After(-0.5, [] {});
  EXPECT_TRUE(Reported("negative delay"));
}

// --- Scheduler slice accounting ----------------------------------------------

TEST_F(ValidatorTest, SchedulerDetectsDoubleBookedSlice) {
  tpu::Superpod pod(7, /*cubes=*/8, /*ocs_per_dim=*/2);
  core::SliceScheduler scheduler(pod, core::AllocationPolicy::kReconfigurable);
  auto slice = scheduler.Allocate(tpu::SliceShape{2, 2, 1});
  ASSERT_TRUE(slice.ok());
  EXPECT_TRUE(scheduler.ValidateInvariants().ok());
  EXPECT_TRUE(failures_.empty());

  pod.TestOnlyDuplicateSliceRecord(slice.value());
  const auto status = scheduler.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("double-booked"), std::string::npos);
}

TEST_F(ValidatorTest, SchedulerDetectsCorruptedOwnershipIndex) {
  tpu::Superpod pod(7, 8, 2);
  core::SliceScheduler scheduler(pod, core::AllocationPolicy::kReconfigurable);
  auto slice = scheduler.Allocate(tpu::SliceShape{1, 1, 2});
  ASSERT_TRUE(slice.ok());

  // Phantom ownership entry for a cube no slice owns.
  pod.TestOnlySetCubeOwner(7, 999);
  const auto status = scheduler.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("ownership index"), std::string::npos);
  // The next transaction boundary fires the failure handler.
  (void)scheduler.Release(slice.value());
  EXPECT_TRUE(Reported("after Release"));
}

// --- DcnFabric link-state symmetry -------------------------------------------

TEST_F(ValidatorTest, DcnFabricDetectsOneSidedTrunk) {
  core::DcnFabric fabric(/*seed=*/77, /*max_blocks=*/4, /*ocs_count=*/2,
                         /*link_gbps=*/400.0);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(fabric.AddBlock(optics::Cwdm4Duplex()).ok());
  ASSERT_TRUE(fabric.ApplyTopology(sim::UniformTraffic(4, 1000.0)).ok());
  EXPECT_TRUE(fabric.ValidateInvariants().ok());
  EXPECT_TRUE(failures_.empty());

  // Tear down one direction of an installed trunk, leaving its reverse: the
  // per-switch state is still self-consistent (Palomar stays happy), but
  // the fabric's link state is no longer symmetric.
  bool corrupted = false;
  for (int c = 0; c < fabric.ocs_count() && !corrupted; ++c) {
    const auto conns = fabric.ocs(c).Connections();
    if (!conns.empty()) {
      ASSERT_TRUE(fabric.ocs(c).Disconnect(conns.front().north).ok());
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "topology installed no trunks to corrupt";
  const auto status = fabric.ValidateInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("no reverse direction"), std::string::npos);
}

// --- GF(2^10) table self-check -----------------------------------------------

TEST_F(ValidatorTest, GfInstanceSelfChecksClean) {
  EXPECT_TRUE(fec::Gf1024::Instance().SelfCheck().ok());
}

TEST_F(ValidatorTest, GfDetectsCorruptedExpTable) {
  auto exp = fec::Gf1024::Instance().exp_table();
  const auto& log = fec::Gf1024::Instance().log_table();
  exp[5] = static_cast<fec::Gf1024::Element>(exp[5] ^ 1u);  // single bit flip
  const auto status = fec::Gf1024::CheckTables(exp, log);
  ASSERT_FALSE(status.ok());
}

TEST_F(ValidatorTest, GfDetectsCorruptedLogTable) {
  const auto& exp = fec::Gf1024::Instance().exp_table();
  auto log = fec::Gf1024::Instance().log_table();
  log[exp[10]] = 11;  // no longer the inverse of exp
  const auto status = fec::Gf1024::CheckTables(exp, log);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("log[exp["), std::string::npos);
}

}  // namespace
}  // namespace lightwave
