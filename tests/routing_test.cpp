// Tests for chip-level dimension-ordered torus routing: correctness of the
// shortest-path property, wraparound, electrical/optical hop classification,
// and load analysis.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tpu/routing.h"

namespace lightwave::tpu {
namespace {

TEST(Routing, TrivialRouteIsEmpty) {
  TorusRouter router(SliceShape{2, 2, 2});
  const SliceChipCoord p{3, 5, 7};
  const auto route = router.ComputeRoute(p, p);
  EXPECT_TRUE(route.hops.empty());
  EXPECT_EQ(route.latency_us, 0.0);
}

TEST(Routing, RouteEndsAtDestinationAndMatchesDistance) {
  TorusRouter router(SliceShape{2, 4, 8});
  const SliceChipCoord src{0, 1, 2};
  const SliceChipCoord dst{7, 14, 30};
  const auto route = router.ComputeRoute(src, dst);
  ASSERT_FALSE(route.hops.empty());
  EXPECT_EQ(route.hops.back().to, dst);
  EXPECT_EQ(static_cast<int>(route.hops.size()), router.Distance(src, dst));
}

TEST(Routing, TakesShorterWayAround) {
  TorusRouter router(SliceShape{4, 1, 1});  // 16 chips in x
  // 0 -> 13: going - (3 hops) beats + (13 hops).
  const auto route = router.ComputeRoute({0, 0, 0}, {13, 0, 0});
  EXPECT_EQ(route.hops.size(), 3u);
  EXPECT_EQ(route.hops.front().direction, -1);
}

TEST(Routing, DimensionOrderXThenYThenZ) {
  TorusRouter router(SliceShape{2, 2, 2});
  const auto route = router.ComputeRoute({0, 0, 0}, {1, 1, 1});
  ASSERT_EQ(route.hops.size(), 3u);
  EXPECT_EQ(route.hops[0].dim, Dim::kX);
  EXPECT_EQ(route.hops[1].dim, Dim::kY);
  EXPECT_EQ(route.hops[2].dim, Dim::kZ);
}

TEST(Routing, IntraCubeHopsAreElectrical) {
  TorusRouter router(SliceShape{2, 2, 2});
  // 0 -> 3 in x stays inside the first cube: all electrical.
  const auto route = router.ComputeRoute({0, 0, 0}, {3, 0, 0});
  EXPECT_EQ(route.electrical_hops, 3);
  EXPECT_EQ(route.optical_hops, 0);
}

TEST(Routing, CubeBoundaryHopIsOptical) {
  TorusRouter router(SliceShape{2, 2, 2});
  // 3 -> 4 in x crosses the cube boundary.
  const auto route = router.ComputeRoute({3, 0, 0}, {4, 0, 0});
  ASSERT_EQ(route.hops.size(), 1u);
  EXPECT_TRUE(route.hops[0].optical);
}

TEST(Routing, SingleCubeWraparoundIsOptical) {
  // A 1-cube dimension wraps through the OCS self-loop.
  TorusRouter router(SliceShape{1, 1, 1});
  const auto route = router.ComputeRoute({3, 0, 0}, {0, 0, 0});
  ASSERT_EQ(route.hops.size(), 1u);  // wrap 3 -> 0 is one hop
  EXPECT_TRUE(route.hops[0].optical);
}

TEST(Routing, NegativeDirectionBoundaryIsOptical) {
  TorusRouter router(SliceShape{2, 1, 1});
  // 4 -> 3 in x leaves the bottom of cube 1.
  const auto route = router.ComputeRoute({4, 0, 0}, {3, 0, 0});
  ASSERT_EQ(route.hops.size(), 1u);
  EXPECT_EQ(route.hops[0].direction, -1);
  EXPECT_TRUE(route.hops[0].optical);
}

TEST(Routing, LatencyAccumulatesByHopClass) {
  IciLinkSpec spec;
  TorusRouter router(SliceShape{2, 1, 1}, spec);
  const auto route = router.ComputeRoute({0, 0, 0}, {4, 0, 0});
  // Hops 0->1->2->3 electrical, 3->4 optical.
  EXPECT_EQ(route.electrical_hops, 3);
  EXPECT_EQ(route.optical_hops, 1);
  EXPECT_NEAR(route.latency_us, 3 * spec.electrical_hop_us + spec.optical_hop_us, 1e-12);
}

TEST(Routing, DiameterAndMeanDistance) {
  TorusRouter router(SliceShape{4, 4, 4});  // 16x16x16
  EXPECT_EQ(router.DiameterHops(), 24);
  EXPECT_NEAR(router.MeanDistanceHops(), 12.0, 1e-9);  // 3 * 16/4
}

TEST(Routing, DistanceSymmetric) {
  TorusRouter router(SliceShape{2, 4, 8});
  const SliceChipCoord a{1, 10, 3};
  const SliceChipCoord b{6, 2, 29};
  EXPECT_EQ(router.Distance(a, b), router.Distance(b, a));
}

TEST(Routing, LoadAnalysisCountsAllHops) {
  TorusRouter router(SliceShape{2, 2, 2});
  std::vector<std::pair<SliceChipCoord, SliceChipCoord>> pairs = {
      {{0, 0, 0}, {4, 0, 0}},
      {{0, 0, 0}, {0, 4, 0}},
      {{1, 1, 1}, {1, 1, 1}},
  };
  const auto load = router.AnalyzeLoad(pairs);
  EXPECT_EQ(load.total_hops, 8);  // 4 + 4 + 0
  EXPECT_GE(load.peak_electrical, 1);
  EXPECT_GE(load.peak_optical, 1);
}

TEST(Routing, NearestNeighborTrafficBalanced) {
  // +x neighbour shifts load every +x link exactly once.
  TorusRouter router(SliceShape{2, 2, 2});
  std::vector<std::pair<SliceChipCoord, SliceChipCoord>> pairs;
  const auto dims = SliceChipDims(SliceShape{2, 2, 2});
  for (int x = 0; x < dims.x; ++x) {
    for (int y = 0; y < dims.y; ++y) {
      for (int z = 0; z < dims.z; ++z) {
        pairs.push_back({{x, y, z}, {(x + 1) % dims.x, y, z}});
      }
    }
  }
  const auto load = router.AnalyzeLoad(pairs);
  EXPECT_EQ(load.total_hops, static_cast<std::int64_t>(pairs.size()));
  EXPECT_EQ(load.peak_electrical, 1);
  EXPECT_EQ(load.peak_optical, 1);
  EXPECT_NEAR(load.mean_load, 1.0, 1e-12);
}

class RoutingShapeSweep : public ::testing::TestWithParam<SliceShape> {};

TEST_P(RoutingShapeSweep, RandomRoutesMatchDistance) {
  TorusRouter router(GetParam());
  common::Rng rng(17);
  const auto dims = SliceChipDims(GetParam());
  for (int i = 0; i < 200; ++i) {
    const SliceChipCoord src{
        static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(dims.x))),
        static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(dims.y))),
        static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(dims.z)))};
    const SliceChipCoord dst{
        static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(dims.x))),
        static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(dims.y))),
        static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(dims.z)))};
    const auto route = router.ComputeRoute(src, dst);
    EXPECT_EQ(static_cast<int>(route.hops.size()), router.Distance(src, dst));
    if (!route.hops.empty()) EXPECT_EQ(route.hops.back().to, dst);
    EXPECT_LE(static_cast<int>(route.hops.size()), router.DiameterHops());
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RoutingShapeSweep,
                         ::testing::Values(SliceShape{1, 1, 1}, SliceShape{1, 2, 4},
                                           SliceShape{4, 4, 4}, SliceShape{1, 1, 16}),
                         [](const auto& info) {
                           std::string s = info.param.ToCubeString();
                           for (auto& c : s) {
                             if (c == 'x') c = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace lightwave::tpu
