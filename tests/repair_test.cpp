// Tests for the telemetry anomaly detector and the pod-wide proactive link
// repair loop (spare-port re-patching).
#include <gtest/gtest.h>

#include "core/fabric_manager.h"
#include "ctrl/anomaly.h"
#include "optics/transceiver.h"
#include "phy/ber_model.h"

namespace lightwave {
namespace {

using ctrl::Anomaly;
using ctrl::AnomalyDetector;
using ctrl::AnomalyKind;
using ctrl::LinkKey;

// --- anomaly detector -----------------------------------------------------------

TEST(AnomalyTest, HealthyLinkNeverFlagged) {
  AnomalyDetector detector;
  const LinkKey link{0, 5};
  for (int i = 0; i < 20; ++i) detector.Observe(link, 1.7 + 0.01 * (i % 3), 1e-8);
  EXPECT_FALSE(detector.IsFlagged(link));
  EXPECT_TRUE(detector.Flagged().empty());
}

TEST(AnomalyTest, LossDriftFlagged) {
  AnomalyDetector detector;
  const LinkKey link{1, 9};
  // Commissioning at 1.6 dB, then a slow creep to 2.5 dB (connector
  // contamination).
  for (int i = 0; i < 3; ++i) detector.Observe(link, 1.6, 1e-8);
  for (int i = 0; i < 20; ++i) detector.Observe(link, 2.5, 1e-8);
  ASSERT_TRUE(detector.IsFlagged(link));
  const auto flagged = detector.Flagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].kind, AnomalyKind::kLossDrift);
  EXPECT_NEAR(flagged[0].baseline, 1.6, 1e-9);
  EXPECT_GT(flagged[0].value, 2.1);
}

TEST(AnomalyTest, EwmaSmoothsSingleSampleSpike) {
  AnomalyDetector detector;
  const LinkKey link{2, 3};
  for (int i = 0; i < 3; ++i) detector.Observe(link, 1.6, 1e-8);
  detector.Observe(link, 2.6, 1e-8);  // one bad sample: EWMA moves 0.3
  EXPECT_FALSE(detector.IsFlagged(link));
  detector.Observe(link, 1.6, 1e-8);  // recovers
  EXPECT_FALSE(detector.IsFlagged(link));
}

TEST(AnomalyTest, AbsoluteSpecViolation) {
  AnomalyDetector detector;
  const LinkKey link{3, 0};
  for (int i = 0; i < 10; ++i) detector.Observe(link, 3.8, 1e-8);
  const auto flagged = detector.Flagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].kind, AnomalyKind::kLossSpec);
}

TEST(AnomalyTest, BerTakesPriority) {
  AnomalyDetector detector;
  const LinkKey link{4, 7};
  for (int i = 0; i < 10; ++i) detector.Observe(link, 3.8, 5e-3);
  const auto flagged = detector.Flagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].kind, AnomalyKind::kBerThreshold);
  EXPECT_NEAR(flagged[0].value, 5e-3, 1e-12);
}

TEST(AnomalyTest, ResetRebaselinesAfterRepair) {
  AnomalyDetector detector;
  const LinkKey link{5, 1};
  for (int i = 0; i < 3; ++i) detector.Observe(link, 1.5, 1e-8);
  for (int i = 0; i < 20; ++i) detector.Observe(link, 2.4, 1e-8);
  ASSERT_TRUE(detector.IsFlagged(link));
  detector.ResetLink(link);
  EXPECT_FALSE(detector.IsFlagged(link));
  // New path after re-patch: commissioning restarts at the new loss.
  for (int i = 0; i < 5; ++i) detector.Observe(link, 1.9, 1e-8);
  EXPECT_FALSE(detector.IsFlagged(link));
}

TEST(AnomalyTest, TracksManyLinksIndependently) {
  AnomalyDetector detector;
  for (int ocs = 0; ocs < 4; ++ocs) {
    for (int port = 0; port < 8; ++port) {
      for (int i = 0; i < 4; ++i) {
        detector.Observe(LinkKey{ocs, port}, ocs == 2 && port == 5 ? 4.0 : 1.7, 1e-8);
      }
    }
  }
  EXPECT_EQ(detector.tracked_links(), 32);
  const auto flagged = detector.Flagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].link, (LinkKey{2, 5}));
}

// --- fabric repair loop ------------------------------------------------------------

TEST(RepairLoop, SurveyIsStableAcrossCalls) {
  core::FabricManagerConfig config;
  config.cubes = 8;
  config.ocs_per_dim = 2;
  core::FabricManager manager(config);
  ASSERT_TRUE(manager.CreateSlice(tpu::SliceShape{2, 2, 2}).ok());
  const auto a = manager.SurveyLinkQuality(optics::Cwdm4Bidi());
  const auto b = manager.SurveyLinkQuality(optics::Cwdm4Bidi());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].pre_fec_ber, b[i].pre_fec_ber) << i;
    EXPECT_DOUBLE_EQ(a[i].margin_db, b[i].margin_db) << i;
  }
}

TEST(RepairLoop, FullPodEndsInBudget) {
  core::FabricManager manager;  // production pod
  ASSERT_TRUE(manager.CreateSlice(tpu::SliceShape{4, 4, 4}).ok());
  // Qualify with a tight margin bar; the loop re-patches the loss tail.
  const auto summary =
      manager.RepairOutOfBudgetLinks(optics::Cwdm4Bidi(), {}, /*min_margin_db=*/0.2);
  EXPECT_EQ(summary.still_out_of_budget, 0);
  // The final population is clean.
  for (const auto& r : manager.SurveyLinkQuality(optics::Cwdm4Bidi())) {
    EXPECT_LT(r.pre_fec_ber, phy::kKp4BerThreshold);
  }
}

TEST(RepairLoop, RepairPreservesConnectivity) {
  core::FabricManagerConfig config;
  config.seed = 5;
  core::FabricManager manager(config);
  auto slice = manager.CreateSlice(tpu::SliceShape{4, 4, 4});
  ASSERT_TRUE(slice.ok());
  const auto before = manager.pod().slices().at(slice.value()).connections;
  (void)manager.RepairOutOfBudgetLinks(optics::Cwdm4Bidi(), {}, 0.2);
  // Every logical connection still installed after any re-patching.
  for (const auto& [ocs_id, conns] : before) {
    for (const auto& [n, s] : conns) {
      ASSERT_TRUE(manager.pod().ocs(ocs_id).ConnectionOn(n).has_value());
      EXPECT_EQ(manager.pod().ocs(ocs_id).ConnectionOn(n)->south, s);
    }
  }
}

TEST(RepairLoop, AnomalyDetectorDrivenWorkflow) {
  // End-to-end: periodic surveys feed the detector; a degrading path gets
  // flagged; the spare-port re-patch clears it.
  core::FabricManagerConfig config;
  config.cubes = 8;
  config.ocs_per_dim = 2;
  core::FabricManager manager(config);
  ASSERT_TRUE(manager.CreateSlice(tpu::SliceShape{2, 2, 2}).ok());

  AnomalyDetector detector;
  auto feed = [&] {
    for (const auto& r : manager.SurveyLinkQuality(optics::Cwdm4Bidi())) {
      detector.Observe(LinkKey{r.ocs_id, r.north}, r.insertion_loss_db, r.pre_fec_ber);
    }
  };
  for (int i = 0; i < 5; ++i) feed();
  const auto baseline_flags = detector.Flagged().size();

  // Degrade one path hard: kill mirrors until the spare mirror pool thins;
  // each spare swap leaves the path re-aligned but we simulate a bad splice
  // by injecting loss through repeated mirror failures. Simplest reliable
  // degradation: fail the port and re-patch.
  auto& sw = manager.pod().ocs(0);
  const int victim = sw.Connections().front().north;
  ASSERT_TRUE(sw.RemapToSpare(true, victim).ok());  // path changed
  detector.ResetLink(LinkKey{0, victim});           // re-baseline the new path
  for (int i = 0; i < 5; ++i) feed();
  // No new persistent anomalies: the repair workflow converges.
  EXPECT_LE(detector.Flagged().size(), baseline_flags + 1);
}

}  // namespace
}  // namespace lightwave
