// Crash-recoverable, shard-embeddable fleet service engine. Slice requests
// flow through a bounded queue (backpressure: a full queue rejects, the
// client retries later), and every dequeued command is journaled BEFORE it
// is applied — write-ahead order is the entire durability argument:
//
//   crash before the append  -> the command was never acknowledged as
//                               committed; the client resubmits it;
//   crash after the append   -> the command is durable; recovery re-applies
//                               it exactly once, keyed on its journal
//                               sequence number.
//
// The service object itself is volatile — a simulated crash (armed through
// ctrl::FaultInjector's crash points) abandons it, and a fresh service over
// the SAME two Storage devices recovers: load the snapshot, replay the WAL
// suffix, resume the stream from the committed frontier. Periodic snapshots
// bound replay work; each snapshot compacts the log prefix it covers.
//
// PR 6 made the engine multi-tenant and batch-oriented so fleet::Shard can
// embed one per shard:
//   - every command belongs to a tenant; duplicate/gap detection and the
//     resubmission frontier are per tenant;
//   - ProcessBatch journals a whole dequeued batch through one group-commit
//     Wal::AppendBatch (ProcessOne is the batch-of-1 special case);
//   - the journal stage (JournalBatch) and apply stage (ApplyJournaled) are
//     exposed separately so a pipelined shard can run them on two threads —
//     in pipelined mode the apply thread never touches the WAL: snapshots
//     publish a compaction floor the journal thread honors on its next
//     batch;
//   - cross-shard transactions journal kPrepare/kCommitTxn/kAbortTxn, with
//     reservations and decisions part of the durable state, so a router can
//     resolve in-doubt transactions deterministically after any crash.
//
// Concurrency contract: this class holds NO locks of its own. The stage
// split above is a data-partition argument (journal-thread state vs
// apply-thread state, with the compaction floor as the one atomic handoff),
// not a mutex discipline — the owning fleet::Shard serializes everything
// else with its annotated lw::Mutex set (see common/sync.h and DESIGN.md
// §5.5 for the process-wide lock hierarchy).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/scheduler.h"
#include "ctrl/fault_injector.h"
#include "journal/replay.h"
#include "journal/snapshot.h"
#include "journal/wal.h"
#include "svc/command.h"
#include "svc/request_stream.h"

namespace lightwave::telemetry {
class Counter;
class Gauge;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::ctrl {
class FabricController;
}  // namespace lightwave::ctrl

namespace lightwave::svc {

struct FleetServiceOptions {
  /// Bounded admission queue; a full queue rejects with kResourceExhausted.
  std::size_t queue_capacity = 16;
  /// Commands applied between snapshots (0 disables snapshotting; recovery
  /// then replays the whole log).
  std::uint64_t snapshot_interval = 64;
  /// Bench knob: false skips the append, measuring the journaling overhead
  /// against the same apply path. Crash recovery is meaningless without it.
  bool journaling = true;
  /// Moves WAL compaction off the serve path entirely: snapshots only
  /// record the compaction floor, and the Wal's background thread rewrites
  /// the log (atomic rename over FileStorage — the old log wins until the
  /// rename) while appends continue. Started after Recover(); off by
  /// default so the crash matrix keeps its single-threaded determinism.
  bool background_compaction = false;
};

struct FleetServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t duplicate_acks = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t processed = 0;
  /// Group-commit batches journaled (ProcessOne counts batches of 1).
  std::uint64_t batches = 0;
  std::uint64_t admitted = 0;
  std::uint64_t resized = 0;
  std::uint64_t released = 0;
  /// Commands journaled and applied whose outcome was a deterministic
  /// rejection (no capacity, unknown job, duplicate job id, bad txn).
  std::uint64_t rejected_apply = 0;
  /// Cross-shard transaction verbs applied.
  std::uint64_t prepared = 0;
  std::uint64_t committed_txns = 0;
  std::uint64_t aborted_txns = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t crashes = 0;
  std::size_t queue_peak = 0;
};

/// A phase-1 reservation held for an undecided cross-shard transaction.
struct PreparedTxn {
  std::uint32_t tenant_id = 0;
  std::uint64_t job_id = 0;
  /// Valid only when `vote_yes`; the tentatively allocated slice.
  tpu::SliceId slice_id = 0;
  /// false = the shard could not place the shape (recorded so replay
  /// reproduces the vote).
  bool vote_yes = false;
};

enum class TxnDecision : std::uint8_t { kCommitted = 1, kAborted = 2 };

/// Submit-side verdict on a command id against its tenant's frontier.
enum class AdmitCheck { kAccept, kDuplicate, kGap };

class FleetService {
 public:
  /// The pod and the two storages outlive the service. `wal_storage` and
  /// `snapshot_storage` are the durable media a successor service recovers
  /// from; everything else dies with this object.
  FleetService(tpu::Superpod& pod, core::AllocationPolicy policy,
               journal::Storage& wal_storage, journal::Storage& snapshot_storage,
               FleetServiceOptions options = {});

  /// Rebuilds state = snapshot + WAL suffix. Call exactly once, before
  /// serving (a fresh deployment recovers to the empty state). Returns what
  /// replay found; fails on corrupt snapshot/command bytes.
  common::Result<journal::RecoveryStats> Recover();

  /// Queue front-end. Duplicates below the tenant's committed frontier are
  /// acknowledged OK without re-enqueueing (idempotent resubmission); a gap
  /// above the tenant's expected next id is kInvalidArgument; a full queue
  /// is kResourceExhausted.
  common::Status Submit(const SliceCommand& cmd);

  /// Dequeues and applies one command (journaling it first). Returns false
  /// when the queue is empty or a crash point fired — check crashed().
  bool ProcessOne();

  /// Group commit: dequeues up to `max_commands`, journals them all through
  /// ONE Wal::AppendBatch, then applies them in order. Crash points:
  /// kPreAppend and kPostAppendPreApply fire once per batch (bracketing the
  /// append), kMidApply once per applied command. Returns the number of
  /// commands applied before any crash.
  std::size_t ProcessBatch(std::size_t max_commands);

  // --- pipelined-shard stage API (fleet::Shard) -----------------------------
  //
  // A pipelined shard calls JournalBatch from its journal thread and
  // ApplyJournaled from its apply thread; the two touch disjoint state
  // (WAL + pending frontiers vs scheduler + committed frontiers). Call
  // SetPipelined(true) before starting the threads so snapshots publish
  // compaction work to the journal thread instead of compacting inline.

  /// Submit-side check of `cmd` against its tenant's pending frontier
  /// (committed frontier + everything already accepted but not yet applied).
  AdmitCheck CheckPending(const SliceCommand& cmd) const;

  /// Journal stage: group-appends the batch (which must be per-tenant dense
  /// against the pending frontiers) and advances them. Returns the first
  /// record's sequence number. With journaling off, appends nothing and
  /// returns 0 — ApplyJournaled(first_seq == 0) then leaves applied_seq()
  /// untouched.
  common::Result<std::uint64_t> JournalBatch(const std::vector<SliceCommand>& batch);

  /// Apply stage: applies a journaled batch, advancing the per-tenant
  /// committed frontiers and (when first_seq != 0) applied_seq. Takes the
  /// periodic snapshot when the interval elapses. Returns commands applied
  /// before any crash.
  std::size_t ApplyJournaled(const std::vector<SliceCommand>& batch,
                             std::uint64_t first_seq);

  /// Pipelined mode: snapshots (apply thread) publish the compaction floor;
  /// the journal thread compacts at its next JournalBatch. Off (default):
  /// snapshots compact inline.
  void SetPipelined(bool pipelined) { pipelined_ = pipelined; }

  struct ServeResult {
    std::uint64_t processed = 0;
    bool crashed = false;
  };
  /// Drives a whole single-tenant stream: submit from the committed
  /// frontier, process, repeat until the stream is exhausted and drained —
  /// or a crash fires.
  ServeResult Serve(const RequestStream& stream);

  /// True once a crash point fired; the object is then inert (every
  /// Submit/ProcessOne refuses) and only good for inspecting stats.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Next command id the service expects to commit for `tenant` (the
  /// resubmission frontier: everything below is applied and acknowledged).
  std::uint64_t next_command_id(std::uint32_t tenant) const;
  /// Legacy single-tenant accessor (tenant 0).
  std::uint64_t next_command_id() const { return next_command_id(0); }
  /// Tenants with a committed frontier above 1.
  std::vector<std::uint32_t> tenants() const;

  std::uint64_t applied_seq() const { return applied_seq_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t live_jobs() const { return live_jobs_.size(); }

  /// Cross-shard transaction introspection (router recovery): transactions
  /// prepared on this shard but not yet decided, the recorded reservation,
  /// the decision history, and the highest txn id this shard ever saw
  /// (router id minting resumes above it).
  std::vector<std::uint64_t> InDoubtTxns() const;
  const PreparedTxn* prepared_txn(std::uint64_t txn_id) const;
  std::optional<TxnDecision> txn_decision(std::uint64_t txn_id) const;
  std::uint64_t max_txn_seen() const { return max_txn_seen_; }

  /// Canonical bytes of the committed state: per-tenant frontiers + job
  /// table + prepared/decided transactions + scheduler (slices, stats, id
  /// counter) + bound controller state. Used verbatim as the snapshot
  /// payload and, in tests, as the byte-identity digest. Volatile service
  /// stats and the queue are deliberately excluded.
  std::vector<std::uint8_t> SerializeState() const;

  /// Includes `controller`'s replayable state in snapshots and digests
  /// (nullptr detaches). Bind before Recover when the snapshot carries
  /// controller state.
  void BindController(ctrl::FabricController* controller) { controller_ = controller; }

  /// Installs the crash-point hook (nullptr detaches). Crash points are
  /// consulted on the serving path only, never during replay.
  void SetFaultInjector(ctrl::FaultInjector* injector) { injector_ = injector; }

  /// lightwave_svc_{admitted,queued,rejected,...}_total counters, the
  /// queue-depth gauge, and the journal's own series (nullptr detaches).
  void AttachTelemetry(telemetry::Hub* hub);

  const FleetServiceStats& stats() const { return stats_; }
  const journal::Wal& wal() const { return wal_; }
  core::SliceScheduler& scheduler() { return scheduler_; }
  const core::SliceScheduler& scheduler() const { return scheduler_; }
  const FleetServiceOptions& options() const { return options_; }

 private:
  /// Applies one committed command to the scheduler/job table. Total and
  /// deterministic: every outcome (including rejection) is a pure function
  /// of the command and the current state. Visits the kMidApply crash point
  /// exactly once per call on the serving path.
  void ApplyCommand(const SliceCommand& cmd);
  /// Advances the pending (submit-side) frontier past `cmd`.
  void AdvancePending(const SliceCommand& cmd);
  /// Advances the committed frontier past an applied `cmd`.
  void AdvanceCommitted(const SliceCommand& cmd);
  /// Consults the injector at `point`; true = the process just died.
  bool CrashIf(ctrl::CrashPoint point);
  void MaybeSnapshot(std::uint64_t commands_applied);
  common::Status TakeSnapshot();
  common::Status DeserializeState(const std::vector<std::uint8_t>& bytes);
  void UpdateQueueGauge();

  tpu::Superpod& pod_;
  core::SliceScheduler scheduler_;
  journal::Storage& snapshot_storage_;
  journal::Wal wal_;
  FleetServiceOptions options_;
  std::deque<SliceCommand> queue_;

  // --- journal-thread state (submit side) ----------------------------------
  /// Per-tenant pending frontier: the next command id acceptable for
  /// enqueue/journal. Starts at the committed frontier after Recover.
  std::map<std::uint32_t, std::uint64_t> pending_next_;
  std::uint64_t last_compacted_floor_ = 0;
  /// Reusable encode buffers for JournalBatch (capacity persists across
  /// batches so steady-state journaling is allocation-free).
  std::vector<std::vector<std::uint8_t>> payload_scratch_;

  // --- apply-thread state ---------------------------------------------------
  /// Per-tenant committed frontier (absent tenant = 1).
  std::map<std::uint32_t, std::uint64_t> committed_next_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, tpu::SliceId> live_jobs_;
  std::map<std::uint64_t, PreparedTxn> prepared_;
  std::map<std::uint64_t, TxnDecision> decided_;
  std::uint64_t max_txn_seen_ = 0;
  std::uint64_t applied_seq_ = 0;
  std::uint64_t commands_since_snapshot_ = 0;

  // --- shared between stages ------------------------------------------------
  std::atomic<bool> crashed_{false};
  /// Snapshot (apply thread) -> compaction (journal thread) handoff.
  std::atomic<std::uint64_t> compact_floor_{0};

  bool recovered_ = false;
  bool replaying_ = false;
  bool pipelined_ = false;
  FleetServiceStats stats_;
  ctrl::FabricController* controller_ = nullptr;
  ctrl::FaultInjector* injector_ = nullptr;
  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* admitted_counter_ = nullptr;
  telemetry::Counter* queued_counter_ = nullptr;
  telemetry::Counter* rejected_backpressure_counter_ = nullptr;
  telemetry::Counter* rejected_apply_counter_ = nullptr;
  telemetry::Counter* snapshot_counter_ = nullptr;
  telemetry::Gauge* queue_gauge_ = nullptr;
};

}  // namespace lightwave::svc
