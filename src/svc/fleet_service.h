// Crash-recoverable fleet service front-end. Slice requests flow through a
// bounded queue (backpressure: a full queue rejects, the client retries
// later), and every dequeued command is journaled BEFORE it is applied —
// write-ahead order is the entire durability argument:
//
//   crash before the append  -> the command was never acknowledged as
//                               committed; the client resubmits it;
//   crash after the append   -> the command is durable; recovery re-applies
//                               it exactly once, keyed on its journal
//                               sequence number.
//
// The service object itself is volatile — a simulated crash (armed through
// ctrl::FaultInjector's crash points) abandons it, and a fresh service over
// the SAME two Storage devices recovers: load the snapshot, replay the WAL
// suffix, resume the stream from the committed frontier. Periodic snapshots
// bound replay work; each snapshot compacts the log prefix it covers.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/result.h"
#include "core/scheduler.h"
#include "ctrl/fault_injector.h"
#include "journal/replay.h"
#include "journal/snapshot.h"
#include "journal/wal.h"
#include "svc/command.h"
#include "svc/request_stream.h"

namespace lightwave::telemetry {
class Counter;
class Gauge;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::ctrl {
class FabricController;
}  // namespace lightwave::ctrl

namespace lightwave::svc {

struct FleetServiceOptions {
  /// Bounded admission queue; a full queue rejects with kResourceExhausted.
  std::size_t queue_capacity = 16;
  /// Commands applied between snapshots (0 disables snapshotting; recovery
  /// then replays the whole log).
  std::uint64_t snapshot_interval = 64;
  /// Bench knob: false skips the append, measuring the journaling overhead
  /// against the same apply path. Crash recovery is meaningless without it.
  bool journaling = true;
};

struct FleetServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t duplicate_acks = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t processed = 0;
  std::uint64_t admitted = 0;
  std::uint64_t resized = 0;
  std::uint64_t released = 0;
  /// Commands journaled and applied whose outcome was a deterministic
  /// rejection (no capacity, unknown job, duplicate job id).
  std::uint64_t rejected_apply = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t crashes = 0;
  std::size_t queue_peak = 0;
};

class FleetService {
 public:
  /// The pod and the two storages outlive the service. `wal_storage` and
  /// `snapshot_storage` are the durable media a successor service recovers
  /// from; everything else dies with this object.
  FleetService(tpu::Superpod& pod, core::AllocationPolicy policy,
               journal::Storage& wal_storage, journal::Storage& snapshot_storage,
               FleetServiceOptions options = {});

  /// Rebuilds state = snapshot + WAL suffix. Call exactly once, before
  /// serving (a fresh deployment recovers to the empty state). Returns what
  /// replay found; fails on corrupt snapshot/command bytes.
  common::Result<journal::RecoveryStats> Recover();

  /// Queue front-end. Duplicates below the committed frontier are
  /// acknowledged OK without re-enqueueing (idempotent resubmission); a gap
  /// above the expected next id is kInvalidArgument; a full queue is
  /// kResourceExhausted.
  common::Status Submit(const SliceCommand& cmd);

  /// Dequeues and applies one command (journaling it first). Returns false
  /// when the queue is empty or a crash point fired — check crashed().
  bool ProcessOne();

  struct ServeResult {
    std::uint64_t processed = 0;
    bool crashed = false;
  };
  /// Drives the whole stream: submit from the committed frontier, process,
  /// repeat until the stream is exhausted and drained — or a crash fires.
  ServeResult Serve(const RequestStream& stream);

  /// True once a crash point fired; the object is then inert (every
  /// Submit/ProcessOne refuses) and only good for inspecting stats.
  bool crashed() const { return crashed_; }

  /// Next command id the service expects to commit (the resubmission
  /// frontier: everything below is applied and acknowledged).
  std::uint64_t next_command_id() const { return next_command_id_; }
  std::uint64_t applied_seq() const { return applied_seq_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t live_jobs() const { return live_jobs_.size(); }

  /// Canonical bytes of the committed state: service frontier + job table +
  /// scheduler (slices, stats, id counter) + bound controller state. Used
  /// verbatim as the snapshot payload and, in tests, as the byte-identity
  /// digest. Volatile service stats and the queue are deliberately excluded.
  std::vector<std::uint8_t> SerializeState() const;

  /// Includes `controller`'s replayable state in snapshots and digests
  /// (nullptr detaches). Bind before Recover when the snapshot carries
  /// controller state.
  void BindController(ctrl::FabricController* controller) { controller_ = controller; }

  /// Installs the crash-point hook (nullptr detaches). Crash points are
  /// consulted on the serving path only, never during replay.
  void SetFaultInjector(ctrl::FaultInjector* injector) { injector_ = injector; }

  /// lightwave_svc_{admitted,queued,rejected,...}_total counters, the
  /// queue-depth gauge, and the journal's own series (nullptr detaches).
  void AttachTelemetry(telemetry::Hub* hub);

  const FleetServiceStats& stats() const { return stats_; }
  const journal::Wal& wal() const { return wal_; }
  core::SliceScheduler& scheduler() { return scheduler_; }
  const core::SliceScheduler& scheduler() const { return scheduler_; }
  const FleetServiceOptions& options() const { return options_; }

 private:
  /// Applies one committed command to the scheduler/job table. Total and
  /// deterministic: every outcome (including rejection) is a pure function
  /// of the command and the current state. Visits the kMidApply crash point
  /// exactly once per call on the serving path.
  void ApplyCommand(const SliceCommand& cmd);
  /// Consults the injector at `point`; true = the process just died.
  bool CrashIf(ctrl::CrashPoint point);
  void MaybeSnapshot();
  common::Status TakeSnapshot();
  common::Status DeserializeState(const std::vector<std::uint8_t>& bytes);
  void UpdateQueueGauge();

  tpu::Superpod& pod_;
  core::SliceScheduler scheduler_;
  journal::Storage& snapshot_storage_;
  journal::Wal wal_;
  FleetServiceOptions options_;
  std::deque<SliceCommand> queue_;
  std::map<std::uint64_t, tpu::SliceId> live_jobs_;
  std::uint64_t next_command_id_ = 1;
  std::uint64_t applied_seq_ = 0;
  std::uint64_t commands_since_snapshot_ = 0;
  bool recovered_ = false;
  bool replaying_ = false;
  bool crashed_ = false;
  FleetServiceStats stats_;
  ctrl::FabricController* controller_ = nullptr;
  ctrl::FaultInjector* injector_ = nullptr;
  telemetry::Hub* hub_ = nullptr;
  telemetry::Counter* admitted_counter_ = nullptr;
  telemetry::Counter* queued_counter_ = nullptr;
  telemetry::Counter* rejected_backpressure_counter_ = nullptr;
  telemetry::Counter* rejected_apply_counter_ = nullptr;
  telemetry::Counter* snapshot_counter_ = nullptr;
  telemetry::Gauge* queue_gauge_ = nullptr;
};

}  // namespace lightwave::svc
