// Seeded slice-request stream: the client side of the fleet service. Command
// i is a pure function of (seed, i) via counter-based RNG streams, so the
// stream needs no state, any suffix can be regenerated after a crash (the
// resubmission path), and the crash-matrix test can replay the exact same
// trace hundreds of times.
//
// Multi-tenant mode (tenant_count > 1) models the paper's shared-fleet
// workload: each command is assigned an owning tenant by a Zipf draw
// (zipf_skew = 0 is uniform; 1.0 is the classic heavy-head distribution
// where a few tenants dominate), command ids are dense per tenant, and
// release/resize commands only ever target jobs of their own tenant. The
// tenant assignment rides its own salted RNG stream, so a single-tenant
// stream (tenant_count = 1) generates byte-for-byte the same commands the
// pre-multi-tenant stream did.
#pragma once

#include <cstdint>
#include <vector>

#include "svc/command.h"

namespace lightwave::svc {

struct RequestStreamConfig {
  /// Slice sizes (in cubes) admits and resizes draw from, uniformly.
  std::vector<int> size_menu_cubes = {1, 1, 1, 2, 2, 4};
  /// Mix: P(admit) then P(release); the remainder resizes. Commands that
  /// target a job that never existed or was already released are valid
  /// stream entries — the service rejects them deterministically at apply.
  double admit_prob = 0.55;
  double release_prob = 0.30;
  /// Tenants sharing the stream; command i's owner is a Zipf draw over
  /// [0, tenant_count). 1 = the legacy single-tenant stream (tenant 0).
  std::uint32_t tenant_count = 1;
  /// Zipf exponent for the tenant draw: tenant t gets weight 1/(t+1)^skew.
  /// 0 = uniform load; ~1 = a heavily skewed fleet where tenant 0 issues
  /// the lion's share (the interesting case for fairness tests).
  double zipf_skew = 0.0;
};

class RequestStream {
 public:
  RequestStream(std::uint64_t seed, std::uint64_t count,
                RequestStreamConfig config = {});

  std::uint64_t count() const { return count_; }
  std::uint32_t tenant_count() const { return config_.tenant_count; }

  /// The i-th command (i in [0, count)) in global arrival order; its
  /// command_id is dense within its tenant. Pure in (seed, i) — calling it
  /// twice, or from two recovered processes, yields identical bytes.
  SliceCommand Command(std::uint64_t index) const;

  /// Owning tenant of the i-th command (same assignment Command(i) uses).
  std::uint32_t TenantOf(std::uint64_t index) const;

  /// Commands the stream assigns to `tenant` (its subsequence length).
  std::uint64_t TenantCommandCount(std::uint32_t tenant) const;

  /// The k-th command of `tenant`'s subsequence (k in
  /// [0, TenantCommandCount)); its command_id is k + 1. This is how a
  /// per-shard driver replays exactly one tenant's trace.
  SliceCommand TenantCommand(std::uint32_t tenant, std::uint64_t k) const;

 private:
  std::uint64_t seed_;
  std::uint64_t count_;
  RequestStreamConfig config_;
  /// Zipf CDF over tenants (empty when tenant_count == 1).
  std::vector<double> tenant_cdf_;
  /// Precomputed in the ctor so lookups are O(1)/O(log) and the per-command
  /// RNG stream carries no tenant-draw state: owner of each global index,
  /// its dense per-tenant id, and each tenant's global-index subsequence.
  std::vector<std::uint32_t> tenant_of_;
  std::vector<std::uint64_t> per_tenant_id_;
  std::vector<std::vector<std::uint64_t>> tenant_indices_;
};

}  // namespace lightwave::svc
