// Seeded slice-request stream: the client side of the fleet service. Command
// i is a pure function of (seed, i) via counter-based RNG streams, so the
// stream needs no state, any suffix can be regenerated after a crash (the
// resubmission path), and the crash-matrix test can replay the exact same
// trace hundreds of times.
#pragma once

#include <cstdint>
#include <vector>

#include "svc/command.h"

namespace lightwave::svc {

struct RequestStreamConfig {
  /// Slice sizes (in cubes) admits and resizes draw from, uniformly.
  std::vector<int> size_menu_cubes = {1, 1, 1, 2, 2, 4};
  /// Mix: P(admit) then P(release); the remainder resizes. Commands that
  /// target a job that never existed or was already released are valid
  /// stream entries — the service rejects them deterministically at apply.
  double admit_prob = 0.55;
  double release_prob = 0.30;
};

class RequestStream {
 public:
  RequestStream(std::uint64_t seed, std::uint64_t count,
                RequestStreamConfig config = {});

  std::uint64_t count() const { return count_; }

  /// The i-th command (i in [0, count)); command ids are i + 1. Pure in
  /// (seed, i) — calling it twice, or from two recovered processes, yields
  /// identical bytes.
  SliceCommand Command(std::uint64_t index) const;

 private:
  std::uint64_t seed_;
  std::uint64_t count_;
  RequestStreamConfig config_;
};

}  // namespace lightwave::svc
