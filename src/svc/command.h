// The fleet service's command vocabulary: the three slice-lifecycle requests
// the paper's cluster scheduler issues against the fabric (§4.2.4 — admit a
// job onto a slice, re-shape it, release it). A command is what gets
// journaled, so it carries exactly the event-sourcing essentials: a dense
// client-assigned command id (the resubmission frontier), the kind, the job,
// and the requested shape. Outcomes are never journaled — applying a command
// against a given state is deterministic, so replay reproduces them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "tpu/slice.h"

namespace lightwave::svc {

enum class CommandKind : std::uint8_t {
  kAdmit = 1,
  kResize = 2,
  kRelease = 3,
};
const char* ToString(CommandKind kind);

struct SliceCommand {
  /// Dense from 1 in stream order; the service acks duplicates below its
  /// frontier and rejects gaps, so a client can blindly resubmit after a
  /// crash.
  std::uint64_t command_id = 0;
  CommandKind kind = CommandKind::kAdmit;
  std::uint64_t job_id = 0;
  /// Requested slice shape (admit and resize; ignored for release).
  tpu::SliceShape shape;

  /// Wire encoding WITHOUT framing — the WAL's record envelope supplies the
  /// length prefix and checksum.
  std::vector<std::uint8_t> Encode() const;
  /// Fails cleanly on truncation or an unknown kind (a journal carrying
  /// bytes this build cannot parse must stop recovery, not crash it).
  static common::Result<SliceCommand> Decode(const std::vector<std::uint8_t>& bytes);
};

}  // namespace lightwave::svc
