// The fleet service's command vocabulary: the slice-lifecycle requests the
// paper's cluster scheduler issues against the fabric (§4.2.4 — admit a job
// onto a slice, re-shape it, release it), extended with the cross-shard
// two-phase-commit verbs the fleet router uses when one logical job spans
// several shard partitions (prepare a local reservation, then commit or
// abort it once every participant has voted). A command is what gets
// journaled, so it carries exactly the event-sourcing essentials: the
// owning tenant, a dense per-tenant client-assigned command id (the
// resubmission frontier), the kind, the job, the transaction (0 for plain
// single-shard commands), and the requested shape. Outcomes are never
// journaled — applying a command against a given state is deterministic, so
// replay reproduces them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "tpu/slice.h"

namespace lightwave::svc {

enum class CommandKind : std::uint8_t {
  kAdmit = 1,
  kResize = 2,
  kRelease = 3,
  /// Two-phase commit, phase 1: tentatively allocate `shape` for
  /// (tenant, job) and record the vote under `txn_id`. The reservation
  /// holds capacity but is not yet a live job.
  kPrepare = 4,
  /// Phase 2, success: promote txn_id's reservation to the live job table
  /// (releasing any slice the job already held — cross-shard resize).
  kCommitTxn = 5,
  /// Phase 2, failure: release txn_id's reservation (reverse-order
  /// rollback, same discipline as ctrl::ApplyTopology).
  kAbortTxn = 6,
};
const char* ToString(CommandKind kind);

struct SliceCommand {
  /// Dense from 1 per tenant in stream order; the service acks duplicates
  /// below the tenant's frontier and rejects gaps, so a client can blindly
  /// resubmit after a crash.
  std::uint64_t command_id = 0;
  /// Owning tenant. The router hashes this to a shard; per-tenant quotas
  /// and fairness key on it. Tenant 0 is the legacy single-tenant stream.
  std::uint32_t tenant_id = 0;
  CommandKind kind = CommandKind::kAdmit;
  std::uint64_t job_id = 0;
  /// Cross-shard transaction id for the 2PC kinds; must be 0 otherwise.
  std::uint64_t txn_id = 0;
  /// Requested slice shape (admit/resize/prepare; ignored for the rest).
  tpu::SliceShape shape;

  /// Wire encoding WITHOUT framing — the WAL's record envelope supplies the
  /// length prefix and checksum.
  std::vector<std::uint8_t> Encode() const;
  /// Overwrites `*out` with the encoding, reusing its capacity — the journal
  /// batch path encodes thousands of commands through one scratch buffer.
  void EncodeTo(std::vector<std::uint8_t>* out) const;
  /// Fails cleanly on truncation or an unknown kind (a journal carrying
  /// bytes this build cannot parse must stop recovery, not crash it).
  static common::Result<SliceCommand> Decode(const std::vector<std::uint8_t>& bytes);
};

}  // namespace lightwave::svc
