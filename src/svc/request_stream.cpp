#include "svc/request_stream.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "tpu/slice.h"

namespace lightwave::svc {

namespace {

/// Salt separating the tenant-assignment RNG stream from the per-command
/// draw stream, so adding tenants never perturbs the command mix.
constexpr std::uint64_t kTenantStreamSalt = 0x7e6a'1d9b'44c3'0f25ull;

/// Most-compact shape for n cubes (same figure of merit the scheduler's
/// workload generator uses: minimize max/min dimension).
tpu::SliceShape CompactShape(int n) {
  tpu::SliceShape best{1, 1, n};
  double best_score = 1e18;
  for (const auto& s : tpu::EnumerateCanonicalShapes(n)) {
    const double score = static_cast<double>(std::max({s.a, s.b, s.c})) /
                         std::min({s.a, s.b, s.c});
    if (score < best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

}  // namespace

RequestStream::RequestStream(std::uint64_t seed, std::uint64_t count,
                             RequestStreamConfig config)
    : seed_(seed), count_(count), config_(std::move(config)) {
  LW_CHECK(!config_.size_menu_cubes.empty()) << "empty size menu";
  LW_CHECK(config_.tenant_count >= 1) << "need at least one tenant";
  LW_CHECK(config_.zipf_skew >= 0.0) << "negative zipf skew";
  if (config_.tenant_count > 1) {
    tenant_cdf_.reserve(config_.tenant_count);
    double mass = 0.0;
    for (std::uint32_t t = 0; t < config_.tenant_count; ++t) {
      mass += 1.0 / std::pow(static_cast<double>(t + 1), config_.zipf_skew);
      tenant_cdf_.push_back(mass);
    }
    for (double& c : tenant_cdf_) c /= mass;
    tenant_cdf_.back() = 1.0;  // guard against rounding at the tail
  }
  tenant_of_.reserve(count_);
  per_tenant_id_.reserve(count_);
  tenant_indices_.resize(config_.tenant_count);
  for (std::uint64_t i = 0; i < count_; ++i) {
    std::uint32_t tenant = 0;
    if (config_.tenant_count > 1) {
      common::Rng rng = common::Rng::Stream(seed_ ^ kTenantStreamSalt, i);
      const double u = rng.NextDouble();
      tenant = static_cast<std::uint32_t>(
          std::lower_bound(tenant_cdf_.begin(), tenant_cdf_.end(), u) -
          tenant_cdf_.begin());
    }
    tenant_of_.push_back(tenant);
    tenant_indices_[tenant].push_back(i);
    per_tenant_id_.push_back(tenant_indices_[tenant].size());
  }
}

std::uint32_t RequestStream::TenantOf(std::uint64_t index) const {
  LW_CHECK(index < count_) << "stream index " << index << " out of range";
  return tenant_of_[index];
}

std::uint64_t RequestStream::TenantCommandCount(std::uint32_t tenant) const {
  LW_CHECK(tenant < config_.tenant_count) << "tenant " << tenant << " out of range";
  return tenant_indices_[tenant].size();
}

SliceCommand RequestStream::TenantCommand(std::uint32_t tenant, std::uint64_t k) const {
  LW_CHECK(tenant < config_.tenant_count) << "tenant " << tenant << " out of range";
  LW_CHECK(k < tenant_indices_[tenant].size())
      << "tenant " << tenant << " has no command " << k;
  return Command(tenant_indices_[tenant][k]);
}

SliceCommand RequestStream::Command(std::uint64_t index) const {
  LW_CHECK(index < count_) << "stream index " << index << " out of range";
  common::Rng rng = common::Rng::Stream(seed_, index);
  SliceCommand cmd;
  const std::uint32_t tenant = tenant_of_[index];
  const std::uint64_t tenant_pos = per_tenant_id_[index];  // dense from 1
  cmd.tenant_id = tenant;
  cmd.command_id = tenant_pos;

  const double kind_draw = rng.NextDouble();
  // A tenant's first command has no job of its own to release or resize.
  if (tenant_pos == 1 || kind_draw < config_.admit_prob) {
    cmd.kind = CommandKind::kAdmit;
    // Admits mint job ids from their own per-tenant command id, so ids are
    // unique within the (tenant, job) key space without the stream tracking
    // state.
    cmd.job_id = cmd.command_id;
  } else {
    cmd.kind = kind_draw < config_.admit_prob + config_.release_prob
                   ? CommandKind::kRelease
                   : CommandKind::kResize;
    // Target an earlier command of the SAME tenant — tenants never touch
    // each other's jobs. The target may never have been admitted, or be
    // long released; the service rejects that deterministically.
    cmd.job_id = rng.UniformInt(tenant_pos - 1) + 1;
  }
  if (cmd.kind != CommandKind::kRelease) {
    const auto& menu = config_.size_menu_cubes;
    cmd.shape = CompactShape(menu[static_cast<std::size_t>(rng.UniformInt(menu.size()))]);
  }
  return cmd;
}

}  // namespace lightwave::svc
