#include "svc/request_stream.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "tpu/slice.h"

namespace lightwave::svc {

namespace {

/// Most-compact shape for n cubes (same figure of merit the scheduler's
/// workload generator uses: minimize max/min dimension).
tpu::SliceShape CompactShape(int n) {
  tpu::SliceShape best{1, 1, n};
  double best_score = 1e18;
  for (const auto& s : tpu::EnumerateCanonicalShapes(n)) {
    const double score = static_cast<double>(std::max({s.a, s.b, s.c})) /
                         std::min({s.a, s.b, s.c});
    if (score < best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

}  // namespace

RequestStream::RequestStream(std::uint64_t seed, std::uint64_t count,
                             RequestStreamConfig config)
    : seed_(seed), count_(count), config_(std::move(config)) {
  LW_CHECK(!config_.size_menu_cubes.empty()) << "empty size menu";
}

SliceCommand RequestStream::Command(std::uint64_t index) const {
  LW_CHECK(index < count_) << "stream index " << index << " out of range";
  common::Rng rng = common::Rng::Stream(seed_, index);
  SliceCommand cmd;
  cmd.command_id = index + 1;

  const double kind_draw = rng.NextDouble();
  // The first command has no job to release or resize.
  if (index == 0 || kind_draw < config_.admit_prob) {
    cmd.kind = CommandKind::kAdmit;
    // Admits mint job ids from their own command id, so ids are unique
    // without the stream tracking state.
    cmd.job_id = cmd.command_id;
  } else {
    cmd.kind = kind_draw < config_.admit_prob + config_.release_prob
                   ? CommandKind::kRelease
                   : CommandKind::kResize;
    // Target some earlier command's job. It may never have been admitted,
    // or be long released — the service rejects that deterministically.
    cmd.job_id = rng.UniformInt(index) + 1;
  }
  if (cmd.kind != CommandKind::kRelease) {
    const auto& menu = config_.size_menu_cubes;
    cmd.shape = CompactShape(menu[static_cast<std::size_t>(rng.UniformInt(menu.size()))]);
  }
  return cmd;
}

}  // namespace lightwave::svc
