#include "svc/fleet_service.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "ctrl/controller.h"
#include "ctrl/wire.h"
#include "telemetry/hub.h"

namespace lightwave::svc {

using common::Result;
using common::Status;
using ctrl::CrashPoint;

FleetService::FleetService(tpu::Superpod& pod, core::AllocationPolicy policy,
                           journal::Storage& wal_storage,
                           journal::Storage& snapshot_storage,
                           FleetServiceOptions options)
    : pod_(pod),
      scheduler_(pod, policy),
      snapshot_storage_(snapshot_storage),
      wal_(wal_storage),  // opening the log IS the WAL half of recovery
      options_(options) {}

Result<journal::RecoveryStats> FleetService::Recover() {
  LW_CHECK(!recovered_) << "Recover must run exactly once, before serving";
  recovered_ = true;
  replaying_ = true;
  auto recovery = journal::Replay(
      snapshot_storage_, wal_,
      [this](const journal::Snapshot& snapshot) {
        Status restored = DeserializeState(snapshot.state);
        if (restored.ok()) applied_seq_ = snapshot.last_included_seq;
        return restored;
      },
      [this](const journal::WalRecord& record) -> Status {
        auto cmd = SliceCommand::Decode(record.payload);
        if (!cmd.ok()) return cmd.error();
        ApplyCommand(cmd.value());
        next_command_id_ = std::max(next_command_id_, cmd.value().command_id + 1);
        applied_seq_ = record.seq;
        ++commands_since_snapshot_;
        return Status::Ok();
      },
      hub_);
  replaying_ = false;
  return recovery;
}

Status FleetService::Submit(const SliceCommand& cmd) {
  LW_CHECK(recovered_) << "serve before Recover";
  if (crashed_) return common::Unavailable("service crashed; recover a successor");
  ++stats_.submitted;
  const std::uint64_t expected =
      queue_.empty() ? next_command_id_ : queue_.back().command_id + 1;
  if (cmd.command_id < expected) {
    // Already committed or already queued: acknowledge, don't re-enqueue.
    // This is what makes blind resubmission after a crash safe.
    ++stats_.duplicate_acks;
    return Status::Ok();
  }
  if (cmd.command_id > expected) {
    return common::InvalidArgument("command id gap: got " +
                                   std::to_string(cmd.command_id) + ", expected " +
                                   std::to_string(expected));
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++stats_.rejected_backpressure;
    if (rejected_backpressure_counter_ != nullptr) rejected_backpressure_counter_->Inc();
    return common::ResourceExhausted("admission queue full (" +
                                     std::to_string(options_.queue_capacity) + ")");
  }
  queue_.push_back(cmd);
  stats_.queue_peak = std::max(stats_.queue_peak, queue_.size());
  if (queued_counter_ != nullptr) queued_counter_->Inc();
  UpdateQueueGauge();
  return Status::Ok();
}

bool FleetService::ProcessOne() {
  if (crashed_ || queue_.empty()) return false;
  const SliceCommand cmd = queue_.front();
  // Write-ahead order: the three crash points bracket the append and the
  // apply, and recovery's obligations follow from which side of the append
  // the crash landed on (see the header comment).
  if (CrashIf(CrashPoint::kPreAppend)) return false;
  std::uint64_t seq = applied_seq_;
  if (options_.journaling) {
    auto appended = wal_.Append(cmd.Encode());
    LW_CHECK(appended.ok()) << "journal append failed: " << appended.error().message;
    seq = appended.value();
  }
  if (CrashIf(CrashPoint::kPostAppendPreApply)) return false;
  queue_.pop_front();
  ApplyCommand(cmd);
  if (crashed_) return false;  // kMidApply fired inside the apply
  next_command_id_ = cmd.command_id + 1;
  applied_seq_ = seq;
  ++stats_.processed;
  UpdateQueueGauge();
  MaybeSnapshot();
  return true;
}

void FleetService::ApplyCommand(const SliceCommand& cmd) {
  auto reject = [this] {
    ++stats_.rejected_apply;
    if (rejected_apply_counter_ != nullptr) rejected_apply_counter_->Inc();
  };
  switch (cmd.kind) {
    case CommandKind::kAdmit: {
      if (live_jobs_.contains(cmd.job_id)) {
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      auto allocated = scheduler_.Allocate(cmd.shape);
      // The crash lands between the fabric mutation and the job-table
      // update. The half-applied state is volatile and abandoned; replay
      // redoes the whole command against the recovered state.
      if (CrashIf(CrashPoint::kMidApply)) return;
      if (!allocated.ok()) {
        reject();
        return;
      }
      live_jobs_[cmd.job_id] = allocated.value();
      ++stats_.admitted;
      if (admitted_counter_ != nullptr) admitted_counter_->Inc();
      return;
    }
    case CommandKind::kRelease: {
      auto it = live_jobs_.find(cmd.job_id);
      if (it == live_jobs_.end()) {
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      if (CrashIf(CrashPoint::kMidApply)) return;
      LW_CHECK_OK(scheduler_.Release(it->second))
          << "job table referenced slice " << it->second;
      live_jobs_.erase(it);
      ++stats_.released;
      return;
    }
    case CommandKind::kResize: {
      auto it = live_jobs_.find(cmd.job_id);
      if (it == live_jobs_.end()) {
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      // Make-before-break: allocate the new shape while the old slice still
      // holds, so a resize the pod cannot fit rejects without disturbing
      // the running job.
      auto allocated = scheduler_.Allocate(cmd.shape);
      if (CrashIf(CrashPoint::kMidApply)) return;
      if (!allocated.ok()) {
        reject();
        return;
      }
      LW_CHECK_OK(scheduler_.Release(it->second))
          << "job table referenced slice " << it->second;
      it->second = allocated.value();
      ++stats_.resized;
      return;
    }
  }
}

bool FleetService::CrashIf(CrashPoint point) {
  // Crash points model the serving path; replay re-applies committed
  // commands and must never "die" again.
  if (replaying_ || injector_ == nullptr) return false;
  if (!injector_->ShouldCrash(point)) return false;
  crashed_ = true;
  ++stats_.crashes;
  return true;
}

FleetService::ServeResult FleetService::Serve(const RequestStream& stream) {
  ServeResult result;
  while (!crashed_) {
    // Refill from the stream at the resubmission frontier. Regenerating
    // commands instead of remembering them is what a real client does after
    // the service restarts: replay its own log of unacknowledged requests.
    std::uint64_t next = queue_.empty() ? next_command_id_ : queue_.back().command_id + 1;
    while (next <= stream.count() && queue_.size() < options_.queue_capacity) {
      Status submitted = Submit(stream.Command(next - 1));
      LW_CHECK(submitted.ok()) << submitted.error().message;
      ++next;
    }
    if (queue_.empty()) break;  // stream exhausted and fully drained
    if (!ProcessOne()) break;   // only a crash stops a non-empty queue
    ++result.processed;
  }
  result.crashed = crashed_;
  return result;
}

void FleetService::MaybeSnapshot() {
  if (!options_.journaling || options_.snapshot_interval == 0) return;
  if (++commands_since_snapshot_ < options_.snapshot_interval) return;
  LW_CHECK_OK(TakeSnapshot()) << "snapshot failed";
}

Status FleetService::TakeSnapshot() {
  // No crash point sits between the apply and this write, so snapshot +
  // compaction are atomic under the crash model — mirroring a real
  // write-to-temp-then-rename snapshot protocol.
  Status written =
      journal::SnapshotWriter::Write(snapshot_storage_, applied_seq_, SerializeState());
  if (!written.ok()) return written;
  commands_since_snapshot_ = 0;
  ++stats_.snapshots;
  if (snapshot_counter_ != nullptr) snapshot_counter_->Inc();
  return wal_.Compact(applied_seq_);
}

std::vector<std::uint8_t> FleetService::SerializeState() const {
  ctrl::WireWriter writer;
  writer.PutU64(next_command_id_);
  writer.PutVarint(live_jobs_.size());
  for (const auto& [job_id, slice_id] : live_jobs_) {
    writer.PutVarint(job_id);
    writer.PutU64(slice_id);
  }
  scheduler_.ExportState(writer);
  writer.PutU8(controller_ != nullptr ? 1 : 0);
  if (controller_ != nullptr) controller_->ExportState(writer);
  return writer.Take();
}

Status FleetService::DeserializeState(const std::vector<std::uint8_t>& bytes) {
  ctrl::WireReader reader(bytes);
  auto next_command_id = reader.GetU64();
  auto job_count = reader.GetVarint();
  if (!next_command_id || !job_count) return common::Internal("service state truncated");
  std::map<std::uint64_t, tpu::SliceId> jobs;
  for (std::uint64_t i = 0; i < *job_count; ++i) {
    auto job_id = reader.GetVarint();
    auto slice_id = reader.GetU64();
    if (!job_id || !slice_id) return common::Internal("service job table truncated");
    jobs[*job_id] = *slice_id;
  }
  if (Status imported = scheduler_.ImportState(reader); !imported.ok()) return imported;
  auto has_controller = reader.GetU8();
  if (!has_controller) return common::Internal("service state truncated");
  if (*has_controller != 0) {
    if (controller_ == nullptr) {
      return common::FailedPrecondition(
          "snapshot carries controller state but no controller is bound");
    }
    if (Status imported = controller_->ImportState(reader); !imported.ok()) {
      return imported;
    }
  }
  if (!reader.AtEnd()) return common::Internal("trailing bytes after service state");
  next_command_id_ = *next_command_id;
  live_jobs_ = std::move(jobs);
  return Status::Ok();
}

void FleetService::UpdateQueueGauge() {
  if (queue_gauge_ != nullptr) queue_gauge_->Set(static_cast<double>(queue_.size()));
}

void FleetService::AttachTelemetry(telemetry::Hub* hub) {
  hub_ = hub;
  wal_.AttachTelemetry(hub);
  scheduler_.AttachTelemetry(hub);
  if (hub == nullptr) {
    admitted_counter_ = queued_counter_ = nullptr;
    rejected_backpressure_counter_ = rejected_apply_counter_ = nullptr;
    snapshot_counter_ = nullptr;
    queue_gauge_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  admitted_counter_ = &metrics.GetCounter("lightwave_svc_admitted_total");
  queued_counter_ = &metrics.GetCounter("lightwave_svc_queued_total");
  rejected_backpressure_counter_ =
      &metrics.GetCounter("lightwave_svc_rejected_total", {{"reason", "backpressure"}});
  rejected_apply_counter_ =
      &metrics.GetCounter("lightwave_svc_rejected_total", {{"reason", "apply"}});
  snapshot_counter_ = &metrics.GetCounter("lightwave_svc_snapshots_total");
  queue_gauge_ = &metrics.GetGauge("lightwave_svc_queue_depth");
  UpdateQueueGauge();
}

}  // namespace lightwave::svc
