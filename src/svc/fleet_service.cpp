#include "svc/fleet_service.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "ctrl/controller.h"
#include "ctrl/wire.h"
#include "telemetry/hub.h"

namespace lightwave::svc {

using common::Result;
using common::Status;
using ctrl::CrashPoint;

namespace {

std::uint64_t FrontierOf(const std::map<std::uint32_t, std::uint64_t>& map,
                         std::uint32_t tenant) {
  auto it = map.find(tenant);
  return it == map.end() ? 1 : it->second;
}

}  // namespace

FleetService::FleetService(tpu::Superpod& pod, core::AllocationPolicy policy,
                           journal::Storage& wal_storage,
                           journal::Storage& snapshot_storage,
                           FleetServiceOptions options)
    : pod_(pod),
      scheduler_(pod, policy),
      snapshot_storage_(snapshot_storage),
      wal_(wal_storage),  // opening the log IS the WAL half of recovery
      options_(options) {}

Result<journal::RecoveryStats> FleetService::Recover() {
  LW_CHECK(!recovered_) << "Recover must run exactly once, before serving";
  recovered_ = true;
  replaying_ = true;
  auto recovery = journal::Replay(
      snapshot_storage_, wal_,
      [this](const journal::Snapshot& snapshot) {
        Status restored = DeserializeState(snapshot.state);
        if (restored.ok()) applied_seq_ = snapshot.last_included_seq;
        return restored;
      },
      [this](const journal::WalRecord& record) -> Status {
        auto cmd = SliceCommand::Decode(record.payload);
        if (!cmd.ok()) return cmd.error();
        ApplyCommand(cmd.value());
        AdvanceCommitted(cmd.value());
        applied_seq_ = record.seq;
        ++commands_since_snapshot_;
        return Status::Ok();
      },
      hub_);
  replaying_ = false;
  // The submit-side frontier resumes at the committed frontier; this copy is
  // the only cross-stage transfer, and it happens before any thread starts.
  pending_next_ = committed_next_;
  // Start the compactor only once recovery is done: replay must see the log
  // exactly as the crash left it, and the worker thread would race it.
  if (recovery.ok() && options_.background_compaction) {
    wal_.StartBackgroundCompaction();
  }
  return recovery;
}

std::uint64_t FleetService::next_command_id(std::uint32_t tenant) const {
  return FrontierOf(committed_next_, tenant);
}

std::vector<std::uint32_t> FleetService::tenants() const {
  std::vector<std::uint32_t> out;
  for (const auto& [tenant, next] : committed_next_) {
    if (next > 1) out.push_back(tenant);
  }
  return out;
}

AdmitCheck FleetService::CheckPending(const SliceCommand& cmd) const {
  const std::uint64_t expected = FrontierOf(pending_next_, cmd.tenant_id);
  if (cmd.command_id < expected) return AdmitCheck::kDuplicate;
  if (cmd.command_id > expected) return AdmitCheck::kGap;
  return AdmitCheck::kAccept;
}

void FleetService::AdvancePending(const SliceCommand& cmd) {
  std::uint64_t& next = pending_next_[cmd.tenant_id];
  if (next == 0) next = 1;
  next = std::max(next, cmd.command_id + 1);
}

void FleetService::AdvanceCommitted(const SliceCommand& cmd) {
  std::uint64_t& next = committed_next_[cmd.tenant_id];
  if (next == 0) next = 1;
  next = std::max(next, cmd.command_id + 1);
}

Status FleetService::Submit(const SliceCommand& cmd) {
  LW_CHECK(recovered_) << "serve before Recover";
  if (crashed()) return common::Unavailable("service crashed; recover a successor");
  ++stats_.submitted;
  switch (CheckPending(cmd)) {
    case AdmitCheck::kDuplicate:
      // Already committed or already queued: acknowledge, don't re-enqueue.
      // This is what makes blind resubmission after a crash safe.
      ++stats_.duplicate_acks;
      return Status::Ok();
    case AdmitCheck::kGap:
      return common::InvalidArgument(
          "command id gap for tenant " + std::to_string(cmd.tenant_id) + ": got " +
          std::to_string(cmd.command_id) + ", expected " +
          std::to_string(FrontierOf(pending_next_, cmd.tenant_id)));
    case AdmitCheck::kAccept: break;
  }
  if (queue_.size() >= options_.queue_capacity) {
    ++stats_.rejected_backpressure;
    if (rejected_backpressure_counter_ != nullptr) rejected_backpressure_counter_->Inc();
    return common::ResourceExhausted("admission queue full (" +
                                     std::to_string(options_.queue_capacity) + ")");
  }
  queue_.push_back(cmd);
  AdvancePending(cmd);
  stats_.queue_peak = std::max(stats_.queue_peak, queue_.size());
  if (queued_counter_ != nullptr) queued_counter_->Inc();
  UpdateQueueGauge();
  return Status::Ok();
}

bool FleetService::ProcessOne() { return ProcessBatch(1) == 1; }

std::size_t FleetService::ProcessBatch(std::size_t max_commands) {
  if (crashed() || queue_.empty() || max_commands == 0) return 0;
  const std::size_t n = std::min(max_commands, queue_.size());
  std::vector<SliceCommand> batch(queue_.begin(),
                                  queue_.begin() + static_cast<std::ptrdiff_t>(n));
  // Write-ahead order: the crash points bracket the append and the apply,
  // and recovery's obligations follow from which side of the append the
  // crash landed on (see the header comment). A batch is journaled
  // atomically, so "committed" after a post-append crash means the WHOLE
  // batch.
  if (CrashIf(CrashPoint::kPreAppend)) return 0;
  std::uint64_t first_seq = 0;
  if (options_.journaling) {
    auto appended = JournalBatch(batch);
    LW_CHECK(appended.ok()) << "journal append failed: " << appended.error().message;
    first_seq = appended.value();
  }
  if (CrashIf(CrashPoint::kPostAppendPreApply)) return 0;
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  const std::size_t applied = ApplyJournaled(batch, first_seq);
  UpdateQueueGauge();
  return applied;
}

Result<std::uint64_t> FleetService::JournalBatch(const std::vector<SliceCommand>& batch) {
  if (!options_.journaling) {
    for (const SliceCommand& cmd : batch) AdvancePending(cmd);
    ++stats_.batches;
    return std::uint64_t{0};
  }
  // Honor the compaction floor the apply stage published with its last
  // snapshot (pipelined mode; inline mode compacts in TakeSnapshot).
  const std::uint64_t floor = compact_floor_.load(std::memory_order_acquire);
  if (floor > last_compacted_floor_) {
    Status compacted = wal_.Compact(floor);
    if (!compacted.ok()) return compacted.error();
    last_compacted_floor_ = floor;
  }
  // The scratch vector (and each payload buffer inside it) keeps its
  // capacity across batches: steady-state journaling allocates nothing.
  payload_scratch_.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].EncodeTo(&payload_scratch_[i]);
    AdvancePending(batch[i]);
  }
  auto appended = wal_.AppendBatch(payload_scratch_);
  if (appended.ok()) ++stats_.batches;
  return appended;
}

std::size_t FleetService::ApplyJournaled(const std::vector<SliceCommand>& batch,
                                         std::uint64_t first_seq) {
  std::size_t applied = 0;
  for (const SliceCommand& cmd : batch) {
    ApplyCommand(cmd);
    if (crashed()) return applied;  // kMidApply fired inside the apply
    AdvanceCommitted(cmd);
    if (first_seq != 0) applied_seq_ = first_seq + applied;
    ++applied;
    ++stats_.processed;
  }
  MaybeSnapshot(applied);
  return applied;
}

void FleetService::ApplyCommand(const SliceCommand& cmd) {
  auto reject = [this] {
    ++stats_.rejected_apply;
    if (rejected_apply_counter_ != nullptr) rejected_apply_counter_->Inc();
  };
  if (cmd.txn_id != 0) max_txn_seen_ = std::max(max_txn_seen_, cmd.txn_id);
  const std::pair<std::uint32_t, std::uint64_t> job_key{cmd.tenant_id, cmd.job_id};
  switch (cmd.kind) {
    case CommandKind::kAdmit: {
      if (live_jobs_.contains(job_key)) {
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      auto allocated = scheduler_.Allocate(cmd.shape);
      // The crash lands between the fabric mutation and the job-table
      // update. The half-applied state is volatile and abandoned; replay
      // redoes the whole command against the recovered state.
      if (CrashIf(CrashPoint::kMidApply)) return;
      if (!allocated.ok()) {
        reject();
        return;
      }
      live_jobs_[job_key] = allocated.value();
      ++stats_.admitted;
      if (admitted_counter_ != nullptr) admitted_counter_->Inc();
      return;
    }
    case CommandKind::kRelease: {
      auto it = live_jobs_.find(job_key);
      if (it == live_jobs_.end()) {
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      if (CrashIf(CrashPoint::kMidApply)) return;
      LW_CHECK_OK(scheduler_.Release(it->second))
          << "job table referenced slice " << it->second;
      live_jobs_.erase(it);
      ++stats_.released;
      return;
    }
    case CommandKind::kResize: {
      auto it = live_jobs_.find(job_key);
      if (it == live_jobs_.end()) {
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      // Make-before-break: allocate the new shape while the old slice still
      // holds, so a resize the pod cannot fit rejects without disturbing
      // the running job.
      auto allocated = scheduler_.Allocate(cmd.shape);
      if (CrashIf(CrashPoint::kMidApply)) return;
      if (!allocated.ok()) {
        reject();
        return;
      }
      LW_CHECK_OK(scheduler_.Release(it->second))
          << "job table referenced slice " << it->second;
      it->second = allocated.value();
      ++stats_.resized;
      return;
    }
    case CommandKind::kPrepare: {
      if (cmd.txn_id == 0 || prepared_.contains(cmd.txn_id) ||
          decided_.contains(cmd.txn_id)) {
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      // The vote is a pure function of the state: yes iff the reservation
      // places. A no-vote is RECORDED (not just rejected) so replay and the
      // router's decision logic reproduce it.
      auto allocated = scheduler_.Allocate(cmd.shape);
      if (CrashIf(CrashPoint::kMidApply)) return;
      prepared_[cmd.txn_id] =
          PreparedTxn{.tenant_id = cmd.tenant_id,
                      .job_id = cmd.job_id,
                      .slice_id = allocated.ok() ? allocated.value() : 0,
                      .vote_yes = allocated.ok()};
      ++stats_.prepared;
      if (!allocated.ok()) reject();
      return;
    }
    case CommandKind::kCommitTxn: {
      auto it = prepared_.find(cmd.txn_id);
      if (it == prepared_.end()) {
        // Unknown or already decided: duplicate delivery, reject-ack.
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      if (CrashIf(CrashPoint::kMidApply)) return;
      if (!it->second.vote_yes) {
        // A commit against a no-vote is a coordinator bug; record the only
        // safe decision.
        decided_[cmd.txn_id] = TxnDecision::kAborted;
        prepared_.erase(it);
        reject();
        return;
      }
      const std::pair<std::uint32_t, std::uint64_t> txn_job{it->second.tenant_id,
                                                           it->second.job_id};
      if (auto live = live_jobs_.find(txn_job); live != live_jobs_.end()) {
        // Cross-shard resize: the committed reservation replaces the job's
        // old slice (make-before-break across shards).
        LW_CHECK_OK(scheduler_.Release(live->second))
            << "job table referenced slice " << live->second;
        live->second = it->second.slice_id;
        ++stats_.resized;
      } else {
        live_jobs_[txn_job] = it->second.slice_id;
        ++stats_.admitted;
        if (admitted_counter_ != nullptr) admitted_counter_->Inc();
      }
      decided_[cmd.txn_id] = TxnDecision::kCommitted;
      prepared_.erase(it);
      ++stats_.committed_txns;
      return;
    }
    case CommandKind::kAbortTxn: {
      auto it = prepared_.find(cmd.txn_id);
      if (it == prepared_.end()) {
        if (CrashIf(CrashPoint::kMidApply)) return;
        reject();
        return;
      }
      if (CrashIf(CrashPoint::kMidApply)) return;
      // Reverse-order rollback: the reservation is released exactly as
      // ctrl::ApplyTopology unwinds a failed transaction.
      if (it->second.vote_yes) {
        LW_CHECK_OK(scheduler_.Release(it->second.slice_id))
            << "prepared txn referenced slice " << it->second.slice_id;
      }
      decided_[cmd.txn_id] = TxnDecision::kAborted;
      prepared_.erase(it);
      ++stats_.aborted_txns;
      return;
    }
  }
}

std::vector<std::uint64_t> FleetService::InDoubtTxns() const {
  std::vector<std::uint64_t> out;
  out.reserve(prepared_.size());
  for (const auto& [txn_id, txn] : prepared_) out.push_back(txn_id);
  return out;
}

const PreparedTxn* FleetService::prepared_txn(std::uint64_t txn_id) const {
  auto it = prepared_.find(txn_id);
  return it == prepared_.end() ? nullptr : &it->second;
}

std::optional<TxnDecision> FleetService::txn_decision(std::uint64_t txn_id) const {
  auto it = decided_.find(txn_id);
  if (it == decided_.end()) return std::nullopt;
  return it->second;
}

bool FleetService::CrashIf(CrashPoint point) {
  // Crash points model the serving path; replay re-applies committed
  // commands and must never "die" again.
  if (replaying_ || injector_ == nullptr) return false;
  if (!injector_->ShouldCrash(point)) return false;
  crashed_.store(true, std::memory_order_release);
  ++stats_.crashes;
  return true;
}

FleetService::ServeResult FleetService::Serve(const RequestStream& stream) {
  ServeResult result;
  while (!crashed()) {
    // Refill from the stream at the resubmission frontier. Regenerating
    // commands instead of remembering them is what a real client does after
    // the service restarts: replay its own log of unacknowledged requests.
    std::uint64_t next = FrontierOf(pending_next_, 0);
    while (next <= stream.count() && queue_.size() < options_.queue_capacity) {
      Status submitted = Submit(stream.Command(next - 1));
      LW_CHECK(submitted.ok()) << submitted.error().message;
      ++next;
    }
    if (queue_.empty()) break;  // stream exhausted and fully drained
    if (!ProcessOne()) break;   // only a crash stops a non-empty queue
    ++result.processed;
  }
  result.crashed = crashed();
  return result;
}

void FleetService::MaybeSnapshot(std::uint64_t commands_applied) {
  if (!options_.journaling || options_.snapshot_interval == 0) return;
  commands_since_snapshot_ += commands_applied;
  if (commands_since_snapshot_ < options_.snapshot_interval) return;
  LW_CHECK_OK(TakeSnapshot()) << "snapshot failed";
}

Status FleetService::TakeSnapshot() {
  // No crash point sits between the apply and this write, so snapshot +
  // compaction are atomic under the crash model — mirroring a real
  // write-to-temp-then-rename snapshot protocol.
  Status written =
      journal::SnapshotWriter::Write(snapshot_storage_, applied_seq_, SerializeState());
  if (!written.ok()) return written;
  commands_since_snapshot_ = 0;
  ++stats_.snapshots;
  if (snapshot_counter_ != nullptr) snapshot_counter_->Inc();
  if (pipelined_) {
    // The WAL belongs to the journal thread; publish the floor and let it
    // compact on its next batch.
    compact_floor_.store(applied_seq_, std::memory_order_release);
    return Status::Ok();
  }
  last_compacted_floor_ = applied_seq_;
  return wal_.Compact(applied_seq_);
}

std::vector<std::uint8_t> FleetService::SerializeState() const {
  ctrl::WireWriter writer;
  writer.PutVarint(committed_next_.size());
  for (const auto& [tenant, next] : committed_next_) {
    writer.PutVarint(tenant);
    writer.PutU64(next);
  }
  writer.PutVarint(live_jobs_.size());
  for (const auto& [job_key, slice_id] : live_jobs_) {
    writer.PutVarint(job_key.first);
    writer.PutVarint(job_key.second);
    writer.PutU64(slice_id);
  }
  writer.PutVarint(prepared_.size());
  for (const auto& [txn_id, txn] : prepared_) {
    writer.PutVarint(txn_id);
    writer.PutVarint(txn.tenant_id);
    writer.PutVarint(txn.job_id);
    writer.PutU8(txn.vote_yes ? 1 : 0);
    writer.PutU64(txn.slice_id);
  }
  writer.PutVarint(decided_.size());
  for (const auto& [txn_id, decision] : decided_) {
    writer.PutVarint(txn_id);
    writer.PutU8(static_cast<std::uint8_t>(decision));
  }
  writer.PutVarint(max_txn_seen_);
  scheduler_.ExportState(writer);
  writer.PutU8(controller_ != nullptr ? 1 : 0);
  if (controller_ != nullptr) controller_->ExportState(writer);
  return writer.Take();
}

Status FleetService::DeserializeState(const std::vector<std::uint8_t>& bytes) {
  ctrl::WireReader reader(bytes);
  auto tenant_count = reader.GetVarint();
  if (!tenant_count) return common::Internal("service state truncated");
  std::map<std::uint32_t, std::uint64_t> frontiers;
  for (std::uint64_t i = 0; i < *tenant_count; ++i) {
    auto tenant = reader.GetVarint();
    auto next = reader.GetU64();
    if (!tenant || !next) return common::Internal("service frontier table truncated");
    frontiers[static_cast<std::uint32_t>(*tenant)] = *next;
  }
  auto job_count = reader.GetVarint();
  if (!job_count) return common::Internal("service state truncated");
  std::map<std::pair<std::uint32_t, std::uint64_t>, tpu::SliceId> jobs;
  for (std::uint64_t i = 0; i < *job_count; ++i) {
    auto tenant = reader.GetVarint();
    auto job_id = reader.GetVarint();
    auto slice_id = reader.GetU64();
    if (!tenant || !job_id || !slice_id) {
      return common::Internal("service job table truncated");
    }
    jobs[{static_cast<std::uint32_t>(*tenant), *job_id}] = *slice_id;
  }
  auto prepared_count = reader.GetVarint();
  if (!prepared_count) return common::Internal("service state truncated");
  std::map<std::uint64_t, PreparedTxn> prepared;
  for (std::uint64_t i = 0; i < *prepared_count; ++i) {
    auto txn_id = reader.GetVarint();
    auto tenant = reader.GetVarint();
    auto job_id = reader.GetVarint();
    auto vote = reader.GetU8();
    auto slice_id = reader.GetU64();
    if (!txn_id || !tenant || !job_id || !vote || !slice_id) {
      return common::Internal("service prepared-txn table truncated");
    }
    prepared[*txn_id] = PreparedTxn{.tenant_id = static_cast<std::uint32_t>(*tenant),
                                    .job_id = *job_id,
                                    .slice_id = *slice_id,
                                    .vote_yes = *vote != 0};
  }
  auto decided_count = reader.GetVarint();
  if (!decided_count) return common::Internal("service state truncated");
  std::map<std::uint64_t, TxnDecision> decided;
  for (std::uint64_t i = 0; i < *decided_count; ++i) {
    auto txn_id = reader.GetVarint();
    auto decision = reader.GetU8();
    if (!txn_id || !decision ||
        (*decision != static_cast<std::uint8_t>(TxnDecision::kCommitted) &&
         *decision != static_cast<std::uint8_t>(TxnDecision::kAborted))) {
      return common::Internal("service decided-txn table truncated");
    }
    decided[*txn_id] = static_cast<TxnDecision>(*decision);
  }
  auto max_txn = reader.GetVarint();
  if (!max_txn) return common::Internal("service state truncated");
  if (Status imported = scheduler_.ImportState(reader); !imported.ok()) return imported;
  auto has_controller = reader.GetU8();
  if (!has_controller) return common::Internal("service state truncated");
  if (*has_controller != 0) {
    if (controller_ == nullptr) {
      return common::FailedPrecondition(
          "snapshot carries controller state but no controller is bound");
    }
    if (Status imported = controller_->ImportState(reader); !imported.ok()) {
      return imported;
    }
  }
  if (!reader.AtEnd()) return common::Internal("trailing bytes after service state");
  committed_next_ = std::move(frontiers);
  live_jobs_ = std::move(jobs);
  prepared_ = std::move(prepared);
  decided_ = std::move(decided);
  max_txn_seen_ = *max_txn;
  return Status::Ok();
}

void FleetService::UpdateQueueGauge() {
  if (queue_gauge_ != nullptr) queue_gauge_->Set(static_cast<double>(queue_.size()));
}

void FleetService::AttachTelemetry(telemetry::Hub* hub) {
  hub_ = hub;
  wal_.AttachTelemetry(hub);
  scheduler_.AttachTelemetry(hub);
  if (hub == nullptr) {
    admitted_counter_ = queued_counter_ = nullptr;
    rejected_backpressure_counter_ = rejected_apply_counter_ = nullptr;
    snapshot_counter_ = nullptr;
    queue_gauge_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  admitted_counter_ = &metrics.GetCounter("lightwave_svc_admitted_total");
  queued_counter_ = &metrics.GetCounter("lightwave_svc_queued_total");
  rejected_backpressure_counter_ =
      &metrics.GetCounter("lightwave_svc_rejected_total", {{"reason", "backpressure"}});
  rejected_apply_counter_ =
      &metrics.GetCounter("lightwave_svc_rejected_total", {{"reason", "apply"}});
  snapshot_counter_ = &metrics.GetCounter("lightwave_svc_snapshots_total");
  queue_gauge_ = &metrics.GetGauge("lightwave_svc_queue_depth");
  UpdateQueueGauge();
}

}  // namespace lightwave::svc
