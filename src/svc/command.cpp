#include "svc/command.h"

#include <string>

#include "ctrl/wire.h"

namespace lightwave::svc {

const char* ToString(CommandKind kind) {
  switch (kind) {
    case CommandKind::kAdmit: return "admit";
    case CommandKind::kResize: return "resize";
    case CommandKind::kRelease: return "release";
  }
  return "unknown";
}

std::vector<std::uint8_t> SliceCommand::Encode() const {
  ctrl::WireWriter writer;
  writer.PutVarint(command_id);
  writer.PutU8(static_cast<std::uint8_t>(kind));
  writer.PutVarint(job_id);
  writer.PutVarint(static_cast<std::uint64_t>(shape.a));
  writer.PutVarint(static_cast<std::uint64_t>(shape.b));
  writer.PutVarint(static_cast<std::uint64_t>(shape.c));
  return writer.Take();
}

common::Result<SliceCommand> SliceCommand::Decode(const std::vector<std::uint8_t>& bytes) {
  ctrl::WireReader reader(bytes);
  auto command_id = reader.GetVarint();
  auto kind = reader.GetU8();
  auto job_id = reader.GetVarint();
  auto a = reader.GetVarint();
  auto b = reader.GetVarint();
  auto c = reader.GetVarint();
  if (!command_id || !kind || !job_id || !a || !b || !c || !reader.AtEnd()) {
    return common::Internal("slice command truncated or overlong");
  }
  if (*kind < static_cast<std::uint8_t>(CommandKind::kAdmit) ||
      *kind > static_cast<std::uint8_t>(CommandKind::kRelease)) {
    return common::Internal("unknown command kind " + std::to_string(*kind));
  }
  SliceCommand cmd;
  cmd.command_id = *command_id;
  cmd.kind = static_cast<CommandKind>(*kind);
  cmd.job_id = *job_id;
  cmd.shape = tpu::SliceShape{static_cast<int>(*a), static_cast<int>(*b),
                              static_cast<int>(*c)};
  return cmd;
}

}  // namespace lightwave::svc
