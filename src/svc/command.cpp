#include "svc/command.h"

#include <string>

#include "ctrl/wire.h"

namespace lightwave::svc {

const char* ToString(CommandKind kind) {
  switch (kind) {
    case CommandKind::kAdmit: return "admit";
    case CommandKind::kResize: return "resize";
    case CommandKind::kRelease: return "release";
    case CommandKind::kPrepare: return "prepare";
    case CommandKind::kCommitTxn: return "commit-txn";
    case CommandKind::kAbortTxn: return "abort-txn";
  }
  return "unknown";
}

std::vector<std::uint8_t> SliceCommand::Encode() const {
  std::vector<std::uint8_t> out;
  EncodeTo(&out);
  return out;
}

void SliceCommand::EncodeTo(std::vector<std::uint8_t>* out) const {
  ctrl::WireWriter writer;
  writer.Reset(std::move(*out));
  writer.Reserve(64);  // eight varints and a kind byte never exceed this
  writer.PutVarint(command_id);
  writer.PutVarint(tenant_id);
  writer.PutU8(static_cast<std::uint8_t>(kind));
  writer.PutVarint(job_id);
  writer.PutVarint(txn_id);
  writer.PutVarint(static_cast<std::uint64_t>(shape.a));
  writer.PutVarint(static_cast<std::uint64_t>(shape.b));
  writer.PutVarint(static_cast<std::uint64_t>(shape.c));
  *out = writer.Take();
}

common::Result<SliceCommand> SliceCommand::Decode(const std::vector<std::uint8_t>& bytes) {
  ctrl::WireReader reader(bytes);
  auto command_id = reader.GetVarint();
  auto tenant_id = reader.GetVarint();
  auto kind = reader.GetU8();
  auto job_id = reader.GetVarint();
  auto txn_id = reader.GetVarint();
  auto a = reader.GetVarint();
  auto b = reader.GetVarint();
  auto c = reader.GetVarint();
  if (!command_id || !tenant_id || !kind || !job_id || !txn_id || !a || !b || !c ||
      !reader.AtEnd()) {
    return common::Internal("slice command truncated or overlong");
  }
  if (*kind < static_cast<std::uint8_t>(CommandKind::kAdmit) ||
      *kind > static_cast<std::uint8_t>(CommandKind::kAbortTxn)) {
    return common::Internal("unknown command kind " + std::to_string(*kind));
  }
  if (*tenant_id > 0xFFFFFFFFull) {
    return common::Internal("tenant id " + std::to_string(*tenant_id) +
                            " overflows 32 bits");
  }
  SliceCommand cmd;
  cmd.command_id = *command_id;
  cmd.tenant_id = static_cast<std::uint32_t>(*tenant_id);
  cmd.kind = static_cast<CommandKind>(*kind);
  cmd.job_id = *job_id;
  cmd.txn_id = *txn_id;
  cmd.shape = tpu::SliceShape{static_cast<int>(*a), static_cast<int>(*b),
                              static_cast<int>(*c)};
  return cmd;
}

}  // namespace lightwave::svc
