// The injection point for the telemetry subsystem. A Hub bundles the
// metrics registry, the tracer, and the clock that spans and time series
// read. Instrumented classes hold a `Hub*` defaulting to nullptr — the
// no-op sink: with a null hub every record reduces to one pointer test, so
// existing call sites keep compiling and the un-instrumented hot paths keep
// their performance.
//
// The clock is pluggable and defaults to 0.0 (no clock). Bind it to a
// simulation clock for deterministic timestamps:
//   hub.SetClock([&queue] { return queue.now(); });
// Never bind wall-clock time if exports must be reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace lightwave::telemetry {

class Hub {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Installs (or clears, with an empty function) the time source.
  void SetClock(std::function<double()> clock) { clock_ = std::move(clock); }
  double Now() const { return clock_ ? clock_() : 0.0; }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::function<double()> clock_;
};

/// RAII span: opens on construction (at hub->Now()), closes when it leaves
/// scope. A null hub makes every member a no-op.
class TraceSpan {
 public:
  TraceSpan(Hub* hub, std::string name) : hub_(hub) {
    if (hub_ != nullptr) id_ = hub_->tracer().Begin(std::move(name), hub_->Now());
  }
  ~TraceSpan() {
    if (hub_ != nullptr) hub_->tracer().End(id_, hub_->Now());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Annotate(std::string key, std::string value) {
    if (hub_ != nullptr) hub_->tracer().Annotate(id_, std::move(key), std::move(value));
  }
  std::uint64_t id() const { return id_; }

 private:
  Hub* hub_ = nullptr;
  std::uint64_t id_ = 0;
};

}  // namespace lightwave::telemetry
