// Exporters: render a MetricsRegistry (and optionally the trace spans) as
// Prometheus text exposition format or JSON. Output is deterministic —
// series iterate in sorted (name, labels) order, spans in Begin() order,
// and numbers format via a fixed locale-independent rule — so a fixed-seed
// simulation exports byte-exact across repeat runs.
#pragma once

#include <string>

#include "telemetry/hub.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace lightwave::telemetry {

/// Prometheus text format. Counters as `counter`, gauges and time-series
/// latest values as `gauge`, histograms as `summary` (q0.5/q0.9/q0.99 plus
/// `_sum`/`_count`).
std::string ToPrometheus(const MetricsRegistry& registry);

/// JSON document with `counters`, `gauges`, `histograms`, `timeseries`,
/// and (when a tracer is given) `spans` sections.
std::string ToJson(const MetricsRegistry& registry, const Tracer* tracer = nullptr);
inline std::string ToJson(const Hub& hub) { return ToJson(hub.metrics(), &hub.tracer()); }

/// Deterministic number rendering shared by both exporters: integers print
/// with no fraction, everything else as %.9g.
std::string FormatNumber(double v);

}  // namespace lightwave::telemetry
