#include "telemetry/parallel_sink.h"

#include <string>

#include "telemetry/hub.h"

namespace lightwave::telemetry {

namespace {

// The span currently open for the calling thread's region. Regions do not
// nest (the runtime serializes nested ParallelFor inline and only reports
// the outermost), but distinct threads can each drive a region, so the open
// span id is thread-local.
thread_local std::uint64_t t_open_span = 0;
thread_local bool t_span_open = false;

}  // namespace

ParallelTelemetrySink::ParallelTelemetrySink(Hub* hub)
    : hub_(hub), previous_(common::parallel::SetPoolObserver(this)) {}

ParallelTelemetrySink::~ParallelTelemetrySink() {
  common::parallel::SetPoolObserver(previous_);
}

void ParallelTelemetrySink::OnRegionBegin(std::uint64_t items, std::uint64_t chunks,
                                          int threads) {
  if (hub_ == nullptr) return;
  hub_->metrics().GetCounter("lightwave_parallel_regions_total").Inc();
  t_open_span = hub_->tracer().Begin("parallel_region", hub_->Now());
  t_span_open = true;
  hub_->tracer().Annotate(t_open_span, "items", std::to_string(items));
  hub_->tracer().Annotate(t_open_span, "chunks", std::to_string(chunks));
  hub_->tracer().Annotate(t_open_span, "threads", std::to_string(threads));
}

void ParallelTelemetrySink::OnRegionEnd(
    const std::vector<std::uint64_t>& chunks_per_worker) {
  if (hub_ == nullptr || !t_span_open) return;
  // Worker-utilization view: how the chunks spread over the caller (slot 0)
  // and the pool workers. A heavily skewed spread means chunks are too
  // coarse for the machine.
  std::string shares;
  for (std::size_t i = 0; i < chunks_per_worker.size(); ++i) {
    if (i > 0) shares += ",";
    shares += std::to_string(chunks_per_worker[i]);
  }
  hub_->tracer().Annotate(t_open_span, "chunks_per_worker", shares);
  hub_->tracer().End(t_open_span, hub_->Now());
  t_span_open = false;
}

void ParallelTelemetrySink::OnChunkExecuted() {
  if (hub_ == nullptr) return;
  hub_->metrics().GetCounter("lightwave_parallel_tasks_total").Inc();
}

void ParallelTelemetrySink::OnQueueDepth(std::size_t depth) {
  if (hub_ == nullptr) return;
  hub_->metrics()
      .GetGauge("lightwave_parallel_queue_depth")
      .Set(static_cast<double>(depth));
}

}  // namespace lightwave::telemetry
