// Fabric-wide metrics plane (the ROADMAP's observability step; what §4 of
// the paper calls production telemetry). A MetricsRegistry hands out stable
// references to named, labeled series:
//   - Counter / Gauge: lock-free atomics for hot-path recording;
//   - HistogramMetric: exact percentiles via common::SampleSet (the Fig. 13
//     BER-survey style distributions);
//   - TimeSeries: a fixed-capacity ring buffer of (t, value) samples keyed
//     by the *simulation* clock, never wall-clock, so recordings are
//     deterministic and byte-exact across repeat runs.
// Registry lookups are mutex-guarded and handles stay valid for the
// registry's lifetime, so instrumented classes resolve a handle once at
// attach time and record without further lookups.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace lightwave::telemetry {

/// Label key/value pairs identifying one series of a metric family. The
/// registry normalizes them to sorted-by-key order, so {a=1,b=2} and
/// {b=2,a=1} name the same series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution with exact percentiles (stores the samples, like the
/// evaluation benches; intended for evaluation-sized cardinalities).
class HistogramMetric {
 public:
  void Observe(double x);

  std::size_t count() const;
  double sum() const;
  /// Exact nearest-rank percentile; 0.0 when no samples were observed.
  double Percentile(double p) const;
  /// Copy of the underlying samples for offline analysis.
  common::SampleSet Snapshot() const;

 private:
  mutable lw::Mutex mu_{"telemetry.histogram", lw::rank::kTelemetrySeries};
  common::SampleSet samples_ LW_GUARDED_BY(mu_);
  double sum_ LW_GUARDED_BY(mu_) = 0.0;
};

/// Ring-buffered (time, value) samples. Timestamps come from the caller's
/// simulation clock (sim::EventQueue::now() or a sim loop's own time
/// variable); the subsystem never reads wall-clock.
class TimeSeries {
 public:
  struct Sample {
    double t = 0.0;
    double value = 0.0;
  };

  explicit TimeSeries(std::size_t capacity = 1024);

  void Record(double t, double value);

  /// Retained samples in chronological order (oldest first). At most
  /// `capacity()` entries; older samples are overwritten.
  std::vector<Sample> Samples() const;

  std::size_t capacity() const { return capacity_; }
  /// Total samples ever recorded (recorded() - Samples().size() were
  /// evicted by the ring).
  std::uint64_t recorded() const;

 private:
  mutable lw::Mutex mu_{"telemetry.timeseries", lw::rank::kTelemetrySeries};
  std::vector<Sample> ring_ LW_GUARDED_BY(mu_);
  std::size_t capacity_;  // immutable after construction
  std::size_t head_ LW_GUARDED_BY(mu_) = 0;  // next write slot once the ring is full
  std::uint64_t recorded_ LW_GUARDED_BY(mu_) = 0;
};

/// Thread-safe, deterministic-iteration registry of all metric families.
class MetricsRegistry {
 public:
  /// Identity of one series: metric name plus normalized labels. Ordered so
  /// the exporters iterate deterministically.
  struct SeriesKey {
    std::string name;
    LabelSet labels;
    auto operator<=>(const SeriesKey&) const = default;
  };

  /// Lookup-or-create. The returned reference stays valid for the lifetime
  /// of the registry.
  Counter& GetCounter(const std::string& name, LabelSet labels = {});
  Gauge& GetGauge(const std::string& name, LabelSet labels = {});
  HistogramMetric& GetHistogram(const std::string& name, LabelSet labels = {});
  /// `capacity` only applies when the series is first created.
  TimeSeries& GetTimeSeries(const std::string& name, LabelSet labels = {},
                            std::size_t capacity = 1024);

  /// Exporter access: (key, series) pairs in deterministic key order. The
  /// pointers stay valid; the vectors are snapshots of the family index.
  std::vector<std::pair<SeriesKey, const Counter*>> Counters() const;
  std::vector<std::pair<SeriesKey, const Gauge*>> Gauges() const;
  std::vector<std::pair<SeriesKey, const HistogramMetric*>> Histograms() const;
  std::vector<std::pair<SeriesKey, const TimeSeries*>> TimeSeriesAll() const;

 private:
  template <typename T>
  using Family = std::map<SeriesKey, std::unique_ptr<T>>;

  /// Lookup-or-create / snapshot bodies; the public entry points take the
  /// lock and these run under it (the compile-time contract on the family
  /// maps below).
  template <typename T, typename... Args>
  T& GetOrCreateLocked(Family<T>& family, const std::string& name, LabelSet labels,
                       Args&&... args) LW_REQUIRES(mu_);
  template <typename T>
  std::vector<std::pair<SeriesKey, const T*>> SnapshotLocked(const Family<T>& family)
      const LW_REQUIRES(mu_);

  mutable lw::Mutex mu_{"telemetry.registry", lw::rank::kTelemetryRegistry};
  Family<Counter> counters_ LW_GUARDED_BY(mu_);
  Family<Gauge> gauges_ LW_GUARDED_BY(mu_);
  Family<HistogramMetric> histograms_ LW_GUARDED_BY(mu_);
  Family<TimeSeries> timeseries_ LW_GUARDED_BY(mu_);
};

}  // namespace lightwave::telemetry
