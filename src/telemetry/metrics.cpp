#include "telemetry/metrics.h"

#include <algorithm>

namespace lightwave::telemetry {

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void HistogramMetric::Observe(double x) {
  lw::MutexLock lock(mu_);
  samples_.Add(x);
  sum_ += x;
}

std::size_t HistogramMetric::count() const {
  lw::MutexLock lock(mu_);
  return samples_.count();
}

double HistogramMetric::sum() const {
  lw::MutexLock lock(mu_);
  return sum_;
}

double HistogramMetric::Percentile(double p) const {
  lw::MutexLock lock(mu_);
  return samples_.Percentile(p);
}

common::SampleSet HistogramMetric::Snapshot() const {
  lw::MutexLock lock(mu_);
  return samples_;
}

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void TimeSeries::Record(double t, double value) {
  lw::MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(Sample{t, value});
  } else {
    ring_[head_] = Sample{t, value};
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<TimeSeries::Sample> TimeSeries::Samples() const {
  lw::MutexLock lock(mu_);
  std::vector<Sample> out;
  out.reserve(ring_.size());
  // `head_` is the oldest retained sample once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TimeSeries::recorded() const {
  lw::MutexLock lock(mu_);
  return recorded_;
}

namespace {

LabelSet Normalize(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

template <typename T, typename... Args>
T& MetricsRegistry::GetOrCreateLocked(Family<T>& family, const std::string& name,
                                      LabelSet labels, Args&&... args) {
  SeriesKey key{name, Normalize(std::move(labels))};
  auto it = family.find(key);
  if (it == family.end()) {
    it = family.emplace(std::move(key), std::make_unique<T>(std::forward<Args>(args)...))
             .first;
  }
  return *it->second;
}

template <typename T>
std::vector<std::pair<MetricsRegistry::SeriesKey, const T*>>
MetricsRegistry::SnapshotLocked(const Family<T>& family) const {
  std::vector<std::pair<SeriesKey, const T*>> out;
  out.reserve(family.size());
  for (const auto& [key, series] : family) out.emplace_back(key, series.get());
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, LabelSet labels) {
  lw::MutexLock lock(mu_);
  return GetOrCreateLocked(counters_, name, std::move(labels));
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, LabelSet labels) {
  lw::MutexLock lock(mu_);
  return GetOrCreateLocked(gauges_, name, std::move(labels));
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name, LabelSet labels) {
  lw::MutexLock lock(mu_);
  return GetOrCreateLocked(histograms_, name, std::move(labels));
}

TimeSeries& MetricsRegistry::GetTimeSeries(const std::string& name, LabelSet labels,
                                           std::size_t capacity) {
  lw::MutexLock lock(mu_);
  return GetOrCreateLocked(timeseries_, name, std::move(labels), capacity);
}

std::vector<std::pair<MetricsRegistry::SeriesKey, const Counter*>>
MetricsRegistry::Counters() const {
  lw::MutexLock lock(mu_);
  return SnapshotLocked(counters_);
}

std::vector<std::pair<MetricsRegistry::SeriesKey, const Gauge*>> MetricsRegistry::Gauges()
    const {
  lw::MutexLock lock(mu_);
  return SnapshotLocked(gauges_);
}

std::vector<std::pair<MetricsRegistry::SeriesKey, const HistogramMetric*>>
MetricsRegistry::Histograms() const {
  lw::MutexLock lock(mu_);
  return SnapshotLocked(histograms_);
}

std::vector<std::pair<MetricsRegistry::SeriesKey, const TimeSeries*>>
MetricsRegistry::TimeSeriesAll() const {
  lw::MutexLock lock(mu_);
  return SnapshotLocked(timeseries_);
}

}  // namespace lightwave::telemetry
