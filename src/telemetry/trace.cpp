#include "telemetry/trace.h"

#include <algorithm>

namespace lightwave::telemetry {

std::uint64_t Tracer::Begin(std::string name, double start_time) {
  lw::MutexLock lock(mu_);
  SpanRecord span;
  span.id = spans_.size() + 1;
  span.parent_id = open_stack_.empty() ? 0 : open_stack_.back();
  span.name = std::move(name);
  span.start = start_time;
  span.end = start_time;
  spans_.push_back(std::move(span));
  open_stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::Annotate(std::uint64_t id, std::string key, std::string value) {
  lw::MutexLock lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attributes.emplace_back(std::move(key), std::move(value));
}

void Tracer::End(std::uint64_t id, double end_time) {
  lw::MutexLock lock(mu_);
  if (id == 0 || id > spans_.size()) return;
  SpanRecord& span = spans_[id - 1];
  if (!span.open) return;
  span.open = false;
  span.end = end_time;
  auto it = std::find(open_stack_.rbegin(), open_stack_.rend(), id);
  if (it != open_stack_.rend()) open_stack_.erase(std::next(it).base());
}

std::vector<SpanRecord> Tracer::spans() const {
  lw::MutexLock lock(mu_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  lw::MutexLock lock(mu_);
  return spans_.size();
}

std::size_t Tracer::open_count() const {
  lw::MutexLock lock(mu_);
  return open_stack_.size();
}

void Tracer::Clear() {
  lw::MutexLock lock(mu_);
  spans_.clear();
  open_stack_.clear();
}

}  // namespace lightwave::telemetry
