#include "telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace lightwave::telemetry {

std::string FormatNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}`, or "" with no labels. `extra` is prepended (used for
/// the summary quantile label).
std::string PromLabels(const LabelSet& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  if (!extra.empty()) {
    out += extra;
    first = false;
  }
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + Escape(v) + "\"";
  }
  out += "}";
  return out;
}

void PromType(std::ostringstream& out, std::string* last_typed, const std::string& name,
              const char* type) {
  // One TYPE line per metric family, even when it has many label sets.
  if (*last_typed == name) return;
  out << "# TYPE " << name << " " << type << "\n";
  *last_typed = name;
}

std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + Escape(k) + "\":\"" + Escape(v) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string ToPrometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  std::string last_typed;
  for (const auto& [key, counter] : registry.Counters()) {
    PromType(out, &last_typed, key.name, "counter");
    out << key.name << PromLabels(key.labels) << " " << counter->value() << "\n";
  }
  for (const auto& [key, gauge] : registry.Gauges()) {
    PromType(out, &last_typed, key.name, "gauge");
    out << key.name << PromLabels(key.labels) << " " << FormatNumber(gauge->value())
        << "\n";
  }
  for (const auto& [key, hist] : registry.Histograms()) {
    PromType(out, &last_typed, key.name, "summary");
    struct Quantile {
      const char* label;
      double percentile;
    };
    for (const Quantile& q :
         {Quantile{"0.5", 50.0}, Quantile{"0.9", 90.0}, Quantile{"0.99", 99.0}}) {
      out << key.name
          << PromLabels(key.labels, std::string("quantile=\"") + q.label + "\"") << " "
          << FormatNumber(hist->Percentile(q.percentile)) << "\n";
    }
    out << key.name << "_sum" << PromLabels(key.labels) << " "
        << FormatNumber(hist->sum()) << "\n";
    out << key.name << "_count" << PromLabels(key.labels) << " " << hist->count() << "\n";
  }
  for (const auto& [key, series] : registry.TimeSeriesAll()) {
    const auto samples = series->Samples();
    PromType(out, &last_typed, key.name, "gauge");
    out << key.name << PromLabels(key.labels) << " "
        << (samples.empty() ? "0" : FormatNumber(samples.back().value)) << "\n";
  }
  return out.str();
}

std::string ToJson(const MetricsRegistry& registry, const Tracer* tracer) {
  std::ostringstream out;
  out << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, counter] : registry.Counters()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << Escape(key.name) << "\",\"labels\":" << JsonLabels(key.labels)
        << ",\"value\":" << counter->value() << "}";
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& [key, gauge] : registry.Gauges()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << Escape(key.name) << "\",\"labels\":" << JsonLabels(key.labels)
        << ",\"value\":" << FormatNumber(gauge->value()) << "}";
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& [key, hist] : registry.Histograms()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << Escape(key.name) << "\",\"labels\":" << JsonLabels(key.labels)
        << ",\"count\":" << hist->count() << ",\"sum\":" << FormatNumber(hist->sum())
        << ",\"p50\":" << FormatNumber(hist->Percentile(50.0))
        << ",\"p90\":" << FormatNumber(hist->Percentile(90.0))
        << ",\"p99\":" << FormatNumber(hist->Percentile(99.0)) << "}";
  }
  out << "],\"timeseries\":[";
  first = true;
  for (const auto& [key, series] : registry.TimeSeriesAll()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << Escape(key.name) << "\",\"labels\":" << JsonLabels(key.labels)
        << ",\"recorded\":" << series->recorded() << ",\"samples\":[";
    bool first_sample = true;
    for (const auto& sample : series->Samples()) {
      if (!first_sample) out << ",";
      first_sample = false;
      out << "[" << FormatNumber(sample.t) << "," << FormatNumber(sample.value) << "]";
    }
    out << "]}";
  }
  out << "]";
  if (tracer != nullptr) {
    out << ",\"spans\":[";
    first = true;
    for (const auto& span : tracer->spans()) {
      if (!first) out << ",";
      first = false;
      out << "{\"id\":" << span.id << ",\"parent\":" << span.parent_id << ",\"name\":\""
          << Escape(span.name) << "\",\"start\":" << FormatNumber(span.start)
          << ",\"end\":" << FormatNumber(span.end) << ",\"attributes\":{";
      bool first_attr = true;
      for (const auto& [k, v] : span.attributes) {
        if (!first_attr) out << ",";
        first_attr = false;
        out << "\"" << Escape(k) << "\":\"" << Escape(v) << "\"";
      }
      out << "}}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace lightwave::telemetry
