// Structured trace spans for fabric reconfiguration transactions: the
// controller's fan-out, per-agent retries, MEMS settle, camera alignment.
// Spans nest: Begin() parents the new span under the innermost still-open
// span, mirroring how ApplyTopology wraps per-OCS reconfigure calls. Times
// are supplied by the caller (simulation clock or a domain quantity like a
// transaction's duration_ms) so traces replay byte-exact.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace lightwave::telemetry {

struct SpanRecord {
  std::uint64_t id = 0;         // 1-based; 0 is reserved for "no span"
  std::uint64_t parent_id = 0;  // 0 = root span
  std::string name;
  double start = 0.0;
  double end = 0.0;
  bool open = true;
  /// Key/value annotations in insertion order (deterministic export).
  std::vector<std::pair<std::string, std::string>> attributes;
};

class Tracer {
 public:
  /// Opens a span parented under the innermost open span (or as a root).
  /// Returns its id for End()/Annotate().
  std::uint64_t Begin(std::string name, double start_time);
  void Annotate(std::uint64_t id, std::string key, std::string value);
  /// Closes the span. Out-of-order ends are tolerated (the span is removed
  /// from wherever it sits on the open stack).
  void End(std::uint64_t id, double end_time);

  /// All spans in Begin() order. Call once recording has quiesced.
  std::vector<SpanRecord> spans() const;
  std::size_t span_count() const;
  std::size_t open_count() const;
  void Clear();

 private:
  mutable lw::Mutex mu_{"telemetry.tracer", lw::rank::kTracer};
  std::vector<SpanRecord> spans_ LW_GUARDED_BY(mu_);  // index = id - 1
  std::vector<std::uint64_t> open_stack_ LW_GUARDED_BY(mu_);
};

}  // namespace lightwave::telemetry
