// Bridges the parallel runtime's observer hooks (common/parallel.h) into a
// telemetry Hub, the same adapter pattern as CheckTelemetrySink:
//   - lightwave_parallel_tasks_total          counter, one per executed chunk
//   - lightwave_parallel_regions_total        counter, one per ParallelFor
//   - lightwave_parallel_queue_depth          gauge, pool queue depth
//   - "parallel_region" trace spans           per region, annotated with the
//                                             item/chunk counts and the
//                                             per-worker chunk shares (the
//                                             worker-utilization view)
// Counters and the gauge are recorded from worker threads (they are atomic);
// spans open and close on the thread that called ParallelFor.
#pragma once

#include "common/parallel.h"

namespace lightwave::telemetry {

class Hub;

/// RAII: installs itself as the process-wide pool observer on construction
/// and restores the previous observer on destruction. The hub must outlive
/// the sink; regions running concurrently with destruction must be avoided
/// by the caller (quiesce before detaching).
class ParallelTelemetrySink : public common::parallel::PoolObserver {
 public:
  explicit ParallelTelemetrySink(Hub* hub);
  ~ParallelTelemetrySink() override;
  ParallelTelemetrySink(const ParallelTelemetrySink&) = delete;
  ParallelTelemetrySink& operator=(const ParallelTelemetrySink&) = delete;

  void OnRegionBegin(std::uint64_t items, std::uint64_t chunks, int threads) override;
  void OnRegionEnd(const std::vector<std::uint64_t>& chunks_per_worker) override;
  void OnChunkExecuted() override;
  void OnQueueDepth(std::size_t depth) override;

 private:
  Hub* hub_;
  common::parallel::PoolObserver* previous_;
};

}  // namespace lightwave::telemetry
