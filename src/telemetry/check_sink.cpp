#include "telemetry/check_sink.h"

#include <cstdio>

#include "telemetry/hub.h"

namespace lightwave::telemetry {

namespace {

common::CheckHandler MakeHandler(Hub* hub) {
  return [hub](const common::CheckFailure& failure) {
    hub->metrics()
        .GetCounter("lightwave_check_failures_total",
                    {{"kind", common::ToString(failure.kind)}})
        .Inc();
    if (failure.kind != common::CheckKind::kEnsure) {
      std::fprintf(stderr, "%s\n", common::FormatCheckFailure(failure).c_str());
    }
  };
}

}  // namespace

CheckTelemetrySink::CheckTelemetrySink(Hub* hub) : scoped_(MakeHandler(hub)) {}

}  // namespace lightwave::telemetry
