// Routes contract violations (common/check.h) into a telemetry Hub: each
// failure increments `lightwave_check_failures_total{kind=...}` and fatal
// kinds are additionally logged to stderr — but nothing aborts. This is the
// "counter+log in sims" policy: a long availability simulation should
// surface a violated invariant as a metric spike, not a dead process.
#pragma once

#include "common/check.h"

namespace lightwave::telemetry {

class Hub;

/// RAII: installs the counting handler on construction, restores the
/// previous handler on destruction. The hub must outlive the sink.
class CheckTelemetrySink {
 public:
  explicit CheckTelemetrySink(Hub* hub);
  ~CheckTelemetrySink() = default;
  CheckTelemetrySink(const CheckTelemetrySink&) = delete;
  CheckTelemetrySink& operator=(const CheckTelemetrySink&) = delete;

 private:
  common::ScopedCheckHandler scoped_;
};

}  // namespace lightwave::telemetry
