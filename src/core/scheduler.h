// Cluster-level slice scheduler (§4.2.4). Two allocation policies:
//   - kReconfigurable: the lightwave fabric composes a slice from ANY set of
//     idle healthy cubes (the production TPU v4 behaviour; enables >98%
//     utilization and failed-cube swap);
//   - kContiguous: the TPU v3-style baseline — a slice needs an aligned
//     contiguous sub-box of the pod's fixed 4x4x4 cube grid.
// An event-driven workload simulation measures acceptance and utilization
// under each policy (the §4.2.4 ablation).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "tpu/superpod.h"

namespace lightwave::telemetry {
class Counter;
class Gauge;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::ctrl {
class WireReader;
class WireWriter;
}  // namespace lightwave::ctrl

namespace lightwave::core {

enum class AllocationPolicy { kReconfigurable, kContiguous };

const char* ToString(AllocationPolicy policy);

class SliceScheduler {
 public:
  SliceScheduler(tpu::Superpod& pod, AllocationPolicy policy);

  AllocationPolicy policy() const { return policy_; }

  /// Allocates cubes for `shape` under the policy and installs the slice.
  common::Result<tpu::SliceId> Allocate(const tpu::SliceShape& shape);

  common::Status Release(tpu::SliceId id);

  /// Replaces every unhealthy cube of a degraded slice with free healthy
  /// cubes and reinstalls it (same shape, new id). Only the reconfigurable
  /// policy can do this; the contiguous policy fails unless equivalent
  /// contiguous space exists.
  common::Result<tpu::SliceId> RepairSlice(tpu::SliceId id);

  /// Cubes currently owned by slices (for utilization accounting).
  int BusyCubes() const;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t repairs = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Starts mirroring allocation outcomes and the busy-cube gauge into
  /// `hub` (nullptr detaches). Series carry a `policy=<name>` label.
  void AttachTelemetry(telemetry::Hub* hub);

  /// Durability hooks (journal snapshots): serializes the scheduler's
  /// replayable state — allocation stats plus every installed slice (id,
  /// shape, cube assignment) and the pod's slice-id counter — into `writer`.
  /// The switch configurations are NOT serialized; ImportState rebuilds them
  /// by reinstalling the slices, which is deterministic.
  void ExportState(ctrl::WireWriter& writer) const;
  /// Inverse of ExportState against a scheduler over a fresh pod of the same
  /// geometry. Fails cleanly on truncated or malformed bytes and on slices
  /// that no longer fit the pod.
  common::Status ImportState(ctrl::WireReader& reader);

  /// Structural audit of slice accounting: every installed slice's cube
  /// list matches its shape, no cube is owned by two slices
  /// (double-booked), and the pod's ownership index agrees with the slice
  /// tables in both directions. Runs automatically after
  /// Allocate/Release/RepairSlice when validation mode is on.
  common::Status ValidateInvariants() const;

 private:
  /// Picks cube ids for the shape; nullopt when the policy cannot place it.
  std::optional<std::vector<int>> PickCubes(const tpu::SliceShape& shape) const;
  void UpdateBusyGauge();
  /// Runs ValidateInvariants through LW_CHECK_OK when validation mode is on.
  void MaybeValidate(const char* boundary) const;

  tpu::Superpod& pod_;
  AllocationPolicy policy_;
  Stats stats_;
  telemetry::Counter* request_counter_ = nullptr;
  telemetry::Counter* accepted_counter_ = nullptr;
  telemetry::Counter* rejected_counter_ = nullptr;
  telemetry::Counter* repair_counter_ = nullptr;
  telemetry::Gauge* busy_gauge_ = nullptr;
};

/// Workload simulation: Poisson job arrivals with a shape mix and
/// exponential durations; measures acceptance rate and cube-hours
/// utilization for a policy.
struct WorkloadConfig {
  double arrival_rate_per_hour = 10.0;
  double mean_duration_hours = 8.0;
  /// Job sizes in cubes, drawn uniformly from this menu and shaped into the
  /// most compact canonical form.
  std::vector<int> size_menu_cubes = {1, 1, 2, 2, 4, 4, 8, 16};
  double sim_hours = 2000.0;
  std::uint64_t seed = 7;
  /// true: rejected jobs wait in a FIFO queue and are retried whenever
  /// capacity frees up (the production behaviour); false: rejected jobs are
  /// lost (admission-control view).
  bool queue_jobs = false;
  /// Mean time between cube-host failures across the pod (0 disables).
  double cube_mtbf_hours = 0.0;
  double cube_repair_hours = 12.0;
  /// Optional telemetry sink: the simulation binds the hub clock to its
  /// event queue, attaches the scheduler, and records a sim-clock time
  /// series of busy cubes. nullptr (the default) records nothing.
  telemetry::Hub* hub = nullptr;
};

struct WorkloadResult {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t repaired = 0;
  std::uint64_t lost_to_failure = 0;
  double acceptance_rate = 0.0;
  /// Busy cube-hours / available cube-hours.
  double utilization = 0.0;
  /// Queueing mode only: jobs that ran after waiting, mean/max wait, and
  /// jobs still queued at the end of the simulation.
  std::uint64_t started_from_queue = 0;
  double mean_wait_hours = 0.0;
  double max_wait_hours = 0.0;
  std::uint64_t left_in_queue = 0;
};

WorkloadResult SimulateWorkload(tpu::Superpod& pod, AllocationPolicy policy,
                                const WorkloadConfig& config);

}  // namespace lightwave::core
