// Spine-free DCN topology engineering (§2.1, [47]): given a forecast traffic
// matrix and a per-block OCS port budget, compute an integer inter-block
// trunk allocation (demand-proportional with a uniform floor), lower it to
// per-OCS cross-connect matchings (each block owns one duplex port on every
// OCS, so one OCS can realize at most one trunk unit per block), and plan
// incremental reconfigurations when demand shifts — preserving unchanged
// trunks so their traffic is never disturbed.
#pragma once

#include <map>
#include <vector>

#include "common/result.h"
#include "sim/dcn_flow.h"
#include "sim/traffic.h"

namespace lightwave::core {

/// Symmetric integer link counts between blocks; row sums bounded by the
/// per-block port budget.
class TrunkAllocation {
 public:
  TrunkAllocation(int blocks, int ports_per_block);

  int blocks() const { return blocks_; }
  int ports_per_block() const { return ports_per_block_; }
  int LinksBetween(int a, int b) const;
  void SetLinks(int a, int b, int count);  // symmetric
  int DegreeOf(int block) const;
  int TotalLinks() const;

 private:
  int blocks_;
  int ports_per_block_;
  std::vector<int> links_;  // row-major
};

/// Demand-proportional allocation: a uniform floor keeps every pair
/// connected (for transit and forecast error); the remaining budget follows
/// the forecast. Largest-remainder rounding keeps row sums within budget.
TrunkAllocation AllocateTrunks(const sim::TrafficMatrix& forecast, int ports_per_block,
                               double uniform_floor_fraction = 0.2);

/// One OCS's contribution: a partial matching over blocks, stored as
/// unordered pairs (a < b).
using OcsMatching = std::vector<std::pair<int, int>>;

struct MatchingDecomposition {
  std::vector<OcsMatching> per_ocs;
  int placed_links = 0;
  int dropped_links = 0;  // allocation links that did not fit in ocs_count
};

/// Edge-colors the trunk multigraph into at most `ocs_count` matchings
/// (first-fit with Kempe-chain repair). Row sums <= ocs_count is necessary;
/// near-regular allocations decompose completely in practice, and any
/// remainder is reported. When `prior` is given, assignments it contains
/// that the new allocation still wants are kept on their OCS — the
/// incremental mode that lets expansion and demand shifts ride through with
/// most trunks undisturbed.
MatchingDecomposition DecomposeToMatchings(const TrunkAllocation& allocation, int ocs_count,
                                           const std::vector<OcsMatching>* prior = nullptr);

struct ReconfigurationPlan {
  /// Per-OCS target matchings after the change.
  std::vector<OcsMatching> targets;
  int links_added = 0;
  int links_removed = 0;
  int links_unchanged = 0;
};

/// Diffs two decompositions OCS-by-OCS, maximizing the per-OCS intersection
/// (pairing old and new matchings greedily by overlap) so unchanged trunks
/// ride through the reconfiguration undisturbed.
ReconfigurationPlan PlanReconfiguration(const MatchingDecomposition& current,
                                        const MatchingDecomposition& next);

class TopologyEngineer {
 public:
  TopologyEngineer(int blocks, int ocs_count, double trunk_gbps,
                   double uniform_floor_fraction = 0.2);

  /// Computes the engineered topology for a forecast.
  void Engineer(const sim::TrafficMatrix& forecast);

  /// The flow-level topology the current allocation realizes.
  sim::DcnTopology CurrentTopology() const;
  const TrunkAllocation& allocation() const { return allocation_; }
  const MatchingDecomposition& decomposition() const { return decomposition_; }

  /// Re-engineers for a new forecast and returns the incremental plan.
  ReconfigurationPlan Reengineer(const sim::TrafficMatrix& forecast);

 private:
  int blocks_;
  int ocs_count_;
  double trunk_gbps_;
  double floor_fraction_;
  TrunkAllocation allocation_;
  MatchingDecomposition decomposition_;
};

}  // namespace lightwave::core
