// The spine-free datacenter fabric (§2.1, Fig. 1b): aggregation blocks
// directly connected through a bank of Palomar OCSes, each active block
// owning one duplex port on every OCS. Beyond topology engineering, this
// layer implements the paper's other three DCN benefits:
//   - Fabric Expansion ("pay as you grow"): blocks join and leave an
//     operating fabric; re-engineering preserves unaffected trunks
//     undisturbed.
//   - Fabric Isolation: tenant groups get dedicated trunks; no optical path
//     ever connects blocks of different groups.
//   - Rapid Technology Refresh: heterogeneous transceiver generations
//     coexist; a joining block is admitted only if its optics inter-operate
//     with every active generation (wavelength-grid overlap + a common line
//     rate, §3.3.1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/topology_engineer.h"
#include "ctrl/controller.h"
#include "ocs/palomar.h"
#include "optics/transceiver.h"
#include "sim/dcn_flow.h"
#include "sim/traffic.h"

namespace lightwave::core {

using TenantId = std::uint64_t;
/// The shared pool every block starts in.
inline constexpr TenantId kSharedPool = 0;

struct DcnReconfigStats {
  int links_established = 0;
  int links_removed = 0;
  int links_undisturbed = 0;
  int control_retries = 0;
};

class DcnFabric {
 public:
  DcnFabric(std::uint64_t seed, int max_blocks, int ocs_count, double link_gbps,
            double uniform_floor_fraction = 0.2);

  int ocs_count() const { return static_cast<int>(switches_.size()); }
  int max_blocks() const { return max_blocks_; }
  double link_gbps() const { return link_gbps_; }
  std::vector<int> ActiveBlocks() const;

  /// --- expansion -----------------------------------------------------------
  /// Admits a block; fails when the fabric is full or the block's optics do
  /// not inter-operate with every active generation.
  common::Result<int> AddBlock(const optics::TransceiverSpec& transceiver);
  /// Retires a block (its trunks disappear at the next ApplyTopology; its
  /// tenant membership is dropped).
  common::Status RemoveBlock(int block);

  /// --- isolation -----------------------------------------------------------
  /// Moves blocks from the shared pool into a dedicated tenant: their
  /// trunks are engineered only among themselves from now on.
  common::Result<TenantId> CreateTenant(const std::vector<int>& blocks);
  common::Status DissolveTenant(TenantId tenant);
  TenantId TenantOf(int block) const;

  /// --- topology ------------------------------------------------------------
  /// Engineers trunks per group (shared pool + each tenant) for the given
  /// pod-wide forecast, lowers them to per-OCS matchings, and pushes the
  /// merged cross-connects to every switch through the retrying control
  /// plane. Demand entries between different groups are ignored (isolation).
  common::Result<DcnReconfigStats> ApplyTopology(const sim::TrafficMatrix& forecast);

  /// The flow-level topology currently installed (trunk counts x link rate).
  sim::DcnTopology CurrentTopology() const;
  /// Installed trunk count between two blocks.
  int TrunksBetween(int a, int b) const;

  /// Audit: true when no installed trunk crosses a tenant boundary.
  bool IsolationHolds() const;

  /// Structural audit of the installed link state: every cross-connect
  /// terminates on active blocks, carries its reverse direction on the same
  /// OCS (link-state symmetry — a trunk is always the pair a->b and b->a),
  /// and never crosses a tenant boundary. Runs automatically after
  /// ApplyTopology when validation mode is on.
  common::Status ValidateInvariants() const;

  ocs::PalomarSwitch& ocs(int i) { return *switches_[static_cast<std::size_t>(i)]; }
  const std::optional<optics::TransceiverSpec>& BlockTransceiver(int block) const;

 private:
  struct Block {
    bool active = false;
    std::optional<optics::TransceiverSpec> transceiver;
    TenantId tenant = kSharedPool;
  };

  int max_blocks_;
  double link_gbps_;
  double floor_fraction_;
  std::vector<Block> blocks_;
  std::vector<std::unique_ptr<ocs::PalomarSwitch>> switches_;
  std::vector<std::unique_ptr<ctrl::OcsAgent>> agents_;
  std::unique_ptr<ctrl::MessageBus> bus_;
  std::unique_ptr<ctrl::FabricController> controller_;
  TenantId next_tenant_ = 1;
};

}  // namespace lightwave::core
