#include "core/fabric_manager.h"
#include <algorithm>

#include <cmath>

#include "common/parallel.h"
#include "optics/link_budget.h"
#include "phy/ber_model.h"
#include "phy/oim.h"
#include "telemetry/hub.h"

namespace lightwave::core {

using common::Result;
using common::Status;

FabricManager::FabricManager(FabricManagerConfig config) : config_(config) {
  pod_ = std::make_unique<tpu::Superpod>(config.seed, config.cubes, config.ocs_per_dim);
  scheduler_ = std::make_unique<SliceScheduler>(*pod_, config.policy);
  bus_ = std::make_unique<ctrl::MessageBus>(config.seed ^ 0x5ca1ab1eULL);
  bus_->SetDropProbability(config.control_drop_probability);
  controller_ = std::make_unique<ctrl::FabricController>(*bus_, config.controller);
  for (int i = 0; i < pod_->ocs_count(); ++i) {
    agents_.push_back(std::make_unique<ctrl::OcsAgent>(pod_->ocs(i)));
    controller_->Register(i, agents_.back().get());
  }
}

void FabricManager::AttachTelemetry(telemetry::Hub* hub) {
  hub_ = hub;
  scheduler_->AttachTelemetry(hub);
  bus_->AttachTelemetry(hub);
  controller_->AttachTelemetry(hub);
  for (auto& agent : agents_) agent->AttachTelemetry(hub);
  for (int i = 0; i < pod_->ocs_count(); ++i) pod_->ocs(i).AttachTelemetry(hub);
}

Result<tpu::SliceId> FabricManager::CreateSlice(const tpu::SliceShape& shape) {
  telemetry::TraceSpan span(hub_, "create_slice");
  span.Annotate("shape", shape.ToCubeString());
  return scheduler_->Allocate(shape);
}

Status FabricManager::DestroySlice(tpu::SliceId id) { return scheduler_->Release(id); }

Result<tpu::SliceId> FabricManager::HandleCubeFailure(int cube_id) {
  telemetry::TraceSpan span(hub_, "handle_cube_failure");
  span.Annotate("cube", std::to_string(cube_id));
  if (hub_ != nullptr) {
    hub_->metrics().GetCounter("lightwave_core_cube_failures_total").Inc();
  }
  if (cube_id < 0 || cube_id >= pod_->cube_count()) {
    return common::InvalidArgument("cube id out of range");
  }
  pod_->cube(cube_id).SetHostHealth(0, false);
  auto owner = pod_->SliceOwningCube(cube_id);
  if (!owner.has_value()) {
    return common::NotFound("no slice owned the failed cube; nothing to repair");
  }
  return scheduler_->RepairSlice(*owner);
}

std::vector<LinkQualityReport> FabricManager::SurveyLinkQuality(
    const optics::TransceiverSpec& transceiver, const LinkQualityOptions& options) const {
  telemetry::TraceSpan span(hub_, "link_quality_survey");
  telemetry::HistogramMetric* margin_hist = nullptr;
  telemetry::HistogramMetric* ber_hist = nullptr;
  telemetry::HistogramMetric* loss_hist = nullptr;
  if (hub_ != nullptr) {
    auto& metrics = hub_->metrics();
    margin_hist = &metrics.GetHistogram("lightwave_fabric_link_margin_db");
    ber_hist = &metrics.GetHistogram("lightwave_fabric_link_ber_log10");
    loss_hist = &metrics.GetHistogram("lightwave_fabric_link_insertion_loss_db");
  }
  const phy::BerModel ber_model = phy::BerModel::ForTransceiver(transceiver);
  const phy::OimFilter oim;
  // One parallel work item per OCS (the survey is read-only over the pod);
  // per-OCS report vectors are concatenated in OCS order below, so the
  // output is bit-identical to the sequential survey. The per-link RNG is
  // derived from the link identity, not from a shared stream, which is
  // what makes the fan-out safe.
  const auto per_ocs = common::parallel::ParallelMap(
      static_cast<std::uint64_t>(pod_->ocs_count()), [&](std::uint64_t ocs_index) {
        const int i = static_cast<int>(ocs_index);
        std::vector<LinkQualityReport> ocs_reports;
        for (const auto& conn : pod_->ocs(i).SurveyConnections()) {
          // Per-module manufacturing spread is a property of the transceivers
          // on this link, so derive it deterministically from the link
          // identity (stable across re-surveys; a re-patched OCS path keeps
          // its modules).
          common::Rng population(options.seed ^
                                 (static_cast<std::uint64_t>(i) * 1000003ull +
                                  static_cast<std::uint64_t>(conn.north) * 131ull +
                                  static_cast<std::uint64_t>(conn.south)));
          optics::LinkBudget budget = optics::MakeSuperpodLink(
              transceiver, conn.insertion_loss, conn.return_loss);
          const optics::LinkAnalysis analysis = budget.Analyze();
          const auto& worst = analysis.WorstLane();
          // Per-module manufacturing spread plus the reserved end-of-life
          // derating; both eat into the beginning-of-life margin.
          // Manufacturing screens truncate the population tails (parts
          // outside +/-2 sigma never ship), which is what keeps every field
          // link inside the budget.
          auto screened = [&](double sigma) {
            return std::clamp(population.Gaussian(0.0, sigma), -2.0 * sigma,
                              2.0 * sigma);
          };
          const double spread = screened(options.tx_power_sigma_db) -
                                std::abs(screened(options.sensitivity_sigma_db));
          const common::DbmPower effective_rx =
              worst.rx_power - common::Decibel{options.derating_db - spread};
          LinkQualityReport report;
          report.ocs_id = i;
          report.north = conn.north;
          report.south = conn.south;
          report.insertion_loss_db = conn.insertion_loss.value();
          report.rx_power_dbm = worst.rx_power.value();
          report.mpi_db = analysis.mpi.value();
          report.margin_db = (effective_rx - transceiver.rx_sensitivity).value();
          report.pre_fec_ber =
              transceiver.has_oim_dsp
                  ? ber_model.PreFecBerWithOim(effective_rx, analysis.mpi, oim)
                  : ber_model.PreFecBer(effective_rx, analysis.mpi);
          ocs_reports.push_back(report);
        }
        return ocs_reports;
      });
  std::vector<LinkQualityReport> reports;
  for (const auto& ocs_reports : per_ocs) {
    reports.insert(reports.end(), ocs_reports.begin(), ocs_reports.end());
  }
  // Histograms are filled in survey order on this thread, after the
  // parallel fan-out, so telemetry exports match the sequential survey.
  for (const auto& report : reports) {
    if (margin_hist != nullptr) margin_hist->Observe(report.margin_db);
    if (ber_hist != nullptr && report.pre_fec_ber > 0.0) {
      ber_hist->Observe(std::log10(report.pre_fec_ber));
    }
    if (loss_hist != nullptr) loss_hist->Observe(report.insertion_loss_db);
  }
  span.Annotate("links", std::to_string(reports.size()));
  return reports;
}

ctrl::FabricTelemetrySweep FabricManager::CollectTelemetry() {
  return controller_->CollectTelemetry();
}

FabricManager::RepairSummary FabricManager::RepairOutOfBudgetLinks(
    const optics::TransceiverSpec& transceiver, const LinkQualityOptions& options,
    double min_margin_db, int max_rounds) {
  telemetry::TraceSpan span(hub_, "repair_out_of_budget_links");
  RepairSummary summary;
  for (int round = 0; round < max_rounds; ++round) {
    bool repaired_any = false;
    for (const auto& report : SurveyLinkQuality(transceiver, options)) {
      const bool out_of_budget =
          report.pre_fec_ber > phy::kKp4BerThreshold || report.margin_db < min_margin_db;
      if (!out_of_budget) continue;
      // Re-patch both ends of the path onto spare collimator positions (the
      // production use of the 8 spare ports: "link testing and repairs").
      ocs::PalomarSwitch& sw = pod_->ocs(report.ocs_id);
      const bool north_ok = sw.RemapToSpare(true, report.north).ok();
      const bool south_ok = sw.RemapToSpare(false, report.south).ok();
      if (north_ok || south_ok) {
        ++summary.repairs_attempted;
        repaired_any = true;
      } else {
        ++summary.unrepairable;
      }
    }
    if (!repaired_any) break;
  }
  // Final audit.
  for (const auto& report : SurveyLinkQuality(transceiver, options)) {
    if (report.pre_fec_ber > phy::kKp4BerThreshold || report.margin_db < min_margin_db) {
      ++summary.still_out_of_budget;
    }
  }
  if (hub_ != nullptr) {
    hub_->metrics()
        .GetCounter("lightwave_fabric_link_repairs_total")
        .Inc(static_cast<std::uint64_t>(summary.repairs_attempted));
  }
  span.Annotate("repairs_attempted", std::to_string(summary.repairs_attempted));
  span.Annotate("still_out_of_budget", std::to_string(summary.still_out_of_budget));
  return summary;
}

}  // namespace lightwave::core
