#include "core/tco.h"

#include <algorithm>
#include <cmath>

#include "tpu/wiring.h"

namespace lightwave::core {
namespace {

struct PodGeometry {
  int optical_links;     // inter-cube links (one strand with bidi optics)
  int optical_ends;      // link endpoints
  int electrical_links;  // intra-cube ICI links
};

PodGeometry ProductionPod() {
  // 64 cubes x 96 optical face links, each link shared by two cubes; intra-
  // cube 4x4x4 mesh has 3 * 4*4*3 = 144 electrical links per cube.
  const int cubes = tpu::kCubesPerPod;
  PodGeometry g;
  g.optical_ends = cubes * tpu::kOpticalLinksPerCube;  // 6144
  g.optical_links = g.optical_ends / 2;                // 3072
  g.electrical_links = cubes * 144;
  return g;
}

}  // namespace

std::vector<FabricTco> SuperpodFabricComparison(const ComponentPrices& p) {
  const PodGeometry g = ProductionPod();
  std::vector<FabricTco> out;

  const double elec_usd = g.electrical_links * p.electrical_link_usd;
  const double elec_w = g.electrical_links * p.electrical_link_w;

  // --- static direct-connect baseline ---------------------------------------
  // Duplex short-reach modules at every link end, two strands per link,
  // fixed 16x16x16 wiring.
  FabricTco fabric_static;
  fabric_static.name = "Static";
  fabric_static.capex_usd = elec_usd + g.optical_ends * p.static_duplex_module_usd +
                            2.0 * g.optical_links * p.fiber_run_usd;
  fabric_static.power_w = elec_w + g.optical_ends * p.static_duplex_module_w;

  // --- lightwave fabric -------------------------------------------------------
  // Bidi OSFPs (one module per two link-ends), one strand per link, 48
  // Palomar OCSes.
  FabricTco lightwave;
  lightwave.name = "Lightwave Fabric";
  const int bidi_modules = g.optical_ends / 2;
  const int ocs_count = tpu::OcsCountForTransceiver(/*bidirectional=*/true,
                                                    /*wavelengths_per_fiber=*/4);
  lightwave.capex_usd = elec_usd + bidi_modules * p.bidi_osfp_module_usd +
                        g.optical_links * p.fiber_run_usd + ocs_count * p.ocs_usd;
  lightwave.power_w = elec_w + bidi_modules * p.bidi_osfp_module_w + ocs_count * p.ocs_w;

  // --- EPS-based DCN fabric ----------------------------------------------------
  // Cube links terminate on oversubscribed aggregation EPSes: duplex modules
  // at the cubes, short-reach modules + switch ports at the EPS layer.
  FabricTco dcn;
  dcn.name = "DCN (EPS)";
  const double eps_ports = g.optical_ends / p.eps_oversubscription;
  dcn.capex_usd = elec_usd + g.optical_ends * p.static_duplex_module_usd +
                  eps_ports * (p.eps_port_usd + p.eps_side_module_usd) +
                  2.0 * g.optical_links * p.fiber_run_usd +
                  eps_ports * p.fiber_run_usd;
  dcn.power_w = elec_w + g.optical_ends * p.static_duplex_module_w +
                eps_ports * (p.eps_port_w + p.eps_side_module_w);

  for (FabricTco* f : {&dcn, &lightwave, &fabric_static}) {
    f->relative_cost = f->capex_usd / fabric_static.capex_usd;
    f->relative_power = f->power_w / fabric_static.power_w;
  }
  return {dcn, lightwave, fabric_static};
}

std::vector<DeploymentFootprint> SuperpodDeploymentFootprints(const ComponentPrices& p) {
  const PodGeometry g = ProductionPod();
  std::vector<DeploymentFootprint> out;
  struct Option {
    const char* name;
    bool bidi;
    int lanes;
  };
  for (const Option& opt : {Option{"CWDM4 duplex", false, 4}, Option{"CWDM4 bidi", true, 4},
                            Option{"CWDM8 bidi", true, 8}}) {
    DeploymentFootprint f;
    f.transceiver = opt.name;
    f.ocs_count = tpu::OcsCountForTransceiver(opt.bidi, opt.lanes);
    // One strand per OCS-routed connection; duplex needs two per link and
    // CWDM8 halves the strand count again.
    const int strands_per_link = opt.bidi ? 1 : 2;
    f.fiber_strands = g.optical_links * strands_per_link / (opt.lanes / 4);
    f.ocs_capex_usd = f.ocs_count * p.ocs_usd;
    out.push_back(f);
  }
  return out;
}

DeploymentTimeline SimulateDeployment(int cubes, int cubes_per_week,
                                      int static_verification_weeks) {
  DeploymentTimeline timeline;
  const int build_weeks = (cubes + cubes_per_week - 1) / cubes_per_week;
  const int total_weeks = build_weeks + static_verification_weeks;
  for (int week = 1; week <= total_weeks; ++week) {
    const int installed = std::min(cubes, week * cubes_per_week);
    // Lightwave: each delivered rack is verified in isolation and joined to
    // the fabric immediately; capacity tracks the install curve.
    const double lightwave = static_cast<double>(installed) / cubes;
    // Static: nothing is usable until the last cube and all inter-rack
    // cabling are in AND the whole fabric passes end-to-end verification.
    const double fixed =
        (installed >= cubes && week >= build_weeks + static_verification_weeks) ? 1.0
                                                                                : 0.0;
    timeline.lightwave_usable_fraction.push_back(lightwave);
    timeline.static_usable_fraction.push_back(fixed);
    timeline.lightwave_capacity_weeks += lightwave;
    timeline.static_capacity_weeks += fixed;
  }
  return timeline;
}

std::vector<DcnTco> DcnFabricComparison(int aggregation_blocks, double uplink_gbps,
                                        const ComponentPrices& p) {
  // Everything is accounted per 400G unit of aggregation-block uplink.
  const double units = aggregation_blocks * uplink_gbps / 400.0;

  // Spine-full Clos: each uplink unit is an AB->spine link with a
  // transceiver at both ends and a spine switch port.
  DcnTco spine_full;
  spine_full.name = "Spine-full Clos";
  spine_full.capex_usd =
      units * (p.ab_block_usd_per_400g + 2.0 * p.dcn_tx_usd + p.spine_port_usd);
  spine_full.power_w = units * (p.ab_block_w_per_400g + 2.0 * p.dcn_tx_w + p.spine_port_w);

  // Spine-free: uplink units pair into direct AB-AB links through OCS ports;
  // per unit that is one transceiver and one OCS port share.
  DcnTco spine_free;
  spine_free.name = "Spine-free lightwave";
  const double ocs_share_usd = p.ocs_usd / p.ocs_ports;
  const double ocs_share_w = p.ocs_w / p.ocs_ports;
  spine_free.capex_usd =
      units * (p.ab_block_usd_per_400g + p.dcn_tx_usd + ocs_share_usd);
  spine_free.power_w = units * (p.ab_block_w_per_400g + p.dcn_tx_w + ocs_share_w);

  for (DcnTco* f : {&spine_full, &spine_free}) {
    f->relative_cost = f->capex_usd / spine_full.capex_usd;
    f->relative_power = f->power_w / spine_full.power_w;
  }
  return {spine_full, spine_free};
}

}  // namespace lightwave::core
