#include "core/topology_engineer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <set>

namespace lightwave::core {

TrunkAllocation::TrunkAllocation(int blocks, int ports_per_block)
    : blocks_(blocks),
      ports_per_block_(ports_per_block),
      links_(static_cast<std::size_t>(blocks) * blocks, 0) {
  assert(blocks > 1 && ports_per_block > 0);
}

int TrunkAllocation::LinksBetween(int a, int b) const {
  assert(a >= 0 && a < blocks_ && b >= 0 && b < blocks_);
  return links_[static_cast<std::size_t>(a) * blocks_ + b];
}

void TrunkAllocation::SetLinks(int a, int b, int count) {
  assert(a >= 0 && a < blocks_ && b >= 0 && b < blocks_ && a != b && count >= 0);
  links_[static_cast<std::size_t>(a) * blocks_ + b] = count;
  links_[static_cast<std::size_t>(b) * blocks_ + a] = count;
}

int TrunkAllocation::DegreeOf(int block) const {
  int degree = 0;
  for (int b = 0; b < blocks_; ++b) degree += LinksBetween(block, b);
  return degree;
}

int TrunkAllocation::TotalLinks() const {
  int total = 0;
  for (int a = 0; a < blocks_; ++a) {
    for (int b = a + 1; b < blocks_; ++b) total += LinksBetween(a, b);
  }
  return total;
}

TrunkAllocation AllocateTrunks(const sim::TrafficMatrix& forecast, int ports_per_block,
                               double uniform_floor_fraction) {
  const int n = forecast.nodes();
  TrunkAllocation alloc(n, ports_per_block);

  // Uniform floor: spread floor ports evenly (at least 1 per pair when the
  // budget allows).
  const int floor_ports =
      static_cast<int>(std::floor(ports_per_block * uniform_floor_fraction));
  const int floor_per_pair = std::max(n - 1 <= ports_per_block ? 1 : 0,
                                      floor_ports / std::max(1, n - 1));
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      alloc.SetLinks(a, b, floor_per_pair);
    }
  }
  for (int a = 0; a < n; ++a) degree[static_cast<std::size_t>(a)] = alloc.DegreeOf(a);

  // Demand-proportional fill: repeatedly grant one more link to the pair
  // with the highest unserved demand per allocated link, subject to both
  // endpoints' budgets (a largest-remainder-style greedy that keeps the
  // degree constraint exact).
  struct Pair {
    int a, b;
    double demand;
  };
  std::vector<Pair> pairs;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      pairs.push_back({a, b, forecast.at(a, b) + forecast.at(b, a)});
    }
  }
  while (true) {
    int best = -1;
    double best_score = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto& p = pairs[i];
      if (degree[static_cast<std::size_t>(p.a)] >= ports_per_block ||
          degree[static_cast<std::size_t>(p.b)] >= ports_per_block) {
        continue;
      }
      const double score = p.demand / (alloc.LinksBetween(p.a, p.b) + 1.0);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0 || best_score <= 0.0) break;
    const auto& p = pairs[static_cast<std::size_t>(best)];
    alloc.SetLinks(p.a, p.b, alloc.LinksBetween(p.a, p.b) + 1);
    ++degree[static_cast<std::size_t>(p.a)];
    ++degree[static_cast<std::size_t>(p.b)];
  }
  return alloc;
}

MatchingDecomposition DecomposeToMatchings(const TrunkAllocation& allocation, int ocs_count,
                                           const std::vector<OcsMatching>* prior) {
  // Edge coloring with at most `ocs_count` colors: first-fit per edge plus a
  // Kempe-chain repair. While a vertex has uncolored edges its colored
  // degree is < ocs_count, so a free color exists at each endpoint; when no
  // color is free at BOTH ends, flipping the two-color alternating path
  // starting at one endpoint frees a common color (always, unless the path
  // terminates at the other endpoint — rare; such edges are dropped and
  // reported).
  const int n = allocation.blocks();
  const int k = ocs_count;
  // partner[v][c]: the block v is matched with in color c, or -1.
  std::vector<std::vector<int>> partner(static_cast<std::size_t>(n),
                                        std::vector<int>(static_cast<std::size_t>(k), -1));

  // Incremental mode: re-seat prior assignments the allocation still wants
  // (keeps those trunks on their OCS, hence undisturbed in the switches).
  std::vector<int> kept(static_cast<std::size_t>(n) * n, 0);
  if (prior != nullptr) {
    const int prior_colors = std::min<int>(k, static_cast<int>(prior->size()));
    for (int c = 0; c < prior_colors; ++c) {
      for (const auto& [a, b] : (*prior)[static_cast<std::size_t>(c)]) {
        if (a < 0 || b < 0 || a >= n || b >= n || a == b) continue;
        const std::size_t key = static_cast<std::size_t>(std::min(a, b)) * n + std::max(a, b);
        if (kept[key] >= allocation.LinksBetween(a, b)) continue;  // no longer wanted
        if (partner[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)] >= 0 ||
            partner[static_cast<std::size_t>(b)][static_cast<std::size_t>(c)] >= 0) {
          continue;
        }
        partner[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)] = b;
        partner[static_cast<std::size_t>(b)][static_cast<std::size_t>(c)] = a;
        ++kept[key];
      }
    }
  }

  struct Edge {
    int a, b;
  };
  std::vector<Edge> edges;
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const int count = allocation.LinksBetween(a, b);
      const std::size_t key = static_cast<std::size_t>(a) * n + b;
      for (int i = kept[key]; i < count; ++i) edges.push_back({a, b});
      degree[static_cast<std::size_t>(a)] += count;
      degree[static_cast<std::size_t>(b)] += count;
    }
  }
  // Hardest edges first: highest combined endpoint degree.
  std::stable_sort(edges.begin(), edges.end(), [&](const Edge& x, const Edge& y) {
    return degree[static_cast<std::size_t>(x.a)] + degree[static_cast<std::size_t>(x.b)] >
           degree[static_cast<std::size_t>(y.a)] + degree[static_cast<std::size_t>(y.b)];
  });

  auto free_colors_at = [&](int v) {
    std::vector<int> colors;
    for (int c = 0; c < k; ++c) {
      if (partner[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)] < 0) {
        colors.push_back(c);
      }
    }
    return colors;
  };

  // Flips the c_need/c_alt alternating path starting at `start` so that
  // c_need becomes free at `start`; aborts (returns false) if the path
  // terminates at `forbidden` (flipping would steal its free color).
  auto kempe_flip = [&](int start, int forbidden, int c_need, int c_alt) {
    struct PathEdge {
      int x, y, color;
    };
    std::vector<PathEdge> path;
    int u = start, cur = c_need;
    while (true) {
      const int v = partner[static_cast<std::size_t>(u)][static_cast<std::size_t>(cur)];
      if (v < 0) break;
      path.push_back({u, v, cur});
      if (v == forbidden) return false;
      u = v;
      cur = cur == c_need ? c_alt : c_need;
    }
    // Batch-clear then batch-set: each vertex touches each color at most
    // once, so the batches cannot clobber each other.
    for (const auto& pe : path) {
      partner[static_cast<std::size_t>(pe.x)][static_cast<std::size_t>(pe.color)] = -1;
      partner[static_cast<std::size_t>(pe.y)][static_cast<std::size_t>(pe.color)] = -1;
    }
    for (const auto& pe : path) {
      const int other = pe.color == c_need ? c_alt : c_need;
      partner[static_cast<std::size_t>(pe.x)][static_cast<std::size_t>(other)] = pe.y;
      partner[static_cast<std::size_t>(pe.y)][static_cast<std::size_t>(other)] = pe.x;
    }
    return true;
  };

  MatchingDecomposition out;
  out.per_ocs.resize(static_cast<std::size_t>(k));
  int dropped = 0;

  for (const Edge& e : edges) {
    if (degree[static_cast<std::size_t>(e.a)] > k || degree[static_cast<std::size_t>(e.b)] > k) {
      // Over-budget endpoint (cannot happen with AllocateTrunks); drop.
      ++dropped;
      continue;
    }
    int assigned = -1;
    for (int c = 0; c < k; ++c) {
      if (partner[static_cast<std::size_t>(e.a)][static_cast<std::size_t>(c)] < 0 &&
          partner[static_cast<std::size_t>(e.b)][static_cast<std::size_t>(c)] < 0) {
        assigned = c;
        break;
      }
    }
    if (assigned < 0) {
      // Kempe repair: try every (free-at-a, free-at-b) color pair and both
      // flip directions until one frees a common color. While the edge is
      // uncolored both endpoints have colored degree < k, so free colors
      // exist at each end.
      const auto free_a = free_colors_at(e.a);
      const auto free_b = free_colors_at(e.b);
      for (std::size_t i = 0; assigned < 0 && i < free_a.size(); ++i) {
        for (std::size_t j = 0; assigned < 0 && j < free_b.size(); ++j) {
          const int c1 = free_a[i], c2 = free_b[j];
          if (c1 == c2) continue;
          if (kempe_flip(e.b, e.a, c1, c2)) {
            assigned = c1;  // c1 now free at both ends
          } else if (kempe_flip(e.a, e.b, c2, c1)) {
            assigned = c2;
          }
        }
      }
    }
    if (assigned < 0) {
      ++dropped;
      continue;
    }
    partner[static_cast<std::size_t>(e.a)][static_cast<std::size_t>(assigned)] = e.b;
    partner[static_cast<std::size_t>(e.b)][static_cast<std::size_t>(assigned)] = e.a;
  }

  for (int c = 0; c < k; ++c) {
    for (int v = 0; v < n; ++v) {
      const int u = partner[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)];
      if (u > v) {
        out.per_ocs[static_cast<std::size_t>(c)].emplace_back(v, u);
        ++out.placed_links;
      }
    }
  }
  out.dropped_links = dropped;
  return out;
}

ReconfigurationPlan PlanReconfiguration(const MatchingDecomposition& current,
                                        const MatchingDecomposition& next) {
  assert(current.per_ocs.size() == next.per_ocs.size());
  const int k = static_cast<int>(next.per_ocs.size());

  // Pair each new matching with the old matching it overlaps most (greedy
  // assignment), so shared trunks land on the same OCS and stay undisturbed.
  std::vector<bool> old_taken(static_cast<std::size_t>(k), false);
  std::vector<int> new_to_old(static_cast<std::size_t>(k), -1);
  auto overlap = [](const OcsMatching& a, const OcsMatching& b) {
    std::set<std::pair<int, int>> sa(a.begin(), a.end());
    int count = 0;
    for (const auto& e : b) count += sa.contains(e) ? 1 : 0;
    return count;
  };
  for (int round = 0; round < k; ++round) {
    int best_new = -1, best_old = -1, best_score = -1;
    for (int ni = 0; ni < k; ++ni) {
      if (new_to_old[static_cast<std::size_t>(ni)] >= 0) continue;
      for (int oi = 0; oi < k; ++oi) {
        if (old_taken[static_cast<std::size_t>(oi)]) continue;
        const int score = overlap(current.per_ocs[static_cast<std::size_t>(oi)],
                                  next.per_ocs[static_cast<std::size_t>(ni)]);
        if (score > best_score) {
          best_score = score;
          best_new = ni;
          best_old = oi;
        }
      }
    }
    if (best_new < 0) break;
    new_to_old[static_cast<std::size_t>(best_new)] = best_old;
    old_taken[static_cast<std::size_t>(best_old)] = true;
  }

  ReconfigurationPlan plan;
  plan.targets.resize(static_cast<std::size_t>(k));
  for (int ni = 0; ni < k; ++ni) {
    const int oi = new_to_old[static_cast<std::size_t>(ni)];
    const OcsMatching& old_matching =
        oi >= 0 ? current.per_ocs[static_cast<std::size_t>(oi)] : OcsMatching{};
    const OcsMatching& new_matching = next.per_ocs[static_cast<std::size_t>(ni)];
    plan.targets[static_cast<std::size_t>(oi >= 0 ? oi : ni)] = new_matching;
    std::set<std::pair<int, int>> old_set(old_matching.begin(), old_matching.end());
    std::set<std::pair<int, int>> new_set(new_matching.begin(), new_matching.end());
    for (const auto& e : new_set) {
      if (old_set.contains(e)) {
        ++plan.links_unchanged;
      } else {
        ++plan.links_added;
      }
    }
    for (const auto& e : old_set) {
      if (!new_set.contains(e)) ++plan.links_removed;
    }
  }
  return plan;
}

TopologyEngineer::TopologyEngineer(int blocks, int ocs_count, double trunk_gbps,
                                   double uniform_floor_fraction)
    : blocks_(blocks),
      ocs_count_(ocs_count),
      trunk_gbps_(trunk_gbps),
      floor_fraction_(uniform_floor_fraction),
      allocation_(blocks, ocs_count) {}

void TopologyEngineer::Engineer(const sim::TrafficMatrix& forecast) {
  allocation_ = AllocateTrunks(forecast, ocs_count_, floor_fraction_);
  decomposition_ = DecomposeToMatchings(allocation_, ocs_count_);
}

sim::DcnTopology TopologyEngineer::CurrentTopology() const {
  // Realize the integer allocation as trunk capacities.
  sim::TrafficMatrix as_capacity(blocks_);
  for (int a = 0; a < blocks_; ++a) {
    for (int b = 0; b < blocks_; ++b) {
      if (a != b) as_capacity.set(a, b, allocation_.LinksBetween(a, b) * trunk_gbps_);
    }
  }
  return sim::DcnTopology::FromTrunkCapacities(blocks_, ocs_count_ * trunk_gbps_,
                                               as_capacity);
}

ReconfigurationPlan TopologyEngineer::Reengineer(const sim::TrafficMatrix& forecast) {
  const MatchingDecomposition previous = decomposition_;
  Engineer(forecast);
  return PlanReconfiguration(previous, decomposition_);
}

}  // namespace lightwave::core
