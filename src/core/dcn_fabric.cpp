#include "core/dcn_fabric.h"

#include <cassert>
#include <set>

#include "common/check.h"

namespace lightwave::core {

using common::Result;
using common::Status;

DcnFabric::DcnFabric(std::uint64_t seed, int max_blocks, int ocs_count, double link_gbps,
                     double uniform_floor_fraction)
    : max_blocks_(max_blocks),
      link_gbps_(link_gbps),
      floor_fraction_(uniform_floor_fraction),
      blocks_(static_cast<std::size_t>(max_blocks)) {
  assert(max_blocks >= 2 && max_blocks <= ocs::kPalomarUsablePorts);
  assert(ocs_count >= 1 && link_gbps > 0.0);
  common::Rng rng(seed);
  bus_ = std::make_unique<ctrl::MessageBus>(rng.NextU64());
  controller_ = std::make_unique<ctrl::FabricController>(*bus_, /*max_retries=*/10);
  for (int i = 0; i < ocs_count; ++i) {
    switches_.push_back(std::make_unique<ocs::PalomarSwitch>(
        rng.NextU64(), "dcn-ocs-" + std::to_string(i)));
    agents_.push_back(std::make_unique<ctrl::OcsAgent>(*switches_.back()));
    controller_->Register(i, agents_.back().get());
  }
}

std::vector<int> DcnFabric::ActiveBlocks() const {
  std::vector<int> active;
  for (int b = 0; b < max_blocks_; ++b) {
    if (blocks_[static_cast<std::size_t>(b)].active) active.push_back(b);
  }
  return active;
}

Result<int> DcnFabric::AddBlock(const optics::TransceiverSpec& transceiver) {
  // Rapid Technology Refresh (§2.1): interoperability between heterogeneous
  // blocks is ensured through transceiver compatibility across generations.
  for (const auto& block : blocks_) {
    if (!block.active) continue;
    if (!block.transceiver->InteroperatesWith(transceiver)) {
      return common::FailedPrecondition(
          transceiver.name + " does not inter-operate with active generation " +
          block.transceiver->name);
    }
  }
  for (int b = 0; b < max_blocks_; ++b) {
    auto& block = blocks_[static_cast<std::size_t>(b)];
    if (!block.active) {
      block.active = true;
      block.transceiver = transceiver;
      block.tenant = kSharedPool;
      return b;
    }
  }
  return common::ResourceExhausted("fabric is at its maximum block count");
}

Status DcnFabric::RemoveBlock(int block) {
  if (block < 0 || block >= max_blocks_ ||
      !blocks_[static_cast<std::size_t>(block)].active) {
    return common::NotFound("no such active block");
  }
  blocks_[static_cast<std::size_t>(block)] = Block{};
  return Status::Ok();
}

Result<TenantId> DcnFabric::CreateTenant(const std::vector<int>& members) {
  if (members.size() < 2) {
    return common::InvalidArgument("a tenant needs at least two blocks");
  }
  for (int b : members) {
    if (b < 0 || b >= max_blocks_ || !blocks_[static_cast<std::size_t>(b)].active) {
      return common::NotFound("block " + std::to_string(b) + " is not active");
    }
    if (blocks_[static_cast<std::size_t>(b)].tenant != kSharedPool) {
      return common::FailedPrecondition("block " + std::to_string(b) +
                                        " already belongs to a tenant");
    }
  }
  const TenantId id = next_tenant_++;
  for (int b : members) blocks_[static_cast<std::size_t>(b)].tenant = id;
  return id;
}

Status DcnFabric::DissolveTenant(TenantId tenant) {
  if (tenant == kSharedPool) return common::InvalidArgument("cannot dissolve the pool");
  bool found = false;
  for (auto& block : blocks_) {
    if (block.active && block.tenant == tenant) {
      block.tenant = kSharedPool;
      found = true;
    }
  }
  if (!found) return common::NotFound("no such tenant");
  return Status::Ok();
}

TenantId DcnFabric::TenantOf(int block) const {
  assert(block >= 0 && block < max_blocks_);
  return blocks_[static_cast<std::size_t>(block)].tenant;
}

Result<DcnReconfigStats> DcnFabric::ApplyTopology(const sim::TrafficMatrix& forecast) {
  assert(forecast.nodes() >= max_blocks_);
  // Group blocks: shared pool plus each tenant, engineered independently so
  // no trunk crosses a group boundary (Fabric Isolation).
  std::map<TenantId, std::vector<int>> groups;
  for (int b = 0; b < max_blocks_; ++b) {
    if (blocks_[static_cast<std::size_t>(b)].active) {
      groups[blocks_[static_cast<std::size_t>(b)].tenant].push_back(b);
    }
  }

  // Per-OCS merged matchings over global block ids.
  std::vector<OcsMatching> merged(static_cast<std::size_t>(ocs_count()));
  for (const auto& [tenant, members] : groups) {
    if (members.size() < 2) continue;
    // Project the forecast onto the group's local index space.
    sim::TrafficMatrix local(static_cast<int>(members.size()));
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = 0; j < members.size(); ++j) {
        if (i == j) continue;
        local.set(static_cast<int>(i), static_cast<int>(j),
                  forecast.at(members[i], members[j]));
      }
    }
    const auto allocation = AllocateTrunks(local, ocs_count(), floor_fraction_);
    // Seed the edge coloring with the group's currently-installed trunks so
    // unchanged ones stay on their OCS (and hence ride through the
    // reconfiguration undisturbed).
    std::vector<OcsMatching> prior(static_cast<std::size_t>(ocs_count()));
    std::map<int, int> global_to_local;
    for (std::size_t i = 0; i < members.size(); ++i) {
      global_to_local[members[i]] = static_cast<int>(i);
    }
    for (int c = 0; c < ocs_count(); ++c) {
      for (const auto& conn : switches_[static_cast<std::size_t>(c)]->Connections()) {
        if (conn.north >= conn.south) continue;  // each trunk once
        auto a = global_to_local.find(conn.north);
        auto b = global_to_local.find(conn.south);
        if (a == global_to_local.end() || b == global_to_local.end()) continue;
        prior[static_cast<std::size_t>(c)].emplace_back(a->second, b->second);
      }
    }
    const auto decomposition = DecomposeToMatchings(allocation, ocs_count(), &prior);
    for (int c = 0; c < ocs_count(); ++c) {
      for (const auto& [i, j] : decomposition.per_ocs[static_cast<std::size_t>(c)]) {
        merged[static_cast<std::size_t>(c)].emplace_back(
            members[static_cast<std::size_t>(i)], members[static_cast<std::size_t>(j)]);
      }
    }
  }

  // Lower matchings to cross-connect targets: a trunk (a, b) is the
  // bidirectional pair a->b and b->a on that OCS.
  std::map<int, std::map<int, int>> targets;
  for (int c = 0; c < ocs_count(); ++c) {
    auto& target = targets[c];
    for (const auto& [a, b] : merged[static_cast<std::size_t>(c)]) {
      target[a] = b;
      target[b] = a;
    }
  }

  DcnReconfigStats stats;
  // Count undisturbed trunks against the currently installed state before
  // applying (the controller's per-OCS replies also report it; aggregate
  // from them).
  const auto result = controller_->ApplyTopology(targets);
  if (!result.ok) return common::Unavailable(result.error);
  stats.control_retries = result.retries_used;
  for (const auto& [ocs_id, reply] : result.replies) {
    stats.links_established += static_cast<int>(reply.established);
    stats.links_removed += static_cast<int>(reply.removed);
    stats.links_undisturbed += static_cast<int>(reply.undisturbed);
  }
  if (common::ValidationEnabled()) {
    LW_CHECK_OK(ValidateInvariants()) << "after ApplyTopology";
  }
  return stats;
}

common::Status DcnFabric::ValidateInvariants() const {
  for (std::size_t c = 0; c < switches_.size(); ++c) {
    const auto& sw = *switches_[c];
    for (const auto& conn : sw.Connections()) {
      if (conn.north >= max_blocks_ || conn.south >= max_blocks_) {
        return common::Internal("OCS " + std::to_string(c) +
                                " cross-connect terminates outside the block range");
      }
      if (!blocks_[static_cast<std::size_t>(conn.north)].active ||
          !blocks_[static_cast<std::size_t>(conn.south)].active) {
        return common::Internal("OCS " + std::to_string(c) +
                                " cross-connect terminates on a retired block");
      }
      // Link-state symmetry: a trunk (a, b) occupies both a->b and b->a on
      // the same switch; a one-sided connect is a corrupted trunk.
      const auto reverse = sw.ConnectionOn(conn.south);
      if (!reverse.has_value() || reverse->south != conn.north) {
        return common::Internal("OCS " + std::to_string(c) + " trunk " +
                                std::to_string(conn.north) + "->" +
                                std::to_string(conn.south) + " has no reverse direction");
      }
      if (TenantOf(conn.north) != TenantOf(conn.south)) {
        return common::Internal("trunk crosses a tenant boundary on OCS " +
                                std::to_string(c));
      }
    }
  }
  return common::Status::Ok();
}

int DcnFabric::TrunksBetween(int a, int b) const {
  int count = 0;
  for (const auto& sw : switches_) {
    const auto conn = sw->ConnectionOn(a);
    if (conn.has_value() && conn->south == b) ++count;
  }
  return count;
}

sim::DcnTopology DcnFabric::CurrentTopology() const {
  sim::TrafficMatrix capacity(max_blocks_);
  for (int a = 0; a < max_blocks_; ++a) {
    for (int b = 0; b < max_blocks_; ++b) {
      if (a != b) capacity.set(a, b, TrunksBetween(a, b) * link_gbps_);
    }
  }
  return sim::DcnTopology::FromTrunkCapacities(max_blocks_, ocs_count() * link_gbps_,
                                               capacity);
}

bool DcnFabric::IsolationHolds() const {
  for (const auto& sw : switches_) {
    for (const auto& conn : sw->Connections()) {
      if (conn.north >= max_blocks_ || conn.south >= max_blocks_) return false;
      if (TenantOf(conn.north) != TenantOf(conn.south)) return false;
    }
  }
  return true;
}

const std::optional<optics::TransceiverSpec>& DcnFabric::BlockTransceiver(int block) const {
  assert(block >= 0 && block < max_blocks_);
  return blocks_[static_cast<std::size_t>(block)].transceiver;
}

}  // namespace lightwave::core
