// Total-cost-of-ownership models: the Table 1 fabric comparison for a
// 4096-TPU superpod (static direct-connect vs lightwave vs EPS-based DCN)
// and the §4.2 spine-full vs spine-free datacenter comparison (30% CapEx /
// 41% power reduction). Component prices are calibrated constants (the
// relative results are the claim, absolute dollars are not); the
// calibration is recorded in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace lightwave::core {

struct ComponentPrices {
  // --- superpod fabric ------------------------------------------------------
  double static_duplex_module_usd = 400.0;  // short-reach 400G duplex
  double static_duplex_module_w = 7.8;
  double bidi_osfp_module_usd = 820.0;  // custom 2x400G bidi OSFP
  double bidi_osfp_module_w = 14.0;
  double ocs_usd = 9'000.0;  // Palomar at manufacturing volume
  double ocs_w = 108.0;
  double fiber_run_usd = 60.0;  // per strand, structured cabling
  /// EPS-based DCN option for the pod: aggregation switches with 4:1
  /// oversubscription toward the cubes; in-rack switch-side optics.
  double eps_port_usd = 400.0;  // per 400G switch port
  double eps_port_w = 2.0;
  double eps_side_module_usd = 150.0;  // short-reach module at the switch
  double eps_side_module_w = 2.0;
  double eps_oversubscription = 4.0;
  /// Common electrical ICI inside cubes (cables/backplane), per chip-link.
  double electrical_link_usd = 140.0;
  double electrical_link_w = 1.2;

  // --- datacenter network (per 400G of aggregation-block uplink) -------------
  double ab_block_usd_per_400g = 2'900.0;  // the block itself (common)
  double ab_block_w_per_400g = 39.0;
  double spine_port_usd = 1'200.0;  // spine EPS, per 400G port
  double spine_port_w = 25.0;
  double dcn_tx_usd = 250.0;  // 400G WDM transceiver
  double dcn_tx_w = 12.0;
  int ocs_ports = 128;  // usable duplex ports per Palomar
};

struct FabricTco {
  std::string name;
  double capex_usd = 0.0;
  double power_w = 0.0;
  double relative_cost = 0.0;  // vs the static baseline
  double relative_power = 0.0;
};

/// Table 1: cost/power of the three fabric options for a 4096-chip pod,
/// normalized to the static fabric.
std::vector<FabricTco> SuperpodFabricComparison(const ComponentPrices& prices = {});

/// §4.2.3: OCS + fiber count (and cost) vs transceiver technology — the 50%
/// saving from bidirectionality.
struct DeploymentFootprint {
  std::string transceiver;
  int ocs_count = 0;
  int fiber_strands = 0;
  double ocs_capex_usd = 0.0;
};
std::vector<DeploymentFootprint> SuperpodDeploymentFootprints(
    const ComponentPrices& prices = {});

/// §4.2.3 deployment timeline: the lightwave pod brings cubes into
/// production incrementally (each rack is verified stand-alone, then joined
/// through the OCS layer); the static pod is only usable once every cube and
/// cable is installed and the whole fabric verified end-to-end (the TPU v3
/// experience). Returns usable-capacity-over-time and the capacity-weeks
/// each strategy delivers during the build-out.
struct DeploymentTimeline {
  std::vector<double> lightwave_usable_fraction;  // per week
  std::vector<double> static_usable_fraction;     // per week
  double lightwave_capacity_weeks = 0.0;
  double static_capacity_weeks = 0.0;
};
DeploymentTimeline SimulateDeployment(int cubes = 64, int cubes_per_week = 8,
                                      int static_verification_weeks = 2);

/// Spine-full Clos vs spine-free OCS DCN (the [47] results quoted in §4.2):
/// CapEx and power for `aggregation_blocks` blocks of `uplink_gbps` each.
struct DcnTco {
  std::string name;
  double capex_usd = 0.0;
  double power_w = 0.0;
  double relative_cost = 0.0;   // vs spine-full
  double relative_power = 0.0;  // vs spine-full
};
std::vector<DcnTco> DcnFabricComparison(int aggregation_blocks, double uplink_gbps,
                                        const ComponentPrices& prices = {});

}  // namespace lightwave::core
