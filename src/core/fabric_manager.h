// FabricManager: the top-level public API of the library for the ML use
// case. It owns a superpod (cubes + Palomar OCSes), schedules slices through
// the lightwave fabric, talks to every switch through the control plane
// (wire-format messages over the management bus), and reports pod-wide link
// quality by composing the OCS path measurements with the transceiver link
// budget and the PHY BER model (the Fig. 13 production survey).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/scheduler.h"
#include "ctrl/controller.h"
#include "optics/transceiver.h"
#include "tpu/superpod.h"

namespace lightwave::telemetry {
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::core {

struct FabricManagerConfig {
  std::uint64_t seed = 1;
  int cubes = tpu::kCubesPerPod;
  int ocs_per_dim = tpu::kOcsPerDim;
  AllocationPolicy policy = AllocationPolicy::kReconfigurable;
  /// Management-network loss injected into the control bus (retries cover
  /// it; see ctrl::FabricController).
  double control_drop_probability = 0.0;
  /// Retry / backoff / circuit-breaker policy for the fabric controller.
  ctrl::FabricControllerOptions controller;
};

struct LinkQualityReport {
  int ocs_id = 0;
  int north = 0;
  int south = 0;
  double insertion_loss_db = 0.0;
  double rx_power_dbm = 0.0;
  double mpi_db = 0.0;
  double margin_db = 0.0;    // effective margin after derating
  double pre_fec_ber = 0.0;  // with OIM when the transceiver has the DSP
};

/// Per-link population effects applied by the survey: manufacturing spread
/// of Tx power and receiver sensitivity across millions of modules
/// (§4.1.2), and the end-of-life/system derating the link budget reserves
/// (aging, temperature, connector degradation). These are what turn the
/// huge beginning-of-life margins into the Fig. 13 BER population that sits
/// ~2 orders of magnitude under the KP4 threshold.
struct LinkQualityOptions {
  double tx_power_sigma_db = 0.35;
  double sensitivity_sigma_db = 0.25;
  double derating_db = 4.6;
  std::uint64_t seed = 0xF13;
};

class FabricManager {
 public:
  explicit FabricManager(FabricManagerConfig config = {});

  tpu::Superpod& pod() { return *pod_; }
  const tpu::Superpod& pod() const { return *pod_; }
  SliceScheduler& scheduler() { return *scheduler_; }

  /// Allocates + installs a slice of the given shape.
  common::Result<tpu::SliceId> CreateSlice(const tpu::SliceShape& shape);
  common::Status DestroySlice(tpu::SliceId id);

  /// Reacts to a cube failure: marks it unhealthy and, if a slice owned it,
  /// swaps in a healthy spare (reconfigurable policy). Returns the repaired
  /// slice id, or the scheduling error.
  common::Result<tpu::SliceId> HandleCubeFailure(int cube_id);

  /// Pod-wide link-quality survey over every active OCS connection for the
  /// given transceiver technology (Fig. 13).
  std::vector<LinkQualityReport> SurveyLinkQuality(
      const optics::TransceiverSpec& transceiver,
      const LinkQualityOptions& options = {}) const;

  /// Control-plane telemetry sweep over every OCS. Agents that never
  /// answered are reported in `failed` instead of being silently dropped.
  ctrl::FabricTelemetrySweep CollectTelemetry();

  /// Proactive link repair (§4.1.1 / §3.2.2): survey every path, re-patch
  /// out-of-budget links onto the OCS spare ports, and repeat until the pod
  /// is clean or spares run out. `min_margin_db` is the qualification bar.
  struct RepairSummary {
    int repairs_attempted = 0;
    int unrepairable = 0;        // no spares left on that switch
    int still_out_of_budget = 0; // after the final survey
  };
  RepairSummary RepairOutOfBudgetLinks(const optics::TransceiverSpec& transceiver,
                                       const LinkQualityOptions& options = {},
                                       double min_margin_db = 0.2, int max_rounds = 3);

  /// Wires `hub` through every layer the manager owns: the scheduler, the
  /// control bus, the fabric controller, every OCS agent, and every Palomar
  /// switch. Link-quality surveys additionally record pod-wide margin /
  /// BER / insertion-loss histograms (the Fig. 13 population). Pass nullptr
  /// to detach everything (the default no-op sink).
  void AttachTelemetry(telemetry::Hub* hub);
  telemetry::Hub* telemetry_hub() const { return hub_; }

 private:
  FabricManagerConfig config_;
  telemetry::Hub* hub_ = nullptr;
  std::unique_ptr<tpu::Superpod> pod_;
  std::unique_ptr<SliceScheduler> scheduler_;
  std::unique_ptr<ctrl::MessageBus> bus_;
  std::vector<std::unique_ptr<ctrl::OcsAgent>> agents_;
  std::unique_ptr<ctrl::FabricController> controller_;
};

}  // namespace lightwave::core
