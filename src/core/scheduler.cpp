#include "core/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>
#include <set>

#include "common/check.h"
#include "ctrl/wire.h"
#include "sim/event.h"
#include "telemetry/hub.h"

namespace lightwave::core {

using common::Result;
using common::Status;
using tpu::SliceId;
using tpu::SliceShape;
using tpu::SliceTopology;

const char* ToString(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kReconfigurable: return "reconfigurable";
    case AllocationPolicy::kContiguous: return "contiguous";
  }
  return "?";
}

SliceScheduler::SliceScheduler(tpu::Superpod& pod, AllocationPolicy policy)
    : pod_(pod), policy_(policy) {}

void SliceScheduler::AttachTelemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    request_counter_ = accepted_counter_ = rejected_counter_ = repair_counter_ = nullptr;
    busy_gauge_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  const telemetry::LabelSet labels{{"policy", ToString(policy_)}};
  request_counter_ = &metrics.GetCounter("lightwave_core_slice_requests_total", labels);
  accepted_counter_ = &metrics.GetCounter("lightwave_core_slices_accepted_total", labels);
  rejected_counter_ = &metrics.GetCounter("lightwave_core_slices_rejected_total", labels);
  repair_counter_ = &metrics.GetCounter("lightwave_core_slice_repairs_total", labels);
  busy_gauge_ = &metrics.GetGauge("lightwave_core_busy_cubes", labels);
  UpdateBusyGauge();
}

void SliceScheduler::UpdateBusyGauge() {
  if (busy_gauge_ != nullptr) busy_gauge_->Set(BusyCubes());
}

std::optional<std::vector<int>> SliceScheduler::PickCubes(const SliceShape& shape) const {
  const int want = shape.CubeCount();
  if (policy_ == AllocationPolicy::kReconfigurable) {
    const auto free = pod_.FreeHealthyCubes();
    if (static_cast<int>(free.size()) < want) return std::nullopt;
    return std::vector<int>(free.begin(), free.begin() + want);
  }

  // Contiguous policy: the pod's cubes live on a fixed side x side x side
  // grid; the slice must occupy an aligned sub-box (in any axis order).
  const int side = static_cast<int>(std::lround(std::cbrt(pod_.cube_count())));
  if (side * side * side != pod_.cube_count()) return std::nullopt;
  auto grid_id = [&](int x, int y, int z) { return x + side * (y + side * z); };

  std::set<int> free_set;
  for (int id : pod_.FreeHealthyCubes()) free_set.insert(id);

  int dims[3] = {shape.a, shape.b, shape.c};
  std::sort(dims, dims + 3);
  // Try all axis orders of the sorted dims.
  int perm[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (auto& p : perm) {
    const int dx = dims[p[0]], dy = dims[p[1]], dz = dims[p[2]];
    if (dx > side || dy > side || dz > side) continue;
    for (int ox = 0; ox + dx <= side; ++ox) {
      for (int oy = 0; oy + dy <= side; ++oy) {
        for (int oz = 0; oz + dz <= side; ++oz) {
          std::vector<int> cubes;
          cubes.reserve(static_cast<std::size_t>(dx) * dy * dz);
          bool ok = true;
          for (int z = oz; ok && z < oz + dz; ++z) {
            for (int y = oy; ok && y < oy + dy; ++y) {
              for (int x = ox; ok && x < ox + dx; ++x) {
                const int id = grid_id(x, y, z);
                if (!free_set.contains(id)) {
                  ok = false;
                } else {
                  cubes.push_back(id);
                }
              }
            }
          }
          if (ok) return cubes;
        }
      }
    }
  }
  return std::nullopt;
}

Result<SliceId> SliceScheduler::Allocate(const SliceShape& shape) {
  ++stats_.requests;
  if (request_counter_ != nullptr) request_counter_->Inc();
  auto reject = [this] {
    ++stats_.rejected;
    if (rejected_counter_ != nullptr) rejected_counter_->Inc();
  };
  auto cubes = PickCubes(shape);
  if (!cubes.has_value()) {
    reject();
    return common::ResourceExhausted("no placement for shape " + shape.ToCubeString() +
                                     " under " + ToString(policy_) + " policy");
  }
  auto topology = SliceTopology::Create(shape, std::move(*cubes));
  if (!topology.ok()) {
    reject();
    return topology.error();
  }
  auto installed = pod_.InstallSlice(topology.value());
  if (!installed.ok()) {
    reject();
    return installed.error();
  }
  ++stats_.accepted;
  if (accepted_counter_ != nullptr) accepted_counter_->Inc();
  UpdateBusyGauge();
  MaybeValidate("Allocate");
  return installed.value();
}

Status SliceScheduler::Release(SliceId id) {
  auto released = pod_.RemoveSlice(id);
  UpdateBusyGauge();
  MaybeValidate("Release");
  return released;
}

Result<SliceId> SliceScheduler::RepairSlice(SliceId id) {
  auto it = pod_.slices().find(id);
  if (it == pod_.slices().end()) return common::NotFound("no such slice");
  const SliceShape shape = it->second.topology.shape();
  std::vector<int> cubes = it->second.topology.cube_ids();

  if (policy_ != AllocationPolicy::kReconfigurable) {
    return common::FailedPrecondition("static fabric cannot swap cubes");
  }

  // Identify dead cubes and candidate spares.
  std::vector<std::size_t> dead_positions;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    if (!pod_.cube(cubes[i]).Healthy()) dead_positions.push_back(i);
  }
  if (dead_positions.empty()) return id;  // nothing to do

  auto spares = pod_.FreeHealthyCubes();
  if (spares.size() < dead_positions.size()) {
    return common::ResourceExhausted("not enough healthy spare cubes");
  }

  // Remove, patch the assignment, reinstall. Other slices stay untouched
  // thanks to the switches' undisturbed reconfiguration.
  auto removed = pod_.RemoveSlice(id);
  if (!removed.ok()) return removed.error();
  for (std::size_t i = 0; i < dead_positions.size(); ++i) {
    cubes[dead_positions[i]] = spares[i];
  }
  auto topology = SliceTopology::Create(shape, std::move(cubes));
  if (!topology.ok()) return topology.error();
  auto installed = pod_.InstallSlice(topology.value());
  if (!installed.ok()) return installed.error();
  ++stats_.repairs;
  if (repair_counter_ != nullptr) repair_counter_->Inc();
  MaybeValidate("RepairSlice");
  return installed.value();
}

void SliceScheduler::ExportState(ctrl::WireWriter& writer) const {
  writer.PutVarint(stats_.requests);
  writer.PutVarint(stats_.accepted);
  writer.PutVarint(stats_.rejected);
  writer.PutVarint(stats_.repairs);
  writer.PutVarint(pod_.slices().size());
  for (const auto& [id, slice] : pod_.slices()) {
    writer.PutU64(id);
    const SliceShape& shape = slice.topology.shape();
    writer.PutVarint(static_cast<std::uint64_t>(shape.a));
    writer.PutVarint(static_cast<std::uint64_t>(shape.b));
    writer.PutVarint(static_cast<std::uint64_t>(shape.c));
    writer.PutVarint(slice.topology.cube_ids().size());
    for (int cube : slice.topology.cube_ids()) {
      writer.PutVarint(static_cast<std::uint64_t>(cube));
    }
  }
  writer.PutU64(pod_.next_slice_id());
}

common::Status SliceScheduler::ImportState(ctrl::WireReader& reader) {
  Stats stats;
  auto requests = reader.GetVarint();
  auto accepted = reader.GetVarint();
  auto rejected = reader.GetVarint();
  auto repairs = reader.GetVarint();
  auto slice_count = reader.GetVarint();
  if (!requests || !accepted || !rejected || !repairs || !slice_count) {
    return common::Internal("scheduler state truncated");
  }
  stats.requests = *requests;
  stats.accepted = *accepted;
  stats.rejected = *rejected;
  stats.repairs = *repairs;
  for (std::uint64_t i = 0; i < *slice_count; ++i) {
    auto id = reader.GetU64();
    auto a = reader.GetVarint();
    auto b = reader.GetVarint();
    auto c = reader.GetVarint();
    auto cube_count = reader.GetVarint();
    if (!id || !a || !b || !c || !cube_count) {
      return common::Internal("scheduler slice entry truncated");
    }
    std::vector<int> cubes;
    cubes.reserve(static_cast<std::size_t>(*cube_count));
    for (std::uint64_t j = 0; j < *cube_count; ++j) {
      auto cube = reader.GetVarint();
      if (!cube) return common::Internal("scheduler slice cube list truncated");
      cubes.push_back(static_cast<int>(*cube));
    }
    const SliceShape shape{static_cast<int>(*a), static_cast<int>(*b),
                           static_cast<int>(*c)};
    auto topology = SliceTopology::Create(shape, std::move(cubes));
    if (!topology.ok()) return topology.error();
    auto installed = pod_.InstallSliceWithId(*id, topology.value());
    if (!installed.ok()) return installed.error();
  }
  auto next_slice_id = reader.GetU64();
  if (!next_slice_id) return common::Internal("scheduler state truncated");
  pod_.SetNextSliceId(*next_slice_id);
  stats_ = stats;
  UpdateBusyGauge();
  MaybeValidate("ImportState");
  return Status::Ok();
}

common::Status SliceScheduler::ValidateInvariants() const {
  std::map<int, SliceId> owner;
  for (const auto& [id, slice] : pod_.slices()) {
    const auto& cubes = slice.topology.cube_ids();
    if (static_cast<int>(cubes.size()) != slice.topology.shape().CubeCount()) {
      return common::Internal("slice " + std::to_string(id) +
                              " cube list disagrees with its shape");
    }
    for (int cube : cubes) {
      if (cube < 0 || cube >= pod_.cube_count()) {
        return common::Internal("slice " + std::to_string(id) +
                                " references out-of-range cube " + std::to_string(cube));
      }
      auto [it, inserted] = owner.emplace(cube, id);
      if (!inserted) {
        return common::Internal("cube " + std::to_string(cube) +
                                " double-booked by slices " + std::to_string(it->second) +
                                " and " + std::to_string(id));
      }
    }
  }
  // Ownership index must agree with the slice tables in both directions.
  for (int cube = 0; cube < pod_.cube_count(); ++cube) {
    const auto indexed = pod_.SliceOwningCube(cube);
    const auto it = owner.find(cube);
    if (indexed.has_value() != (it != owner.end()) ||
        (indexed.has_value() && *indexed != it->second)) {
      return common::Internal("ownership index disagrees with slice tables at cube " +
                              std::to_string(cube));
    }
  }
  return common::Status::Ok();
}

void SliceScheduler::MaybeValidate(const char* boundary) const {
  if (!common::ValidationEnabled()) return;
  LW_CHECK_OK(ValidateInvariants()) << ToString(policy_) << " scheduler after " << boundary;
}

int SliceScheduler::BusyCubes() const {
  int busy = 0;
  for (const auto& [id, slice] : pod_.slices()) {
    busy += slice.topology.shape().CubeCount();
  }
  return busy;
}

namespace {

/// Most-compact shape for n cubes: the factor triple minimizing max/min.
SliceShape MostCompactShape(int n) {
  SliceShape best{1, 1, n};
  double best_score = 1e18;
  for (const auto& s : tpu::EnumerateCanonicalShapes(n)) {
    const double score = static_cast<double>(std::max({s.a, s.b, s.c})) /
                         std::min({s.a, s.b, s.c});
    if (score < best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

}  // namespace

WorkloadResult SimulateWorkload(tpu::Superpod& pod, AllocationPolicy policy,
                                const WorkloadConfig& config) {
  SliceScheduler scheduler(pod, policy);
  sim::EventQueue queue;
  common::Rng rng(config.seed);

  // Optional observability: spans and time series are stamped with the
  // simulation clock, so instrumented runs stay deterministic.
  telemetry::Hub* hub = config.hub;
  telemetry::TimeSeries* busy_series = nullptr;
  // Admission-control view: what the scheduler's own counters cannot see —
  // jobs that waited in the backlog, jobs lost to failures, and the capacity
  // the pod lost to unhealthy cubes — exported so the Prometheus text dump
  // shows the §4.2.4 acceptance story, not just raw allocate outcomes.
  telemetry::Counter* submitted_counter = nullptr;
  telemetry::Counter* queued_counter = nullptr;
  telemetry::Counter* lost_counter = nullptr;
  telemetry::Gauge* backlog_gauge = nullptr;
  telemetry::Gauge* lost_capacity_gauge = nullptr;
  telemetry::Gauge* acceptance_gauge = nullptr;
  if (hub != nullptr) {
    hub->SetClock([&queue] { return queue.now(); });
    scheduler.AttachTelemetry(hub);
    const telemetry::LabelSet labels{{"policy", ToString(policy)}};
    busy_series =
        &hub->metrics().GetTimeSeries("lightwave_core_busy_cubes_series", labels);
    auto& metrics = hub->metrics();
    submitted_counter = &metrics.GetCounter("lightwave_core_jobs_submitted_total", labels);
    queued_counter = &metrics.GetCounter("lightwave_core_jobs_queued_total", labels);
    lost_counter = &metrics.GetCounter("lightwave_core_jobs_lost_total", labels);
    backlog_gauge = &metrics.GetGauge("lightwave_core_backlog_depth", labels);
    lost_capacity_gauge =
        &metrics.GetGauge("lightwave_core_lost_capacity_fraction", labels);
    acceptance_gauge = &metrics.GetGauge("lightwave_core_acceptance_rate", labels);
  }

  WorkloadResult result;
  // Jobs survive slice re-homing (repair changes the slice id), so track
  // both directions of the job <-> slice association.
  std::map<std::uint64_t, SliceId> job_to_slice;
  std::map<SliceId, std::uint64_t> slice_to_job;
  std::uint64_t next_job = 1;
  double busy_integral = 0.0;  // cube-hours
  double unhealthy_integral = 0.0;
  double last_t = 0.0;
  int unhealthy_cubes = 0;

  auto advance_integrals = [&] {
    const double now = queue.now();
    busy_integral += scheduler.BusyCubes() * (now - last_t);
    unhealthy_integral += unhealthy_cubes * (now - last_t);
    last_t = now;
  };

  // --- job lifecycle ----------------------------------------------------------
  struct PendingJob {
    SliceShape shape;
    double duration;
    double submitted_at;
  };
  std::deque<PendingJob> backlog;
  double wait_sum = 0.0;
  std::uint64_t wait_count = 0;

  // Starts a job now if capacity allows; schedules its completion.
  std::function<void()> drain_backlog;  // forward declaration for completions
  auto try_start = [&](const PendingJob& pending) {
    auto allocated = scheduler.Allocate(pending.shape);
    if (!allocated.ok()) return false;
    ++result.accepted;
    const double wait = queue.now() - pending.submitted_at;
    if (wait > 0.0) {
      ++result.started_from_queue;
      wait_sum += wait;
      ++wait_count;
      result.max_wait_hours = std::max(result.max_wait_hours, wait);
    }
    const std::uint64_t job = next_job++;
    job_to_slice[job] = allocated.value();
    slice_to_job[allocated.value()] = job;
    queue.After(pending.duration, [&, job] {
      advance_integrals();
      // The job may have been re-homed by a repair; look up the live id.
      auto it = job_to_slice.find(job);
      if (it != job_to_slice.end()) {
        (void)scheduler.Release(it->second);
        slice_to_job.erase(it->second);
        job_to_slice.erase(it);
      }
      drain_backlog();  // freed capacity: admit waiting jobs FIFO
    });
    return true;
  };
  drain_backlog = [&] {
    while (!backlog.empty() && try_start(backlog.front())) backlog.pop_front();
    if (backlog_gauge != nullptr) backlog_gauge->Set(static_cast<double>(backlog.size()));
  };

  std::function<void()> schedule_arrival = [&] {
    advance_integrals();
    ++result.submitted;
    if (submitted_counter != nullptr) submitted_counter->Inc();
    const int size = config.size_menu_cubes[static_cast<std::size_t>(
        rng.UniformInt(config.size_menu_cubes.size()))];
    const SliceShape shape = MostCompactShape(size);
    // Draw the duration regardless of acceptance so the RNG stream (and
    // hence the offered workload) is identical across policies.
    const double duration = rng.Exponential(1.0 / config.mean_duration_hours);
    const PendingJob pending{shape, duration, queue.now()};
    // FIFO fairness: a job may only jump the queue when nothing is waiting.
    const bool started = (backlog.empty() || !config.queue_jobs) && try_start(pending);
    if (!started && config.queue_jobs) {
      backlog.push_back(pending);
      if (queued_counter != nullptr) queued_counter->Inc();
      if (backlog_gauge != nullptr) {
        backlog_gauge->Set(static_cast<double>(backlog.size()));
      }
    }
    if (busy_series != nullptr) busy_series->Record(queue.now(), scheduler.BusyCubes());
    queue.After(rng.Exponential(config.arrival_rate_per_hour), schedule_arrival);
  };
  queue.After(rng.Exponential(config.arrival_rate_per_hour), schedule_arrival);

  // --- failures ---------------------------------------------------------------
  std::function<void()> schedule_failure = [&] {
    advance_integrals();
    const int cube_id = static_cast<int>(
        rng.UniformInt(static_cast<std::uint64_t>(pod.cube_count())));
    if (pod.cube(cube_id).Healthy()) {
      pod.cube(cube_id).SetHostHealth(
          static_cast<int>(rng.UniformInt(tpu::kHostsPerCube)), false);
      ++unhealthy_cubes;
      queue.After(config.cube_repair_hours, [&, cube_id] {
        advance_integrals();
        pod.cube(cube_id).Restore();
        --unhealthy_cubes;
        drain_backlog();  // a cube came back: waiting jobs may now fit
      });
      // If a slice owned the cube, try to repair it (cube swap).
      auto owner = pod.SliceOwningCube(cube_id);
      if (owner.has_value() && slice_to_job.contains(*owner)) {
        const std::uint64_t job = slice_to_job.at(*owner);
        auto repaired = scheduler.RepairSlice(*owner);
        slice_to_job.erase(*owner);
        if (repaired.ok()) {
          ++result.repaired;
          job_to_slice[job] = repaired.value();
          slice_to_job[repaired.value()] = job;
        } else {
          ++result.lost_to_failure;
          if (lost_counter != nullptr) lost_counter->Inc();
          job_to_slice.erase(job);
          (void)pod.RemoveSlice(*owner);
          drain_backlog();  // the dead job's cubes freed up
        }
      }
    }
    queue.After(rng.Exponential(pod.cube_count() / config.cube_mtbf_hours),
                schedule_failure);
  };
  if (config.cube_mtbf_hours > 0.0) {
    queue.After(rng.Exponential(pod.cube_count() / config.cube_mtbf_hours),
                schedule_failure);
  }

  queue.Run(config.sim_hours);
  advance_integrals();
  // The hub outlives the local queue the clock captured; unbind it.
  if (hub != nullptr) hub->SetClock({});

  result.acceptance_rate =
      result.submitted > 0
          ? static_cast<double>(result.accepted) / static_cast<double>(result.submitted)
          : 0.0;
  const double available = pod.cube_count() * config.sim_hours - unhealthy_integral;
  result.utilization = available > 0.0 ? busy_integral / available : 0.0;
  result.mean_wait_hours = wait_count > 0 ? wait_sum / static_cast<double>(wait_count) : 0.0;
  result.left_in_queue = backlog.size();
  if (lost_capacity_gauge != nullptr) {
    const double offered = pod.cube_count() * config.sim_hours;
    lost_capacity_gauge->Set(offered > 0.0 ? unhealthy_integral / offered : 0.0);
  }
  if (acceptance_gauge != nullptr) acceptance_gauge->Set(result.acceptance_rate);
  return result;
}

}  // namespace lightwave::core
