// Weighted-fair, quota-enforcing admission front of a fleet shard. The
// paper's fleet scheduler shares one fabric across many training jobs; this
// is the isolation layer that keeps a misbehaving tenant from starving the
// rest:
//
//   * Per-tenant TOKEN BUCKETS enforce quota: Offer() spends one token per
//     command and rejects (kResourceExhausted, reason "quota") when the
//     tenant's bucket is dry. Tick(seconds) refills buckets at the tenant's
//     configured rate, up to its burst.
//   * Per-tenant BOUNDED QUEUES replace one shared queue, so backpressure is
//     per tenant instead of head-of-line: a tenant flooding its own queue is
//     rejected (reason "backpressure") while every other tenant's queue
//     stays open.
//   * DEFICIT ROUND ROBIN dequeues: each PopBatch round grants every
//     backlogged tenant a quantum proportional to its weight, so service is
//     weight-fair over time regardless of who shoves hardest.
//
// All entry points are mutex-guarded: the router offers from its thread
// while a pipelined shard's journal thread pops batches.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "svc/command.h"

namespace lightwave::telemetry {
class Counter;
class Gauge;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::fleet {

/// Per-tenant admission contract.
struct TenantQuota {
  /// Tokens (commands) granted per Tick second.
  double rate = 64.0;
  /// Bucket capacity; also the initial fill, so a tenant can burst this
  /// many commands cold.
  double burst = 64.0;
  /// DRR weight: relative share of dequeue bandwidth under contention.
  double weight = 1.0;
};

struct AdmissionOptions {
  /// Contract for tenants without an explicit override.
  TenantQuota default_quota;
  /// Bound of EACH tenant's queue (per-tenant backpressure).
  std::size_t per_tenant_queue_capacity = 64;
  /// Base DRR quantum: commands granted per round to a weight-1.0 tenant.
  double drr_quantum = 8.0;
};

struct AdmissionStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t popped = 0;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options = {});

  /// Installs (or replaces) `tenant`'s contract. Affects future refills and
  /// rounds; the bucket re-fills to the new burst.
  void SetQuota(std::uint32_t tenant, TenantQuota quota);

  /// Quota + backpressure gate. Ok = the command is queued and WILL be
  /// popped eventually; the caller may still see a duplicate/gap verdict
  /// from the shard's journal stage.
  common::Status Offer(const svc::SliceCommand& cmd);

  /// Advances every tenant's token bucket by `seconds` of refill.
  void Tick(double seconds);

  /// Deficit-round-robin dequeue of up to `max_commands` across backlogged
  /// tenants. Returns fewer (possibly zero) when the queues drain first.
  std::vector<svc::SliceCommand> PopBatch(std::size_t max_commands);

  /// Total queued commands across tenants.
  std::size_t Depth() const;
  /// Queued commands for one tenant.
  std::size_t TenantDepth(std::uint32_t tenant) const;

  AdmissionStats stats() const;

  /// lightwave_fleet_admitted_total / lightwave_fleet_rejected_total
  /// (reason-labeled) counters and the queue-depth gauge, labeled with this
  /// queue's shard. Pass nullptr to detach.
  void AttachTelemetry(telemetry::Hub* hub, const std::string& shard_label);

 private:
  struct TenantState {
    TenantQuota quota;
    double tokens = 0.0;
    double deficit = 0.0;
    std::deque<svc::SliceCommand> queue;
  };

  /// Lookup-or-create under mu_.
  TenantState& StateFor(std::uint32_t tenant) LW_REQUIRES(mu_);
  void UpdateDepthGauge() LW_REQUIRES(mu_);

  /// Rank kFleetAdmission — the outermost lock of the fleet layer: held
  /// while attaching telemetry series (registry, rank kTelemetryRegistry),
  /// never while any other lw::Mutex is taken first.
  mutable lw::Mutex mu_{"fleet.admission", lw::rank::kFleetAdmission};
  AdmissionOptions options_;
  std::map<std::uint32_t, TenantState> tenants_ LW_GUARDED_BY(mu_);
  /// DRR cursor: tenant id the next round resumes after (fairness across
  /// PopBatch calls).
  std::uint32_t resume_after_ LW_GUARDED_BY(mu_) = 0;
  bool has_resume_ LW_GUARDED_BY(mu_) = false;
  std::size_t depth_ LW_GUARDED_BY(mu_) = 0;
  AdmissionStats stats_ LW_GUARDED_BY(mu_);

  telemetry::Counter* admitted_counter_ LW_GUARDED_BY(mu_) = nullptr;
  telemetry::Counter* rejected_quota_counter_ LW_GUARDED_BY(mu_) = nullptr;
  telemetry::Counter* rejected_backpressure_counter_ LW_GUARDED_BY(mu_) = nullptr;
  telemetry::Gauge* depth_gauge_ LW_GUARDED_BY(mu_) = nullptr;
};

}  // namespace lightwave::fleet
