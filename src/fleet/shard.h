// One fleet shard: a disjoint partition of the fleet (its own Superpod,
// FleetService, WAL + snapshot devices) fronted by a weighted-fair
// AdmissionQueue. The shard is where group commit happens — commands pop
// from admission in DRR batches and journal through ONE Wal::AppendBatch.
//
// Two execution modes:
//
//   * SYNC (PumpOnce): pop a batch, feed it through the service queue, and
//     ProcessBatch it on the calling thread. Crash points fire exactly as
//     FleetService::ProcessBatch documents (kPreAppend and
//     kPostAppendPreApply once per batch, kMidApply per command), so the
//     per-shard crash matrix drives this mode.
//
//   * PIPELINED (Start/Stop): a journal thread pops batches, filters them
//     against the pending frontiers (duplicates acked, gaps dropped), and
//     group-appends; a bounded handoff queue carries journaled batches to
//     an apply thread that applies them and takes snapshots. The two
//     threads touch disjoint FleetService state (see fleet_service.h); the
//     snapshot->compaction handoff is the service's atomic floor. This is
//     the throughput mode the bench sweeps.
//
// The shard does not own the pod or the storage devices: like FleetService,
// it is a volatile process over durable media, so a crash trial can abandon
// one shard object and recover a successor over the same devices.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"
#include "fleet/admission.h"
#include "svc/fleet_service.h"

namespace lightwave::telemetry {
class HistogramMetric;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::fleet {

struct ShardOptions {
  /// Commands per group-commit batch (PopBatch bound and AppendBatch size).
  std::size_t batch_size = 32;
  /// Handoff-queue bound between the journal and apply threads (batches);
  /// a full queue blocks the journal thread (backpressure, not drops).
  std::size_t pipeline_depth = 8;
  svc::FleetServiceOptions service;
  AdmissionOptions admission;
};

struct ShardStats {
  /// Batches the journal stage appended (== service stats().batches).
  std::uint64_t batches = 0;
  /// Commands applied by this shard.
  std::uint64_t applied = 0;
  /// Duplicates acked and gaps dropped by the pipelined journal stage.
  std::uint64_t pipeline_duplicates = 0;
  std::uint64_t pipeline_gaps = 0;
};

class Shard {
 public:
  /// `pod`, `wal_storage`, `snapshot_storage` outlive the shard (durable
  /// media + fabric; the shard object itself is volatile).
  Shard(std::uint32_t shard_id, tpu::Superpod& pod, core::AllocationPolicy policy,
        journal::Storage& wal_storage, journal::Storage& snapshot_storage,
        ShardOptions options = {});
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Recovers the embedded service (snapshot + WAL replay). Must run before
  /// any pumping; see FleetService::Recover.
  common::Result<journal::RecoveryStats> Recover();

  /// Admission gate (quota + per-tenant backpressure). Thread-safe; callable
  /// while the pipeline runs.
  common::Status Offer(const svc::SliceCommand& cmd);

  /// Refills tenant token buckets (router clock).
  void Tick(double seconds) { admission_.Tick(seconds); }

  /// SYNC mode: pop one DRR batch and run it through the service's
  /// journal-then-apply path on this thread. Returns commands applied;
  /// 0 when admission is empty or the service crashed.
  std::size_t PumpOnce();

  /// Drains admission synchronously until empty (or crash).
  std::size_t PumpAll();

  /// Control-plane submit (2PC verbs): bypasses admission, applies
  /// synchronously through the service queue. Sync mode only.
  common::Status SubmitControl(const svc::SliceCommand& cmd);

  // --- pipelined mode -------------------------------------------------------

  /// Starts the journal and apply threads. Offer() feeds them; Stop() joins.
  void Start();
  /// Signals both threads, drains in-flight batches, and joins. Idempotent.
  void Stop();
  /// Blocks until admission and the handoff queue are empty and the apply
  /// thread is idle (pipeline quiesced). Pipeline must be running.
  void Drain();
  bool running() const { return running_.load(std::memory_order_acquire); }

  std::uint32_t shard_id() const { return shard_id_; }
  svc::FleetService& service() { return service_; }
  const svc::FleetService& service() const { return service_; }
  AdmissionQueue& admission() { return admission_; }
  ShardStats stats() const;

  /// Shard-labeled fleet metrics: admission counters/gauge plus the
  /// lightwave_fleet_batch_commands histogram (group-commit batch sizes).
  void AttachTelemetry(telemetry::Hub* hub);

 private:
  void JournalLoop();
  void ApplyLoop();
  /// Filters `batch` against the pending frontiers: duplicates are acked
  /// (counted), gaps dropped (counted), accepted commands returned in order.
  std::vector<svc::SliceCommand> FilterPending(std::vector<svc::SliceCommand> batch);
  void ObserveBatch(std::size_t commands);

  std::uint32_t shard_id_;
  ShardOptions options_;
  svc::FleetService service_;
  AdmissionQueue admission_;

  struct JournaledBatch {
    std::vector<svc::SliceCommand> commands;
    std::uint64_t first_seq = 0;
  };

  // Pipeline machinery. The handoff queue is the ONLY shared mutable state
  // between the two loops (the service's stage split handles the rest).
  // handoff_mu_ (rank kShardHandoff) nests inside admission's mu_ never —
  // PopBatch completes before the handoff lock is taken — and stats_mu_
  // (rank kShardStats) is always innermost of the two.
  lw::Mutex handoff_mu_{"fleet.shard.handoff", lw::rank::kShardHandoff};
  lw::CondVar handoff_cv_;
  std::deque<JournaledBatch> handoff_ LW_GUARDED_BY(handoff_mu_);
  bool journal_done_ LW_GUARDED_BY(handoff_mu_) = false;
  /// True while the journal thread holds a popped-but-not-yet-handed-off
  /// batch (Drain must not declare quiescence in that window).
  bool journal_busy_ LW_GUARDED_BY(handoff_mu_) = false;
  /// Batches popped but not yet fully applied.
  std::size_t applying_ LW_GUARDED_BY(handoff_mu_) = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread journal_thread_;
  std::thread apply_thread_;

  mutable lw::Mutex stats_mu_{"fleet.shard.stats", lw::rank::kShardStats};
  ShardStats stats_ LW_GUARDED_BY(stats_mu_);

  /// Resolved once in AttachTelemetry, before Start(); the loops read it
  /// without locking.
  telemetry::HistogramMetric* batch_histogram_ = nullptr;
};

}  // namespace lightwave::fleet
