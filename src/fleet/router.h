// Fleet router: the front door of the sharded fleet service. Tenants are
// mapped to shards by consistent hashing (a ring of virtual nodes per
// shard), so adding a shard or losing one to a tripped circuit breaker
// relocates only the tenants whose arc moved — not the whole fleet. The
// router also coordinates cross-shard jobs with two-phase commit, journaling
// the prepare/commit/abort verbs through each participant shard's WAL so a
// crash anywhere leaves enough durable evidence to finish the transaction.
//
// Health: a shard marked unhealthy (directly, or via SyncBreaker reading a
// PR 4 ctrl::FabricController circuit breaker) is skipped on the ring —
// its tenants re-hash clockwise to the next healthy shard. The relocated
// tenants' command ids restart from 1 on the new shard (the old shard's
// history did not move), which the new shard surfaces as gap rejections
// until the tenant re-syncs; the fairness/quota machinery is unaffected.
//
// Cross-shard transactions (CrossShardAdmit): the router mints a fleet-wide
// txn id, journals kPrepare on every participant under the reserved control
// tenant, collects votes (a vote is durable state on the shard), and
// journals kCommitTxn everywhere iff all voted yes, else kAbortTxn.
// RecoverAll resolves in-doubt transactions by presumed abort: commit only
// if some participant already recorded a commit decision (the router never
// issues commits before all votes are yes, so a recorded commit implies
// unanimous yes); abort otherwise.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fleet/shard.h"

namespace lightwave::ctrl {
class FabricController;
}  // namespace lightwave::ctrl

namespace lightwave::fleet {

/// Reserved tenant id carrying router-issued control commands (2PC verbs).
/// Client tenants must stay below it; the router owns its command-id space
/// on every shard.
inline constexpr std::uint32_t kControlTenant = 0xFFFFFFFFu;

struct RouterOptions {
  /// Virtual nodes per shard on the hash ring. More = smoother balance,
  /// linearly larger ring.
  std::size_t virtual_nodes = 16;
};

struct RouterStats {
  std::uint64_t routed = 0;
  /// Commands routed past at least one unhealthy shard on the ring.
  std::uint64_t rerouted = 0;
  std::uint64_t txns_started = 0;
  std::uint64_t txns_committed = 0;
  std::uint64_t txns_aborted = 0;
  /// In-doubt transactions RecoverAll resolved, by outcome.
  std::uint64_t resolved_commit = 0;
  std::uint64_t resolved_abort = 0;
};

class Router {
 public:
  explicit Router(RouterOptions options = {});

  /// Registers a shard (non-owning; the shard outlives the router). Shard
  /// ids must be unique. Shards start healthy.
  void AddShard(Shard* shard);

  std::size_t shard_count() const { return shards_.size(); }
  Shard* shard(std::uint32_t shard_id);
  const Shard* shard(std::uint32_t shard_id) const;
  std::vector<std::uint32_t> shard_ids() const;

  /// The healthy shard `tenant` hashes to. Fails kUnavailable when every
  /// shard is unhealthy.
  common::Result<std::uint32_t> ShardFor(std::uint32_t tenant) const;

  void SetShardHealth(std::uint32_t shard_id, bool healthy);
  bool ShardHealthy(std::uint32_t shard_id) const;
  /// Health from the shard's fabric circuit breaker (PR 4): an OPEN breaker
  /// on `ocs_id` marks the shard unhealthy; closed/half-open marks it
  /// healthy again.
  void SyncBreaker(std::uint32_t shard_id, const ctrl::FabricController& controller,
                   int ocs_id);

  /// Routes by tenant and offers to the shard's admission queue. Control
  /// tenant commands are rejected — use CrossShardAdmit.
  common::Status Submit(const svc::SliceCommand& cmd);

  /// Refills every shard's tenant token buckets.
  void Tick(double seconds);

  /// Sync-drives every shard's pump until all admission queues are empty.
  /// Returns commands applied fleet-wide.
  std::size_t PumpAll();

  /// Two-phase commit of a job spanning `shard_ids`: each participant
  /// tentatively allocates `shape` (phase 1), and the job materializes on
  /// ALL of them or none (phase 2). Returns the txn id on commit; fails
  /// kResourceExhausted when any participant voted no (the transaction is
  /// aborted everywhere). Sync mode only.
  common::Result<std::uint64_t> CrossShardAdmit(std::uint64_t job_id,
                                                const tpu::SliceShape& shape,
                                                const std::vector<std::uint32_t>& shard_ids);

  /// Recovers every shard in parallel (common::parallel), restores the
  /// router's control frontiers and txn-id mint, then resolves in-doubt
  /// cross-shard transactions (presumed abort; see file comment). Returns
  /// aggregate replay stats.
  common::Result<journal::RecoveryStats> RecoverAll();

  const RouterStats& stats() const { return stats_; }

 private:
  struct RingEntry {
    std::uint64_t point;
    std::uint32_t shard_id;
    bool operator<(const RingEntry& other) const {
      return point < other.point || (point == other.point && shard_id < other.shard_id);
    }
  };

  /// Next control command id for `shard_id`, minting in the control
  /// tenant's dense space.
  std::uint64_t MintControlId(std::uint32_t shard_id);
  /// Journals one control verb on a shard, synchronously.
  common::Status SubmitControl(std::uint32_t shard_id, svc::CommandKind kind,
                               std::uint64_t job_id, std::uint64_t txn_id,
                               const tpu::SliceShape& shape);

  RouterOptions options_;
  std::map<std::uint32_t, Shard*> shards_;
  std::map<std::uint32_t, bool> healthy_;
  std::vector<RingEntry> ring_;
  /// Per-shard next control command id (resumes from the shard's committed
  /// control frontier after RecoverAll).
  std::map<std::uint32_t, std::uint64_t> control_next_;
  std::uint64_t next_txn_ = 0;
  RouterStats stats_;
};

}  // namespace lightwave::fleet
