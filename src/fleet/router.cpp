#include "fleet/router.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "ctrl/controller.h"

namespace lightwave::fleet {

using common::Result;
using common::Status;

namespace {

/// SplitMix64 finalizer: the ring's point hash. Fixed constants, so ring
/// geometry is stable across runs and processes.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kTenantSalt = 0x5bf0'3635'0c18'9d4full;

}  // namespace

Router::Router(RouterOptions options) : options_(options) {
  LW_CHECK(options_.virtual_nodes > 0) << "need at least one virtual node";
}

void Router::AddShard(Shard* shard) {
  LW_CHECK(shard != nullptr) << "null shard";
  const std::uint32_t id = shard->shard_id();
  LW_CHECK(!shards_.contains(id)) << "duplicate shard id " << id;
  shards_[id] = shard;
  healthy_[id] = true;
  control_next_[id] = 1;
  for (std::size_t v = 0; v < options_.virtual_nodes; ++v) {
    ring_.push_back(RingEntry{
        Mix64((static_cast<std::uint64_t>(id) << 20) | static_cast<std::uint64_t>(v)),
        id});
  }
  std::sort(ring_.begin(), ring_.end());
}

Shard* Router::shard(std::uint32_t shard_id) {
  auto it = shards_.find(shard_id);
  return it == shards_.end() ? nullptr : it->second;
}

const Shard* Router::shard(std::uint32_t shard_id) const {
  auto it = shards_.find(shard_id);
  return it == shards_.end() ? nullptr : it->second;
}

std::vector<std::uint32_t> Router::shard_ids() const {
  std::vector<std::uint32_t> out;
  out.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) out.push_back(id);
  return out;
}

Result<std::uint32_t> Router::ShardFor(std::uint32_t tenant) const {
  if (ring_.empty()) return common::Unavailable("no shards registered");
  const std::uint64_t point = Mix64(static_cast<std::uint64_t>(tenant) ^ kTenantSalt);
  const std::size_t base = static_cast<std::size_t>(
      std::lower_bound(ring_.begin(), ring_.end(), RingEntry{point, 0}) -
      ring_.begin());
  // Walk clockwise from the tenant's arc, skipping unhealthy shards; first
  // healthy owner wins. Bounded by ring size (then: everything is down).
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    const RingEntry& entry = ring_[(base + step) % ring_.size()];
    if (healthy_.at(entry.shard_id)) return entry.shard_id;
  }
  return common::Unavailable("all shards unhealthy");
}

void Router::SetShardHealth(std::uint32_t shard_id, bool healthy) {
  auto it = healthy_.find(shard_id);
  LW_CHECK(it != healthy_.end()) << "unknown shard " << shard_id;
  it->second = healthy;
}

bool Router::ShardHealthy(std::uint32_t shard_id) const {
  auto it = healthy_.find(shard_id);
  LW_CHECK(it != healthy_.end()) << "unknown shard " << shard_id;
  return it->second;
}

void Router::SyncBreaker(std::uint32_t shard_id, const ctrl::FabricController& controller,
                         int ocs_id) {
  SetShardHealth(shard_id, controller.breaker_state(ocs_id) != ctrl::BreakerState::kOpen);
}

Status Router::Submit(const svc::SliceCommand& cmd) {
  if (cmd.tenant_id == kControlTenant) {
    return common::InvalidArgument("control tenant is router-internal");
  }
  auto routed = ShardFor(cmd.tenant_id);
  if (!routed.ok()) return routed.error();
  ++stats_.routed;
  // Detect a detour: would a fully healthy ring have picked the same shard?
  // (Cheap enough, and makes rerouting observable to tests and operators.)
  if (!std::all_of(healthy_.begin(), healthy_.end(),
                   [](const auto& kv) { return kv.second; })) {
    const std::uint64_t point =
        Mix64(static_cast<std::uint64_t>(cmd.tenant_id) ^ kTenantSalt);
    auto it = std::lower_bound(ring_.begin(), ring_.end(), RingEntry{point, 0});
    if (it == ring_.end()) it = ring_.begin();
    if (it->shard_id != routed.value()) ++stats_.rerouted;
  }
  return shards_.at(routed.value())->Offer(cmd);
}

void Router::Tick(double seconds) {
  for (auto& [id, shard] : shards_) shard->Tick(seconds);
}

std::size_t Router::PumpAll() {
  std::size_t total = 0;
  for (auto& [id, shard] : shards_) total += shard->PumpAll();
  return total;
}

std::uint64_t Router::MintControlId(std::uint32_t shard_id) {
  return control_next_.at(shard_id)++;
}

Status Router::SubmitControl(std::uint32_t shard_id, svc::CommandKind kind,
                             std::uint64_t job_id, std::uint64_t txn_id,
                             const tpu::SliceShape& shape) {
  svc::SliceCommand cmd;
  cmd.command_id = MintControlId(shard_id);
  cmd.tenant_id = kControlTenant;
  cmd.kind = kind;
  cmd.job_id = job_id;
  cmd.txn_id = txn_id;
  cmd.shape = shape;
  return shards_.at(shard_id)->SubmitControl(cmd);
}

Result<std::uint64_t> Router::CrossShardAdmit(std::uint64_t job_id,
                                              const tpu::SliceShape& shape,
                                              const std::vector<std::uint32_t>& shard_ids) {
  if (shard_ids.empty()) return common::InvalidArgument("empty participant list");
  for (std::uint32_t id : shard_ids) {
    if (!shards_.contains(id)) {
      return common::NotFound("unknown shard " + std::to_string(id));
    }
  }
  const std::uint64_t txn = ++next_txn_;
  ++stats_.txns_started;
  // Phase 1: journal a prepare on every participant. Votes (yes AND no) are
  // durable shard state, so a crash after this point leaves evidence.
  bool all_yes = true;
  for (std::uint32_t id : shard_ids) {
    Status prepared = SubmitControl(id, svc::CommandKind::kPrepare, job_id, txn, shape);
    if (!prepared.ok()) return prepared.error();
    const svc::PreparedTxn* vote = shards_.at(id)->service().prepared_txn(txn);
    LW_CHECK(vote != nullptr) << "prepare applied but no vote recorded";
    all_yes = all_yes && vote->vote_yes;
  }
  // Phase 2: unanimous yes commits everywhere; any no aborts everywhere
  // (including the yes-voters, releasing their reservations).
  const svc::CommandKind decision =
      all_yes ? svc::CommandKind::kCommitTxn : svc::CommandKind::kAbortTxn;
  for (std::uint32_t id : shard_ids) {
    Status decided = SubmitControl(id, decision, job_id, txn, shape);
    if (!decided.ok()) return decided.error();
  }
  if (!all_yes) {
    ++stats_.txns_aborted;
    return common::ResourceExhausted("cross-shard admit aborted: a participant voted no");
  }
  ++stats_.txns_committed;
  return txn;
}

Result<journal::RecoveryStats> Router::RecoverAll() {
  std::vector<Shard*> shard_list;
  shard_list.reserve(shards_.size());
  for (auto& [id, shard] : shards_) shard_list.push_back(shard);
  // Shards are disjoint partitions over disjoint devices, so recovery is
  // embarrassingly parallel (the PR 5 crash matrix runs per shard).
  std::vector<Result<journal::RecoveryStats>> results(
      shard_list.size(), Result<journal::RecoveryStats>(journal::RecoveryStats{}));
  common::parallel::ParallelFor(
      shard_list.size(), 1,
      [&](std::uint64_t begin, std::uint64_t end, std::uint64_t /*chunk*/) {
        for (std::uint64_t i = begin; i < end; ++i) {
          results[static_cast<std::size_t>(i)] = shard_list[i]->Recover();
        }
      });
  journal::RecoveryStats aggregate;
  for (const auto& result : results) {
    if (!result.ok()) return result.error();
    const journal::RecoveryStats& stats = result.value();
    aggregate.snapshot_loaded = aggregate.snapshot_loaded || stats.snapshot_loaded;
    aggregate.records_scanned += stats.records_scanned;
    aggregate.records_replayed += stats.records_replayed;
    aggregate.records_skipped += stats.records_skipped;
    aggregate.torn_bytes_discarded += stats.torn_bytes_discarded;
    aggregate.wal_clean = aggregate.wal_clean && stats.wal_clean;
    aggregate.tail_truncations += stats.tail_truncations;
    aggregate.tail_corruptions += stats.tail_corruptions;
    if (aggregate.tail_note.empty()) aggregate.tail_note = stats.tail_note;
  }
  // Resume the control-plane mints above everything any shard ever saw.
  for (auto& [id, shard] : shards_) {
    control_next_[id] = shard->service().next_command_id(kControlTenant);
    next_txn_ = std::max(next_txn_, shard->service().max_txn_seen());
  }
  // Resolve in-doubt transactions. Presumed abort: a txn commits only when
  // some participant durably recorded the commit decision — the router only
  // issues commits after unanimous yes votes, so one recorded commit
  // implies the decision was made.
  std::map<std::uint64_t, std::vector<std::uint32_t>> in_doubt;
  std::map<std::uint64_t, bool> committed_somewhere;
  for (auto& [id, shard] : shards_) {
    for (std::uint64_t txn : shard->service().InDoubtTxns()) {
      in_doubt[txn].push_back(id);
    }
  }
  for (auto& [txn, participants] : in_doubt) {
    for (auto& [id, shard] : shards_) {
      auto decision = shard->service().txn_decision(txn);
      if (decision.has_value() && *decision == svc::TxnDecision::kCommitted) {
        committed_somewhere[txn] = true;
      }
    }
  }
  for (auto& [txn, participants] : in_doubt) {
    const bool commit = committed_somewhere.contains(txn);
    for (std::uint32_t id : participants) {
      const svc::PreparedTxn* prepared = shards_.at(id)->service().prepared_txn(txn);
      LW_CHECK(prepared != nullptr) << "in-doubt txn lost its reservation";
      Status resolved = SubmitControl(
          id, commit ? svc::CommandKind::kCommitTxn : svc::CommandKind::kAbortTxn,
          prepared->job_id, txn, tpu::SliceShape{});
      if (!resolved.ok()) return resolved.error();
    }
    if (commit) {
      ++stats_.resolved_commit;
    } else {
      ++stats_.resolved_abort;
    }
  }
  return aggregate;
}

}  // namespace lightwave::fleet
