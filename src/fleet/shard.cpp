#include "fleet/shard.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/check.h"
#include "telemetry/hub.h"
#include "telemetry/metrics.h"

namespace lightwave::fleet {

using common::Result;
using common::Status;

namespace {
/// Journal-thread poll interval while admission is empty. The pipeline is
/// notification-free on the offer side (admission has no cv), so the
/// journal thread naps briefly between empty polls.
constexpr auto kIdlePoll = std::chrono::microseconds(50);
}  // namespace

Shard::Shard(std::uint32_t shard_id, tpu::Superpod& pod, core::AllocationPolicy policy,
             journal::Storage& wal_storage, journal::Storage& snapshot_storage,
             ShardOptions options)
    : shard_id_(shard_id),
      options_([&options] {
        // A popped batch must always fit the service queue, or sync pumping
        // would drop commands already admitted from their tenant queues.
        options.service.queue_capacity =
            std::max(options.service.queue_capacity, options.batch_size);
        return options;
      }()),
      service_(pod, policy, wal_storage, snapshot_storage, options_.service),
      admission_(options_.admission) {
  LW_CHECK(options_.batch_size > 0) << "zero batch size";
  LW_CHECK(options_.pipeline_depth > 0) << "zero pipeline depth";
}

Shard::~Shard() { Stop(); }

Result<journal::RecoveryStats> Shard::Recover() { return service_.Recover(); }

Status Shard::Offer(const svc::SliceCommand& cmd) { return admission_.Offer(cmd); }

std::size_t Shard::PumpOnce() {
  LW_CHECK(!running()) << "sync pump while the pipeline is running";
  auto batch = admission_.PopBatch(options_.batch_size);
  if (batch.empty()) return 0;
  for (const svc::SliceCommand& cmd : batch) {
    // Duplicates ack Ok inside Submit; a gap (tenant relocated here with
    // history missing, or client bug) is counted and dropped.
    Status submitted = service_.Submit(cmd);
    if (!submitted.ok()) {
      lw::MutexLock lock(stats_mu_);
      ++stats_.pipeline_gaps;
    }
  }
  const std::size_t applied = service_.ProcessBatch(batch.size());
  ObserveBatch(applied);
  {
    lw::MutexLock lock(stats_mu_);
    stats_.applied += applied;
  }
  return applied;
}

std::size_t Shard::PumpAll() {
  std::size_t total = 0;
  while (admission_.Depth() > 0 && !service_.crashed()) {
    const std::size_t applied = PumpOnce();
    total += applied;
    if (applied == 0 && service_.crashed()) break;
  }
  return total;
}

Status Shard::SubmitControl(const svc::SliceCommand& cmd) {
  LW_CHECK(!running()) << "control submit while the pipeline is running";
  Status submitted = service_.Submit(cmd);
  if (!submitted.ok()) return submitted;
  // Apply everything ahead of it too — control commands see a drained queue.
  while (service_.queue_depth() > 0 && !service_.crashed()) {
    if (service_.ProcessBatch(service_.queue_depth()) == 0) break;
  }
  if (service_.crashed()) return common::Unavailable("shard crashed");
  return Status::Ok();
}

void Shard::Start() {
  LW_CHECK(!running()) << "pipeline already running";
  stop_requested_.store(false, std::memory_order_release);
  {
    lw::MutexLock lock(handoff_mu_);
    journal_done_ = false;
  }
  service_.SetPipelined(true);
  running_.store(true, std::memory_order_release);
  journal_thread_ = std::thread([this] { JournalLoop(); });
  apply_thread_ = std::thread([this] { ApplyLoop(); });
}

void Shard::Stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  journal_thread_.join();  // drains admission before exiting
  {
    lw::MutexLock lock(handoff_mu_);
    journal_done_ = true;
  }
  handoff_cv_.NotifyAll();
  apply_thread_.join();  // drains the handoff queue before exiting
  service_.SetPipelined(false);
  running_.store(false, std::memory_order_release);
}

void Shard::Drain() {
  LW_CHECK(running()) << "drain without a running pipeline";
  while (true) {
    if (admission_.Depth() == 0) {
      lw::MutexLock lock(handoff_mu_);
      if (handoff_.empty() && !journal_busy_ && applying_ == 0) return;
    }
    std::this_thread::sleep_for(kIdlePoll);
  }
}

std::vector<svc::SliceCommand> Shard::FilterPending(
    std::vector<svc::SliceCommand> batch) {
  std::vector<svc::SliceCommand> accepted;
  accepted.reserve(batch.size());
  // Overlay of frontiers advanced WITHIN this batch: CheckPending only sees
  // state as of the last JournalBatch, but a batch routinely carries several
  // consecutive commands of one tenant.
  std::map<std::uint32_t, std::uint64_t> local_next;
  std::uint64_t duplicates = 0;
  std::uint64_t gaps = 0;
  for (svc::SliceCommand& cmd : batch) {
    auto it = local_next.find(cmd.tenant_id);
    if (it == local_next.end()) {
      switch (service_.CheckPending(cmd)) {
        case svc::AdmitCheck::kAccept:
          local_next[cmd.tenant_id] = cmd.command_id + 1;
          accepted.push_back(std::move(cmd));
          break;
        case svc::AdmitCheck::kDuplicate: ++duplicates; break;
        case svc::AdmitCheck::kGap: ++gaps; break;
      }
      continue;
    }
    if (cmd.command_id < it->second) {
      ++duplicates;
    } else if (cmd.command_id > it->second) {
      ++gaps;
    } else {
      ++it->second;
      accepted.push_back(std::move(cmd));
    }
  }
  if (duplicates > 0 || gaps > 0) {
    lw::MutexLock lock(stats_mu_);
    stats_.pipeline_duplicates += duplicates;
    stats_.pipeline_gaps += gaps;
  }
  return accepted;
}

void Shard::JournalLoop() {
  while (true) {
    {
      lw::MutexLock lock(handoff_mu_);
      journal_busy_ = true;
    }
    auto batch = admission_.PopBatch(options_.batch_size);
    if (batch.empty()) {
      {
        lw::MutexLock lock(handoff_mu_);
        journal_busy_ = false;
      }
      if (stop_requested_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(kIdlePoll);
      continue;
    }
    auto accepted = FilterPending(std::move(batch));
    if (accepted.empty()) {
      lw::MutexLock lock(handoff_mu_);
      journal_busy_ = false;
      continue;
    }
    auto appended = service_.JournalBatch(accepted);
    LW_CHECK(appended.ok()) << "journal append failed: " << appended.error().message;
    ObserveBatch(accepted.size());
    {
      lw::MutexLock lock(handoff_mu_);
      while (handoff_.size() >= options_.pipeline_depth) handoff_cv_.Wait(handoff_mu_);
      handoff_.push_back(JournaledBatch{std::move(accepted), appended.value()});
      journal_busy_ = false;
    }
    handoff_cv_.NotifyAll();
  }
}

void Shard::ApplyLoop() {
  while (true) {
    JournaledBatch batch;
    {
      lw::MutexLock lock(handoff_mu_);
      while (handoff_.empty() && !journal_done_) handoff_cv_.Wait(handoff_mu_);
      if (handoff_.empty()) return;  // journal_done_ and fully drained
      batch = std::move(handoff_.front());
      handoff_.pop_front();
      ++applying_;
    }
    handoff_cv_.NotifyAll();  // freed a handoff slot for the journal thread
    const std::size_t applied =
        service_.ApplyJournaled(batch.commands, batch.first_seq);
    {
      lw::MutexLock lock(stats_mu_);
      stats_.applied += applied;
    }
    {
      lw::MutexLock lock(handoff_mu_);
      --applying_;
    }
  }
}

void Shard::ObserveBatch(std::size_t commands) {
  if (batch_histogram_ != nullptr) {
    batch_histogram_->Observe(static_cast<double>(commands));
  }
}

ShardStats Shard::stats() const {
  LW_CHECK(!running()) << "stats while the pipeline is running (quiesce first)";
  lw::MutexLock lock(stats_mu_);
  ShardStats out = stats_;
  out.batches = service_.stats().batches;
  return out;
}

void Shard::AttachTelemetry(telemetry::Hub* hub) {
  LW_CHECK(!running()) << "attach telemetry before starting the pipeline";
  service_.AttachTelemetry(hub);
  const std::string label = std::to_string(shard_id_);
  admission_.AttachTelemetry(hub, label);
  batch_histogram_ =
      hub == nullptr
          ? nullptr
          : &hub->metrics().GetHistogram("lightwave_fleet_batch_commands",
                                         {{"shard", label}});
}

}  // namespace lightwave::fleet
