#include "fleet/admission.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "telemetry/hub.h"

namespace lightwave::fleet {

using common::Status;

AdmissionQueue::AdmissionQueue(AdmissionOptions options) : options_(options) {
  LW_CHECK(options_.per_tenant_queue_capacity > 0) << "zero tenant queue capacity";
  LW_CHECK(options_.drr_quantum > 0.0) << "non-positive DRR quantum";
}

AdmissionQueue::TenantState& AdmissionQueue::StateFor(std::uint32_t tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second.quota = options_.default_quota;
    it->second.tokens = it->second.quota.burst;
  }
  return it->second;
}

void AdmissionQueue::SetQuota(std::uint32_t tenant, TenantQuota quota) {
  LW_CHECK(quota.rate >= 0.0 && quota.burst > 0.0 && quota.weight > 0.0)
      << "malformed quota for tenant " << tenant;
  lw::MutexLock lock(mu_);
  TenantState& state = StateFor(tenant);
  state.quota = quota;
  state.tokens = quota.burst;
}

Status AdmissionQueue::Offer(const svc::SliceCommand& cmd) {
  lw::MutexLock lock(mu_);
  ++stats_.offered;
  TenantState& state = StateFor(cmd.tenant_id);
  if (state.tokens < 1.0) {
    ++stats_.rejected_quota;
    if (rejected_quota_counter_ != nullptr) rejected_quota_counter_->Inc();
    return common::ResourceExhausted("tenant " + std::to_string(cmd.tenant_id) +
                                     " over quota");
  }
  if (state.queue.size() >= options_.per_tenant_queue_capacity) {
    ++stats_.rejected_backpressure;
    if (rejected_backpressure_counter_ != nullptr) rejected_backpressure_counter_->Inc();
    return common::ResourceExhausted("tenant " + std::to_string(cmd.tenant_id) +
                                     " queue full (" +
                                     std::to_string(options_.per_tenant_queue_capacity) +
                                     ")");
  }
  state.tokens -= 1.0;
  state.queue.push_back(cmd);
  ++depth_;
  ++stats_.admitted;
  if (admitted_counter_ != nullptr) admitted_counter_->Inc();
  UpdateDepthGauge();
  return Status::Ok();
}

void AdmissionQueue::Tick(double seconds) {
  LW_CHECK(seconds >= 0.0) << "negative tick";
  lw::MutexLock lock(mu_);
  for (auto& [tenant, state] : tenants_) {
    state.tokens = std::min(state.quota.burst, state.tokens + state.quota.rate * seconds);
  }
}

std::vector<svc::SliceCommand> AdmissionQueue::PopBatch(std::size_t max_commands) {
  lw::MutexLock lock(mu_);
  std::vector<svc::SliceCommand> out;
  if (max_commands == 0 || depth_ == 0) return out;
  out.reserve(std::min(max_commands, depth_));
  // Deficit round robin over tenant ids in a fixed cyclic order, resuming
  // after the last tenant served by the previous call so no tenant gets a
  // standing head start. Each round credits weight-proportional quantum;
  // a backlogged tenant drains as much of its deficit as fits.
  while (out.size() < max_commands && depth_ > 0) {
    // One full round, starting after the resume cursor.
    auto round_start = has_resume_ ? tenants_.upper_bound(resume_after_)
                                   : tenants_.begin();
    bool served_any = false;
    for (std::size_t visited = 0; visited < tenants_.size() && out.size() < max_commands;
         ++visited) {
      if (round_start == tenants_.end()) round_start = tenants_.begin();
      auto it = round_start++;
      TenantState& state = it->second;
      if (state.queue.empty()) {
        state.deficit = 0.0;  // idle tenants accumulate nothing (classic DRR)
        continue;
      }
      state.deficit += options_.drr_quantum * state.quota.weight;
      while (!state.queue.empty() && state.deficit >= 1.0 &&
             out.size() < max_commands) {
        out.push_back(state.queue.front());
        state.queue.pop_front();
        state.deficit -= 1.0;
        --depth_;
        served_any = true;
      }
      resume_after_ = it->first;
      has_resume_ = true;
    }
    // Every backlogged tenant's weight is > 0, so a full round always
    // serves someone; this guards a hypothetical all-idle sweep.
    if (!served_any) break;
  }
  stats_.popped += out.size();
  UpdateDepthGauge();
  return out;
}

std::size_t AdmissionQueue::Depth() const {
  lw::MutexLock lock(mu_);
  return depth_;
}

std::size_t AdmissionQueue::TenantDepth(std::uint32_t tenant) const {
  lw::MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.queue.size();
}

AdmissionStats AdmissionQueue::stats() const {
  lw::MutexLock lock(mu_);
  return stats_;
}

void AdmissionQueue::AttachTelemetry(telemetry::Hub* hub,
                                     const std::string& shard_label) {
  lw::MutexLock lock(mu_);
  if (hub == nullptr) {
    admitted_counter_ = rejected_quota_counter_ = nullptr;
    rejected_backpressure_counter_ = nullptr;
    depth_gauge_ = nullptr;
    return;
  }
  auto& metrics = hub->metrics();
  admitted_counter_ =
      &metrics.GetCounter("lightwave_fleet_admitted_total", {{"shard", shard_label}});
  rejected_quota_counter_ = &metrics.GetCounter(
      "lightwave_fleet_rejected_total", {{"reason", "quota"}, {"shard", shard_label}});
  rejected_backpressure_counter_ =
      &metrics.GetCounter("lightwave_fleet_rejected_total",
                          {{"reason", "backpressure"}, {"shard", shard_label}});
  depth_gauge_ =
      &metrics.GetGauge("lightwave_fleet_shard_queue_depth", {{"shard", shard_label}});
  UpdateDepthGauge();
}

void AdmissionQueue::UpdateDepthGauge() {
  if (depth_gauge_ != nullptr) depth_gauge_->Set(static_cast<double>(depth_));
}

}  // namespace lightwave::fleet
