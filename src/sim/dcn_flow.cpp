#include "sim/dcn_flow.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "common/check.h"

namespace lightwave::sim {

DcnTopology::DcnTopology(DcnKind kind, int blocks, double uplink_gbps)
    : kind_(kind), blocks_(blocks), uplink_gbps_(uplink_gbps) {
  assert(blocks > 1 && uplink_gbps > 0.0);
  if (kind == DcnKind::kDirectMesh) {
    trunk_.assign(static_cast<std::size_t>(blocks) * blocks, 0.0);
  }
}

DcnTopology DcnTopology::SpineClos(int blocks, double uplink_gbps) {
  return DcnTopology(DcnKind::kSpineClos, blocks, uplink_gbps);
}

DcnTopology DcnTopology::UniformMesh(int blocks, double uplink_gbps) {
  DcnTopology topo(DcnKind::kDirectMesh, blocks, uplink_gbps);
  const double per_trunk = uplink_gbps / (blocks - 1);
  for (int a = 0; a < blocks; ++a) {
    for (int b = 0; b < blocks; ++b) {
      if (a != b) topo.trunk_[static_cast<std::size_t>(a) * blocks + b] = per_trunk;
    }
  }
  return topo;
}

DcnTopology DcnTopology::EngineeredMesh(int blocks, double uplink_gbps,
                                        const TrafficMatrix& forecast,
                                        double uniform_floor_fraction) {
  assert(forecast.nodes() == blocks);
  assert(uniform_floor_fraction >= 0.0 && uniform_floor_fraction <= 1.0);
  DcnTopology topo(DcnKind::kDirectMesh, blocks, uplink_gbps);
  // Port budget per block: uplink_gbps split between a uniform floor (keeps
  // every pair connected for transit and demand error) and a
  // demand-proportional share. Normalize per block so row/col budgets hold;
  // symmetrize since trunks are bidirectional.
  const double floor_per_trunk = uplink_gbps * uniform_floor_fraction / (blocks - 1);
  std::vector<double> alloc(static_cast<std::size_t>(blocks) * blocks, 0.0);
  for (int a = 0; a < blocks; ++a) {
    const double row = forecast.RowSum(a);
    const double budget = uplink_gbps * (1.0 - uniform_floor_fraction);
    for (int b = 0; b < blocks; ++b) {
      if (a == b) continue;
      const double share = row > 0.0 ? forecast.at(a, b) / row : 1.0 / (blocks - 1);
      alloc[static_cast<std::size_t>(a) * blocks + b] = floor_per_trunk + budget * share;
    }
  }
  for (int a = 0; a < blocks; ++a) {
    for (int b = a + 1; b < blocks; ++b) {
      // A bidirectional trunk carries each direction at full rate, so size
      // it for the hotter direction rather than the mean.
      const double sym = std::max(alloc[static_cast<std::size_t>(a) * blocks + b],
                                  alloc[static_cast<std::size_t>(b) * blocks + a]);
      topo.trunk_[static_cast<std::size_t>(a) * blocks + b] = sym;
      topo.trunk_[static_cast<std::size_t>(b) * blocks + a] = sym;
    }
  }
  // Symmetrization skews row sums away from the port budget; iterative
  // proportional fitting (Sinkhorn-style) pushes every block back to full
  // budget use without wasting ports, followed by a strict feasibility
  // clamp.
  auto row_sum = [&](int a) {
    double row = 0.0;
    for (int b = 0; b < blocks; ++b) row += topo.trunk_[static_cast<std::size_t>(a) * blocks + b];
    return row;
  };
  // Convergence-driven: a fixed iteration count both under-converges large
  // skewed fabrics and wastes work on small ones. The residual is the worst
  // relative row-sum deviation from the port budget; the symmetric Sinkhorn
  // update contracts it, so terminate when it is numerically converged and
  // cap the iterations as a backstop for pathological inputs.
  constexpr int kMaxFitIterations = 200;
  constexpr double kFitTolerance = 1e-10;
  const auto fit_residual = [&] {
    double worst = 0.0;
    for (int a = 0; a < blocks; ++a) {
      const double row = row_sum(a);
      if (row > 0.0) worst = std::max(worst, std::abs(row - uplink_gbps) / uplink_gbps);
    }
    return worst;
  };
  const double initial_residual = fit_residual();
  double residual = initial_residual;
  for (int iter = 0; iter < kMaxFitIterations && residual > kFitTolerance; ++iter) {
    std::vector<double> factor(static_cast<std::size_t>(blocks), 1.0);
    for (int a = 0; a < blocks; ++a) {
      const double row = row_sum(a);
      if (row > 0.0) factor[static_cast<std::size_t>(a)] = std::sqrt(uplink_gbps / row);
    }
    for (int a = 0; a < blocks; ++a) {
      for (int b = 0; b < blocks; ++b) {
        topo.trunk_[static_cast<std::size_t>(a) * blocks + b] *=
            factor[static_cast<std::size_t>(a)] * factor[static_cast<std::size_t>(b)];
      }
    }
    residual = fit_residual();
  }
  // The fit must end converged or at least never diverged past where it
  // started (the iteration cap only exists for inputs the contraction
  // argument does not cover).
  LW_DCHECK(residual <= kFitTolerance || residual <= initial_residual)
      << "proportional fit diverged: residual " << residual << " from "
      << initial_residual;
  std::vector<double> clamp(static_cast<std::size_t>(blocks), 1.0);
  for (int a = 0; a < blocks; ++a) {
    const double row = row_sum(a);
    if (row > uplink_gbps) clamp[static_cast<std::size_t>(a)] = uplink_gbps / row;
  }
  for (int a = 0; a < blocks; ++a) {
    for (int b = 0; b < blocks; ++b) {
      topo.trunk_[static_cast<std::size_t>(a) * blocks + b] *=
          std::min(clamp[static_cast<std::size_t>(a)], clamp[static_cast<std::size_t>(b)]);
    }
  }
  return topo;
}

DcnTopology DcnTopology::FromTrunkCapacities(int blocks, double uplink_gbps,
                                             const TrafficMatrix& capacities) {
  assert(capacities.nodes() == blocks);
  DcnTopology topo(DcnKind::kDirectMesh, blocks, uplink_gbps);
  for (int a = 0; a < blocks; ++a) {
    for (int b = 0; b < blocks; ++b) {
      if (a == b) continue;
      assert(capacities.at(a, b) == capacities.at(b, a));
      topo.trunk_[static_cast<std::size_t>(a) * blocks + b] = capacities.at(a, b);
    }
  }
  return topo;
}

double DcnTopology::TrunkCapacity(int a, int b) const {
  assert(kind_ == DcnKind::kDirectMesh);
  assert(a >= 0 && a < blocks_ && b >= 0 && b < blocks_);
  return trunk_[static_cast<std::size_t>(a) * blocks_ + b];
}

namespace {

/// Water-filling feasibility for a direct mesh: route scaled demand direct
/// first, then spill residuals over two-hop transit greedily. Returns the
/// fraction of demand successfully placed (1.0 == feasible).
double MeshPlacementFraction(const DcnTopology& topo, const TrafficMatrix& demand,
                             double alpha) {
  const int n = topo.blocks();
  std::vector<double> residual(static_cast<std::size_t>(n) * n, 0.0);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a != b) residual[static_cast<std::size_t>(a) * n + b] = topo.TrunkCapacity(a, b);
    }
  }
  auto res = [&](int a, int b) -> double& {
    return residual[static_cast<std::size_t>(a) * n + b];
  };

  double total = 0.0;
  double placed = 0.0;
  struct Leftover {
    int s, d;
    double amount;
  };
  std::vector<Leftover> leftovers;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const double want = alpha * demand.at(s, d);
      if (want <= 0.0) continue;
      total += want;
      const double direct = std::min(want, res(s, d));
      res(s, d) -= direct;
      placed += direct;
      if (want - direct > 1e-12) leftovers.push_back({s, d, want - direct});
    }
  }
  // Spill over two-hop transit, repeatedly taking the best intermediate.
  for (auto& item : leftovers) {
    while (item.amount > 1e-12) {
      int best_k = -1;
      double best_cap = 0.0;
      for (int k = 0; k < n; ++k) {
        if (k == item.s || k == item.d) continue;
        const double cap = std::min(res(item.s, k), res(k, item.d));
        if (cap > best_cap) {
          best_cap = cap;
          best_k = k;
        }
      }
      if (best_k < 0 || best_cap <= 1e-12) break;
      const double move = std::min(item.amount, best_cap);
      res(item.s, best_k) -= move;
      res(best_k, item.d) -= move;
      item.amount -= move;
      placed += move;
    }
  }
  return total > 0.0 ? placed / total : 1.0;
}

}  // namespace

double MaxConcurrentFlowScale(const DcnTopology& topo, const TrafficMatrix& demand) {
  if (topo.kind() == DcnKind::kSpineClos) {
    // Hose model: only per-block ingress/egress bind.
    double worst = 0.0;
    for (int b = 0; b < topo.blocks(); ++b) {
      worst = std::max(worst, std::max(demand.RowSum(b), demand.ColSum(b)));
    }
    return worst > 0.0 ? topo.uplink_gbps() / worst : std::numeric_limits<double>::infinity();
  }
  double lo = 0.0, hi = 1.0;
  // Grow hi until infeasible.
  while (MeshPlacementFraction(topo, demand, hi) >= 1.0 - 1e-9 && hi < 1e6) hi *= 2.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (MeshPlacementFraction(topo, demand, mid) >= 1.0 - 1e-9) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

struct Flow {
  int id = 0;
  double remaining_bytes = 0.0;
  double arrival_s = 0.0;
  std::vector<int> links;  // link ids along the path
  double rate_gbps = 0.0;
};

struct LinkTable {
  std::vector<double> capacity;  // Gb/s per directed link

  int Count() const { return static_cast<int>(capacity.size()); }
};

/// Progressive filling max-min fair allocation.
void AllocateMaxMin(std::vector<Flow*>& flows, const LinkTable& links) {
  const int link_count = links.Count();
  std::vector<double> residual = links.capacity;
  std::vector<int> flows_on_link(static_cast<std::size_t>(link_count), 0);
  for (Flow* f : flows) {
    f->rate_gbps = -1.0;  // unfrozen
    for (int l : f->links) ++flows_on_link[static_cast<std::size_t>(l)];
  }
  int unfrozen = static_cast<int>(flows.size());
  while (unfrozen > 0) {
    // Find the tightest link.
    double min_share = std::numeric_limits<double>::infinity();
    int min_link = -1;
    for (int l = 0; l < link_count; ++l) {
      if (flows_on_link[static_cast<std::size_t>(l)] == 0) continue;
      const double share =
          residual[static_cast<std::size_t>(l)] / flows_on_link[static_cast<std::size_t>(l)];
      if (share < min_share) {
        min_share = share;
        min_link = l;
      }
    }
    if (min_link < 0) break;  // remaining flows traverse no link (shouldn't happen)
    // Freeze all unfrozen flows on that link at the fair share.
    for (Flow* f : flows) {
      if (f->rate_gbps >= 0.0) continue;
      bool on = false;
      for (int l : f->links) {
        if (l == min_link) {
          on = true;
          break;
        }
      }
      if (!on) continue;
      f->rate_gbps = min_share;
      --unfrozen;
      for (int l : f->links) {
        residual[static_cast<std::size_t>(l)] -= min_share;
        --flows_on_link[static_cast<std::size_t>(l)];
      }
    }
    residual[static_cast<std::size_t>(min_link)] = 0.0;
    flows_on_link[static_cast<std::size_t>(min_link)] = 0;
  }
  for (Flow* f : flows) {
    if (f->rate_gbps < 0.0) f->rate_gbps = 0.0;
  }
}

}  // namespace

FlowSimResult SimulateFlows(const DcnTopology& topo, const TrafficMatrix& demand,
                            const FlowSimConfig& config) {
  const int n = topo.blocks();
  common::Rng rng(config.seed);

  // Build the directed link table.
  LinkTable links;
  // Clos: link 2b = block b uplink, 2b+1 = downlink. Mesh: a*n+b trunks.
  if (topo.kind() == DcnKind::kSpineClos) {
    links.capacity.assign(static_cast<std::size_t>(2 * n), topo.uplink_gbps());
  } else {
    links.capacity.assign(static_cast<std::size_t>(n) * n, 0.0);
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a != b) {
          links.capacity[static_cast<std::size_t>(a) * n + b] = topo.TrunkCapacity(a, b);
        }
      }
    }
  }

  // Per-link active flow counts guide transit-path choice.
  std::vector<int> active_on_link(links.capacity.size(), 0);
  auto pick_path = [&](int s, int d) {
    std::vector<int> path;
    if (topo.kind() == DcnKind::kSpineClos) {
      path = {2 * s, 2 * d + 1};
      return path;
    }
    const int direct = s * n + d;
    auto headroom = [&](int link) {
      return links.capacity[static_cast<std::size_t>(link)] /
             (active_on_link[static_cast<std::size_t>(link)] + 1.0);
    };
    double best = headroom(direct);
    path = {direct};
    for (int k = 0; k < n; ++k) {
      if (k == s || k == d) continue;
      const int l1 = s * n + k, l2 = k * n + d;
      if (links.capacity[static_cast<std::size_t>(l1)] <= 0.0 ||
          links.capacity[static_cast<std::size_t>(l2)] <= 0.0) {
        continue;
      }
      const double bottleneck = std::min(headroom(l1), headroom(l2));
      if (bottleneck > best) {
        best = bottleneck;
        path = {l1, l2};
      }
    }
    return path;
  };

  // Arrival process: per-pair Poisson intensities proportional to demand,
  // scaled so the offered load matches config.load of fabric capacity.
  const double fabric_capacity =
      topo.kind() == DcnKind::kSpineClos
          ? n * topo.uplink_gbps()
          : [&] {
              double c = 0.0;
              for (double cap : links.capacity) c += cap;
              return c / 2.0;  // count trunk pairs once
            }();
  const double offered_gbps = config.load * fabric_capacity;
  const double mean_bits = config.mean_flow_mb * 8e6;
  const double arrival_rate = offered_gbps * 1e9 / mean_bits;  // flows/s

  // Cumulative demand distribution for picking flow endpoints.
  std::vector<double> cdf;
  std::vector<std::pair<int, int>> pairs;
  double acc = 0.0;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d || demand.at(s, d) <= 0.0) continue;
      acc += demand.at(s, d);
      cdf.push_back(acc);
      pairs.emplace_back(s, d);
    }
  }
  assert(!cdf.empty());

  std::vector<std::unique_ptr<Flow>> flows;
  std::vector<Flow*> active;
  common::SampleSet fct_ms;
  common::SampleSet rates;
  double now = 0.0;
  double next_arrival = rng.Exponential(arrival_rate);
  int flows_created = 0;
  std::uint64_t completed = 0;

  auto reallocate = [&] { AllocateMaxMin(active, links); };

  while (now < config.sim_seconds && flows_created < config.max_flows) {
    // Earliest departure under current rates.
    double next_departure = std::numeric_limits<double>::infinity();
    Flow* departing = nullptr;
    for (Flow* f : active) {
      if (f->rate_gbps <= 0.0) continue;
      const double t = now + f->remaining_bytes * 8.0 / (f->rate_gbps * 1e9);
      if (t < next_departure) {
        next_departure = t;
        departing = f;
      }
    }

    if (next_arrival <= next_departure) {
      // Advance remaining bytes to the arrival instant.
      const double dt = next_arrival - now;
      for (Flow* f : active) f->remaining_bytes -= f->rate_gbps * 1e9 / 8.0 * dt;
      now = next_arrival;
      // Spawn the flow.
      const double u = rng.NextDouble() * acc;
      const std::size_t idx = static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      const auto [s, d] = pairs[std::min(idx, pairs.size() - 1)];
      auto flow = std::make_unique<Flow>();
      flow->id = flows_created++;
      flow->remaining_bytes = rng.Exponential(1.0 / (config.mean_flow_mb * 1e6));
      flow->arrival_s = now;
      flow->links = pick_path(s, d);
      for (int l : flow->links) ++active_on_link[static_cast<std::size_t>(l)];
      active.push_back(flow.get());
      flows.push_back(std::move(flow));
      next_arrival = now + rng.Exponential(arrival_rate);
      reallocate();
    } else if (departing != nullptr) {
      const double dt = next_departure - now;
      for (Flow* f : active) f->remaining_bytes -= f->rate_gbps * 1e9 / 8.0 * dt;
      now = next_departure;
      // Retire the departing flow.
      const double duration = now - departing->arrival_s;
      fct_ms.Add(duration * 1e3);
      rates.Add(departing->rate_gbps);
      for (int l : departing->links) --active_on_link[static_cast<std::size_t>(l)];
      active.erase(std::find(active.begin(), active.end(), departing));
      ++completed;
      reallocate();
    } else {
      break;  // no arrivals left in horizon and nothing active
    }
  }

  FlowSimResult result;
  result.completed = completed;
  if (fct_ms.count() > 0) {
    result.mean_fct_ms = fct_ms.mean();
    result.p50_fct_ms = fct_ms.Percentile(50.0);
    result.p99_fct_ms = fct_ms.Percentile(99.0);
    result.mean_throughput_gbps = rates.mean();
  }
  return result;
}

}  // namespace lightwave::sim
