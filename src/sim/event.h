// Deterministic discrete-event engine. Events at equal timestamps fire in
// scheduling order (a monotonic sequence number breaks ties), which keeps
// every simulation in the library reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lightwave::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  double now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Schedules `handler` at absolute time `when` (>= now).
  void At(double when, Handler handler);
  /// Schedules after a delay (>= 0).
  void After(double delay, Handler handler);

  /// Runs until the queue drains or `until` is reached; returns events run.
  std::size_t Run(double until = -1.0);
  /// Fires exactly one event; false when empty.
  bool Step();

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lightwave::sim
