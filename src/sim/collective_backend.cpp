#include "sim/collective_backend.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "telemetry/hub.h"
#include "telemetry/metrics.h"

namespace lightwave::sim {
namespace {

/// Per-direction link rate in GB per us (Gb/s -> GB/us).
double GbytesPerUs(double link_gbps) { return link_gbps / 8.0 / 1e6; }

/// ceil(log2(n)) for n >= 1: tree depth of a double binary tree over n.
int TreeLevels(int n) {
  int levels = 0;
  for (int span = 1; span < n; span <<= 1) ++levels;
  return levels;
}

void CheckCollectiveArgs(int members, double bytes, const CollectiveLinkProfile& link) {
  LW_CHECK(members >= 1) << "collective over " << members << " members";
  LW_CHECK(bytes >= 0.0) << "negative payload " << bytes;
  LW_CHECK(link.link_gbps > 0.0) << "non-positive link rate " << link.link_gbps;
  LW_CHECK(link.hop_latency_us >= 0.0) << "negative hop latency " << link.hop_latency_us;
}

}  // namespace

const char* ToString(CollectiveBackendKind kind) {
  switch (kind) {
    case CollectiveBackendKind::kRing:
      return "ring";
    case CollectiveBackendKind::kTree:
      return "tree";
    case CollectiveBackendKind::kInNetwork:
      return "innetwork";
  }
  return "unknown";
}

void CollectiveBackend::AttachTelemetry(telemetry::Hub* hub) {
  if (hub == nullptr) {
    calls_ = nullptr;
    time_us_ = nullptr;
    return;
  }
  const telemetry::LabelSet labels = {{"backend", name()}};
  calls_ = &hub->metrics().GetCounter("lightwave_sim_collectives_total", labels);
  time_us_ = &hub->metrics().GetHistogram("lightwave_sim_collective_us", labels);
}

void CollectiveBackend::Record(const CollectiveCost& cost) const {
  if (calls_ != nullptr) calls_->Inc();
  if (time_us_ != nullptr) time_us_->Observe(cost.time_us);
}

// --- ring ------------------------------------------------------------------------

CollectiveCost RingBackend::AllReduceCost(int members, double bytes,
                                          const CollectiveLinkProfile& link) const {
  // Delegates to the legacy closed form: the injected-ring path must stay
  // byte-identical to the pre-backend model.
  const auto cost = RingAllReduce(bytes, members, link.link_gbps, link.hop_latency_us);
  Record(cost);
  return cost;
}

double RingBackend::SimulateAllReduce(EventQueue& queue, int members, double bytes,
                                      const CollectiveLinkProfile& link) const {
  CheckCollectiveArgs(members, bytes, link);
  const double start = queue.now();
  if (members > 1) {
    // 2(n-1) steps, each moving bytes/n with both ring directions in use.
    const double step_us =
        (bytes / members / 1e9) / (2.0 * GbytesPerUs(link.link_gbps)) +
        link.hop_latency_us;
    const int steps = 2 * (members - 1);
    int left = steps;
    std::function<void()> advance = [&queue, &advance, &left, step_us] {
      if (left-- > 0) queue.After(step_us, advance);
    };
    queue.After(0.0, advance);
    queue.Run();
  }
  return queue.now() - start;
}

// --- tree ------------------------------------------------------------------------

CollectiveCost TreeBackend::AllReduceCost(int members, double bytes,
                                          const CollectiveLinkProfile& link) const {
  CheckCollectiveArgs(members, bytes, link);
  CollectiveCost cost;
  if (members > 1) {
    // Reduce up ceil(log2 n) levels, broadcast back down. Each member
    // sends the full vector once up and once down (2x the ring's
    // 2*(n-1)/n bandwidth-optimal volume for large n), one link direction
    // active per phase; the two overlaid binary trees split the payload so
    // interior-node links never serialize both halves.
    const int levels = TreeLevels(members);
    cost.bandwidth_term_us = 2.0 * (bytes / 1e9) / GbytesPerUs(link.link_gbps);
    cost.latency_term_us = 2.0 * levels * link.hop_latency_us;
    cost.time_us = cost.bandwidth_term_us + cost.latency_term_us;
  }
  Record(cost);
  return cost;
}

double TreeBackend::SimulateAllReduce(EventQueue& queue, int members, double bytes,
                                      const CollectiveLinkProfile& link) const {
  CheckCollectiveArgs(members, bytes, link);
  const double start = queue.now();
  if (members > 1) {
    // One event per tree level in each of the reduce and broadcast phases;
    // the payload share of a level is the full per-phase volume divided by
    // the levels it pipelines across.
    const int levels = TreeLevels(members);
    const int steps = 2 * levels;
    const double step_us =
        (bytes / 1e9) / GbytesPerUs(link.link_gbps) / levels + link.hop_latency_us;
    int left = steps;
    std::function<void()> advance = [&queue, &advance, &left, step_us] {
      if (left-- > 0) queue.After(step_us, advance);
    };
    queue.After(0.0, advance);
    queue.Run();
  }
  return queue.now() - start;
}

// --- in-network (SwitchML-style) -------------------------------------------------

InNetworkBackend::InNetworkBackend(InNetworkConfig config) : config_(config) {
  LW_CHECK(config_.pool_slots >= 1) << "switch pool of " << config_.pool_slots;
  LW_CHECK(config_.slot_bytes > 0.0) << "slot payload " << config_.slot_bytes;
  LW_CHECK(config_.drop_probability >= 0.0 && config_.drop_probability < 1.0)
      << "drop probability " << config_.drop_probability;
  LW_CHECK(config_.switch_latency_us >= 0.0);
}

CollectiveCost InNetworkBackend::AllReduceCost(int members, double bytes,
                                               const CollectiveLinkProfile& link) const {
  CheckCollectiveArgs(members, bytes, link);
  CollectiveCost cost;
  // Every member streams its packets in parallel and the switch aggregates
  // them in lockstep, so nothing below depends on `members` — the SwitchML
  // worker-count-independence property. Per packet: serialization S
  // (inflated by the expected retransmissions, a round trip surviving with
  // probability (1-p)^2), then a round trip R through the switch. A packet
  // may start once the member link is free AND one of the `pool_slots`
  // pool slots has been released by an earlier packet's round trip:
  //   C_k = max(k*S, C_{k-W}) + S + R.
  const double packets = std::ceil(bytes / config_.slot_bytes);
  if (members > 1 && packets > 0.0) {
    const double keep = 1.0 - config_.drop_probability;
    const double retry = 1.0 / (keep * keep);
    const double S = (config_.slot_bytes / 1e9) / GbytesPerUs(link.link_gbps) * retry;
    const double R = 2.0 * link.hop_latency_us + config_.switch_latency_us;
    const double W = config_.pool_slots;
    double total;
    if ((W - 1.0) * S >= R) {
      // Link-bound: a slot always frees before the link finishes the next
      // serialization; the pipeline streams at line rate.
      total = packets * S + R;
    } else {
      // Slot-bound: every W-th packet stalls for the outstanding round
      // trip. Closed form of the recurrence above at k = packets-1.
      const double q = std::floor((packets - 1.0) / W);
      const double m = packets - 1.0 - q * W;
      total = (m + 1.0) * S + R + q * (S + R);
    }
    cost.bandwidth_term_us = packets * S;
    cost.latency_term_us = total - cost.bandwidth_term_us;
    cost.time_us = total;
  }
  Record(cost);
  return cost;
}

double InNetworkBackend::SimulateAllReduce(EventQueue& queue, int members, double bytes,
                                           const CollectiveLinkProfile& link) const {
  CheckCollectiveArgs(members, bytes, link);
  const double start = queue.now();
  const auto total_packets = static_cast<long long>(std::ceil(bytes / config_.slot_bytes));
  if (members > 1 && total_packets > 0) {
    // Genuine sliding-window simulation of one member's stream (all
    // members are in lockstep): the link serializes one packet at a time,
    // at most `pool_slots` packets are outstanding between transmit and
    // aggregate return, and retransmissions inflate serialization by the
    // expected-tries factor (kept deterministic so the validator pins the
    // closed form exactly).
    const double keep = 1.0 - config_.drop_probability;
    const double S = (config_.slot_bytes / 1e9) / GbytesPerUs(link.link_gbps) /
                     (keep * keep);
    const double R = 2.0 * link.hop_latency_us + config_.switch_latency_us;
    long long next = 0;       // packets handed to the link so far
    long long in_flight = 0;  // transmitted or serializing, not yet acked
    bool link_busy = false;
    std::function<void()> start_if_possible;
    std::function<void()> tx_done = [&] {
      link_busy = false;
      queue.After(R, [&] {
        --in_flight;
        start_if_possible();
      });
      start_if_possible();
    };
    start_if_possible = [&] {
      if (next >= total_packets || link_busy || in_flight >= config_.pool_slots) return;
      link_busy = true;
      ++in_flight;
      ++next;
      queue.After(S, tx_done);
    };
    queue.After(0.0, start_if_possible);
    queue.Run();
  }
  return queue.now() - start;
}

// --- registry --------------------------------------------------------------------

const CollectiveBackend& DefaultCollectiveBackend() {
  static const RingBackend* const kRing = new RingBackend;
  return *kRing;
}

std::shared_ptr<const CollectiveBackend> MakeCollectiveBackend(CollectiveBackendKind kind,
                                                               InNetworkConfig config) {
  switch (kind) {
    case CollectiveBackendKind::kRing:
      return std::make_shared<RingBackend>();
    case CollectiveBackendKind::kTree:
      return std::make_shared<TreeBackend>();
    case CollectiveBackendKind::kInNetwork:
      return std::make_shared<InNetworkBackend>(config);
  }
  LW_UNREACHABLE() << "collective backend kind";
  return nullptr;
}

}  // namespace lightwave::sim
