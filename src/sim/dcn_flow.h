// Flow-level DCN simulator. Models an aggregation-block graph (spine-full
// Clos via the hose model, or a spine-free direct mesh with arbitrary
// inter-block capacities), routes flows on direct or least-loaded two-hop
// transit paths, allocates rates max-min fairly by progressive filling, and
// runs an event-driven arrival/departure loop to measure flow completion
// times and throughput — the §4.2 DCN comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "sim/traffic.h"

namespace lightwave::sim {

enum class DcnKind {
  kSpineClos,   // non-blocking core; only per-block up/downlink capacity binds
  kDirectMesh,  // OCS-connected block-to-block trunks
};

/// A DCN at aggregation-block granularity.
class DcnTopology {
 public:
  /// Clos: every block has `uplink_gbps` into a non-blocking spine.
  static DcnTopology SpineClos(int blocks, double uplink_gbps);
  /// Uniform mesh: each block's `uplink_gbps` of ports spread evenly over
  /// the other blocks.
  static DcnTopology UniformMesh(int blocks, double uplink_gbps);
  /// Topology-engineered mesh: trunk capacity allocated proportionally to a
  /// forecast demand matrix (with a uniform floor so transit stays
  /// possible), same per-block port budget as the uniform mesh.
  static DcnTopology EngineeredMesh(int blocks, double uplink_gbps,
                                    const TrafficMatrix& forecast,
                                    double uniform_floor_fraction = 0.2);
  /// Mesh with explicitly given trunk capacities (Gb/s per direction),
  /// e.g. read back from installed OCS cross-connects. The matrix must be
  /// symmetric.
  static DcnTopology FromTrunkCapacities(int blocks, double uplink_gbps,
                                         const TrafficMatrix& capacities);

  DcnKind kind() const { return kind_; }
  int blocks() const { return blocks_; }
  double uplink_gbps() const { return uplink_gbps_; }
  double TrunkCapacity(int a, int b) const;  // direct-mesh only

 private:
  DcnTopology(DcnKind kind, int blocks, double uplink_gbps);

  DcnKind kind_;
  int blocks_;
  double uplink_gbps_;
  std::vector<double> trunk_;  // row-major capacity matrix (mesh only)
};

/// Max concurrent-flow scale: the largest alpha such that alpha * demand is
/// routable (direct + two-hop transit water-filling; hose constraints for
/// the Clos). The paper's "30% increase in TCP throughput" is this metric's
/// ratio between engineered and uniform meshes under skewed demand.
double MaxConcurrentFlowScale(const DcnTopology& topo, const TrafficMatrix& demand);

struct FlowSimConfig {
  double load = 0.6;              // offered load relative to fabric capacity
  double mean_flow_mb = 16.0;     // mean flow size (exponential mix)
  double sim_seconds = 2.0;
  std::uint64_t seed = 42;
  int max_flows = 200'000;        // safety bound
};

struct FlowSimResult {
  std::uint64_t completed = 0;
  double mean_fct_ms = 0.0;
  double p50_fct_ms = 0.0;
  double p99_fct_ms = 0.0;
  double mean_throughput_gbps = 0.0;  // per-flow average achieved rate
};

/// Event-driven flow simulation: Poisson arrivals with per-pair intensities
/// proportional to `demand`, max-min fair rates recomputed at each arrival
/// and departure.
FlowSimResult SimulateFlows(const DcnTopology& topo, const TrafficMatrix& demand,
                            const FlowSimConfig& config);

}  // namespace lightwave::sim
