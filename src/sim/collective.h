// Collective-communication timing on a slice's 3D torus. Provides the
// analytic ring-collective costs the LLM performance model composes, plus an
// event-driven simulation of a multi-phase torus all-reduce (reduce-scatter
// and all-gather per dimension) that validates the closed forms and is what
// the examples drive.
#pragma once

#include <vector>

#include "sim/event.h"
#include "tpu/ici.h"
#include "tpu/slice.h"

namespace lightwave::tpu {
class SliceTopology;
}

namespace lightwave::sim {

using IciLinkSpec = tpu::IciLinkSpec;

struct CollectiveCost {
  double time_us = 0.0;
  double bandwidth_term_us = 0.0;
  double latency_term_us = 0.0;
};

/// Ring all-reduce of `bytes` over a ring of `n` members whose slowest link
/// moves `link_gbps` per direction (both directions used). Standard cost:
/// 2 * bytes * (n-1)/n at ring bandwidth plus 2*(n-1) hop latencies.
CollectiveCost RingAllReduce(double bytes, int n, double link_gbps, double hop_latency_us);

/// Same decomposition for reduce-scatter / all-gather (half the volume).
CollectiveCost RingReduceScatter(double bytes, int n, double link_gbps,
                                 double hop_latency_us);

/// Per-dimension ring description of a slice torus at chip granularity.
struct TorusRing {
  tpu::Dim dim = tpu::Dim::kX;
  int length_chips = 0;    // 4 * cubes in this dim
  int optical_hops = 0;    // cube boundaries crossed by the ring
  int electrical_hops = 0;
};

std::vector<TorusRing> RingsOf(const tpu::SliceShape& shape);

/// Mean per-hop latency of a ring given its electrical/optical hop mix.
double MeanHopLatencyUs(const TorusRing& ring, const IciLinkSpec& spec);

/// Full-slice all-reduce: reduce-scatter along each dimension then
/// all-gather back (the standard multi-dimensional torus algorithm).
CollectiveCost TorusAllReduce(const tpu::SliceShape& shape, double bytes,
                              const IciLinkSpec& spec = {});

/// Event-driven validation: simulates the phase structure of the same torus
/// all-reduce on the event queue (per-step transfer events on every ring)
/// and returns the completion time in us.
double SimulateTorusAllReduce(const tpu::SliceShape& shape, double bytes,
                              const IciLinkSpec& spec = {});

}  // namespace lightwave::sim
