#include "sim/phase_reconfig.h"

#include <cassert>
#include <limits>

namespace lightwave::sim {

PhaseScheduleResult EvaluatePhaseSchedule(const std::vector<TrainingPhase>& phases,
                                          int cubes, const ReconfigurationCost& cost,
                                          const LlmPerfModel& model) {
  assert(!phases.empty());
  PhaseScheduleResult result;

  // Fixed strategy: the single shape minimizing the whole super-iteration.
  double best_fixed = std::numeric_limits<double>::infinity();
  for (const auto& shape : tpu::EnumerateShapes(cubes)) {
    double total = 0.0;
    for (const auto& phase : phases) {
      total += phase.steps * model.StepTime(phase.workload, shape).total_us;
    }
    if (total < best_fixed) {
      best_fixed = total;
      result.fixed_shape = shape;
    }
  }
  result.fixed_us = best_fixed;

  // Reconfiguration strategy: per-phase optimum, paying the transition cost
  // whenever consecutive phases use different shapes (cyclically).
  double reconfig_compute = 0.0;
  for (const auto& phase : phases) {
    const auto ranked = model.RankShapes(phase.workload, cubes);
    result.per_phase_shapes.push_back(ranked.front().shape);
    reconfig_compute += phase.steps * ranked.front().breakdown.total_us;
  }
  int transitions = 0;
  for (std::size_t i = 0; i < result.per_phase_shapes.size(); ++i) {
    const auto& next =
        result.per_phase_shapes[(i + 1) % result.per_phase_shapes.size()];
    if (result.per_phase_shapes[i] != next) ++transitions;
  }
  result.reconfig_overhead_us = transitions * cost.TotalUs();
  result.reconfig_us = reconfig_compute + result.reconfig_overhead_us;
  result.speedup = result.fixed_us / result.reconfig_us;
  return result;
}

int CrossoverStepsPerPhase(const std::vector<TrainingPhase>& phases, int cubes,
                           const ReconfigurationCost& cost, const LlmPerfModel& model,
                           int max_steps) {
  // Binary search on the scale factor: the advantage of reconfiguration
  // grows linearly with steps while the overhead is constant.
  auto wins = [&](int steps) {
    std::vector<TrainingPhase> scaled = phases;
    for (auto& p : scaled) p.steps = steps;
    return EvaluatePhaseSchedule(scaled, cubes, cost, model).speedup > 1.0;
  };
  if (!wins(max_steps)) return -1;
  int lo = 1, hi = max_steps;
  if (wins(1)) return 1;
  while (lo + 1 < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (wins(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace lightwave::sim
