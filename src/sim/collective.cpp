#include "sim/collective.h"

#include <algorithm>

#include "common/check.h"
#include "tpu/cube.h"

namespace lightwave::sim {

CollectiveCost RingAllReduce(double bytes, int n, double link_gbps, double hop_latency_us) {
  LW_CHECK(n >= 1) << "ring of " << n << " members";
  LW_CHECK(bytes >= 0.0) << "negative payload " << bytes;
  LW_CHECK(link_gbps > 0.0) << "non-positive link rate " << link_gbps;
  if (n == 1) return {};
  CollectiveCost cost;
  // 2(n-1) steps each moving bytes/n; both ring directions are used, so the
  // effective rate is twice the per-direction link rate.
  const double gbytes_per_us = 2.0 * link_gbps / 8.0 / 1e6;  // GB per us (Gb/s -> GB/us)
  cost.bandwidth_term_us = 2.0 * (bytes / 1e9) * (n - 1) / n / gbytes_per_us;
  cost.latency_term_us = 2.0 * (n - 1) * hop_latency_us;
  cost.time_us = cost.bandwidth_term_us + cost.latency_term_us;
  return cost;
}

CollectiveCost RingReduceScatter(double bytes, int n, double link_gbps,
                                 double hop_latency_us) {
  LW_CHECK(n >= 1) << "ring of " << n << " members";
  LW_CHECK(bytes >= 0.0) << "negative payload " << bytes;
  LW_CHECK(link_gbps > 0.0) << "non-positive link rate " << link_gbps;
  if (n == 1) return {};
  CollectiveCost cost;
  const double gbytes_per_us = 2.0 * link_gbps / 8.0 / 1e6;
  cost.bandwidth_term_us = (bytes / 1e9) * (n - 1) / n / gbytes_per_us;
  cost.latency_term_us = (n - 1) * hop_latency_us;
  cost.time_us = cost.bandwidth_term_us + cost.latency_term_us;
  return cost;
}

std::vector<TorusRing> RingsOf(const tpu::SliceShape& shape) {
  std::vector<TorusRing> rings;
  const int cube_dims[3] = {shape.a, shape.b, shape.c};
  for (int d = 0; d < 3; ++d) {
    TorusRing ring;
    ring.dim = static_cast<tpu::Dim>(d);
    const int cubes = cube_dims[d];
    ring.length_chips = cubes * tpu::kCubeEdge;
    // Each cube boundary along the ring is an optical hop; a single-cube
    // dimension wraps through the OCS once (the self-loop), multi-cube
    // dimensions cross `cubes` boundaries total around the ring.
    ring.optical_hops = cubes == 1 ? 1 : cubes;
    ring.electrical_hops = ring.length_chips - ring.optical_hops;
    rings.push_back(ring);
  }
  return rings;
}

double MeanHopLatencyUs(const TorusRing& ring, const IciLinkSpec& spec) {
  const int hops = ring.optical_hops + ring.electrical_hops;
  if (hops == 0) return spec.electrical_hop_us;
  return (ring.optical_hops * spec.optical_hop_us +
          ring.electrical_hops * spec.electrical_hop_us) /
         hops;
}

CollectiveCost TorusAllReduce(const tpu::SliceShape& shape, double bytes,
                              const IciLinkSpec& spec) {
  // Multi-dimensional algorithm: reduce-scatter along x, then y, then z on
  // progressively smaller shards, then all-gather in reverse. Dimension d
  // with ring length n_d handles bytes / (product of earlier ring lengths).
  CollectiveCost total;
  const auto rings = RingsOf(shape);
  double shard = bytes;
  for (const auto& ring : rings) {
    const auto cost = RingReduceScatter(shard, ring.length_chips, spec.bandwidth_gbps,
                                        MeanHopLatencyUs(ring, spec));
    total.bandwidth_term_us += cost.bandwidth_term_us;
    total.latency_term_us += cost.latency_term_us;
    shard /= ring.length_chips;
  }
  // All-gather mirrors the reduce-scatter cost structure.
  for (auto it = rings.rbegin(); it != rings.rend(); ++it) {
    shard *= it->length_chips;
    const auto cost = RingReduceScatter(shard, it->length_chips, spec.bandwidth_gbps,
                                        MeanHopLatencyUs(*it, spec));
    total.bandwidth_term_us += cost.bandwidth_term_us;
    total.latency_term_us += cost.latency_term_us;
  }
  total.time_us = total.bandwidth_term_us + total.latency_term_us;
  return total;
}

double SimulateTorusAllReduce(const tpu::SliceShape& shape, double bytes,
                              const IciLinkSpec& spec) {
  // Event-driven phase simulation: each ring step is a timed transfer event
  // on every ring of the current dimension; all rings of one dimension
  // proceed in parallel, dimensions proceed sequentially (the synchronous
  // schedule the analytic model assumes).
  EventQueue queue;
  const auto rings = RingsOf(shape);
  double shard = bytes;

  struct Phase {
    int steps;
    double step_bytes;
    double hop_latency_us;
  };
  std::vector<Phase> phases;
  for (const auto& ring : rings) {
    const int n = ring.length_chips;
    if (n > 1) {
      phases.push_back(Phase{n - 1, shard / n, MeanHopLatencyUs(ring, spec)});
    }
    shard /= n;
  }
  for (auto it = rings.rbegin(); it != rings.rend(); ++it) {
    const int n = it->length_chips;
    shard *= n;
    if (n > 1) {
      phases.push_back(Phase{n - 1, shard / n, MeanHopLatencyUs(*it, spec)});
    }
  }

  const double gbytes_per_us = 2.0 * spec.bandwidth_gbps / 8.0 / 1e6;
  std::size_t phase_index = 0;
  int steps_left = 0;
  std::function<void()> advance = [&] {
    if (steps_left == 0) {
      if (phase_index == phases.size()) return;  // done
      steps_left = phases[phase_index].steps;
      ++phase_index;
    }
    const Phase& phase = phases[phase_index - 1];
    const double step_time =
        phase.step_bytes / 1e9 / gbytes_per_us + phase.hop_latency_us;
    --steps_left;
    queue.After(step_time, advance);
  };
  queue.After(0.0, advance);
  queue.Run();
  return queue.now();
}

}  // namespace lightwave::sim
