// Fast-reconfiguration study (§6): "changing the configuration of the slice
// during a training session to match communication patterns of different
// computing phases has the potential to improve performance [63]". A job
// alternates phases whose inherent parallelism differs (e.g., an
// embedding/data-heavy phase and a dense/model-heavy phase). Two execution
// strategies:
//   - fixed shape: one compromise slice shape for the whole job;
//   - per-phase reconfiguration: each phase runs its optimal shape, paying
//     the OCS switch time plus optical link bring-up between phases.
// The benefit/cost crossover as a function of switching technology
// (millisecond MEMS -> microsecond piezo/SiPh -> nanosecond) is exactly the
// trade §6 describes.
#pragma once

#include <vector>

#include "sim/llm_model.h"
#include "tpu/slice.h"

namespace lightwave::sim {

struct TrainingPhase {
  LlmSpec workload;
  /// Steps of this phase per super-iteration (phases cycle).
  int steps = 1;
};

struct ReconfigurationCost {
  /// OCS mirror switch time (MEMS: milliseconds; see Table C.1).
  double switch_us = 20'000.0;
  /// Optical link bring-up after the light path changes: receiver squelch
  /// release, CDR lock, FEC lock (§6: fast fabrics need transceivers with
  /// fast initialization).
  double link_bringup_us = 2'000.0;

  double TotalUs() const { return switch_us + link_bringup_us; }
};

struct PhaseScheduleResult {
  tpu::SliceShape fixed_shape;             // best single compromise shape
  double fixed_us = 0.0;                   // one super-iteration, fixed shape
  std::vector<tpu::SliceShape> per_phase_shapes;
  double reconfig_us = 0.0;                // one super-iteration with reconfig
  double reconfig_overhead_us = 0.0;       // switch+bringup part of the above
  double speedup = 1.0;                    // fixed_us / reconfig_us
};

/// Evaluates one super-iteration (each phase once, cycling) on a pod of
/// `cubes` cubes under both strategies.
PhaseScheduleResult EvaluatePhaseSchedule(const std::vector<TrainingPhase>& phases,
                                          int cubes, const ReconfigurationCost& cost,
                                          const LlmPerfModel& model = LlmPerfModel{});

/// The smallest steps-per-phase at which per-phase reconfiguration beats the
/// fixed shape (scaling every phase's step count by the same factor);
/// returns -1 when reconfiguration never wins (identical optimal shapes).
int CrossoverStepsPerPhase(const std::vector<TrainingPhase>& phases, int cubes,
                           const ReconfigurationCost& cost,
                           const LlmPerfModel& model = LlmPerfModel{}, int max_steps = 1 << 20);

}  // namespace lightwave::sim
