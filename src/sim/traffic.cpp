#include "sim/traffic.h"

#include <algorithm>
#include <cassert>

namespace lightwave::sim {

TrafficMatrix::TrafficMatrix(int nodes)
    : nodes_(nodes), demand_(static_cast<std::size_t>(nodes) * nodes, 0.0) {
  assert(nodes > 1);
}

double TrafficMatrix::at(int src, int dst) const {
  assert(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_);
  return demand_[static_cast<std::size_t>(src) * nodes_ + dst];
}

void TrafficMatrix::set(int src, int dst, double gbps) {
  assert(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_ && gbps >= 0.0);
  if (src == dst) return;
  demand_[static_cast<std::size_t>(src) * nodes_ + dst] = gbps;
}

double TrafficMatrix::RowSum(int src) const {
  double sum = 0.0;
  for (int d = 0; d < nodes_; ++d) sum += at(src, d);
  return sum;
}

double TrafficMatrix::ColSum(int dst) const {
  double sum = 0.0;
  for (int s = 0; s < nodes_; ++s) sum += at(s, dst);
  return sum;
}

double TrafficMatrix::Total() const {
  double sum = 0.0;
  for (double d : demand_) sum += d;
  return sum;
}

TrafficMatrix TrafficMatrix::Scaled(double factor) const {
  TrafficMatrix out(nodes_);
  for (int s = 0; s < nodes_; ++s) {
    for (int d = 0; d < nodes_; ++d) out.set(s, d, at(s, d) * factor);
  }
  return out;
}

double TrafficMatrix::SkewRatio() const {
  const double mean = Total() / (static_cast<double>(nodes_) * (nodes_ - 1));
  if (mean <= 0.0) return 0.0;
  double peak = 0.0;
  for (double d : demand_) peak = std::max(peak, d);
  return peak / mean;
}

TrafficMatrix UniformTraffic(int nodes, double total_gbps) {
  TrafficMatrix m(nodes);
  const double per_pair = total_gbps / (static_cast<double>(nodes) * (nodes - 1));
  for (int s = 0; s < nodes; ++s) {
    for (int d = 0; d < nodes; ++d) {
      if (s != d) m.set(s, d, per_pair);
    }
  }
  return m;
}

TrafficMatrix GravityTraffic(int nodes, double total_gbps, common::Rng& rng) {
  std::vector<double> weights(static_cast<std::size_t>(nodes));
  for (auto& w : weights) w = rng.Exponential(1.0);
  TrafficMatrix m(nodes);
  double raw_total = 0.0;
  for (int s = 0; s < nodes; ++s) {
    for (int d = 0; d < nodes; ++d) {
      if (s == d) continue;
      raw_total += weights[static_cast<std::size_t>(s)] * weights[static_cast<std::size_t>(d)];
    }
  }
  for (int s = 0; s < nodes; ++s) {
    for (int d = 0; d < nodes; ++d) {
      if (s == d) continue;
      m.set(s, d,
            total_gbps * weights[static_cast<std::size_t>(s)] *
                weights[static_cast<std::size_t>(d)] / raw_total);
    }
  }
  return m;
}

TrafficMatrix HotspotTraffic(int nodes, double total_gbps, int hotspots, double hot_fraction,
                             common::Rng& rng) {
  assert(hotspots >= 0 && hot_fraction >= 0.0 && hot_fraction <= 1.0);
  TrafficMatrix m = UniformTraffic(nodes, total_gbps * (1.0 - hot_fraction));
  if (hotspots == 0) return m;
  const double per_hot = total_gbps * hot_fraction / hotspots;
  int placed = 0;
  int guard = 0;
  while (placed < hotspots && guard < hotspots * 100) {
    ++guard;
    const int s = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(nodes)));
    const int d = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(nodes)));
    if (s == d) continue;
    m.set(s, d, m.at(s, d) + per_hot);
    ++placed;
  }
  return m;
}

TrafficMatrix DisjointHotspotTraffic(int nodes, double total_gbps, int hotspots,
                                     double hot_fraction, common::Rng& rng) {
  assert(hotspots >= 0 && 2 * hotspots <= nodes);
  assert(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  TrafficMatrix m = UniformTraffic(nodes, total_gbps * (1.0 - hot_fraction));
  if (hotspots == 0) return m;
  // Random permutation of nodes; consecutive pairs become hotspots.
  std::vector<int> order(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = nodes - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(i + 1)));
    std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
  }
  const double per_hot = total_gbps * hot_fraction / hotspots;
  for (int h = 0; h < hotspots; ++h) {
    const int s = order[static_cast<std::size_t>(2 * h)];
    const int d = order[static_cast<std::size_t>(2 * h + 1)];
    m.set(s, d, m.at(s, d) + per_hot);
  }
  return m;
}

TrafficMatrix RotateHotspots(const TrafficMatrix& matrix, int step) {
  const int n = matrix.nodes();
  TrafficMatrix out(n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const int s2 = (s + step) % n;
      int d2 = (d + step) % n;
      if (s2 == d2) d2 = (d2 + 1) % n;
      out.set(s2, d2, out.at(s2, d2) + matrix.at(s, d));
    }
  }
  return out;
}

}  // namespace lightwave::sim
