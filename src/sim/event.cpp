#include "sim/event.h"

#include "common/check.h"

namespace lightwave::sim {

void EventQueue::At(double when, Handler handler) {
  // Monotone sim time is the contract every simulation result rests on:
  // scheduling into the past would silently reorder causality, so it fails
  // loudly in all build types.
  LW_CHECK(when >= now_) << "event scheduled in the past: when=" << when
                         << " now=" << now_;
  queue_.push(Entry{when, next_seq_++, std::move(handler)});
}

void EventQueue::After(double delay, Handler handler) {
  LW_CHECK(delay >= 0.0) << "negative delay " << delay;
  At(now_ + delay, std::move(handler));
}

bool EventQueue::Step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the handler may schedule new events.
  Entry entry = queue_.top();
  queue_.pop();
  LW_DCHECK(entry.when >= now_) << "queue produced an out-of-order timestamp";
  now_ = entry.when;
  entry.handler();
  return true;
}

std::size_t EventQueue::Run(double until) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    if (until >= 0.0 && queue_.top().when > until) break;
    Step();
    ++count;
  }
  if (until >= 0.0 && now_ < until) now_ = until;
  return count;
}

}  // namespace lightwave::sim
