#include "sim/event.h"

#include <cassert>

namespace lightwave::sim {

void EventQueue::At(double when, Handler handler) {
  assert(when >= now_);
  queue_.push(Entry{when, next_seq_++, std::move(handler)});
}

void EventQueue::After(double delay, Handler handler) {
  assert(delay >= 0.0);
  At(now_ + delay, std::move(handler));
}

bool EventQueue::Step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the handler may schedule new events.
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.when;
  entry.handler();
  return true;
}

std::size_t EventQueue::Run(double until) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    if (until >= 0.0 && queue_.top().when > until) break;
    Step();
    ++count;
  }
  if (until >= 0.0 && now_ < until) now_ = until;
  return count;
}

}  // namespace lightwave::sim
