// Pluggable collective backends (ROADMAP item 2). The paper's Table 2
// "shape matters" result assumes every all-reduce is a ring whose cost
// scales with torus circumference; SwitchML-style in-network aggregation
// breaks that assumption (allreduce time independent of worker count), and
// tree collectives trade bandwidth for logarithmic latency. A
// CollectiveBackend abstracts the all-reduce cost model so the LLM
// performance model (sim/llm_model.h) and the multipod trainer
// (sim/multipod.h) can re-run the paper's shape sweeps under each
// algorithm and ask where the optimal slice shape moves.
//
// Mirroring sim/collective.h's analytic-vs-simulated pairing, every
// backend provides both the analytic closed form (`AllReduceCost`) and an
// event-driven validator (`SimulateAllReduce`) on sim::EventQueue; tests
// pin the two against each other. All costs are pure functions of their
// inputs — no clocks, no RNG — so sweeps are deterministic and the default
// ring backend is byte-identical to the legacy RingAllReduce path.
#pragma once

#include <memory>

#include "sim/collective.h"
#include "sim/event.h"

namespace lightwave::telemetry {
class Counter;
class HistogramMetric;
class Hub;
}  // namespace lightwave::telemetry

namespace lightwave::sim {

/// The link a collective runs over, from one member's point of view.
/// `link_gbps` is the per-direction rate of the member's link (ring and
/// tree backends may use both directions; the in-network backend streams
/// up one direction while aggregates return on the other).
struct CollectiveLinkProfile {
  double link_gbps = 400.0;
  double hop_latency_us = 0.5;
};

enum class CollectiveBackendKind { kRing, kTree, kInNetwork };

const char* ToString(CollectiveBackendKind kind);

class CollectiveBackend {
 public:
  virtual ~CollectiveBackend() = default;

  virtual CollectiveBackendKind kind() const = 0;
  /// Stable lowercase label ("ring", "tree", "innetwork"); used as the
  /// telemetry `backend` label and in bench output.
  const char* name() const { return ToString(kind()); }

  /// Analytic all-reduce of `bytes` across `members` participants.
  /// Contracts: members >= 1, bytes >= 0, link.link_gbps > 0. A
  /// single-member collective is free.
  virtual CollectiveCost AllReduceCost(int members, double bytes,
                                       const CollectiveLinkProfile& link) const = 0;

  /// Event-driven validation of the same algorithm on `queue`: schedules
  /// the backend's transfer events and returns the completion time in us
  /// (relative to queue.now() at entry). Used by tests to cross-check the
  /// closed forms; intended for test-sized transfers.
  virtual double SimulateAllReduce(EventQueue& queue, int members, double bytes,
                                   const CollectiveLinkProfile& link) const = 0;

  /// Registers this backend's series (`lightwave_sim_collectives_total`,
  /// `lightwave_sim_collective_us`, both labeled backend=name()) with the
  /// hub and records every subsequent AllReduceCost call. Pass nullptr to
  /// detach. Not synchronized: attach before handing the backend to
  /// concurrent users.
  void AttachTelemetry(telemetry::Hub* hub);

 protected:
  /// Called by implementations on every analytic cost evaluation.
  void Record(const CollectiveCost& cost) const;

 private:
  telemetry::Counter* calls_ = nullptr;
  telemetry::HistogramMetric* time_us_ = nullptr;
};

/// The legacy path: wraps sim::RingAllReduce, so costs are byte-identical
/// to what LlmPerfModel/MultipodTrainer computed before backends existed.
class RingBackend : public CollectiveBackend {
 public:
  CollectiveBackendKind kind() const override { return CollectiveBackendKind::kRing; }
  CollectiveCost AllReduceCost(int members, double bytes,
                               const CollectiveLinkProfile& link) const override;
  double SimulateAllReduce(EventQueue& queue, int members, double bytes,
                           const CollectiveLinkProfile& link) const override;
};

/// Double-binary-tree all-reduce (the NCCL-style tree): reduce up one
/// tree, broadcast down, with the payload split over two overlaid trees so
/// every node is interior in at most one. Latency is logarithmic —
/// 2*ceil(log2 n) hops instead of the ring's 2*(n-1) — but each member
/// moves ~2x the bytes of the bandwidth-optimal ring over one link
/// direction per phase.
class TreeBackend : public CollectiveBackend {
 public:
  CollectiveBackendKind kind() const override { return CollectiveBackendKind::kTree; }
  CollectiveCost AllReduceCost(int members, double bytes,
                               const CollectiveLinkProfile& link) const override;
  double SimulateAllReduce(EventQueue& queue, int members, double bytes,
                           const CollectiveLinkProfile& link) const override;
};

/// SwitchML-style in-network aggregation: every member streams its vector
/// to a switch that aggregates in a bounded pool of slots and multicasts
/// results back. Members proceed in parallel, so the time is independent
/// of the member count; the bounded slot pool gates pipeline depth (too
/// few outstanding slots and the link idles waiting for round trips), and
/// lost packets are retransmitted per the SwitchML recovery design.
struct InNetworkConfig {
  /// Aggregation slots the switch pool grants this job. The pipeline can
  /// keep at most this many packets in flight per member.
  int pool_slots = 128;
  /// Payload bytes aggregated per slot round-trip (the SwitchML packet
  /// vector size).
  double slot_bytes = 1024.0;
  /// Independent per-packet drop probability in each direction. A slot's
  /// round trip succeeds with probability (1-p)^2; failures retransmit,
  /// inflating the expected serialization cost by 1/(1-p)^2.
  double drop_probability = 0.0;
  /// Switch aggregation-pipeline latency added to each slot round trip.
  double switch_latency_us = 1.0;
};

class InNetworkBackend : public CollectiveBackend {
 public:
  explicit InNetworkBackend(InNetworkConfig config = {});

  CollectiveBackendKind kind() const override {
    return CollectiveBackendKind::kInNetwork;
  }
  CollectiveCost AllReduceCost(int members, double bytes,
                               const CollectiveLinkProfile& link) const override;
  double SimulateAllReduce(EventQueue& queue, int members, double bytes,
                           const CollectiveLinkProfile& link) const override;

  const InNetworkConfig& config() const { return config_; }

 private:
  InNetworkConfig config_;
};

/// Process-wide ring backend used when no backend is injected (the
/// byte-identical legacy default). Never has telemetry attached.
const CollectiveBackend& DefaultCollectiveBackend();

/// Convenience factory for sweeps; `config` only applies to kInNetwork.
std::shared_ptr<const CollectiveBackend> MakeCollectiveBackend(
    CollectiveBackendKind kind, InNetworkConfig config = {});

}  // namespace lightwave::sim
