// Traffic-matrix generators for the DCN evaluation: uniform all-to-all,
// gravity (random weights), hotspot-skewed, and time-rotating variants that
// model the long-lived demand shifts topology engineering exploits (§2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lightwave::sim {

/// Demands in Gb/s between aggregation blocks; row = source.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(int nodes);

  int nodes() const { return nodes_; }
  double at(int src, int dst) const;
  void set(int src, int dst, double gbps);
  double RowSum(int src) const;
  double ColSum(int dst) const;
  double Total() const;
  /// Scales every entry by `factor`.
  TrafficMatrix Scaled(double factor) const;
  /// Largest single demand over the mean demand — the skew statistic.
  double SkewRatio() const;

 private:
  int nodes_;
  std::vector<double> demand_;  // row-major, diagonal zero
};

/// Every pair carries `total_gbps / (n*(n-1))`.
TrafficMatrix UniformTraffic(int nodes, double total_gbps);

/// Gravity model: node weights ~ Exp(1); demand ij ~ w_i * w_j.
TrafficMatrix GravityTraffic(int nodes, double total_gbps, common::Rng& rng);

/// `hotspots` node pairs carry `hot_fraction` of the total; the rest is
/// uniform. Models the long-lived heavy elephant aggregates of §2.1.
/// Hotspot endpoints may repeat, so heavily loaded blocks can end up
/// hose-bound (no topology helps those).
TrafficMatrix HotspotTraffic(int nodes, double total_gbps, int hotspots,
                             double hot_fraction, common::Rng& rng);

/// Like HotspotTraffic but every hotspot occupies a distinct pair of blocks
/// (requires 2*hotspots <= nodes): the service-to-service elephants where
/// topology engineering shines, because the per-block port budget is not
/// the binding constraint.
TrafficMatrix DisjointHotspotTraffic(int nodes, double total_gbps, int hotspots,
                                     double hot_fraction, common::Rng& rng);

/// Rotates the hotspot pairs by `step` positions — the "shifting with the
/// turnup and turndown of services" pattern; used to exercise
/// reconfiguration.
TrafficMatrix RotateHotspots(const TrafficMatrix& matrix, int step);

}  // namespace lightwave::sim
