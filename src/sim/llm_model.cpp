#include "sim/llm_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sim/collective_backend.h"

namespace lightwave::sim {
namespace {

LlmSpec MakeSpec(std::string name, double params_b, double global_batch, int layers, int mp,
                 int pp, int dp) {
  LlmSpec spec;
  spec.name = std::move(name);
  spec.params_billion = params_b;
  spec.global_batch = global_batch;
  spec.layers = layers;
  spec.hidden = std::sqrt(params_b * 1e9 / (12.0 * layers));
  spec.inherent_mp = mp;
  spec.inherent_pp = pp;
  spec.inherent_dp = dp;
  return spec;
}

double MismatchRatio(int have, int inherent) {
  LW_DCHECK(have > 0 && inherent > 0);
  return have > inherent ? static_cast<double>(have) / inherent
                         : static_cast<double>(inherent) / have;
}

}  // namespace

LlmSpec Llm0() {
  // 35B parameters with a global batch much larger than the model's natural
  // sharding: 8-way tensor parallel, 16 pipeline stages, 32-way data.
  return MakeSpec("LLM0", 35.0, 1024.0, 48, /*mp=*/8, /*pp=*/16, /*dp=*/32);
}

LlmSpec Llm1() {
  // 70B parameters but an even more data-skewed batch (§4.2.1: "inherent
  // parallelism more skewed to data parallelism"): 4 x 4 x 256.
  return MakeSpec("LLM1", 70.0, 2048.0, 80, /*mp=*/4, /*pp=*/4, /*dp=*/256);
}

LlmSpec Llm2() {
  // 150B parameters, batch-limited: balanced 16 x 16 x 16 — exactly the
  // highest-bisection full-pod shape.
  return MakeSpec("LLM2", 150.0, 512.0, 96, /*mp=*/16, /*pp=*/16, /*dp=*/16);
}

LlmStepBreakdown LlmPerfModel::StepTime(const LlmSpec& spec,
                                        const tpu::SliceShape& shape) const {
  LlmStepBreakdown out;
  const int X = shape.ChipDim(tpu::Dim::kX);
  const int Y = shape.ChipDim(tpu::Dim::kY);
  const int Z = shape.ChipDim(tpu::Dim::kZ);
  const int N = X * Y * Z;
  const int D = Y * Z;  // replicas = pipeline groups x data groups
  LW_CHECK(N > 0) << "empty slice " << shape.ToString();
  const CollectiveBackend& backend =
      cal_.collective_backend ? *cal_.collective_backend : DefaultCollectiveBackend();

  // --- parallelism mismatch ---------------------------------------------------
  out.mismatch_penalty =
      std::pow(MismatchRatio(X, spec.inherent_mp), cal_.mp_mismatch_exponent) *
      std::pow(MismatchRatio(Y, spec.inherent_pp), cal_.pp_mismatch_exponent) *
      std::pow(MismatchRatio(Z, spec.inherent_dp), cal_.dp_mismatch_exponent);

  // --- compute ------------------------------------------------------------------
  const double tokens = spec.global_batch * spec.seq_len;
  const double flops = 6.0 * spec.params_billion * 1e9 * tokens;
  out.compute_us = flops / (N * cal_.peak_tflops * 1e12 * cal_.base_mxu_efficiency) * 1e6 *
                   out.mismatch_penalty;

  // --- model-parallel communication ------------------------------------------
  // Tensor-parallel all-reduces across the X ring, per layer, for the whole
  // per-replica batch (gradient accumulation spreads it over microsteps but
  // the per-step total volume is fixed).
  const auto rings = RingsOf(shape);
  if (X > 1) {
    const double seq_per_replica = spec.global_batch / D;
    const double act_bytes =
        2.0 * seq_per_replica * spec.seq_len * spec.hidden;  // bf16 activations
    const CollectiveLinkProfile profile{cal_.ici.bandwidth_gbps,
                                        MeanHopLatencyUs(rings[0], cal_.ici)};
    const double per_layer = backend.AllReduceCost(X, act_bytes, profile).time_us;
    out.mp_comm_us = cal_.mp_collectives_per_layer * spec.layers * per_layer;
  }

  // --- data-parallel communication ---------------------------------------------
  // Gradient all-reduce of the layer shard over the (Y, Z) sub-torus; the
  // two dimensions contribute ring bandwidth in parallel. Mostly overlapped
  // with the backward pass.
  if (D > 1) {
    const double grad_bytes = 2.0 * spec.params_billion * 1e9 / X;
    int active_dims = 0;
    if (Y > 1) ++active_dims;
    if (Z > 1) ++active_dims;
    const double hop = std::max(MeanHopLatencyUs(rings[1], cal_.ici),
                                MeanHopLatencyUs(rings[2], cal_.ici));
    const double dp_bw = cal_.ici.bandwidth_gbps * std::max(1, active_dims);
    const double t_dp =
        backend.AllReduceCost(D, grad_bytes, CollectiveLinkProfile{dp_bw, hop}).time_us;
    out.dp_comm_exposed_us = std::max(0.0, t_dp - cal_.dp_overlap * out.compute_us);
  }

  out.total_us = out.compute_us + out.mp_comm_us + out.dp_comm_exposed_us;
  out.throughput_seq_per_s = spec.global_batch / (out.total_us * 1e-6);
  return out;
}

std::vector<LlmPerfModel::ShapeResult> LlmPerfModel::RankShapes(const LlmSpec& spec,
                                                                int cubes) const {
  std::vector<ShapeResult> results;
  for (const auto& shape : tpu::EnumerateShapes(cubes)) {
    results.push_back(ShapeResult{shape, StepTime(spec, shape)});
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const ShapeResult& a, const ShapeResult& b) {
                     return a.breakdown.total_us < b.breakdown.total_us;
                   });
  return results;
}

}  // namespace lightwave::sim
