// LLM training step-time model on a slice torus (Table 2, §4.2.1). The
// model composes:
//   - compute: 6*P*tokens FLOPs spread over the slice,
//   - a parallelism-mismatch penalty: the production optimizer assigns torus
//     dim 1 to (tensor) model parallelism, dim 2 to model pipelining, and
//     dim 3 to data parallelism; each workload has an inherent degree per
//     axis (what hyperscale NAS [33] discovers from the model size and
//     global batch), and running an axis over- or under-provisioned costs a
//     calibrated power-law factor (over-sharded matmuls fall off the MXU
//     sweet spot, under-sharded layers recompute activations, mismatched
//     pipelines bubble, surplus data parallelism idles replicas),
//   - model-parallel communication: per-layer tensor-parallel all-reduces
//     across the first torus dimension (real ring-collective cost on the
//     slice's electrical/optical hop mix by default; the calibration can
//     inject a tree or in-network CollectiveBackend instead),
//   - data-parallel communication: gradient all-reduce over the dim-2/3
//     sub-torus, mostly overlapped with the backward pass.
// The published LLM0..LLM2 workloads are provided as presets; the penalty
// exponents are calibrated against Table 2 (see EXPERIMENTS.md).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/collective.h"
#include "tpu/slice.h"

namespace lightwave::sim {

class CollectiveBackend;

struct LlmSpec {
  std::string name;
  double params_billion = 0.0;
  double global_batch = 0.0;  // sequences per step
  int seq_len = 2048;
  int layers = 0;
  double hidden = 0.0;  // derived: 12 * layers * hidden^2 ~= params
  /// Inherent parallelism per torus axis (chips): tensor/model parallel,
  /// pipeline stages, data parallel. Product = the natural full-pod fit.
  int inherent_mp = 1;
  int inherent_pp = 1;
  int inherent_dp = 1;
};

/// The three production-scale workloads of Table 2.
LlmSpec Llm0();  //  35B params, data-heavy      -> optimal  8 x 16 x  32
LlmSpec Llm1();  //  70B params, very data-heavy -> optimal  4 x  4 x 256
LlmSpec Llm2();  // 150B params, model-heavy     -> optimal 16 x 16 x  16

struct LlmCalibration {
  double peak_tflops = 275.0;        // TPU v4 bf16 peak per chip
  double base_mxu_efficiency = 0.5;  // at the matched shape
  /// Mismatch exponents per axis: slowdown *= ratio^k where ratio is
  /// max(dim/inherent, inherent/dim). Calibrated to Table 2.
  double mp_mismatch_exponent = 0.53;
  double pp_mismatch_exponent = 0.15;
  double dp_mismatch_exponent = 0.092;
  /// Tensor-parallel all-reduces per layer (fwd+bwd, attention+MLP).
  double mp_collectives_per_layer = 4.0;
  /// Fraction of the data-parallel gradient all-reduce hidden under the
  /// backward pass.
  double dp_overlap = 0.85;
  IciLinkSpec ici;
  /// Collective algorithm for both the tensor-parallel per-layer
  /// all-reduces and the data-parallel gradient all-reduce
  /// (sim/collective_backend.h). Null selects the process-wide ring
  /// backend, which is byte-identical to the pre-backend closed forms.
  std::shared_ptr<const CollectiveBackend> collective_backend;
};

struct LlmStepBreakdown {
  double compute_us = 0.0;           // including the mismatch penalty
  double mismatch_penalty = 1.0;     // >= 1
  double mp_comm_us = 0.0;
  double dp_comm_exposed_us = 0.0;
  double total_us = 0.0;
  /// Training throughput in sequences per second.
  double throughput_seq_per_s = 0.0;
};

class LlmPerfModel {
 public:
  explicit LlmPerfModel(LlmCalibration calibration = {}) : cal_(calibration) {}

  /// Step time for `spec` on a slice of the given shape; chip dims (X, Y, Z)
  /// host model / pipeline / data parallelism respectively.
  LlmStepBreakdown StepTime(const LlmSpec& spec, const tpu::SliceShape& shape) const;

  struct ShapeResult {
    tpu::SliceShape shape;
    LlmStepBreakdown breakdown;
  };
  /// Evaluates every ordered shape with the given cube count and returns
  /// them sorted by throughput (best first).
  std::vector<ShapeResult> RankShapes(const LlmSpec& spec, int cubes) const;

  const LlmCalibration& calibration() const { return cal_; }

 private:
  LlmCalibration cal_;
};

}  // namespace lightwave::sim
