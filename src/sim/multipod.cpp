#include "sim/multipod.h"

#include <algorithm>

#include "common/check.h"
#include "sim/collective.h"
#include "sim/collective_backend.h"
#include "tpu/wiring.h"

namespace lightwave::sim {

double MultipodTrainer::PodRingBandwidthGbps(const MultipodConfig& config) {
  LW_CHECK(config.pods >= 2) << "pod ring of " << config.pods;
  LW_CHECK(config.dcn_gbps_per_pod > 0.0)
      << "non-positive DCN uplink " << config.dcn_gbps_per_pod;
  switch (config.dcn_mode) {
    case MultipodConfig::DcnMode::kUniformMesh:
      // Uplink spread over every other pod; a ring uses only the two
      // neighbour trunks.
      return config.dcn_gbps_per_pod / (config.pods - 1);
    case MultipodConfig::DcnMode::kEngineered:
      // The lightwave DCN concentrates each pod's uplink onto its two ring
      // neighbours (half each way).
      return config.pods == 2 ? config.dcn_gbps_per_pod
                              : config.dcn_gbps_per_pod / 2.0;
  }
  return 0.0;
}

MultipodStep MultipodTrainer::StepTime(const LlmSpec& spec,
                                       const MultipodConfig& config) const {
  LW_CHECK(config.pods >= 1) << "training across " << config.pods << " pods";
  MultipodStep step;

  // Each pod runs the workload's best shape with its share of the batch.
  LlmSpec per_pod = spec;
  per_pod.global_batch = spec.global_batch / config.pods;
  // The inherent data parallelism splits across pods too (the batch is the
  // source of data parallelism).
  per_pod.inherent_dp = std::max(1, spec.inherent_dp / config.pods);
  const auto ranked = model_.RankShapes(per_pod, tpu::kCubesPerPod);
  step.pod_shape = ranked.front().shape;
  step.intra_pod_us = ranked.front().breakdown.total_us;

  if (config.pods > 1) {
    // Cross-pod data parallelism: each pod all-reduces the full bf16
    // gradient over the DCN (Fig. 2c).
    const double grad_bytes = 2.0 * spec.params_billion * 1e9;
    const CollectiveBackend& backend =
        config.dcn_backend ? *config.dcn_backend : DefaultCollectiveBackend();
    CollectiveLinkProfile profile;
    profile.hop_latency_us = config.dcn_hop_us;
    if (backend.kind() == CollectiveBackendKind::kInNetwork) {
      // The aggregation switch sits above the pods: each pod streams its
      // whole uplink into it, independent of how `dcn_mode` would have
      // trunked a pod-to-pod topology.
      profile.link_gbps = config.dcn_gbps_per_pod;
    } else {
      // The ring cost model assumes both directions of a link; the DCN
      // trunk pair is already expressed as total ring bandwidth, hence
      // the /2 (unchanged from the pre-backend path).
      profile.link_gbps = PodRingBandwidthGbps(config) / 2.0;
    }
    const auto cost = backend.AllReduceCost(config.pods, grad_bytes, profile);
    step.dcn_allreduce_us = cost.time_us;
    step.dcn_exposed_us =
        std::max(0.0, cost.time_us - config.dcn_overlap * step.intra_pod_us);
  }

  step.total_us = step.intra_pod_us + step.dcn_exposed_us;
  step.throughput_seq_per_s = spec.global_batch / (step.total_us * 1e-6);

  // Per-TPU bandwidth comparison (the paper's 50-100x ICI advantage): each
  // chip has 6 ICI links; the DCN gives dcn_gbps_per_pod / 4096 per chip.
  const IciLinkSpec ici;
  const double ici_per_chip = 6.0 * ici.bandwidth_gbps;
  const double dcn_per_chip = config.dcn_gbps_per_pod / tpu::kChipsPerPod;
  step.ici_to_dcn_ratio = ici_per_chip / dcn_per_chip;
  return step;
}

}  // namespace lightwave::sim
